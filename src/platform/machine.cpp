#include "platform/machine.h"

#include "obs/observability.h"
#include "platform/world.h"
#include "sgx/pse_wire.h"

namespace sgxmig::platform {

namespace {

const char* pse_op_name(sgx::PseOp op) {
  switch (op) {
    case sgx::PseOp::kCreate: return "create";
    case sgx::PseOp::kRead: return "read";
    case sgx::PseOp::kIncrement: return "increment";
    case sgx::PseOp::kDestroy: return "destroy";
    case sgx::PseOp::kRetireAll: return "retire";
  }
  return "unknown";
}

}  // namespace

Machine::Machine(World& world, std::string address, std::string region,
                 uint32_t cpu_cores, uint64_t seed)
    : world_(world),
      address_(std::move(address)),
      region_(std::move(region)),
      cpu_cores_(cpu_cores),
      rng_(seed),
      cpu_(to_array<32>(rng_.bytes(32))) {
  rng_.fill(pse_session_secret_.data(), pse_session_secret_.size());
  storage_ = std::make_unique<UntrustedStore>(world_.clock(), world_.costs());
  quoting_enclave_ = std::make_unique<sgx::QuotingEnclave>(
      *this, world_.epid_authority().provision_member());
  // §VI-C deployment: Platform Services live in the management VM; guest
  // enclaves reach them via the Unix-socket -> TCP proxy chain.
  pse_tcp_proxy_ = std::make_unique<net::MgmtTcpProxy>(
      world_.network(), pse_tcp_endpoint(),
      [this](ByteView request) { return pse_service_handler(request); });
  pse_uds_proxy_ = std::make_unique<net::GuestUdsProxy>(
      world_.network(), pse_uds_endpoint(), pse_tcp_endpoint());
}

Machine::~Machine() = default;

VirtualClock& Machine::clock() { return world_.clock(); }

const CostModel& Machine::costs() const { return world_.costs(); }

void Machine::charge(Duration base) {
  clock().advance(Duration(static_cast<int64_t>(
      static_cast<double>(base.count()) *
      rng_.jitter(world_.costs().jitter_sigma))));
}

Bytes Machine::draw_entropy(size_t len) { return rng_.bytes(len); }

net::Network* Machine::network() { return &world_.network(); }

obs::Observability* Machine::observability() { return &world_.observability(); }

sgx::IntelAttestationService& Machine::attestation_service() {
  return world_.ias();
}

Result<Bytes> Machine::pse_call(const sgx::Measurement& caller,
                                ByteView request) {
  // The trusted runtime attaches the session token before the request
  // leaves the enclave; the proxies in between only see ciphertext-like
  // opaque bytes they cannot mint themselves.
  auto parsed = sgx::PseRequest::deserialize(request);
  if (!parsed.ok()) return Status::kInvalidParameter;
  sgx::PseRequest req = std::move(parsed).value();
  req.owner = caller;
  req.session_token = sgx::pse_session_token(pse_session_secret_, caller);
  return world_.network().rpc(pse_uds_endpoint(), req.serialize());
}

Result<Bytes> Machine::pse_service_handler(ByteView request) {
  auto parsed = sgx::PseRequest::deserialize(request);
  sgx::PseResponse resp;
  if (!parsed.ok()) {
    resp.status = Status::kTampered;
    return resp.serialize();
  }
  const sgx::PseRequest& req = parsed.value();

  // Session check: only callers that obtained a token from this machine's
  // trusted path (i.e. genuine local enclaves) are served.
  const auto expected =
      sgx::pse_session_token(pse_session_secret_, req.owner);
  if (!constant_time_eq(ByteView(expected.data(), expected.size()),
                        ByteView(req.session_token.data(),
                                 req.session_token.size()))) {
    resp.status = Status::kCounterNotOwned;
    return resp.serialize();
  }

  obs::Observability& obs = world_.observability();
  if (obs.enabled()) {
    obs.metrics.add(std::string("pse.") + pse_op_name(req.op));
  }

  const CostModel& cm = world_.costs();
  switch (req.op) {
    case sgx::PseOp::kCreate: {
      charge(cm.counter_create);
      auto created = counters_.create(req.owner, req.nonce_entropy);
      if (!created.ok()) {
        resp.status = created.status();
      } else {
        resp.status = Status::kOk;
        resp.uuid = created.value().uuid;
        resp.value = created.value().value;
      }
      break;
    }
    case sgx::PseOp::kRead: {
      charge(cm.counter_read);
      auto value = counters_.read(req.owner, req.uuid);
      resp.status = value.ok() ? Status::kOk : value.status();
      resp.value = value.value_or(0);
      resp.uuid = req.uuid;
      break;
    }
    case sgx::PseOp::kIncrement: {
      charge(cm.counter_increment);
      auto value = counters_.increment(req.owner, req.uuid);
      resp.status = value.ok() ? Status::kOk : value.status();
      resp.value = value.value_or(0);
      resp.uuid = req.uuid;
      break;
    }
    case sgx::PseOp::kDestroy: {
      charge(cm.counter_destroy);
      resp.status = counters_.destroy(req.owner, req.uuid);
      resp.uuid = req.uuid;
      break;
    }
    case sgx::PseOp::kRetireAll: {
      charge(cm.counter_retire);
      resp.value = static_cast<uint32_t>(counters_.retire_all(req.owner));
      resp.status = Status::kOk;
      break;
    }
  }
  return resp.serialize();
}

size_t Machine::reclaim_retired_counters() {
  obs::Observability& obs = world_.observability();
  const uint64_t sweep =
      obs.enabled() ? obs.trace.begin_span("pse.reclaim", address_) : 0;
  const size_t n = counters_.reclaim_retired();
  // The firmware sweep pays the same flash cost per slot a foreground
  // destroy would — it just never contends with an enclave's ecall path.
  for (size_t i = 0; i < n; ++i) charge(world_.costs().counter_destroy);
  if (sweep != 0) {
    obs.trace.span_arg(sweep, "slots", static_cast<uint64_t>(n));
    obs.trace.end_span(sweep);
  }
  if (obs.enabled()) {
    obs.metrics.add("pse.reclaimed", static_cast<uint64_t>(n));
  }
  return n;
}

void Machine::install_management_enclave(MgmtEnclaveFactory factory) {
  mgmt_factory_ = std::move(factory);
  mgmt_enclave_.reset();  // kill any previous instance before rebuilding
  if (mgmt_factory_) mgmt_enclave_ = mgmt_factory_(*this);
}

bool Machine::restart_management_enclave() {
  if (!mgmt_factory_) return false;
  mgmt_enclave_.reset();
  mgmt_enclave_ = mgmt_factory_(*this);
  return mgmt_enclave_ != nullptr;
}

void Machine::reboot() {
  // CPU secret, counters (ME flash), and disk all survive a reboot; the
  // session secret also survives (it models a persistent platform key).
  // Nothing to do in the simulation — the method exists so scenarios read
  // naturally and as a place to hook reboot costs if ever needed.
}

}  // namespace sgxmig::platform

#include "platform/world.h"

#include <stdexcept>

namespace sgxmig::platform {

World::World(uint64_t seed, const CostModel& costs)
    : rng_(seed), costs_(costs) {
  network_ = std::make_unique<net::Network>(clock_, rng_, costs_);
  network_->set_observability(&observability_);
  epid_ = std::make_unique<sgx::EpidAuthority>(seed ^ 0xe91d);
  ias_ = std::make_unique<sgx::IntelAttestationService>(*epid_, clock_, costs_,
                                                        seed ^ 0x1a5);
  provider_ = std::make_unique<ProviderCa>(seed ^ 0xca);
}

Machine& World::add_machine(const std::string& address,
                            const std::string& region, uint32_t cpu_cores) {
  if (machine(address) != nullptr) {
    throw std::invalid_argument("World::add_machine: duplicate address " +
                                address);
  }
  machines_.push_back(std::make_unique<Machine>(*this, address, region,
                                                cpu_cores, rng_.next_u64()));
  if (mgmt_factory_) machines_.back()->install_management_enclave(mgmt_factory_);
  return *machines_.back();
}

void World::install_management_enclaves(Machine::MgmtEnclaveFactory factory) {
  mgmt_factory_ = std::move(factory);
  for (auto& m : machines_) m->install_management_enclave(mgmt_factory_);
}

Machine* World::machine(const std::string& address) {
  for (auto& m : machines_) {
    if (m->address() == address) return m.get();
  }
  return nullptr;
}

std::vector<Machine*> World::machines() {
  std::vector<Machine*> out;
  out.reserve(machines_.size());
  for (auto& m : machines_) out.push_back(m.get());
  return out;
}

std::vector<Machine*> World::machines_in_region(const std::string& region) {
  std::vector<Machine*> out;
  for (auto& m : machines_) {
    if (m->region() == region) out.push_back(m.get());
  }
  return out;
}

}  // namespace sgxmig::platform

#include "platform/provider.h"

#include "crypto/sha256.h"

namespace sgxmig::platform {

void MachineCredential::serialize(BinaryWriter& w) const {
  w.str(address);
  w.str(region);
  w.u32(cpu_cores);
  w.fixed(machine_public_key);
  w.fixed(signature);
}

MachineCredential MachineCredential::deserialize(BinaryReader& r) {
  MachineCredential c;
  c.address = r.str(256);
  c.region = r.str(256);
  c.cpu_cores = r.u32();
  c.machine_public_key = r.fixed<32>();
  c.signature = r.fixed<64>();
  return c;
}

ProviderCa::ProviderCa(uint64_t seed)
    : ca_key_(crypto::Ed25519KeyPair::from_seed(crypto::Sha256::hash(
          to_bytes("provider-ca:" + std::to_string(seed))))) {}

Bytes ProviderCa::message_for(const MachineCredential& credential) {
  BinaryWriter w;
  w.str("SGXMIG-MACHINE-CRED-v1");
  w.str(credential.address);
  w.str(credential.region);
  w.u32(credential.cpu_cores);
  w.fixed(credential.machine_public_key);
  return w.take();
}

MachineCredential ProviderCa::issue(
    const std::string& address, const std::string& region, uint32_t cpu_cores,
    const crypto::Ed25519PublicKey& machine_public_key) {
  MachineCredential credential;
  credential.address = address;
  credential.region = region;
  credential.cpu_cores = cpu_cores;
  credential.machine_public_key = machine_public_key;
  credential.signature = ca_key_.sign(message_for(credential));
  return credential;
}

bool ProviderCa::verify(const crypto::Ed25519PublicKey& ca_public_key,
                        const MachineCredential& credential) {
  return crypto::ed25519_verify(ca_public_key, message_for(credential),
                                credential.signature);
}

}  // namespace sgxmig::platform

// Untrusted persistent storage of a machine (the "disk").
//
// Sealed blobs live here between enclave restarts.  Per the threat model,
// the OS owns this storage: the adversary API lets tests snapshot the
// whole store and restore it later — the primitive behind every replay /
// roll-back attack in paper §III.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "support/bytes.h"
#include "support/cost_model.h"
#include "support/sim_clock.h"
#include "support/status.h"

namespace sgxmig::platform {

class UntrustedStore {
 public:
  UntrustedStore(VirtualClock& clock, const CostModel& costs);

  /// Write + fsync (charges disk_write).
  void put(const std::string& name, ByteView blob);

  /// Read (charges disk_read); kStorageMissing when absent.
  Result<Bytes> get(const std::string& name) const;

  bool exists(const std::string& name) const;
  void remove(const std::string& name);
  size_t size() const { return blobs_.size(); }

  // ----- versioned slots (torn-write detection) -----
  //
  // A batching persistence engine (GroupCommitPersist) turns many
  // mutations into one blob write; a crash mid-write must not leave the
  // only copy of the Migration Library's Table II buffer unparseable.
  // put_versioned alternates between two physical slots ("<name>#0" /
  // "<name>#1"), each framed with a sequence number and checksum; a torn
  // or corrupted slot fails its checksum and get_versioned falls back to
  // the other (older but intact) slot.

  /// Write + fsync into the slot not holding the latest version.
  void put_versioned(const std::string& name, ByteView blob);

  /// Payload of the newest intact slot; kStorageMissing when no slot
  /// exists, kTampered when slots exist but none verifies.
  Result<Bytes> get_versioned(const std::string& name) const;

  /// Sequence number of the newest intact slot (0 when none) — lets tests
  /// assert which generation recovery picked.
  uint64_t versioned_sequence(const std::string& name) const;

  // ----- adversary API (the OS can do all of this) -----
  using Snapshot = std::map<std::string, Bytes>;
  Snapshot snapshot() const { return blobs_; }
  void restore(const Snapshot& snapshot) { blobs_ = snapshot; }
  /// Flips one byte of a stored blob; returns false if absent/empty.
  bool corrupt(const std::string& name, size_t offset);

 private:
  struct SlotContents {
    uint64_t sequence = 0;
    Bytes payload;
  };
  /// Parses + checksum-verifies one physical slot; nullopt when the slot
  /// is absent, torn, or corrupted.
  std::optional<SlotContents> read_slot(const std::string& slot_name) const;

  VirtualClock& clock_;
  const CostModel& costs_;
  std::map<std::string, Bytes> blobs_;
};

}  // namespace sgxmig::platform

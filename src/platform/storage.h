// Untrusted persistent storage of a machine (the "disk").
//
// Sealed blobs live here between enclave restarts.  Per the threat model,
// the OS owns this storage: the adversary API lets tests snapshot the
// whole store and restore it later — the primitive behind every replay /
// roll-back attack in paper §III.
#pragma once

#include <map>
#include <string>

#include "support/bytes.h"
#include "support/cost_model.h"
#include "support/sim_clock.h"
#include "support/status.h"

namespace sgxmig::platform {

class UntrustedStore {
 public:
  UntrustedStore(VirtualClock& clock, const CostModel& costs);

  /// Write + fsync (charges disk_write).
  void put(const std::string& name, ByteView blob);

  /// Read (charges disk_read); kStorageMissing when absent.
  Result<Bytes> get(const std::string& name) const;

  bool exists(const std::string& name) const;
  void remove(const std::string& name);
  size_t size() const { return blobs_.size(); }

  // ----- adversary API (the OS can do all of this) -----
  using Snapshot = std::map<std::string, Bytes>;
  Snapshot snapshot() const { return blobs_; }
  void restore(const Snapshot& snapshot) { blobs_ = snapshot; }
  /// Flips one byte of a stored blob; returns false if absent/empty.
  bool corrupt(const std::string& name, size_t offset);

 private:
  VirtualClock& clock_;
  const CostModel& costs_;
  std::map<std::string, Bytes> blobs_;
};

}  // namespace sgxmig::platform

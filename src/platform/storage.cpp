#include "platform/storage.h"

#include <algorithm>

#include "support/serde.h"

namespace sgxmig::platform {

namespace {
constexpr char kSlotMagic[] = "SGXMIG-VSLOT-v1";

std::string slot_name(const std::string& name, int slot) {
  return name + "#" + std::to_string(slot);
}

// FNV-1a 64-bit over the framed payload: detects torn writes and the
// single-byte corruptions the adversary API injects.  Integrity against a
// *malicious* OS still comes from the sealed blob inside — this checksum
// only distinguishes "torn/unreadable" from "intact" for crash recovery.
uint64_t slot_checksum(uint64_t sequence, ByteView payload) {
  uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ull;
  };
  for (int i = 0; i < 8; ++i) mix(static_cast<uint8_t>(sequence >> (8 * i)));
  for (uint8_t byte : payload) mix(byte);
  return h;
}
}  // namespace

UntrustedStore::UntrustedStore(VirtualClock& clock, const CostModel& costs)
    : clock_(clock), costs_(costs) {}

void UntrustedStore::put(const std::string& name, ByteView blob) {
  clock_.advance(costs_.disk_write);
  blobs_[name] = to_bytes(blob);
}

Result<Bytes> UntrustedStore::get(const std::string& name) const {
  clock_.advance(costs_.disk_read);
  const auto it = blobs_.find(name);
  if (it == blobs_.end()) return Status::kStorageMissing;
  return it->second;
}

bool UntrustedStore::exists(const std::string& name) const {
  return blobs_.count(name) != 0;
}

void UntrustedStore::remove(const std::string& name) { blobs_.erase(name); }

std::optional<UntrustedStore::SlotContents> UntrustedStore::read_slot(
    const std::string& slot) const {
  const auto it = blobs_.find(slot);
  if (it == blobs_.end()) return std::nullopt;
  BinaryReader r(it->second);
  if (r.str(64) != kSlotMagic) return std::nullopt;
  const uint64_t sequence = r.u64();
  const uint64_t checksum = r.u64();
  Bytes payload = r.bytes();
  if (!r.done()) return std::nullopt;
  if (slot_checksum(sequence, payload) != checksum) return std::nullopt;
  SlotContents contents;
  contents.sequence = sequence;
  contents.payload = std::move(payload);
  return contents;
}

void UntrustedStore::put_versioned(const std::string& name, ByteView blob) {
  const auto slot0 = read_slot(slot_name(name, 0));
  const auto slot1 = read_slot(slot_name(name, 1));
  const uint64_t seq0 = slot0 ? slot0->sequence : 0;
  const uint64_t seq1 = slot1 ? slot1->sequence : 0;
  const uint64_t next = std::max(seq0, seq1) + 1;
  // Overwrite the slot NOT holding the latest intact version, so the
  // previous generation survives a torn write of this one.
  const int target = seq0 >= seq1 ? 1 : 0;
  BinaryWriter w;
  w.str(kSlotMagic);
  w.u64(next);
  w.u64(slot_checksum(next, blob));
  w.bytes(blob);
  put(slot_name(name, target), w.take());
}

Result<Bytes> UntrustedStore::get_versioned(const std::string& name) const {
  clock_.advance(costs_.disk_read);
  const bool any_slot = blobs_.count(slot_name(name, 0)) != 0 ||
                        blobs_.count(slot_name(name, 1)) != 0;
  if (!any_slot) return Status::kStorageMissing;
  const auto slot0 = read_slot(slot_name(name, 0));
  const auto slot1 = read_slot(slot_name(name, 1));
  if (!slot0 && !slot1) return Status::kTampered;
  if (slot0 && slot1) {
    return slot0->sequence >= slot1->sequence ? slot0->payload
                                              : slot1->payload;
  }
  return slot0 ? slot0->payload : slot1->payload;
}

uint64_t UntrustedStore::versioned_sequence(const std::string& name) const {
  const auto slot0 = read_slot(slot_name(name, 0));
  const auto slot1 = read_slot(slot_name(name, 1));
  const uint64_t seq0 = slot0 ? slot0->sequence : 0;
  const uint64_t seq1 = slot1 ? slot1->sequence : 0;
  return std::max(seq0, seq1);
}

bool UntrustedStore::corrupt(const std::string& name, size_t offset) {
  auto it = blobs_.find(name);
  if (it == blobs_.end() || it->second.empty()) return false;
  it->second[offset % it->second.size()] ^= 0x80;
  return true;
}

}  // namespace sgxmig::platform

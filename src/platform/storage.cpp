#include "platform/storage.h"

namespace sgxmig::platform {

UntrustedStore::UntrustedStore(VirtualClock& clock, const CostModel& costs)
    : clock_(clock), costs_(costs) {}

void UntrustedStore::put(const std::string& name, ByteView blob) {
  clock_.advance(costs_.disk_write);
  blobs_[name] = to_bytes(blob);
}

Result<Bytes> UntrustedStore::get(const std::string& name) const {
  clock_.advance(costs_.disk_read);
  const auto it = blobs_.find(name);
  if (it == blobs_.end()) return Status::kStorageMissing;
  return it->second;
}

bool UntrustedStore::exists(const std::string& name) const {
  return blobs_.count(name) != 0;
}

void UntrustedStore::remove(const std::string& name) { blobs_.erase(name); }

bool UntrustedStore::corrupt(const std::string& name, size_t offset) {
  auto it = blobs_.find(name);
  if (it == blobs_.end() || it->second.empty()) return false;
  it->second[offset % it->second.size()] ^= 0x80;
  return true;
}

}  // namespace sgxmig::platform

// A physical machine in the simulated data center.
//
// Owns everything that is machine-bound on real hardware: the CPU key
// hierarchy, the Management Engine's monotonic counter store, untrusted
// disk, the Quoting Enclave (provisioned with an EPID member key), and the
// Unix-socket/TCP proxy pair that lets guest-VM enclaves reach Platform
// Services in the management VM (paper §VI-C).
#pragma once

#include <memory>
#include <string>

#include "net/proxy.h"
#include "platform/storage.h"
#include "sgx/platform_iface.h"
#include "sgx/pse.h"
#include "sgx/quote.h"
#include "support/rng.h"

namespace sgxmig::platform {

class World;

class Machine final : public sgx::PlatformIface {
 public:
  Machine(World& world, std::string address, std::string region,
          uint32_t cpu_cores, uint64_t seed);
  ~Machine() override;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // ----- sgx::PlatformIface -----
  sgx::SimCpu& cpu() override { return cpu_; }
  VirtualClock& clock() override;
  const CostModel& costs() const override;
  void charge(Duration base) override;
  Bytes draw_entropy(size_t len) override;
  Result<Bytes> pse_call(const sgx::Measurement& caller,
                         ByteView request) override;
  const std::string& address() const override { return address_; }
  const std::string& region() const override { return region_; }
  uint32_t cpu_cores() const override { return cpu_cores_; }
  net::Network* network() override;
  sgx::QuotingEnclave& quoting_enclave() override { return *quoting_enclave_; }
  sgx::IntelAttestationService& attestation_service() override;

  // ----- machine services -----
  World& world() { return world_; }
  UntrustedStore& storage() { return *storage_; }
  sgx::MonotonicCounterService& counter_service() { return counters_; }
  Rng& rng() { return rng_; }

  // ----- load accounting (fleet-level scheduling queries) -----
  // The machine itself does not know which processes host enclaves; the
  // fleet layer (orchestrator::FleetRegistry) reports placements so that
  // schedulers can ask any machine for its current enclave load.
  void note_enclave_attached() { ++enclave_load_; }
  void note_enclave_detached() {
    if (enclave_load_ > 0) --enclave_load_;
  }
  uint32_t enclave_load() const { return enclave_load_; }

  /// Endpoint name of the guest-side PSE Unix socket.
  std::string pse_uds_endpoint() const { return address_ + "/pse-uds"; }
  /// Endpoint name of the management-VM PSE TCP service.
  std::string pse_tcp_endpoint() const { return address_ + "/pse-tcp"; }
  /// Endpoint name of this machine's Migration Enclave service.
  std::string me_endpoint() const { return address_ + "/me"; }

  /// Simulates a machine reboot: counters and disk survive (flash/disk);
  /// the caller is responsible for having destroyed enclave objects, whose
  /// memory does not survive.  Re-seeds nothing — the CPU secret is fused.
  void reboot();

 private:
  /// The management-VM side of Platform Services: validates the session
  /// token, charges the ME-flash latency, executes the counter op.
  Result<Bytes> pse_service_handler(ByteView request);

  World& world_;
  std::string address_;
  std::string region_;
  uint32_t cpu_cores_;
  uint32_t enclave_load_ = 0;
  Rng rng_;
  sgx::SimCpu cpu_;
  sgx::MonotonicCounterService counters_;
  sgx::Key128 pse_session_secret_{};
  std::unique_ptr<UntrustedStore> storage_;
  std::unique_ptr<sgx::QuotingEnclave> quoting_enclave_;
  std::unique_ptr<net::MgmtTcpProxy> pse_tcp_proxy_;
  std::unique_ptr<net::GuestUdsProxy> pse_uds_proxy_;
};

}  // namespace sgxmig::platform

// A physical machine in the simulated data center.
//
// Owns everything that is machine-bound on real hardware: the CPU key
// hierarchy, the Management Engine's monotonic counter store, untrusted
// disk, the Quoting Enclave (provisioned with an EPID member key), and the
// Unix-socket/TCP proxy pair that lets guest-VM enclaves reach Platform
// Services in the management VM (paper §VI-C).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "net/proxy.h"
#include "platform/storage.h"
#include "sgx/enclave.h"
#include "sgx/platform_iface.h"
#include "sgx/pse.h"
#include "sgx/quote.h"
#include "support/rng.h"

namespace sgxmig::platform {

class World;

class Machine final : public sgx::PlatformIface {
 public:
  Machine(World& world, std::string address, std::string region,
          uint32_t cpu_cores, uint64_t seed);
  ~Machine() override;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // ----- sgx::PlatformIface -----
  sgx::SimCpu& cpu() override { return cpu_; }
  VirtualClock& clock() override;
  const CostModel& costs() const override;
  void charge(Duration base) override;
  Bytes draw_entropy(size_t len) override;
  Result<Bytes> pse_call(const sgx::Measurement& caller,
                         ByteView request) override;
  const std::string& address() const override { return address_; }
  const std::string& region() const override { return region_; }
  uint32_t cpu_cores() const override { return cpu_cores_; }
  net::Network* network() override;
  obs::Observability* observability() override;
  sgx::QuotingEnclave& quoting_enclave() override { return *quoting_enclave_; }
  sgx::IntelAttestationService& attestation_service() override;

  // ----- machine services -----
  World& world() { return world_; }
  UntrustedStore& storage() { return *storage_; }
  sgx::MonotonicCounterService& counter_service() { return counters_; }
  /// Runs the ME firmware's background GC over retired counter slots,
  /// charging the per-slot flash cost to the current timeline.  Returns
  /// how many slots were freed.  Drivers call this OUTSIDE latency-
  /// critical phases (it models work that never preempts an ecall).
  size_t reclaim_retired_counters();
  Rng& rng() { return rng_; }

  // ----- load accounting (fleet-level scheduling queries) -----
  // The machine itself does not know which processes host enclaves; the
  // fleet layer (orchestrator::FleetRegistry) reports placements so that
  // schedulers can ask any machine for its current enclave load.
  void note_enclave_attached() { ++enclave_load_; }
  void note_enclave_detached() {
    if (enclave_load_ > 0) --enclave_load_;
  }
  uint32_t enclave_load() const { return enclave_load_; }

  // ----- management-enclave slot (ME crash/restart simulation) -----
  //
  // Each machine's management VM hosts one long-lived service enclave (the
  // Migration Enclave).  The platform layer knows nothing about its
  // concrete type — higher layers install a FACTORY, and the machine owns
  // the instance so it can simulate the management VM crashing
  // (kill_management_enclave: the enclave object — i.e. its EPC contents —
  // is destroyed; anything not sealed to disk is gone) and restarting
  // (restart_management_enclave: the factory rebuilds the enclave, whose
  // constructor/restore path reloads whatever it sealed into storage()).
  using MgmtEnclaveFactory =
      std::function<std::unique_ptr<sgx::Enclave>(Machine&)>;

  /// Installs the factory and immediately builds the instance.
  void install_management_enclave(MgmtEnclaveFactory factory);
  sgx::Enclave* management_enclave() { return mgmt_enclave_.get(); }
  bool has_management_enclave() const { return mgmt_enclave_ != nullptr; }
  /// Simulated management-VM crash: destroys the enclave object only.
  /// Untrusted storage and counters survive; EPC contents do not.
  void kill_management_enclave() { mgmt_enclave_.reset(); }
  /// Rebuilds the enclave from the installed factory; false if none.
  bool restart_management_enclave();

  /// Endpoint name of the guest-side PSE Unix socket.
  std::string pse_uds_endpoint() const { return address_ + "/pse-uds"; }
  /// Endpoint name of the management-VM PSE TCP service.
  std::string pse_tcp_endpoint() const { return address_ + "/pse-tcp"; }
  /// Endpoint name of this machine's Migration Enclave service.
  std::string me_endpoint() const { return address_ + "/me"; }

  /// Simulates a machine reboot: counters and disk survive (flash/disk);
  /// the caller is responsible for having destroyed enclave objects, whose
  /// memory does not survive.  Re-seeds nothing — the CPU secret is fused.
  void reboot();

 private:
  /// The management-VM side of Platform Services: validates the session
  /// token, charges the ME-flash latency, executes the counter op.
  Result<Bytes> pse_service_handler(ByteView request);

  World& world_;
  std::string address_;
  std::string region_;
  uint32_t cpu_cores_;
  uint32_t enclave_load_ = 0;
  Rng rng_;
  sgx::SimCpu cpu_;
  sgx::MonotonicCounterService counters_;
  sgx::Key128 pse_session_secret_{};
  MgmtEnclaveFactory mgmt_factory_;
  std::unique_ptr<UntrustedStore> storage_;
  std::unique_ptr<sgx::QuotingEnclave> quoting_enclave_;
  std::unique_ptr<net::MgmtTcpProxy> pse_tcp_proxy_;
  std::unique_ptr<net::GuestUdsProxy> pse_uds_proxy_;
  // Declared last: the management enclave uses every other machine
  // service, so it must be destroyed first.
  std::unique_ptr<sgx::Enclave> mgmt_enclave_;
};

}  // namespace sgxmig::platform

// The simulated world: machines, the data-center network, Intel's services
// (EPID authority + IAS), the cloud provider CA, one virtual clock, and
// the cost model.  Everything is deterministic from the seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "obs/observability.h"
#include "platform/machine.h"
#include "platform/provider.h"
#include "sgx/epid.h"
#include "sgx/ias.h"
#include "support/cost_model.h"
#include "support/rng.h"
#include "support/sim_clock.h"

namespace sgxmig::platform {

class World {
 public:
  explicit World(uint64_t seed = 42, const CostModel& costs = CostModel{});

  /// Adds a machine; addresses must be unique ("m0", "m1", ...).
  Machine& add_machine(const std::string& address,
                       const std::string& region = "eu-central",
                       uint32_t cpu_cores = 16);

  /// Finds a machine by address; nullptr if unknown.
  Machine* machine(const std::string& address);

  /// All machines, in creation order (stable across a run, so schedulers
  /// iterating it stay deterministic per seed).
  std::vector<Machine*> machines();

  /// Machines whose provider-assigned region equals `region`.
  std::vector<Machine*> machines_in_region(const std::string& region);

  /// Installs `factory` as the management-enclave factory on every
  /// existing machine and remembers it for machines added later — the
  /// deployment model of the paper's §VI-A (one Migration Enclave in the
  /// management VM of every machine).  Individual machines can then be
  /// crash/restart-cycled via Machine::kill_management_enclave() /
  /// restart_management_enclave().
  void install_management_enclaves(Machine::MgmtEnclaveFactory factory);

  VirtualClock& clock() { return clock_; }
  Rng& rng() { return rng_; }
  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }
  net::Network& network() { return *network_; }
  obs::Observability& observability() { return observability_; }
  sgx::EpidAuthority& epid_authority() { return *epid_; }
  sgx::IntelAttestationService& ias() { return *ias_; }
  ProviderCa& provider() { return *provider_; }

  size_t machine_count() const { return machines_.size(); }

 private:
  VirtualClock clock_;
  Rng rng_;
  CostModel costs_;
  obs::Observability observability_{clock_};
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<sgx::EpidAuthority> epid_;
  std::unique_ptr<sgx::IntelAttestationService> ias_;
  std::unique_ptr<ProviderCa> provider_;
  Machine::MgmtEnclaveFactory mgmt_factory_;
  std::vector<std::unique_ptr<Machine>> machines_;
};

}  // namespace sgxmig::platform

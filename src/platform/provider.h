// Cloud provider (data-center operator) credentials.
//
// Paper §V-B: during a secure setup phase the operator provisions each
// Migration Enclave with a key/certificate so that MEs can authenticate
// each other as "machines of the same cloud provider" (Requirement R2) —
// and, as an extension, restrict migration to subsets of machines
// (regions) for regulatory compliance.
#pragma once

#include <string>

#include "crypto/ed25519.h"
#include "support/bytes.h"
#include "support/serde.h"
#include "support/status.h"

namespace sgxmig::platform {

/// Certificate binding (machine address, region, certified capabilities,
/// ME signing key) under the operator's CA key.
struct MachineCredential {
  std::string address;
  std::string region;
  uint32_t cpu_cores = 0;  // certified computational capability (§X policies)
  crypto::Ed25519PublicKey machine_public_key{};
  crypto::Ed25519Signature signature{};

  void serialize(BinaryWriter& w) const;
  static MachineCredential deserialize(BinaryReader& r);
};

class ProviderCa {
 public:
  explicit ProviderCa(uint64_t seed);

  const crypto::Ed25519PublicKey& public_key() const {
    return ca_key_.public_key();
  }

  MachineCredential issue(const std::string& address, const std::string& region,
                          uint32_t cpu_cores,
                          const crypto::Ed25519PublicKey& machine_public_key);

  static bool verify(const crypto::Ed25519PublicKey& ca_public_key,
                     const MachineCredential& credential);

 private:
  static Bytes message_for(const MachineCredential& credential);

  crypto::Ed25519KeyPair ca_key_;
};

}  // namespace sgxmig::platform

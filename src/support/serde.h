// Minimal binary serialization for protocol messages and persisted blobs.
//
// Encoding rules: integers are little-endian; variable-length byte strings
// are length-prefixed with a u32.  `BinaryReader` uses a sticky failure
// flag: any out-of-bounds read marks the reader failed and all subsequent
// reads return zero values, so callers validate once via `ok()` after
// decoding a whole message.  This is the recommended pattern for parsing
// adversary-controlled input without exceptions.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "support/bytes.h"

namespace sgxmig {

class BinaryWriter {
 public:
  void u8(uint8_t v);
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void boolean(bool v);

  /// Length-prefixed byte string (u32 length).
  void bytes(ByteView v);
  /// Length-prefixed UTF-8 string.
  void str(std::string_view v);
  /// Raw bytes with no length prefix (fixed-width fields).
  void raw(ByteView v);

  template <size_t N>
  void fixed(const std::array<uint8_t, N>& a) {
    raw(ByteView(a.data(), a.size()));
  }

  const Bytes& data() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(ByteView data) : data_(data) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  bool boolean();

  /// Length-prefixed byte string; enforces `max_len` to bound allocations
  /// driven by adversarial length fields.
  Bytes bytes(size_t max_len = kDefaultMaxLen);
  std::string str(size_t max_len = kDefaultMaxLen);
  /// Raw bytes with no length prefix.
  Bytes raw(size_t len);

  template <size_t N>
  std::array<uint8_t, N> fixed() {
    std::array<uint8_t, N> out{};
    if (!take(N)) return out;
    for (size_t i = 0; i < N; ++i) out[i] = data_[pos_ - N + i];
    return out;
  }

  /// True iff no read so far ran past the end of the buffer.
  bool ok() const { return !failed_; }
  /// True iff the whole buffer was consumed and no read failed.
  bool done() const { return !failed_ && pos_ == data_.size(); }
  size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }

  static constexpr size_t kDefaultMaxLen = 1u << 30;

 private:
  bool take(size_t n);

  ByteView data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace sgxmig

#include "support/sim_clock.h"

namespace sgxmig {

double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e9;
}

double to_milliseconds(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}

}  // namespace sgxmig

#include "support/sim_clock.h"

#include <ctime>

#include <sys/resource.h>

namespace sgxmig {

double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e9;
}

double to_milliseconds(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}

Duration LaneSchedule::run(const std::string& lane, Duration ready_at,
                           const std::function<void()>& fn) {
  if (running_) {
    // Nested: the outer run already owns the clock; attribute the work to
    // its lane (same-machine nesting is the only in-tree case).
    fn();
    return clock_.now();
  }
  const auto it = lane_end_.find(lane);
  Duration start = it == lane_end_.end() ? control_ : it->second;
  if (ready_at > start) start = ready_at;
  running_ = true;
  clock_.set_now(start);
  fn();
  const Duration end = clock_.now();
  running_ = false;
  lane_end_[lane] = end;
  if (end > horizon_) horizon_ = end;
  if (recording_) events_.push_back(LaneEvent{lane, end});
  clock_.set_now(control_);
  return end;
}

double process_cpu_seconds() {
  // sim_clock is the designated real-time boundary (simlint whitelists
  // this file); callers must never branch simulation logic on this value.
  struct timespec ts {};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / 1e9;
}

uint64_t process_peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

Duration LaneSchedule::lane_end(const std::string& lane) const {
  const auto it = lane_end_.find(lane);
  return it == lane_end_.end() ? control_ : it->second;
}

}  // namespace sgxmig

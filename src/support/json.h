// Minimal JSON string escaping, shared by every JSON emitter in the
// repo (orchestrator report, bench BENCH_*.json writers) so they cannot
// drift apart on edge cases.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace sgxmig {

/// Appends `value` to `out` as a JSON string literal (quotes included),
/// escaping quotes, backslashes, and control characters.
inline void append_json_string(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline std::string json_string(std::string_view value) {
  std::string out;
  append_json_string(out, value);
  return out;
}

}  // namespace sgxmig

#include "support/bytes.h"

#include <cassert>

namespace sgxmig {

Bytes to_bytes(ByteView view) { return Bytes(view.begin(), view.end()); }

Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string to_string(ByteView view) {
  return std::string(view.begin(), view.end());
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string hex_encode(ByteView view) {
  std::string out;
  out.reserve(view.size() * 2);
  for (uint8_t b : view) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes hex_decode(std::string_view hex, bool* ok) {
  if (ok != nullptr) *ok = false;
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  if (ok != nullptr) *ok = true;
  return out;
}

bool constant_time_eq(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

void secure_wipe(uint8_t* data, size_t len) {
  volatile uint8_t* p = data;
  for (size_t i = 0; i < len; ++i) p[i] = 0;
}

void secure_wipe(Bytes& buffer) { secure_wipe(buffer.data(), buffer.size()); }

void append(Bytes& dst, ByteView suffix) {
  dst.insert(dst.end(), suffix.begin(), suffix.end());
}

void xor_into(std::span<uint8_t> dst, ByteView src) {
  assert(dst.size() == src.size());
  for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

uint32_t load_be32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) |
         (uint32_t{p[2]} << 8) | uint32_t{p[3]};
}

uint64_t load_be64(const uint8_t* p) {
  return (uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}

void store_be32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

void store_be64(uint8_t* p, uint64_t v) {
  store_be32(p, static_cast<uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<uint32_t>(v));
}

uint32_t load_le32(const uint8_t* p) {
  return uint32_t{p[0]} | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}

uint64_t load_le64(const uint8_t* p) {
  return uint64_t{load_le32(p)} | (uint64_t{load_le32(p + 4)} << 32);
}

void store_le32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void store_le64(uint8_t* p, uint64_t v) {
  store_le32(p, static_cast<uint32_t>(v));
  store_le32(p + 4, static_cast<uint32_t>(v >> 32));
}

}  // namespace sgxmig

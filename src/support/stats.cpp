#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sgxmig {

namespace {

double ln_gamma(double x) { return std::lgamma(x); }

// Continued-fraction evaluation for the incomplete beta function
// (Lentz's algorithm, as in Numerical Recipes betacf).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  if (df <= 0.0) throw std::invalid_argument("student_t_cdf: df must be > 0");
  const double x = df / (df + t * t);
  const double p = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double student_t_quantile(double p, double df) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("student_t_quantile: p must be in (0,1)");
  }
  double lo = -1e6;
  double hi = 1e6;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double percentile_nearest_rank(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  p = std::min(100.0, std::max(0.0, p));
  const size_t n = samples.size();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return samples[rank - 1];
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (s.n == 0) return s;
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n < 2) return s;
  double ss = 0.0;
  for (double v : samples) {
    const double d = v - s.mean;
    ss += d * d;
  }
  s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  const double sem = s.stddev / std::sqrt(static_cast<double>(s.n));
  const double t995 = student_t_quantile(0.995, static_cast<double>(s.n - 1));
  s.ci99_half = t995 * sem;
  return s;
}

double welch_one_tailed_p(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const Summary sa = summarize(a);
  const Summary sb = summarize(b);
  if (sa.n < 2 || sb.n < 2) return std::numeric_limits<double>::quiet_NaN();
  const double va = sa.stddev * sa.stddev / static_cast<double>(sa.n);
  const double vb = sb.stddev * sb.stddev / static_cast<double>(sb.n);
  const double se = std::sqrt(va + vb);
  if (se == 0.0) return sa.mean > sb.mean ? 0.0 : 1.0;
  const double t = (sa.mean - sb.mean) / se;
  const double df_num = (va + vb) * (va + vb);
  const double df_den =
      va * va / static_cast<double>(sa.n - 1) + vb * vb / static_cast<double>(sb.n - 1);
  const double df = df_num / df_den;
  // One-tailed: P(T >= t) under H0.
  return 1.0 - student_t_cdf(t, df);
}

}  // namespace sgxmig

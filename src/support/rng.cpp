#include "support/rng.h"

#include <cmath>

namespace sgxmig {

namespace {
// splitmix64 — used to expand the seed into the xoshiro state.
uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

uint32_t Rng::next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

uint64_t Rng::uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform_double() - 1.0;
    v = 2.0 * uniform_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  have_spare_gaussian_ = true;
  return u * factor;
}

double Rng::jitter(double sigma) {
  const double f = 1.0 + sigma * gaussian();
  return f < 0.05 ? 0.05 : f;
}

void Rng::fill(uint8_t* out, size_t len) {
  size_t i = 0;
  while (i + 8 <= len) {
    const uint64_t r = next_u64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<uint8_t>(r >> (8 * b));
  }
  if (i < len) {
    const uint64_t r = next_u64();
    int b = 0;
    while (i < len) out[i++] = static_cast<uint8_t>(r >> (8 * b++));
  }
}

Bytes Rng::bytes(size_t len) {
  Bytes out(len);
  fill(out.data(), len);
  return out;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace sgxmig

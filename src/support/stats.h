// Statistics used by the benchmark harnesses to reproduce the paper's
// reporting: mean with a 99% confidence interval over 1000 trials, and a
// one-tailed Welch t-test for "is the migratable variant slower than the
// baseline" (the paper reports p ~ 0 for increment and p ~ 0.12 for read).
#pragma once

#include <cstddef>
#include <vector>

namespace sgxmig {

struct Summary {
  size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;       // sample standard deviation (n-1)
  double ci99_half = 0.0;    // half-width of the 99% CI of the mean
};

/// Computes n/mean/stddev and the 99% confidence interval of the mean using
/// the Student t quantile for n-1 degrees of freedom.
Summary summarize(const std::vector<double>& samples);

/// Nearest-rank percentile: the smallest sample v such that at least
/// p% of the samples are <= v, i.e. sorted[ceil(p/100 * n) - 1].
/// `p` is clamped to [0, 100]; p = 0 returns the minimum.  Returns 0.0
/// for an empty sample set.  Note the p50 of {a, b} is the LOWER value:
/// nearest-rank never interpolates, it always returns an actual sample.
double percentile_nearest_rank(std::vector<double> samples, double p);

/// One-tailed Welch t-test for H1: mean(a) > mean(b).
/// Returns the p-value (probability of observing the data under H0).
double welch_one_tailed_p(const std::vector<double>& a,
                          const std::vector<double>& b);

/// CDF of Student's t distribution with `df` degrees of freedom.
double student_t_cdf(double t, double df);

/// Quantile (inverse CDF) of Student's t distribution, via bisection on the
/// CDF.  `p` in (0,1).
double student_t_quantile(double p, double df);

/// Regularized incomplete beta function I_x(a, b) (continued fraction).
double regularized_incomplete_beta(double a, double b, double x);

}  // namespace sgxmig

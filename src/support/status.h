// Error model for the whole library.
//
// The SGX SDK (and the paper's API listings) communicate failures through
// status codes rather than exceptions, so the public API surface of this
// reproduction does the same: every fallible operation returns a `Status`
// or a `Result<T>`.  Exceptions are reserved for programmer errors.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

namespace sgxmig {

enum class Status : uint32_t {
  kOk = 0,

  // Generic / SDK-style errors.
  kUnexpected,
  kInvalidParameter,
  kInvalidState,
  kNotInitialized,
  kAlreadyExists,
  kOutOfMemory,

  // Cryptographic / sealing errors.
  kMacMismatch,        // AES-GCM tag or report MAC check failed
  kSealFailure,
  kUnsealFailure,
  kSignatureInvalid,

  // Monotonic counter (Platform Services) errors.
  kCounterNotFound,    // UUID unknown or already destroyed
  kCounterQuotaExceeded,
  kCounterOverflow,    // effective value would exceed uint32 range
  kCounterNotOwned,    // UUID nonce does not match the calling enclave
  kServiceUnavailable, // Platform Services not reachable (e.g. proxy down)

  // Attestation errors.
  kAttestationFailure,       // local attestation / report verification failed
  kQuoteVerificationFailure, // IAS rejected the quote
  kIdentityMismatch,         // MRENCLAVE/MRSIGNER does not match expectation
  kProviderAuthFailure,      // peer not authorized by the cloud provider

  // Migration-specific errors.
  kMigrationFrozen,       // library refuses to operate: state was migrated
  kMigrationInProgress,
  kNoPendingMigration,
  kMigrationAborted,
  kPrecopyIncomplete,  // staged pre-copy chunks do not cover the manifest

  // Infrastructure errors.
  kNetworkUnreachable,
  kChannelError,       // secure channel framing/sequence error
  kReplayDetected,
  kStorageMissing,     // persisted blob not found in untrusted storage
  kTampered,           // untrusted input failed validation
  kPolicyViolation,    // migration policy forbids this migration
  kNoEligibleDestination,  // no destination satisfies the placement constraints
};

/// Human-readable name, e.g. "kMacMismatch".
std::string_view status_name(Status status);

/// A value-or-status result in the spirit of std::expected (not available
/// in libstdc++ 12).  A `Result` constructed from a non-kOk status carries
/// no value; a `Result` constructed from a value has status kOk.
template <typename T>
class Result {
 public:
  Result(Status status) : status_(status) {}  // NOLINT(google-explicit-constructor)
  Result(T value) : status_(Status::kOk), value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_ == Status::kOk; }
  Status status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sgxmig

#include "support/serde.h"

namespace sgxmig {

void BinaryWriter::u8(uint8_t v) { buffer_.push_back(v); }

void BinaryWriter::u16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void BinaryWriter::u32(uint32_t v) {
  uint8_t tmp[4];
  store_le32(tmp, v);
  buffer_.insert(buffer_.end(), tmp, tmp + 4);
}

void BinaryWriter::u64(uint64_t v) {
  uint8_t tmp[8];
  store_le64(tmp, v);
  buffer_.insert(buffer_.end(), tmp, tmp + 8);
}

void BinaryWriter::boolean(bool v) { u8(v ? 1 : 0); }

void BinaryWriter::bytes(ByteView v) {
  u32(static_cast<uint32_t>(v.size()));
  raw(v);
}

void BinaryWriter::str(std::string_view v) {
  u32(static_cast<uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void BinaryWriter::raw(ByteView v) {
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

bool BinaryReader::take(size_t n) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  pos_ += n;
  return true;
}

uint8_t BinaryReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_ - 1];
}

uint16_t BinaryReader::u16() {
  if (!take(2)) return 0;
  return static_cast<uint16_t>(data_[pos_ - 2]) |
         static_cast<uint16_t>(data_[pos_ - 1]) << 8;
}

uint32_t BinaryReader::u32() {
  if (!take(4)) return 0;
  return load_le32(data_.data() + pos_ - 4);
}

uint64_t BinaryReader::u64() {
  if (!take(8)) return 0;
  return load_le64(data_.data() + pos_ - 8);
}

bool BinaryReader::boolean() { return u8() != 0; }

Bytes BinaryReader::bytes(size_t max_len) {
  const uint32_t len = u32();
  if (failed_ || len > max_len) {
    failed_ = true;
    return {};
  }
  return raw(len);
}

std::string BinaryReader::str(size_t max_len) {
  Bytes b = bytes(max_len);
  return std::string(b.begin(), b.end());
}

Bytes BinaryReader::raw(size_t len) {
  if (!take(len)) return {};
  return Bytes(data_.begin() + static_cast<ptrdiff_t>(pos_ - len),
               data_.begin() + static_cast<ptrdiff_t>(pos_));
}

}  // namespace sgxmig

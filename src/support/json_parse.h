// Strict recursive-descent JSON parser for test oracles and report
// round-trips.  The repo WRITES JSON by string concatenation (json.h,
// OrchestratorReport::to_json, TraceRecorder::to_chrome_json); this is
// the reader that proves those emitters produce well-formed documents —
// a malformed escape in an event detail string fails here, not in a
// downstream viewer.
//
// Strictness: the whole input must parse as exactly one value (trailing
// garbage is an error), strings accept only the escapes RFC 8259 allows
// (including \uXXXX), numbers follow the RFC grammar, and nesting depth
// is bounded.  Errors come back as Status::kInvalidParameter.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.h"

namespace sgxmig {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in document order (duplicate keys preserved).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  bool has(std::string_view key) const { return find(key) != nullptr; }
  /// First member with this key, or nullptr.
  const JsonValue* find(std::string_view key) const;

  static JsonValue make_null() { return JsonValue(Kind::kNull); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses `text` as exactly one JSON document (leading/trailing
/// whitespace allowed, anything else after the value is an error).
/// Returns kInvalidParameter on any syntax violation.
Result<JsonValue> parse_json(std::string_view text);

}  // namespace sgxmig

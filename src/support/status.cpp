#include "support/status.h"

namespace sgxmig {

std::string_view status_name(Status status) {
  switch (status) {
    case Status::kOk: return "kOk";
    case Status::kUnexpected: return "kUnexpected";
    case Status::kInvalidParameter: return "kInvalidParameter";
    case Status::kInvalidState: return "kInvalidState";
    case Status::kNotInitialized: return "kNotInitialized";
    case Status::kAlreadyExists: return "kAlreadyExists";
    case Status::kOutOfMemory: return "kOutOfMemory";
    case Status::kMacMismatch: return "kMacMismatch";
    case Status::kSealFailure: return "kSealFailure";
    case Status::kUnsealFailure: return "kUnsealFailure";
    case Status::kSignatureInvalid: return "kSignatureInvalid";
    case Status::kCounterNotFound: return "kCounterNotFound";
    case Status::kCounterQuotaExceeded: return "kCounterQuotaExceeded";
    case Status::kCounterOverflow: return "kCounterOverflow";
    case Status::kCounterNotOwned: return "kCounterNotOwned";
    case Status::kServiceUnavailable: return "kServiceUnavailable";
    case Status::kAttestationFailure: return "kAttestationFailure";
    case Status::kQuoteVerificationFailure: return "kQuoteVerificationFailure";
    case Status::kIdentityMismatch: return "kIdentityMismatch";
    case Status::kProviderAuthFailure: return "kProviderAuthFailure";
    case Status::kMigrationFrozen: return "kMigrationFrozen";
    case Status::kMigrationInProgress: return "kMigrationInProgress";
    case Status::kNoPendingMigration: return "kNoPendingMigration";
    case Status::kMigrationAborted: return "kMigrationAborted";
    case Status::kPrecopyIncomplete: return "kPrecopyIncomplete";
    case Status::kNetworkUnreachable: return "kNetworkUnreachable";
    case Status::kChannelError: return "kChannelError";
    case Status::kReplayDetected: return "kReplayDetected";
    case Status::kStorageMissing: return "kStorageMissing";
    case Status::kTampered: return "kTampered";
    case Status::kPolicyViolation: return "kPolicyViolation";
    case Status::kNoEligibleDestination: return "kNoEligibleDestination";
  }
  return "kUnknown";
}

}  // namespace sgxmig

#include "support/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace sgxmig {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out(Kind::kBool);
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out(Kind::kNumber);
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out(Kind::kString);
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue out(Kind::kArray);
  out.items_ = std::move(items);
  return out;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out(Kind::kObject);
  out.members_ = std::move(members);
  return out;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    skip_ws();
    Result<JsonValue> value = parse_value(0);
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) return Status::kInvalidParameter;
    return value;
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Result<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth || eof()) return Status::kInvalidParameter;
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return Status::kInvalidParameter;
        return JsonValue::make_string(std::move(s));
      }
      case 't':
        if (!consume_literal("true")) return Status::kInvalidParameter;
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) return Status::kInvalidParameter;
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) return Status::kInvalidParameter;
        return JsonValue::make_null();
      default:
        return parse_number();
    }
  }

  Result<JsonValue> parse_object(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_ws();
      std::string key;
      if (eof() || peek() != '"' || !parse_string(key)) {
        return Status::kInvalidParameter;
      }
      skip_ws();
      if (!consume(':')) return Status::kInvalidParameter;
      skip_ws();
      Result<JsonValue> value = parse_value(depth + 1);
      if (!value.ok()) return value.status();
      members.emplace_back(std::move(key), std::move(value).value());
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue::make_object(std::move(members));
      return Status::kInvalidParameter;
    }
  }

  Result<JsonValue> parse_array(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      skip_ws();
      Result<JsonValue> value = parse_value(depth + 1);
      if (!value.ok()) return value.status();
      items.push_back(std::move(value).value());
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue::make_array(std::move(items));
      return Status::kInvalidParameter;
    }
  }

  bool parse_hex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A') + 10;
      } else {
        return false;
      }
      out = out * 16 + digit;
    }
    pos_ += 4;
    return true;
  }

  void append_utf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    while (true) {
      if (eof()) return false;
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (eof()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          uint32_t cp;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need a pair
            if (!consume('\\') || !consume('u')) return false;
            uint32_t low;
            if (!parse_hex4(low) || low < 0xDC00 || low > 0xDFFF) return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // lone low surrogate
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return false;
      }
    }
  }

  Result<JsonValue> parse_number() {
    const size_t start = pos_;
    consume('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return Status::kInvalidParameter;
    }
    if (peek() == '0') {
      ++pos_;
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        return Status::kInvalidParameter;  // leading zero
      }
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return Status::kInvalidParameter;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return Status::kInvalidParameter;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> parse_json(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace sgxmig

// Deterministic virtual time.
//
// All modeled hardware and network latencies advance a shared VirtualClock
// instead of sleeping, so the benchmark harnesses reproduce the paper's
// timing figures deterministically and run in milliseconds of wall time.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace sgxmig {

using Duration = std::chrono::nanoseconds;

constexpr Duration nanoseconds(uint64_t n) { return Duration(n); }
constexpr Duration microseconds(uint64_t n) { return Duration(n * 1000); }
constexpr Duration milliseconds(uint64_t n) { return Duration(n * 1000000); }
constexpr Duration seconds(double s) {
  return Duration(static_cast<int64_t>(s * 1e9));
}

/// Converts to floating-point seconds for reporting.
double to_seconds(Duration d);
double to_milliseconds(Duration d);

class VirtualClock {
 public:
  /// Monotonic virtual timestamp since world creation.
  Duration now() const { return now_; }

  /// Models the passage of `d` of real time.
  void advance(Duration d) { now_ += d; }

  /// Repositions the clock, possibly BACKWARD.  Reserved for LaneSchedule,
  /// which measures work on one machine's timeline and then returns to the
  /// control instant; everything else must only ever advance().
  void set_now(Duration t) { now_ = t; }

 private:
  Duration now_{0};
};

/// Per-lane virtual-time ledger for pipelined phases.
///
/// The shared VirtualClock serializes everything: two migrations that
/// would genuinely overlap on different machines still SUM their modeled
/// latencies, which is why a synchronous fleet drain is flat in the
/// in-flight cap.  A LaneSchedule gives each serial resource (one lane
/// per machine: its CPU/PSE/disk are serial, different machines are not)
/// its own timeline over the one clock:
///
///   * run(lane, ready_at, fn) positions the clock at
///     max(ready_at, lane end) — rewinding below the control instant if
///     the lane is behind it — runs fn (whose charge()s advance the clock
///     normally, now attributed to the lane), records the lane's new end,
///     and returns the clock to the control instant.
///   * the CONTROL instant is the driver's own "now" (admission decisions,
///     backoff checks); it only moves forward.
///   * horizon() is the max end over every lane run; the destructor lands
///     the clock there, so a stopwatch around the phase reads the
///     PARALLEL wall time (max over lanes), not the serial sum.
///
/// Code running inside fn may read timestamps that later appear to go
/// backward relative to other lanes; every consumer in this codebase
/// (rate limiters, idle timeouts) compares differences defensively, so a
/// negative delta is merely "not yet elapsed".  Deterministic: lane
/// arithmetic introduces no new randomness.
class LaneSchedule {
 public:
  explicit LaneSchedule(VirtualClock& clock)
      : clock_(clock), control_(clock.now()), horizon_(clock.now()) {}
  ~LaneSchedule() { clock_.set_now(horizon()); }

  LaneSchedule(const LaneSchedule&) = delete;
  LaneSchedule& operator=(const LaneSchedule&) = delete;

  /// Runs `fn` on `lane`, starting no earlier than `ready_at` and no
  /// earlier than the lane's previous end.  Returns the completion time.
  /// Nested runs (fn itself calling run, e.g. a network pump inside a
  /// driver step) execute inline on the already-running lane.
  Duration run(const std::string& lane, Duration ready_at,
               const std::function<void()>& fn);

  /// End of the last work on `lane`; the control instant if none ran yet.
  Duration lane_end(const std::string& lane) const;

  Duration control() const { return control_; }
  /// Moves the control instant forward (never backward) and parks the
  /// clock there, so driver code between lane runs reads a consistent
  /// "now".
  void advance_control(Duration t) {
    if (t > control_) control_ = t;
    clock_.set_now(control_);
  }
  /// Adopts clock time that advanced OUTSIDE any lane run (e.g. a chaos
  /// hook rebuilding an enclave at control level) into the control
  /// instant, so it is not discarded by the next lane run's restore.
  void sync_control_from_clock() { advance_control(clock_.now()); }

  /// Max completion time over every lane run so far (>= control).
  Duration horizon() const { return std::max(horizon_, control_); }

  // ----- lane-event feed (event-driven drivers) -----
  //
  // When recording is on, every top-level run() appends one (lane, end)
  // event.  An event-driven driver drains the feed once per scheduling
  // wave to learn which lanes did work since it last looked — the set of
  // machines that may need another pump kick — instead of scanning every
  // machine in the fleet.  Nested runs attribute to the outer lane and
  // produce no separate event.  Off by default so LaneSchedule users that
  // never drain do not accumulate events.

  struct LaneEvent {
    std::string lane;
    Duration end{};
  };

  void set_event_recording(bool on) {
    recording_ = on;
    if (!on) events_.clear();
  }

  /// Drains the recorded events (chronological per lane; interleaved
  /// across lanes in run order).
  std::vector<LaneEvent> take_lane_events() {
    return std::exchange(events_, {});
  }

 private:
  VirtualClock& clock_;
  Duration control_;
  Duration horizon_;
  bool running_ = false;
  bool recording_ = false;
  std::map<std::string, Duration> lane_end_;
  std::vector<LaneEvent> events_;
};

// ----- real-resource probes (scaling benches) -----
//
// The scaling benches gate on the orchestrator's REAL control-plane cost
// (CPU seconds burned driving the simulation), not just virtual wall
// time.  These are the only real-clock reads in the tree and live here
// because sim_clock is the designated real-time boundary; nothing in
// src/ may branch on them.

/// CPU time consumed by this process (user + system), in seconds.
double process_cpu_seconds();

/// Peak resident set size of this process, in bytes (0 if unavailable).
/// Informational: allocator reuse makes it a ceiling, not a per-phase
/// measurement — the benches gate on deterministic byte accounting and
/// report this alongside.
uint64_t process_peak_rss_bytes();

/// RAII stopwatch over a VirtualClock.
class VirtualStopwatch {
 public:
  explicit VirtualStopwatch(const VirtualClock& clock)
      : clock_(clock), start_(clock.now()) {}

  Duration elapsed() const { return clock_.now() - start_; }

 private:
  const VirtualClock& clock_;
  Duration start_;
};

}  // namespace sgxmig

// Deterministic virtual time.
//
// All modeled hardware and network latencies advance a shared VirtualClock
// instead of sleeping, so the benchmark harnesses reproduce the paper's
// timing figures deterministically and run in milliseconds of wall time.
#pragma once

#include <chrono>
#include <cstdint>

namespace sgxmig {

using Duration = std::chrono::nanoseconds;

constexpr Duration nanoseconds(uint64_t n) { return Duration(n); }
constexpr Duration microseconds(uint64_t n) { return Duration(n * 1000); }
constexpr Duration milliseconds(uint64_t n) { return Duration(n * 1000000); }
constexpr Duration seconds(double s) {
  return Duration(static_cast<int64_t>(s * 1e9));
}

/// Converts to floating-point seconds for reporting.
double to_seconds(Duration d);
double to_milliseconds(Duration d);

class VirtualClock {
 public:
  /// Monotonic virtual timestamp since world creation.
  Duration now() const { return now_; }

  /// Models the passage of `d` of real time.
  void advance(Duration d) { now_ += d; }

 private:
  Duration now_{0};
};

/// RAII stopwatch over a VirtualClock.
class VirtualStopwatch {
 public:
  explicit VirtualStopwatch(const VirtualClock& clock)
      : clock_(clock), start_(clock.now()) {}

  Duration elapsed() const { return clock_.now() - start_; }

 private:
  const VirtualClock& clock_;
  Duration start_;
};

}  // namespace sgxmig

// Byte-buffer utilities shared across the whole library.
//
// `Bytes` is the canonical owned byte buffer; `ByteView` the non-owning view.
// All cryptographic comparisons must go through `constant_time_eq`.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sgxmig {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

/// Creates an owned buffer from any contiguous byte range.
Bytes to_bytes(ByteView view);

/// Creates an owned buffer from the raw characters of a string (no NUL).
Bytes to_bytes(std::string_view text);

/// Interprets a byte buffer as text (bytes are copied verbatim).
std::string to_string(ByteView view);

/// Lower-case hex encoding ("deadbeef").
std::string hex_encode(ByteView view);

/// Decodes lower/upper-case hex; returns empty and sets `ok=false` on
/// malformed input (odd length or non-hex characters).
Bytes hex_decode(std::string_view hex, bool* ok = nullptr);

/// Constant-time equality; returns false for mismatched lengths without
/// inspecting contents.
bool constant_time_eq(ByteView a, ByteView b);

/// Best-effort secure wipe (volatile writes so the compiler keeps them).
void secure_wipe(uint8_t* data, size_t len);
void secure_wipe(Bytes& buffer);

/// Appends `suffix` to `dst`.
void append(Bytes& dst, ByteView suffix);

/// XORs `src` into `dst` (lengths must match; asserts in debug).
void xor_into(std::span<uint8_t> dst, ByteView src);

/// Loads/stores in big-endian and little-endian byte order.
uint32_t load_be32(const uint8_t* p);
uint64_t load_be64(const uint8_t* p);
void store_be32(uint8_t* p, uint32_t v);
void store_be64(uint8_t* p, uint64_t v);
uint32_t load_le32(const uint8_t* p);
uint64_t load_le64(const uint8_t* p);
void store_le32(uint8_t* p, uint32_t v);
void store_le64(uint8_t* p, uint64_t v);

/// Fixed-size array helpers (measurements, keys, MACs are all fixed width).
template <size_t N>
std::array<uint8_t, N> to_array(ByteView view) {
  std::array<uint8_t, N> out{};
  const size_t n = view.size() < N ? view.size() : N;
  for (size_t i = 0; i < n; ++i) out[i] = view[i];
  return out;
}

template <size_t N>
Bytes to_bytes(const std::array<uint8_t, N>& a) {
  return Bytes(a.begin(), a.end());
}

}  // namespace sgxmig

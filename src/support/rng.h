// Deterministic pseudo-randomness for the simulation.
//
// This generator (xoshiro256**) seeds everything that is random in the
// simulated world — CPU secrets, nonces via the crypto DRBG, and latency
// jitter — so that every test and benchmark run is reproducible from a
// single seed.  It is NOT a cryptographic generator by itself; enclaves
// draw their randomness from crypto::CtrDrbg, which is seeded from here
// to stand in for RDRAND.
#pragma once

#include <cstdint>

#include "support/bytes.h"

namespace sgxmig {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t next_u64();
  uint32_t next_u32();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t uniform(uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Standard normal via the Marsaglia polar method.
  double gaussian();

  /// Multiplicative jitter factor: max(0.05, 1 + sigma * N(0,1)).
  double jitter(double sigma);

  void fill(uint8_t* out, size_t len);
  Bytes bytes(size_t len);

  /// Derives an independent child generator (for per-machine streams).
  Rng fork();

 private:
  uint64_t state_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace sgxmig

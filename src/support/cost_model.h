// Central table of modeled latencies for the simulated world.
//
// Every latency the paper's evaluation depends on is a named constant here,
// calibrated once against the paper's *baseline* measurements (Fig. 3 / 4
// and §VII-B) and then left alone — the relative results of the benchmarks
// (who wins, by what factor) emerge from the structure of the code paths,
// not from per-experiment tuning.  See DESIGN.md §5.
#pragma once

#include <cstdint>

#include "support/sim_clock.h"

namespace sgxmig {

struct CostModel {
  // Enclave transition costs: EENTER/EEXIT plus the SDK edger8r
  // marshalling of parameter buffers (the paper measures whole ECALLs,
  // whose fixed cost dominates Fig. 4's sub-millisecond bars).
  Duration ecall = microseconds(120);
  Duration ocall = microseconds(15);

  // SGX microcode operations.
  Duration egetkey = microseconds(90);
  Duration ereport = microseconds(30);
  Duration report_verify = microseconds(12);

  // Crypto inside the enclave (AES-NI class throughput).
  double aes_gcm_ns_per_byte = 0.85;
  Duration aes_gcm_fixed = microseconds(2);
  Duration drbg_fixed = microseconds(3);

  // Platform Services monotonic counters (Management Engine flash).
  // Calibrated to the Fig. 3 baseline bars.
  Duration counter_create = milliseconds(250);
  Duration counter_increment = milliseconds(160);
  Duration counter_read = milliseconds(60);
  Duration counter_destroy = milliseconds(280);
  // Logical mass-destroy: ONE firmware journal entry marks every counter
  // of an owner dead (irreversibly — reads fail immediately); the flash
  // slots are reclaimed by the ME firmware's background sweep at
  // counter_destroy cost each, off any enclave's critical path.
  Duration counter_retire = milliseconds(25);
  Duration pse_session = milliseconds(2);

  // Untrusted storage (OCALL + write + fsync for persisted library state).
  Duration disk_write = milliseconds(20);
  Duration disk_read = microseconds(150);

  // Network (LAN inside one data center).
  Duration net_latency = microseconds(120);     // one-way
  double net_bandwidth_gbps = 10.0;

  // Attestation services.
  Duration quote_generation = milliseconds(5);  // QE local attestation + sign
  Duration ias_round_trip = milliseconds(60);   // quote verification service

  // Relative jitter applied to each modeled latency (sigma of a
  // multiplicative gaussian factor); gives the benchmarks realistic
  // confidence intervals while staying reproducible per seed.
  double jitter_sigma = 0.04;

  /// Serialized-data transfer time at the modeled bandwidth.
  Duration transfer_time(uint64_t bytes) const {
    const double seconds_needed =
        static_cast<double>(bytes) * 8.0 / (net_bandwidth_gbps * 1e9);
    return seconds(seconds_needed);
  }

  /// GCM cost for a payload of `bytes`.
  Duration gcm_time(uint64_t bytes) const {
    return aes_gcm_fixed +
           nanoseconds(static_cast<uint64_t>(aes_gcm_ns_per_byte *
                                             static_cast<double>(bytes)));
  }
};

}  // namespace sgxmig

#include "vm/live_migration.h"

#include <algorithm>

namespace sgxmig::vm {

Result<VmMigrationReport> LiveMigrationEngine::migrate(
    Hypervisor& source, Hypervisor& destination, const std::string& vm_name) {
  Vm* vm = source.find_vm(vm_name);
  if (vm == nullptr) return Status::kInvalidParameter;
  if (&source.machine() == &destination.machine()) {
    return Status::kInvalidParameter;
  }

  VirtualClock& clock = world_.clock();
  const CostModel& costs = world_.costs();
  const double bandwidth_bytes_per_s = costs.net_bandwidth_gbps * 1e9 / 8.0;
  const double dirty_rate = vm->dirty_bytes_per_second();

  VmMigrationReport report;
  const Duration start = clock.now();

  // --- enclave pre-migration (non-transparent, paper §VIII) ---
  {
    const Duration t0 = clock.now();
    for (GuestApplication* app : vm->applications()) {
      const Status status = app->on_pre_migration(
          source.machine(), destination.machine().address());
      if (status != Status::kOk) return status;
    }
    report.enclave_pre_time = clock.now() - t0;
  }

  // --- iterative pre-copy ---
  {
    const Duration t0 = clock.now();
    double to_copy = static_cast<double>(vm->memory_bytes());
    for (int round = 0; round < kMaxPrecopyRounds; ++round) {
      if (to_copy <= static_cast<double>(kStopAndCopyThreshold)) break;
      const double round_seconds = to_copy / bandwidth_bytes_per_s;
      clock.advance(seconds(round_seconds));
      report.bytes_copied += static_cast<uint64_t>(to_copy);
      ++report.precopy_rounds;
      // Pages dirtied while this round was copying form the next round.
      const double dirtied = dirty_rate * round_seconds;
      to_copy = std::min(dirtied, static_cast<double>(vm->memory_bytes()));
      if (dirty_rate >= bandwidth_bytes_per_s) break;  // cannot converge
    }
    // Stop-and-copy: pause the guest and transfer the rest.
    const double down_seconds = to_copy / bandwidth_bytes_per_s;
    clock.advance(seconds(down_seconds));
    report.bytes_copied += static_cast<uint64_t>(to_copy);
    report.downtime = seconds(down_seconds);
    report.memory_copy_time = clock.now() - t0;
  }

  // --- switch execution to the destination ---
  std::unique_ptr<Vm> moved = source.detach_vm(vm_name);
  destination.adopt_vm(std::move(moved));

  // --- enclave post-migration ---
  {
    const Duration t0 = clock.now();
    for (GuestApplication* app :
         destination.find_vm(vm_name)->applications()) {
      const Status status = app->on_post_migration(destination.machine());
      if (status != Status::kOk) return status;
    }
    report.enclave_post_time = clock.now() - t0;
  }

  report.total_time = clock.now() - start;
  return report;
}

}  // namespace sgxmig::vm

// Virtual machines and the per-machine hypervisor.
//
// VMs are containers for guest applications (which own enclaves).  Because
// SGX enclave migration cannot be transparent (paper §VIII), applications
// register hooks that the live-migration engine calls around the memory
// copy: the pre-hook triggers migration_start() on every migratable
// enclave, the post-hook restarts them with init(kMigrate) on the
// destination.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "platform/machine.h"

namespace sgxmig::vm {

/// Non-transparent migration hooks for one guest application.
class GuestApplication {
 public:
  virtual ~GuestApplication() = default;

  /// Called on the source before the VM memory copy; the application
  /// must persist enclave state and call migration_start().
  virtual Status on_pre_migration(platform::Machine& source,
                                  const std::string& destination_address) = 0;

  /// Called on the destination after the copy; the application restarts
  /// its enclaves with init(kMigrate).
  virtual Status on_post_migration(platform::Machine& destination) = 0;
};

class Vm {
 public:
  Vm(std::string name, uint64_t memory_bytes, double dirty_bytes_per_second)
      : name_(std::move(name)),
        memory_bytes_(memory_bytes),
        dirty_bytes_per_second_(dirty_bytes_per_second) {}

  const std::string& name() const { return name_; }
  uint64_t memory_bytes() const { return memory_bytes_; }
  double dirty_bytes_per_second() const { return dirty_bytes_per_second_; }

  /// The application does not take ownership; it must outlive the VM.
  void attach_application(GuestApplication* application) {
    applications_.push_back(application);
  }
  const std::vector<GuestApplication*>& applications() const {
    return applications_;
  }

 private:
  std::string name_;
  uint64_t memory_bytes_;
  double dirty_bytes_per_second_;
  std::vector<GuestApplication*> applications_;
};

class Hypervisor {
 public:
  explicit Hypervisor(platform::Machine& machine) : machine_(machine) {}

  platform::Machine& machine() { return machine_; }

  Vm& create_vm(const std::string& name, uint64_t memory_bytes,
                double dirty_bytes_per_second);
  Vm* find_vm(const std::string& name);
  /// Removes and returns the VM (used by the migration engine).
  std::unique_ptr<Vm> detach_vm(const std::string& name);
  void adopt_vm(std::unique_ptr<Vm> vm);
  size_t vm_count() const { return vms_.size(); }

 private:
  platform::Machine& machine_;
  std::vector<std::unique_ptr<Vm>> vms_;
};

}  // namespace sgxmig::vm

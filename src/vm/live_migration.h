// Pre-copy live VM migration (Nelson et al. [10]) with enclave hooks.
//
// Timing model: iterative pre-copy — round 0 transfers all memory at the
// network bandwidth while the guest keeps dirtying pages; each subsequent
// round transfers the pages dirtied during the previous round; when the
// remaining dirty set is small enough (or a round cap is hit) the VM is
// paused and the remainder copied (the downtime).  This gives the
// multi-second VM migration baseline against which the paper's ~0.5 s
// enclave-migration overhead is compared (§VII-B).
#pragma once

#include "platform/world.h"
#include "support/sim_clock.h"
#include "vm/vm.h"

namespace sgxmig::vm {

struct VmMigrationReport {
  Duration total_time{0};       // wall time of the whole migration
  Duration memory_copy_time{0}; // pre-copy + stop-and-copy
  Duration downtime{0};         // stop-and-copy phase
  Duration enclave_pre_time{0};  // migration_start() etc. on the source
  Duration enclave_post_time{0}; // init(kMigrate) etc. on the destination
  uint64_t bytes_copied = 0;
  int precopy_rounds = 0;
};

class LiveMigrationEngine {
 public:
  /// Stops pre-copying when the remaining dirty set is below this.
  static constexpr uint64_t kStopAndCopyThreshold = 16ull << 20;  // 16 MiB
  static constexpr int kMaxPrecopyRounds = 8;

  explicit LiveMigrationEngine(platform::World& world) : world_(world) {}

  /// Migrates `vm_name` from `source` to `destination`, invoking the
  /// guest applications' enclave hooks around the memory copy.
  Result<VmMigrationReport> migrate(Hypervisor& source,
                                    Hypervisor& destination,
                                    const std::string& vm_name);

 private:
  platform::World& world_;
};

}  // namespace sgxmig::vm

#include "vm/vm.h"

namespace sgxmig::vm {

Vm& Hypervisor::create_vm(const std::string& name, uint64_t memory_bytes,
                          double dirty_bytes_per_second) {
  vms_.push_back(
      std::make_unique<Vm>(name, memory_bytes, dirty_bytes_per_second));
  return *vms_.back();
}

Vm* Hypervisor::find_vm(const std::string& name) {
  for (auto& vm : vms_) {
    if (vm->name() == name) return vm.get();
  }
  return nullptr;
}

std::unique_ptr<Vm> Hypervisor::detach_vm(const std::string& name) {
  for (auto it = vms_.begin(); it != vms_.end(); ++it) {
    if ((*it)->name() == name) {
      std::unique_ptr<Vm> vm = std::move(*it);
      vms_.erase(it);
      return vm;
    }
  }
  return nullptr;
}

void Hypervisor::adopt_vm(std::unique_ptr<Vm> vm) {
  vms_.push_back(std::move(vm));
}

}  // namespace sgxmig::vm

// Scripted adversaries implementing the paper's §III attacks.
//
// Each function plays the §III-B fork attack or §III-C roll-back attack
// against a migration mechanism and reports whether the ATTACK SUCCEEDED
// (bad) or was blocked (good).  The adversary has full OS power: it can
// restart applications, snapshot/replay untrusted storage, and choose
// which blobs to feed to enclaves — exactly the §III-A threat model.
//
//   mechanism            fork attack   roll-back    migrate back to source
//   Gu et al., volatile   SUCCEEDS      SUCCEEDS     possible
//   Gu et al., persisted  blocked       SUCCEEDS*    IMPOSSIBLE (limitation)
//   this paper            blocked       blocked      possible
//
//   * persisting the spin flag does not migrate counters, so the §III-C
//     roll-back against KDC-encrypted state still works.
#pragma once

#include <string>

#include "platform/world.h"

namespace sgxmig::attacks {

enum class Mechanism {
  kGuVolatileFlag,   // Gu et al. [2], spin flag not persisted
  kGuPersistedFlag,  // Gu et al. [2], spin flag sealed to disk
  kOurScheme,        // this paper: Migration Enclave + Migration Library
};

std::string mechanism_name(Mechanism mechanism);

struct AttackReport {
  bool attack_succeeded = false;
  std::string detail;
};

/// §III-B: create two concurrently operating copies of the enclave with
/// inconsistent persistent state.
AttackReport run_fork_attack(platform::World& world, Mechanism mechanism);

/// §III-C: make the enclave accept a stale version of its persistent
/// state after a migration.
AttackReport run_rollback_attack(platform::World& world, Mechanism mechanism);

/// §III-B discussion: after migrating m0 -> m1, can the enclave legally
/// migrate back to m0?  (Gu et al.'s persisted flag forbids it.)
struct MigrateBackReport {
  bool migrate_back_possible = false;
  std::string detail;
};
MigrateBackReport check_migrate_back(platform::World& world,
                                     Mechanism mechanism);

/// The data-loss failure (§II-B): standard-sealed data after migration.
/// Returns true if the data is lost (unsealable on the destination).
bool check_sealed_data_loss_without_msk(platform::World& world);

}  // namespace sgxmig::attacks

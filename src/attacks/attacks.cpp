#include "attacks/attacks.h"

#include <memory>

#include "apps/versioned_state.h"
#include "baseline/nonmigratable.h"
#include "migration/migration_enclave.h"

namespace sgxmig::attacks {

namespace {

using apps::PersistenceMode;
using apps::VersionedStateEnclave;
using baseline::GuMigrationLibrary;
using migration::InitState;
using migration::MigrationEnclave;
using platform::Machine;
using platform::World;
using sgx::EnclaveImage;

using FlagMode = GuMigrationLibrary::FlagMode;

constexpr char kGuFlagBlob[] = "gu.flag";
constexpr char kLibStateBlob[] = "ml.state";

/// Unique machine names so one World can host several attack runs.
std::string unique_name(const std::string& prefix) {
  static int counter = 0;
  return prefix + "-" + std::to_string(counter++);
}

sgx::Key128 kdc_key() {
  // The key an external KDC (e.g. AWS KMS, §III-C) provisioned into the
  // enclave via remote attestation; same on every machine by design.
  sgx::Key128 key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(0x40 + i);
  return key;
}

std::shared_ptr<const EnclaveImage> victim_image() {
  static const auto image = EnclaveImage::create("victim-app", 1, "victim-co");
  return image;
}

/// Starts a Gu-style (KDC-sealed) enclave instance on `machine`, restoring
/// the spin flag from storage as the honest application would.
std::unique_ptr<VersionedStateEnclave> start_gu_instance(Machine& machine,
                                                         FlagMode flag_mode) {
  auto enclave = std::make_unique<VersionedStateEnclave>(
      machine, victim_image(), PersistenceMode::kKdcSeal, flag_mode);
  enclave->ecall_install_kdc_key(kdc_key());
  enclave->gu_library().set_persist_callback([&machine](ByteView blob) {
    machine.storage().put(kGuFlagBlob, blob);
  });
  Bytes flag_blob;
  if (machine.storage().exists(kGuFlagBlob)) {
    flag_blob = machine.storage().get(kGuFlagBlob).value();
  }
  enclave->gu_library().restore(flag_blob);
  return enclave;
}

/// Gu et al. migration of the enclave's memory image src -> dst.
Status gu_migrate(VersionedStateEnclave& source,
                  VersionedStateEnclave& destination) {
  auto image = source.ecall_export_memory_image();
  if (!image.ok()) return image.status();
  Bytes received;
  const Status status = GuMigrationLibrary::migrate_memory(
      source.gu_library(), image.value(), destination.gu_library(), &received);
  if (status != Status::kOk) return status;
  return destination.ecall_import_memory_image(received);
}

/// Starts an instance of OUR migratable enclave with the persist OCALL
/// wired to the machine's storage.
std::unique_ptr<VersionedStateEnclave> make_our_instance(Machine& machine) {
  auto enclave = std::make_unique<VersionedStateEnclave>(
      machine, victim_image(), PersistenceMode::kMigratable);
  enclave->set_persist_callback([&machine](ByteView blob) {
    machine.storage().put(kLibStateBlob, blob);
  });
  return enclave;
}

}  // namespace

std::string mechanism_name(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kGuVolatileFlag: return "Gu et al. (flag not persisted)";
    case Mechanism::kGuPersistedFlag: return "Gu et al. (flag persisted)";
    case Mechanism::kOurScheme: return "this paper (ME + ML)";
  }
  return "?";
}

// ----------------------------------------------------------------------
// §III-B fork attack
// ----------------------------------------------------------------------

namespace {

AttackReport fork_attack_gu(World& world, FlagMode flag_mode) {
  Machine& src = world.add_machine(unique_name("fork-src"));
  Machine& dst = world.add_machine(unique_name("fork-dst"));

  // Step 1 (start-stop-restart): first start creates counter c and
  // persists state with version v = 1.
  auto enclave = start_gu_instance(src, flag_mode);
  enclave->ecall_set_state(to_bytes(std::string_view("channel-keys-v1")));
  auto persisted = enclave->ecall_persist();
  const Bytes blob_v1 = persisted.value().blob;
  const sgx::CounterUuid src_uuid = persisted.value().counter_uuid;
  enclave.reset();
  enclave = start_gu_instance(src, flag_mode);
  if (enclave->ecall_restore(blob_v1, src_uuid) != Status::kOk) {
    return {false, "setup restart failed unexpectedly"};
  }

  // Step 2 (migrate): Gu-style memory migration to the destination, then
  // continued operation there (new counter c', versions advance).
  auto dst_enclave = start_gu_instance(dst, flag_mode);
  if (gu_migrate(*enclave, *dst_enclave) != Status::kOk) {
    return {false, "gu migration failed unexpectedly"};
  }
  dst_enclave->ecall_set_state(to_bytes(std::string_view("state-on-dst")));
  dst_enclave->ecall_persist();
  dst_enclave->ecall_persist();

  // Step 3 (terminate-restart): restart the application on the SOURCE
  // with the persistent state from step 1.
  enclave.reset();
  auto fork = start_gu_instance(src, flag_mode);
  if (fork->gu_library().spin_locked()) {
    return {false,
            "blocked: persisted spin flag refuses to operate on the source "
            "(granting, as the paper does, that the flag blob cannot be "
            "suppressed)"};
  }
  const Status restored = fork->ecall_restore(blob_v1, src_uuid);
  if (restored != Status::kOk) {
    return {false, std::string("blocked: restore failed with ") +
                       std::string(status_name(restored))};
  }
  // Both instances now operate concurrently with inconsistent state.
  const bool src_alive =
      fork->ecall_persist().ok();  // source keeps making progress
  const bool dst_alive = dst_enclave->ecall_persist().ok();
  if (src_alive && dst_alive) {
    return {true,
            "FORK: enclave live on source (from v=1 state) and destination "
            "simultaneously"};
  }
  return {false, "one of the copies could not operate"};
}

AttackReport fork_attack_ours(World& world) {
  Machine& src = world.add_machine(unique_name("fork-src"));
  Machine& dst = world.add_machine(unique_name("fork-dst"));
  MigrationEnclave me_src(src, MigrationEnclave::standard_image(),
                          world.provider());
  MigrationEnclave me_dst(dst, MigrationEnclave::standard_image(),
                          world.provider());

  // Step 1: first start, persist v=1, restart from persistent state.
  auto enclave = make_our_instance(src);
  enclave->ecall_migration_init(ByteView(), InitState::kNew, src.address());
  src.storage().put(kLibStateBlob, enclave->sealed_state());
  enclave->ecall_set_state(to_bytes(std::string_view("channel-keys-v1")));
  const Bytes blob_v1 = enclave->ecall_persist().value().blob;
  const auto pre_migration_disk = src.storage().snapshot();
  enclave.reset();
  enclave = make_our_instance(src);
  if (enclave->ecall_migration_init(src.storage().get(kLibStateBlob).value(),
                                    InitState::kRestore,
                                    src.address()) != Status::kOk ||
      enclave->ecall_restore_migratable(blob_v1) != Status::kOk) {
    return {false, "setup restart failed unexpectedly"};
  }

  // Step 2: migrate with the paper's mechanism; continue on destination.
  if (enclave->ecall_migration_start(dst.address()) != Status::kOk) {
    return {false, "migration failed unexpectedly"};
  }
  auto dst_enclave = make_our_instance(dst);
  if (dst_enclave->ecall_migration_init(ByteView(), InitState::kMigrate,
                                        dst.address()) != Status::kOk) {
    return {false, "incoming migration failed unexpectedly"};
  }
  dst_enclave->ecall_set_state(to_bytes(std::string_view("state-on-dst")));
  dst_enclave->ecall_persist();

  // Step 3: restart on the source.  The adversary tries BOTH the current
  // (frozen) library state and a replayed pre-migration disk image.
  enclave.reset();
  {
    auto fork = make_our_instance(src);
    const Status init = fork->ecall_migration_init(
        src.storage().get(kLibStateBlob).value(), InitState::kRestore,
        src.address());
    if (init == Status::kOk &&
        fork->ecall_restore_migratable(blob_v1) == Status::kOk) {
      return {true, "FORK via current state: freeze flag ineffective"};
    }
  }
  src.storage().restore(pre_migration_disk);
  {
    auto fork = make_our_instance(src);
    const Status init = fork->ecall_migration_init(
        src.storage().get(kLibStateBlob).value(), InitState::kRestore,
        src.address());
    if (init != Status::kOk) {
      return {false, std::string("blocked at init: ") +
                         std::string(status_name(init))};
    }
    // Old, unfrozen state restores — but its hardware counters were
    // destroyed before the migration data left the machine.
    const auto restored = fork->ecall_restore_migratable(blob_v1);
    if (restored == Status::kOk) {
      return {true, "FORK via replayed pre-migration state"};
    }
    return {false, std::string("blocked: replayed state unusable (") +
                       std::string(status_name(restored)) +
                       ", counters destroyed before data left the source)"};
  }
}

}  // namespace

AttackReport run_fork_attack(World& world, Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kGuVolatileFlag:
      return fork_attack_gu(world, FlagMode::kVolatile);
    case Mechanism::kGuPersistedFlag:
      return fork_attack_gu(world, FlagMode::kPersisted);
    case Mechanism::kOurScheme:
      return fork_attack_ours(world);
  }
  return {false, "?"};
}

// ----------------------------------------------------------------------
// §III-C roll-back attack
// ----------------------------------------------------------------------

namespace {

AttackReport rollback_attack_gu(World& world, FlagMode flag_mode) {
  Machine& src = world.add_machine(unique_name("rb-src"));
  Machine& dst = world.add_machine(unique_name("rb-dst"));

  // Step 1: start-stop-restart; persist v = 1 and keep the blob.
  auto enclave = start_gu_instance(src, flag_mode);
  enclave->ecall_set_state(to_bytes(std::string_view("ledger-v1")));
  auto persisted = enclave->ecall_persist();
  const Bytes blob_v1 = persisted.value().blob;

  // Step 2: continue on the source (v = 2, 3, ...).
  enclave->ecall_set_state(to_bytes(std::string_view("ledger-v2")));
  enclave->ecall_persist();
  enclave->ecall_set_state(to_bytes(std::string_view("ledger-v3")));
  enclave->ecall_persist();

  // Step 3: migrate to the destination (memory only; counters stay).
  auto dst_enclave = start_gu_instance(dst, flag_mode);
  if (gu_migrate(*enclave, *dst_enclave) != Status::kOk) {
    return {false, "gu migration failed unexpectedly"};
  }

  // Step 4: terminate on the destination -> the enclave persists its
  // state, creating a FRESH counter on the destination (c' = 1).
  auto dst_persisted = dst_enclave->ecall_persist();
  if (!dst_persisted.ok()) {
    return {false, "destination persist failed unexpectedly"};
  }
  const sgx::CounterUuid dst_uuid = dst_persisted.value().counter_uuid;
  dst_enclave.reset();

  // Step 5: restart on the destination, but feed the ORIGINAL v=1 blob.
  auto restarted = start_gu_instance(dst, flag_mode);
  const Status restored = restarted->ecall_restore(blob_v1, dst_uuid);
  if (restored == Status::kOk) {
    return {true,
            "ROLL-BACK: destination accepted v=1 state because its fresh "
            "counter value (1) matches the stale version number"};
  }
  return {false, std::string("blocked: ") + std::string(status_name(restored))};
}

AttackReport rollback_attack_ours(World& world) {
  Machine& src = world.add_machine(unique_name("rb-src"));
  Machine& dst = world.add_machine(unique_name("rb-dst"));
  MigrationEnclave me_src(src, MigrationEnclave::standard_image(),
                          world.provider());
  MigrationEnclave me_dst(dst, MigrationEnclave::standard_image(),
                          world.provider());

  auto enclave = make_our_instance(src);
  enclave->ecall_migration_init(ByteView(), InitState::kNew, src.address());
  src.storage().put(kLibStateBlob, enclave->sealed_state());
  enclave->ecall_set_state(to_bytes(std::string_view("ledger-v1")));
  const Bytes blob_v1 = enclave->ecall_persist().value().blob;
  enclave->ecall_set_state(to_bytes(std::string_view("ledger-v2")));
  enclave->ecall_persist();
  enclave->ecall_set_state(to_bytes(std::string_view("ledger-v3")));
  enclave->ecall_persist();

  if (enclave->ecall_migration_start(dst.address()) != Status::kOk) {
    return {false, "migration failed unexpectedly"};
  }
  enclave.reset();
  auto dst_enclave = make_our_instance(dst);
  if (dst_enclave->ecall_migration_init(ByteView(), InitState::kMigrate,
                                        dst.address()) != Status::kOk) {
    return {false, "incoming migration failed unexpectedly"};
  }

  // Terminate + restart on the destination, feeding the stale v=1 blob.
  dst_enclave.reset();
  auto restarted = make_our_instance(dst);
  const Status init = restarted->ecall_migration_init(
      dst.storage().get(kLibStateBlob).value(), InitState::kRestore,
      dst.address());
  if (init != Status::kOk) {
    return {false,
            std::string("blocked at init: ") + std::string(status_name(init))};
  }
  const Status restored = restarted->ecall_restore_migratable(blob_v1);
  if (restored == Status::kOk) {
    return {true, "ROLL-BACK: stale v=1 state accepted after migration"};
  }
  return {false,
          std::string("blocked: migrated counter kept its effective value (") +
              std::string(status_name(restored)) + ")"};
}

}  // namespace

AttackReport run_rollback_attack(World& world, Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kGuVolatileFlag:
      return rollback_attack_gu(world, FlagMode::kVolatile);
    case Mechanism::kGuPersistedFlag:
      return rollback_attack_gu(world, FlagMode::kPersisted);
    case Mechanism::kOurScheme:
      return rollback_attack_ours(world);
  }
  return {false, "?"};
}

// ----------------------------------------------------------------------
// migrate-back restriction (§III-B discussion)
// ----------------------------------------------------------------------

MigrateBackReport check_migrate_back(World& world, Mechanism mechanism) {
  Machine& m0 = world.add_machine(unique_name("mb-m0"));
  Machine& m1 = world.add_machine(unique_name("mb-m1"));

  if (mechanism == Mechanism::kOurScheme) {
    MigrationEnclave me0(m0, MigrationEnclave::standard_image(),
                         world.provider());
    MigrationEnclave me1(m1, MigrationEnclave::standard_image(),
                         world.provider());
    auto enclave = make_our_instance(m0);
    enclave->ecall_migration_init(ByteView(), InitState::kNew, m0.address());
    enclave->ecall_set_state(to_bytes(std::string_view("state")));
    enclave->ecall_persist();
    if (enclave->ecall_migration_start(m1.address()) != Status::kOk) {
      return {false, "first migration failed"};
    }
    enclave.reset();
    enclave = make_our_instance(m1);
    if (enclave->ecall_migration_init(ByteView(), InitState::kMigrate,
                                      m1.address()) != Status::kOk) {
      return {false, "incoming migration failed"};
    }
    if (enclave->ecall_migration_start(m0.address()) != Status::kOk) {
      return {false, "migration back was rejected"};
    }
    enclave.reset();
    enclave = make_our_instance(m0);
    const Status back = enclave->ecall_migration_init(
        ByteView(), InitState::kMigrate, m0.address());
    if (back == Status::kOk) {
      return {true, "m0 -> m1 -> m0 round trip works"};
    }
    return {false, std::string("migrate back failed: ") +
                       std::string(status_name(back))};
  }

  const FlagMode flag_mode = mechanism == Mechanism::kGuPersistedFlag
                                 ? FlagMode::kPersisted
                                 : FlagMode::kVolatile;
  auto enclave = start_gu_instance(m0, flag_mode);
  enclave->ecall_set_state(to_bytes(std::string_view("state")));
  auto dst_enclave = start_gu_instance(m1, flag_mode);
  if (gu_migrate(*enclave, *dst_enclave) != Status::kOk) {
    return {false, "first migration failed"};
  }
  // Migrate back: a fresh instance on m0 must be able to receive.
  enclave.reset();
  auto back_instance = start_gu_instance(m0, flag_mode);
  const Status back = gu_migrate(*dst_enclave, *back_instance);
  if (back == Status::kOk) {
    return {true, "m0 -> m1 -> m0 round trip works"};
  }
  return {false,
          std::string("migrate back blocked: ") +
              std::string(status_name(back)) +
              " (the persisted flag makes the source machine permanently "
              "unusable for this enclave)"};
}

bool check_sealed_data_loss_without_msk(World& world) {
  Machine& m0 = world.add_machine(unique_name("dl-m0"));
  Machine& m1 = world.add_machine(unique_name("dl-m1"));
  baseline::BaselineEnclave src(m0, victim_image());
  const Bytes sealed =
      src.ecall_seal(ByteView(), to_bytes(std::string_view("keys"))).value();
  baseline::BaselineEnclave dst(m1, victim_image());
  return !dst.ecall_unseal(sealed).ok();
}

}  // namespace sgxmig::attacks

// The per-World observability bundle: one TraceRecorder + one
// MetricsRegistry, reached from any layer through
// sgx::PlatformIface::observability() (machines forward to their World's
// instance) or net::Network::set_observability.
//
// Disabled by default.  Instrumentation sites guard with
// `obs != nullptr && obs->enabled()`; neither component charges virtual
// time or draws randomness, so a traced run of a given seed produces
// EXACTLY the virtual timings of the untraced run — the property
// bench_fleet_drain's tracing_overhead gate enforces.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sgxmig::obs {

struct Observability {
  explicit Observability(const VirtualClock& clock) : trace(clock) {}

  void set_enabled(bool on) {
    enabled_ = on;
    trace.set_enabled(on);
    metrics.set_enabled(on);
  }
  bool enabled() const { return enabled_; }

  TraceRecorder trace;
  MetricsRegistry metrics;

 private:
  bool enabled_ = false;
};

}  // namespace sgxmig::obs

#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "support/json.h"
#include "support/stats.h"

namespace sgxmig::obs {

void MetricsRegistry::add(const std::string& name, uint64_t delta) {
  if (!enabled_) return;
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  if (!enabled_) return;
  Gauge& gauge = gauges_[name];
  gauge.value = value;
  gauge.max = std::max(gauge.max, value);
}

void MetricsRegistry::observe(const std::string& name, double value) {
  if (!enabled_) return;
  histograms_[name].push_back(value);
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value;
}

double MetricsRegistry::gauge_max(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.max;
}

size_t MetricsRegistry::histogram_count(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? 0 : it->second.size();
}

double MetricsRegistry::histogram_mean(const std::string& name) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end() || it->second.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : it->second) sum += v;
  return sum / static_cast<double>(it->second.size());
}

double MetricsRegistry::histogram_percentile(const std::string& name,
                                             double p) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return 0.0;
  return percentile_nearest_rank(it->second, p);
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

void append_number(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, name);
    out += ": {\"value\": ";
    append_number(out, gauge.value);
    out += ", \"max\": ";
    append_number(out, gauge.max);
    out += "}";
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, samples] : histograms_) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(samples.size());
    out += ", \"mean\": ";
    append_number(out, histogram_mean(name));
    double min = 0.0, max = 0.0;
    if (!samples.empty()) {
      min = *std::min_element(samples.begin(), samples.end());
      max = *std::max_element(samples.begin(), samples.end());
    }
    out += ", \"min\": ";
    append_number(out, min);
    out += ", \"max\": ";
    append_number(out, max);
    out += ", \"p50\": ";
    append_number(out, percentile_nearest_rank(samples, 50.0));
    out += ", \"p99\": ";
    append_number(out, percentile_nearest_rank(samples, 99.0));
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace sgxmig::obs

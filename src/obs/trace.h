// Cross-layer trace recorder: spans and instant events stamped with the
// virtual clock and attributed to LaneSchedule lanes (one lane per
// machine), so a pipelined fleet drain renders as a per-machine timeline.
//
// Trace ids are the migration attempt nonces already flowing through the
// protocol (MigrateRequest/Reserve/Transfer payloads): every layer that
// touches an attempt — library freeze/arm/finalize, ME TransferTask
// steps, the destination restore — records against the same id, and the
// recorder stitches the spans into ONE tree per migration without parent
// ids ever crossing the wire: the first span recorded for a trace id
// becomes the tree's root, and later spans with no explicit parent are
// parented to it.
//
// Disabled by default (set_enabled): when off, begin_span returns 0 and
// every other call is a cheap early-return.  The recorder never touches
// the virtual clock (reads only) and draws no randomness, so traced and
// untraced runs of the same seed produce IDENTICAL virtual timings —
// the zero-overhead-when-off property bench_fleet_drain gates on.
//
// Export: to_chrome_json() emits Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing): machines as processes, spans as async
// nestable events grouped per trace id (so concurrent migrations on one
// lane get separate rows), instants as "i" events, and per-lane queue
// depths as "C" counter tracks.  scripts/trace_check.py consumes the
// same file as a correctness oracle.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/sim_clock.h"

namespace sgxmig::obs {

using TraceArgs = std::vector<std::pair<std::string, std::string>>;

struct TraceSpan {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root of its trace tree
  uint64_t trace_id = 0;   // migration attempt nonce; 0 = standalone
  std::string name;
  std::string lane;  // machine address; "" = control plane
  Duration start{};
  Duration end{};
  bool open = true;
  TraceArgs args;
};

struct TraceInstant {
  std::string name;
  std::string lane;
  uint64_t trace_id = 0;
  Duration at{};
  TraceArgs args;
};

/// One sample of a named per-lane counter track (Chrome "C" event).
struct TraceCounterSample {
  std::string name;
  std::string lane;
  Duration at{};
  double value = 0.0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(const VirtualClock& clock) : clock_(clock) {}

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Opens a span starting now.  Returns its id, or 0 when disabled.
  /// parent_id 0 + a nonzero trace_id auto-parents to the trace's root
  /// span (or REGISTERS this span as the root if it is the first).
  uint64_t begin_span(std::string name, const std::string& lane,
                      uint64_t trace_id = 0, uint64_t parent_id = 0);
  /// Closes the span at the current virtual time.  A root that was
  /// already closed is re-extended when a late child closes after it, so
  /// trees stay well-nested even when lanes complete out of order.
  void end_span(uint64_t span_id);
  void span_arg(uint64_t span_id, std::string key, std::string value);
  void span_arg(uint64_t span_id, std::string key, uint64_t value);
  /// Late trace-id binding for spans whose id is drawn after the span
  /// opened (the freeze starts before the attempt nonce exists).  Also
  /// resolves the root-or-child decision begin_span would have made.
  void assign_trace(uint64_t span_id, uint64_t trace_id);

  void instant(std::string name, const std::string& lane,
               uint64_t trace_id = 0, TraceArgs args = {});
  /// Instant with an explicit timestamp (deferred network deliveries
  /// happen at a scheduled instant, not at the recorder-call instant).
  void instant_at(Duration at, std::string name, const std::string& lane,
                  uint64_t trace_id = 0, TraceArgs args = {});

  void counter(const std::string& name, const std::string& lane,
               double value);
  void counter_at(Duration at, const std::string& name,
                  const std::string& lane, double value);

  /// Root span id registered for `trace_id`; 0 when none yet.
  uint64_t trace_root(uint64_t trace_id) const;
  /// Ends the root span of `trace_id` no earlier than now and no earlier
  /// than any closed child (the "migration done" stamp).
  void end_trace_root(uint64_t trace_id);

  // ----- inspection (tests, the invariant checker's C++ twin) -----
  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceInstant>& instants() const { return instants_; }
  const std::vector<TraceCounterSample>& counter_samples() const {
    return counter_samples_;
  }
  const TraceSpan* find_span(uint64_t span_id) const;
  size_t open_span_count() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}).  Open spans are
  /// closed at the latest recorded timestamp and tagged "open": 1.
  std::string to_chrome_json() const;

  void clear();

 private:
  TraceSpan* mutable_span(uint64_t span_id);

  const VirtualClock& clock_;
  bool enabled_ = false;
  std::vector<TraceSpan> spans_;  // span_id = index + 1 (never erased)
  std::vector<TraceInstant> instants_;
  std::vector<TraceCounterSample> counter_samples_;
  std::map<uint64_t, uint64_t> root_of_trace_;  // trace_id -> span_id
};

}  // namespace sgxmig::obs

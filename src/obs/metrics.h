// Per-World metrics registry: named counters, gauges (current + max),
// and histograms with nearest-rank p50/p99, fed by every instrumented
// layer (library, ME pump, network, PSE, persistence engines).
//
// Disabled by default; when off every record call is a cheap early
// return, and the registry never touches the virtual clock or RNG, so
// enabling metrics cannot perturb simulated timings.
//
// to_json() renders one {"counters": ..., "gauges": ..., "histograms":
// ...} block, merged into OrchestratorReport::to_json and the
// BENCH_*.json emitters.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sgxmig::obs {

class MetricsRegistry {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void add(const std::string& name, uint64_t delta = 1);
  /// Sets the gauge's current value; its max-so-far is tracked alongside.
  void set_gauge(const std::string& name, double value);
  void observe(const std::string& name, double value);

  uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  double gauge_max(const std::string& name) const;
  size_t histogram_count(const std::string& name) const;
  double histogram_mean(const std::string& name) const;
  /// Nearest-rank percentile of the named histogram (p in [0, 100]);
  /// 0 when the histogram is empty or unknown.
  double histogram_percentile(const std::string& name, double p) const;

  /// {"counters": {...}, "gauges": {name: {"value", "max"}}, "histograms":
  ///  {name: {"count", "mean", "min", "max", "p50", "p99"}}}
  std::string to_json() const;

  void clear();

 private:
  struct Gauge {
    double value = 0.0;
    double max = 0.0;
  };

  bool enabled_ = false;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, std::vector<double>> histograms_;
};

}  // namespace sgxmig::obs

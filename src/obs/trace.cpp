#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "support/json.h"

namespace sgxmig::obs {

uint64_t TraceRecorder::begin_span(std::string name, const std::string& lane,
                                   uint64_t trace_id, uint64_t parent_id) {
  if (!enabled_) return 0;
  TraceSpan span;
  span.span_id = spans_.size() + 1;
  span.trace_id = trace_id;
  span.name = std::move(name);
  span.lane = lane;
  span.start = clock_.now();
  span.end = span.start;
  if (parent_id != 0) {
    span.parent_id = parent_id;
  } else if (trace_id != 0) {
    const auto root = root_of_trace_.find(trace_id);
    if (root == root_of_trace_.end()) {
      root_of_trace_.emplace(trace_id, span.span_id);
    } else {
      span.parent_id = root->second;
    }
  }
  spans_.push_back(std::move(span));
  return spans_.back().span_id;
}

TraceSpan* TraceRecorder::mutable_span(uint64_t span_id) {
  if (span_id == 0 || span_id > spans_.size()) return nullptr;
  return &spans_[span_id - 1];
}

const TraceSpan* TraceRecorder::find_span(uint64_t span_id) const {
  if (span_id == 0 || span_id > spans_.size()) return nullptr;
  return &spans_[span_id - 1];
}

void TraceRecorder::end_span(uint64_t span_id) {
  TraceSpan* span = mutable_span(span_id);
  if (span == nullptr || !span->open) return;
  span->end = std::max(span->start, clock_.now());
  span->open = false;
  // Lanes complete out of order in virtual time: a child may close AFTER
  // its (already closed) root — e.g. the source's freeze-ending poll runs
  // later on its lane than the destination's confirm that ended the root.
  // Re-extend every closed ancestor so the tree stays well-nested.
  uint64_t parent_id = span->parent_id;
  const Duration end = span->end;
  while (parent_id != 0) {
    TraceSpan* parent = mutable_span(parent_id);
    if (parent == nullptr) break;
    if (!parent->open && parent->end < end) parent->end = end;
    parent_id = parent->parent_id;
  }
}

void TraceRecorder::span_arg(uint64_t span_id, std::string key,
                             std::string value) {
  TraceSpan* span = mutable_span(span_id);
  if (span == nullptr) return;
  span->args.emplace_back(std::move(key), std::move(value));
}

void TraceRecorder::span_arg(uint64_t span_id, std::string key,
                             uint64_t value) {
  span_arg(span_id, std::move(key), std::to_string(value));
}

void TraceRecorder::assign_trace(uint64_t span_id, uint64_t trace_id) {
  TraceSpan* span = mutable_span(span_id);
  if (span == nullptr || trace_id == 0) return;
  span->trace_id = trace_id;
  if (span->parent_id != 0) return;
  const auto root = root_of_trace_.find(trace_id);
  if (root == root_of_trace_.end()) {
    root_of_trace_.emplace(trace_id, span_id);
  } else if (root->second != span_id) {
    span->parent_id = root->second;
  }
}

void TraceRecorder::instant(std::string name, const std::string& lane,
                            uint64_t trace_id, TraceArgs args) {
  instant_at(clock_.now(), std::move(name), lane, trace_id, std::move(args));
}

void TraceRecorder::instant_at(Duration at, std::string name,
                               const std::string& lane, uint64_t trace_id,
                               TraceArgs args) {
  if (!enabled_) return;
  TraceInstant event;
  event.name = std::move(name);
  event.lane = lane;
  event.trace_id = trace_id;
  event.at = at;
  event.args = std::move(args);
  instants_.push_back(std::move(event));
}

void TraceRecorder::counter(const std::string& name, const std::string& lane,
                            double value) {
  counter_at(clock_.now(), name, lane, value);
}

void TraceRecorder::counter_at(Duration at, const std::string& name,
                               const std::string& lane, double value) {
  if (!enabled_) return;
  counter_samples_.push_back({name, lane, at, value});
}

uint64_t TraceRecorder::trace_root(uint64_t trace_id) const {
  const auto it = root_of_trace_.find(trace_id);
  return it == root_of_trace_.end() ? 0 : it->second;
}

void TraceRecorder::end_trace_root(uint64_t trace_id) {
  const uint64_t root_id = trace_root(trace_id);
  TraceSpan* root = mutable_span(root_id);
  if (root == nullptr) return;
  Duration end = std::max(root->start, clock_.now());
  for (const TraceSpan& span : spans_) {
    if (span.trace_id == trace_id && !span.open && span.end > end) {
      end = span.end;
    }
  }
  if (root->open || root->end < end) {
    root->end = end;
    root->open = false;
  }
}

size_t TraceRecorder::open_span_count() const {
  size_t n = 0;
  for (const TraceSpan& span : spans_) n += span.open ? 1 : 0;
  return n;
}

void TraceRecorder::clear() {
  spans_.clear();
  instants_.clear();
  counter_samples_.clear();
  root_of_trace_.clear();
}

namespace {

/// Chrome trace-event timestamps are microseconds; keep ns resolution
/// with three decimals so trace-derived windows match reported ones.
void append_ts(std::string& out, Duration d) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(d.count()) / 1000.0);
  out += buf;
}

void append_args(std::string& out, const TraceArgs& args) {
  out += "\"args\": {";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, key);
    out += ": ";
    append_json_string(out, value);
  }
  out += "}";
}

}  // namespace

std::string TraceRecorder::to_chrome_json() const {
  // Machines as processes: every lane string gets a pid (creation-order
  // stable); the control lane ("") is pid 1, named "control".
  std::map<std::string, int> pids;
  const auto pid_of = [&pids](const std::string& lane) {
    const auto it = pids.find(lane);
    if (it != pids.end()) return it->second;
    const int pid = static_cast<int>(pids.size()) + 1;
    pids.emplace(lane, pid);
    return pid;
  };
  pid_of("");
  for (const TraceSpan& span : spans_) pid_of(span.lane);
  for (const TraceInstant& event : instants_) pid_of(event.lane);
  for (const TraceCounterSample& sample : counter_samples_) pid_of(sample.lane);

  Duration horizon{};
  for (const TraceSpan& span : spans_) {
    horizon = std::max(horizon, std::max(span.start, span.end));
  }
  for (const TraceInstant& event : instants_) {
    horizon = std::max(horizon, event.at);
  }

  std::string out = "{\"traceEvents\": [";
  bool first = true;
  const auto sep = [&out, &first] {
    if (!first) out += ", ";
    first = false;
  };

  for (const auto& [lane, pid] : pids) {
    sep();
    out += "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " +
           std::to_string(pid) + ", \"tid\": 0, \"args\": {\"name\": ";
    append_json_string(out, lane.empty() ? "control" : lane);
    out += "}}";
    sep();
    out += "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " +
           std::to_string(pid) + ", \"tid\": 1, \"args\": {\"name\": ";
    append_json_string(out, lane.empty() ? "control" : lane + " lane");
    out += "}}";
  }

  char idbuf[32];
  for (const TraceSpan& span : spans_) {
    // Async nestable pair: migrations overlapping on one lane must not
    // share a synchronous slice stack, so each trace id gets its own
    // async track group under the machine's process.
    const uint64_t group = span.trace_id != 0 ? span.trace_id : span.span_id;
    std::snprintf(idbuf, sizeof(idbuf), "\"0x%llx\"",
                  static_cast<unsigned long long>(group));
    const std::string common = std::string("\"cat\": \"span\", \"id\": ") +
                               idbuf + ", \"pid\": " +
                               std::to_string(pid_of(span.lane)) +
                               ", \"tid\": 1, \"name\": " +
                               json_string(span.name);
    sep();
    out += "{\"ph\": \"b\", " + common + ", \"ts\": ";
    append_ts(out, span.start);
    out += ", ";
    TraceArgs args = span.args;
    args.emplace_back("span", std::to_string(span.span_id));
    args.emplace_back("parent", std::to_string(span.parent_id));
    args.emplace_back("trace", std::to_string(span.trace_id));
    args.emplace_back("lane", span.lane);
    if (span.open) args.emplace_back("open", "1");
    append_args(out, args);
    out += "}";
    sep();
    out += "{\"ph\": \"e\", " + common + ", \"ts\": ";
    append_ts(out, span.open ? std::max(horizon, span.start) : span.end);
    out += ", \"args\": {\"span\": ";
    append_json_string(out, std::to_string(span.span_id));
    out += "}}";
  }

  for (const TraceInstant& event : instants_) {
    sep();
    out += "{\"ph\": \"i\", \"s\": \"t\", \"pid\": " +
           std::to_string(pid_of(event.lane)) + ", \"tid\": 1, \"name\": " +
           json_string(event.name) + ", \"ts\": ";
    append_ts(out, event.at);
    out += ", ";
    TraceArgs args = event.args;
    args.emplace_back("trace", std::to_string(event.trace_id));
    append_args(out, args);
    out += "}";
  }

  for (const TraceCounterSample& sample : counter_samples_) {
    char value[32];
    std::snprintf(value, sizeof(value), "%.3f", sample.value);
    sep();
    out += "{\"ph\": \"C\", \"pid\": " + std::to_string(pid_of(sample.lane)) +
           ", \"tid\": 1, \"name\": " + json_string(sample.name) +
           ", \"ts\": ";
    append_ts(out, sample.at);
    out += ", \"args\": {\"value\": ";
    out += value;
    out += "}}";
  }

  out += "]}";
  return out;
}

}  // namespace sgxmig::obs

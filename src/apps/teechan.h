// Teechan-style payment channel enclave (Lind et al. [3]), rebuilt on the
// Migration Library.
//
// Two enclaves hold a full-duplex off-chain channel; each payment is a
// single signed message updating the balances.  The enclave persists its
// channel state "encrypted under a key and stored with a non-replayable
// version number from the hardware monotonic counter" — the exact pattern
// §III shows is breakable under naive migration, and the pattern our
// migratable primitives make safely migratable.
#pragma once

#include <optional>

#include "crypto/ed25519.h"
#include "migration/migratable_enclave.h"

namespace sgxmig::apps {

struct PaymentMessage {
  uint64_t channel_id = 0;
  uint32_t sequence = 0;    // strictly increasing per channel
  uint64_t balance_a = 0;   // post-payment balances
  uint64_t balance_b = 0;
  crypto::Ed25519PublicKey sender{};
  crypto::Ed25519Signature signature{};

  Bytes serialize() const;
  static Result<PaymentMessage> deserialize(ByteView bytes);
  Bytes signed_message() const;
};

/// Signed channel-closing statement for on-chain settlement.
struct SettlementMessage {
  uint64_t channel_id = 0;
  uint32_t sequence = 0;
  uint64_t balance_a = 0;
  uint64_t balance_b = 0;
  crypto::Ed25519PublicKey signer{};
  crypto::Ed25519Signature signature{};

  Bytes signed_message() const;
  bool verify() const;
};

class TeechanEnclave : public migration::MigratableEnclave {
 public:
  /// `persistence` selects the Migration Library's PersistenceEngine
  /// (sync / group-commit / write-behind); the default keeps the paper's
  /// synchronous-persist semantics.
  TeechanEnclave(sgx::PlatformIface& platform,
                 std::shared_ptr<const sgx::EnclaveImage> image,
                 migration::PersistenceMode persistence =
                     migration::PersistenceMode::kSync);

  /// Opens the channel side: `is_party_a` fixes which balance is "mine".
  /// Creates the version counter via the Migration Library, so
  /// ecall_migration_init must have run first.
  Status ecall_open_channel(uint64_t channel_id, bool is_party_a,
                            uint64_t deposit_a, uint64_t deposit_b);

  Result<crypto::Ed25519PublicKey> ecall_channel_public_key();
  Status ecall_set_peer_key(const crypto::Ed25519PublicKey& peer);

  /// Sends `amount` to the peer; returns the signed payment message.
  Result<PaymentMessage> ecall_pay(uint64_t amount);

  /// Applies a payment message received from the peer.
  Status ecall_receive_payment(const PaymentMessage& message);

  Result<uint64_t> ecall_my_balance();
  Result<uint64_t> ecall_peer_balance();
  Result<uint32_t> ecall_sequence();

  /// Persists the channel state with a fresh counter version (the Teechan
  /// pattern).  Returns the blob for untrusted storage.
  Result<Bytes> ecall_persist_channel();
  /// Restores; rejects stale blobs with kReplayDetected.
  Status ecall_restore_channel(ByteView blob);

  /// Produces the signed closing statement.
  Result<SettlementMessage> ecall_settle();

 private:
  struct ChannelState {
    uint64_t channel_id = 0;
    bool is_party_a = true;
    uint64_t balance_a = 0;
    uint64_t balance_b = 0;
    uint32_t sequence = 0;
    crypto::Ed25519Seed signing_seed{};
    crypto::Ed25519PublicKey peer_key{};
    bool peer_key_set = false;
  };

  Bytes serialize_channel() const;
  Status deserialize_channel(ByteView bytes);
  uint64_t& my_balance_ref();
  uint64_t& peer_balance_ref();

  std::optional<ChannelState> channel_;
  std::optional<crypto::Ed25519KeyPair> signing_key_;
  std::optional<uint32_t> version_counter_;
};

}  // namespace sgxmig::apps

#include "apps/teechan.h"

#include "support/serde.h"

namespace sgxmig::apps {

namespace {
constexpr char kPaymentLabel[] = "TEECHAN-PAYMENT-v1";
constexpr char kSettlementLabel[] = "TEECHAN-SETTLE-v1";

Bytes version_aad(uint32_t version) {
  BinaryWriter w;
  w.str("teechan-state");
  w.u32(version);
  return w.take();
}
}  // namespace

Bytes PaymentMessage::signed_message() const {
  BinaryWriter w;
  w.str(kPaymentLabel);
  w.u64(channel_id);
  w.u32(sequence);
  w.u64(balance_a);
  w.u64(balance_b);
  w.fixed(sender);
  return w.take();
}

Bytes PaymentMessage::serialize() const {
  BinaryWriter w;
  w.u64(channel_id);
  w.u32(sequence);
  w.u64(balance_a);
  w.u64(balance_b);
  w.fixed(sender);
  w.fixed(signature);
  return w.take();
}

Result<PaymentMessage> PaymentMessage::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  PaymentMessage m;
  m.channel_id = r.u64();
  m.sequence = r.u32();
  m.balance_a = r.u64();
  m.balance_b = r.u64();
  m.sender = r.fixed<32>();
  m.signature = r.fixed<64>();
  if (!r.done()) return Status::kTampered;
  return m;
}

Bytes SettlementMessage::signed_message() const {
  BinaryWriter w;
  w.str(kSettlementLabel);
  w.u64(channel_id);
  w.u32(sequence);
  w.u64(balance_a);
  w.u64(balance_b);
  w.fixed(signer);
  return w.take();
}

bool SettlementMessage::verify() const {
  return crypto::ed25519_verify(signer, signed_message(), signature);
}

TeechanEnclave::TeechanEnclave(sgx::PlatformIface& platform,
                               std::shared_ptr<const sgx::EnclaveImage> image,
                               migration::PersistenceMode persistence)
    : MigratableEnclave(platform, std::move(image), persistence) {}

uint64_t& TeechanEnclave::my_balance_ref() {
  return channel_->is_party_a ? channel_->balance_a : channel_->balance_b;
}

uint64_t& TeechanEnclave::peer_balance_ref() {
  return channel_->is_party_a ? channel_->balance_b : channel_->balance_a;
}

Status TeechanEnclave::ecall_open_channel(uint64_t channel_id, bool is_party_a,
                                          uint64_t deposit_a,
                                          uint64_t deposit_b) {
  auto scope = enter_ecall();
  if (channel_.has_value()) return Status::kAlreadyExists;
  ChannelState state;
  state.channel_id = channel_id;
  state.is_party_a = is_party_a;
  state.balance_a = deposit_a;
  state.balance_b = deposit_b;
  rng().generate(state.signing_seed.data(), state.signing_seed.size());
  // The non-replayable version number comes from a migratable counter.
  auto counter = library().create_migratable_counter();
  if (!counter.ok()) return counter.status();
  version_counter_ = counter.value().counter_id;
  channel_ = state;
  signing_key_ = crypto::Ed25519KeyPair::from_seed(state.signing_seed);
  return Status::kOk;
}

Result<crypto::Ed25519PublicKey> TeechanEnclave::ecall_channel_public_key() {
  auto scope = enter_ecall();
  if (!signing_key_.has_value()) return Status::kNotInitialized;
  return signing_key_->public_key();
}

Status TeechanEnclave::ecall_set_peer_key(
    const crypto::Ed25519PublicKey& peer) {
  auto scope = enter_ecall();
  if (!channel_.has_value()) return Status::kNotInitialized;
  channel_->peer_key = peer;
  channel_->peer_key_set = true;
  return Status::kOk;
}

Result<PaymentMessage> TeechanEnclave::ecall_pay(uint64_t amount) {
  auto scope = enter_ecall();
  if (!channel_.has_value() || !signing_key_.has_value()) {
    return Status::kNotInitialized;
  }
  if (library().frozen()) return Status::kMigrationFrozen;
  if (my_balance_ref() < amount) return Status::kInvalidParameter;
  my_balance_ref() -= amount;
  peer_balance_ref() += amount;
  ++channel_->sequence;

  PaymentMessage m;
  m.channel_id = channel_->channel_id;
  m.sequence = channel_->sequence;
  m.balance_a = channel_->balance_a;
  m.balance_b = channel_->balance_b;
  m.sender = signing_key_->public_key();
  m.signature = signing_key_->sign(m.signed_message());
  return m;
}

Status TeechanEnclave::ecall_receive_payment(const PaymentMessage& message) {
  auto scope = enter_ecall();
  if (!channel_.has_value()) return Status::kNotInitialized;
  if (library().frozen()) return Status::kMigrationFrozen;
  if (!channel_->peer_key_set) return Status::kNotInitialized;
  if (message.channel_id != channel_->channel_id) {
    return Status::kInvalidParameter;
  }
  if (!(message.sender == channel_->peer_key)) return Status::kSignatureInvalid;
  if (!crypto::ed25519_verify(message.sender, message.signed_message(),
                              message.signature)) {
    return Status::kSignatureInvalid;
  }
  // Sequence must advance (no replays of old payments).
  if (message.sequence <= channel_->sequence) return Status::kReplayDetected;
  // Conservation: total funds in the channel never change, and the peer
  // can only move funds toward us.
  const uint64_t total = channel_->balance_a + channel_->balance_b;
  if (message.balance_a + message.balance_b != total) {
    return Status::kInvalidParameter;
  }
  const uint64_t my_before =
      channel_->is_party_a ? channel_->balance_a : channel_->balance_b;
  const uint64_t my_after =
      channel_->is_party_a ? message.balance_a : message.balance_b;
  if (my_after < my_before) return Status::kInvalidParameter;

  channel_->balance_a = message.balance_a;
  channel_->balance_b = message.balance_b;
  channel_->sequence = message.sequence;
  return Status::kOk;
}

Result<uint64_t> TeechanEnclave::ecall_my_balance() {
  auto scope = enter_ecall();
  if (!channel_.has_value()) return Status::kNotInitialized;
  return my_balance_ref();
}

Result<uint64_t> TeechanEnclave::ecall_peer_balance() {
  auto scope = enter_ecall();
  if (!channel_.has_value()) return Status::kNotInitialized;
  return peer_balance_ref();
}

Result<uint32_t> TeechanEnclave::ecall_sequence() {
  auto scope = enter_ecall();
  if (!channel_.has_value()) return Status::kNotInitialized;
  return channel_->sequence;
}

Bytes TeechanEnclave::serialize_channel() const {
  BinaryWriter w;
  w.u64(channel_->channel_id);
  w.boolean(channel_->is_party_a);
  w.u64(channel_->balance_a);
  w.u64(channel_->balance_b);
  w.u32(channel_->sequence);
  w.fixed(channel_->signing_seed);
  w.fixed(channel_->peer_key);
  w.boolean(channel_->peer_key_set);
  w.u32(*version_counter_);
  return w.take();
}

Status TeechanEnclave::deserialize_channel(ByteView bytes) {
  BinaryReader r(bytes);
  ChannelState state;
  state.channel_id = r.u64();
  state.is_party_a = r.boolean();
  state.balance_a = r.u64();
  state.balance_b = r.u64();
  state.sequence = r.u32();
  state.signing_seed = r.fixed<32>();
  state.peer_key = r.fixed<32>();
  state.peer_key_set = r.boolean();
  const uint32_t counter_id = r.u32();
  if (!r.done()) return Status::kTampered;
  channel_ = state;
  signing_key_ = crypto::Ed25519KeyPair::from_seed(state.signing_seed);
  version_counter_ = counter_id;
  return Status::kOk;
}

Result<Bytes> TeechanEnclave::ecall_persist_channel() {
  auto scope = enter_ecall();
  if (!channel_.has_value()) return Status::kNotInitialized;
  auto version = library().increment_migratable_counter(*version_counter_);
  if (!version.ok()) return version.status();
  return library().seal_migratable_data(version_aad(version.value()),
                                        serialize_channel());
}

Status TeechanEnclave::ecall_restore_channel(ByteView blob) {
  auto scope = enter_ecall();
  if (channel_.has_value()) return Status::kInvalidState;
  auto unsealed = library().unseal_migratable_data(blob);
  if (!unsealed.ok()) return unsealed.status();
  BinaryReader aad(unsealed.value().aad);
  if (aad.str(64) != "teechan-state") return Status::kTampered;
  const uint32_t stored_version = aad.u32();
  if (!aad.done()) return Status::kTampered;

  const Status status = deserialize_channel(unsealed.value().plaintext);
  if (status != Status::kOk) return status;
  auto current = library().read_migratable_counter(*version_counter_);
  if (!current.ok()) {
    channel_.reset();
    return current.status();
  }
  if (current.value() != stored_version) {
    channel_.reset();
    return Status::kReplayDetected;
  }
  return Status::kOk;
}

Result<SettlementMessage> TeechanEnclave::ecall_settle() {
  auto scope = enter_ecall();
  if (!channel_.has_value() || !signing_key_.has_value()) {
    return Status::kNotInitialized;
  }
  SettlementMessage m;
  m.channel_id = channel_->channel_id;
  m.sequence = channel_->sequence;
  m.balance_a = channel_->balance_a;
  m.balance_b = channel_->balance_b;
  m.signer = signing_key_->public_key();
  m.signature = signing_key_->sign(m.signed_message());
  return m;
}

}  // namespace sgxmig::apps

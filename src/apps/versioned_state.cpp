#include "apps/versioned_state.h"

#include "crypto/gcm.h"
#include "support/serde.h"

namespace sgxmig::apps {

namespace {
constexpr char kBlobMagic[] = "VERSIONED-STATE-v1";
constexpr char kKdcBlobMagic[] = "VERSIONED-STATE-KDC-v1";

Bytes version_aad(uint32_t version) {
  BinaryWriter w;
  w.u32(version);
  return w.take();
}
}  // namespace

VersionedStateEnclave::VersionedStateEnclave(
    sgx::PlatformIface& platform,
    std::shared_ptr<const sgx::EnclaveImage> image, PersistenceMode mode,
    baseline::GuMigrationLibrary::FlagMode gu_flag_mode)
    : MigratableEnclave(platform, std::move(image)),
      mode_(mode),
      gu_library_(*this, gu_flag_mode) {}

Status VersionedStateEnclave::spin_check() const {
  // Gu et al.'s spin lock: a migrated-away enclave performs no work.
  return gu_library_.spin_locked() ? Status::kMigrationFrozen : Status::kOk;
}

Status VersionedStateEnclave::ecall_install_kdc_key(const sgx::Key128& key) {
  auto scope = enter_ecall();
  if (mode_ != PersistenceMode::kKdcSeal) return Status::kInvalidState;
  kdc_key_ = key;
  return Status::kOk;
}

Status VersionedStateEnclave::ecall_set_state(ByteView state) {
  auto scope = enter_ecall();
  const Status spin = spin_check();
  if (spin != Status::kOk) return spin;
  app_state_ = to_bytes(state);
  return Status::kOk;
}

Result<Bytes> VersionedStateEnclave::ecall_get_state() {
  auto scope = enter_ecall();
  const Status spin = spin_check();
  if (spin != Status::kOk) return spin;
  return app_state_;
}

Bytes VersionedStateEnclave::state_payload() const {
  BinaryWriter w;
  w.bytes(app_state_);
  return w.take();
}

Result<PersistedState> VersionedStateEnclave::ecall_persist() {
  auto scope = enter_ecall();
  const Status spin = spin_check();
  if (spin != Status::kOk) return spin;

  switch (mode_) {
    case PersistenceMode::kMigratable: {
      if (!migratable_counter_.has_value()) {
        auto created = library().create_migratable_counter();
        if (!created.ok()) return created.status();
        migratable_counter_ = created.value().counter_id;
      }
      auto version = library().increment_migratable_counter(*migratable_counter_);
      if (!version.ok()) return version.status();
      auto sealed = library().seal_migratable_data(version_aad(version.value()),
                                                   state_payload());
      if (!sealed.ok()) return sealed.status();
      PersistedState out;
      out.blob = std::move(sealed).value();
      return out;
    }
    case PersistenceMode::kNativeSeal:
    case PersistenceMode::kKdcSeal: {
      // First persist on this machine: request a counter (the §III attack
      // scripts rely on exactly this "create a fresh counter on a new
      // machine" behaviour).
      if (!native_counter_.has_value()) {
        auto created = counter_create();
        if (!created.ok()) return created.status();
        native_counter_ = created.value().uuid;
      }
      auto version = counter_increment(*native_counter_);
      if (!version.ok()) return version.status();

      PersistedState out;
      out.counter_uuid = *native_counter_;
      if (mode_ == PersistenceMode::kNativeSeal) {
        auto sealed = seal(sgx::KeyPolicy::kMrEnclave,
                           version_aad(version.value()), state_payload());
        if (!sealed.ok()) return sealed.status();
        BinaryWriter w;
        w.str(kBlobMagic);
        w.bytes(sealed.value());
        out.blob = w.take();
      } else {
        if (!kdc_key_.has_value()) return Status::kNotInitialized;
        Bytes iv(crypto::kGcmIvSize);
        rng().generate(iv.data(), iv.size());
        charge_gcm(app_state_.size());
        const auto ct =
            crypto::gcm_encrypt(ByteView(kdc_key_->data(), kdc_key_->size()),
                                iv, version_aad(version.value()),
                                state_payload());
        BinaryWriter w;
        w.str(kKdcBlobMagic);
        w.u32(version.value());
        w.fixed(ct.iv);
        w.fixed(ct.tag);
        w.bytes(ct.ciphertext);
        out.blob = w.take();
      }
      return out;
    }
  }
  return Status::kInvalidParameter;
}

Status VersionedStateEnclave::ecall_restore(ByteView blob,
                                            const sgx::CounterUuid& uuid) {
  auto scope = enter_ecall();
  const Status spin = spin_check();
  if (spin != Status::kOk) return spin;
  if (mode_ == PersistenceMode::kMigratable) return Status::kInvalidState;

  uint32_t stored_version = 0;
  Bytes payload;
  if (mode_ == PersistenceMode::kNativeSeal) {
    BinaryReader r(blob);
    if (r.str(64) != kBlobMagic) return Status::kTampered;
    const Bytes sealed = r.bytes(1u << 24);
    if (!r.done()) return Status::kTampered;
    auto unsealed = unseal(sealed);
    if (!unsealed.ok()) return unsealed.status();
    BinaryReader aad(unsealed.value().aad);
    stored_version = aad.u32();
    if (!aad.done()) return Status::kTampered;
    payload = unsealed.value().plaintext;
  } else {
    if (!kdc_key_.has_value()) return Status::kNotInitialized;
    BinaryReader r(blob);
    if (r.str(64) != kKdcBlobMagic) return Status::kTampered;
    stored_version = r.u32();
    const auto iv = r.fixed<12>();
    const auto tag = r.fixed<16>();
    const Bytes ciphertext = r.bytes(1u << 24);
    if (!r.done()) return Status::kTampered;
    charge_gcm(ciphertext.size());
    auto plain = crypto::gcm_decrypt(
        ByteView(kdc_key_->data(), kdc_key_->size()),
        ByteView(iv.data(), iv.size()), version_aad(stored_version),
        ciphertext, ByteView(tag.data(), tag.size()));
    if (!plain.ok()) return plain.status();
    payload = std::move(plain).value();
  }

  // Roll-back check: the stored version must equal the current value of
  // the supplied machine-local counter.
  auto current = counter_read(uuid);
  if (!current.ok()) return current.status();
  if (current.value() != stored_version) return Status::kReplayDetected;

  BinaryReader p(payload);
  app_state_ = p.bytes(1u << 24);
  if (!p.done()) return Status::kTampered;
  native_counter_ = uuid;
  return Status::kOk;
}

Status VersionedStateEnclave::ecall_restore_migratable(ByteView blob) {
  auto scope = enter_ecall();
  const Status spin = spin_check();
  if (spin != Status::kOk) return spin;
  if (mode_ != PersistenceMode::kMigratable) return Status::kInvalidState;
  auto unsealed = library().unseal_migratable_data(blob);
  if (!unsealed.ok()) return unsealed.status();
  BinaryReader aad(unsealed.value().aad);
  const uint32_t stored_version = aad.u32();
  if (!aad.done()) return Status::kTampered;

  if (!migratable_counter_.has_value()) migratable_counter_ = 0;
  auto current = library().read_migratable_counter(*migratable_counter_);
  if (!current.ok()) return current.status();
  if (current.value() != stored_version) return Status::kReplayDetected;

  BinaryReader p(unsealed.value().plaintext);
  app_state_ = p.bytes(1u << 24);
  if (!p.done()) return Status::kTampered;
  return Status::kOk;
}

Result<uint32_t> VersionedStateEnclave::ecall_current_version() {
  auto scope = enter_ecall();
  if (mode_ == PersistenceMode::kMigratable) {
    if (!migratable_counter_.has_value()) return Status::kCounterNotFound;
    return library().read_migratable_counter(*migratable_counter_);
  }
  if (!native_counter_.has_value()) return Status::kCounterNotFound;
  return counter_read(*native_counter_);
}

Result<Bytes> VersionedStateEnclave::ecall_export_memory_image() {
  auto scope = enter_ecall();
  BinaryWriter w;
  w.bytes(app_state_);
  w.boolean(kdc_key_.has_value());
  if (kdc_key_.has_value()) w.fixed(*kdc_key_);
  return w.take();
}

Status VersionedStateEnclave::ecall_import_memory_image(ByteView image) {
  auto scope = enter_ecall();
  BinaryReader r(image);
  app_state_ = r.bytes(1u << 24);
  if (r.boolean()) kdc_key_ = r.fixed<16>();
  if (!r.ok()) return Status::kTampered;
  // The destination has no counter yet; the next persist creates one —
  // exactly the behaviour the §III scripts exploit.
  native_counter_.reset();
  return Status::kOk;
}

}  // namespace sgxmig::apps

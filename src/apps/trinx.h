// TrInX-style trusted counter service (Behl et al., Hybster [4]), rebuilt
// on the Migration Library.
//
// TrInX gives a BFT replication protocol cheap trusted counters: the
// enclave certifies (counter id, value, message) tuples with strictly
// increasing values, which lets Hybster tolerate f faults with 2f+1
// replicas instead of 3f+1.  The protocol's safety rests on the
// assumption quoted in §III: the platform "prevents undetected replay
// attacks where an adversary saves the (encrypted) state of a trusted
// subsystem and starts a new instance using the exact same state".  That
// assumption is provided here the way the paper suggests: sealed state +
// a (migratable) monotonic counter as version number.
#pragma once

#include <map>
#include <optional>

#include "crypto/ed25519.h"
#include "migration/migratable_enclave.h"

namespace sgxmig::apps {

/// A certificate binding `value` of TrInX counter `counter_id` to a
/// message hash; values are strictly increasing per counter.
struct TrinxCertificate {
  uint32_t counter_id = 0;
  uint64_t value = 0;
  std::array<uint8_t, 32> message_hash{};
  crypto::Ed25519PublicKey signer{};
  crypto::Ed25519Signature signature{};

  Bytes serialize() const;
  static Result<TrinxCertificate> deserialize(ByteView bytes);
  Bytes signed_message() const;
  bool verify() const;
};

class TrinxEnclave : public migration::MigratableEnclave {
 public:
  /// `persistence` selects the Migration Library's PersistenceEngine
  /// (sync / group-commit / write-behind); the default keeps the paper's
  /// synchronous-persist semantics.
  TrinxEnclave(sgx::PlatformIface& platform,
               std::shared_ptr<const sgx::EnclaveImage> image,
               migration::PersistenceMode persistence =
                   migration::PersistenceMode::kSync);

  /// Generates the certification key and the version counter (requires
  /// ecall_migration_init first).
  Status ecall_setup();

  Result<crypto::Ed25519PublicKey> ecall_public_key();

  /// Creates a TrInX counter (application-level, lives in sealed state —
  /// distinct from SGX hardware counters, as the paper notes).
  Result<uint32_t> ecall_create_trinx_counter();

  /// Certifies `message` with the next value of `counter_id`.
  Result<TrinxCertificate> ecall_certify(uint32_t counter_id,
                                         ByteView message);

  Result<uint64_t> ecall_counter_value(uint32_t counter_id);

  /// Persists all TrInX counters under a fresh version (rollback
  /// protection); restores only the latest version.
  Result<Bytes> ecall_persist();
  Status ecall_restore(ByteView blob);

 private:
  Bytes serialize_state() const;
  Status deserialize_state(ByteView bytes);

  bool setup_done_ = false;
  crypto::Ed25519Seed signing_seed_{};
  std::optional<crypto::Ed25519KeyPair> signing_key_;
  std::map<uint32_t, uint64_t> trinx_counters_;
  uint32_t next_trinx_id_ = 0;
  std::optional<uint32_t> version_counter_;
};

}  // namespace sgxmig::apps

#include "apps/kvstore.h"

#include "support/serde.h"

namespace sgxmig::apps {

namespace {
Bytes version_aad(uint32_t version) {
  BinaryWriter w;
  w.str("kvstore-state");
  w.u32(version);
  return w.take();
}
}  // namespace

KvStoreEnclave::KvStoreEnclave(sgx::PlatformIface& platform,
                               std::shared_ptr<const sgx::EnclaveImage> image,
                               migration::PersistenceMode persistence)
    : MigratableEnclave(platform, std::move(image), persistence) {}

Status KvStoreEnclave::ecall_setup() {
  auto scope = enter_ecall();
  if (setup_done_) return Status::kAlreadyExists;
  auto counter = library().create_migratable_counter();
  if (!counter.ok()) return counter.status();
  version_counter_ = counter.value().counter_id;
  setup_done_ = true;
  return Status::kOk;
}

Status KvStoreEnclave::ecall_put(const std::string& key, ByteView value) {
  auto scope = enter_ecall();
  if (!setup_done_) return Status::kNotInitialized;
  if (library().frozen()) return Status::kMigrationFrozen;
  entries_[key] = to_bytes(value);
  return Status::kOk;
}

Result<Bytes> KvStoreEnclave::ecall_get(const std::string& key) {
  auto scope = enter_ecall();
  if (!setup_done_) return Status::kNotInitialized;
  if (library().frozen()) return Status::kMigrationFrozen;
  const auto it = entries_.find(key);
  if (it == entries_.end()) return Status::kStorageMissing;
  return it->second;
}

Status KvStoreEnclave::ecall_erase(const std::string& key) {
  auto scope = enter_ecall();
  if (!setup_done_) return Status::kNotInitialized;
  if (library().frozen()) return Status::kMigrationFrozen;
  return entries_.erase(key) != 0 ? Status::kOk : Status::kStorageMissing;
}

Result<uint64_t> KvStoreEnclave::ecall_size() {
  auto scope = enter_ecall();
  if (!setup_done_) return Status::kNotInitialized;
  return static_cast<uint64_t>(entries_.size());
}

Bytes KvStoreEnclave::serialize_store() const {
  BinaryWriter w;
  w.u32(*version_counter_);
  w.u32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [key, value] : entries_) {
    w.str(key);
    w.bytes(value);
  }
  return w.take();
}

Result<Bytes> KvStoreEnclave::ecall_persist() {
  auto scope = enter_ecall();
  if (!setup_done_) return Status::kNotInitialized;
  auto version = library().increment_migratable_counter(*version_counter_);
  if (!version.ok()) return version.status();
  return library().seal_migratable_data(version_aad(version.value()),
                                        serialize_store());
}

Status KvStoreEnclave::ecall_restore(ByteView blob) {
  auto scope = enter_ecall();
  if (setup_done_) return Status::kInvalidState;
  auto unsealed = library().unseal_migratable_data(blob);
  if (!unsealed.ok()) return unsealed.status();
  BinaryReader aad(unsealed.value().aad);
  if (aad.str(64) != "kvstore-state") return Status::kTampered;
  const uint32_t stored_version = aad.u32();
  if (!aad.done()) return Status::kTampered;

  BinaryReader r(unsealed.value().plaintext);
  const uint32_t counter_id = r.u32();
  const uint32_t count = r.u32();
  if (count > 1000000) return Status::kTampered;
  std::map<std::string, Bytes> entries;
  for (uint32_t i = 0; i < count; ++i) {
    std::string key = r.str(1u << 16);
    entries[std::move(key)] = r.bytes(1u << 24);
  }
  if (!r.done()) return Status::kTampered;

  version_counter_ = counter_id;
  auto current = library().read_migratable_counter(counter_id);
  if (!current.ok()) {
    version_counter_.reset();
    return current.status();
  }
  if (current.value() != stored_version) {
    version_counter_.reset();
    return Status::kReplayDetected;
  }
  entries_ = std::move(entries);
  setup_done_ = true;
  return Status::kOk;
}

}  // namespace sgxmig::apps

// A minimal Hybster-style replicated state machine (Behl et al. [4]) on
// top of TrInX trusted counters.
//
// Hybster's key idea: with a trusted counter service, a leader can prove
// it assigned each request exactly one position in the order, so
// equivocation (telling different followers different things) becomes
// impossible and f faults need only 2f+1 replicas.  This harness
// implements the crash-free ordering path: the leader certifies each
// request with consecutive trusted-counter values, followers verify the
// certificate chain and apply requests in order, rejecting gaps, replays,
// and forged certificates.  The leader's enclave can migrate between
// machines mid-protocol via the migration framework without losing its
// certification identity or counter position.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/trinx.h"
#include "platform/world.h"

namespace sgxmig::apps {

/// A request certified into a position of the total order.
struct OrderedRequest {
  std::string request;
  TrinxCertificate certificate;
};

/// A (non-enclave) follower process: applies ordered requests.
class HybsterFollower {
 public:
  HybsterFollower(std::string name, crypto::Ed25519PublicKey leader_key)
      : name_(std::move(name)), leader_key_(leader_key) {}

  /// Applies the request if the certificate verifies, comes from the
  /// leader, and carries exactly the next order position.
  Status apply(const OrderedRequest& ordered);

  const std::vector<std::string>& log() const { return log_; }
  uint64_t next_expected() const { return next_expected_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  crypto::Ed25519PublicKey leader_key_;
  uint64_t next_expected_ = 1;
  std::vector<std::string> log_;
};

/// The leader's host process: owns the TrInX enclave and orders requests.
class HybsterLeader {
 public:
  /// Starts a fresh leader on `machine` (enclave + counter setup).
  HybsterLeader(platform::Machine& machine,
                std::shared_ptr<const sgx::EnclaveImage> image);

  /// Orders one client request (certifies it with the next counter value).
  Result<OrderedRequest> order(const std::string& request);

  /// Migrates the leader's enclave to another machine via the migration
  /// framework; ordering continues from the same counter position.
  Status migrate_to(platform::Machine& destination);

  crypto::Ed25519PublicKey public_key();
  uint64_t ordered_count();

 private:
  void wire_persistence(platform::Machine& machine);

  std::shared_ptr<const sgx::EnclaveImage> image_;
  std::unique_ptr<TrinxEnclave> enclave_;
  uint32_t ordering_counter_ = 0;
  Bytes last_snapshot_;  // retained for migration retries
};

/// Convenience cluster: one leader + N followers with a consistency check.
class HybsterCluster {
 public:
  HybsterCluster(platform::Machine& leader_machine, size_t follower_count,
                 std::shared_ptr<const sgx::EnclaveImage> image);

  /// Orders and replicates a request to every follower; returns kOk only
  /// if all followers applied it.
  Status submit(const std::string& request);

  Status migrate_leader(platform::Machine& destination) {
    return leader_.migrate_to(destination);
  }

  /// True iff every follower has the identical log.
  bool logs_consistent() const;
  size_t committed() const;
  HybsterLeader& leader() { return leader_; }
  std::vector<HybsterFollower>& followers() { return followers_; }

 private:
  HybsterLeader leader_;
  std::vector<HybsterFollower> followers_;
};

}  // namespace sgxmig::apps

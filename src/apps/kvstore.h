// A rollback-protected key-value store enclave on the Migration Library —
// the kind of stateful cloud service whose persistent state must survive
// VM migration (paper §I: "most real-world enclaves have data that must
// be persisted").
#pragma once

#include <map>
#include <optional>
#include <string>

#include "migration/migratable_enclave.h"

namespace sgxmig::apps {

class KvStoreEnclave : public migration::MigratableEnclave {
 public:
  /// `persistence` selects the Migration Library's PersistenceEngine
  /// (sync / group-commit / write-behind); the default keeps the paper's
  /// synchronous-persist semantics.
  KvStoreEnclave(sgx::PlatformIface& platform,
                 std::shared_ptr<const sgx::EnclaveImage> image,
                 migration::PersistenceMode persistence =
                     migration::PersistenceMode::kSync);

  /// Creates the version counter (requires ecall_migration_init first).
  Status ecall_setup();

  Status ecall_put(const std::string& key, ByteView value);
  Result<Bytes> ecall_get(const std::string& key);
  Status ecall_erase(const std::string& key);
  Result<uint64_t> ecall_size();

  /// Seals the whole store under a fresh version.
  Result<Bytes> ecall_persist();
  /// Restores; stale blobs are rejected with kReplayDetected.
  Status ecall_restore(ByteView blob);

 private:
  Bytes serialize_store() const;

  bool setup_done_ = false;
  std::map<std::string, Bytes> entries_;
  std::optional<uint32_t> version_counter_;
};

}  // namespace sgxmig::apps

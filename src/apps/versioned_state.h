// The persistence pattern shared by Teechan [3] and TrInX/Hybster [4], and
// the target of the paper's §III attacks:
//
//   "increment a hardware counter and seal the new counter value along
//    with the enclave's state as a version number.  When the enclave is
//    restarted, it only accepts sealed data whose version number matches
//    the current hardware counter value."
//
// Three persistence modes cover the paper's scenarios:
//  * kNativeSeal — standard SGX sealing + native counter.  Secure on one
//    machine; sealed data is LOST on migration (machine-bound key).
//  * kKdcSeal — state encrypted under a key from an external KDC (e.g.
//    AWS KMS, §III-C), so ciphertexts decrypt on any machine; version
//    protection still relies on the native (machine-local) counter.
//    This is the configuration the §III-C roll-back attack breaks when
//    migrated without counter migration.
//  * kMigratable — this paper's scheme: MSK sealing + migratable counter.
//
// The enclave also supports Gu et al.-style memory export/import so the
// attack harness can migrate it with the baseline mechanism.
#pragma once

#include <optional>

#include "baseline/gu_migration.h"
#include "migration/migratable_enclave.h"

namespace sgxmig::apps {

enum class PersistenceMode : uint8_t {
  kNativeSeal = 1,
  kKdcSeal = 2,
  kMigratable = 3,
};

/// Result of a persist operation: the blob to store, plus (for native/KDC
/// modes) the machine-local counter UUID the application must remember —
/// the UUID is not secret, only a name.
struct PersistedState {
  Bytes blob;
  sgx::CounterUuid counter_uuid{};
};

class VersionedStateEnclave : public migration::MigratableEnclave {
 public:
  VersionedStateEnclave(
      sgx::PlatformIface& platform,
      std::shared_ptr<const sgx::EnclaveImage> image, PersistenceMode mode,
      baseline::GuMigrationLibrary::FlagMode gu_flag_mode =
          baseline::GuMigrationLibrary::FlagMode::kVolatile);

  /// For kKdcSeal: installs the externally provisioned encryption key
  /// (modeled as already delivered via remote attestation from the KDC).
  Status ecall_install_kdc_key(const sgx::Key128& key);

  // ----- application state (lives in enclave memory) -----
  Status ecall_set_state(ByteView state);
  Result<Bytes> ecall_get_state();

  // ----- versioned persistence (the §III pattern) -----
  /// Increments the version counter and seals {state, version}.
  Result<PersistedState> ecall_persist();
  /// Restores from a blob.  For native/KDC modes the application supplies
  /// the UUID of this machine's counter; the version in the blob must
  /// equal the counter's current value, else kReplayDetected.
  Status ecall_restore(ByteView blob, const sgx::CounterUuid& counter_uuid);
  /// Migratable-mode restore (the counter lives in the Migration Library).
  Status ecall_restore_migratable(ByteView blob);

  Result<uint32_t> ecall_current_version();

  // ----- Gu et al.-style memory migration support -----
  baseline::GuMigrationLibrary& gu_library() { return gu_library_; }
  /// Serializes the enclave's in-memory state (app state, counter handle,
  /// KDC key) — what Gu et al.'s mechanism would copy out of the EPC.
  Result<Bytes> ecall_export_memory_image();
  Status ecall_import_memory_image(ByteView image);

 private:
  Bytes state_payload() const;
  Status spin_check() const;

  PersistenceMode mode_;
  baseline::GuMigrationLibrary gu_library_;
  Bytes app_state_;
  std::optional<sgx::Key128> kdc_key_;
  // Native/KDC-mode version counter (on the current machine).
  std::optional<sgx::CounterUuid> native_counter_;
  // Migratable-mode version counter id.
  std::optional<uint32_t> migratable_counter_;
};

}  // namespace sgxmig::apps

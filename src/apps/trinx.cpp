#include "apps/trinx.h"

#include "crypto/sha256.h"
#include "support/serde.h"

namespace sgxmig::apps {

namespace {
constexpr char kCertLabel[] = "TRINX-CERT-v1";

Bytes version_aad(uint32_t version) {
  BinaryWriter w;
  w.str("trinx-state");
  w.u32(version);
  return w.take();
}
}  // namespace

Bytes TrinxCertificate::signed_message() const {
  BinaryWriter w;
  w.str(kCertLabel);
  w.u32(counter_id);
  w.u64(value);
  w.fixed(message_hash);
  w.fixed(signer);
  return w.take();
}

Bytes TrinxCertificate::serialize() const {
  BinaryWriter w;
  w.u32(counter_id);
  w.u64(value);
  w.fixed(message_hash);
  w.fixed(signer);
  w.fixed(signature);
  return w.take();
}

Result<TrinxCertificate> TrinxCertificate::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  TrinxCertificate c;
  c.counter_id = r.u32();
  c.value = r.u64();
  c.message_hash = r.fixed<32>();
  c.signer = r.fixed<32>();
  c.signature = r.fixed<64>();
  if (!r.done()) return Status::kTampered;
  return c;
}

bool TrinxCertificate::verify() const {
  return crypto::ed25519_verify(signer, signed_message(), signature);
}

TrinxEnclave::TrinxEnclave(sgx::PlatformIface& platform,
                           std::shared_ptr<const sgx::EnclaveImage> image,
                           migration::PersistenceMode persistence)
    : MigratableEnclave(platform, std::move(image), persistence) {}

Status TrinxEnclave::ecall_setup() {
  auto scope = enter_ecall();
  if (setup_done_) return Status::kAlreadyExists;
  rng().generate(signing_seed_.data(), signing_seed_.size());
  signing_key_ = crypto::Ed25519KeyPair::from_seed(signing_seed_);
  auto counter = library().create_migratable_counter();
  if (!counter.ok()) return counter.status();
  version_counter_ = counter.value().counter_id;
  setup_done_ = true;
  return Status::kOk;
}

Result<crypto::Ed25519PublicKey> TrinxEnclave::ecall_public_key() {
  auto scope = enter_ecall();
  if (!setup_done_) return Status::kNotInitialized;
  return signing_key_->public_key();
}

Result<uint32_t> TrinxEnclave::ecall_create_trinx_counter() {
  auto scope = enter_ecall();
  if (!setup_done_) return Status::kNotInitialized;
  if (library().frozen()) return Status::kMigrationFrozen;
  const uint32_t id = next_trinx_id_++;
  trinx_counters_[id] = 0;
  return id;
}

Result<TrinxCertificate> TrinxEnclave::ecall_certify(uint32_t counter_id,
                                                     ByteView message) {
  auto scope = enter_ecall();
  if (!setup_done_) return Status::kNotInitialized;
  if (library().frozen()) return Status::kMigrationFrozen;
  const auto it = trinx_counters_.find(counter_id);
  if (it == trinx_counters_.end()) return Status::kCounterNotFound;
  ++it->second;

  TrinxCertificate cert;
  cert.counter_id = counter_id;
  cert.value = it->second;
  cert.message_hash = crypto::Sha256::hash(message);
  cert.signer = signing_key_->public_key();
  cert.signature = signing_key_->sign(cert.signed_message());
  return cert;
}

Result<uint64_t> TrinxEnclave::ecall_counter_value(uint32_t counter_id) {
  auto scope = enter_ecall();
  const auto it = trinx_counters_.find(counter_id);
  if (it == trinx_counters_.end()) return Status::kCounterNotFound;
  return it->second;
}

Bytes TrinxEnclave::serialize_state() const {
  BinaryWriter w;
  w.fixed(signing_seed_);
  w.u32(next_trinx_id_);
  w.u32(static_cast<uint32_t>(trinx_counters_.size()));
  for (const auto& [id, value] : trinx_counters_) {
    w.u32(id);
    w.u64(value);
  }
  w.u32(*version_counter_);
  return w.take();
}

Status TrinxEnclave::deserialize_state(ByteView bytes) {
  BinaryReader r(bytes);
  signing_seed_ = r.fixed<32>();
  next_trinx_id_ = r.u32();
  const uint32_t count = r.u32();
  if (count > 100000) return Status::kTampered;
  std::map<uint32_t, uint64_t> counters;
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t id = r.u32();
    counters[id] = r.u64();
  }
  const uint32_t version_id = r.u32();
  if (!r.done()) return Status::kTampered;
  trinx_counters_ = std::move(counters);
  version_counter_ = version_id;
  signing_key_ = crypto::Ed25519KeyPair::from_seed(signing_seed_);
  setup_done_ = true;
  return Status::kOk;
}

Result<Bytes> TrinxEnclave::ecall_persist() {
  auto scope = enter_ecall();
  if (!setup_done_) return Status::kNotInitialized;
  auto version = library().increment_migratable_counter(*version_counter_);
  if (!version.ok()) return version.status();
  return library().seal_migratable_data(version_aad(version.value()),
                                        serialize_state());
}

Status TrinxEnclave::ecall_restore(ByteView blob) {
  auto scope = enter_ecall();
  if (setup_done_) return Status::kInvalidState;
  auto unsealed = library().unseal_migratable_data(blob);
  if (!unsealed.ok()) return unsealed.status();
  BinaryReader aad(unsealed.value().aad);
  if (aad.str(64) != "trinx-state") return Status::kTampered;
  const uint32_t stored_version = aad.u32();
  if (!aad.done()) return Status::kTampered;

  const Status status = deserialize_state(unsealed.value().plaintext);
  if (status != Status::kOk) return status;
  auto current = library().read_migratable_counter(*version_counter_);
  if (!current.ok()) {
    setup_done_ = false;
    return current.status();
  }
  if (current.value() != stored_version) {
    setup_done_ = false;
    return Status::kReplayDetected;
  }
  return Status::kOk;
}

}  // namespace sgxmig::apps

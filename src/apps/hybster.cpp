#include "apps/hybster.h"

#include "crypto/sha256.h"

namespace sgxmig::apps {

Status HybsterFollower::apply(const OrderedRequest& ordered) {
  if (!(ordered.certificate.signer == leader_key_)) {
    return Status::kSignatureInvalid;
  }
  if (!ordered.certificate.verify()) return Status::kSignatureInvalid;
  // The certificate must cover exactly this request...
  const auto expected_hash = crypto::Sha256::hash(to_bytes(ordered.request));
  if (!(ordered.certificate.message_hash == expected_hash)) {
    return Status::kTampered;
  }
  // ...and carry exactly the next position (no gaps, no replays — the
  // TrInX guarantee Hybster builds on).
  if (ordered.certificate.value < next_expected_) {
    return Status::kReplayDetected;
  }
  if (ordered.certificate.value > next_expected_) {
    return Status::kInvalidState;  // gap: an earlier request is missing
  }
  log_.push_back(ordered.request);
  ++next_expected_;
  return Status::kOk;
}

HybsterLeader::HybsterLeader(platform::Machine& machine,
                             std::shared_ptr<const sgx::EnclaveImage> image)
    : image_(std::move(image)) {
  enclave_ = std::make_unique<TrinxEnclave>(machine, image_);
  wire_persistence(machine);
  enclave_->ecall_migration_init(ByteView(), migration::InitState::kNew,
                                 machine.address());
  enclave_->ecall_setup();
  ordering_counter_ = enclave_->ecall_create_trinx_counter().value();
}

void HybsterLeader::wire_persistence(platform::Machine& machine) {
  enclave_->set_persist_callback([&machine](ByteView state) {
    machine.storage().put("hybster.mlstate", state);
  });
}

Result<OrderedRequest> HybsterLeader::order(const std::string& request) {
  auto certificate =
      enclave_->ecall_certify(ordering_counter_, to_bytes(request));
  if (!certificate.ok()) return certificate.status();
  OrderedRequest ordered;
  ordered.request = request;
  ordered.certificate = std::move(certificate).value();
  return ordered;
}

Status HybsterLeader::migrate_to(platform::Machine& destination) {
  // Persist the TrInX state (counters + key), migrate the enclave, and
  // restore on the destination.  On a retry after a failed migration the
  // library is already frozen; reuse the snapshot taken then.
  auto snapshot = enclave_->ecall_persist();
  if (snapshot.ok()) {
    last_snapshot_ = snapshot.value();
  } else if (snapshot.status() != Status::kMigrationFrozen ||
             last_snapshot_.empty()) {
    return snapshot.status();
  }
  const Status start = enclave_->ecall_migration_start(destination.address());
  if (start != Status::kOk) return start;
  enclave_.reset();

  enclave_ = std::make_unique<TrinxEnclave>(destination, image_);
  wire_persistence(destination);
  const Status init = enclave_->ecall_migration_init(
      ByteView(), migration::InitState::kMigrate, destination.address());
  if (init != Status::kOk) return init;
  return enclave_->ecall_restore(last_snapshot_);
}

crypto::Ed25519PublicKey HybsterLeader::public_key() {
  return enclave_->ecall_public_key().value();
}

uint64_t HybsterLeader::ordered_count() {
  return enclave_->ecall_counter_value(ordering_counter_).value_or(0);
}

HybsterCluster::HybsterCluster(platform::Machine& leader_machine,
                               size_t follower_count,
                               std::shared_ptr<const sgx::EnclaveImage> image)
    : leader_(leader_machine, std::move(image)) {
  const auto key = leader_.public_key();
  for (size_t i = 0; i < follower_count; ++i) {
    followers_.emplace_back("follower-" + std::to_string(i), key);
  }
}

Status HybsterCluster::submit(const std::string& request) {
  auto ordered = leader_.order(request);
  if (!ordered.ok()) return ordered.status();
  for (auto& follower : followers_) {
    const Status applied = follower.apply(ordered.value());
    if (applied != Status::kOk) return applied;
  }
  return Status::kOk;
}

bool HybsterCluster::logs_consistent() const {
  for (size_t i = 1; i < followers_.size(); ++i) {
    if (followers_[i].log() != followers_[0].log()) return false;
  }
  return true;
}

size_t HybsterCluster::committed() const {
  return followers_.empty() ? 0 : followers_[0].log().size();
}

}  // namespace sgxmig::apps

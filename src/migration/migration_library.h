// The Migration Library (ML) — paper §V-C / §VI-B.
//
// Linked into every migratable enclave (same protection domain — the host
// enclave grants it friend access to its trusted runtime).  It provides:
//
//  * MIGRATABLE SEALING: instead of the CPU-bound sealing key, data is
//    sealed under a Migration Sealing Key (MSK) generated once per enclave
//    lifetime.  The MSK itself is sealed with the standard (machine-bound)
//    sealing key inside the library's persistent buffer and travels to the
//    destination only through attested Migration Enclaves.
//
//  * MIGRATABLE COUNTERS: wrappers over the SGX monotonic counters that
//    add a per-counter OFFSET.  effective = offset + hardware value.  On
//    migration the source sends effective values; the destination stores
//    them as offsets over fresh (zero) hardware counters — constant-time
//    counter migration regardless of counter value (§VI-B), the design
//    choice benchmarked in bench/ablation_counter_offset.cpp.
//    Application code addresses counters by a small library-assigned id
//    instead of the SGX UUID (the only API change vs. the SDK).
//
//  * THE MIGRATION PROTOCOL CLIENT: local attestation of the ME, the
//    freeze flag, counter destruction before data leaves the machine, and
//    the incoming-migration restore path.
//
// Crash-consistency note: the library re-seals and persists its internal
// buffer (Table II) inside every *mutating* counter operation — losing
// the UUID table or offsets would permanently strand the enclave's
// counters.  WHEN that persist happens is delegated to a pluggable
// PersistenceEngine (persistence_engine.h).  The default SyncPersist is
// paper-faithful — one seal + OCALL per mutation, the mechanistic source
// of the small overhead on create/increment/destroy in Fig. 3 (≤ ~12%);
// reads touch no state and show no significant overhead.  Batching
// engines defer the commit but are fenced (flush) before any
// migration/freeze event and before a hardware counter is destroyed.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "migration/library_state.h"
#include "migration/persistence_engine.h"
#include "migration/protocol.h"
#include "net/channel.h"
#include "sgx/enclave.h"

namespace sgxmig::obs {
class TraceRecorder;
}  // namespace sgxmig::obs

namespace sgxmig::migration {

/// Paper Fig. 1: how the enclave is being initialized.
enum class InitState : uint8_t {
  kNew = 1,      // first-ever start: generate a fresh MSK
  kRestore = 2,  // restart on the same machine: reload the sealed buffer
  kMigrate = 3,  // start on the destination machine: fetch incoming data
};

struct CreatedMigratableCounter {
  uint32_t counter_id = 0;  // library-assigned id (not the SGX UUID)
  uint32_t value = 0;       // effective value (starts at 0)
};

/// Convergence policy for iterative pre-copy, mirroring
/// vm::LiveMigrationEngine (kMaxPrecopyRounds / stop-and-copy threshold):
/// keep shipping dirty-chunk rounds while the enclave runs, freeze once
/// the delta is small enough or the round budget is spent.
struct PrecopyOptions {
  uint32_t max_rounds = 8;
  /// A round that ships this many chunks or fewer is considered converged
  /// (the remaining delta is cheap enough to move inside the freeze).
  uint32_t min_delta_chunks = 1;
};

/// Outcome of one pre-copy round.
struct PrecopyRoundReport {
  uint32_t round = 0;           // 0-based round index just shipped
  uint32_t chunks_shipped = 0;  // dirty chunks moved this round
  uint64_t bytes_shipped = 0;   // serialized payload bytes this round

  bool converged(const PrecopyOptions& options) const {
    return chunks_shipped <= options.min_delta_chunks ||
           round + 1 >= options.max_rounds;
  }
};

/// Coarse classification of a migration_start failure, so callers driving
/// many migrations (the fleet orchestrator) can decide mechanically
/// whether retrying — possibly against another destination — can help.
enum class MigrationFailureClass : uint8_t {
  kNone = 0,          // no failure
  kRetryableNetwork,  // transient transport loss/corruption: retry
  kRetryableBusy,     // a service or the destination ME is busy: back off
  kFatalPolicy,       // migration policy denied this destination
  kFatalState,        // the library cannot migrate in its current state
  kFatalInternal,     // attestation/crypto/internal failure: do not retry
};

const char* migration_failure_class_name(MigrationFailureClass cls);
bool migration_failure_is_retryable(MigrationFailureClass cls);

/// Maps a Status from the migration_start path to a failure class.
MigrationFailureClass classify_migration_failure(Status status);

/// Structured outcome of migration_start: the bare Status plus a failure
/// class and a message naming the protocol step that failed.
struct MigrationStartResult {
  Status status = Status::kOk;
  MigrationFailureClass failure_class = MigrationFailureClass::kNone;
  std::string message;  // empty on success

  bool ok() const { return status == Status::kOk; }
  bool retryable() const {
    return migration_failure_is_retryable(failure_class);
  }
};

class MigrationLibrary : private PersistSink {
 public:
  /// `host` is the enclave embedding this library.  `engine` decides when
  /// the Table II buffer is sealed + OCALLed out; nullptr selects the
  /// paper-faithful SyncPersist.  `live_transfer_capable` makes the
  /// library create an epoch-guard hardware counter at init (kNew /
  /// kMigrate) — the prerequisite for iterative pre-copy migration, and a
  /// one-counter cost on init plus one hardware-counter read on restore.
  /// Off by default: legacy enclaves keep the paper's exact init costs
  /// and full-snapshot migration semantics.
  explicit MigrationLibrary(sgx::Enclave& host,
                            std::unique_ptr<PersistenceEngine> engine = nullptr,
                            bool live_transfer_capable = false);

  /// OCALL the library uses to hand its sealed persistent buffer to the
  /// untrusted application for storage (invoked on mutating counter ops
  /// and migration events; after migration_init the application should
  /// store sealed_state() itself).
  using PersistCallback = std::function<void(ByteView sealed_state)>;
  void set_persist_callback(PersistCallback callback) {
    persist_callback_ = std::move(callback);
  }

  /// Overrides the MRENCLAVE the library expects the local ME to attest
  /// with (defaults to MigrationEnclave::standard_image()).
  void set_expected_me_measurement(const sgx::Measurement& mr) {
    expected_me_mr_ = mr;
  }

  // ----- Listing 1: interface for the untrusted application -----

  /// Initializes the library.  `state_buffer` is the previously stored
  /// sealed buffer for kRestore (ignored otherwise).  Refuses to operate
  /// if the restored buffer carries the freeze flag (the enclave was
  /// migrated away).  For kMigrate, contacts the local ME and applies the
  /// incoming migration data.
  Status migration_init(ByteView state_buffer, InitState init_state,
                        const std::string& me_address);

  /// Starts a migration to `destination_address`: freezes the library,
  /// collects effective counter values, DESTROYS the hardware counters,
  /// sets + persists the freeze flag, and hands the migration data to the
  /// local ME.  `policy` optionally constrains the destination (§X
  /// extension); it is enforced by the source ME against the
  /// destination's certified attributes.  On failure the collected data
  /// stays staged so the application can retry with another destination.
  Status migration_start(const std::string& destination_address,
                         MigrationPolicy policy = {});

  /// Like migration_start, but reports a structured failure (class +
  /// message naming the failing protocol step) instead of a bare Status.
  MigrationStartResult migration_start_detailed(
      const std::string& destination_address, MigrationPolicy policy = {});

  // ----- pipelined (non-blocking) migration start -----
  //
  // The blocking migration_start holds the caller for the whole ME<->ME
  // conversation, so a fleet driver can only overlap transfers by
  // spending one thread each.  The enqueue/poll pair instead hands the
  // staged snapshot to the local ME's TransferTask pipeline and returns;
  // the ME interleaves every queued transfer over independent RA
  // channels, and the caller polls for the fate of exactly this attempt.

  /// Runs the same destructive prologue as migration_start (freeze,
  /// collect, destroy counters, persist the freeze flag) and queues the
  /// transfer at the local ME.  kOk means QUEUED — the migration is in
  /// flight until migration_poll_transfer reports its fate.  Failures
  /// are classified like migration_start and leave the staged data for a
  /// retry (possibly re-routed).
  MigrationStartResult migration_enqueue_detailed(
      const std::string& destination_address, MigrationPolicy policy = {});

  /// Freeze-aware variant of migration_enqueue_detailed: reserves a
  /// transfer slot at the local ME WITHOUT freezing — the enclave keeps
  /// mutating counters while the ME queues, attests the destination, and
  /// parks the slot.  Only when migration_poll_transfer observes
  /// kSlotLive does the library run the destructive freeze+collect and
  /// arm the payload, so a queued transfer waits live, not frozen.  If a
  /// previous attempt already froze (staged data exists), this degrades
  /// to migration_enqueue_detailed — the freeze already happened.
  MigrationStartResult migration_reserve_detailed(
      const std::string& destination_address, MigrationPolicy policy = {});

  /// Fate of the queued attempt: kOk = the destination accepted (the
  /// source side is done, metrics updated); status kMigrationInProgress
  /// with failure_class kNone = still in flight, poll again after
  /// pumping; anything else = terminal failure of THIS attempt,
  /// classified for the caller's retry machinery (staged data kept).
  /// For reserved (freeze-aware) attempts, the poll that observes
  /// kSlotLive runs the freeze+collect+arm step inline.
  MigrationStartResult migration_poll_transfer();

  /// True while an enqueued attempt is awaiting its poll verdict.
  bool transfer_enqueued() const { return enqueue_pending_; }

  // ----- live pre-copy migration (iterative, VM-live-migration style) ---
  //
  // Instead of freezing for the whole Table II snapshot, the caller ships
  // dirty chunks round by round while counter operations CONTINUE, then
  // freezes only for the final delta:
  //
  //   while (!report.converged(options)) report = migration_precopy_round(d);
  //   migration_finalize(d);
  //
  // Requires the live-transfer capability (epoch guard): finalize
  // invalidates every previously sealed buffer with ONE epoch-counter
  // increment and defers the per-counter hardware destroys to after the
  // destination has been released, so the freeze window no longer grows
  // with the number of active counters.

  /// Ships every Table II chunk dirtied since the last shipped round
  /// (round 0 ships all populated chunks) to `destination_address` via the
  /// local ME.  Mutations stay enabled throughout.  Switching destination
  /// mid-pre-copy restarts the attempt (fresh nonce, full re-ship).
  Result<PrecopyRoundReport> migration_precopy_round(
      const std::string& destination_address, MigrationPolicy policy = {});

  /// Freezes the library, fences persistence, epoch-invalidates the
  /// sealed-buffer lineage, persists the freeze flag, and ships just the
  /// chunks dirtied since the last round plus the MSK.  The destination ME
  /// assembles the authoritative snapshot from its staged rounds + this
  /// delta (verified against a chunk manifest).  Hardware counters are
  /// destroyed AFTER the destination accepted — they are unreachable once
  /// the epoch advanced, so the teardown no longer sits in the freeze
  /// window.  Works with zero prior rounds (pure stop-and-copy).
  MigrationStartResult migration_finalize_detailed(
      const std::string& destination_address, MigrationPolicy policy = {});
  Status migration_finalize(const std::string& destination_address,
                            MigrationPolicy policy = {});

  /// Asks the local ME for the state of this enclave's outgoing migration.
  Result<OutgoingState> query_migration_status();

  /// Asks the local ME for the fate of the CURRENT migration attempt
  /// (identified by the request nonce staged by migration_start).  This is
  /// how a caller — or migration_start itself — distinguishes "the ME
  /// never saw my request" from "the ME accepted it but the reply (or the
  /// ME process) died": the latter returns kPending/kCompleted from the
  /// ME's durable transfer queue.  kNone when nothing is staged.
  Result<OutgoingState> query_staged_attempt_status();

  // ----- Listing 2: interface for the application enclave -----

  Result<Bytes> seal_migratable_data(ByteView additional_mac_text,
                                     ByteView text_to_encrypt);
  Result<sgx::UnsealedData> unseal_migratable_data(ByteView sealed_blob);

  Result<CreatedMigratableCounter> create_migratable_counter();
  Status destroy_migratable_counter(uint32_t counter_id);
  Result<uint32_t> increment_migratable_counter(uint32_t counter_id);
  Result<uint32_t> read_migratable_counter(uint32_t counter_id);

  /// Fence for batching engines: on return every mutation so far is
  /// sealed and handed to the persist OCALL.  No-op under SyncPersist.
  /// Applications using WriteBehindPersist call this at operation-batch
  /// boundaries; the library itself forces it before migration/freeze
  /// events and before destroying a hardware counter.
  Status persist_flush();

  // ----- chaos drill plumbing (oracle self-tests only) -----
  /// FAULT-INJECTION DRILL: disables the anti-fork machinery of the
  /// pre-copy finalize path — the epoch is NOT invalidated and the
  /// hardware counters are NOT retired, so a stale pre-freeze sealed
  /// buffer restores into a usable second live instance (a fork).  Exists
  /// so the chaos fork oracle can be proven to catch the violation it
  /// guards against; never call outside such a drill.
  void chaos_disable_epoch_guard() { chaos_epoch_guard_disabled_ = true; }

  // ----- state inspection -----
  bool initialized() const { return initialized_; }
  bool frozen() const { return runtime_frozen_; }
  /// True when this library can run the iterative pre-copy protocol (the
  /// epoch guard exists — capability requested at construction AND the
  /// state was initialized/restored with the guard present).
  bool live_transfer_capable() const { return state_.epoch_active != 0; }
  /// Virtual time the enclave spent frozen during its last successful
  /// outgoing migration: freeze instant -> transfer accepted by the local
  /// ME.  Zero until a migration succeeded.
  Duration last_freeze_window() const { return last_freeze_window_; }
  /// Serialized migration payload bytes of the last successful outgoing
  /// migration (all pre-copy rounds + finalize, or the full snapshot).
  uint64_t last_transfer_bytes() const { return last_transfer_bytes_; }
  /// Pre-copy rounds shipped before the last successful finalize (0 for a
  /// full-snapshot migration or a pure stop-and-copy finalize).
  uint32_t last_precopy_rounds() const { return last_precopy_rounds_; }
  /// Virtual time a reserved (freeze-aware) attempt waited LIVE between
  /// the reserve and its slot going live (freeze+arm).  Zero for
  /// freeze-at-enqueue attempts — their whole queue wait is freeze time.
  Duration last_enqueue_wait() const { return last_enqueue_wait_; }
  /// Latest sealed persistent buffer (Table II) for the application to
  /// store.  Under a batching engine this may lag the in-memory state
  /// until the next commit or persist_flush().
  const Bytes& sealed_state() const { return sealed_state_; }
  size_t active_counters() const { return state_.active_count(); }
  const PersistenceEngine& persistence() const { return *engine_; }

 private:
  // ----- PersistSink (the engine calls back into us to commit) -----
  Status commit_state() override;
  Duration now() const override;
  obs::Observability* observability() const override;

  // ----- observability helpers -----
  /// The world's trace recorder when wired AND enabled; nullptr otherwise.
  obs::TraceRecorder* recorder() const;
  /// This enclave's machine address (the lane spans are attributed to).
  const std::string& lane() const;
  /// Ensures the attempt's root span ("migration", one per trace id) is
  /// open, binding `nonce` as the trace id.
  void trace_attempt_root(uint64_t nonce);
  /// Opens the freeze span at freeze_started_ (trace id bound later if
  /// the nonce does not exist yet).
  void trace_freeze_begin();
  /// Closes the freeze span where last_freeze_window_ is computed, so the
  /// trace-derived window equals the reported one BY CONSTRUCTION.
  void trace_freeze_end();
  /// Closes the attempt's spans and root on the accepted verdict.
  void trace_attempt_done(uint64_t nonce, uint64_t payload_bytes);

  /// Reports one completed mutation to the engine.
  Status persist_after_mutation(MutationKind kind);
  /// Mutation that must be durable before returning (freeze flag, fresh
  /// counter UUIDs): report + fence, regardless of engine.
  Status persist_mutation_durable(MutationKind kind);

  Status ensure_me_channel();
  /// The destructive front half of migration_start: freeze, collect,
  /// draw/reuse the attempt nonce, destroy counters, persist the freeze
  /// flag.  Idempotent across retries; on success the staged snapshot and
  /// nonce are ready to ship toward `destination_address`.
  MigrationStartResult stage_for_migration(
      const std::string& destination_address);
  /// Best-effort proactive abort of a superseded attempt: tells the local
  /// ME that (nonce, old destination) was re-routed so the orphaned
  /// destination entry can be expired now instead of by the pull-based
  /// reconcile sweep.  Failures are ignored — the sweep remains the
  /// backstop.
  void notify_abort_stale(uint64_t nonce, const std::string& old_destination);
  /// Shared success tail of the start/enqueue paths: freeze-window and
  /// payload metrics, staged state cleared.
  void finish_outgoing(uint64_t payload_bytes);
  /// kSlotLive landing of a reserved attempt: records the live queue
  /// wait, runs the destructive stage (freeze+collect+destroy+persist)
  /// and ships the armed payload to the parked TransferTask.
  MigrationStartResult arm_reserved_slot();
  /// Shared body of the two status queries (nonce 0 = per-identity).
  Result<OutgoingState> query_status_internal(uint64_t nonce);
  /// Sends one LibMsg over the LA channel and returns the reply.
  Result<LibMsg> me_exchange(const LibMsg& request);
  /// Like me_exchange, but re-runs local attestation once if the ME lost
  /// the session (e.g. the management VM restarted) and retries.
  Result<LibMsg> me_exchange_reattest(const LibMsg& request);
  /// Seals the internal buffer and (optionally) OCALLs it out.
  Status persist(bool invoke_callback);
  Status apply_incoming(const MigrationData& data);
  Result<MigrationData> collect_values();
  Status destroy_active_counters();
  Status check_operational() const;

  // ----- pre-copy internals -----
  /// Stamps the chunk containing `slot` with the next mutation generation
  /// (piggybacked on every Table II mutation; drives dirty-chunk rounds).
  void note_slot_dirty(size_t slot);
  /// Creates the epoch-guard hardware counter (live-transfer capability).
  Status create_epoch_guard();
  /// Restore-time rollback check: the hardware epoch counter must still
  /// hold the value this buffer was sealed under.
  Status check_epoch_guard() const;
  /// Resets the per-attempt pre-copy state toward a (new) destination.
  void reset_precopy(const std::string& destination_address);
  /// Collects every chunk with generation > shipped generation; round 0
  /// (`include_all_populated`) also collects clean chunks holding active
  /// counters (e.g. restored state whose generations start at zero).
  /// Effective values come from the hardware-value cache where warm.
  Result<std::vector<CounterChunk>> collect_dirty_chunks(
      bool include_all_populated);
  /// Manifest of everything shipped so far (staged chunks, latest gens).
  std::vector<ChunkManifestEntry> staged_manifest() const;

  sgx::Enclave& host_;
  std::unique_ptr<PersistenceEngine> engine_;
  // Sealing key derived once per library lifetime (one EGETKEY) and
  // reused for every Table II re-seal; see sgx::SealContext.
  std::optional<sgx::SealContext> seal_ctx_;
  LibraryState state_;
  // In-memory cache of the hardware counter values (filled by create/
  // read/increment).  Lets the increment overflow check run without an
  // extra Platform Services round trip; safe because this library
  // instance is the counter's only user (the UUID nonce is sealed in the
  // library state).
  std::array<std::optional<uint32_t>, kMaxCounters> cached_hw_values_{};
  Bytes sealed_state_;
  PersistCallback persist_callback_;
  sgx::Measurement expected_me_mr_{};
  std::string me_address_;
  bool initialized_ = false;
  bool runtime_frozen_ = false;
  uint64_t la_session_id_ = 0;
  std::optional<net::SecureChannel> me_channel_;
  std::optional<MigrationData> staged_outgoing_;
  // Random identifier of the in-flight migration attempt, generated when
  // the data is staged and re-sent verbatim on retries TOWARD THE SAME
  // DESTINATION.  The ME stores it durably with the retained transfer,
  // which makes the migrate request exactly-once (re-sends are
  // deduplicated) and resumable (a nonce-scoped status query reveals
  // whether a lost reply — or a restarted ME — actually accepted the
  // transfer).  Re-routing to a different destination draws a FRESH
  // nonce: a transfer that landed at the old destination must never be
  // mistaken for success toward the new one.
  uint64_t staged_nonce_ = 0;
  std::string staged_destination_;
  /// Serialized payload bytes of the queued (non-blocking) attempt, and
  /// whether one is awaiting its poll verdict.  The policy is kept so an
  /// internal re-enqueue (ME forgot the nonce) re-ships under the SAME
  /// constraints the caller staged.
  uint64_t enqueued_bytes_ = 0;
  bool enqueue_pending_ = false;
  MigrationPolicy staged_policy_;
  bool counters_destroyed_ = false;
  // Set once the freeze flag has been durably persisted during an
  // outgoing migration.  Kept separate from counters_destroyed_ so a
  // retry after a failed persist still writes the flag (and a retry after
  // a failed ME exchange never re-destroys hardware counters).
  bool freeze_persisted_ = false;

  // ----- pre-copy state -----
  bool live_transfer_capable_ = false;
  // Dirty tracking: one monotonic generation per Table II chunk, stamped
  // from a global mutation counter on every create/destroy/increment and
  // restore-apply.  Always maintained (two array writes per mutation —
  // noise next to the seal + OCALL the same mutation already pays).
  uint64_t mutation_generation_ = 0;
  std::array<uint64_t, kPrecopyChunkCount> chunk_generation_{};
  // Per-attempt: what the destination already holds.
  std::string precopy_destination_;
  uint64_t precopy_nonce_ = 0;
  std::array<uint64_t, kPrecopyChunkCount> shipped_generation_{};
  // Everything shipped so far, merged — the re-route / incomplete-staging
  // fallback re-ships this full set in one finalize.
  std::map<uint32_t, CounterChunk> staged_chunks_;
  // Final delta collected at freeze time (counter values become
  // unreadable once the deferred destroys run, so finalize retries resend
  // this cache instead of re-collecting).
  std::vector<CounterChunk> final_chunks_;
  uint32_t precopy_rounds_ = 0;
  uint64_t precopy_bytes_ = 0;
  bool finalize_staged_ = false;
  // Set when an async source ME queued the staged finalize instead of
  // shipping it inline (reply kMigrateQueued): the enclave stays frozen
  // and the poll machinery owns the outcome — kAccepted runs the
  // pre-copy teardown in finish_outgoing, kNone re-drives the finalize.
  bool async_finalize_pending_ = false;
  // One epoch increment per outgoing pre-copy migration: like the counter
  // destroys of the full-snapshot path, it must never run twice.
  bool epoch_invalidated_ = false;
  // chaos_disable_epoch_guard() drill: skip the epoch invalidation AND
  // the deferred counter retire so the fork oracle has a real fork to
  // catch.
  bool chaos_epoch_guard_disabled_ = false;

  // ----- per-migration metrics (freeze-window accounting) -----
  Duration freeze_started_{};
  Duration last_freeze_window_{};
  uint64_t last_transfer_bytes_ = 0;
  uint32_t last_precopy_rounds_ = 0;
  // Freeze-aware accounting: when the reserve was issued, and how long
  // the attempt waited live before its slot went live.
  Duration enqueue_started_{};
  Duration last_enqueue_wait_{};

  // ----- trace spans of the in-flight attempt (0 = none/disabled) -----
  uint64_t root_span_ = 0;
  uint64_t freeze_span_ = 0;
  uint64_t enqueue_span_ = 0;
};

}  // namespace sgxmig::migration

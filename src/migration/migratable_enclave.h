// A ready-to-use migratable enclave: an sgx::Enclave embedding the
// Migration Library and exposing the paper's Listing 1 / Listing 2 API as
// its ECALL surface.  Application enclaves (examples/, apps/) either use
// this directly or subclass it and add their own ECALLs.
#pragma once

#include "migration/migration_library.h"
#include "sgx/enclave.h"

namespace sgxmig::migration {

class MigratableEnclave : public sgx::Enclave {
 public:
  /// `persistence` selects when the library's Table II buffer is sealed
  /// and handed to the persist OCALL (persistence_engine.h); the default
  /// is the paper-faithful synchronous persist.  `live_transfer_capable`
  /// equips the library with the epoch guard required for iterative
  /// pre-copy migration (one extra hardware counter at init).
  MigratableEnclave(sgx::PlatformIface& platform,
                    std::shared_ptr<const sgx::EnclaveImage> image,
                    PersistenceMode persistence = PersistenceMode::kSync,
                    const GroupCommitOptions& group_commit = {},
                    bool live_transfer_capable = false)
      : Enclave(platform, std::move(image)),
        library_(*this, make_persistence_engine(persistence, group_commit),
                 live_transfer_capable) {}

  // ----- Listing 1 (untrusted application interface) -----
  Status ecall_migration_init(ByteView state_buffer, InitState init_state,
                              const std::string& me_address) {
    auto scope = enter_ecall();
    return library_.migration_init(state_buffer, init_state, me_address);
  }

  Status ecall_migration_start(const std::string& destination_address) {
    auto scope = enter_ecall();
    return library_.migration_start(destination_address);
  }

  /// Convenience overload: restrict the destination to a region list.
  Status ecall_migration_start(const std::string& destination_address,
                               std::vector<std::string> allowed_regions) {
    MigrationPolicy policy;
    policy.allowed_regions = std::move(allowed_regions);
    return ecall_migration_start_with_policy(destination_address, policy);
  }

  Status ecall_migration_start_with_policy(
      const std::string& destination_address, const MigrationPolicy& policy) {
    auto scope = enter_ecall();
    return library_.migration_start(destination_address, policy);
  }

  /// Structured-failure variant (class + failing-step message), for
  /// callers with retry logic such as the fleet orchestrator.
  MigrationStartResult ecall_migration_start_detailed(
      const std::string& destination_address, MigrationPolicy policy = {}) {
    auto scope = enter_ecall();
    return library_.migration_start_detailed(destination_address,
                                             std::move(policy));
  }

  // ----- pipelined (non-blocking) migration start -----

  /// Stages the migration and queues it at the local ME's TransferTask
  /// pipeline; kOk means QUEUED.  Poll with ecall_migration_poll_transfer
  /// while pumping the ME/network.
  MigrationStartResult ecall_migration_enqueue_detailed(
      const std::string& destination_address, MigrationPolicy policy = {}) {
    auto scope = enter_ecall();
    return library_.migration_enqueue_detailed(destination_address,
                                               std::move(policy));
  }

  /// Freeze-aware enqueue: reserves a transfer slot at the local ME while
  /// the enclave KEEPS RUNNING; the poll that observes the slot going
  /// live runs the freeze+collect+arm step.  See
  /// MigrationLibrary::migration_reserve_detailed.
  MigrationStartResult ecall_migration_reserve_detailed(
      const std::string& destination_address, MigrationPolicy policy = {}) {
    auto scope = enter_ecall();
    return library_.migration_reserve_detailed(destination_address,
                                               std::move(policy));
  }

  /// Fate of the queued attempt: kOk = accepted; kMigrationInProgress
  /// with failure_class kNone = still in flight; anything else =
  /// classified terminal failure (staged data kept for a retry).
  MigrationStartResult ecall_migration_poll_transfer() {
    auto scope = enter_ecall();
    return library_.migration_poll_transfer();
  }

  bool transfer_enqueued() const { return library_.transfer_enqueued(); }

  // ----- live pre-copy migration -----

  /// One iterative pre-copy round: ships the Table II chunks dirtied
  /// since the last round while counter operations keep running.
  Result<PrecopyRoundReport> ecall_migration_precopy_round(
      const std::string& destination_address, MigrationPolicy policy = {}) {
    auto scope = enter_ecall();
    return library_.migration_precopy_round(destination_address,
                                            std::move(policy));
  }

  /// Freezes and ships only the final dirty delta (plus the MSK); the
  /// destination ME assembles the authoritative snapshot from its staged
  /// rounds.  See MigrationLibrary::migration_finalize_detailed.
  MigrationStartResult ecall_migration_finalize_detailed(
      const std::string& destination_address, MigrationPolicy policy = {}) {
    auto scope = enter_ecall();
    return library_.migration_finalize_detailed(destination_address,
                                                std::move(policy));
  }

  Status ecall_migration_finalize(const std::string& destination_address,
                                  MigrationPolicy policy = {}) {
    auto scope = enter_ecall();
    return library_.migration_finalize(destination_address,
                                       std::move(policy));
  }

  Result<OutgoingState> ecall_query_migration_status() {
    auto scope = enter_ecall();
    return library_.query_migration_status();
  }

  /// Fate of the currently staged migration attempt (nonce-scoped): lets
  /// retry drivers detect that a "failed" start actually landed in the
  /// ME's durable transfer queue and resume instead of re-sending.
  Result<OutgoingState> ecall_query_staged_attempt_status() {
    auto scope = enter_ecall();
    return library_.query_staged_attempt_status();
  }

  // ----- Listing 2 (in-enclave API, exposed for tests/benches) -----
  Result<Bytes> ecall_seal_migratable_data(ByteView additional_mac_text,
                                           ByteView text_to_encrypt) {
    auto scope = enter_ecall();
    return library_.seal_migratable_data(additional_mac_text, text_to_encrypt);
  }

  Result<sgx::UnsealedData> ecall_unseal_migratable_data(ByteView blob) {
    auto scope = enter_ecall();
    return library_.unseal_migratable_data(blob);
  }

  Result<CreatedMigratableCounter> ecall_create_migratable_counter() {
    auto scope = enter_ecall();
    return library_.create_migratable_counter();
  }

  Status ecall_destroy_migratable_counter(uint32_t counter_id) {
    auto scope = enter_ecall();
    return library_.destroy_migratable_counter(counter_id);
  }

  Result<uint32_t> ecall_increment_migratable_counter(uint32_t counter_id) {
    auto scope = enter_ecall();
    return library_.increment_migratable_counter(counter_id);
  }

  Result<uint32_t> ecall_read_migratable_counter(uint32_t counter_id) {
    auto scope = enter_ecall();
    return library_.read_migratable_counter(counter_id);
  }

  /// Batch-boundary fence for batching persistence engines (no-op under
  /// the default SyncPersist).
  Status ecall_persist_flush() {
    auto scope = enter_ecall();
    return library_.persist_flush();
  }

  // ----- untrusted-side plumbing -----
  void set_persist_callback(MigrationLibrary::PersistCallback callback) {
    library_.set_persist_callback(std::move(callback));
  }
  const Bytes& sealed_state() const { return library_.sealed_state(); }
  bool migration_frozen() const { return library_.frozen(); }
  size_t active_counters() const { return library_.active_counters(); }
  bool live_transfer_capable() const {
    return library_.live_transfer_capable();
  }
  /// Freeze-window / payload metrics of the last successful outgoing
  /// migration (full-snapshot or pre-copy) — the bench observable.
  Duration last_freeze_window() const {
    return library_.last_freeze_window();
  }
  uint64_t last_transfer_bytes() const {
    return library_.last_transfer_bytes();
  }
  uint32_t last_precopy_rounds() const {
    return library_.last_precopy_rounds();
  }
  Duration last_enqueue_wait() const { return library_.last_enqueue_wait(); }
  const PersistenceEngine& persistence_engine() const {
    return library_.persistence();
  }
  /// Chaos drill only: see MigrationLibrary::chaos_disable_epoch_guard.
  void chaos_disable_epoch_guard() { library_.chaos_disable_epoch_guard(); }

 protected:
  /// Subclasses (application enclaves) use the library from inside their
  /// own ECALLs.
  MigrationLibrary& library() { return library_; }

 private:
  MigrationLibrary library_;
};

}  // namespace sgxmig::migration

#include "migration/library_state.h"

#include "support/serde.h"

namespace sgxmig::migration {

namespace {
constexpr char kMagicV1[] = "SGXMIG-LIBSTATE-v1";
constexpr char kMagicV2[] = "SGXMIG-LIBSTATE-v2";  // v1 + epoch guard
}  // namespace

Bytes LibraryState::serialize() const {
  BinaryWriter w;
  w.str(kMagicV2);
  w.u8(frozen);
  for (bool active : counters_active) w.u8(active ? 1 : 0);
  for (const auto& uuid : counter_uuids) sgx::serialize_uuid(w, uuid);
  for (uint32_t offset : counter_offsets) w.u32(offset);
  w.fixed(msk);
  w.u8(epoch_active);
  sgx::serialize_uuid(w, epoch_uuid);
  w.u32(epoch_value);
  return w.take();
}

Result<LibraryState> LibraryState::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  const std::string magic = r.str(64);
  const bool v2 = magic == kMagicV2;
  if (!v2 && magic != kMagicV1) return Status::kTampered;
  LibraryState state;
  state.frozen = r.u8();
  for (auto& active : state.counters_active) active = r.u8() != 0;
  for (auto& uuid : state.counter_uuids) uuid = sgx::deserialize_uuid(r);
  for (auto& offset : state.counter_offsets) offset = r.u32();
  state.msk = r.fixed<16>();
  if (v2) {
    // v1 buffers (sealed before the epoch guard existed) restore with the
    // guard inactive — exactly the paper's protection level.
    state.epoch_active = r.u8();
    state.epoch_uuid = sgx::deserialize_uuid(r);
    state.epoch_value = r.u32();
  }
  if (!r.done()) return Status::kTampered;
  return state;
}

size_t LibraryState::active_count() const {
  size_t n = 0;
  for (bool active : counters_active) {
    if (active) ++n;
  }
  return n;
}

size_t LibraryState::free_slot() const {
  for (size_t i = 0; i < counters_active.size(); ++i) {
    if (!counters_active[i]) return i;
  }
  return kMaxCounters;
}

}  // namespace sgxmig::migration

// The Migration Library's persistent internals — paper Table II.
//
//   Name             Type               Description
//   frozen           uint8              Freeze flag for migration
//   counters active  bool[256]          Shows used counters
//   counter uuids    SGX counter[256]   UUIDs of the SGX counters
//   counter offsets  uint32[256]        Offsets of the counters
//   MSK              128-bit key        Used by migratable seal
//
// The library seals this buffer (with the host enclave's standard sealing
// key) and hands it to the untrusted application for storage; on every
// enclave start the application passes it back to migration_init().  If
// `frozen` is set — the enclave was migrated away — the library refuses to
// operate (§VI-B "Persistent data").
#pragma once

#include <array>

#include "migration/migration_data.h"
#include "sgx/pse.h"
#include "support/bytes.h"
#include "support/status.h"

namespace sgxmig::migration {

struct LibraryState {
  uint8_t frozen = 0;
  std::array<bool, kMaxCounters> counters_active{};
  std::array<sgx::CounterUuid, kMaxCounters> counter_uuids{};
  std::array<uint32_t, kMaxCounters> counter_offsets{};
  sgx::Key128 msk{};

  // ----- epoch guard (live-transfer capability, paper-plus) -----
  //
  // One extra hardware counter whose CURRENT value is recorded in every
  // sealed buffer.  Restore refuses a buffer whose recorded value lags the
  // hardware (kMigrationFrozen): ONE increment at migration_finalize
  // invalidates every previously sealed Table II in constant time, which
  // is what lets the per-counter hardware destroys run AFTER the
  // destination is released instead of inside the freeze window.  Created
  // at init only when the library is constructed live-transfer capable;
  // legacy enclaves (epoch_active == 0) keep the paper's exact semantics.
  uint8_t epoch_active = 0;
  sgx::CounterUuid epoch_uuid{};
  uint32_t epoch_value = 0;  // hardware value this buffer was sealed under

  Bytes serialize() const;
  static Result<LibraryState> deserialize(ByteView bytes);

  size_t active_count() const;
  /// Lowest free slot, or kMaxCounters when full.
  size_t free_slot() const;
};

}  // namespace sgxmig::migration

// Pluggable persistence for the Migration Library's Table II buffer.
//
// The paper's Migration Library re-seals and persists its internal buffer
// synchronously inside every mutating counter operation — the mechanistic
// source of the ≤ ~12% overhead on create/increment/destroy in Fig. 3.
// This interface carves that decision out of the library so the *when* of
// persistence is a policy:
//
//   * SyncPersist       — paper-faithful default: one seal + OCALL per
//                         mutation.  All existing tests/benches keep their
//                         semantics under this engine.
//   * GroupCommitPersist — coalesces up to N mutations or a virtual-time
//                         window into one seal + OCALL.  flush() is a hard
//                         fence; the library forces it before any
//                         migration/freeze event and before destroying a
//                         hardware counter, so the Table II invariants
//                         (freeze flag durable before data leaves, UUID
//                         table never references a destroyed counter
//                         without a durable record) still hold.
//   * WriteBehindPersist — dirty-flag only: nothing is persisted until a
//                         batch boundary (an explicit flush()).  Upper
//                         bound for throughput ablations; crash windows
//                         span whole batches.
//
// The engine never seals anything itself: the library hands it a
// PersistSink whose commit_state() performs the seal + OCALL.  Engines
// only decide when to invoke it.  bench/ablation_persist_batching.cpp
// compares the three on the Fig. 3 workload.
#pragma once

#include <cstdint>
#include <memory>

#include "support/sim_clock.h"
#include "support/status.h"

namespace sgxmig::obs {
struct Observability;
}  // namespace sgxmig::obs

namespace sgxmig::migration {

enum class PersistenceMode : uint8_t {
  kSync = 0,
  kGroupCommit = 1,
  kWriteBehind = 2,
};

const char* persistence_mode_name(PersistenceMode mode);

/// What just mutated the in-memory Table II buffer.  Engines may treat
/// kinds differently (e.g. a future engine could sync UUID-table changes
/// but batch offset changes).
enum class MutationKind : uint8_t {
  kCounterCreate,
  kCounterIncrement,
  kCounterDestroy,
  kRestoreApply,
  kFreeze,
  /// A Migration Enclave transfer-queue transition (retain / accept /
  /// deliver / complete).  Always paired with a flush today — every queue
  /// transition guards either retained data or the fork-prevention erase —
  /// but routed through the engine so batching remains a knob.
  kTransferQueue,
};

/// Library-side half of the contract: seals the current Table II buffer
/// and OCALLs it to untrusted storage.  Implemented by MigrationLibrary.
class PersistSink {
 public:
  virtual ~PersistSink() = default;
  /// One durable commit of the current in-memory state (seal + OCALL).
  virtual Status commit_state() = 0;
  /// Virtual time, for window-based coalescing.
  virtual Duration now() const = 0;
  /// The world's trace/metrics bundle; null (the default) disables engine
  /// instrumentation.
  virtual obs::Observability* observability() const { return nullptr; }
};

struct GroupCommitOptions {
  /// Commit after this many pending mutations...
  uint32_t max_batch = 8;
  /// ...or once the oldest pending mutation is this old (virtual time).
  Duration window = milliseconds(100);
};

class PersistenceEngine {
 public:
  virtual ~PersistenceEngine() = default;

  virtual PersistenceMode mode() const = 0;

  /// Called by the library immediately after `kind` mutated the in-memory
  /// buffer.  The engine decides whether to commit now.
  virtual Status on_mutation(PersistSink& sink, MutationKind kind) = 0;

  /// Fence: on success, every mutation reported so far is durable.
  virtual Status flush(PersistSink& sink) = 0;

  /// True when mutations were reported but not yet committed.
  virtual bool has_pending() const = 0;

  // ----- instrumentation (for the ablation bench and tests) -----
  uint64_t mutations_seen() const { return mutations_seen_; }
  uint64_t commits_issued() const { return commits_issued_; }

 protected:
  Status commit(PersistSink& sink);
  void note_mutation() { ++mutations_seen_; }

 private:
  uint64_t mutations_seen_ = 0;
  uint64_t commits_issued_ = 0;
  uint64_t committed_mutations_ = 0;  // mutations covered by past commits
};

/// Factory.  `options` only affects kGroupCommit.
std::unique_ptr<PersistenceEngine> make_persistence_engine(
    PersistenceMode mode, const GroupCommitOptions& options = {});

}  // namespace sgxmig::migration

#include "migration/sdk_api.h"

#include <cstring>

#include "crypto/gcm.h"

namespace sgxmig::migration {

namespace {
// magic(str) + iv + tag + aad + ciphertext with u32 length prefixes, as
// produced by MigrationLibrary::seal_migratable_data.
constexpr uint32_t kBlobOverhead = 4 + 20 /*magic*/ + 12 + 16 + 4 + 4;
}  // namespace

uint32_t sgx_calc_migratable_sealed_data_size(
    uint32_t additional_MACtext_length, uint32_t text2encrypt_length) {
  return kBlobOverhead + additional_MACtext_length + text2encrypt_length;
}

Status sgx_seal_migratable_data(MigrationLibrary& lib,
                                uint32_t additional_MACtext_length,
                                const uint8_t* p_additional_MACtext,
                                uint32_t text2encrypt_length,
                                const uint8_t* p_text2encrypt,
                                uint32_t sealed_data_size,
                                uint8_t* p_sealed_data) {
  if ((additional_MACtext_length != 0 && p_additional_MACtext == nullptr) ||
      (text2encrypt_length != 0 && p_text2encrypt == nullptr) ||
      p_sealed_data == nullptr) {
    return Status::kInvalidParameter;
  }
  auto sealed = lib.seal_migratable_data(
      ByteView(p_additional_MACtext, additional_MACtext_length),
      ByteView(p_text2encrypt, text2encrypt_length));
  if (!sealed.ok()) return sealed.status();
  if (sealed.value().size() > sealed_data_size) {
    return Status::kInvalidParameter;  // buffer too small
  }
  std::memcpy(p_sealed_data, sealed.value().data(), sealed.value().size());
  return Status::kOk;
}

Status sgx_unseal_migratable_data(MigrationLibrary& lib,
                                  const uint8_t* p_sealed_data,
                                  uint32_t sealed_data_size,
                                  uint8_t* p_additional_MACtext,
                                  uint32_t* p_additional_MACtext_length,
                                  uint8_t* p_decrypted_text,
                                  uint32_t* p_decrypted_text_length) {
  if (p_sealed_data == nullptr || p_additional_MACtext_length == nullptr ||
      p_decrypted_text_length == nullptr) {
    return Status::kInvalidParameter;
  }
  auto unsealed =
      lib.unseal_migratable_data(ByteView(p_sealed_data, sealed_data_size));
  if (!unsealed.ok()) return unsealed.status();
  const Bytes& aad = unsealed.value().aad;
  const Bytes& plaintext = unsealed.value().plaintext;
  if (aad.size() > *p_additional_MACtext_length ||
      plaintext.size() > *p_decrypted_text_length) {
    // Report required sizes, as the SDK does.
    *p_additional_MACtext_length = static_cast<uint32_t>(aad.size());
    *p_decrypted_text_length = static_cast<uint32_t>(plaintext.size());
    return Status::kInvalidParameter;
  }
  if (!aad.empty()) std::memcpy(p_additional_MACtext, aad.data(), aad.size());
  if (!plaintext.empty()) {
    std::memcpy(p_decrypted_text, plaintext.data(), plaintext.size());
  }
  *p_additional_MACtext_length = static_cast<uint32_t>(aad.size());
  *p_decrypted_text_length = static_cast<uint32_t>(plaintext.size());
  return Status::kOk;
}

Status sgx_create_migratable_counter(MigrationLibrary& lib,
                                     uint32_t* p_counter_id,
                                     uint32_t* p_counter_value) {
  if (p_counter_id == nullptr || p_counter_value == nullptr) {
    return Status::kInvalidParameter;
  }
  auto created = lib.create_migratable_counter();
  if (!created.ok()) return created.status();
  *p_counter_id = created.value().counter_id;
  *p_counter_value = created.value().value;
  return Status::kOk;
}

Status sgx_destroy_migratable_counter(MigrationLibrary& lib,
                                      uint32_t counter_id) {
  return lib.destroy_migratable_counter(counter_id);
}

Status sgx_increment_migratable_counter(MigrationLibrary& lib,
                                        uint32_t counter_id,
                                        uint32_t* p_counter_value) {
  if (p_counter_value == nullptr) return Status::kInvalidParameter;
  auto value = lib.increment_migratable_counter(counter_id);
  if (!value.ok()) return value.status();
  *p_counter_value = value.value();
  return Status::kOk;
}

Status sgx_read_migratable_counter(MigrationLibrary& lib, uint32_t counter_id,
                                   uint32_t* p_counter_value) {
  if (p_counter_value == nullptr) return Status::kInvalidParameter;
  auto value = lib.read_migratable_counter(counter_id);
  if (!value.ok()) return value.status();
  *p_counter_value = value.value();
  return Status::kOk;
}

Status migration_init(MigrationLibrary& lib, const uint8_t* p_data_buffer,
                      uint32_t data_buffer_length, InitState init_state,
                      const char* me_address) {
  if (me_address == nullptr) return Status::kInvalidParameter;
  return lib.migration_init(ByteView(p_data_buffer, data_buffer_length),
                            init_state, me_address);
}

Status migration_start(MigrationLibrary& lib,
                       const char* destination_address) {
  if (destination_address == nullptr) return Status::kInvalidParameter;
  return lib.migration_start(destination_address);
}

}  // namespace sgxmig::migration

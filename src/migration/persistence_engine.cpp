#include "migration/persistence_engine.h"

#include "obs/observability.h"

namespace sgxmig::migration {

Status PersistenceEngine::commit(PersistSink& sink) {
  ++commits_issued_;
  const Status status = sink.commit_state();
  if (status != Status::kOk) return status;
  // Batch size = mutations newly covered by this successful commit.
  const uint64_t batch = mutations_seen_ - committed_mutations_;
  committed_mutations_ = mutations_seen_;
  obs::Observability* obs = sink.observability();
  if (obs != nullptr && obs->enabled()) {
    obs->metrics.add("persist.commits");
    obs->metrics.observe("persist.batch_mutations",
                         static_cast<double>(batch));
  }
  return status;
}

const char* persistence_mode_name(PersistenceMode mode) {
  switch (mode) {
    case PersistenceMode::kSync:
      return "sync";
    case PersistenceMode::kGroupCommit:
      return "group-commit";
    case PersistenceMode::kWriteBehind:
      return "write-behind";
  }
  return "unknown";
}

namespace {

class SyncPersist final : public PersistenceEngine {
 public:
  PersistenceMode mode() const override { return PersistenceMode::kSync; }

  Status on_mutation(PersistSink& sink, MutationKind /*kind*/) override {
    note_mutation();
    return commit(sink);
  }

  Status flush(PersistSink& /*sink*/) override { return Status::kOk; }

  bool has_pending() const override { return false; }
};

class GroupCommitPersist final : public PersistenceEngine {
 public:
  explicit GroupCommitPersist(const GroupCommitOptions& options)
      : options_(options) {}

  PersistenceMode mode() const override {
    return PersistenceMode::kGroupCommit;
  }

  Status on_mutation(PersistSink& sink, MutationKind /*kind*/) override {
    note_mutation();
    if (pending_ == 0) oldest_pending_ = sink.now();
    ++pending_;
    if (pending_ >= options_.max_batch ||
        sink.now() - oldest_pending_ >= options_.window) {
      return flush(sink);
    }
    return Status::kOk;
  }

  Status flush(PersistSink& sink) override {
    if (pending_ == 0) return Status::kOk;
    const Status status = commit(sink);
    // On failure the mutations stay pending; the next mutation or fence
    // retries the commit (the in-memory buffer still holds them).
    if (status == Status::kOk) pending_ = 0;
    return status;
  }

  bool has_pending() const override { return pending_ != 0; }

 private:
  GroupCommitOptions options_;
  uint32_t pending_ = 0;
  Duration oldest_pending_{0};
};

class WriteBehindPersist final : public PersistenceEngine {
 public:
  PersistenceMode mode() const override {
    return PersistenceMode::kWriteBehind;
  }

  Status on_mutation(PersistSink& /*sink*/, MutationKind /*kind*/) override {
    note_mutation();
    dirty_ = true;
    return Status::kOk;
  }

  Status flush(PersistSink& sink) override {
    if (!dirty_) return Status::kOk;
    const Status status = commit(sink);
    if (status == Status::kOk) dirty_ = false;
    return status;
  }

  bool has_pending() const override { return dirty_; }

 private:
  bool dirty_ = false;
};

}  // namespace

std::unique_ptr<PersistenceEngine> make_persistence_engine(
    PersistenceMode mode, const GroupCommitOptions& options) {
  switch (mode) {
    case PersistenceMode::kSync:
      return std::make_unique<SyncPersist>();
    case PersistenceMode::kGroupCommit:
      return std::make_unique<GroupCommitPersist>(options);
    case PersistenceMode::kWriteBehind:
      return std::make_unique<WriteBehindPersist>();
  }
  return std::make_unique<SyncPersist>();
}

}  // namespace sgxmig::migration

// The paper's exact API surface — Listings 1 and 2 — as C-style wrapper
// functions over MigrationLibrary.
//
// The §VII-C usability claim is that porting an enclave takes minimal
// effort: "For sealing, only the function name changes as the other
// function parameters are identical to the standard SGX Library
// functions.  For the monotonic counter operations, the developer only
// has to change the function name and switch from using the SGX UUIDs to
// the counter id."  These wrappers reproduce that surface literally so
// the usability comparison in tests/test_sdk_api.cpp is against the real
// signatures:
//
//   Listing 1 (untrusted application):
//     migration_init(p_data_buffer, init_state, ME_address);
//     migration_start(destination_address);
//
//   Listing 2 (application enclave):
//     sgx_seal_migratable_data(additional_MACtext_length,
//         p_additional_MACtext, text2encrypt_length, p_text2encrypt,
//         sealed_data_size, p_sealed_data);
//     sgx_unseal_migratable_data(p_sealed_data, p_additional_MACtext,
//         p_additional_MACtext_length, p_decrypted_text,
//         p_decrypted_text_length);
//     sgx_create_migratable_counter(p_counter_id, p_counter_value);
//     sgx_destroy_migratable_counter(counter_id);
//     sgx_increment_migratable_counter(counter_id, p_counter_value);
//     sgx_read_migratable_counter(counter_id, p_counter_value);
#pragma once

#include <cstdint>

#include "migration/migration_library.h"

namespace sgxmig::migration {

/// Sealed-blob size for a given payload (like sgx_calc_sealed_data_size);
/// use it to size the p_sealed_data buffer.
uint32_t sgx_calc_migratable_sealed_data_size(uint32_t additional_MACtext_length,
                                              uint32_t text2encrypt_length);

// ----- Listing 2: in-enclave API -----

Status sgx_seal_migratable_data(MigrationLibrary& lib,
                                uint32_t additional_MACtext_length,
                                const uint8_t* p_additional_MACtext,
                                uint32_t text2encrypt_length,
                                const uint8_t* p_text2encrypt,
                                uint32_t sealed_data_size,
                                uint8_t* p_sealed_data);

Status sgx_unseal_migratable_data(MigrationLibrary& lib,
                                  const uint8_t* p_sealed_data,
                                  uint32_t sealed_data_size,
                                  uint8_t* p_additional_MACtext,
                                  uint32_t* p_additional_MACtext_length,
                                  uint8_t* p_decrypted_text,
                                  uint32_t* p_decrypted_text_length);

Status sgx_create_migratable_counter(MigrationLibrary& lib,
                                     uint32_t* p_counter_id,
                                     uint32_t* p_counter_value);

Status sgx_destroy_migratable_counter(MigrationLibrary& lib,
                                      uint32_t counter_id);

Status sgx_increment_migratable_counter(MigrationLibrary& lib,
                                        uint32_t counter_id,
                                        uint32_t* p_counter_value);

Status sgx_read_migratable_counter(MigrationLibrary& lib, uint32_t counter_id,
                                   uint32_t* p_counter_value);

// ----- Listing 1: untrusted-application API -----

Status migration_init(MigrationLibrary& lib, const uint8_t* p_data_buffer,
                      uint32_t data_buffer_length, InitState init_state,
                      const char* me_address);

Status migration_start(MigrationLibrary& lib,
                       const char* destination_address);

}  // namespace sgxmig::migration

// Migration policies — the paper's §X future work, implemented.
//
//   "a migration policy could specify minimum computational requirements
//    of a destination machine, or ensure that a particular enclave is not
//    migrated outside a specified geographic region.  These policies
//    would be enforced by the Migration Enclave..."
//
// The enclave provider provisions a MigrationPolicy into the Migration
// Library; it travels with every migrate request over the attested
// channel and is evaluated by the source ME against the destination
// machine's provider-certified attributes (region, CPU cores) before any
// data leaves the machine.
#pragma once

#include <string>
#include <vector>

#include "platform/provider.h"
#include "support/bytes.h"
#include "support/serde.h"
#include "support/status.h"

namespace sgxmig::migration {

struct MigrationPolicy {
  /// Allowed destination regions; empty = any region.
  std::vector<std::string> allowed_regions;
  /// Machines the enclave must never migrate to; empty = none.
  std::vector<std::string> denied_addresses;
  /// Minimum certified CPU cores of the destination; 0 = no requirement.
  uint32_t min_cpu_cores = 0;

  bool is_unrestricted() const {
    return allowed_regions.empty() && denied_addresses.empty() &&
           min_cpu_cores == 0;
  }

  /// Evaluates the policy against a destination machine's certified
  /// attributes.  Returns kOk or kPolicyViolation.
  Status evaluate(const platform::MachineCredential& destination) const;

  void serialize(BinaryWriter& w) const;
  static Result<MigrationPolicy> deserialize(BinaryReader& r);
};

}  // namespace sgxmig::migration

#include "migration/migration_data.h"

#include "support/serde.h"

namespace sgxmig::migration {

namespace {
constexpr char kMagic[] = "SGXMIG-MIGDATA-v1";
}  // namespace

Bytes MigrationData::serialize() const {
  BinaryWriter w;
  w.str(kMagic);
  for (bool active : counters_active) w.u8(active ? 1 : 0);
  for (uint32_t value : counter_values) w.u32(value);
  w.fixed(msk);
  return w.take();
}

Result<MigrationData> MigrationData::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  if (r.str(64) != kMagic) return Status::kTampered;
  MigrationData data;
  for (auto& active : data.counters_active) active = r.u8() != 0;
  for (auto& value : data.counter_values) value = r.u32();
  data.msk = r.fixed<16>();
  if (!r.done()) return Status::kTampered;
  return data;
}

size_t MigrationData::active_count() const {
  size_t n = 0;
  for (bool active : counters_active) {
    if (active) ++n;
  }
  return n;
}

}  // namespace sgxmig::migration

#include "migration/policy.h"

namespace sgxmig::migration {

Status MigrationPolicy::evaluate(
    const platform::MachineCredential& destination) const {
  if (!allowed_regions.empty()) {
    bool allowed = false;
    for (const auto& region : allowed_regions) {
      if (region == destination.region) allowed = true;
    }
    if (!allowed) return Status::kPolicyViolation;
  }
  for (const auto& address : denied_addresses) {
    if (address == destination.address) return Status::kPolicyViolation;
  }
  if (min_cpu_cores != 0 && destination.cpu_cores < min_cpu_cores) {
    return Status::kPolicyViolation;
  }
  return Status::kOk;
}

void MigrationPolicy::serialize(BinaryWriter& w) const {
  w.u32(static_cast<uint32_t>(allowed_regions.size()));
  for (const auto& region : allowed_regions) w.str(region);
  w.u32(static_cast<uint32_t>(denied_addresses.size()));
  for (const auto& address : denied_addresses) w.str(address);
  w.u32(min_cpu_cores);
}

Result<MigrationPolicy> MigrationPolicy::deserialize(BinaryReader& r) {
  MigrationPolicy policy;
  const uint32_t regions = r.u32();
  if (regions > 256) return Status::kTampered;
  for (uint32_t i = 0; i < regions; ++i) {
    policy.allowed_regions.push_back(r.str(256));
  }
  const uint32_t denied = r.u32();
  if (denied > 4096) return Status::kTampered;
  for (uint32_t i = 0; i < denied; ++i) {
    policy.denied_addresses.push_back(r.str(256));
  }
  policy.min_cpu_cores = r.u32();
  if (!r.ok()) return Status::kTampered;
  return policy;
}

}  // namespace sgxmig::migration

#include "migration/migration_library.h"

#include <limits>

#include "crypto/gcm.h"
#include "migration/migration_enclave.h"
#include "net/network.h"
#include "obs/observability.h"
#include "support/serde.h"

namespace sgxmig::migration {

namespace {
constexpr char kStateAad[] = "SGXMIG-ML-STATE";
constexpr char kMskBlobMagic[] = "SGXMIG-MSK-SEALED-v1";
}  // namespace

MigrationLibrary::MigrationLibrary(sgx::Enclave& host,
                                   std::unique_ptr<PersistenceEngine> engine,
                                   bool live_transfer_capable)
    : host_(host),
      engine_(engine ? std::move(engine)
                     : make_persistence_engine(PersistenceMode::kSync)),
      expected_me_mr_(MigrationEnclave::standard_image()->mr_enclave()),
      live_transfer_capable_(live_transfer_capable) {}

Status MigrationLibrary::check_operational() const {
  if (!initialized_) return Status::kNotInitialized;
  if (runtime_frozen_) return Status::kMigrationFrozen;
  return Status::kOk;
}

// ----- persistence -----

Status MigrationLibrary::persist(bool invoke_callback) {
  if (!seal_ctx_.has_value()) {
    seal_ctx_.emplace(host_.make_seal_context(sgx::KeyPolicy::kMrEnclave));
  }
  auto sealed = host_.seal_with(*seal_ctx_,
                                to_bytes(std::string_view(kStateAad)),
                                state_.serialize());
  if (!sealed.ok()) return sealed.status();
  sealed_state_ = std::move(sealed).value();
  if (invoke_callback && persist_callback_) {
    // OCALL to the untrusted application, which writes the buffer to disk.
    host_.platform().charge(host_.platform().costs().ocall);
    persist_callback_(sealed_state_);
  }
  return Status::kOk;
}

Status MigrationLibrary::commit_state() { return persist(/*invoke_callback=*/true); }

Duration MigrationLibrary::now() const {
  return host_.platform().clock().now();
}

// ----- observability -----

obs::Observability* MigrationLibrary::observability() const {
  return host_.platform().observability();
}

obs::TraceRecorder* MigrationLibrary::recorder() const {
  obs::Observability* obs = host_.platform().observability();
  return obs != nullptr && obs->enabled() ? &obs->trace : nullptr;
}

const std::string& MigrationLibrary::lane() const {
  return host_.platform().address();
}

void MigrationLibrary::trace_attempt_root(uint64_t nonce) {
  obs::TraceRecorder* rec = recorder();
  if (rec == nullptr) return;
  const obs::TraceSpan* root = rec->find_span(root_span_);
  if (root == nullptr || !root->open) {
    root_span_ = rec->begin_span("migration", lane());
    rec->span_arg(root_span_, "enclave", host_.image().name());
  }
  if (nonce != 0) rec->assign_trace(root_span_, nonce);
}

void MigrationLibrary::trace_freeze_begin() {
  obs::TraceRecorder* rec = recorder();
  if (rec == nullptr) return;
  if (freeze_span_ != 0) {
    const obs::TraceSpan* span = rec->find_span(freeze_span_);
    if (span != nullptr && span->open) return;  // retry: freeze still open
  }
  trace_attempt_root(0);  // ensure a root exists to nest under
  freeze_span_ = rec->begin_span("freeze", lane(), 0, root_span_);
  rec->span_arg(freeze_span_, "enclave", host_.image().name());
}

void MigrationLibrary::trace_freeze_end() {
  obs::TraceRecorder* rec = recorder();
  if (rec != nullptr && freeze_span_ != 0) {
    rec->span_arg(freeze_span_, "window_ns",
                  static_cast<uint64_t>(last_freeze_window_.count()));
    rec->end_span(freeze_span_);
  }
  freeze_span_ = 0;
}

void MigrationLibrary::trace_attempt_done(uint64_t nonce,
                                          uint64_t payload_bytes) {
  obs::Observability* obs = observability();
  if (obs == nullptr || !obs->enabled()) {
    root_span_ = 0;
    freeze_span_ = 0;
    enqueue_span_ = 0;
    return;
  }
  obs::TraceRecorder& rec = obs->trace;
  if (enqueue_span_ != 0) {
    rec.end_span(enqueue_span_);
    enqueue_span_ = 0;
  }
  trace_freeze_end();  // normally already closed where the window landed
  if (root_span_ != 0) {
    rec.span_arg(root_span_, "bytes", payload_bytes);
    rec.end_span(root_span_);
    root_span_ = 0;
  }
  if (nonce != 0) rec.end_trace_root(nonce);
  rec.instant("migration.source_done", lane(), nonce,
              {{"enclave", host_.image().name()}});
  obs->metrics.add("migration.accepted");
  obs->metrics.observe("migration.freeze_window_ms",
                       to_seconds(last_freeze_window_) * 1e3);
  obs->metrics.observe("migration.transfer_bytes",
                       static_cast<double>(payload_bytes));
}

Status MigrationLibrary::persist_after_mutation(MutationKind kind) {
  return engine_->on_mutation(*this, kind);
}

Status MigrationLibrary::persist_mutation_durable(MutationKind kind) {
  const Status status = engine_->on_mutation(*this, kind);
  if (status != Status::kOk) return status;
  if (obs::Observability* obs = observability();
      obs != nullptr && obs->enabled()) {
    obs->metrics.add("persist.flush_fences");
  }
  return engine_->flush(*this);
}

Status MigrationLibrary::persist_flush() {
  if (!initialized_) return Status::kNotInitialized;
  return engine_->flush(*this);
}

// ----- initialization (paper Fig. 1 / §VI-B "Persistent data") -----

Status MigrationLibrary::migration_init(ByteView state_buffer,
                                        InitState init_state,
                                        const std::string& me_address) {
  if (initialized_) return Status::kInvalidState;
  me_address_ = me_address;

  switch (init_state) {
    case InitState::kNew: {
      state_ = LibraryState{};
      host_.platform().charge(host_.platform().costs().drbg_fixed);
      host_.rng().generate(state_.msk.data(), state_.msk.size());
      if (live_transfer_capable_) {
        const Status guard = create_epoch_guard();
        if (guard != Status::kOk) return guard;
      }
      // The fresh buffer is sealed and handed back via sealed_state();
      // there is nothing irrecoverable in it yet, so storing it is left
      // to the application (keeps init fast, Fig. 4).
      const Status status = persist(/*invoke_callback=*/false);
      if (status != Status::kOk) return status;
      initialized_ = true;
      return Status::kOk;
    }
    case InitState::kRestore: {
      auto unsealed = host_.unseal(state_buffer);
      if (!unsealed.ok()) return unsealed.status();
      if (to_string(unsealed.value().aad) != kStateAad) {
        return Status::kTampered;
      }
      auto state = LibraryState::deserialize(unsealed.value().plaintext);
      if (!state.ok()) return state.status();
      // Freeze flag check: if this enclave's state was migrated away, the
      // library refuses to operate (prevents the §III-B fork).
      if (state.value().frozen != 0) return Status::kMigrationFrozen;
      state_ = std::move(state).value();
      // Epoch guard check: a buffer sealed under an older epoch is a
      // rollback across a migration (the guard advanced at finalize) —
      // refuse exactly like a frozen buffer.
      const Status epoch = check_epoch_guard();
      if (epoch != Status::kOk) {
        state_ = LibraryState{};
        return epoch;
      }
      const Status status = persist(/*invoke_callback=*/false);
      if (status != Status::kOk) return status;
      initialized_ = true;
      return Status::kOk;
    }
    case InitState::kMigrate: {
      const Status channel_status = ensure_me_channel();
      if (channel_status != Status::kOk) return channel_status;
      LibMsg fetch;
      fetch.type = LibMsgType::kFetchIncoming;
      auto reply = me_exchange(fetch);
      if (!reply.ok()) return reply.status();
      if (reply.value().type != LibMsgType::kIncomingData) {
        return reply.value().status == Status::kOk ? Status::kUnexpected
                                                   : reply.value().status;
      }
      // Payload: the migration data plus the ME's delivery token — proof
      // of being the instance the sealed fetch reply reached, honored by
      // the confirm even if this library must re-attest in between.
      // Newer MEs append the attempt's request nonce so the destination's
      // restore joins the source's trace tree; older payloads simply end
      // after the token.
      BinaryReader fetched(reply.value().payload);
      const Bytes data_bytes = fetched.bytes(1u << 20);
      const uint64_t delivery_token = fetched.u64();
      const uint64_t request_nonce = fetched.done() ? 0 : fetched.u64();
      if (!fetched.done()) return Status::kTampered;
      uint64_t restore_span = 0;
      if (obs::TraceRecorder* rec = recorder()) {
        restore_span = rec->begin_span("restore", lane(), request_nonce);
        rec->span_arg(restore_span, "enclave", host_.image().name());
      }
      const auto end_restore = [&](const char* outcome) {
        obs::TraceRecorder* rec = recorder();
        if (rec == nullptr || restore_span == 0) return;
        rec->span_arg(restore_span, "outcome", outcome);
        rec->end_span(restore_span);
      };
      auto data = MigrationData::deserialize(data_bytes);
      if (!data.ok()) {
        end_restore("deserialize-failed");
        return data.status();
      }
      const Status apply_status = apply_incoming(data.value());
      if (apply_status != Status::kOk) {
        end_restore("apply-failed");
        return apply_status;
      }
      initialized_ = true;
      // Confirm so the source ME can delete its retained copy.  The
      // confirm must tolerate a lost reply: the ME may have processed it
      // (pending erased, DONE queued) while we saw a transport failure —
      // failing here would discard a fully restored instance.  One extra
      // attempt suffices: the retry either heals a dropped request, or
      // desyncs the channel (reply was lost after processing), which
      // me_exchange_reattest turns into a fresh session whose confirm the
      // ME answers idempotently from its confirmed-incoming history.
      LibMsg confirm;
      confirm.type = LibMsgType::kConfirmMigration;
      BinaryWriter confirm_payload;
      confirm_payload.u64(delivery_token);
      confirm.payload = confirm_payload.take();
      auto ack = me_exchange_reattest(confirm);
      if (!ack.ok() || ack.value().type != LibMsgType::kConfirmAck) {
        ack = me_exchange_reattest(confirm);
      }
      if (!ack.ok()) {
        end_restore("confirm-failed");
        return ack.status();
      }
      if (ack.value().type != LibMsgType::kConfirmAck) {
        end_restore("confirm-failed");
        return Status::kUnexpected;
      }
      end_restore("ok");
      if (obs::Observability* obs = observability();
          obs != nullptr && obs->enabled()) {
        obs->trace.instant("migration.done", lane(), request_nonce,
                           {{"enclave", host_.image().name()}});
        if (request_nonce != 0) obs->trace.end_trace_root(request_nonce);
        obs->metrics.add("migration.restored");
      }
      return Status::kOk;
    }
  }
  return Status::kInvalidParameter;
}

Status MigrationLibrary::apply_incoming(const MigrationData& data) {
  state_ = LibraryState{};
  state_.msk = data.msk;
  for (size_t i = 0; i < kMaxCounters; ++i) {
    if (!data.counters_active[i]) continue;
    // Effective value of the source becomes the offset over a fresh
    // hardware counter starting at zero (§VI-B): constant-time per
    // counter, regardless of its value.
    auto created = host_.counter_create();
    if (!created.ok()) return created.status();
    state_.counters_active[i] = true;
    state_.counter_uuids[i] = created.value().uuid;
    state_.counter_offsets[i] = data.counter_values[i];
    cached_hw_values_[i] = created.value().value;
    note_slot_dirty(i);
  }
  if (live_transfer_capable_) {
    const Status guard = create_epoch_guard();
    if (guard != Status::kOk) return guard;
  }
  // UUIDs of the fresh counters are irrecoverable: force durability here
  // regardless of the configured engine.
  return persist_mutation_durable(MutationKind::kRestoreApply);
}

// ----- epoch guard + dirty tracking (live-transfer capability) -----

void MigrationLibrary::note_slot_dirty(size_t slot) {
  chunk_generation_[slot / kPrecopyChunkSlots] = ++mutation_generation_;
}

Status MigrationLibrary::create_epoch_guard() {
  auto created = host_.counter_create();
  if (!created.ok()) return created.status();
  state_.epoch_active = 1;
  state_.epoch_uuid = created.value().uuid;
  state_.epoch_value = created.value().value;
  return Status::kOk;
}

Status MigrationLibrary::check_epoch_guard() const {
  if (state_.epoch_active == 0) return Status::kOk;  // legacy lineage
  auto value = host_.counter_read(state_.epoch_uuid);
  // A destroyed guard means the enclave completed a full-snapshot
  // migration away from this machine: same refusal as a stale epoch.
  if (value.status() == Status::kCounterNotFound) {
    return Status::kMigrationFrozen;
  }
  if (!value.ok()) return value.status();
  if (value.value() != state_.epoch_value) return Status::kMigrationFrozen;
  return Status::kOk;
}

// ----- migratable sealing (§VI-B "Sealing") -----

Result<Bytes> MigrationLibrary::seal_migratable_data(
    ByteView additional_mac_text, ByteView text_to_encrypt) {
  const Status op = check_operational();
  if (op != Status::kOk) return op;
  // No EGETKEY here — the MSK is already in enclave memory, which is why
  // migratable sealing is marginally FASTER than standard sealing (Fig. 4).
  host_.charge_gcm(text_to_encrypt.size() + additional_mac_text.size());
  Bytes iv(crypto::kGcmIvSize);
  host_.rng().generate(iv.data(), iv.size());
  const auto ct = crypto::gcm_encrypt(
      ByteView(state_.msk.data(), state_.msk.size()), iv, additional_mac_text,
      text_to_encrypt);
  BinaryWriter w;
  w.str(kMskBlobMagic);
  w.fixed(ct.iv);
  w.fixed(ct.tag);
  w.bytes(additional_mac_text);
  w.bytes(ct.ciphertext);
  return w.take();
}

Result<sgx::UnsealedData> MigrationLibrary::unseal_migratable_data(
    ByteView sealed_blob) {
  const Status op = check_operational();
  if (op != Status::kOk) return op;
  BinaryReader r(sealed_blob);
  if (r.str(64) != kMskBlobMagic) return Status::kTampered;
  const auto iv = r.fixed<12>();
  const auto tag = r.fixed<16>();
  const Bytes aad = r.bytes();
  const Bytes ciphertext = r.bytes();
  if (!r.done()) return Status::kTampered;
  host_.charge_gcm(ciphertext.size() + aad.size());
  auto plaintext = crypto::gcm_decrypt(
      ByteView(state_.msk.data(), state_.msk.size()),
      ByteView(iv.data(), iv.size()), aad, ciphertext,
      ByteView(tag.data(), tag.size()));
  if (!plaintext.ok()) return plaintext.status();
  sgx::UnsealedData out;
  out.plaintext = std::move(plaintext).value();
  out.aad = aad;
  return out;
}

// ----- migratable counters (§VI-B "Monotonic counters") -----

Result<CreatedMigratableCounter> MigrationLibrary::create_migratable_counter() {
  const Status op = check_operational();
  if (op != Status::kOk) return op;
  const size_t slot = state_.free_slot();
  if (slot == kMaxCounters) return Status::kCounterQuotaExceeded;
  auto created = host_.counter_create();
  if (!created.ok()) return created.status();
  state_.counters_active[slot] = true;
  state_.counter_uuids[slot] = created.value().uuid;
  state_.counter_offsets[slot] = 0;
  cached_hw_values_[slot] = created.value().value;
  note_slot_dirty(slot);
  // Batching engines may defer this commit: a crash in the window leaks
  // the hardware counter (the restored state simply lacks the slot) but
  // never corrupts the UUID table.
  const Status status = persist_after_mutation(MutationKind::kCounterCreate);
  if (status != Status::kOk) return status;
  CreatedMigratableCounter out;
  out.counter_id = static_cast<uint32_t>(slot);
  out.value = created.value().value;  // 0 + offset 0
  return out;
}

Status MigrationLibrary::destroy_migratable_counter(uint32_t counter_id) {
  const Status op = check_operational();
  if (op != Status::kOk) return op;
  if (counter_id >= kMaxCounters || !state_.counters_active[counter_id]) {
    return Status::kCounterNotFound;
  }
  // Fence before the irreversible hardware destroy: any batched mutations
  // must be durable first, or a crash right after the destroy would
  // restore a Table II that references live state through a dead counter.
  const Status fence = engine_->flush(*this);
  if (fence != Status::kOk) return fence;
  const Status status = host_.counter_destroy(state_.counter_uuids[counter_id]);
  // kCounterNotFound: the hardware counter is already gone (crash between
  // a destroy and its persist) — clearing the orphaned slot IS the
  // recovery, so fall through and persist it.
  if (status != Status::kOk && status != Status::kCounterNotFound) {
    return status;
  }
  state_.counters_active[counter_id] = false;
  state_.counter_uuids[counter_id] = {};
  state_.counter_offsets[counter_id] = 0;
  cached_hw_values_[counter_id].reset();
  note_slot_dirty(counter_id);
  // The destroy record must be durable before returning: a lazily
  // batched record would leave the stored Table II referencing the dead
  // counter for an unbounded window, wedging collect_values() on any
  // later migration.
  return persist_mutation_durable(MutationKind::kCounterDestroy);
}

Result<uint32_t> MigrationLibrary::increment_migratable_counter(
    uint32_t counter_id) {
  const Status op = check_operational();
  if (op != Status::kOk) return op;
  if (counter_id >= kMaxCounters || !state_.counters_active[counter_id]) {
    return Status::kCounterNotFound;
  }
  // Overflow check: the offset plus the post-increment hardware value must
  // stay within uint32 (§VI-B).  Uses the cached hardware value when
  // available; after a restore the first increment refreshes the cache
  // with one read.
  if (!cached_hw_values_[counter_id].has_value()) {
    auto current = host_.counter_read(state_.counter_uuids[counter_id]);
    if (!current.ok()) return current.status();
    cached_hw_values_[counter_id] = current.value();
  }
  const uint64_t next_effective =
      static_cast<uint64_t>(state_.counter_offsets[counter_id]) +
      static_cast<uint64_t>(*cached_hw_values_[counter_id]) + 1;
  if (next_effective > std::numeric_limits<uint32_t>::max()) {
    return Status::kCounterOverflow;
  }
  auto incremented = host_.counter_increment(state_.counter_uuids[counter_id]);
  if (!incremented.ok()) return incremented.status();
  cached_hw_values_[counter_id] = incremented.value();
  note_slot_dirty(counter_id);
  const Status status = persist_after_mutation(MutationKind::kCounterIncrement);
  if (status != Status::kOk) return status;
  return state_.counter_offsets[counter_id] + incremented.value();
}

Result<uint32_t> MigrationLibrary::read_migratable_counter(uint32_t counter_id) {
  const Status op = check_operational();
  if (op != Status::kOk) return op;
  if (counter_id >= kMaxCounters || !state_.counters_active[counter_id]) {
    return Status::kCounterNotFound;
  }
  auto value = host_.counter_read(state_.counter_uuids[counter_id]);
  if (!value.ok()) return value.status();
  cached_hw_values_[counter_id] = value.value();
  const uint64_t effective =
      static_cast<uint64_t>(state_.counter_offsets[counter_id]) +
      static_cast<uint64_t>(value.value());
  if (effective > std::numeric_limits<uint32_t>::max()) {
    return Status::kCounterOverflow;
  }
  return static_cast<uint32_t>(effective);
}

// ----- ME communication -----

Status MigrationLibrary::ensure_me_channel() {
  if (me_channel_.has_value()) return Status::kOk;
  auto* net = host_.platform().network();
  if (net == nullptr) return Status::kNetworkUnreachable;
  if (me_address_.empty()) return Status::kInvalidParameter;

  const Bytes id_bytes = host_.rng().bytes(8);
  la_session_id_ = load_be64(id_bytes.data());

  sgx::DhSession session(host_.platform(), host_.identity(),
                         sgx::DhSession::Role::kInitiator);
  // msg1
  MeRequest start;
  start.type = MeMsgType::kLaStart;
  start.id = la_session_id_;
  auto raw1 = net->rpc(me_address_ + "/me", start.serialize());
  if (!raw1.ok()) return raw1.status();
  auto resp1 = MeResponse::deserialize(raw1.value());
  if (!resp1.ok()) return Status::kTampered;
  if (resp1.value().status != Status::kOk) return resp1.value().status;
  auto msg1 = sgx::DhMsg1::deserialize(resp1.value().payload);
  if (!msg1.ok()) return Status::kTampered;
  // msg2
  auto msg2 = session.handle_msg1(msg1.value());
  if (!msg2.ok()) return msg2.status();
  MeRequest m2;
  m2.type = MeMsgType::kLaMsg2;
  m2.id = la_session_id_;
  m2.payload = msg2.value().serialize();
  auto raw3 = net->rpc(me_address_ + "/me", m2.serialize());
  if (!raw3.ok()) return raw3.status();
  auto resp3 = MeResponse::deserialize(raw3.value());
  if (!resp3.ok()) return Status::kTampered;
  if (resp3.value().status != Status::kOk) return resp3.value().status;
  auto msg3 = sgx::DhMsg3::deserialize(resp3.value().payload);
  if (!msg3.ok()) return Status::kTampered;
  const Status status = session.handle_msg3(msg3.value());
  if (status != Status::kOk) return status;

  // Verify we attested the genuine Migration Enclave (paper §V-C: the
  // library "performs local attestation of the Migration Enclave").
  if (!(session.peer_identity().mr_enclave == expected_me_mr_)) {
    return Status::kIdentityMismatch;
  }
  me_channel_.emplace(session.session_key(),
                      net::SecureChannel::Role::kInitiator);
  return Status::kOk;
}

Result<LibMsg> MigrationLibrary::me_exchange(const LibMsg& request) {
  auto* net = host_.platform().network();
  if (net == nullptr || !me_channel_.has_value()) {
    return Status::kInvalidState;
  }
  MeRequest req;
  req.type = MeMsgType::kLaRecord;
  req.id = la_session_id_;
  req.payload = me_channel_->seal_record(request.serialize());
  auto raw = net->rpc(me_address_ + "/me", req.serialize());
  if (!raw.ok()) return raw.status();
  auto resp = MeResponse::deserialize(raw.value());
  if (!resp.ok()) return Status::kTampered;
  if (resp.value().status != Status::kOk) return resp.value().status;
  auto record = me_channel_->open_record(resp.value().payload);
  if (!record.ok()) return record.status();
  auto msg = LibMsg::deserialize(record.value());
  if (!msg.ok()) return Status::kTampered;
  return msg;
}

Result<LibMsg> MigrationLibrary::me_exchange_reattest(const LibMsg& request) {
  auto reply = me_exchange(request);
  const Status status = reply.ok() ? Status::kOk : reply.status();
  if (status == Status::kInvalidState || status == Status::kChannelError ||
      status == Status::kReplayDetected || status == Status::kMacMismatch) {
    // The ME lost our LA session (management VM restart): attest afresh
    // and retry once.
    me_channel_.reset();
    const Status channel_status = ensure_me_channel();
    if (channel_status != Status::kOk) return channel_status;
    return me_exchange(request);
  }
  return reply;
}

// ----- outgoing migration (paper §V-D) -----

Result<MigrationData> MigrationLibrary::collect_values() {
  MigrationData data;
  data.msk = state_.msk;
  for (size_t i = 0; i < kMaxCounters; ++i) {
    if (!state_.counters_active[i]) continue;
    auto value = host_.counter_read(state_.counter_uuids[i]);
    if (!value.ok()) return value.status();
    const uint64_t effective =
        static_cast<uint64_t>(state_.counter_offsets[i]) +
        static_cast<uint64_t>(value.value());
    if (effective > std::numeric_limits<uint32_t>::max()) {
      return Status::kCounterOverflow;
    }
    data.counters_active[i] = true;
    data.counter_values[i] = static_cast<uint32_t>(effective);
  }
  return data;
}

Status MigrationLibrary::destroy_active_counters() {
  for (size_t i = 0; i < kMaxCounters; ++i) {
    if (!state_.counters_active[i]) continue;
    const Status status = host_.counter_destroy(state_.counter_uuids[i]);
    // kCounterNotFound on a retry pass means this one is already gone.
    if (status != Status::kOk && status != Status::kCounterNotFound) {
      return status;
    }
  }
  // The epoch guard goes with them: a rolled-back buffer then fails its
  // epoch read with kCounterNotFound and refuses to operate.
  if (state_.epoch_active != 0) {
    const Status status = host_.counter_destroy(state_.epoch_uuid);
    if (status != Status::kOk && status != Status::kCounterNotFound) {
      return status;
    }
  }
  return Status::kOk;
}

const char* migration_failure_class_name(MigrationFailureClass cls) {
  switch (cls) {
    case MigrationFailureClass::kNone: return "none";
    case MigrationFailureClass::kRetryableNetwork: return "retryable-network";
    case MigrationFailureClass::kRetryableBusy: return "retryable-busy";
    case MigrationFailureClass::kFatalPolicy: return "fatal-policy";
    case MigrationFailureClass::kFatalState: return "fatal-state";
    case MigrationFailureClass::kFatalInternal: return "fatal-internal";
  }
  return "unknown";
}

bool migration_failure_is_retryable(MigrationFailureClass cls) {
  return cls == MigrationFailureClass::kRetryableNetwork ||
         cls == MigrationFailureClass::kRetryableBusy;
}

MigrationFailureClass classify_migration_failure(Status status) {
  switch (status) {
    case Status::kOk:
      return MigrationFailureClass::kNone;
    // Transport loss or in-flight corruption: the paper's threat model
    // concedes availability to a network adversary, so these clear up when
    // the interference stops — retry.
    case Status::kNetworkUnreachable:
    case Status::kChannelError:
    case Status::kReplayDetected:
    case Status::kMacMismatch:
    case Status::kTampered:
      return MigrationFailureClass::kRetryableNetwork;
    // A service (PSE proxy, ME) exists but cannot take the work right now;
    // kAlreadyExists is the destination ME refusing a second concurrent
    // migration for the same MRENCLAVE (§V-D: one pending per identity).
    case Status::kServiceUnavailable:
    case Status::kMigrationInProgress:
    case Status::kAlreadyExists:
      return MigrationFailureClass::kRetryableBusy;
    case Status::kPolicyViolation:
      return MigrationFailureClass::kFatalPolicy;
    case Status::kMigrationFrozen:
    case Status::kNotInitialized:
    case Status::kInvalidState:
    case Status::kInvalidParameter:
      return MigrationFailureClass::kFatalState;
    default:
      return MigrationFailureClass::kFatalInternal;
  }
}

namespace {
MigrationStartResult start_failure(Status status, const char* step) {
  MigrationStartResult result;
  result.status = status;
  result.failure_class = classify_migration_failure(status);
  result.message =
      std::string(step) + ": " + std::string(status_name(status));
  return result;
}
}  // namespace

Status MigrationLibrary::migration_start(
    const std::string& destination_address, MigrationPolicy policy) {
  return migration_start_detailed(destination_address, std::move(policy))
      .status;
}

MigrationStartResult MigrationLibrary::stage_for_migration(
    const std::string& destination_address) {
  if (!initialized_) {
    return start_failure(Status::kNotInitialized, "library init check");
  }
  if (runtime_frozen_ && !staged_outgoing_.has_value()) {
    // Already migrated away.
    return start_failure(Status::kMigrationFrozen, "freeze check");
  }
  const Status channel_status = ensure_me_channel();
  if (channel_status != Status::kOk) {
    return start_failure(channel_status, "local ME attestation");
  }

  if (!staged_outgoing_.has_value()) {
    // Fence any batched mutations before the freeze event: the buffer the
    // application stored must reflect every completed operation before
    // the library stops accepting them (Table II invariant under
    // GroupCommit/WriteBehind engines).
    const Status fence = engine_->flush(*this);
    if (fence != Status::kOk) {
      return start_failure(fence, "pre-freeze persistence fence");
    }
    if (obs::Observability* obs = observability();
        obs != nullptr && obs->enabled()) {
      obs->metrics.add("persist.flush_fences");
    }
    // Freeze first: no further operations may mutate persistent state
    // while (or after) the migration is in flight (§V-A step 2).
    freeze_started_ = now();
    runtime_frozen_ = true;
    trace_freeze_begin();
    // A half-done pre-copy toward any destination is abandoned: the full
    // snapshot staged below supersedes it (the destination's staged
    // chunks are swept when the assembled transfer lands or is confirmed).
    // A pre-copy that was aimed at a DIFFERENT machine than this start
    // leaves orphaned staging there — proactively abort it.
    if (precopy_nonce_ != 0 && precopy_destination_ != destination_address) {
      notify_abort_stale(precopy_nonce_, precopy_destination_);
    }
    precopy_destination_.clear();
    precopy_nonce_ = 0;
    staged_chunks_.clear();
    final_chunks_.clear();
    finalize_staged_ = false;
    auto collected = collect_values();
    if (!collected.ok()) {
      // Nothing destructive happened yet: the enclave may resume normal
      // operation and retry the migration later.
      runtime_frozen_ = false;
      if (obs::TraceRecorder* rec = recorder();
          rec != nullptr && freeze_span_ != 0) {
        rec->span_arg(freeze_span_, "outcome", "collect-failed");
        rec->end_span(freeze_span_);
      }
      freeze_span_ = 0;
      return start_failure(collected.status(), "collecting counter values");
    }
    staged_outgoing_ = std::move(collected).value();
    staged_destination_.clear();
  }
  if (staged_nonce_ == 0 || staged_destination_ != destination_address) {
    // One nonce per (attempt, destination), reused verbatim across
    // retries toward the same destination so the ME can deduplicate
    // re-sends and answer "did my request land?".  A re-route to a
    // different destination gets a fresh nonce — the fate of the old
    // destination's transfer must not be confused with the new one's —
    // and the old destination's now-orphaned entry a proactive abort.
    if (staged_nonce_ != 0 && !staged_destination_.empty()) {
      notify_abort_stale(staged_nonce_, staged_destination_);
    }
    const Bytes nonce_bytes = host_.rng().bytes(8);
    staged_nonce_ = load_be64(nonce_bytes.data());
    if (staged_nonce_ == 0) staged_nonce_ = 1;
    staged_destination_ = destination_address;
    enqueue_pending_ = false;  // an old queued attempt is superseded
  }
  trace_attempt_root(staged_nonce_);
  if (obs::TraceRecorder* rec = recorder();
      rec != nullptr && freeze_span_ != 0) {
    rec->assign_trace(freeze_span_, staged_nonce_);
  }
  if (!counters_destroyed_) {
    // Destroy the hardware counters BEFORE any data leaves the machine
    // (§VI-B): whatever happens later, the source's counters are gone, so
    // stale persistent state cannot be replayed into a working fork.  If
    // this pass fails half-way the library stays frozen and a retry
    // resumes it (already-destroyed counters report kCounterNotFound).
    // Once this guard flips, no retry path may reach counter_destroy
    // again: the service recycles nothing today, but a double destroy
    // against a recycled id would hit someone else's counter.
    const Status destroyed = destroy_active_counters();
    if (destroyed != Status::kOk) {
      return start_failure(destroyed, "destroying source counters");
    }
    counters_destroyed_ = true;
  }
  if (!freeze_persisted_) {
    // Persist the freeze flag so a restarted instance refuses to operate
    // (§VI-B, Table II).  Durable regardless of engine, and guarded
    // separately from counters_destroyed_: if this persist fails, a retry
    // must redo it without re-destroying counters.
    state_.frozen = 1;
    const Status persist_status =
        persist_mutation_durable(MutationKind::kFreeze);
    if (persist_status != Status::kOk) {
      return start_failure(persist_status, "persisting freeze flag");
    }
    freeze_persisted_ = true;
  }
  return MigrationStartResult{};
}

void MigrationLibrary::finish_outgoing(uint64_t payload_bytes) {
  const uint64_t nonce = staged_nonce_;
  last_freeze_window_ = now() - freeze_started_;
  trace_freeze_end();
  last_transfer_bytes_ = payload_bytes;
  last_precopy_rounds_ = async_finalize_pending_ ? precopy_rounds_ : 0;
  if (async_finalize_pending_) {
    // A queued pre-copy finalize just completed: run the deferred
    // teardown the synchronous finalize epilogue would have run, OUTSIDE
    // the freeze window.  The epoch increment already made every sealed
    // buffer unusable, so one logical retire is enough — the flash slots
    // are swept by platform firmware later, off this drain's clock.
    if (!counters_destroyed_) {
      (void)host_.counter_retire_all();
      counters_destroyed_ = true;
    }
    precopy_destination_.clear();
    precopy_nonce_ = 0;
    staged_chunks_.clear();
    final_chunks_.clear();
    finalize_staged_ = false;
    async_finalize_pending_ = false;
  }
  staged_outgoing_.reset();
  staged_nonce_ = 0;
  staged_destination_.clear();
  enqueue_pending_ = false;
  enqueued_bytes_ = 0;
  trace_attempt_done(nonce, payload_bytes);
}

void MigrationLibrary::notify_abort_stale(uint64_t nonce,
                                          const std::string& old_destination) {
  if (nonce == 0 || old_destination.empty()) return;
  if (ensure_me_channel() != Status::kOk) return;
  AbortStalePayload payload;
  payload.request_nonce = nonce;
  payload.destination_address = old_destination;
  LibMsg request;
  request.type = LibMsgType::kAbortStale;
  request.payload = payload.serialize();
  // Best-effort: a failed abort merely leaves the orphan for the
  // pull-based reconcile sweep, the pre-abort status quo.
  (void)me_exchange_reattest(request);
}

MigrationStartResult MigrationLibrary::migration_start_detailed(
    const std::string& destination_address, MigrationPolicy policy) {
  const MigrationStartResult staged = stage_for_migration(destination_address);
  if (!staged.ok()) return staged;

  MigrateRequestPayload payload;
  payload.destination_address = destination_address;
  payload.request_nonce = staged_nonce_;
  payload.policy = std::move(policy);
  payload.data = *staged_outgoing_;
  LibMsg request;
  request.type = LibMsgType::kMigrateRequest;
  request.payload = payload.serialize();
  const uint64_t payload_bytes = request.payload.size();
  auto reply = me_exchange_reattest(request);

  // Resume check (§V-D hardening): an exchange that died mid-flight — the
  // reply dropped by the network, or the ME restarting between accepting
  // the request and answering — looks like a failure here even though the
  // transfer may already sit, durably retained, in the ME's queue.  Before
  // reporting failure, ask the ME (re-attesting if needed) for the fate of
  // exactly THIS attempt; kPending/kCompleted means the source side is
  // done and the migration proceeds at the destination.  A well-formed
  // kError reply is a DEFINITIVE rejection (the retained path replies
  // kMigrateAccepted, dedup'd re-sends included), so only transport-level
  // failures are ambiguous enough to be worth the extra round trip.
  if (!reply.ok()) {
    auto attempt = query_status_internal(staged_nonce_);
    if (attempt.ok() && (attempt.value() == OutgoingState::kPending ||
                         attempt.value() == OutgoingState::kCompleted)) {
      finish_outgoing(payload_bytes);
      return MigrationStartResult{};
    }
    return start_failure(reply.status(), "ME exchange");
  }
  if (reply.value().type != LibMsgType::kMigrateAccepted) {
    // Keep the staged data: the application may retry, possibly with a
    // different destination (§V-D error handling).
    const Status rejected = reply.value().status != Status::kOk
                                ? reply.value().status
                                : Status::kMigrationAborted;
    return start_failure(rejected,
                         "destination rejected by source ME protocol");
  }
  finish_outgoing(payload_bytes);
  return MigrationStartResult{};
}

// ----- pipelined (non-blocking) migration start -----

MigrationStartResult MigrationLibrary::migration_enqueue_detailed(
    const std::string& destination_address, MigrationPolicy policy) {
  const MigrationStartResult staged = stage_for_migration(destination_address);
  if (!staged.ok()) return staged;

  staged_policy_ = policy;
  MigrateRequestPayload payload;
  payload.destination_address = destination_address;
  payload.request_nonce = staged_nonce_;
  payload.policy = std::move(policy);
  payload.data = *staged_outgoing_;
  LibMsg request;
  request.type = LibMsgType::kMigrateEnqueue;
  request.payload = payload.serialize();
  const uint64_t payload_bytes = request.payload.size();
  auto reply = me_exchange_reattest(request);
  if (!reply.ok()) {
    // The enqueue reply was lost: the task may or may not be queued.
    // The poll disambiguates (kNone re-enqueues), so report in-flight
    // only if we can SEE the task or its result; otherwise a classified
    // transport failure lets the caller's retry machinery re-drive us.
    return start_failure(reply.status(), "ME enqueue exchange");
  }
  if (reply.value().type != LibMsgType::kMigrateQueued) {
    const Status rejected = reply.value().status != Status::kOk
                                ? reply.value().status
                                : Status::kMigrationAborted;
    return start_failure(rejected, "ME refused to queue the transfer");
  }
  enqueue_pending_ = true;
  enqueued_bytes_ = payload_bytes;
  if (obs::TraceRecorder* rec = recorder()) {
    rec->instant("migration.queued", lane(), staged_nonce_,
                 {{"destination", destination_address}});
  }
  return MigrationStartResult{};
}

MigrationStartResult MigrationLibrary::migration_reserve_detailed(
    const std::string& destination_address, MigrationPolicy policy) {
  if (!initialized_) {
    return start_failure(Status::kNotInitialized, "library init check");
  }
  if (staged_outgoing_.has_value()) {
    // A previous attempt already froze and collected: nothing left to
    // defer, so queue the armed snapshot directly (retries and re-routes
    // after a post-freeze failure land here).
    return migration_enqueue_detailed(destination_address, std::move(policy));
  }
  if (runtime_frozen_) {
    return start_failure(Status::kMigrationFrozen, "freeze check");
  }
  const Status channel_status = ensure_me_channel();
  if (channel_status != Status::kOk) {
    return start_failure(channel_status, "local ME attestation");
  }
  // One nonce per (attempt, destination), exactly as stage_for_migration
  // draws it — but WITHOUT freezing.  The later freeze+arm reuses it.
  if (staged_nonce_ == 0 || staged_destination_ != destination_address) {
    if (staged_nonce_ != 0 && !staged_destination_.empty()) {
      notify_abort_stale(staged_nonce_, staged_destination_);
    }
    const Bytes nonce_bytes = host_.rng().bytes(8);
    staged_nonce_ = load_be64(nonce_bytes.data());
    if (staged_nonce_ == 0) staged_nonce_ = 1;
    staged_destination_ = destination_address;
  }
  staged_policy_ = policy;
  MigrateReservePayload payload;
  payload.destination_address = destination_address;
  payload.request_nonce = staged_nonce_;
  payload.policy = std::move(policy);
  LibMsg request;
  request.type = LibMsgType::kMigrateReserve;
  request.payload = payload.serialize();
  auto reply = me_exchange_reattest(request);
  if (!reply.ok()) {
    // Nothing destructive happened (no freeze, no destroys): a classified
    // transport failure lets the caller's retry machinery re-drive us.
    return start_failure(reply.status(), "ME reserve exchange");
  }
  if (reply.value().type != LibMsgType::kMigrateQueued) {
    const Status rejected = reply.value().status != Status::kOk
                                ? reply.value().status
                                : Status::kMigrationAborted;
    return start_failure(rejected, "ME refused to reserve the transfer");
  }
  enqueue_pending_ = true;
  enqueued_bytes_ = 0;
  enqueue_started_ = now();
  last_enqueue_wait_ = Duration{};
  trace_attempt_root(staged_nonce_);
  if (obs::TraceRecorder* rec = recorder()) {
    if (enqueue_span_ != 0) rec->end_span(enqueue_span_);
    enqueue_span_ =
        rec->begin_span("enqueue_wait", lane(), staged_nonce_, root_span_);
    rec->span_arg(enqueue_span_, "destination", destination_address);
  }
  return MigrationStartResult{};
}

MigrationStartResult MigrationLibrary::arm_reserved_slot() {
  if (!staged_outgoing_.has_value()) {
    // First arm of this attempt: the live queue wait ends here — the
    // freeze clock starts inside stage_for_migration.
    last_enqueue_wait_ = now() - enqueue_started_;
    if (obs::TraceRecorder* rec = recorder();
        rec != nullptr && enqueue_span_ != 0) {
      rec->span_arg(enqueue_span_, "wait_ns",
                    static_cast<uint64_t>(last_enqueue_wait_.count()));
      rec->end_span(enqueue_span_);
      enqueue_span_ = 0;
    }
  }
  // stage_for_migration treats every fresh freeze as a fresh attempt
  // (clears the staged destination, draws a new nonce) — but the reserve
  // already drew this attempt's nonce and queued it at the ME, so the
  // pair must survive the staging.  Locals also dodge aliasing: passing
  // the member itself would hand stage_for_migration a reference it
  // clears mid-flight.
  const std::string destination = staged_destination_;
  const uint64_t reserved_nonce = staged_nonce_;
  const MigrationStartResult staged = stage_for_migration(destination);
  if (!staged.ok()) return staged;
  staged_nonce_ = reserved_nonce;
  staged_destination_ = destination;
  // stage_for_migration re-keyed the trace onto its throwaway nonce;
  // point the root and the freeze span back at the reserved one every
  // downstream span (the enqueue wait above, the ME transfer, the
  // destination's restore) is keyed by, or the tree splits at the root.
  trace_attempt_root(staged_nonce_);
  if (obs::TraceRecorder* rec = recorder();
      rec != nullptr && freeze_span_ != 0) {
    rec->assign_trace(freeze_span_, staged_nonce_);
  }
  enqueue_pending_ = true;  // the ME still tracks the reserved task
  MigrateRequestPayload payload;
  payload.destination_address = destination;
  payload.request_nonce = staged_nonce_;
  payload.policy = staged_policy_;
  payload.data = *staged_outgoing_;
  LibMsg request;
  request.type = LibMsgType::kMigrateArm;
  request.payload = payload.serialize();
  enqueued_bytes_ = request.payload.size();
  auto reply = me_exchange_reattest(request);
  if (!reply.ok()) {
    // The arm reply was lost: the parked task may or may not hold the
    // payload.  The next poll disambiguates — a re-observed kSlotLive
    // re-arms idempotently, kInFlight/kAccepted proceed normally.
    return start_failure(reply.status(), "ME arm exchange");
  }
  if (reply.value().type != LibMsgType::kArmAck) {
    const Status rejected = reply.value().status != Status::kOk
                                ? reply.value().status
                                : Status::kMigrationAborted;
    return start_failure(rejected, "ME refused the armed payload");
  }
  MigrationStartResult in_flight;
  in_flight.status = Status::kMigrationInProgress;
  in_flight.failure_class = MigrationFailureClass::kNone;
  in_flight.message = "armed; transfer in flight";
  return in_flight;
}

MigrationStartResult MigrationLibrary::migration_poll_transfer() {
  if (!initialized_) {
    return start_failure(Status::kNotInitialized, "library init check");
  }
  if (!enqueue_pending_ || staged_nonce_ == 0) {
    return start_failure(Status::kNoPendingMigration,
                         "no queued transfer to poll");
  }
  const Status channel_status = ensure_me_channel();
  if (channel_status != Status::kOk) {
    return start_failure(channel_status, "local ME attestation");
  }
  PollTransferPayload query;
  query.request_nonce = staged_nonce_;
  LibMsg request;
  request.type = LibMsgType::kPollTransfer;
  request.payload = query.serialize();
  auto reply = me_exchange_reattest(request);
  if (!reply.ok()) {
    // Same resume check as the blocking path: a lost poll reply must not
    // be mistaken for a lost transfer — if the attempt is retained or
    // completed in the ME's durable queue, the source side is done.
    auto attempt = query_status_internal(staged_nonce_);
    if (attempt.ok() && (attempt.value() == OutgoingState::kPending ||
                         attempt.value() == OutgoingState::kCompleted)) {
      finish_outgoing(enqueued_bytes_);
      return MigrationStartResult{};
    }
    return start_failure(reply.status(), "ME poll exchange");
  }
  if (reply.value().type != LibMsgType::kTransferProgress) {
    return start_failure(reply.value().status != Status::kOk
                             ? reply.value().status
                             : Status::kUnexpected,
                         "ME poll reply");
  }
  auto progress = TransferProgressPayload::deserialize(reply.value().payload);
  if (!progress.ok()) {
    return start_failure(progress.status(), "ME poll reply");
  }
  switch (progress.value().progress) {
    case TransferProgress::kAccepted:
      finish_outgoing(enqueued_bytes_);
      return MigrationStartResult{};
    case TransferProgress::kSlotLive:
      // The ME attested the destination and parked the slot: NOW run the
      // destructive freeze+collect and arm the payload.
      return arm_reserved_slot();
    case TransferProgress::kInFlight: {
      MigrationStartResult in_flight;
      in_flight.status = Status::kMigrationInProgress;
      in_flight.failure_class = MigrationFailureClass::kNone;
      in_flight.message = "transfer in flight";
      return in_flight;
    }
    case TransferProgress::kFailed:
      // Terminal for THIS attempt; the staged data stays for a retry or
      // re-route, exactly like a blocking-start failure.
      return start_failure(progress.value().failure, "pipelined ME transfer");
    case TransferProgress::kNone:
      break;
  }
  // The ME does not know the nonce (it restarted before the task was
  // queued, or lost its storage): re-enqueue from the staged data — or
  // re-reserve if this freeze-aware attempt never froze.
  enqueue_pending_ = false;
  if (async_finalize_pending_) {
    // The ME lost the queued finalize (restart drops the memory-only
    // staged record, or the ship budget ran out): surface a retryable
    // failure — the caller re-drives migration_finalize_detailed, which
    // the ME dedups by nonce if the record actually landed.
    async_finalize_pending_ = false;
    return start_failure(Status::kServiceUnavailable,
                         "ME lost the queued finalize");
  }
  const MigrationStartResult requeued =
      staged_outgoing_.has_value()
          ? migration_enqueue_detailed(staged_destination_, staged_policy_)
          : migration_reserve_detailed(staged_destination_, staged_policy_);
  if (!requeued.ok()) return requeued;
  MigrationStartResult in_flight;
  in_flight.status = Status::kMigrationInProgress;
  in_flight.failure_class = MigrationFailureClass::kNone;
  in_flight.message = "transfer re-queued";
  return in_flight;
}

// ----- live pre-copy migration (iterative rounds + finalize) -----

void MigrationLibrary::reset_precopy(const std::string& destination_address) {
  // Re-routing abandons the previous attempt: its staged rounds at the
  // old destination (and the source ME's merged set) are orphans —
  // expire them proactively instead of waiting for the age sweep.
  if (precopy_nonce_ != 0 && !precopy_destination_.empty() &&
      precopy_destination_ != destination_address) {
    notify_abort_stale(precopy_nonce_, precopy_destination_);
  }
  const Bytes nonce_bytes = host_.rng().bytes(8);
  precopy_nonce_ = load_be64(nonce_bytes.data());
  if (precopy_nonce_ == 0) precopy_nonce_ = 1;
  precopy_destination_ = destination_address;
  shipped_generation_ = {};
  staged_chunks_.clear();
  final_chunks_.clear();
  precopy_rounds_ = 0;
  precopy_bytes_ = 0;
}

Result<std::vector<CounterChunk>> MigrationLibrary::collect_dirty_chunks(
    bool include_all_populated) {
  std::vector<CounterChunk> out;
  for (size_t c = 0; c < kPrecopyChunkCount; ++c) {
    bool collect = chunk_generation_[c] > shipped_generation_[c];
    if (!collect && include_all_populated) {
      for (size_t s = 0; s < kPrecopyChunkSlots && !collect; ++s) {
        collect = state_.counters_active[c * kPrecopyChunkSlots + s];
      }
    }
    if (!collect) continue;
    CounterChunk chunk;
    chunk.index = static_cast<uint32_t>(c);
    chunk.generation = chunk_generation_[c];
    for (size_t s = 0; s < kPrecopyChunkSlots; ++s) {
      const size_t slot = c * kPrecopyChunkSlots + s;
      if (!state_.counters_active[slot]) continue;
      chunk.active[s] = true;
      // Effective value from the hardware-value cache when warm (this
      // library is the counter's only user, so the cache is exact);
      // otherwise one read refills it.  This is why pre-copy rounds do
      // not pay one Platform Services round trip per live counter the
      // way the full-snapshot collect does.
      if (!cached_hw_values_[slot].has_value()) {
        auto value = host_.counter_read(state_.counter_uuids[slot]);
        if (!value.ok()) return value.status();
        cached_hw_values_[slot] = value.value();
      }
      const uint64_t effective =
          static_cast<uint64_t>(state_.counter_offsets[slot]) +
          static_cast<uint64_t>(*cached_hw_values_[slot]);
      if (effective > std::numeric_limits<uint32_t>::max()) {
        return Status::kCounterOverflow;
      }
      chunk.values[s] = static_cast<uint32_t>(effective);
    }
    out.push_back(std::move(chunk));
  }
  return out;
}

std::vector<ChunkManifestEntry> MigrationLibrary::staged_manifest() const {
  std::vector<ChunkManifestEntry> manifest;
  manifest.reserve(staged_chunks_.size());
  for (const auto& [index, chunk] : staged_chunks_) {
    manifest.push_back({index, chunk.generation});
  }
  return manifest;
}

Result<PrecopyRoundReport> MigrationLibrary::migration_precopy_round(
    const std::string& destination_address, MigrationPolicy policy) {
  if (!initialized_) return Status::kNotInitialized;
  if (runtime_frozen_) return Status::kMigrationFrozen;
  if (state_.epoch_active == 0) return Status::kInvalidState;
  if (destination_address.empty()) return Status::kInvalidParameter;
  const Status channel_status = ensure_me_channel();
  if (channel_status != Status::kOk) return channel_status;
  if (precopy_destination_ != destination_address) {
    reset_precopy(destination_address);
  }

  trace_attempt_root(precopy_nonce_);
  uint64_t round_span = 0;
  if (obs::TraceRecorder* rec = recorder()) {
    round_span =
        rec->begin_span("precopy_round", lane(), precopy_nonce_, root_span_);
    rec->span_arg(round_span, "round", static_cast<uint64_t>(precopy_rounds_));
  }
  const auto end_round = [&](const char* outcome) {
    obs::TraceRecorder* rec = recorder();
    if (rec == nullptr || round_span == 0) return;
    rec->span_arg(round_span, "outcome", outcome);
    rec->end_span(round_span);
  };

  auto chunks = collect_dirty_chunks(/*include_all_populated=*/
                                     precopy_rounds_ == 0);
  if (!chunks.ok()) {
    end_round("collect-failed");
    return chunks.status();
  }

  PrecopyRoundPayload payload;
  payload.destination_address = destination_address;
  payload.request_nonce = precopy_nonce_;
  payload.round = precopy_rounds_;
  payload.policy = std::move(policy);
  payload.chunks = chunks.value();
  LibMsg request;
  request.type = LibMsgType::kPrecopyRound;
  request.payload = payload.serialize();
  auto reply = me_exchange_reattest(request);
  if (!reply.ok()) {
    end_round("exchange-failed");
    return reply.status();
  }
  if (reply.value().type != LibMsgType::kPrecopyAck) {
    end_round("rejected");
    return reply.value().status != Status::kOk ? reply.value().status
                                               : Status::kUnexpected;
  }
  // Commit only after the ME acknowledged: a failed round re-collects and
  // re-ships the same chunks (the destination merges idempotently by
  // generation).
  for (CounterChunk& chunk : chunks.value()) {
    shipped_generation_[chunk.index] = chunk.generation;
    staged_chunks_[chunk.index] = chunk;
  }
  PrecopyRoundReport report;
  report.round = precopy_rounds_;
  report.chunks_shipped = static_cast<uint32_t>(chunks.value().size());
  report.bytes_shipped = request.payload.size();
  precopy_bytes_ += request.payload.size();
  ++precopy_rounds_;
  if (obs::Observability* obs = observability();
      obs != nullptr && obs->enabled()) {
    if (round_span != 0) {
      obs->trace.span_arg(round_span, "chunks",
                          static_cast<uint64_t>(report.chunks_shipped));
      obs->trace.span_arg(round_span, "bytes", report.bytes_shipped);
    }
    obs->metrics.add("migration.precopy_rounds");
    obs->metrics.observe("migration.precopy_round_bytes",
                         static_cast<double>(report.bytes_shipped));
  }
  end_round("ok");
  return report;
}

Status MigrationLibrary::migration_finalize(
    const std::string& destination_address, MigrationPolicy policy) {
  return migration_finalize_detailed(destination_address, std::move(policy))
      .status;
}

MigrationStartResult MigrationLibrary::migration_finalize_detailed(
    const std::string& destination_address, MigrationPolicy policy) {
  if (!initialized_) {
    return start_failure(Status::kNotInitialized, "library init check");
  }
  if (state_.epoch_active == 0) {
    return start_failure(Status::kInvalidState,
                         "live-transfer capability check");
  }
  if (runtime_frozen_ && !finalize_staged_) {
    // Frozen by a completed migration (or a staged full-snapshot start):
    // there is nothing for THIS protocol to finalize.
    return start_failure(Status::kMigrationFrozen, "freeze check");
  }
  const Status channel_status = ensure_me_channel();
  if (channel_status != Status::kOk) {
    return start_failure(channel_status, "local ME attestation");
  }

  if (!finalize_staged_) {
    if (precopy_destination_ != destination_address) {
      // Pure stop-and-copy (no prior rounds) or a pre-freeze re-route:
      // everything ships inside the finalize.
      reset_precopy(destination_address);
    }
    // Fence batched mutations, then freeze: the stored buffer must
    // reflect every completed operation before operations stop.
    const Status fence = engine_->flush(*this);
    if (fence != Status::kOk) {
      return start_failure(fence, "pre-freeze persistence fence");
    }
    if (obs::Observability* obs = observability();
        obs != nullptr && obs->enabled()) {
      obs->metrics.add("persist.flush_fences");
    }
    freeze_started_ = now();
    runtime_frozen_ = true;
    trace_freeze_begin();
    auto delta = collect_dirty_chunks(/*include_all_populated=*/
                                      precopy_rounds_ == 0);
    if (!delta.ok()) {
      // Nothing destructive yet: unfreeze and let the caller retry.
      runtime_frozen_ = false;
      if (obs::TraceRecorder* rec = recorder();
          rec != nullptr && freeze_span_ != 0) {
        rec->span_arg(freeze_span_, "outcome", "collect-failed");
        rec->end_span(freeze_span_);
      }
      freeze_span_ = 0;
      return start_failure(delta.status(), "collecting final delta");
    }
    final_chunks_ = std::move(delta).value();
    for (const CounterChunk& chunk : final_chunks_) {
      shipped_generation_[chunk.index] = chunk.generation;
      staged_chunks_[chunk.index] = chunk;
    }
    finalize_staged_ = true;
  } else if (precopy_destination_ != destination_address) {
    // Re-route after the freeze: the new destination has no staged
    // rounds, so the finalize carries the full staged set under a fresh
    // nonce (a transfer that landed at the old destination must never be
    // mistaken for success toward the new one).  The old destination's
    // staging/pending entry is an orphan — abort it proactively.
    notify_abort_stale(precopy_nonce_, precopy_destination_);
    const Bytes nonce_bytes = host_.rng().bytes(8);
    precopy_nonce_ = load_be64(nonce_bytes.data());
    if (precopy_nonce_ == 0) precopy_nonce_ = 1;
    precopy_destination_ = destination_address;
    final_chunks_.clear();
    for (const auto& [index, chunk] : staged_chunks_) {
      final_chunks_.push_back(chunk);
    }
  }

  trace_attempt_root(precopy_nonce_);
  if (obs::TraceRecorder* rec = recorder();
      rec != nullptr && freeze_span_ != 0) {
    rec->assign_trace(freeze_span_, precopy_nonce_);
  }

  if (!epoch_invalidated_ && !chaos_epoch_guard_disabled_) {
    // Constant-time invalidation of the sealed-buffer lineage: ONE epoch
    // increment plays the role the per-counter destroys play in the
    // full-snapshot path (§VI-B), so the actual destroys can wait until
    // after the destination is released.  Once this guard flips, no retry
    // may increment again (the value recorded below must stay exact).
    auto bumped = host_.counter_increment(state_.epoch_uuid);
    if (!bumped.ok()) {
      return start_failure(bumped.status(), "epoch invalidation");
    }
    state_.epoch_value = bumped.value();
    epoch_invalidated_ = true;
  }
  if (!freeze_persisted_) {
    // Persist the freeze flag (with the advanced epoch) so a restarted
    // instance refuses to operate; durable regardless of engine.
    state_.frozen = 1;
    const Status persist_status =
        persist_mutation_durable(MutationKind::kFreeze);
    if (persist_status != Status::kOk) {
      return start_failure(persist_status, "persisting freeze flag");
    }
    freeze_persisted_ = true;
  }

  uint64_t finalize_span = 0;
  if (obs::TraceRecorder* rec = recorder()) {
    finalize_span =
        rec->begin_span("finalize", lane(), precopy_nonce_, root_span_);
    rec->span_arg(finalize_span, "rounds",
                  static_cast<uint64_t>(precopy_rounds_));
  }
  const auto end_finalize = [&](const char* outcome) {
    obs::TraceRecorder* rec = recorder();
    if (rec == nullptr || finalize_span == 0) return;
    rec->span_arg(finalize_span, "outcome", outcome);
    rec->end_span(finalize_span);
  };

  PrecopyFinalizePayload payload;
  payload.destination_address = destination_address;
  payload.request_nonce = precopy_nonce_;
  payload.round = precopy_rounds_;
  payload.policy = policy;
  payload.chunks = final_chunks_;
  payload.manifest = staged_manifest();
  payload.msk = state_.msk;
  LibMsg request;
  request.type = LibMsgType::kPrecopyFinalizeReq;
  request.payload = payload.serialize();
  auto reply = me_exchange_reattest(request);

  if (reply.ok() && reply.value().type == LibMsgType::kError &&
      reply.value().status == Status::kPrecopyIncomplete) {
    // The destination's staged rounds do not cover the manifest (it lost
    // its queue, or a superseded attempt left partial staging): re-ship
    // the complete staged set once.
    payload.chunks.clear();
    for (const auto& [index, chunk] : staged_chunks_) {
      payload.chunks.push_back(chunk);
    }
    request.payload = payload.serialize();
    reply = me_exchange_reattest(request);
  }

  if (!reply.ok()) {
    // Ambiguous transport failure: the ME (or its reply path) died
    // mid-exchange.  Ask for the fate of exactly this attempt — a
    // retained or completed transfer means the source side is done.
    auto attempt = query_status_internal(precopy_nonce_);
    if (!attempt.ok() || (attempt.value() != OutgoingState::kPending &&
                          attempt.value() != OutgoingState::kCompleted)) {
      end_finalize("exchange-failed");
      return start_failure(reply.status(), "ME finalize exchange");
    }
    end_finalize("resumed");
  } else if (reply.value().type == LibMsgType::kMigrateQueued) {
    // Async source ME: the sealed finalize record ships through the
    // deferred pump — the enqueue-then-poll contract of the pipelined
    // full-snapshot path.  The enclave stays frozen; the freeze ends only
    // when the poll observes the destination's accept (finish_outgoing
    // then also runs the pre-copy teardown).
    staged_nonce_ = precopy_nonce_;
    staged_destination_ = destination_address;
    staged_policy_ = policy;
    enqueue_pending_ = true;
    async_finalize_pending_ = true;
    enqueued_bytes_ = precopy_bytes_ + request.payload.size();
    end_finalize("queued");
    MigrationStartResult in_flight;
    in_flight.status = Status::kMigrationInProgress;
    in_flight.failure_class = MigrationFailureClass::kNone;
    in_flight.message = "finalize queued at source ME";
    return in_flight;
  } else if (reply.value().type != LibMsgType::kFinalizeAccepted) {
    const Status rejected = reply.value().status != Status::kOk
                                ? reply.value().status
                                : Status::kMigrationAborted;
    end_finalize("rejected");
    return start_failure(rejected,
                         "destination rejected by source ME protocol");
  } else {
    end_finalize("ok");
  }

  // The destination ME holds the authoritative snapshot: the freeze
  // window ends here.
  const uint64_t accepted_nonce = precopy_nonce_;
  last_freeze_window_ = now() - freeze_started_;
  trace_freeze_end();
  last_transfer_bytes_ = precopy_bytes_ + request.payload.size();
  last_precopy_rounds_ = precopy_rounds_;

  // Deferred teardown, OUTSIDE the freeze window: the epoch increment
  // already made every sealed buffer unusable, so these hardware counters
  // are unreachable garbage — retire them all in one logical op (a
  // failure leaks quota on a machine this enclave just left, never
  // state).  Physical slot reclaim is the platform's background sweep.
  if (!counters_destroyed_ && !chaos_epoch_guard_disabled_) {
    (void)host_.counter_retire_all();
    counters_destroyed_ = true;
  }
  precopy_destination_.clear();
  precopy_nonce_ = 0;
  staged_chunks_.clear();
  final_chunks_.clear();
  finalize_staged_ = false;
  trace_attempt_done(accepted_nonce, last_transfer_bytes_);
  return MigrationStartResult{};
}

Result<OutgoingState> MigrationLibrary::query_status_internal(uint64_t nonce) {
  if (!initialized_) return Status::kNotInitialized;
  const Status channel_status = ensure_me_channel();
  if (channel_status != Status::kOk) return channel_status;
  LibMsg request;
  request.type = LibMsgType::kQueryStatus;
  QueryStatusPayload query;
  query.request_nonce = nonce;
  request.payload = query.serialize();
  auto reply = me_exchange_reattest(request);
  if (!reply.ok()) return reply.status();
  if (reply.value().type != LibMsgType::kStatusReport) {
    return Status::kUnexpected;
  }
  BinaryReader r(reply.value().payload);
  const uint8_t state = r.u8();
  if (!r.done() || state > 2) return Status::kTampered;
  return static_cast<OutgoingState>(state);
}

Result<OutgoingState> MigrationLibrary::query_migration_status() {
  return query_status_internal(/*nonce=*/0);
}

Result<OutgoingState> MigrationLibrary::query_staged_attempt_status() {
  if (staged_nonce_ == 0) return OutgoingState::kNone;
  return query_status_internal(staged_nonce_);
}

}  // namespace sgxmig::migration

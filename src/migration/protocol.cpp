#include "migration/protocol.h"

namespace sgxmig::migration {

const char* me_msg_type_name(MeMsgType type) {
  switch (type) {
    case MeMsgType::kLaStart:
      return "la-start";
    case MeMsgType::kLaMsg2:
      return "la-msg2";
    case MeMsgType::kLaRecord:
      return "la-record";
    case MeMsgType::kRaMsg1:
      return "ra-msg1";
    case MeMsgType::kRaMsg3:
      return "ra-msg3";
    case MeMsgType::kTransfer:
      return "transfer";
    case MeMsgType::kDone:
      return "done";
    case MeMsgType::kPrecopyChunk:
      return "precopy-chunk";
    case MeMsgType::kPrecopyFinalize:
      return "precopy-finalize";
    case MeMsgType::kReconcile:
      return "reconcile";
    case MeMsgType::kAbort:
      return "abort";
    case MeMsgType::kSessionResume:
      return "session-resume";
  }
  return "unknown";
}

Bytes MeRequest::serialize() const {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(type));
  w.u64(id);
  w.bytes(payload);
  return w.take();
}

Result<MeRequest> MeRequest::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  MeRequest req;
  const uint8_t type = r.u8();
  if (type < 1 || type > 12) return Status::kTampered;
  req.type = static_cast<MeMsgType>(type);
  req.id = r.u64();
  req.payload = r.bytes(1u << 22);
  if (!r.done()) return Status::kTampered;
  return req;
}

Bytes MeResponse::serialize() const {
  BinaryWriter w;
  w.u32(static_cast<uint32_t>(status));
  w.bytes(payload);
  return w.take();
}

Result<MeResponse> MeResponse::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  MeResponse resp;
  resp.status = static_cast<Status>(r.u32());
  resp.payload = r.bytes(1u << 22);
  if (!r.done()) return Status::kTampered;
  return resp;
}

Bytes LibMsg::serialize() const {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(type));
  w.u32(static_cast<uint32_t>(status));
  w.bytes(payload);
  return w.take();
}

Result<LibMsg> LibMsg::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  LibMsg msg;
  msg.type = static_cast<LibMsgType>(r.u8());
  msg.status = static_cast<Status>(r.u32());
  msg.payload = r.bytes(1u << 22);
  if (!r.done()) return Status::kTampered;
  return msg;
}

Bytes MigrateRequestPayload::serialize() const {
  BinaryWriter w;
  w.str(destination_address);
  w.u64(request_nonce);
  policy.serialize(w);
  w.bytes(data.serialize());
  return w.take();
}

Result<MigrateRequestPayload> MigrateRequestPayload::deserialize(
    ByteView bytes) {
  BinaryReader r(bytes);
  MigrateRequestPayload p;
  p.destination_address = r.str(256);
  p.request_nonce = r.u64();
  auto policy = MigrationPolicy::deserialize(r);
  if (!policy.ok()) return Status::kTampered;
  p.policy = std::move(policy).value();
  auto data = MigrationData::deserialize(r.bytes(1u << 20));
  if (!r.done() || !data.ok()) return Status::kTampered;
  p.data = std::move(data).value();
  return p;
}

Bytes MigrateReservePayload::serialize() const {
  BinaryWriter w;
  w.str(destination_address);
  w.u64(request_nonce);
  policy.serialize(w);
  return w.take();
}

Result<MigrateReservePayload> MigrateReservePayload::deserialize(
    ByteView bytes) {
  BinaryReader r(bytes);
  MigrateReservePayload p;
  p.destination_address = r.str(256);
  p.request_nonce = r.u64();
  auto policy = MigrationPolicy::deserialize(r);
  if (!policy.ok() || !r.done()) return Status::kTampered;
  p.policy = std::move(policy).value();
  return p;
}

Bytes PollTransferPayload::serialize() const {
  BinaryWriter w;
  w.u64(request_nonce);
  return w.take();
}

Result<PollTransferPayload> PollTransferPayload::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  PollTransferPayload p;
  p.request_nonce = r.u64();
  if (!r.done()) return Status::kTampered;
  return p;
}

Bytes TransferProgressPayload::serialize() const {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(progress));
  w.u32(static_cast<uint32_t>(failure));
  return w.take();
}

Result<TransferProgressPayload> TransferProgressPayload::deserialize(
    ByteView bytes) {
  BinaryReader r(bytes);
  TransferProgressPayload p;
  const uint8_t progress = r.u8();
  if (progress > 4) return Status::kTampered;
  p.progress = static_cast<TransferProgress>(progress);
  p.failure = static_cast<Status>(r.u32());
  if (!r.done()) return Status::kTampered;
  return p;
}

Bytes AbortStalePayload::serialize() const {
  BinaryWriter w;
  w.u64(request_nonce);
  w.str(destination_address);
  return w.take();
}

Result<AbortStalePayload> AbortStalePayload::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  AbortStalePayload p;
  p.request_nonce = r.u64();
  p.destination_address = r.str(256);
  if (!r.done()) return Status::kTampered;
  return p;
}

Bytes AbortRequest::serialize() const {
  BinaryWriter w;
  w.fixed(source_mr_enclave);
  w.u64(request_nonce);
  return w.take();
}

Result<AbortRequest> AbortRequest::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  AbortRequest a;
  a.source_mr_enclave = r.fixed<32>();
  a.request_nonce = r.u64();
  if (!r.done()) return Status::kTampered;
  return a;
}

Bytes QueryStatusPayload::serialize() const {
  if (request_nonce == 0) return Bytes{};  // legacy per-identity query
  BinaryWriter w;
  w.u64(request_nonce);
  return w.take();
}

Result<QueryStatusPayload> QueryStatusPayload::deserialize(ByteView bytes) {
  QueryStatusPayload p;
  if (bytes.empty()) return p;
  BinaryReader r(bytes);
  p.request_nonce = r.u64();
  if (!r.done()) return Status::kTampered;
  return p;
}

// ----- pre-copy messages -----

void CounterChunk::serialize(BinaryWriter& w) const {
  w.u32(index);
  w.u64(generation);
  for (bool a : active) w.u8(a ? 1 : 0);
  for (uint32_t v : values) w.u32(v);
}

Result<CounterChunk> CounterChunk::deserialize(BinaryReader& r) {
  CounterChunk c;
  c.index = r.u32();
  c.generation = r.u64();
  for (auto& a : c.active) a = r.u8() != 0;
  for (auto& v : c.values) v = r.u32();
  if (!r.ok() || c.index >= kPrecopyChunkCount) return Status::kTampered;
  return c;
}

namespace {

void serialize_chunks(BinaryWriter& w, const std::vector<CounterChunk>& chunks) {
  w.u32(static_cast<uint32_t>(chunks.size()));
  for (const CounterChunk& c : chunks) c.serialize(w);
}

Result<std::vector<CounterChunk>> deserialize_chunks(BinaryReader& r) {
  const uint32_t count = r.u32();
  if (count > kPrecopyChunkCount) return Status::kTampered;
  std::vector<CounterChunk> chunks;
  chunks.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    auto c = CounterChunk::deserialize(r);
    if (!c.ok()) return c.status();
    chunks.push_back(std::move(c).value());
  }
  if (!r.ok()) return Status::kTampered;
  return chunks;
}

void serialize_manifest(BinaryWriter& w,
                        const std::vector<ChunkManifestEntry>& manifest) {
  w.u32(static_cast<uint32_t>(manifest.size()));
  for (const ChunkManifestEntry& e : manifest) {
    w.u32(e.index);
    w.u64(e.generation);
  }
}

Result<std::vector<ChunkManifestEntry>> deserialize_manifest(BinaryReader& r) {
  const uint32_t count = r.u32();
  if (count > kPrecopyChunkCount) return Status::kTampered;
  std::vector<ChunkManifestEntry> manifest;
  manifest.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    ChunkManifestEntry e;
    e.index = r.u32();
    e.generation = r.u64();
    if (e.index >= kPrecopyChunkCount) return Status::kTampered;
    manifest.push_back(e);
  }
  if (!r.ok()) return Status::kTampered;
  return manifest;
}

}  // namespace

Bytes PrecopyRoundPayload::serialize() const {
  BinaryWriter w;
  w.str(destination_address);
  w.u64(request_nonce);
  w.u32(round);
  policy.serialize(w);
  serialize_chunks(w, chunks);
  return w.take();
}

Result<PrecopyRoundPayload> PrecopyRoundPayload::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  PrecopyRoundPayload p;
  p.destination_address = r.str(256);
  p.request_nonce = r.u64();
  p.round = r.u32();
  auto policy = MigrationPolicy::deserialize(r);
  if (!policy.ok()) return Status::kTampered;
  p.policy = std::move(policy).value();
  auto chunks = deserialize_chunks(r);
  if (!chunks.ok() || !r.done()) return Status::kTampered;
  p.chunks = std::move(chunks).value();
  return p;
}

Bytes PrecopyFinalizePayload::serialize() const {
  BinaryWriter w;
  w.str(destination_address);
  w.u64(request_nonce);
  w.u32(round);
  policy.serialize(w);
  serialize_chunks(w, chunks);
  serialize_manifest(w, manifest);
  w.fixed(msk);
  return w.take();
}

Result<PrecopyFinalizePayload> PrecopyFinalizePayload::deserialize(
    ByteView bytes) {
  BinaryReader r(bytes);
  PrecopyFinalizePayload p;
  p.destination_address = r.str(256);
  p.request_nonce = r.u64();
  p.round = r.u32();
  auto policy = MigrationPolicy::deserialize(r);
  if (!policy.ok()) return Status::kTampered;
  p.policy = std::move(policy).value();
  auto chunks = deserialize_chunks(r);
  if (!chunks.ok()) return Status::kTampered;
  p.chunks = std::move(chunks).value();
  auto manifest = deserialize_manifest(r);
  if (!manifest.ok()) return Status::kTampered;
  p.manifest = std::move(manifest).value();
  p.msk = r.fixed<16>();
  if (!r.done()) return Status::kTampered;
  return p;
}

Bytes PrecopyChunkRecord::serialize() const {
  BinaryWriter w;
  w.fixed(source_mr_enclave);
  w.str(source_me_address);
  w.u64(request_nonce);
  w.u32(round);
  serialize_chunks(w, chunks);
  return w.take();
}

Result<PrecopyChunkRecord> PrecopyChunkRecord::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  PrecopyChunkRecord p;
  p.source_mr_enclave = r.fixed<32>();
  p.source_me_address = r.str(256);
  p.request_nonce = r.u64();
  p.round = r.u32();
  auto chunks = deserialize_chunks(r);
  if (!chunks.ok() || !r.done()) return Status::kTampered;
  p.chunks = std::move(chunks).value();
  return p;
}

Bytes PrecopyFinalizeRecord::serialize() const {
  BinaryWriter w;
  w.fixed(source_mr_enclave);
  w.str(source_me_address);
  w.u64(request_nonce);
  w.u32(round);
  serialize_chunks(w, chunks);
  serialize_manifest(w, manifest);
  w.fixed(msk);
  return w.take();
}

Result<PrecopyFinalizeRecord> PrecopyFinalizeRecord::deserialize(
    ByteView bytes) {
  BinaryReader r(bytes);
  PrecopyFinalizeRecord p;
  p.source_mr_enclave = r.fixed<32>();
  p.source_me_address = r.str(256);
  p.request_nonce = r.u64();
  p.round = r.u32();
  auto chunks = deserialize_chunks(r);
  if (!chunks.ok()) return Status::kTampered;
  p.chunks = std::move(chunks).value();
  auto manifest = deserialize_manifest(r);
  if (!manifest.ok()) return Status::kTampered;
  p.manifest = std::move(manifest).value();
  p.msk = r.fixed<16>();
  if (!r.done()) return Status::kTampered;
  return p;
}

Bytes ReconcileQuery::serialize() const {
  BinaryWriter w;
  w.fixed(source_mr_enclave);
  w.u64(request_nonce);
  return w.take();
}

Result<ReconcileQuery> ReconcileQuery::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  ReconcileQuery q;
  q.source_mr_enclave = r.fixed<32>();
  q.request_nonce = r.u64();
  if (!r.done()) return Status::kTampered;
  return q;
}

Bytes TransferPayload::serialize() const {
  BinaryWriter w;
  w.fixed(source_mr_enclave);
  w.str(source_me_address);
  w.u64(request_nonce);
  w.bytes(data.serialize());
  return w.take();
}

Result<TransferPayload> TransferPayload::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  TransferPayload p;
  p.source_mr_enclave = r.fixed<32>();
  p.source_me_address = r.str(256);
  p.request_nonce = r.u64();
  auto data = MigrationData::deserialize(r.bytes(1u << 20));
  if (!r.done() || !data.ok()) return Status::kTampered;
  p.data = std::move(data).value();
  return p;
}

Bytes SessionResumeRequest::serialize() const {
  BinaryWriter w;
  w.str(initiator_address);
  w.u64(responder_epoch);
  w.fixed(nonce);
  w.fixed(mac);
  return w.take();
}

Result<SessionResumeRequest> SessionResumeRequest::deserialize(
    ByteView bytes) {
  BinaryReader r(bytes);
  SessionResumeRequest req;
  req.initiator_address = r.str(256);
  req.responder_epoch = r.u64();
  req.nonce = r.fixed<16>();
  req.mac = r.fixed<16>();
  if (!r.done()) return Status::kTampered;
  return req;
}

Bytes SessionResumeReply::serialize() const {
  BinaryWriter w;
  w.fixed(nonce);
  w.fixed(mac);
  return w.take();
}

Result<SessionResumeReply> SessionResumeReply::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  SessionResumeReply reply;
  reply.nonce = r.fixed<16>();
  reply.mac = r.fixed<16>();
  if (!r.done()) return Status::kTampered;
  return reply;
}

Bytes ProviderAuth::serialize() const {
  BinaryWriter w;
  credential.serialize(w);
  w.fixed(transcript_signature);
  return w.take();
}

Result<ProviderAuth> ProviderAuth::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  ProviderAuth auth;
  auth.credential = platform::MachineCredential::deserialize(r);
  auth.transcript_signature = r.fixed<64>();
  if (!r.done()) return Status::kTampered;
  return auth;
}

Bytes provider_auth_message(const std::array<uint8_t, 32>& transcript_hash) {
  BinaryWriter w;
  w.str("SGXMIG-PROVIDER-AUTH-v1");
  w.fixed(transcript_hash);
  return w.take();
}

}  // namespace sgxmig::migration

#include "migration/protocol.h"

namespace sgxmig::migration {

Bytes MeRequest::serialize() const {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(type));
  w.u64(id);
  w.bytes(payload);
  return w.take();
}

Result<MeRequest> MeRequest::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  MeRequest req;
  const uint8_t type = r.u8();
  if (type < 1 || type > 7) return Status::kTampered;
  req.type = static_cast<MeMsgType>(type);
  req.id = r.u64();
  req.payload = r.bytes(1u << 22);
  if (!r.done()) return Status::kTampered;
  return req;
}

Bytes MeResponse::serialize() const {
  BinaryWriter w;
  w.u32(static_cast<uint32_t>(status));
  w.bytes(payload);
  return w.take();
}

Result<MeResponse> MeResponse::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  MeResponse resp;
  resp.status = static_cast<Status>(r.u32());
  resp.payload = r.bytes(1u << 22);
  if (!r.done()) return Status::kTampered;
  return resp;
}

Bytes LibMsg::serialize() const {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(type));
  w.u32(static_cast<uint32_t>(status));
  w.bytes(payload);
  return w.take();
}

Result<LibMsg> LibMsg::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  LibMsg msg;
  msg.type = static_cast<LibMsgType>(r.u8());
  msg.status = static_cast<Status>(r.u32());
  msg.payload = r.bytes(1u << 22);
  if (!r.done()) return Status::kTampered;
  return msg;
}

Bytes MigrateRequestPayload::serialize() const {
  BinaryWriter w;
  w.str(destination_address);
  w.u64(request_nonce);
  policy.serialize(w);
  w.bytes(data.serialize());
  return w.take();
}

Result<MigrateRequestPayload> MigrateRequestPayload::deserialize(
    ByteView bytes) {
  BinaryReader r(bytes);
  MigrateRequestPayload p;
  p.destination_address = r.str(256);
  p.request_nonce = r.u64();
  auto policy = MigrationPolicy::deserialize(r);
  if (!policy.ok()) return Status::kTampered;
  p.policy = std::move(policy).value();
  auto data = MigrationData::deserialize(r.bytes(1u << 20));
  if (!r.done() || !data.ok()) return Status::kTampered;
  p.data = std::move(data).value();
  return p;
}

Bytes QueryStatusPayload::serialize() const {
  if (request_nonce == 0) return Bytes{};  // legacy per-identity query
  BinaryWriter w;
  w.u64(request_nonce);
  return w.take();
}

Result<QueryStatusPayload> QueryStatusPayload::deserialize(ByteView bytes) {
  QueryStatusPayload p;
  if (bytes.empty()) return p;
  BinaryReader r(bytes);
  p.request_nonce = r.u64();
  if (!r.done()) return Status::kTampered;
  return p;
}

Bytes TransferPayload::serialize() const {
  BinaryWriter w;
  w.fixed(source_mr_enclave);
  w.str(source_me_address);
  w.u64(request_nonce);
  w.bytes(data.serialize());
  return w.take();
}

Result<TransferPayload> TransferPayload::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  TransferPayload p;
  p.source_mr_enclave = r.fixed<32>();
  p.source_me_address = r.str(256);
  p.request_nonce = r.u64();
  auto data = MigrationData::deserialize(r.bytes(1u << 20));
  if (!r.done() || !data.ok()) return Status::kTampered;
  p.data = std::move(data).value();
  return p;
}

Bytes ProviderAuth::serialize() const {
  BinaryWriter w;
  credential.serialize(w);
  w.fixed(transcript_signature);
  return w.take();
}

Result<ProviderAuth> ProviderAuth::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  ProviderAuth auth;
  auth.credential = platform::MachineCredential::deserialize(r);
  auth.transcript_signature = r.fixed<64>();
  if (!r.done()) return Status::kTampered;
  return auth;
}

Bytes provider_auth_message(const std::array<uint8_t, 32>& transcript_hash) {
  BinaryWriter w;
  w.str("SGXMIG-PROVIDER-AUTH-v1");
  w.fixed(transcript_hash);
  return w.take();
}

}  // namespace sgxmig::migration

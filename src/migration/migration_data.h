// The migrated-data structure — paper Table I.
//
//   Name             Type          Description
//   counters active  bool[256]     Shows used counters
//   counter values   uint32[256]   Used as next offset
//   MSK              128-bit key   Used by migratable seal
//
// This is everything that leaves the source enclave during a migration: it
// travels Migration Library -> source ME -> destination ME -> destination
// Migration Library, always inside attestation-derived secure channels.
#pragma once

#include <array>
#include <cstdint>

#include "sgx/pse.h"
#include "sgx/types.h"
#include "support/bytes.h"
#include "support/status.h"

namespace sgxmig::migration {

inline constexpr size_t kMaxCounters =
    sgx::MonotonicCounterService::kMaxCountersPerEnclave;

struct MigrationData {
  std::array<bool, kMaxCounters> counters_active{};
  std::array<uint32_t, kMaxCounters> counter_values{};  // next offsets
  sgx::Key128 msk{};

  Bytes serialize() const;
  static Result<MigrationData> deserialize(ByteView bytes);

  size_t active_count() const;
  bool operator==(const MigrationData&) const = default;
};

}  // namespace sgxmig::migration

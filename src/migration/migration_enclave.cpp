#include "migration/migration_enclave.h"

#include "crypto/cmac.h"
#include "net/network.h"
#include "obs/observability.h"

namespace sgxmig::migration {

namespace {
constexpr char kDoneMarker[] = "SGXMIG-DONE";
constexpr char kAcceptedMarker[] = "SGXMIG-ACCEPTED";
constexpr char kPrecopyAckMarker[] = "SGXMIG-PC-ACK";
constexpr char kPrecopyFinMarker[] = "SGXMIG-PC-FIN";
constexpr char kReconcileMarker[] = "SGXMIG-RECON";
constexpr char kAbortMarker[] = "SGXMIG-ABORT";
constexpr char kQueueAad[] = "SGXMIG-ME-QUEUE";
constexpr char kQueueMagicV1[] = "SGXMIG-ME-QUEUE-v1";
constexpr char kQueueMagicV2[] = "SGXMIG-ME-QUEUE-v2";  // v1 + pre-copy state
// v2 + pipelined TransferTasks, inbound peer addresses, staging ages.
constexpr char kQueueMagicV3[] = "SGXMIG-ME-QUEUE-v3";
// v3 + per-task armed flags and the cached ME<->ME resume sessions.
constexpr char kQueueMagicV4[] = "SGXMIG-ME-QUEUE-v4";
// Confirmed-transfer history bound: enough to absorb duplicate DONEs from
// any realistic relay-retry window without growing with fleet lifetime.
constexpr size_t kCompletedHistoryLimit = 4096;

MeResponse error_response(Status status) {
  MeResponse resp;
  resp.status = status;
  return resp;
}

// ----- observability -----
//
// The ME never owns an Observability; it borrows the world's through its
// platform, and every hook below is a cheap no-op when tracing is off.

obs::Observability* enabled_obs(sgx::PlatformIface& platform) {
  obs::Observability* obs = platform.observability();
  return (obs != nullptr && obs->enabled()) ? obs : nullptr;
}

// TransferTask step transitions as trace instants on this ME's lane,
// keyed by the attempt nonce so they land inside the migration's tree.
void trace_task_step(sgx::PlatformIface& platform, uint64_t nonce,
                     const char* step) {
  obs::Observability* obs = enabled_obs(platform);
  if (obs == nullptr) return;
  obs->trace.instant("me.task.step", platform.address(), nonce,
                     {{"step", step}});
  obs->metrics.add(std::string("me.task.steps.") + step);
}

// ----- attestation-session resume transcripts -----
//
// All three values are CMACs under the cached master key over a
// domain-separated transcript that binds the conversation id, both
// parties' nonces and the responder epoch, so a resume message can be
// neither replayed into a different conversation nor spliced across
// epochs.

crypto::CmacTag resume_request_mac(const sgx::Key128& master, uint64_t id,
                                   const std::string& initiator_address,
                                   uint64_t responder_epoch,
                                   const std::array<uint8_t, 16>& nonce) {
  BinaryWriter w;
  w.str("SGXMIG-RESUME-REQ-v1");
  w.u64(id);
  w.str(initiator_address);
  w.u64(responder_epoch);
  w.fixed(nonce);
  const Bytes transcript = w.take();
  return crypto::aes_cmac(master, transcript);
}

crypto::CmacTag resume_reply_mac(const sgx::Key128& master, uint64_t id,
                                 const std::array<uint8_t, 16>& nonce_i,
                                 const std::array<uint8_t, 16>& nonce_r) {
  BinaryWriter w;
  w.str("SGXMIG-RESUME-REP-v1");
  w.u64(id);
  w.fixed(nonce_i);
  w.fixed(nonce_r);
  const Bytes transcript = w.take();
  return crypto::aes_cmac(master, transcript);
}

sgx::Key128 derive_resume_key(const sgx::Key128& master, uint64_t id,
                              const std::array<uint8_t, 16>& nonce_i,
                              const std::array<uint8_t, 16>& nonce_r) {
  BinaryWriter w;
  w.str("SGXMIG-RESUME-KEY-v1");
  w.u64(id);
  w.fixed(nonce_i);
  w.fixed(nonce_r);
  const Bytes transcript = w.take();
  return crypto::aes_cmac(master, transcript);
}
}  // namespace

MigrationEnclave::MigrationEnclave(sgx::PlatformIface& platform,
                                   std::shared_ptr<const sgx::EnclaveImage> image,
                                   platform::ProviderCa& provider,
                                   std::unique_ptr<PersistenceEngine> engine)
    : Enclave(platform, std::move(image)),
      machine_key_(crypto::Ed25519KeyPair::from_seed(
          to_array<32>(rng().bytes(32)))),
      credential_(provider.issue(platform.address(), platform.region(),
                                 platform.cpu_cores(),
                                 machine_key_.public_key())),
      provider_ca_key_(provider.public_key()),
      engine_(engine ? std::move(engine)
                     : make_persistence_engine(PersistenceMode::kSync)) {
  // Random per construction: a restarted/redeployed ME presents a new
  // epoch, so initiators holding cached sessions for the old instance are
  // refused and fall back to the full handshake.
  instance_epoch_ = fresh_id();
  if (auto* net = this->platform().network()) {
    net->register_endpoint(this->platform().address() + "/me",
                           [this](ByteView raw) { return handle_request(raw); });
  }
}

MigrationEnclave::~MigrationEnclave() {
  if (auto* net = platform().network()) {
    net->unregister_endpoint(platform().address() + "/me");
    // Replies still in flight for this instance's TransferTask steps must
    // never resume into a destroyed enclave (the crash simulation kills
    // the object while conversations are live); the requests themselves
    // stay on the wire, which is exactly the real-world ambiguity the
    // nonce dedup exists for.
    net->cancel_posts(net_endpoint());
  }
}

std::string MigrationEnclave::net_endpoint() const {
  return platform().address() + "/me";
}

std::shared_ptr<const sgx::EnclaveImage> MigrationEnclave::standard_image() {
  static const std::shared_ptr<const sgx::EnclaveImage> image =
      sgx::EnclaveImage::create("migration-enclave", /*code_version=*/1,
                                /*signer_name=*/"cloud-provider",
                                /*isv_prod_id=*/0x00e0, /*isv_svn=*/1);
  return image;
}

void MigrationEnclave::bump_instance_epoch() {
  auto scope = enter_ecall();
  ++instance_epoch_;
  // A redeployed ME forgets its acceptors: every initiator holding a
  // cached session is refused and forced back to the full handshake.
  resume_acceptors_.clear();
}

uint64_t MigrationEnclave::fresh_id() {
  const Bytes b = rng().bytes(8);
  const uint64_t id = load_be64(b.data());
  return id == 0 ? 1 : id;
}

OutgoingState MigrationEnclave::outgoing_state(
    const sgx::Measurement& mr) const {
  // The per-identity index tracks the most recent transfer (the same
  // enclave may migrate away repeatedly over its lifetime), so status
  // queries no longer scan every transfer ever retained.
  const auto it = latest_outgoing_.find(mr);
  return it == latest_outgoing_.end() ? OutgoingState::kNone
                                      : it->second.second;
}

void MigrationEnclave::record_completed(uint64_t transfer_id,
                                        const OutgoingTransfer& t) {
  CompletedOutgoing record;
  record.source_mr = t.source_mr;
  record.request_nonce = t.request_nonce;
  record.sequence = t.sequence;
  completed_outgoing_[transfer_id] = record;
  completed_order_.push_back(transfer_id);
  while (completed_order_.size() > history_limit()) {
    completed_outgoing_.erase(completed_order_.front());
    completed_order_.pop_front();
  }
}

size_t MigrationEnclave::history_limit() const {
  return completed_history_limit_ == 0 ? kCompletedHistoryLimit
                                       : completed_history_limit_;
}

void MigrationEnclave::set_completed_history_limit(size_t limit) {
  // The serialization format rejects restored queues claiming more than
  // kCompletedHistoryLimit entries (tamper check), so the override can
  // only shrink retention, never grow it past the format ceiling.
  completed_history_limit_ =
      (limit == 0 || limit >= kCompletedHistoryLimit) ? 0 : limit;
  while (completed_order_.size() > history_limit()) {
    completed_outgoing_.erase(completed_order_.front());
    completed_order_.pop_front();
  }
  while (confirmed_incoming_order_.size() > history_limit()) {
    confirmed_incoming_.erase(confirmed_incoming_order_.front());
    confirmed_incoming_order_.pop_front();
  }
}

void MigrationEnclave::drop_sessions_for(const sgx::Measurement& mr) {
  for (auto it = la_sessions_.begin(); it != la_sessions_.end();) {
    // Never erase the session on_la_record is currently dispatching for:
    // a DONE can arrive reentrantly (over a nested rpc) for the same
    // MRENCLAVE while an instance of that image is mid-conversation.
    if (it->second.peer.mr_enclave == mr && it->first != active_la_session_) {
      it = la_sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<Bytes> MigrationEnclave::handle_request(ByteView raw) {
  auto scope = enter_ecall();
  // Opportunistic DONE-relay retry: any inbound traffic is evidence the
  // network is back; try to clear the backlog before serving the request.
  // Rate-limited so a long outage does not tax every request with one
  // doomed rpc per backlog entry.
  if (!done_relays_.empty() &&
      platform().clock().now() - last_relay_retry_ >= relay_retry_interval_) {
    retry_done_relays();
  }
  // Same opportunism for abandoned pre-copy staging: inbound traffic is a
  // cheap moment to age out entries whose source will never finalize.
  if (!precopy_staging_.empty() &&
      platform().clock().now() - last_staging_sweep_ >=
          precopy_staging_max_age_) {
    sweep_stale_precopy_staging();
  }
  auto parsed = MeRequest::deserialize(raw);
  if (!parsed.ok()) return error_response(Status::kTampered).serialize();
  const MeRequest& req = parsed.value();

  MeResponse resp;
  switch (req.type) {
    case MeMsgType::kLaStart: resp = on_la_start(req); break;
    case MeMsgType::kLaMsg2: resp = on_la_msg2(req); break;
    case MeMsgType::kLaRecord: resp = on_la_record(req); break;
    case MeMsgType::kRaMsg1: resp = on_ra_msg1(req); break;
    case MeMsgType::kRaMsg3: resp = on_ra_msg3(req); break;
    case MeMsgType::kTransfer: resp = on_transfer(req); break;
    case MeMsgType::kDone: resp = on_done(req); break;
    case MeMsgType::kPrecopyChunk: resp = on_precopy_chunk(req); break;
    case MeMsgType::kPrecopyFinalize: resp = on_precopy_finalize(req); break;
    case MeMsgType::kReconcile: resp = on_reconcile(req); break;
    case MeMsgType::kAbort: resp = on_abort(req); break;
    case MeMsgType::kSessionResume: resp = on_session_resume(req); break;
  }
  return resp.serialize();
}

// ----- local attestation service -----

MeResponse MigrationEnclave::on_la_start(const MeRequest& req) {
  // A replayed/colliding session id must not clobber a live session (its
  // channel — and any delivery pinned to it — would be silently lost).
  if (la_sessions_.count(req.id) != 0) {
    return error_response(Status::kAlreadyExists);
  }
  LaSessionState session;
  session.dh = std::make_unique<sgx::DhSession>(platform(), identity(),
                                                sgx::DhSession::Role::kResponder);
  session.last_used = platform().clock().now();
  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = session.dh->create_msg1().serialize();
  la_sessions_[req.id] = std::move(session);
  return resp;
}

MeResponse MigrationEnclave::on_la_msg2(const MeRequest& req) {
  const auto it = la_sessions_.find(req.id);
  if (it == la_sessions_.end()) return error_response(Status::kInvalidState);
  auto msg2 = sgx::DhMsg2::deserialize(req.payload);
  if (!msg2.ok()) return error_response(Status::kTampered);
  auto msg3 = it->second.dh->handle_msg2(msg2.value());
  if (!msg3.ok()) {
    la_sessions_.erase(it);
    return error_response(msg3.status());
  }
  // Record the attested identity of the calling enclave: this MRENCLAVE is
  // what migration data is matched against (paper §VI-A).
  it->second.peer = it->second.dh->peer_identity();
  it->second.channel.emplace(it->second.dh->session_key(),
                             net::SecureChannel::Role::kResponder);
  it->second.last_used = platform().clock().now();
  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = msg3.value().serialize();
  return resp;
}

MeResponse MigrationEnclave::on_la_record(const MeRequest& req) {
  const auto it = la_sessions_.find(req.id);
  if (it == la_sessions_.end() || !it->second.channel.has_value()) {
    return error_response(Status::kInvalidState);
  }
  LaSessionState& session = it->second;
  session.last_used = platform().clock().now();
  auto plaintext = session.channel->open_record(req.payload);
  if (!plaintext.ok()) return error_response(plaintext.status());
  auto msg = LibMsg::deserialize(plaintext.value());
  if (!msg.ok()) return error_response(Status::kTampered);

  // Inner handlers can make nested rpcs whose peers re-enter
  // handle_request (DONE-relay retries): shield this session from
  // drop_sessions_for while it is being dispatched.
  const uint64_t previous_active = active_la_session_;
  active_la_session_ = req.id;
  LibMsg reply;
  switch (msg.value().type) {
    case LibMsgType::kMigrateRequest:
      reply = on_migrate_request(session, msg.value());
      break;
    case LibMsgType::kFetchIncoming:
      reply = on_fetch_incoming(req.id, session);
      break;
    case LibMsgType::kConfirmMigration:
      reply = on_confirm_migration(req.id, session, msg.value());
      break;
    case LibMsgType::kQueryStatus:
      reply = on_query_status(session, msg.value());
      break;
    case LibMsgType::kPrecopyRound:
      reply = on_precopy_round(session, msg.value());
      break;
    case LibMsgType::kPrecopyFinalizeReq:
      reply = on_precopy_finalize_req(session, msg.value());
      break;
    case LibMsgType::kMigrateEnqueue:
      reply = on_migrate_enqueue(session, msg.value());
      break;
    case LibMsgType::kMigrateReserve:
      reply = on_migrate_reserve(session, msg.value());
      break;
    case LibMsgType::kMigrateArm:
      reply = on_migrate_arm(session, msg.value());
      break;
    case LibMsgType::kPollTransfer:
      reply = on_poll_transfer(session, msg.value());
      break;
    case LibMsgType::kAbortStale:
      reply = on_abort_stale(session, msg.value());
      break;
    default:
      reply.type = LibMsgType::kError;
      reply.status = Status::kInvalidParameter;
      break;
  }
  active_la_session_ = previous_active;
  // Re-resolve the session before touching the channel: belt over the
  // shield above, in case a reentrant path erased it after all.
  const auto after = la_sessions_.find(req.id);
  if (after == la_sessions_.end() || !after->second.channel.has_value()) {
    return error_response(Status::kInvalidState);
  }
  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = after->second.channel->seal_record(reply.serialize());
  // A confirmed delivery ends the session's purpose: drop it so a long
  // drain does not accumulate one dead session per migrated enclave.  (A
  // library that outlives the confirm simply re-attests on its next call.)
  if (reply.type == LibMsgType::kConfirmAck) la_sessions_.erase(after);
  return resp;
}

// ----- inner LibMsg handlers -----

LibMsg MigrationEnclave::on_migrate_request(LaSessionState& session,
                                            const LibMsg& msg) {
  LibMsg reply;
  auto request = MigrateRequestPayload::deserialize(msg.payload);
  if (!request.ok()) {
    reply.type = LibMsgType::kError;
    reply.status = Status::kTampered;
    return reply;
  }
  const Status status =
      run_outgoing(session.peer.mr_enclave, request.value());
  if (status != Status::kOk) {
    reply.type = LibMsgType::kError;
    reply.status = status;
    return reply;
  }
  reply.type = LibMsgType::kMigrateAccepted;
  reply.status = Status::kOk;
  return reply;
}

LibMsg MigrationEnclave::on_fetch_incoming(uint64_t session_id,
                                           LaSessionState& session) {
  LibMsg reply;
  const auto it = pending_.find(session.peer.mr_enclave);
  if (it == pending_.end()) {
    reply.type = LibMsgType::kError;
    reply.status = Status::kNoPendingMigration;
    return reply;
  }
  // Deliver to exactly one enclave instance: once handed to a session, no
  // other session may fetch it (prevents forking the migration data into
  // two concurrently-running destination enclaves).  The pin is released
  // only when the pinned session is GONE — erased, lost to an ME restart,
  // or idle past the takeover timeout (the destination instance died
  // before confirming) — so a replacement instance of the same attested
  // MRENCLAVE can re-fetch instead of the migration being stuck forever.
  if (it->second.delivering_session != 0 &&
      it->second.delivering_session != session_id) {
    const auto pinned = la_sessions_.find(it->second.delivering_session);
    const bool pinned_gone = pinned == la_sessions_.end();
    const bool pinned_idle =
        !pinned_gone && platform().clock().now() - pinned->second.last_used >=
                            delivery_takeover_timeout_;
    if (!pinned_gone && !pinned_idle) {
      reply.type = LibMsgType::kError;
      reply.status = Status::kMigrationInProgress;
      return reply;
    }
    // Revoke the stale session so the presumed-dead instance cannot come
    // back and race the new one for the confirm.
    if (!pinned_gone) la_sessions_.erase(pinned);
  }
  it->second.delivering_session = session_id;
  // The token rides inside the sealed reply: possession later proves the
  // confirmer is the instance this very record reached.
  it->second.delivery_token = fresh_id();
  reply.type = LibMsgType::kIncomingData;
  reply.status = Status::kOk;
  BinaryWriter w;
  w.bytes(it->second.data.serialize());
  w.u64(it->second.delivery_token);
  // Third field (tolerated as absent by older readers): the attempt
  // nonce, so the destination library can join this migration's trace
  // tree without any new protocol message.
  w.u64(it->second.request_nonce);
  reply.payload = w.take();
  if (obs::Observability* obs = enabled_obs(platform())) {
    obs->trace.instant("me.fetch", platform().address(),
                       it->second.request_nonce);
    obs->metrics.add("me.fetches");
  }
  return reply;
}

LibMsg MigrationEnclave::on_confirm_migration(uint64_t session_id,
                                              LaSessionState& session,
                                              const LibMsg& msg) {
  LibMsg reply;
  // Optional payload: the delivery token from the fetch reply.  An
  // instance that re-attested (channel desync, corrupted record forcing
  // a fresh LA session) confirms from a session that is NOT the pinned
  // one; the token — which only the fetch reply's recipient can hold —
  // re-establishes ownership.
  uint64_t token = 0;
  if (!msg.payload.empty()) {
    BinaryReader r(msg.payload);
    token = r.u64();
    if (!r.done()) {
      reply.type = LibMsgType::kError;
      reply.status = Status::kTampered;
      return reply;
    }
  }
  const auto it = pending_.find(session.peer.mr_enclave);
  const bool owner =
      it != pending_.end() &&
      (it->second.delivering_session == session_id ||
       (token != 0 && token == it->second.delivery_token));
  if (it != pending_.end() && owner &&
      it->second.delivering_session != session_id) {
    // Token-based takeover: revoke the stale pinned session so the old
    // channel cannot race this one.
    la_sessions_.erase(it->second.delivering_session);
    it->second.delivering_session = session_id;
  }
  if (!owner) {
    // Idempotent re-confirm: if a migration for this identity was already
    // confirmed (the previous ConfirmAck reply was lost and the library
    // re-attested to retry), acknowledge again rather than failing the
    // fully restored destination instance.  No state changes; an enclave
    // that never fetched cannot reach its confirm step (its init fails at
    // the fetch), so this leaks nothing.
    if (it == pending_.end() &&
        confirmed_incoming_.count(session.peer.mr_enclave) != 0) {
      reply.type = LibMsgType::kConfirmAck;
      reply.status = Status::kOk;
      return reply;
    }
    reply.type = LibMsgType::kError;
    reply.status = Status::kInvalidState;
    return reply;
  }
  const uint64_t transfer_id = it->second.transfer_id;
  const std::string source_address = it->second.source_me_address;
  const uint64_t request_nonce = it->second.request_nonce;

  // Seal the DONE record for the source ME while the inbound channel is
  // still at hand, then retire both queue entries.  The erase of pending_
  // MUST be durable before the ConfirmAck leaves this enclave: if an ME
  // restart resurrected the pending entry after the destination enclave
  // started running, a second instance could fetch it — the §III-B fork.
  const auto inbound_it = inbound_.find(transfer_id);
  std::optional<DoneRelay> relay;
  if (inbound_it != inbound_.end() && inbound_it->second.channel.has_value()) {
    BinaryWriter done;
    done.str(kDoneMarker);
    done.u64(transfer_id);
    DoneRelay r;
    r.source_me_address = source_address;
    r.sealed_record = inbound_it->second.channel->seal_record(done.data());
    relay = std::move(r);
    inbound_.erase(inbound_it);
  }
  pending_.erase(it);
  if (relay.has_value()) done_relays_[transfer_id] = std::move(*relay);
  if (confirmed_incoming_.count(session.peer.mr_enclave) == 0) {
    confirmed_incoming_order_.push_back(session.peer.mr_enclave);
  }
  confirmed_incoming_[session.peer.mr_enclave] = transfer_id;
  while (confirmed_incoming_order_.size() > history_limit()) {
    confirmed_incoming_.erase(confirmed_incoming_order_.front());
    confirmed_incoming_order_.pop_front();
  }
  const Status persisted = persist_queue();
  if (persisted != Status::kOk) {
    reply.type = LibMsgType::kError;
    reply.status = persisted;
    return reply;
  }

  // Relay DONE to the source ME so it can delete its retained copy.  If
  // the source is unreachable the sealed record stays in the durable
  // relay backlog and is retried (§V-D's error handling: the source
  // simply keeps the data as "pending" until the DONE gets through).
  retry_done_relays();

  if (obs::Observability* obs = enabled_obs(platform())) {
    obs->trace.instant("me.confirm", platform().address(), request_nonce);
    obs->metrics.add("me.confirms");
  }
  reply.type = LibMsgType::kConfirmAck;
  reply.status = Status::kOk;
  return reply;
}

size_t MigrationEnclave::retry_done_relays() {
  auto* net = platform().network();
  if (net == nullptr) return done_relays_.size();
  // Reentrancy guard: a relay rpc makes the peer ME handle a request,
  // which opportunistically retries ITS backlog — two MEs with relays
  // pointed at each other would otherwise recurse without bound.
  if (retrying_relays_) return done_relays_.size();
  retrying_relays_ = true;
  last_relay_retry_ = platform().clock().now();
  std::vector<uint64_t> ids;
  ids.reserve(done_relays_.size());
  for (const auto& [id, relay] : done_relays_) ids.push_back(id);
  bool any_delivered = false;
  for (const uint64_t id : ids) {
    const DoneRelay& relay = done_relays_[id];
    MeRequest done_req;
    done_req.type = MeMsgType::kDone;
    done_req.id = id;
    done_req.payload = relay.sealed_record;
    auto raw = net->rpc(relay.source_me_address + "/me", done_req.serialize());
    if (!raw.ok()) continue;
    auto resp = MeResponse::deserialize(raw.value());
    if (!resp.ok()) continue;
    const Status status = resp.value().status;
    // kOk: the source acknowledged and deleted its copy.  kInvalidState:
    // the source does not know the transfer at all — the completion
    // record aged out of its bounded history, or it lost its queue —
    // so re-sending can never succeed; the entry is spent either way.
    // Anything else (transport loss, transient errors) keeps the entry
    // for another round.  (A network adversary forging an ack can at
    // worst make the source retain its copy forever — an availability
    // cost, never a fork.)
    if (status != Status::kOk && status != Status::kInvalidState) continue;
    done_relays_.erase(id);
    any_delivered = true;
  }
  retrying_relays_ = false;
  if (any_delivered) persist_queue();
  return done_relays_.size();
}

LibMsg MigrationEnclave::on_query_status(LaSessionState& session,
                                         const LibMsg& msg) {
  LibMsg reply;
  auto query = QueryStatusPayload::deserialize(msg.payload);
  if (!query.ok()) {
    reply.type = LibMsgType::kError;
    reply.status = Status::kTampered;
    return reply;
  }
  OutgoingState state = OutgoingState::kNone;
  const uint64_t nonce = query.value().request_nonce;
  if (nonce == 0) {
    state = outgoing_state(session.peer.mr_enclave);
  } else {
    // Nonce-scoped query: the fate of exactly one migrate request — the
    // resume path a library uses when its ME exchange died mid-flight.
    for (const auto& [id, transfer] : outgoing_) {
      if (transfer.source_mr == session.peer.mr_enclave &&
          transfer.request_nonce == nonce) {
        state = OutgoingState::kPending;
        break;
      }
    }
    if (state == OutgoingState::kNone) {
      for (const auto& [id, record] : completed_outgoing_) {
        if (record.source_mr == session.peer.mr_enclave &&
            record.request_nonce == nonce) {
          state = OutgoingState::kCompleted;
          break;
        }
      }
    }
  }
  reply.type = LibMsgType::kStatusReport;
  reply.status = Status::kOk;
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(state));
  reply.payload = w.take();
  return reply;
}

// ----- outgoing migration (source side, paper Fig. 2 steps 3-4) -----

Result<net::SecureChannel> MigrationEnclave::attest_peer_me(
    const std::string& destination_address, uint64_t transfer_id,
    const MigrationPolicy& policy) {
  auto* net = platform().network();
  if (net == nullptr) return Status::kNetworkUnreachable;
  const std::string dest_endpoint = destination_address + "/me";

  // --- cached-session resume (one round trip) ---
  auto resumed = try_resume_session(destination_address, transfer_id, policy);
  if (resumed.ok()) return resumed;
  if (resumed.status() == Status::kPolicyViolation) {
    // The cached credential is the provider-certified one from the full
    // handshake; a policy denial against it is as authoritative as one
    // against a freshly attested credential.
    return resumed.status();
  }
  // Anything else (no cache entry, peer refused, transport) falls back to
  // the full msg1/msg3 handshake below.

  // --- mutual remote attestation ---
  sgx::RaSession ra(platform(), identity(), sgx::RaSession::Role::kInitiator);
  MeRequest m1;
  m1.type = MeMsgType::kRaMsg1;
  m1.id = transfer_id;
  m1.payload = ra.create_msg1().serialize();
  auto raw2 = net->rpc(dest_endpoint, m1.serialize());
  if (!raw2.ok()) return raw2.status();
  auto resp2 = MeResponse::deserialize(raw2.value());
  if (!resp2.ok()) return Status::kTampered;
  if (resp2.value().status != Status::kOk) return resp2.value().status;
  auto msg2 = sgx::RaMsg2::deserialize(resp2.value().payload);
  if (!msg2.ok()) return Status::kTampered;
  auto msg3 = ra.handle_msg2(msg2.value());
  if (!msg3.ok()) return msg3.status();

  // The destination ME must run exactly this ME's code (paper §VI-A).
  if (!(ra.peer_identity().mr_enclave == identity().mr_enclave)) {
    return Status::kIdentityMismatch;
  }

  // --- provider authentication (both directions) ---
  BinaryWriter m3_payload;
  m3_payload.bytes(msg3.value().serialize());
  m3_payload.bytes(make_provider_auth(ra.transcript_hash()).serialize());
  MeRequest m3;
  m3.type = MeMsgType::kRaMsg3;
  m3.id = transfer_id;
  m3.payload = m3_payload.take();
  auto raw3 = net->rpc(dest_endpoint, m3.serialize());
  if (!raw3.ok()) return raw3.status();
  auto resp3 = MeResponse::deserialize(raw3.value());
  if (!resp3.ok()) return Status::kTampered;
  if (resp3.value().status != Status::kOk) return resp3.value().status;
  BinaryReader r3(resp3.value().payload);
  auto peer_auth = ProviderAuth::deserialize(r3.bytes(1u << 16));
  if (!peer_auth.ok()) return Status::kTampered;
  const uint64_t peer_epoch = r3.u64();
  if (!r3.done()) return Status::kTampered;
  std::string peer_region;
  const Status auth_status =
      verify_provider_auth(peer_auth.value(), ra.transcript_hash(),
                           destination_address, &peer_region);
  if (auth_status != Status::kOk) return auth_status;

  // --- migration policy (paper §X extension): evaluated against the
  // destination's provider-CERTIFIED attributes, not self-claimed ones ---
  const Status policy_status = policy.evaluate(peer_auth.value().credential);
  if (policy_status != Status::kOk) return policy_status;

  cache_peer_session(destination_address, ra.session_key(), peer_epoch,
                     peer_auth.value().credential, peer_region);
  ++full_handshakes_;
  if (obs::Observability* obs = enabled_obs(platform())) {
    obs->metrics.add("me.handshake.full");
  }
  return net::SecureChannel(ra.session_key(),
                            net::SecureChannel::Role::kInitiator);
}

void MigrationEnclave::cache_peer_session(
    const std::string& destination_address, const sgx::Key128& master_key,
    uint64_t peer_epoch, const platform::MachineCredential& credential,
    const std::string& region) {
  PeerSession session;
  session.master_key = master_key;
  session.peer_epoch = peer_epoch;
  session.credential = credential;
  session.region = region;
  peer_sessions_[destination_address] = std::move(session);
  // Durability rides the next persist_queue() from the caller's own state
  // transition — losing a cache entry only costs a full handshake.
}

Result<net::SecureChannel> MigrationEnclave::try_resume_session(
    const std::string& destination_address, uint64_t transfer_id,
    const MigrationPolicy& policy) {
  auto* net = platform().network();
  if (net == nullptr) return Status::kNetworkUnreachable;
  const auto it = peer_sessions_.find(destination_address);
  if (it == peer_sessions_.end()) return Status::kNoPendingMigration;
  // Per-attempt policy runs against the CACHED provider-certified
  // credential; a denial is not restart evidence, so the cache survives.
  const Status policy_status = policy.evaluate(it->second.credential);
  if (policy_status != Status::kOk) return policy_status;

  SessionResumeRequest resume;
  resume.initiator_address = platform().address();
  resume.responder_epoch = it->second.peer_epoch;
  resume.nonce = to_array<16>(rng().bytes(16));
  resume.mac = resume_request_mac(it->second.master_key, transfer_id,
                                  resume.initiator_address,
                                  resume.responder_epoch, resume.nonce);
  MeRequest req;
  req.type = MeMsgType::kSessionResume;
  req.id = transfer_id;
  req.payload = resume.serialize();
  auto raw = net->rpc(destination_address + "/me", req.serialize());
  // Transport failure says nothing about the peer's session table: keep
  // the cache (the fallback full handshake will fail the same way).
  if (!raw.ok()) return raw.status();
  auto resp = MeResponse::deserialize(raw.value());
  if (!resp.ok()) {
    peer_sessions_.erase(destination_address);
    return Status::kTampered;
  }
  if (resp.value().status != Status::kOk) {
    // The peer answered but refused: restart (empty acceptor table),
    // epoch bump, or MAC rejection.  All of them retire this entry.
    peer_sessions_.erase(destination_address);
    return resp.value().status;
  }
  auto reply = SessionResumeReply::deserialize(resp.value().payload);
  if (!reply.ok()) {
    peer_sessions_.erase(destination_address);
    return Status::kTampered;
  }
  const crypto::CmacTag expected =
      resume_reply_mac(it->second.master_key, transfer_id, resume.nonce,
                       reply.value().nonce);
  if (!constant_time_eq(expected, reply.value().mac)) {
    peer_sessions_.erase(destination_address);
    return Status::kMacMismatch;
  }
  const sgx::Key128 key = derive_resume_key(it->second.master_key,
                                            transfer_id, resume.nonce,
                                            reply.value().nonce);
  ++resumed_handshakes_;
  if (obs::Observability* obs = enabled_obs(platform())) {
    obs->metrics.add("me.handshake.resumed");
  }
  return net::SecureChannel(key, net::SecureChannel::Role::kInitiator);
}

MeResponse MigrationEnclave::on_session_resume(const MeRequest& req) {
  auto parsed = SessionResumeRequest::deserialize(req.payload);
  if (!parsed.ok()) return error_response(Status::kTampered);
  const SessionResumeRequest& resume = parsed.value();
  const auto it = resume_acceptors_.find(resume.initiator_address);
  if (it == resume_acceptors_.end()) {
    // Acceptors are memory-only BY DESIGN: a restarted ME cannot prove it
    // never forked the old session's state, so it forces the initiator
    // back through the full handshake.
    return error_response(Status::kInvalidState);
  }
  if (resume.responder_epoch != instance_epoch_) {
    resume_acceptors_.erase(it);
    return error_response(Status::kInvalidState);
  }
  const crypto::CmacTag expected = resume_request_mac(
      it->second.master_key, req.id, resume.initiator_address,
      resume.responder_epoch, resume.nonce);
  if (!constant_time_eq(expected, resume.mac)) {
    // A forged/tampered resume retires the acceptor: worst case the
    // legitimate initiator is downgraded to a full handshake.
    resume_acceptors_.erase(it);
    return error_response(Status::kMacMismatch);
  }
  // A colliding conversation id must not clobber a live inbound transfer.
  if (inbound_.count(req.id) != 0) {
    return error_response(Status::kAlreadyExists);
  }
  SessionResumeReply reply;
  reply.nonce = to_array<16>(rng().bytes(16));
  reply.mac = resume_reply_mac(it->second.master_key, req.id, resume.nonce,
                               reply.nonce);
  InboundTransfer inbound;
  inbound.authenticated = true;
  inbound.source_region = it->second.source_region;
  inbound.source_address = it->second.source_address;
  inbound.channel.emplace(
      derive_resume_key(it->second.master_key, req.id, resume.nonce,
                        reply.nonce),
      net::SecureChannel::Role::kResponder);
  inbound_[req.id] = std::move(inbound);
  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = reply.serialize();
  return resp;
}

Status MigrationEnclave::dedup_against_queue(
    const sgx::Measurement& source_mr, uint64_t nonce,
    const std::string& destination_address) {
  // Exactly-once dedup: a library whose previous attempt's REPLY was lost
  // re-sends the same request (same nonce, same destination — the library
  // draws a fresh nonce when it re-routes).  If that attempt already
  // retained (or even completed) a transfer, report success instead of
  // shipping the data a second time.
  if (nonce == 0) return Status::kNoPendingMigration;
  for (const auto& [id, transfer] : outgoing_) {
    if (transfer.source_mr == source_mr && transfer.request_nonce == nonce &&
        transfer.destination_address == destination_address) {
      // Re-fence before acking: if the original attempt's persist
      // failed, this success must not stand on a non-durable entry.
      return persist_queue();
    }
  }
  for (const auto& [id, record] : completed_outgoing_) {
    if (record.source_mr == source_mr && record.request_nonce == nonce) {
      return Status::kOk;
    }
  }
  return Status::kNoPendingMigration;
}

Status MigrationEnclave::run_outgoing(sgx::Measurement source_mr,
                                      const MigrateRequestPayload& request) {
  auto* net = platform().network();
  if (net == nullptr) return Status::kNetworkUnreachable;
  if (request.destination_address == platform().address()) {
    return Status::kInvalidParameter;
  }
  const Status dedup = dedup_against_queue(source_mr, request.request_nonce,
                                           request.destination_address);
  if (dedup != Status::kNoPendingMigration) return dedup;
  // A queued TransferTask for this nonce (caller mixed the non-blocking
  // and blocking APIs) is superseded by this synchronous attempt: left
  // alive, both paths would retain the same transfer once each.  Any
  // record the dead task already put on the wire re-ships the same nonce,
  // which the destination supersedes idempotently — never a fork.
  if (request.request_nonce != 0) {
    const auto task = transfer_tasks_.find(request.request_nonce);
    if (task != transfer_tasks_.end() && task->second.source_mr == source_mr) {
      transfer_tasks_.erase(task);
      const Status persisted = persist_queue();
      if (persisted != Status::kOk) return persisted;
    }
  }
  const std::string dest_endpoint = request.destination_address + "/me";
  const uint64_t transfer_id = fresh_id();
  // An id collision must never clobber a live retained transfer (or a
  // completion record a duplicate DONE may still reference).  kAlreadyExists
  // classifies retryable-busy: the caller retries and draws a fresh id.
  if (outgoing_.count(transfer_id) != 0 ||
      completed_outgoing_.count(transfer_id) != 0) {
    return Status::kAlreadyExists;
  }

  auto attested = attest_peer_me(request.destination_address, transfer_id,
                                 request.policy);
  if (!attested.ok()) return attested.status();

  // --- transfer over the attestation-derived channel ---
  net::SecureChannel channel = std::move(attested).value();
  TransferPayload payload;
  payload.source_mr_enclave = source_mr;
  payload.source_me_address = platform().address();
  payload.request_nonce = request.request_nonce;
  payload.data = request.data;
  const Bytes payload_bytes = payload.serialize();
  charge_gcm(payload_bytes.size());
  MeRequest t;
  t.type = MeMsgType::kTransfer;
  t.id = transfer_id;
  t.payload = channel.seal_record(payload_bytes);
  auto raw_t = net->rpc(dest_endpoint, t.serialize());
  if (!raw_t.ok()) return raw_t.status();
  auto resp_t = MeResponse::deserialize(raw_t.value());
  if (!resp_t.ok()) return Status::kTampered;
  if (resp_t.value().status != Status::kOk) return resp_t.value().status;
  auto ack = channel.open_record(resp_t.value().payload);
  if (!ack.ok()) return ack.status();
  if (to_string(ack.value()) != kAcceptedMarker) return Status::kTampered;

  // Retain the data until the destination confirms delivery (paper §V-D),
  // durably: the retained copy and the channel that will authenticate the
  // DONE must both survive an ME restart.
  OutgoingTransfer transfer;
  transfer.source_mr = source_mr;
  transfer.destination_address = request.destination_address;
  transfer.request_nonce = request.request_nonce;
  transfer.retained_data = request.data.serialize();
  transfer.channel = std::move(channel);
  transfer.sequence = next_outgoing_sequence_++;
  latest_outgoing_[source_mr] = {transfer.sequence, OutgoingState::kPending};
  outgoing_[transfer_id] = std::move(transfer);
  return persist_queue();
}

// ----- pipelined outgoing transfers (TransferTask step machine) -----
//
// The same protocol as run_outgoing, decomposed at its network round
// trips: each step parses the previous reply, advances the task, and
// posts the next message through the deferred-delivery pump.  N tasks
// interleave over independent RA channels; the source ME's compute still
// serializes (one enclave), but wire latency and the destination MEs'
// work genuinely overlap — which is what turns the orchestrator's
// in-flight cap into a throughput lever.

LibMsg MigrationEnclave::on_migrate_enqueue(LaSessionState& session,
                                            const LibMsg& msg) {
  LibMsg reply;
  reply.type = LibMsgType::kError;
  auto request = MigrateRequestPayload::deserialize(msg.payload);
  if (!request.ok()) {
    reply.status = Status::kTampered;
    return reply;
  }
  const uint64_t nonce = request.value().request_nonce;
  if (nonce == 0 ||
      request.value().destination_address == platform().address()) {
    // The pipeline is built on nonce-scoped exactly-once semantics;
    // legacy nonce-less callers must use the blocking path.
    reply.status = Status::kInvalidParameter;
    return reply;
  }
  const sgx::Measurement& mr = session.peer.mr_enclave;
  // Already retained/completed (re-sent enqueue after a lost reply):
  // idempotent queue — the poll will observe kAccepted.
  const Status dedup =
      dedup_against_queue(mr, nonce, request.value().destination_address);
  if (dedup != Status::kNoPendingMigration) {
    reply.type = dedup == Status::kOk ? LibMsgType::kMigrateQueued
                                      : LibMsgType::kError;
    reply.status = dedup;
    return reply;
  }
  const auto existing = transfer_tasks_.find(nonce);
  if (existing != transfer_tasks_.end()) {
    if (!(existing->second.source_mr == mr)) {
      reply.status = Status::kAlreadyExists;  // foreign nonce collision
      return reply;
    }
    if (existing->second.request.destination_address !=
        request.value().destination_address) {
      // One nonce binds one (attempt, destination): the library draws a
      // fresh nonce on every re-route, so a destination mismatch is a
      // broken client.  Honoring it would also desync the durable task
      // (which resurrects with the OLD destination after a restart).
      reply.status = Status::kInvalidParameter;
      return reply;
    }
    if (existing->second.step == TransferTask::Step::kFailed) {
      // An unpolled stale failure superseded by a retry of the same
      // attempt: restart it.  The durable form (nonce, mr, request) is
      // unchanged — tasks persist as kQueued — so no re-fence is needed
      // before the ack.
      existing->second.step = TransferTask::Step::kQueued;
      existing->second.failure = Status::kOk;
      existing->second.ra.reset();
      existing->second.channel.reset();
      kick_task(nonce);
    }
    // Mid-flight: idempotent re-queue.
    reply.type = LibMsgType::kMigrateQueued;
    reply.status = Status::kOk;
    return reply;
  }
  TransferTask task;
  task.source_mr = mr;
  task.request = std::move(request).value();
  transfer_tasks_[nonce] = std::move(task);
  // Durable BEFORE the queued ack: a restarted ME must resume this
  // pipeline — the library holds no copy of the conversation, only the
  // right to poll its fate.
  const Status persisted = persist_queue();
  if (persisted != Status::kOk) {
    transfer_tasks_.erase(nonce);
    reply.status = persisted;
    return reply;
  }
  kick_task(nonce);
  reply.type = LibMsgType::kMigrateQueued;
  reply.status = Status::kOk;
  return reply;
}

LibMsg MigrationEnclave::on_migrate_reserve(LaSessionState& session,
                                            const LibMsg& msg) {
  // Enqueue-without-freeze: the library reserves a transfer slot while the
  // enclave keeps running.  The task attests ahead of time and then parks
  // at kAwaitArm; the poll reports kSlotLive and only then does the
  // library freeze, collect, and arm the payload.
  LibMsg reply;
  reply.type = LibMsgType::kError;
  auto parsed = MigrateReservePayload::deserialize(msg.payload);
  if (!parsed.ok()) {
    reply.status = Status::kTampered;
    return reply;
  }
  const uint64_t nonce = parsed.value().request_nonce;
  if (nonce == 0 ||
      parsed.value().destination_address == platform().address()) {
    reply.status = Status::kInvalidParameter;
    return reply;
  }
  const sgx::Measurement& mr = session.peer.mr_enclave;
  const Status dedup =
      dedup_against_queue(mr, nonce, parsed.value().destination_address);
  if (dedup != Status::kNoPendingMigration) {
    reply.type = dedup == Status::kOk ? LibMsgType::kMigrateQueued
                                      : LibMsgType::kError;
    reply.status = dedup;
    return reply;
  }
  const auto existing = transfer_tasks_.find(nonce);
  if (existing != transfer_tasks_.end()) {
    if (!(existing->second.source_mr == mr)) {
      reply.status = Status::kAlreadyExists;  // foreign nonce collision
      return reply;
    }
    if (existing->second.request.destination_address !=
        parsed.value().destination_address) {
      reply.status = Status::kInvalidParameter;
      return reply;
    }
    if (existing->second.step == TransferTask::Step::kFailed) {
      existing->second.step = TransferTask::Step::kQueued;
      existing->second.failure = Status::kOk;
      existing->second.ra.reset();
      existing->second.channel.reset();
      kick_task(nonce);
    }
    reply.type = LibMsgType::kMigrateQueued;
    reply.status = Status::kOk;
    return reply;
  }
  TransferTask task;
  task.source_mr = mr;
  task.armed = false;
  task.request.destination_address = parsed.value().destination_address;
  task.request.request_nonce = nonce;
  task.request.policy = parsed.value().policy;
  transfer_tasks_[nonce] = std::move(task);
  const Status persisted = persist_queue();
  if (persisted != Status::kOk) {
    transfer_tasks_.erase(nonce);
    reply.status = persisted;
    return reply;
  }
  kick_task(nonce);
  reply.type = LibMsgType::kMigrateQueued;
  reply.status = Status::kOk;
  return reply;
}

LibMsg MigrationEnclave::on_migrate_arm(LaSessionState& session,
                                        const LibMsg& msg) {
  LibMsg reply;
  reply.type = LibMsgType::kError;
  auto request = MigrateRequestPayload::deserialize(msg.payload);
  if (!request.ok()) {
    reply.status = Status::kTampered;
    return reply;
  }
  const uint64_t nonce = request.value().request_nonce;
  if (nonce == 0) {
    reply.status = Status::kInvalidParameter;
    return reply;
  }
  const sgx::Measurement& mr = session.peer.mr_enclave;
  const auto it = transfer_tasks_.find(nonce);
  if (it == transfer_tasks_.end()) {
    // An arm re-sent after a lost ack may find the task already dissolved
    // into a retained/completed transfer: idempotent success.
    const Status dedup =
        dedup_against_queue(mr, nonce, request.value().destination_address);
    if (dedup == Status::kOk) {
      reply.type = LibMsgType::kArmAck;
      reply.status = Status::kOk;
      return reply;
    }
    reply.status = dedup;
    return reply;
  }
  if (!(it->second.source_mr == mr)) {
    reply.status = Status::kAlreadyExists;
    return reply;
  }
  if (it->second.request.destination_address !=
      request.value().destination_address) {
    reply.status = Status::kInvalidParameter;
    return reply;
  }
  TransferTask& task = it->second;
  if (task.armed && task.step == TransferTask::Step::kAwaitAccept) {
    // Duplicate arm while the payload is already on the wire.
    reply.type = LibMsgType::kArmAck;
    reply.status = Status::kOk;
    return reply;
  }
  MigrationData previous = std::move(task.request.data);
  const bool was_armed = task.armed;
  task.request.data = std::move(request).value().data;
  task.armed = true;
  // Durable BEFORE the ack: the armed payload is the state the library
  // just destroyed its live instance for.
  const Status persisted = persist_queue();
  if (persisted != Status::kOk) {
    task.request.data = std::move(previous);
    task.armed = was_armed;
    reply.status = persisted;
    return reply;
  }
  if (task.step == TransferTask::Step::kAwaitArm) {
    ship_task_payload(nonce, task);
  }
  // Still attesting (e.g. after an ME restart collapsed the task to
  // kQueued): task_attested ships the armed payload when the channel is
  // ready.  A kFailed task keeps its failure for the next poll.
  reply.type = LibMsgType::kArmAck;
  reply.status = Status::kOk;
  return reply;
}

size_t MigrationEnclave::pump() {
  auto scope = enter_ecall();
  size_t live = 0;
  std::vector<uint64_t> queued;
  for (const auto& [nonce, task] : transfer_tasks_) {
    if (task.step == TransferTask::Step::kQueued) queued.push_back(nonce);
    if (task.step != TransferTask::Step::kFailed) ++live;
  }
  for (const uint64_t nonce : queued) kick_task(nonce);
  if (async_precopy_) {
    // Idle pre-copy attempts get their next hop (re)posted — a round
    // record, or the staged finalize once the library committed one.
    std::vector<uint64_t> idle;
    for (const auto& [nonce, attempt] : precopy_outgoing_) {
      if (attempt.ship_step == PrecopyOutgoing::ShipStep::kIdle) {
        idle.push_back(nonce);
      }
    }
    for (const uint64_t nonce : idle) kick_precopy_ship(nonce);
    // In-flight ships AND attempts still holding a staged finalize count
    // as live work so the driver keeps pumping this ME.
    for (const auto& [nonce, attempt] : precopy_outgoing_) {
      if (attempt.ship_step != PrecopyOutgoing::ShipStep::kIdle ||
          attempt.staged_finalize.has_value()) {
        ++live;
      }
    }
  }
  return live;
}

void MigrationEnclave::kick_task(uint64_t nonce) {
  const auto it = transfer_tasks_.find(nonce);
  if (it == transfer_tasks_.end() ||
      it->second.step != TransferTask::Step::kQueued) {
    return;
  }
  TransferTask& task = it->second;
  auto* net = platform().network();
  if (net == nullptr) {
    fail_task(nonce, Status::kNetworkUnreachable);
    return;
  }
  const uint64_t transfer_id = fresh_id();
  // An id collision must never clobber live conversation state; the
  // retryable-busy failure surfaces through the poll and the retry draws
  // a fresh id (mirrors run_outgoing).
  if (outgoing_.count(transfer_id) != 0 ||
      completed_outgoing_.count(transfer_id) != 0 ||
      inbound_.count(transfer_id) != 0) {
    fail_task(nonce, Status::kAlreadyExists);
    return;
  }
  task.transfer_id = transfer_id;
  const auto cached = peer_sessions_.find(task.request.destination_address);
  if (cached != peer_sessions_.end()) {
    // Migration policy against the CACHED provider-certified credential —
    // a denial here is as authoritative as one from a fresh handshake.
    const Status policy_status =
        task.request.policy.evaluate(cached->second.credential);
    if (policy_status != Status::kOk) {
      fail_task(nonce, policy_status);
      return;
    }
    SessionResumeRequest resume;
    resume.initiator_address = platform().address();
    resume.responder_epoch = cached->second.peer_epoch;
    resume.nonce = to_array<16>(rng().bytes(16));
    resume.mac = resume_request_mac(cached->second.master_key, transfer_id,
                                    resume.initiator_address,
                                    resume.responder_epoch, resume.nonce);
    MeRequest rr;
    rr.type = MeMsgType::kSessionResume;
    rr.id = transfer_id;
    rr.payload = resume.serialize();
    task.step = TransferTask::Step::kAwaitResume;
    trace_task_step(platform(), nonce, "await-resume");
    const std::array<uint8_t, 16> nonce_i = resume.nonce;
    net->post(task.request.destination_address + "/me", rr.serialize(),
              net_endpoint(),
              [this, nonce, nonce_i](Result<Bytes> raw) {
                task_on_resume(nonce, nonce_i, std::move(raw));
              });
    return;
  }
  task.ra = std::make_unique<sgx::RaSession>(platform(), identity(),
                                             sgx::RaSession::Role::kInitiator);
  MeRequest m1;
  m1.type = MeMsgType::kRaMsg1;
  m1.id = transfer_id;
  m1.payload = task.ra->create_msg1().serialize();
  task.step = TransferTask::Step::kAwaitRaMsg2;
  trace_task_step(platform(), nonce, "await-ra-msg2");
  net->post(task.request.destination_address + "/me", m1.serialize(),
            net_endpoint(),
            [this, nonce](Result<Bytes> raw) {
              task_on_ra_msg2(nonce, std::move(raw));
            });
}

Result<Bytes> MigrationEnclave::open_task_reply(const Result<Bytes>& raw) {
  if (!raw.ok()) return raw.status();
  auto resp = MeResponse::deserialize(raw.value());
  if (!resp.ok()) return Status::kTampered;
  if (resp.value().status != Status::kOk) return resp.value().status;
  return resp.value().payload;
}

void MigrationEnclave::task_on_ra_msg2(uint64_t nonce, Result<Bytes> raw) {
  auto scope = enter_ecall();
  const auto it = transfer_tasks_.find(nonce);
  if (it == transfer_tasks_.end() ||
      it->second.step != TransferTask::Step::kAwaitRaMsg2) {
    return;  // superseded (restart, re-kick) — the reply is stale
  }
  TransferTask& task = it->second;
  auto reply = open_task_reply(raw);
  if (!reply.ok()) return fail_task(nonce, reply.status());
  auto msg2 = sgx::RaMsg2::deserialize(reply.value());
  if (!msg2.ok()) return fail_task(nonce, Status::kTampered);
  auto msg3 = task.ra->handle_msg2(msg2.value());
  if (!msg3.ok()) return fail_task(nonce, msg3.status());
  // The destination ME must run exactly this ME's code (paper §VI-A).
  if (!(task.ra->peer_identity().mr_enclave == identity().mr_enclave)) {
    return fail_task(nonce, Status::kIdentityMismatch);
  }
  BinaryWriter m3_payload;
  m3_payload.bytes(msg3.value().serialize());
  m3_payload.bytes(make_provider_auth(task.ra->transcript_hash()).serialize());
  MeRequest m3;
  m3.type = MeMsgType::kRaMsg3;
  m3.id = task.transfer_id;
  m3.payload = m3_payload.take();
  task.step = TransferTask::Step::kAwaitAuth;
  trace_task_step(platform(), nonce, "await-auth");
  platform().network()->post(
      task.request.destination_address + "/me", m3.serialize(), net_endpoint(),
      [this, nonce](Result<Bytes> raw2) {
        task_on_auth(nonce, std::move(raw2));
      });
}

void MigrationEnclave::task_on_auth(uint64_t nonce, Result<Bytes> raw) {
  auto scope = enter_ecall();
  const auto it = transfer_tasks_.find(nonce);
  if (it == transfer_tasks_.end() ||
      it->second.step != TransferTask::Step::kAwaitAuth) {
    return;
  }
  TransferTask& task = it->second;
  auto reply = open_task_reply(raw);
  if (!reply.ok()) return fail_task(nonce, reply.status());
  BinaryReader r(reply.value());
  auto peer_auth = ProviderAuth::deserialize(r.bytes(1u << 16));
  if (!peer_auth.ok()) return fail_task(nonce, Status::kTampered);
  const uint64_t peer_epoch = r.u64();
  if (!r.done()) return fail_task(nonce, Status::kTampered);
  std::string peer_region;
  const Status auth_status = verify_provider_auth(
      peer_auth.value(), task.ra->transcript_hash(),
      task.request.destination_address, &peer_region);
  if (auth_status != Status::kOk) return fail_task(nonce, auth_status);
  // Migration policy against the destination's CERTIFIED attributes.
  const Status policy_status =
      task.request.policy.evaluate(peer_auth.value().credential);
  if (policy_status != Status::kOk) return fail_task(nonce, policy_status);

  task.channel.emplace(task.ra->session_key(),
                       net::SecureChannel::Role::kInitiator);
  cache_peer_session(task.request.destination_address, task.ra->session_key(),
                     peer_epoch, peer_auth.value().credential, peer_region);
  ++full_handshakes_;
  if (obs::Observability* obs = enabled_obs(platform())) {
    obs->metrics.add("me.handshake.full");
  }
  task_attested(nonce, task);
}

void MigrationEnclave::task_on_resume(uint64_t nonce,
                                      std::array<uint8_t, 16> nonce_i,
                                      Result<Bytes> raw) {
  auto scope = enter_ecall();
  const auto it = transfer_tasks_.find(nonce);
  if (it == transfer_tasks_.end() ||
      it->second.step != TransferTask::Step::kAwaitResume) {
    return;
  }
  TransferTask& task = it->second;
  // Transport failure: classify like the full path would (the fallback
  // handshake would hit the same dead wire), keeping the cache entry.
  if (!raw.ok()) return fail_task(nonce, raw.status());
  auto fallback = [&] {
    // Resume refused or unverifiable: retire the cache entry and restart
    // the attempt through the full handshake.
    peer_sessions_.erase(task.request.destination_address);
    task.step = TransferTask::Step::kQueued;
    trace_task_step(platform(), nonce, "requeued");
    task.ra.reset();
    task.channel.reset();
    kick_task(nonce);
  };
  auto resp = MeResponse::deserialize(raw.value());
  if (!resp.ok() || resp.value().status != Status::kOk) return fallback();
  auto reply = SessionResumeReply::deserialize(resp.value().payload);
  if (!reply.ok()) return fallback();
  const auto cached = peer_sessions_.find(task.request.destination_address);
  if (cached == peer_sessions_.end()) return fallback();
  const crypto::CmacTag expected =
      resume_reply_mac(cached->second.master_key, task.transfer_id, nonce_i,
                       reply.value().nonce);
  if (!constant_time_eq(expected, reply.value().mac)) return fallback();
  task.channel.emplace(
      derive_resume_key(cached->second.master_key, task.transfer_id, nonce_i,
                        reply.value().nonce),
      net::SecureChannel::Role::kInitiator);
  ++resumed_handshakes_;
  if (obs::Observability* obs = enabled_obs(platform())) {
    obs->metrics.add("me.handshake.resumed");
  }
  task_attested(nonce, task);
}

void MigrationEnclave::task_attested(uint64_t nonce, TransferTask& task) {
  task.ra.reset();
  if (!task.armed) {
    // Enqueue-without-freeze: hold the attested channel and let the next
    // poll report kSlotLive.  The library freezes, collects, and arms —
    // only then does the payload ship.
    task.step = TransferTask::Step::kAwaitArm;
    trace_task_step(platform(), nonce, "await-arm");
    return;
  }
  ship_task_payload(nonce, task);
}

void MigrationEnclave::ship_task_payload(uint64_t nonce, TransferTask& task) {
  TransferPayload payload;
  payload.source_mr_enclave = task.source_mr;
  payload.source_me_address = platform().address();
  payload.request_nonce = nonce;
  payload.data = task.request.data;
  const Bytes payload_bytes = payload.serialize();
  charge_gcm(payload_bytes.size());
  MeRequest t;
  t.type = MeMsgType::kTransfer;
  t.id = task.transfer_id;
  t.payload = task.channel->seal_record(payload_bytes);
  task.step = TransferTask::Step::kAwaitAccept;
  trace_task_step(platform(), nonce, "await-accept");
  platform().network()->post(
      task.request.destination_address + "/me", t.serialize(), net_endpoint(),
      [this, nonce](Result<Bytes> raw2) {
        task_on_accept(nonce, std::move(raw2));
      });
}

void MigrationEnclave::task_on_accept(uint64_t nonce, Result<Bytes> raw) {
  auto scope = enter_ecall();
  const auto it = transfer_tasks_.find(nonce);
  if (it == transfer_tasks_.end() ||
      it->second.step != TransferTask::Step::kAwaitAccept) {
    return;
  }
  TransferTask& task = it->second;
  auto reply = open_task_reply(raw);
  if (!reply.ok()) return fail_task(nonce, reply.status());
  auto ack = task.channel->open_record(reply.value());
  if (!ack.ok()) return fail_task(nonce, ack.status());
  if (to_string(ack.value()) != kAcceptedMarker) {
    return fail_task(nonce, Status::kTampered);
  }

  // Destination accepted: retain until DONE, durably — exactly the
  // run_outgoing tail.  The task dissolves into the retained transfer
  // BEFORE the snapshot is cut, so a restore never resurrects both (a
  // resumed task would re-ship a nonce that is already retained).
  const sgx::Measurement source_mr = task.source_mr;
  const uint64_t transfer_id = task.transfer_id;
  OutgoingTransfer transfer;
  transfer.source_mr = source_mr;
  transfer.destination_address = task.request.destination_address;
  transfer.request_nonce = nonce;
  transfer.retained_data = task.request.data.serialize();
  transfer.channel = std::move(task.channel);
  transfer.sequence = next_outgoing_sequence_++;
  const uint64_t sequence = transfer.sequence;
  latest_outgoing_[source_mr] = {sequence, OutgoingState::kPending};
  outgoing_[transfer_id] = std::move(transfer);
  // Moved, not copied: kept only for the rare persist-failure unwind.
  MigrateRequestPayload request = std::move(task.request);
  transfer_tasks_.erase(it);
  trace_task_step(platform(), nonce, "retained");
  const Status persisted = persist_queue();
  if (persisted != Status::kOk) {
    // The retained entry must not stand non-durable: unwind it AND the
    // per-identity index entry it brought (a dangling kPending there is
    // never evicted), then surface the failure through a terminal task
    // that still carries the real request — a restart resurrects it as
    // a well-formed kQueued retry, not an empty husk.
    outgoing_.erase(transfer_id);
    const auto latest = latest_outgoing_.find(source_mr);
    if (latest != latest_outgoing_.end() &&
        latest->second.first == sequence) {
      latest_outgoing_.erase(latest);
    }
    TransferTask failed;
    failed.source_mr = source_mr;
    failed.request = std::move(request);
    failed.step = TransferTask::Step::kFailed;
    failed.failure = persisted;
    transfer_tasks_[nonce] = std::move(failed);
  }
}

void MigrationEnclave::fail_task(uint64_t nonce, Status status) {
  const auto it = transfer_tasks_.find(nonce);
  if (it == transfer_tasks_.end()) return;
  it->second.step = TransferTask::Step::kFailed;
  it->second.failure = status;
  trace_task_step(platform(), nonce, "failed");
  it->second.ra.reset();
  it->second.channel.reset();
}

LibMsg MigrationEnclave::on_poll_transfer(LaSessionState& session,
                                          const LibMsg& msg) {
  LibMsg reply;
  reply.type = LibMsgType::kError;
  auto parsed = PollTransferPayload::deserialize(msg.payload);
  if (!parsed.ok()) {
    reply.status = Status::kTampered;
    return reply;
  }
  const uint64_t nonce = parsed.value().request_nonce;
  const sgx::Measurement& mr = session.peer.mr_enclave;
  TransferProgressPayload progress;
  const auto it = transfer_tasks_.find(nonce);
  if (it != transfer_tasks_.end() && it->second.source_mr == mr) {
    if (it->second.step == TransferTask::Step::kFailed) {
      progress.progress = TransferProgress::kFailed;
      progress.failure = it->second.failure;
      // The failure is consumed by this report: the library owns the
      // retry decision from here (possibly re-enqueueing under the same
      // nonce, or re-routing under a fresh one).  The consumption must
      // be durable like every other queue transition — a snapshot still
      // carrying the task would resurrect the abandoned attempt as
      // kQueued after a restart and re-ship it to a destination the
      // library may have left behind.
      TransferTask failed = std::move(it->second);
      transfer_tasks_.erase(it);
      const Status persisted = persist_queue();
      if (persisted != Status::kOk) {
        // Reinstate the WHOLE task (request included): a restart must
        // resurrect a well-formed kQueued retry, not an empty husk
        // whose re-kick would mask the original failure.
        transfer_tasks_[nonce] = std::move(failed);
        reply.status = persisted;
        return reply;
      }
    } else if (it->second.step == TransferTask::Step::kAwaitArm) {
      // Attested and parked: the enclave may freeze+collect+arm — but only
      // while the armed ship window has room.  Unpaced, every parked task
      // would freeze at once and then wait through the whole in-flight
      // window's serialized source-lane seals; paced, each freeze covers
      // little more than its own ship + accept.
      size_t armed_in_flight = 0;
      for (const auto& [n, t] : transfer_tasks_) {
        if (t.armed && t.step == TransferTask::Step::kAwaitAccept) {
          ++armed_in_flight;
        }
      }
      progress.progress = (arm_window_ == 0 || armed_in_flight < arm_window_)
                              ? TransferProgress::kSlotLive
                              : TransferProgress::kInFlight;
    } else {
      progress.progress = TransferProgress::kInFlight;
    }
  } else if (const auto pre = precopy_outgoing_.find(nonce);
             pre != precopy_outgoing_.end() &&
             pre->second.source_mr == mr &&
             pre->second.staged_finalize.has_value()) {
    // Async finalize still shipping (or awaiting its next kick): the
    // frozen library keeps polling.  An attempt WITHOUT a staged finalize
    // falls through to kNone — the ME restarted (or exhausted the ship
    // budget) and the library must re-drive the finalize synchronously.
    progress.progress = TransferProgress::kInFlight;
  } else {
    bool accepted = false;
    for (const auto& [id, transfer] : outgoing_) {
      if (transfer.source_mr == mr && transfer.request_nonce == nonce) {
        accepted = true;
        break;
      }
    }
    if (!accepted) {
      for (const auto& [id, record] : completed_outgoing_) {
        if (record.source_mr == mr && record.request_nonce == nonce) {
          accepted = true;
          break;
        }
      }
    }
    progress.progress =
        accepted ? TransferProgress::kAccepted : TransferProgress::kNone;
  }
  reply.type = LibMsgType::kTransferProgress;
  reply.status = Status::kOk;
  reply.payload = progress.serialize();
  return reply;
}

// ----- proactive abort on re-route -----

Status MigrationEnclave::abort_remote_pending(
    const sgx::Measurement& source_mr, uint64_t nonce,
    const std::string& destination_address) {
  auto* net = platform().network();
  if (net == nullptr) return Status::kNetworkUnreachable;
  if (nonce == 0 || destination_address.empty() ||
      destination_address == platform().address()) {
    return Status::kInvalidParameter;
  }
  // The abort authorizes the destination to delete migration state, so it
  // must arrive over a mutually attested, provider-authenticated channel
  // — the destination additionally checks the entry really originated
  // from THIS machine.
  const uint64_t abort_id = fresh_id();
  auto channel =
      attest_peer_me(destination_address, abort_id, MigrationPolicy{});
  if (!channel.ok()) return channel.status();
  AbortRequest request;
  request.source_mr_enclave = source_mr;
  request.request_nonce = nonce;
  MeRequest req;
  req.type = MeMsgType::kAbort;
  req.id = abort_id;
  req.payload = channel.value().seal_record(request.serialize());
  auto raw = net->rpc(destination_address + "/me", req.serialize());
  if (!raw.ok()) return raw.status();
  auto resp = MeResponse::deserialize(raw.value());
  if (!resp.ok()) return Status::kTampered;
  if (resp.value().status != Status::kOk) return resp.value().status;
  auto record = channel.value().open_record(resp.value().payload);
  if (!record.ok()) return record.status();
  BinaryReader r(record.value());
  const std::string marker = r.str(64);
  const uint8_t safe = r.u8();
  if (!r.done() || marker != kAbortMarker || safe > 1) {
    return Status::kTampered;
  }
  // safe == 0: the destination holds a DELIVERED entry for this nonce —
  // an instance may still confirm it, so nothing may be forgotten here.
  return safe == 1 ? Status::kOk : Status::kMigrationInProgress;
}

LibMsg MigrationEnclave::on_abort_stale(LaSessionState& session,
                                        const LibMsg& msg) {
  LibMsg reply;
  reply.type = LibMsgType::kError;
  auto parsed = AbortStalePayload::deserialize(msg.payload);
  if (!parsed.ok()) {
    reply.status = Status::kTampered;
    return reply;
  }
  const uint64_t nonce = parsed.value().request_nonce;
  const sgx::Measurement& mr = session.peer.mr_enclave;
  // The re-routed attempt's own source-side staging is orphaned too: an
  // abandoned pre-copy attempt or an unpolled/unfinished TransferTask for
  // this nonce will never finalize — drop them before telling the
  // destination.
  bool dropped = false;
  const auto precopy = precopy_outgoing_.find(nonce);
  if (precopy != precopy_outgoing_.end() && precopy->second.source_mr == mr) {
    precopy_outgoing_.erase(precopy);
    dropped = true;
  }
  const auto task = transfer_tasks_.find(nonce);
  if (task != transfer_tasks_.end() && task->second.source_mr == mr) {
    transfer_tasks_.erase(task);
    dropped = true;
  }
  if (dropped) {
    // Fence BEFORE the remote abort: if the local drop cannot be made
    // durable, do not expire the destination's copy either — a restart
    // would resurrect the dropped task and re-ship the abandoned
    // attempt, recreating the very orphan this path exists to prevent.
    const Status persisted = persist_queue();
    if (persisted != Status::kOk) {
      reply.status = persisted;
      return reply;
    }
  }
  // Best-effort remote expiry: a failure leaves the pull-based reconcile
  // sweep as the backstop, exactly as before.
  const Status remote = abort_remote_pending(
      mr, nonce, parsed.value().destination_address);
  bool wiped = false;
  if (remote == Status::kOk) {
    // The destination vouches it holds nothing undelivered for this
    // nonce: a retained copy of the abandoned attempt (its ACCEPTED
    // landed but the library never learned) has no one left to serve —
    // wipe it so a re-routed migration does not leak one retained
    // snapshot per abandoned destination.
    for (auto it = outgoing_.begin(); it != outgoing_.end();) {
      if (it->second.source_mr == mr && it->second.request_nonce == nonce) {
        secure_wipe(it->second.retained_data);
        // Keep the per-identity index consistent: an aborted attempt
        // must read as kNone (like a fresh ME), not linger as a
        // never-evictable kPending entry.  The re-routed attempt will
        // re-populate it with its own sequence.
        const auto latest = latest_outgoing_.find(mr);
        if (latest != latest_outgoing_.end() &&
            latest->second.first == it->second.sequence) {
          latest_outgoing_.erase(latest);
        }
        it = outgoing_.erase(it);
        wiped = true;
      } else {
        ++it;
      }
    }
  }
  reply.type = LibMsgType::kAbortAck;
  reply.status = remote;
  if (wiped) {
    // Fenced like every queue transition; on failure surface the persist
    // status instead of the remote verdict (the wiped entry resurrects
    // from the stale snapshot after a restart — the caller must not
    // read that as a clean abort).
    const Status persisted = persist_queue();
    if (persisted != Status::kOk) reply.status = persisted;
  }
  return reply;
}

MeResponse MigrationEnclave::on_abort(const MeRequest& req) {
  const auto it = inbound_.find(req.id);
  if (it == inbound_.end() || !it->second.authenticated) {
    return error_response(Status::kInvalidState);
  }
  auto plaintext = it->second.channel->open_record(req.payload);
  if (!plaintext.ok()) return error_response(plaintext.status());
  auto parsed = AbortRequest::deserialize(plaintext.value());
  if (!parsed.ok()) return error_response(Status::kTampered);
  const sgx::Measurement& mr = parsed.value().source_mr_enclave;
  const uint64_t nonce = parsed.value().request_nonce;
  const std::string& peer_address = it->second.source_address;

  // Only the ORIGINATING source ME may expire its own attempt, and never
  // once the data was handed to an enclave instance (the delivery pin's
  // fork prevention outranks everything).
  bool expired = false;
  bool delivered_block = false;
  const auto pending = pending_.find(mr);
  if (pending != pending_.end() && pending->second.request_nonce == nonce &&
      pending->second.source_me_address == peer_address) {
    if (pending->second.delivering_session == 0) {
      inbound_.erase(pending->second.transfer_id);
      pending_.erase(pending);
      expired = true;
    } else {
      delivered_block = true;
    }
  }
  const auto staging = precopy_staging_.find(mr);
  if (staging != precopy_staging_.end() &&
      staging->second.request_nonce == nonce &&
      staging->second.source_me_address == peer_address) {
    if (staging->second.transfer_id != req.id) {
      inbound_.erase(staging->second.transfer_id);
    }
    precopy_staging_.erase(staging);
    expired = true;
  }

  BinaryWriter w;
  w.str(kAbortMarker);
  // 1 = no undelivered entry remains (safe for the source to forget the
  // attempt); 0 = an instance fetched the data and may still confirm.
  w.u8(delivered_block ? 0 : 1);
  MeResponse resp;
  resp.status = Status::kOk;
  // Re-find: the erases above may have touched inbound_ (never this
  // one-shot entry, but keep the access defensive and obvious).
  const auto self = inbound_.find(req.id);
  if (self == inbound_.end() || !self->second.channel.has_value()) {
    return error_response(Status::kInvalidState);
  }
  resp.payload = self->second.channel->seal_record(w.data());
  // One-shot conversation, like reconcile.
  inbound_.erase(self);
  if (expired) {
    const Status persisted = persist_queue();
    if (persisted != Status::kOk) return error_response(persisted);
  }
  return resp;
}

size_t MigrationEnclave::sweep_stale_precopy_staging() {
  last_staging_sweep_ = platform().clock().now();
  if (precopy_staging_max_age_ == Duration::max()) return 0;
  size_t swept = 0;
  for (auto it = precopy_staging_.begin(); it != precopy_staging_.end();) {
    const Duration age =
        platform().clock().now() - it->second.last_update;
    if (age >= precopy_staging_max_age_) {
      // Staging is never handed to an enclave, so expiring it cannot
      // fork; a source that does come back re-ships the full set after
      // kPrecopyIncomplete.
      inbound_.erase(it->second.transfer_id);
      it = precopy_staging_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  if (swept > 0) persist_queue();
  return swept;
}

// ----- live pre-copy (source side) -----

Result<MigrationEnclave::PrecopyOutgoing*> MigrationEnclave::precopy_attempt(
    const sgx::Measurement& source_mr, const std::string& destination,
    uint64_t nonce, const MigrationPolicy& policy) {
  if (destination == platform().address() || nonce == 0) {
    return Status::kInvalidParameter;
  }
  auto it = precopy_outgoing_.find(nonce);
  if (it != precopy_outgoing_.end()) {
    // The nonce identifies one (identity, destination) attempt: the
    // library draws a fresh one on any re-route.
    if (!(it->second.source_mr == source_mr) ||
        it->second.destination_address != destination) {
      return Status::kInvalidParameter;
    }
  } else {
    PrecopyOutgoing attempt;
    attempt.source_mr = source_mr;
    attempt.destination_address = destination;
    precopy_outgoing_[nonce] = std::move(attempt);
    it = precopy_outgoing_.find(nonce);
  }
  if (!it->second.channel.has_value()) {
    // First contact, or the previous channel was dropped after a failed
    // send: attest afresh under a new transfer id and re-ship everything
    // merged so far (the destination converges by chunk generation no
    // matter which records were lost).
    const uint64_t transfer_id = fresh_id();
    if (inbound_.count(transfer_id) != 0 ||
        outgoing_.count(transfer_id) != 0) {
      return Status::kAlreadyExists;  // retryable-busy: draw a fresh id
    }
    auto channel = attest_peer_me(destination, transfer_id, policy);
    if (!channel.ok()) return channel.status();
    it->second.transfer_id = transfer_id;
    it->second.channel.emplace(std::move(channel).value());
    it->second.resync = it->second.rounds > 0;
  }
  return &it->second;
}

Status MigrationEnclave::precopy_send(
    PrecopyOutgoing& attempt, uint64_t nonce,
    const std::vector<CounterChunk>& fresh_chunks, uint32_t round,
    bool finalize, const std::vector<ChunkManifestEntry>& manifest,
    const sgx::Key128& msk) {
  auto* net = platform().network();
  if (net == nullptr) return Status::kNetworkUnreachable;
  for (const CounterChunk& chunk : fresh_chunks) {
    auto merged = attempt.merged.find(chunk.index);
    if (merged == attempt.merged.end() ||
        merged->second.generation <= chunk.generation) {
      attempt.merged[chunk.index] = chunk;
    }
  }
  std::vector<CounterChunk> to_send;
  if (attempt.resync) {
    for (const auto& [index, chunk] : attempt.merged) to_send.push_back(chunk);
  } else {
    to_send = fresh_chunks;
  }

  Bytes record;
  if (finalize) {
    PrecopyFinalizeRecord fin;
    fin.source_mr_enclave = attempt.source_mr;
    fin.source_me_address = platform().address();
    fin.request_nonce = nonce;
    fin.round = round;
    fin.chunks = std::move(to_send);
    fin.manifest = manifest;
    fin.msk = msk;
    record = fin.serialize();
  } else {
    PrecopyChunkRecord chunk_record;
    chunk_record.source_mr_enclave = attempt.source_mr;
    chunk_record.source_me_address = platform().address();
    chunk_record.request_nonce = nonce;
    chunk_record.round = round;
    chunk_record.chunks = std::move(to_send);
    record = chunk_record.serialize();
  }
  charge_gcm(record.size());
  MeRequest req;
  req.type = finalize ? MeMsgType::kPrecopyFinalize : MeMsgType::kPrecopyChunk;
  req.id = attempt.transfer_id;
  req.payload = attempt.channel->seal_record(record);
  auto raw = net->rpc(attempt.destination_address + "/me", req.serialize());
  Status failure = Status::kOk;
  Bytes ack_payload;
  if (!raw.ok()) {
    failure = raw.status();
  } else {
    auto resp = MeResponse::deserialize(raw.value());
    if (!resp.ok()) {
      failure = Status::kTampered;
    } else if (resp.value().status != Status::kOk) {
      // An authenticated-looking error reply: kPrecopyIncomplete is a
      // protocol answer (the ML re-ships the full set), everything else
      // still desyncs the channel (our send advanced the sequence).
      failure = resp.value().status;
    } else {
      ack_payload = resp.value().payload;
    }
  }
  if (failure == Status::kOk) {
    auto ack = attempt.channel->open_record(ack_payload);
    if (!ack.ok()) {
      failure = ack.status();
    } else if (to_string(ack.value()) !=
               (finalize ? kPrecopyFinMarker : kPrecopyAckMarker)) {
      failure = Status::kTampered;
    }
  }
  if (failure != Status::kOk) {
    // The channel may have desynced (our seal advanced the send sequence,
    // or the peer's ack advanced its own): drop it so the next attempt
    // re-attests and re-ships the merged set.  The merged state itself is
    // kept — and persisted — so an ME restart resumes the pre-copy.
    attempt.channel.reset();
    attempt.resync = true;
    persist_queue();
    return failure;
  }
  attempt.resync = false;
  ++attempt.rounds;
  return Status::kOk;
}

LibMsg MigrationEnclave::on_precopy_round(LaSessionState& session,
                                          const LibMsg& msg) {
  LibMsg reply;
  reply.type = LibMsgType::kError;
  auto parsed = PrecopyRoundPayload::deserialize(msg.payload);
  if (!parsed.ok()) {
    reply.status = Status::kTampered;
    return reply;
  }
  const PrecopyRoundPayload& round = parsed.value();
  auto attempt = precopy_attempt(session.peer.mr_enclave,
                                 round.destination_address,
                                 round.request_nonce, round.policy);
  if (!attempt.ok()) {
    reply.status = attempt.status();
    return reply;
  }
  if (async_precopy_) {
    // Pipelined round hop: merge+persist now, ack the library immediately,
    // and ship the round to the destination through the deferred-delivery
    // pump — rounds of different enclaves overlap on the source lane.  The
    // ack means "merged and durable at the SOURCE ME"; the synchronous
    // finalize still proves end-to-end completeness via the manifest.
    PrecopyOutgoing& live = *attempt.value();
    for (const CounterChunk& chunk : round.chunks) {
      auto merged = live.merged.find(chunk.index);
      if (merged == live.merged.end() ||
          merged->second.generation <= chunk.generation) {
        live.merged[chunk.index] = chunk;
      }
    }
    const Status persisted = persist_queue();
    if (persisted != Status::kOk) {
      reply.status = persisted;
      return reply;
    }
    kick_precopy_ship(round.request_nonce);
    reply.type = LibMsgType::kPrecopyAck;
    reply.status = Status::kOk;
    return reply;
  }
  Status sent =
      precopy_send(*attempt.value(), round.request_nonce, round.chunks,
                   round.round, /*finalize=*/false, {}, sgx::Key128{});
  if (sent == Status::kInvalidState) {
    // The destination no longer knows this conversation (its staging was
    // aged out, or its queue wiped): precopy_send already dropped the
    // channel, so one fresh attempt re-attests under a new transfer id
    // and re-ships the whole merged set.
    attempt = precopy_attempt(session.peer.mr_enclave,
                              round.destination_address, round.request_nonce,
                              round.policy);
    if (attempt.ok()) {
      sent = precopy_send(*attempt.value(), round.request_nonce, round.chunks,
                          round.round, /*finalize=*/false, {}, sgx::Key128{});
    } else {
      sent = attempt.status();
    }
  }
  if (sent != Status::kOk) {
    reply.status = sent;
    return reply;
  }
  const Status persisted = persist_queue();
  if (persisted != Status::kOk) {
    reply.status = persisted;
    return reply;
  }
  reply.type = LibMsgType::kPrecopyAck;
  reply.status = Status::kOk;
  return reply;
}

void MigrationEnclave::kick_precopy_ship(uint64_t nonce) {
  const auto it = precopy_outgoing_.find(nonce);
  if (it == precopy_outgoing_.end()) return;
  PrecopyOutgoing& attempt = it->second;
  if (attempt.ship_step != PrecopyOutgoing::ShipStep::kIdle) return;
  if (attempt.staged_finalize.has_value()) {
    // The library already committed the finalize: further round hops are
    // moot — everything unacked rides inside the finalize record.
    kick_precopy_finalize(nonce);
    return;
  }
  // No channel means the last ship failed (or the ME restarted): the next
  // library round or the finalize re-attests synchronously and resyncs.
  if (!attempt.channel.has_value()) return;
  auto* net = platform().network();
  if (net == nullptr) return;
  // One record per attempt in flight at a time (the channel's record
  // sequence demands ordering); ship everything merged beyond what the
  // destination has acked.
  std::vector<CounterChunk> to_send;
  std::vector<ChunkManifestEntry> shipped;
  for (const auto& [index, chunk] : attempt.merged) {
    const auto acked = attempt.acked.find(index);
    if (attempt.resync || acked == attempt.acked.end() ||
        acked->second < chunk.generation) {
      to_send.push_back(chunk);
      ChunkManifestEntry entry;
      entry.index = index;
      entry.generation = chunk.generation;
      shipped.push_back(entry);
    }
  }
  if (to_send.empty()) return;
  PrecopyChunkRecord record;
  record.source_mr_enclave = attempt.source_mr;
  record.source_me_address = platform().address();
  record.request_nonce = nonce;
  record.round = attempt.rounds;
  record.chunks = std::move(to_send);
  const Bytes record_bytes = record.serialize();
  charge_gcm(record_bytes.size());
  MeRequest req;
  req.type = MeMsgType::kPrecopyChunk;
  req.id = attempt.transfer_id;
  req.payload = attempt.channel->seal_record(record_bytes);
  attempt.ship_step = PrecopyOutgoing::ShipStep::kAwaitRoundAck;
  const uint64_t transfer_id = attempt.transfer_id;
  net->post(attempt.destination_address + "/me", req.serialize(),
            net_endpoint(),
            [this, nonce, transfer_id,
             shipped = std::move(shipped)](Result<Bytes> raw) {
              precopy_on_round_ack(nonce, transfer_id, shipped,
                                   std::move(raw));
            });
}

void MigrationEnclave::precopy_on_round_ack(
    uint64_t nonce, uint64_t transfer_id,
    const std::vector<ChunkManifestEntry>& shipped, Result<Bytes> raw) {
  auto scope = enter_ecall();
  const auto it = precopy_outgoing_.find(nonce);
  if (it == precopy_outgoing_.end()) return;  // finalized/aborted meanwhile
  PrecopyOutgoing& attempt = it->second;
  if (attempt.ship_step != PrecopyOutgoing::ShipStep::kAwaitRoundAck ||
      attempt.transfer_id != transfer_id) {
    return;  // superseded by a finalize resync or re-attest — stale ack
  }
  attempt.ship_step = PrecopyOutgoing::ShipStep::kIdle;
  Status failure = Status::kOk;
  auto reply = open_task_reply(raw);
  if (!reply.ok()) {
    failure = reply.status();
  } else if (!attempt.channel.has_value()) {
    failure = Status::kInvalidState;
  } else {
    auto ack = attempt.channel->open_record(reply.value());
    if (!ack.ok()) {
      failure = ack.status();
    } else if (to_string(ack.value()) != kPrecopyAckMarker) {
      failure = Status::kTampered;
    }
  }
  if (failure != Status::kOk) {
    // Same recovery as the synchronous path: the channel may have
    // desynced, so drop it and resync over a fresh attestation on the
    // next round or the finalize.  Merged state stays durable.
    attempt.channel.reset();
    attempt.resync = true;
    persist_queue();
    return;
  }
  attempt.resync = false;
  ++attempt.rounds;
  for (const ChunkManifestEntry& entry : shipped) {
    auto acked = attempt.acked.find(entry.index);
    if (acked == attempt.acked.end() || acked->second < entry.generation) {
      attempt.acked[entry.index] = entry.generation;
    }
  }
  // No re-seal here: rounds/acked/channel-sequence are reconstruction
  // state.  A restart restores the pre-ack snapshot, the stale channel
  // sequence fails the next record, and the resync path re-ships the full
  // merged set — the merge-side persist (durable-before-ack) already
  // holds every chunk.  Sealing the whole queue once more per round ack
  // would put O(queue) GCM work on the source lane's critical path.
  // Rounds merged while this one was on the wire ship immediately — or
  // the finalize, if the library committed one meanwhile.
  kick_precopy_ship(nonce);
}

namespace {
// How often the async ship re-posts a failed finalize (re-attesting each
// time) before handing the attempt back to the library's sync fallback.
constexpr uint32_t kFinalizeShipAttempts = 3;
}  // namespace

void MigrationEnclave::kick_precopy_finalize(uint64_t nonce) {
  const auto it = precopy_outgoing_.find(nonce);
  if (it == precopy_outgoing_.end()) return;
  PrecopyOutgoing& attempt = it->second;
  if (!attempt.staged_finalize.has_value()) return;
  if (attempt.ship_step != PrecopyOutgoing::ShipStep::kIdle) return;
  auto* net = platform().network();
  if (net == nullptr) return;
  if (!attempt.channel.has_value()) {
    // The previous ship failed (or a round desynced the channel): one
    // synchronous re-attest, bounded by the ship budget — precopy_attempt
    // flips resync on, so the re-post carries the whole merged set.
    auto fresh =
        precopy_attempt(attempt.source_mr, attempt.destination_address, nonce,
                        attempt.staged_finalize->policy);
    if (!fresh.ok()) {
      if (++attempt.finalize_attempts >= kFinalizeShipAttempts) {
        // Hand back to the library: its poll observes kNone and the still
        // frozen enclave re-drives the finalize synchronously (dedup'd).
        attempt.staged_finalize.reset();
      }
      return;
    }
  }
  // Everything merged beyond the destination's acked front rides inside
  // the finalize record (on resync: the whole merged set); the manifest
  // check at the destination proves completeness either way.
  std::vector<CounterChunk> to_send;
  for (const auto& [index, chunk] : attempt.merged) {
    const auto acked = attempt.acked.find(index);
    if (attempt.resync || acked == attempt.acked.end() ||
        acked->second < chunk.generation) {
      to_send.push_back(chunk);
    }
  }
  PrecopyFinalizeRecord record;
  record.source_mr_enclave = attempt.source_mr;
  record.source_me_address = platform().address();
  record.request_nonce = nonce;
  record.round = attempt.staged_finalize->round;
  record.chunks = std::move(to_send);
  record.manifest = attempt.staged_finalize->manifest;
  record.msk = attempt.staged_finalize->msk;
  const Bytes record_bytes = record.serialize();
  charge_gcm(record_bytes.size());
  MeRequest req;
  req.type = MeMsgType::kPrecopyFinalize;
  req.id = attempt.transfer_id;
  req.payload = attempt.channel->seal_record(record_bytes);
  attempt.ship_step = PrecopyOutgoing::ShipStep::kAwaitFinalizeAck;
  const uint64_t transfer_id = attempt.transfer_id;
  net->post(attempt.destination_address + "/me", req.serialize(),
            net_endpoint(), [this, nonce, transfer_id](Result<Bytes> raw) {
              precopy_on_finalize_ack(nonce, transfer_id, std::move(raw));
            });
}

void MigrationEnclave::precopy_on_finalize_ack(uint64_t nonce,
                                               uint64_t transfer_id,
                                               Result<Bytes> raw) {
  auto scope = enter_ecall();
  const auto it = precopy_outgoing_.find(nonce);
  if (it == precopy_outgoing_.end()) return;  // aborted meanwhile
  PrecopyOutgoing& attempt = it->second;
  if (attempt.ship_step != PrecopyOutgoing::ShipStep::kAwaitFinalizeAck ||
      attempt.transfer_id != transfer_id) {
    return;  // superseded by a resync re-attest — stale ack
  }
  attempt.ship_step = PrecopyOutgoing::ShipStep::kIdle;
  if (!attempt.staged_finalize.has_value()) return;
  Status failure = Status::kOk;
  auto reply = open_task_reply(raw);
  if (!reply.ok()) {
    failure = reply.status();
  } else if (!attempt.channel.has_value()) {
    failure = Status::kInvalidState;
  } else {
    auto ack = attempt.channel->open_record(reply.value());
    if (!ack.ok()) {
      failure = ack.status();
    } else if (to_string(ack.value()) != kPrecopyFinMarker) {
      failure = Status::kTampered;
    }
  }
  if (failure != Status::kOk) {
    // kPrecopyIncomplete included: resync re-ships the full merged set
    // under a fresh attestation on the next pump kick.  Past the ship
    // budget, hand the attempt back to the library's sync fallback.
    attempt.channel.reset();
    attempt.resync = true;
    if (++attempt.finalize_attempts >= kFinalizeShipAttempts) {
      attempt.staged_finalize.reset();
    }
    persist_queue();
    return;
  }
  const PrecopyFinalizePayload fin = std::move(*attempt.staged_finalize);
  const sgx::Measurement source_mr = attempt.source_mr;
  // Invalidates `attempt`; the library's poll now observes kAccepted.
  (void)finish_precopy_outgoing(source_mr, fin);
}

Status MigrationEnclave::finish_precopy_outgoing(
    const sgx::Measurement& source_mr, const PrecopyFinalizePayload& fin) {
  const auto it = precopy_outgoing_.find(fin.request_nonce);
  if (it == precopy_outgoing_.end()) return Status::kInvalidState;
  PrecopyOutgoing& live = it->second;
  // The destination assembled the authoritative snapshot: retain the
  // equivalent full copy until DONE, exactly like a full-snapshot
  // transfer (§V-D), and retire the pre-copy attempt.
  MigrationData assembled;
  assembled.msk = fin.msk;
  for (const ChunkManifestEntry& entry : fin.manifest) {
    const auto chunk = live.merged.find(entry.index);
    if (chunk == live.merged.end()) continue;  // empty chunk: all inactive
    for (size_t s = 0; s < kPrecopyChunkSlots; ++s) {
      const size_t slot = entry.index * kPrecopyChunkSlots + s;
      assembled.counters_active[slot] = chunk->second.active[s];
      assembled.counter_values[slot] =
          chunk->second.active[s] ? chunk->second.values[s] : 0;
    }
  }
  OutgoingTransfer transfer;
  transfer.source_mr = source_mr;
  transfer.destination_address = live.destination_address;
  transfer.request_nonce = fin.request_nonce;
  transfer.retained_data = assembled.serialize();
  transfer.channel = std::move(live.channel);
  transfer.sequence = next_outgoing_sequence_++;
  const uint64_t transfer_id = live.transfer_id;
  latest_outgoing_[transfer.source_mr] = {transfer.sequence,
                                          OutgoingState::kPending};
  outgoing_[transfer_id] = std::move(transfer);
  precopy_outgoing_.erase(fin.request_nonce);
  return persist_queue();
}

LibMsg MigrationEnclave::on_precopy_finalize_req(LaSessionState& session,
                                                 const LibMsg& msg) {
  LibMsg reply;
  reply.type = LibMsgType::kError;
  auto parsed = PrecopyFinalizePayload::deserialize(msg.payload);
  if (!parsed.ok()) {
    reply.status = Status::kTampered;
    return reply;
  }
  const PrecopyFinalizePayload& fin = parsed.value();
  // Idempotent re-finalize: if this attempt already became a retained (or
  // completed) transfer — the previous reply was lost — acknowledge
  // without shipping again (mirror of run_outgoing's nonce dedup).
  for (const auto& [id, transfer] : outgoing_) {
    if (transfer.source_mr == session.peer.mr_enclave &&
        transfer.request_nonce == fin.request_nonce) {
      reply.type = LibMsgType::kFinalizeAccepted;
      reply.status = persist_queue();
      if (reply.status != Status::kOk) reply.type = LibMsgType::kError;
      return reply;
    }
  }
  for (const auto& [id, record] : completed_outgoing_) {
    if (record.source_mr == session.peer.mr_enclave &&
        record.request_nonce == fin.request_nonce) {
      reply.type = LibMsgType::kFinalizeAccepted;
      reply.status = Status::kOk;
      return reply;
    }
  }
  // A posted round record may still be in flight for this attempt; a
  // synchronous finalize would overtake it on the wire and desync the
  // channel's record sequence, so abandon that channel and resync over a
  // fresh attestation — the stale ack is ignored by transfer id.  The
  // ASYNC finalize instead queues behind the round: its ack continuation
  // kicks the staged finalize in order on the same channel.
  const auto inflight = precopy_outgoing_.find(fin.request_nonce);
  if (!async_precopy_ && inflight != precopy_outgoing_.end() &&
      inflight->second.ship_step ==
          PrecopyOutgoing::ShipStep::kAwaitRoundAck) {
    inflight->second.channel.reset();
    inflight->second.resync = true;
    inflight->second.ship_step = PrecopyOutgoing::ShipStep::kIdle;
  }
  auto attempt = precopy_attempt(session.peer.mr_enclave,
                                 fin.destination_address, fin.request_nonce,
                                 fin.policy);
  if (!attempt.ok()) {
    reply.status = attempt.status();
    return reply;
  }
  if (async_precopy_) {
    // Pipelined finalize hop: merge + stage + ack the library immediately
    // with kMigrateQueued — the sealed finalize record ships through the
    // deferred pump, finalize ships of different enclaves overlap on the
    // source lane, and the library stays frozen polling its fate (the
    // freeze ends only once the destination's accept is observed).
    PrecopyOutgoing& live = *attempt.value();
    for (const CounterChunk& chunk : fin.chunks) {
      auto merged = live.merged.find(chunk.index);
      if (merged == live.merged.end() ||
          merged->second.generation <= chunk.generation) {
        live.merged[chunk.index] = chunk;
      }
    }
    live.staged_finalize = fin;
    live.finalize_attempts = 0;
    // The final delta is durable before the queued-ack, like every round;
    // only the manifest+msk envelope is memory-only (restart => the
    // frozen library re-finalizes synchronously, dedup'd by nonce).
    const Status persisted = persist_queue();
    if (persisted != Status::kOk) {
      live.staged_finalize.reset();
      reply.status = persisted;
      return reply;
    }
    kick_precopy_ship(fin.request_nonce);
    reply.type = LibMsgType::kMigrateQueued;
    reply.status = Status::kOk;
    return reply;
  }
  Status sent =
      precopy_send(*attempt.value(), fin.request_nonce, fin.chunks, fin.round,
                   /*finalize=*/true, fin.manifest, fin.msk);
  if (sent == Status::kInvalidState) {
    // Destination lost the conversation (aged-out staging / wiped
    // queue): re-attest once and re-ship the merged set (mirrors
    // on_precopy_round).
    attempt = precopy_attempt(session.peer.mr_enclave, fin.destination_address,
                              fin.request_nonce, fin.policy);
    if (attempt.ok()) {
      sent = precopy_send(*attempt.value(), fin.request_nonce, fin.chunks,
                          fin.round, /*finalize=*/true, fin.manifest, fin.msk);
    } else {
      sent = attempt.status();
    }
  }
  if (sent != Status::kOk) {
    reply.status = sent;
    return reply;
  }
  const Status finished =
      finish_precopy_outgoing(session.peer.mr_enclave, fin);
  if (finished != Status::kOk) {
    reply.status = finished;
    return reply;
  }
  reply.type = LibMsgType::kFinalizeAccepted;
  reply.status = Status::kOk;
  return reply;
}

// ----- incoming migration (destination side) -----

MeResponse MigrationEnclave::on_ra_msg1(const MeRequest& req) {
  // A colliding transfer id must not clobber a live inbound transfer.
  if (inbound_.count(req.id) != 0) {
    return error_response(Status::kAlreadyExists);
  }
  auto msg1 = sgx::RaMsg1::deserialize(req.payload);
  if (!msg1.ok()) return error_response(Status::kTampered);
  InboundTransfer inbound;
  inbound.ra = std::make_unique<sgx::RaSession>(
      platform(), identity(), sgx::RaSession::Role::kResponder);
  auto msg2 = inbound.ra->handle_msg1(msg1.value());
  if (!msg2.ok()) return error_response(msg2.status());
  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = msg2.value().serialize();
  inbound_[req.id] = std::move(inbound);
  return resp;
}

MeResponse MigrationEnclave::on_ra_msg3(const MeRequest& req) {
  const auto it = inbound_.find(req.id);
  if (it == inbound_.end() || it->second.ra == nullptr) {
    // Unknown id, or an entry restored from the durable queue (its RA
    // handshake finished in a previous ME lifetime).
    return error_response(Status::kInvalidState);
  }
  InboundTransfer& inbound = it->second;

  BinaryReader r(req.payload);
  const Bytes msg3_bytes = r.bytes(1u << 16);
  const Bytes auth_bytes = r.bytes(1u << 16);
  if (!r.done()) return error_response(Status::kTampered);
  auto msg3 = sgx::RaMsg3::deserialize(msg3_bytes);
  if (!msg3.ok()) return error_response(Status::kTampered);
  const Status ra_status = inbound.ra->handle_msg3(msg3.value());
  if (ra_status != Status::kOk) {
    inbound_.erase(it);
    return error_response(ra_status);
  }
  // Peer ME identity check (mirror of the outgoing side).
  if (!(inbound.ra->peer_identity().mr_enclave == identity().mr_enclave)) {
    inbound_.erase(it);
    return error_response(Status::kIdentityMismatch);
  }
  // Source provider authentication.
  auto auth = ProviderAuth::deserialize(auth_bytes);
  if (!auth.ok()) {
    inbound_.erase(it);
    return error_response(Status::kTampered);
  }
  std::string source_region;
  const Status auth_status = verify_provider_auth(
      auth.value(), inbound.ra->transcript_hash(),
      /*expected_address=*/auth.value().credential.address, &source_region);
  if (auth_status != Status::kOk) {
    inbound_.erase(it);
    return error_response(auth_status);
  }
  // Machine-level incoming policy.
  if (!allowed_source_regions_.empty()) {
    bool allowed = false;
    for (const auto& region : allowed_source_regions_) {
      if (region == source_region) allowed = true;
    }
    if (!allowed) {
      inbound_.erase(it);
      return error_response(Status::kPolicyViolation);
    }
  }
  inbound.source_region = source_region;
  inbound.source_address = auth.value().credential.address;
  inbound.authenticated = true;
  inbound.channel.emplace(inbound.ra->session_key(),
                          net::SecureChannel::Role::kResponder);

  // Register the resume acceptor for this (verified) peer: a later
  // kSessionResume from the same certified address can re-key without the
  // full handshake.  Memory-only — a restart forgets it deliberately.
  ResumeAcceptor acceptor;
  acceptor.master_key = inbound.ra->session_key();
  acceptor.source_region = source_region;
  acceptor.source_address = inbound.source_address;
  resume_acceptors_[inbound.source_address] = std::move(acceptor);

  MeResponse resp;
  resp.status = Status::kOk;
  BinaryWriter w;
  w.bytes(make_provider_auth(inbound.ra->transcript_hash()).serialize());
  w.u64(instance_epoch_);
  resp.payload = w.take();
  return resp;
}

MeResponse MigrationEnclave::on_transfer(const MeRequest& req) {
  const auto it = inbound_.find(req.id);
  if (it == inbound_.end() || !it->second.authenticated) {
    return error_response(Status::kInvalidState);
  }
  InboundTransfer& inbound = it->second;
  auto plaintext = inbound.channel->open_record(req.payload);
  if (!plaintext.ok()) return error_response(plaintext.status());
  charge_gcm(plaintext.value().size());
  auto payload = TransferPayload::deserialize(plaintext.value());
  if (!payload.ok()) return error_response(Status::kTampered);

  // One pending migration per enclave identity at a time, with this
  // migration's own lost-ACCEPTED orphan superseded and foreign
  // undelivered orphans given a reconciliation sweep (free_pending_slot).
  const Status slot = free_pending_slot(
      payload.value().source_mr_enclave, payload.value().request_nonce,
      payload.value().source_me_address, req.id);
  if (slot != Status::kOk) return error_response(slot);
  PendingIncoming pending;
  pending.transfer_id = req.id;
  pending.data = payload.value().data;
  pending.source_me_address = payload.value().source_me_address;
  pending.request_nonce = payload.value().request_nonce;
  pending_[payload.value().source_mr_enclave] = std::move(pending);
  // A full-snapshot transfer supersedes any abandoned pre-copy staging of
  // the same identity (the library froze and shipped everything).
  precopy_staging_.erase(payload.value().source_mr_enclave);

  MeResponse resp;
  resp.status = Status::kOk;
  // Seal the ACCEPTED ack BEFORE snapshotting: the snapshot must capture
  // the channel's post-ack sequence numbers, or a DONE sealed after a
  // restart would fail the source's replay check.  The pending entry (and
  // the inbound channel that will seal the DONE) are then made durable
  // before the ack leaves this enclave and releases the source side.
  resp.payload =
      inbound.channel->seal_record(to_bytes(std::string_view(kAcceptedMarker)));
  const Status persisted = persist_queue();
  if (persisted != Status::kOk) return error_response(persisted);
  return resp;
}

// ----- live pre-copy (destination side) -----

MigrationEnclave::PrecopyStaging& MigrationEnclave::merge_precopy_staging(
    const sgx::Measurement& mr, const std::string& source_me_address,
    uint64_t nonce, uint64_t transfer_id,
    const std::vector<CounterChunk>& chunks) {
  auto staging = precopy_staging_.find(mr);
  if (staging != precopy_staging_.end() &&
      (staging->second.request_nonce != nonce ||
       staging->second.source_me_address != source_me_address)) {
    // A fresh nonce is a NEW logical migration attempt: the old staging
    // was abandoned (re-route, restarted pre-copy).  Unlike a pending
    // entry, staging is never handed to an enclave, so superseding it
    // cannot fork — drop it with its orphaned channel.
    if (staging->second.transfer_id != transfer_id) {
      inbound_.erase(staging->second.transfer_id);
    }
    precopy_staging_.erase(staging);
    staging = precopy_staging_.end();
  }
  if (staging == precopy_staging_.end()) {
    PrecopyStaging fresh;
    fresh.source_me_address = source_me_address;
    fresh.request_nonce = nonce;
    staging = precopy_staging_.emplace(mr, std::move(fresh)).first;
  }
  PrecopyStaging& entry = staging->second;
  if (entry.transfer_id != transfer_id) {
    // The source re-attested (lost ack / channel desync): the previous
    // inbound channel for this attempt is dead.
    if (entry.transfer_id != 0) inbound_.erase(entry.transfer_id);
    entry.transfer_id = transfer_id;
  }
  // Merge by generation: replayed or re-shipped chunks are idempotent,
  // later generations win.
  for (const CounterChunk& chunk : chunks) {
    const auto merged = entry.chunks.find(chunk.index);
    if (merged == entry.chunks.end() ||
        merged->second.generation <= chunk.generation) {
      entry.chunks[chunk.index] = chunk;
    }
  }
  entry.last_update = platform().clock().now();
  return entry;
}

Status MigrationEnclave::free_pending_slot(const sgx::Measurement& mr,
                                           uint64_t nonce,
                                           const std::string& source_me_address,
                                           uint64_t arriving_transfer_id) {
  const auto existing = pending_.find(mr);
  if (existing == pending_.end()) return Status::kOk;
  // A re-transfer of the same logical migration (same source ME + nonce):
  // the previous attempt's ACCEPTED ack was lost, the source retained
  // nothing and retries under a fresh transfer id — supersede its own
  // orphan.  Once a session has fetched the old entry, superseding is
  // refused (the delivery pin's fork prevention outranks the retry).
  const bool same_migration =
      nonce != 0 && existing->second.request_nonce == nonce &&
      existing->second.source_me_address == source_me_address;
  if (same_migration && existing->second.delivering_session == 0) {
    if (existing->second.transfer_id != arriving_transfer_id) {
      inbound_.erase(existing->second.transfer_id);
    }
    pending_.erase(existing);
    return Status::kOk;
  }
  // An undelivered entry from a DIFFERENT logical migration gets one
  // (rate-limited) reconciliation sweep against its originating source
  // ME before it is allowed to block: the lost-ACCEPTED re-route orphan
  // case, where the identity completed elsewhere and this entry is
  // stale.  reconcile_pending erases the expired entry itself.
  if (!same_migration && existing->second.delivering_session == 0 &&
      reconcile_pending(mr) == Status::kOk) {
    return Status::kOk;
  }
  return Status::kAlreadyExists;
}

MeResponse MigrationEnclave::on_precopy_chunk(const MeRequest& req) {
  const auto it = inbound_.find(req.id);
  if (it == inbound_.end() || !it->second.authenticated) {
    return error_response(Status::kInvalidState);
  }
  InboundTransfer& inbound = it->second;
  auto plaintext = inbound.channel->open_record(req.payload);
  if (!plaintext.ok()) return error_response(plaintext.status());
  charge_gcm(plaintext.value().size());
  auto parsed = PrecopyChunkRecord::deserialize(plaintext.value());
  if (!parsed.ok()) return error_response(Status::kTampered);
  const PrecopyChunkRecord& record = parsed.value();
  if (record.request_nonce == 0) {
    return error_response(Status::kInvalidParameter);
  }

  PrecopyStaging& entry = merge_precopy_staging(
      record.source_mr_enclave, record.source_me_address,
      record.request_nonce, req.id, record.chunks);
  if (record.round + 1 > entry.rounds) entry.rounds = record.round + 1;

  MeResponse resp;
  resp.status = Status::kOk;
  // Ack sealed BEFORE the snapshot so the persisted channel sequence
  // numbers are post-ack (mirrors on_transfer).
  resp.payload = inbound.channel->seal_record(
      to_bytes(std::string_view(kPrecopyAckMarker)));
  const Status persisted = persist_queue();
  if (persisted != Status::kOk) return error_response(persisted);
  return resp;
}

MeResponse MigrationEnclave::on_precopy_finalize(const MeRequest& req) {
  const auto it = inbound_.find(req.id);
  if (it == inbound_.end() || !it->second.authenticated) {
    return error_response(Status::kInvalidState);
  }
  InboundTransfer& inbound = it->second;
  auto plaintext = inbound.channel->open_record(req.payload);
  if (!plaintext.ok()) return error_response(plaintext.status());
  charge_gcm(plaintext.value().size());
  auto parsed = PrecopyFinalizeRecord::deserialize(plaintext.value());
  if (!parsed.ok()) return error_response(Status::kTampered);
  const PrecopyFinalizeRecord& record = parsed.value();
  if (record.request_nonce == 0) {
    return error_response(Status::kInvalidParameter);
  }
  const sgx::Measurement& mr = record.source_mr_enclave;

  // Fold the final delta into the staged rounds (same supersede rules as
  // a mid-pre-copy chunk).
  PrecopyStaging& entry = merge_precopy_staging(mr, record.source_me_address,
                                                record.request_nonce, req.id,
                                                record.chunks);

  // Manifest check: the staged set must cover EXACTLY what the library
  // shipped.  A lost round (or a wiped queue) must fail loudly here — a
  // silently truncated Table II would restore counters at stale values,
  // breaking the very replay protection the counters exist for.  The
  // source answers kPrecopyIncomplete by re-shipping the full set.
  for (const ChunkManifestEntry& expected : record.manifest) {
    const auto chunk = entry.chunks.find(expected.index);
    if (chunk == entry.chunks.end() ||
        chunk->second.generation != expected.generation) {
      return error_response(Status::kPrecopyIncomplete);
    }
  }

  // Assemble the authoritative snapshot: manifest chunks + MSK.
  MigrationData assembled;
  assembled.msk = record.msk;
  for (const ChunkManifestEntry& expected : record.manifest) {
    const CounterChunk& chunk = entry.chunks.at(expected.index);
    for (size_t s = 0; s < kPrecopyChunkSlots; ++s) {
      const size_t slot = expected.index * kPrecopyChunkSlots + s;
      assembled.counters_active[slot] = chunk.active[s];
      assembled.counter_values[slot] = chunk.active[s] ? chunk.values[s] : 0;
    }
  }

  // Same one-pending-per-identity rules as on_transfer, including the
  // reconciliation sweep for a foreign undelivered orphan.
  const Status slot = free_pending_slot(mr, record.request_nonce,
                                        record.source_me_address, req.id);
  if (slot != Status::kOk) return error_response(slot);

  PendingIncoming pending;
  pending.transfer_id = req.id;
  pending.data = std::move(assembled);
  pending.source_me_address = record.source_me_address;
  pending.request_nonce = record.request_nonce;
  pending_[mr] = std::move(pending);
  precopy_staging_.erase(mr);

  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = inbound.channel->seal_record(
      to_bytes(std::string_view(kPrecopyFinMarker)));
  const Status persisted = persist_queue();
  if (persisted != Status::kOk) return error_response(persisted);
  return resp;
}

// ----- pending-entry reconciliation (lost-ACCEPTED re-route orphans) ----

Status MigrationEnclave::reconcile_pending(const sgx::Measurement& mr) {
  auto* net = platform().network();
  if (net == nullptr) return Status::kNetworkUnreachable;
  const auto it = pending_.find(mr);
  if (it == pending_.end()) return Status::kNoPendingMigration;
  // Delivered (or delivering) data is protected by the pin, never swept.
  if (it->second.delivering_session != 0) return Status::kMigrationInProgress;
  // Legacy entries without a nonce cannot be identified to the source.
  if (it->second.request_nonce == 0) return Status::kInvalidState;
  const std::string source_address = it->second.source_me_address;
  const uint64_t nonce = it->second.request_nonce;
  if (source_address == platform().address()) return Status::kInvalidState;
  // Rate limit: a LIVE entry blocking a busy-retrying peer (the common
  // same-image serialization) must not cost one RA handshake per retry
  // just to re-learn it is live.
  const Duration now_ = platform().clock().now();
  if (it->second.last_reconcile != Duration{} &&
      now_ - it->second.last_reconcile < reconcile_retry_interval_) {
    return Status::kMigrationInProgress;
  }
  it->second.last_reconcile = now_;

  // Fresh mutually attested channel to the originating source ME: the
  // verdict authorizes deleting migration state, so it must come from a
  // genuine peer ME, not from whoever owns the network.
  const uint64_t query_id = fresh_id();
  auto channel = attest_peer_me(source_address, query_id, MigrationPolicy{});
  if (!channel.ok()) return channel.status();
  ReconcileQuery query;
  query.source_mr_enclave = mr;
  query.request_nonce = nonce;
  MeRequest req;
  req.type = MeMsgType::kReconcile;
  req.id = query_id;
  req.payload = channel.value().seal_record(query.serialize());
  auto raw = net->rpc(source_address + "/me", req.serialize());
  if (!raw.ok()) return raw.status();
  auto resp = MeResponse::deserialize(raw.value());
  if (!resp.ok()) return Status::kTampered;
  if (resp.value().status != Status::kOk) return resp.value().status;
  auto record = channel.value().open_record(resp.value().payload);
  if (!record.ok()) return record.status();
  BinaryReader r(record.value());
  const std::string marker = r.str(64);
  const uint8_t verdict = r.u8();
  if (!r.done() || marker != kReconcileMarker || verdict > 1) {
    return Status::kTampered;
  }
  if (static_cast<ReconcileVerdict>(verdict) != ReconcileVerdict::kSuperseded) {
    return Status::kMigrationInProgress;
  }
  // The source ME vouches the identity completed a NEWER transfer and
  // knows nothing live about this nonce: the entry is stale
  // pre-migration state a future instance must never fetch.  Expire it.
  // (Re-find after the nested rpc; reentrant traffic may have advanced
  // this queue in the meantime.)
  const auto stale = pending_.find(mr);
  if (stale == pending_.end() || stale->second.request_nonce != nonce ||
      stale->second.delivering_session != 0) {
    return Status::kMigrationInProgress;
  }
  inbound_.erase(stale->second.transfer_id);
  pending_.erase(stale);
  return persist_queue();
}

size_t MigrationEnclave::reconcile_all_pending() {
  std::vector<sgx::Measurement> mrs;
  mrs.reserve(pending_.size());
  for (const auto& [mr, entry] : pending_) mrs.push_back(mr);
  for (const sgx::Measurement& mr : mrs) reconcile_pending(mr);
  return pending_.size();
}

size_t MigrationEnclave::sweep_superseded_outgoing() {
  // Same supersede criterion as on_reconcile's verdict, applied to this
  // ME's OWN source-side queues: positive evidence the identity moved on
  // (a completion record under another nonce), none that this attempt
  // won.  A restarted ME re-ships retained entries, so leaving a
  // superseded one behind would re-create the orphan at its destination.
  const auto superseded = [this](const sgx::Measurement& mr, uint64_t nonce) {
    bool newer_completed = false;
    for (const auto& [id, record] : completed_outgoing_) {
      if (!(record.source_mr == mr)) continue;
      if (record.request_nonce == nonce) return false;  // this attempt won
      newer_completed = true;
    }
    return newer_completed;
  };
  size_t expired = 0;
  for (auto it = outgoing_.begin(); it != outgoing_.end();) {
    if (superseded(it->second.source_mr, it->second.request_nonce)) {
      secure_wipe(it->second.retained_data);
      const auto latest = latest_outgoing_.find(it->second.source_mr);
      if (latest != latest_outgoing_.end() &&
          latest->second.first == it->second.sequence) {
        latest_outgoing_.erase(latest);
      }
      it = outgoing_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  for (auto it = transfer_tasks_.begin(); it != transfer_tasks_.end();) {
    if (superseded(it->second.source_mr, it->first)) {
      it = transfer_tasks_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  for (auto it = precopy_outgoing_.begin(); it != precopy_outgoing_.end();) {
    if (superseded(it->second.source_mr, it->first)) {
      it = precopy_outgoing_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  if (expired != 0) persist_queue();
  return expired;
}

MeResponse MigrationEnclave::on_reconcile(const MeRequest& req) {
  const auto it = inbound_.find(req.id);
  if (it == inbound_.end() || !it->second.authenticated) {
    return error_response(Status::kInvalidState);
  }
  auto plaintext = it->second.channel->open_record(req.payload);
  if (!plaintext.ok()) return error_response(plaintext.status());
  auto parsed = ReconcileQuery::deserialize(plaintext.value());
  if (!parsed.ok()) return error_response(Status::kTampered);
  const sgx::Measurement& mr = parsed.value().source_mr_enclave;
  const uint64_t nonce = parsed.value().request_nonce;

  bool nonce_live = false;
  for (const auto& [id, transfer] : outgoing_) {
    if (transfer.source_mr == mr && transfer.request_nonce == nonce) {
      nonce_live = true;
    }
  }
  const auto precopy = precopy_outgoing_.find(nonce);
  if (precopy != precopy_outgoing_.end() && precopy->second.source_mr == mr) {
    nonce_live = true;
  }
  bool nonce_completed = false;
  bool newer_completed = false;
  for (const auto& [id, record] : completed_outgoing_) {
    if (!(record.source_mr == mr)) continue;
    if (record.request_nonce == nonce) {
      nonce_completed = true;
    } else {
      newer_completed = true;
    }
  }
  // Superseded = this ME has POSITIVE evidence the identity moved on (a
  // completed transfer under another nonce) and no live or completed
  // record of the queried attempt.  Anything ambiguous — including a
  // wiped history, where the pending copy might be the only one left —
  // keeps the entry.
  const ReconcileVerdict verdict =
      (!nonce_live && !nonce_completed && newer_completed)
          ? ReconcileVerdict::kSuperseded
          : ReconcileVerdict::kStillLive;
  BinaryWriter w;
  w.str(kReconcileMarker);
  w.u8(static_cast<uint8_t>(verdict));
  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = it->second.channel->seal_record(w.data());
  // One-shot session: the reconcile conversation ends here.
  inbound_.erase(it);
  return resp;
}

MeResponse MigrationEnclave::on_done(const MeRequest& req) {
  // Duplicate DONE for a transfer already confirmed (the destination
  // retries its relay until acknowledged): idempotent success.  The
  // channel was wiped with the entry, so the record cannot be re-checked;
  // acknowledging reveals nothing and changes no state.
  if (completed_outgoing_.count(req.id) != 0) {
    MeResponse resp;
    resp.status = Status::kOk;
    return resp;
  }
  const auto it = outgoing_.find(req.id);
  if (it == outgoing_.end()) return error_response(Status::kInvalidState);
  OutgoingTransfer& transfer = it->second;
  auto plaintext = transfer.channel->open_record(req.payload);
  if (!plaintext.ok()) return error_response(plaintext.status());
  BinaryReader r(plaintext.value());
  const std::string marker = r.str(64);
  const uint64_t confirmed_id = r.u64();
  if (!r.done() || marker != kDoneMarker || confirmed_id != req.id) {
    return error_response(Status::kTampered);
  }
  // Destination confirmed: wipe the retained migration data and retire
  // the queue entry, keeping only the compact completion record (status
  // queries + duplicate-DONE idempotency).  Erasing terminal transfers is
  // what keeps the queue bounded over a long drain.
  secure_wipe(transfer.retained_data);
  const auto latest = latest_outgoing_.find(transfer.source_mr);
  if (latest != latest_outgoing_.end() &&
      latest->second.first == transfer.sequence) {
    latest->second.second = OutgoingState::kCompleted;
  }
  // Bound the per-identity index: once it overflows, forget the
  // longest-completed identity (a status query then reports kNone — the
  // same answer a freshly deployed ME would give).  Pending identities
  // are never evicted; they still hold retained data.
  constexpr size_t kLatestOutgoingLimit = 4096;
  if (latest_outgoing_.size() > kLatestOutgoingLimit) {
    auto oldest = latest_outgoing_.end();
    for (auto it2 = latest_outgoing_.begin(); it2 != latest_outgoing_.end();
         ++it2) {
      if (it2->second.second != OutgoingState::kCompleted) continue;
      if (oldest == latest_outgoing_.end() ||
          it2->second.first < oldest->second.first) {
        oldest = it2;
      }
    }
    if (oldest != latest_outgoing_.end()) latest_outgoing_.erase(oldest);
  }
  record_completed(req.id, transfer);
  // The migrated-away instance behind this transfer is frozen for good;
  // its LA sessions would otherwise linger until process exit.
  drop_sessions_for(transfer.source_mr);
  outgoing_.erase(it);
  const Status persisted = persist_queue();
  if (persisted != Status::kOk) return error_response(persisted);
  MeResponse resp;
  resp.status = Status::kOk;
  return resp;
}

// ----- durable transfer queue -----

Duration MigrationEnclave::now() const {
  // PlatformIface::clock() is non-const (it can advance); reading the
  // current virtual time mutates nothing.
  return const_cast<MigrationEnclave*>(this)->platform().clock().now();
}

Status MigrationEnclave::commit_state() {
  if (!queue_seal_ctx_.has_value()) {
    queue_seal_ctx_.emplace(make_seal_context(sgx::KeyPolicy::kMrEnclave));
  }
  Bytes plaintext = serialize_queue();
  auto sealed = seal_with(*queue_seal_ctx_,
                          to_bytes(std::string_view(kQueueAad)), plaintext);
  // The plaintext snapshot embeds every live channel's raw session key.
  secure_wipe(plaintext);
  if (!sealed.ok()) return sealed.status();
  sealed_queue_state_ = std::move(sealed).value();
  if (queue_persist_callback_) {
    // OCALL to the untrusted host, which writes the blob to disk.
    platform().charge(platform().costs().ocall);
    queue_persist_callback_(sealed_queue_state_);
  }
  return Status::kOk;
}

Status MigrationEnclave::persist_queue() {
  // Every queue transition guards either retained migration data or a
  // fork-preventing erase, so each one is fenced durable regardless of
  // the configured engine (mirrors persist_mutation_durable in the ML).
  const Status status = engine_->on_mutation(*this, MutationKind::kTransferQueue);
  if (status != Status::kOk) return status;
  return engine_->flush(*this);
}

namespace {

void serialize_chunk_map(BinaryWriter& w,
                         const std::map<uint32_t, CounterChunk>& chunks) {
  w.u32(static_cast<uint32_t>(chunks.size()));
  for (const auto& [index, chunk] : chunks) chunk.serialize(w);
}

Result<std::map<uint32_t, CounterChunk>> deserialize_chunk_map(
    BinaryReader& r) {
  const uint32_t count = r.u32();
  if (count > kPrecopyChunkCount) return Status::kTampered;
  std::map<uint32_t, CounterChunk> chunks;
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    auto chunk = CounterChunk::deserialize(r);
    if (!chunk.ok()) return chunk.status();
    chunks[chunk.value().index] = std::move(chunk).value();
  }
  if (!r.ok()) return Status::kTampered;
  return chunks;
}

}  // namespace

Bytes MigrationEnclave::serialize_queue() const {
  BinaryWriter w;
  w.str(kQueueMagicV4);
  w.u64(next_outgoing_sequence_);

  w.u32(static_cast<uint32_t>(outgoing_.size()));
  for (const auto& [id, t] : outgoing_) {
    w.u64(id);
    w.fixed(t.source_mr);
    w.str(t.destination_address);
    w.u64(t.request_nonce);
    w.bytes(t.retained_data);
    w.u64(t.sequence);
    w.boolean(t.channel.has_value());
    if (t.channel.has_value()) {
      Bytes channel_state = t.channel->serialize_state();
      w.bytes(channel_state);
      secure_wipe(channel_state);  // contains the raw session key
    }
  }

  w.u32(static_cast<uint32_t>(pending_.size()));
  for (const auto& [mr, p] : pending_) {
    w.fixed(mr);
    w.u64(p.transfer_id);
    w.bytes(p.data.serialize());
    w.str(p.source_me_address);
    w.u64(p.request_nonce);
    // delivering_session is deliberately NOT persisted: LA sessions die
    // with the ME process, so delivery re-arms after a restart.
  }

  // Inbound transfers that completed authentication: their channel is
  // what decrypts the (re)sent transfer record and seals the DONE relay.
  uint32_t inbound_count = 0;
  for (const auto& [id, in] : inbound_) {
    if (in.authenticated && in.channel.has_value()) ++inbound_count;
  }
  w.u32(inbound_count);
  for (const auto& [id, in] : inbound_) {
    if (!in.authenticated || !in.channel.has_value()) continue;
    w.u64(id);
    w.str(in.source_region);
    w.str(in.source_address);  // v3: authorizes source-scoped aborts
    Bytes channel_state = in.channel->serialize_state();
    w.bytes(channel_state);
    secure_wipe(channel_state);  // contains the raw session key
  }

  w.u32(static_cast<uint32_t>(latest_outgoing_.size()));
  for (const auto& [mr, state] : latest_outgoing_) {
    w.fixed(mr);
    w.u64(state.first);
    w.u8(static_cast<uint8_t>(state.second));
  }

  w.u32(static_cast<uint32_t>(completed_order_.size()));
  for (const uint64_t id : completed_order_) {
    const auto it = completed_outgoing_.find(id);
    w.u64(id);
    w.fixed(it->second.source_mr);
    w.u64(it->second.request_nonce);
    w.u64(it->second.sequence);
  }

  w.u32(static_cast<uint32_t>(confirmed_incoming_order_.size()));
  for (const sgx::Measurement& mr : confirmed_incoming_order_) {
    w.fixed(mr);
    w.u64(confirmed_incoming_.at(mr));
  }

  w.u32(static_cast<uint32_t>(done_relays_.size()));
  for (const auto& [id, relay] : done_relays_) {
    w.u64(id);
    w.str(relay.source_me_address);
    w.bytes(relay.sealed_record);
  }

  // ----- v2: live pre-copy state -----
  // Source attempts (merged chunk sets + RA channels) and destination
  // staging: an ME restart between rounds RESUMES the pre-copy instead of
  // throwing away every round already shipped.
  w.u32(static_cast<uint32_t>(precopy_outgoing_.size()));
  for (const auto& [nonce, p] : precopy_outgoing_) {
    w.u64(nonce);
    w.fixed(p.source_mr);
    w.str(p.destination_address);
    w.u64(p.transfer_id);
    w.u32(p.rounds);
    w.boolean(p.resync);
    serialize_chunk_map(w, p.merged);
    w.boolean(p.channel.has_value());
    if (p.channel.has_value()) {
      Bytes channel_state = p.channel->serialize_state();
      w.bytes(channel_state);
      secure_wipe(channel_state);  // contains the raw session key
    }
  }
  w.u32(static_cast<uint32_t>(precopy_staging_.size()));
  for (const auto& [mr, s] : precopy_staging_) {
    w.fixed(mr);
    w.u64(s.transfer_id);
    w.str(s.source_me_address);
    w.u64(s.request_nonce);
    w.u32(s.rounds);
    serialize_chunk_map(w, s.chunks);
    w.u64(static_cast<uint64_t>(s.last_update.count()));  // v3: sweep age
  }

  // ----- v3: pipelined TransferTasks -----
  // Only the durable identity of each task (who, where, what data, which
  // nonce): attestation state is per-attempt, so a restarted ME resumes
  // every pipeline from the attest step under a fresh transfer id.
  w.u32(static_cast<uint32_t>(transfer_tasks_.size()));
  for (const auto& [nonce, t] : transfer_tasks_) {
    w.u64(nonce);
    w.fixed(t.source_mr);
    w.bytes(t.request.serialize());
    w.boolean(t.armed);  // v4: unarmed reservations re-park at kAwaitArm
  }

  // ----- v4: cached ME<->ME attestation sessions -----
  // Master keys ride the sealed snapshot like channel keys do; losing an
  // entry only costs one full handshake.  Acceptor-side state is
  // deliberately NOT persisted (a restarted responder must force the full
  // handshake — that is the anti-fork evidence the initiator relies on).
  w.u32(static_cast<uint32_t>(peer_sessions_.size()));
  for (const auto& [address, s] : peer_sessions_) {
    w.str(address);
    w.fixed(s.master_key);
    w.u64(s.peer_epoch);
    s.credential.serialize(w);
    w.str(s.region);
  }
  return w.take();
}

Status MigrationEnclave::apply_queue(ByteView plaintext) {
  BinaryReader r(plaintext);
  const std::string magic = r.str(64);
  const bool v4 = magic == kQueueMagicV4;
  const bool v3 = v4 || magic == kQueueMagicV3;
  const bool v2 = v3 || magic == kQueueMagicV2;
  if (!v2 && magic != kQueueMagicV1) return Status::kTampered;
  const uint64_t next_sequence = r.u64();

  std::map<uint64_t, OutgoingTransfer> outgoing;
  const uint32_t outgoing_count = r.u32();
  for (uint32_t i = 0; i < outgoing_count && r.ok(); ++i) {
    const uint64_t id = r.u64();
    OutgoingTransfer t;
    t.source_mr = r.fixed<32>();
    t.destination_address = r.str(256);
    t.request_nonce = r.u64();
    t.retained_data = r.bytes(1u << 20);
    t.sequence = r.u64();
    if (r.boolean()) {
      Bytes channel_state = r.bytes(64);
      auto channel = net::SecureChannel::deserialize_state(channel_state);
      secure_wipe(channel_state);
      if (!channel.ok()) return Status::kTampered;
      t.channel.emplace(std::move(channel).value());
    }
    outgoing[id] = std::move(t);
  }

  std::map<sgx::Measurement, PendingIncoming> pending;
  const uint32_t pending_count = r.u32();
  for (uint32_t i = 0; i < pending_count && r.ok(); ++i) {
    const sgx::Measurement mr = r.fixed<32>();
    PendingIncoming p;
    p.transfer_id = r.u64();
    auto data = MigrationData::deserialize(r.bytes(1u << 20));
    if (!data.ok()) return Status::kTampered;
    p.data = std::move(data).value();
    p.source_me_address = r.str(256);
    p.request_nonce = r.u64();
    pending[mr] = std::move(p);
  }

  std::map<uint64_t, InboundTransfer> inbound;
  const uint32_t inbound_count = r.u32();
  for (uint32_t i = 0; i < inbound_count && r.ok(); ++i) {
    const uint64_t id = r.u64();
    InboundTransfer in;
    in.authenticated = true;
    in.source_region = r.str(256);
    if (v3) in.source_address = r.str(256);
    Bytes channel_state = r.bytes(64);
    auto channel = net::SecureChannel::deserialize_state(channel_state);
    secure_wipe(channel_state);
    if (!channel.ok()) return Status::kTampered;
    in.channel.emplace(std::move(channel).value());
    inbound[id] = std::move(in);
  }

  std::map<sgx::Measurement, std::pair<uint64_t, OutgoingState>> latest;
  const uint32_t latest_count = r.u32();
  for (uint32_t i = 0; i < latest_count && r.ok(); ++i) {
    const sgx::Measurement mr = r.fixed<32>();
    const uint64_t sequence = r.u64();
    const uint8_t state = r.u8();
    if (state > 2) return Status::kTampered;
    latest[mr] = {sequence, static_cast<OutgoingState>(state)};
  }

  std::map<uint64_t, CompletedOutgoing> completed;
  std::deque<uint64_t> completed_order;
  const uint32_t completed_count = r.u32();
  if (completed_count > kCompletedHistoryLimit) return Status::kTampered;
  for (uint32_t i = 0; i < completed_count && r.ok(); ++i) {
    const uint64_t id = r.u64();
    CompletedOutgoing record;
    record.source_mr = r.fixed<32>();
    record.request_nonce = r.u64();
    record.sequence = r.u64();
    completed[id] = record;
    completed_order.push_back(id);
  }

  std::map<sgx::Measurement, uint64_t> confirmed_incoming;
  std::deque<sgx::Measurement> confirmed_incoming_order;
  const uint32_t confirmed_count = r.u32();
  if (confirmed_count > kCompletedHistoryLimit) return Status::kTampered;
  for (uint32_t i = 0; i < confirmed_count && r.ok(); ++i) {
    const sgx::Measurement mr = r.fixed<32>();
    confirmed_incoming[mr] = r.u64();
    confirmed_incoming_order.push_back(mr);
  }

  std::map<uint64_t, DoneRelay> relays;
  const uint32_t relay_count = r.u32();
  for (uint32_t i = 0; i < relay_count && r.ok(); ++i) {
    const uint64_t id = r.u64();
    DoneRelay relay;
    relay.source_me_address = r.str(256);
    relay.sealed_record = r.bytes(1u << 16);
    relays[id] = std::move(relay);
  }

  std::map<uint64_t, PrecopyOutgoing> precopy_outgoing;
  std::map<sgx::Measurement, PrecopyStaging> precopy_staging;
  if (v2) {
    const uint32_t precopy_count = r.u32();
    for (uint32_t i = 0; i < precopy_count && r.ok(); ++i) {
      const uint64_t nonce = r.u64();
      PrecopyOutgoing p;
      p.source_mr = r.fixed<32>();
      p.destination_address = r.str(256);
      p.transfer_id = r.u64();
      p.rounds = r.u32();
      p.resync = r.boolean();
      auto merged = deserialize_chunk_map(r);
      if (!merged.ok()) return Status::kTampered;
      p.merged = std::move(merged).value();
      if (r.boolean()) {
        Bytes channel_state = r.bytes(64);
        auto channel = net::SecureChannel::deserialize_state(channel_state);
        secure_wipe(channel_state);
        if (!channel.ok()) return Status::kTampered;
        p.channel.emplace(std::move(channel).value());
      }
      precopy_outgoing[nonce] = std::move(p);
    }
    const uint32_t staging_count = r.u32();
    for (uint32_t i = 0; i < staging_count && r.ok(); ++i) {
      const sgx::Measurement mr = r.fixed<32>();
      PrecopyStaging s;
      s.transfer_id = r.u64();
      s.source_me_address = r.str(256);
      s.request_nonce = r.u64();
      s.rounds = r.u32();
      auto chunks = deserialize_chunk_map(r);
      if (!chunks.ok()) return Status::kTampered;
      s.chunks = std::move(chunks).value();
      if (v3) s.last_update = Duration(static_cast<int64_t>(r.u64()));
      precopy_staging[mr] = std::move(s);
    }
  }

  std::map<uint64_t, TransferTask> transfer_tasks;
  if (v3) {
    const uint32_t task_count = r.u32();
    for (uint32_t i = 0; i < task_count && r.ok(); ++i) {
      const uint64_t nonce = r.u64();
      TransferTask t;
      t.source_mr = r.fixed<32>();
      auto request = MigrateRequestPayload::deserialize(r.bytes(1u << 21));
      if (!request.ok()) return Status::kTampered;
      t.request = std::move(request).value();
      if (v4) t.armed = r.boolean();
      // Step collapses to kQueued: the next pump() re-attests and
      // re-ships; an unarmed task re-parks at kAwaitArm and the nonce
      // keeps the end-to-end result exactly-once.
      transfer_tasks[nonce] = std::move(t);
    }
  }

  std::map<std::string, PeerSession> peer_sessions;
  if (v4) {
    const uint32_t session_count = r.u32();
    for (uint32_t i = 0; i < session_count && r.ok(); ++i) {
      const std::string address = r.str(256);
      PeerSession s;
      s.master_key = r.fixed<16>();
      s.peer_epoch = r.u64();
      s.credential = platform::MachineCredential::deserialize(r);
      s.region = r.str(256);
      peer_sessions[address] = std::move(s);
    }
  }

  if (!r.done()) return Status::kTampered;
  next_outgoing_sequence_ = next_sequence;
  outgoing_ = std::move(outgoing);
  pending_ = std::move(pending);
  inbound_ = std::move(inbound);
  latest_outgoing_ = std::move(latest);
  completed_outgoing_ = std::move(completed);
  completed_order_ = std::move(completed_order);
  confirmed_incoming_ = std::move(confirmed_incoming);
  confirmed_incoming_order_ = std::move(confirmed_incoming_order);
  done_relays_ = std::move(relays);
  precopy_outgoing_ = std::move(precopy_outgoing);
  precopy_staging_ = std::move(precopy_staging);
  transfer_tasks_ = std::move(transfer_tasks);
  peer_sessions_ = std::move(peer_sessions);
  return Status::kOk;
}

Status MigrationEnclave::restore_queue(ByteView sealed_queue) {
  auto scope = enter_ecall();
  auto unsealed = unseal(sealed_queue);
  if (!unsealed.ok()) return unsealed.status();
  if (to_string(unsealed.value().aad) != kQueueAad) return Status::kTampered;
  const Status status = apply_queue(unsealed.value().plaintext);
  // The unsealed snapshot embeds raw channel session keys.
  secure_wipe(unsealed.value().plaintext);
  return status;
}

// ----- provider authentication helpers -----

ProviderAuth MigrationEnclave::make_provider_auth(
    const std::array<uint8_t, 32>& transcript) {
  ProviderAuth auth;
  auth.credential = credential_;
  auth.transcript_signature =
      machine_key_.sign(provider_auth_message(transcript));
  return auth;
}

Status MigrationEnclave::verify_provider_auth(
    const ProviderAuth& auth, const std::array<uint8_t, 32>& transcript,
    const std::string& expected_address, std::string* region_out) {
  // 1. The credential must be issued by our cloud provider's CA.
  if (!platform::ProviderCa::verify(provider_ca_key_, auth.credential)) {
    return Status::kProviderAuthFailure;
  }
  // 2. It must be bound to the machine we think we are talking to.
  if (auth.credential.address != expected_address) {
    return Status::kProviderAuthFailure;
  }
  // 3. The certified machine key must have signed THIS session transcript
  //    (freshness: no replaying certificates from other sessions).
  if (!crypto::ed25519_verify(auth.credential.machine_public_key,
                              provider_auth_message(transcript),
                              auth.transcript_signature)) {
    return Status::kProviderAuthFailure;
  }
  if (region_out != nullptr) *region_out = auth.credential.region;
  return Status::kOk;
}

// ----- durable-ME deployment helpers -----

namespace {
std::string me_queue_key(const platform::Machine& machine) {
  return machine.address() + ".me-queue";
}
}  // namespace

platform::Machine::MgmtEnclaveFactory durable_me_factory(
    platform::ProviderCa& provider) {
  return [&provider](platform::Machine& machine)
             -> std::unique_ptr<sgx::Enclave> {
    auto me = std::make_unique<MigrationEnclave>(
        machine, MigrationEnclave::standard_image(), provider);
    const std::string key = me_queue_key(machine);
    me->set_queue_persist_callback([&machine, key](ByteView blob) {
      // Versioned two-slot write: a crash mid-persist leaves the previous
      // intact snapshot recoverable.
      machine.storage().put_versioned(key, blob);
    });
    auto stored = machine.storage().get_versioned(key);
    if (stored.ok()) {
      // A snapshot that fails to unseal/parse leaves the ME with an empty
      // queue (availability): retained copies at the peer MEs still hold
      // every in-flight migration's data.
      (void)me->restore_queue(stored.value());
    }
    return me;
  };
}

MigrationEnclave* install_durable_me(platform::Machine& machine,
                                     platform::ProviderCa& provider) {
  machine.install_management_enclave(durable_me_factory(provider));
  return me_on(machine);
}

MigrationEnclave* me_on(platform::Machine& machine) {
  return dynamic_cast<MigrationEnclave*>(machine.management_enclave());
}

}  // namespace sgxmig::migration

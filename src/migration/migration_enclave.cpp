#include "migration/migration_enclave.h"

#include "net/network.h"

namespace sgxmig::migration {

namespace {
constexpr char kDoneMarker[] = "SGXMIG-DONE";
constexpr char kAcceptedMarker[] = "SGXMIG-ACCEPTED";

MeResponse error_response(Status status) {
  MeResponse resp;
  resp.status = status;
  return resp;
}
}  // namespace

MigrationEnclave::MigrationEnclave(sgx::PlatformIface& platform,
                                   std::shared_ptr<const sgx::EnclaveImage> image,
                                   platform::ProviderCa& provider)
    : Enclave(platform, std::move(image)),
      machine_key_(crypto::Ed25519KeyPair::from_seed(
          to_array<32>(rng().bytes(32)))),
      credential_(provider.issue(platform.address(), platform.region(),
                                 platform.cpu_cores(),
                                 machine_key_.public_key())),
      provider_ca_key_(provider.public_key()) {
  if (auto* net = this->platform().network()) {
    net->register_endpoint(this->platform().address() + "/me",
                           [this](ByteView raw) { return handle_request(raw); });
  }
}

MigrationEnclave::~MigrationEnclave() {
  if (auto* net = platform().network()) {
    net->unregister_endpoint(platform().address() + "/me");
  }
}

std::shared_ptr<const sgx::EnclaveImage> MigrationEnclave::standard_image() {
  static const std::shared_ptr<const sgx::EnclaveImage> image =
      sgx::EnclaveImage::create("migration-enclave", /*code_version=*/1,
                                /*signer_name=*/"cloud-provider",
                                /*isv_prod_id=*/0x00e0, /*isv_svn=*/1);
  return image;
}

uint64_t MigrationEnclave::fresh_id() {
  const Bytes b = rng().bytes(8);
  uint64_t id = 0;
  for (int i = 0; i < 8; ++i) id = (id << 8) | b[i];
  return id == 0 ? 1 : id;
}

OutgoingState MigrationEnclave::outgoing_state(
    const sgx::Measurement& mr) const {
  // Report the most recent transfer for this enclave identity (the same
  // enclave may migrate away repeatedly over its lifetime).
  const OutgoingTransfer* latest = nullptr;
  for (const auto& [id, transfer] : outgoing_) {
    if (transfer.source_mr == mr &&
        (latest == nullptr || transfer.sequence > latest->sequence)) {
      latest = &transfer;
    }
  }
  return latest == nullptr ? OutgoingState::kNone : latest->state;
}

Result<Bytes> MigrationEnclave::handle_request(ByteView raw) {
  auto scope = enter_ecall();
  auto parsed = MeRequest::deserialize(raw);
  if (!parsed.ok()) return error_response(Status::kTampered).serialize();
  const MeRequest& req = parsed.value();

  MeResponse resp;
  switch (req.type) {
    case MeMsgType::kLaStart: resp = on_la_start(req); break;
    case MeMsgType::kLaMsg2: resp = on_la_msg2(req); break;
    case MeMsgType::kLaRecord: resp = on_la_record(req); break;
    case MeMsgType::kRaMsg1: resp = on_ra_msg1(req); break;
    case MeMsgType::kRaMsg3: resp = on_ra_msg3(req); break;
    case MeMsgType::kTransfer: resp = on_transfer(req); break;
    case MeMsgType::kDone: resp = on_done(req); break;
  }
  return resp.serialize();
}

// ----- local attestation service -----

MeResponse MigrationEnclave::on_la_start(const MeRequest& req) {
  LaSessionState session;
  session.dh = std::make_unique<sgx::DhSession>(platform(), identity(),
                                                sgx::DhSession::Role::kResponder);
  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = session.dh->create_msg1().serialize();
  la_sessions_[req.id] = std::move(session);
  return resp;
}

MeResponse MigrationEnclave::on_la_msg2(const MeRequest& req) {
  const auto it = la_sessions_.find(req.id);
  if (it == la_sessions_.end()) return error_response(Status::kInvalidState);
  auto msg2 = sgx::DhMsg2::deserialize(req.payload);
  if (!msg2.ok()) return error_response(Status::kTampered);
  auto msg3 = it->second.dh->handle_msg2(msg2.value());
  if (!msg3.ok()) {
    la_sessions_.erase(it);
    return error_response(msg3.status());
  }
  // Record the attested identity of the calling enclave: this MRENCLAVE is
  // what migration data is matched against (paper §VI-A).
  it->second.peer = it->second.dh->peer_identity();
  it->second.channel.emplace(it->second.dh->session_key(),
                             net::SecureChannel::Role::kResponder);
  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = msg3.value().serialize();
  return resp;
}

MeResponse MigrationEnclave::on_la_record(const MeRequest& req) {
  const auto it = la_sessions_.find(req.id);
  if (it == la_sessions_.end() || !it->second.channel.has_value()) {
    return error_response(Status::kInvalidState);
  }
  LaSessionState& session = it->second;
  auto plaintext = session.channel->open_record(req.payload);
  if (!plaintext.ok()) return error_response(plaintext.status());
  auto msg = LibMsg::deserialize(plaintext.value());
  if (!msg.ok()) return error_response(Status::kTampered);

  LibMsg reply;
  switch (msg.value().type) {
    case LibMsgType::kMigrateRequest:
      reply = on_migrate_request(session, msg.value());
      break;
    case LibMsgType::kFetchIncoming:
      reply = on_fetch_incoming(req.id, session);
      break;
    case LibMsgType::kConfirmMigration:
      reply = on_confirm_migration(req.id, session);
      break;
    case LibMsgType::kQueryStatus:
      reply = on_query_status(session);
      break;
    default:
      reply.type = LibMsgType::kError;
      reply.status = Status::kInvalidParameter;
      break;
  }
  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = session.channel->seal_record(reply.serialize());
  return resp;
}

// ----- inner LibMsg handlers -----

LibMsg MigrationEnclave::on_migrate_request(LaSessionState& session,
                                            const LibMsg& msg) {
  LibMsg reply;
  auto request = MigrateRequestPayload::deserialize(msg.payload);
  if (!request.ok()) {
    reply.type = LibMsgType::kError;
    reply.status = Status::kTampered;
    return reply;
  }
  const Status status =
      run_outgoing(session.peer.mr_enclave, request.value());
  if (status != Status::kOk) {
    reply.type = LibMsgType::kError;
    reply.status = status;
    return reply;
  }
  reply.type = LibMsgType::kMigrateAccepted;
  reply.status = Status::kOk;
  return reply;
}

LibMsg MigrationEnclave::on_fetch_incoming(uint64_t session_id,
                                           LaSessionState& session) {
  LibMsg reply;
  const auto it = pending_.find(session.peer.mr_enclave);
  if (it == pending_.end()) {
    reply.type = LibMsgType::kError;
    reply.status = Status::kNoPendingMigration;
    return reply;
  }
  // Deliver to exactly one enclave instance: once handed to a session, no
  // other session may fetch it (prevents forking the migration data into
  // two concurrently-running destination enclaves).
  if (it->second.delivering_session != 0 &&
      it->second.delivering_session != session_id) {
    reply.type = LibMsgType::kError;
    reply.status = Status::kMigrationInProgress;
    return reply;
  }
  it->second.delivering_session = session_id;
  reply.type = LibMsgType::kIncomingData;
  reply.status = Status::kOk;
  reply.payload = it->second.data.serialize();
  return reply;
}

LibMsg MigrationEnclave::on_confirm_migration(uint64_t session_id,
                                              LaSessionState& session) {
  LibMsg reply;
  const auto it = pending_.find(session.peer.mr_enclave);
  if (it == pending_.end() || it->second.delivering_session != session_id) {
    reply.type = LibMsgType::kError;
    reply.status = Status::kInvalidState;
    return reply;
  }
  const uint64_t transfer_id = it->second.transfer_id;
  const std::string source_address = it->second.source_me_address;
  pending_.erase(it);

  // Relay DONE to the source ME so it can delete its retained copy
  // (fire-and-forget: if the source is unreachable it simply keeps the
  // data as "pending", per §V-D's error handling).
  const auto inbound_it = inbound_.find(transfer_id);
  if (inbound_it != inbound_.end() && inbound_it->second.channel.has_value()) {
    BinaryWriter done;
    done.str(kDoneMarker);
    done.u64(transfer_id);
    MeRequest done_req;
    done_req.type = MeMsgType::kDone;
    done_req.id = transfer_id;
    done_req.payload = inbound_it->second.channel->seal_record(done.data());
    if (auto* net = platform().network()) {
      net->rpc(source_address + "/me", done_req.serialize());
    }
    inbound_.erase(inbound_it);
  }

  reply.type = LibMsgType::kConfirmAck;
  reply.status = Status::kOk;
  return reply;
}

LibMsg MigrationEnclave::on_query_status(LaSessionState& session) {
  LibMsg reply;
  reply.type = LibMsgType::kStatusReport;
  reply.status = Status::kOk;
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(outgoing_state(session.peer.mr_enclave)));
  reply.payload = w.take();
  return reply;
}

// ----- outgoing migration (source side, paper Fig. 2 steps 3-4) -----

Status MigrationEnclave::run_outgoing(const sgx::Measurement& source_mr,
                                      const MigrateRequestPayload& request) {
  auto* net = platform().network();
  if (net == nullptr) return Status::kNetworkUnreachable;
  if (request.destination_address == platform().address()) {
    return Status::kInvalidParameter;
  }
  const std::string dest_endpoint = request.destination_address + "/me";
  const uint64_t transfer_id = fresh_id();

  // --- mutual remote attestation ---
  sgx::RaSession ra(platform(), identity(), sgx::RaSession::Role::kInitiator);
  MeRequest m1;
  m1.type = MeMsgType::kRaMsg1;
  m1.id = transfer_id;
  m1.payload = ra.create_msg1().serialize();
  auto raw2 = net->rpc(dest_endpoint, m1.serialize());
  if (!raw2.ok()) return raw2.status();
  auto resp2 = MeResponse::deserialize(raw2.value());
  if (!resp2.ok()) return Status::kTampered;
  if (resp2.value().status != Status::kOk) return resp2.value().status;
  auto msg2 = sgx::RaMsg2::deserialize(resp2.value().payload);
  if (!msg2.ok()) return Status::kTampered;
  auto msg3 = ra.handle_msg2(msg2.value());
  if (!msg3.ok()) return msg3.status();

  // The destination ME must run exactly this ME's code (paper §VI-A).
  if (!(ra.peer_identity().mr_enclave == identity().mr_enclave)) {
    return Status::kIdentityMismatch;
  }

  // --- provider authentication (both directions) ---
  BinaryWriter m3_payload;
  m3_payload.bytes(msg3.value().serialize());
  m3_payload.bytes(make_provider_auth(ra.transcript_hash()).serialize());
  MeRequest m3;
  m3.type = MeMsgType::kRaMsg3;
  m3.id = transfer_id;
  m3.payload = m3_payload.take();
  auto raw3 = net->rpc(dest_endpoint, m3.serialize());
  if (!raw3.ok()) return raw3.status();
  auto resp3 = MeResponse::deserialize(raw3.value());
  if (!resp3.ok()) return Status::kTampered;
  if (resp3.value().status != Status::kOk) return resp3.value().status;
  auto peer_auth = ProviderAuth::deserialize(resp3.value().payload);
  if (!peer_auth.ok()) return Status::kTampered;
  std::string peer_region;
  const Status auth_status =
      verify_provider_auth(peer_auth.value(), ra.transcript_hash(),
                           request.destination_address, &peer_region);
  if (auth_status != Status::kOk) return auth_status;

  // --- migration policy (paper §X extension): evaluated against the
  // destination's provider-CERTIFIED attributes, not self-claimed ones ---
  const Status policy_status =
      request.policy.evaluate(peer_auth.value().credential);
  if (policy_status != Status::kOk) return policy_status;
  (void)peer_region;

  // --- transfer over the attestation-derived channel ---
  net::SecureChannel channel(ra.session_key(),
                             net::SecureChannel::Role::kInitiator);
  TransferPayload payload;
  payload.source_mr_enclave = source_mr;
  payload.source_me_address = platform().address();
  payload.data = request.data;
  const Bytes payload_bytes = payload.serialize();
  charge_gcm(payload_bytes.size());
  MeRequest t;
  t.type = MeMsgType::kTransfer;
  t.id = transfer_id;
  t.payload = channel.seal_record(payload_bytes);
  auto raw_t = net->rpc(dest_endpoint, t.serialize());
  if (!raw_t.ok()) return raw_t.status();
  auto resp_t = MeResponse::deserialize(raw_t.value());
  if (!resp_t.ok()) return Status::kTampered;
  if (resp_t.value().status != Status::kOk) return resp_t.value().status;
  auto ack = channel.open_record(resp_t.value().payload);
  if (!ack.ok()) return ack.status();
  if (to_string(ack.value()) != kAcceptedMarker) return Status::kTampered;

  // Retain the data until the destination confirms delivery (paper §V-D).
  OutgoingTransfer transfer;
  transfer.source_mr = source_mr;
  transfer.destination_address = request.destination_address;
  transfer.retained_data = request.data.serialize();
  transfer.channel = std::move(channel);
  transfer.state = OutgoingState::kPending;
  transfer.sequence = next_outgoing_sequence_++;
  outgoing_[transfer_id] = std::move(transfer);
  return Status::kOk;
}

// ----- incoming migration (destination side) -----

MeResponse MigrationEnclave::on_ra_msg1(const MeRequest& req) {
  auto msg1 = sgx::RaMsg1::deserialize(req.payload);
  if (!msg1.ok()) return error_response(Status::kTampered);
  InboundTransfer inbound;
  inbound.ra = std::make_unique<sgx::RaSession>(
      platform(), identity(), sgx::RaSession::Role::kResponder);
  auto msg2 = inbound.ra->handle_msg1(msg1.value());
  if (!msg2.ok()) return error_response(msg2.status());
  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = msg2.value().serialize();
  inbound_[req.id] = std::move(inbound);
  return resp;
}

MeResponse MigrationEnclave::on_ra_msg3(const MeRequest& req) {
  const auto it = inbound_.find(req.id);
  if (it == inbound_.end()) return error_response(Status::kInvalidState);
  InboundTransfer& inbound = it->second;

  BinaryReader r(req.payload);
  const Bytes msg3_bytes = r.bytes(1u << 16);
  const Bytes auth_bytes = r.bytes(1u << 16);
  if (!r.done()) return error_response(Status::kTampered);
  auto msg3 = sgx::RaMsg3::deserialize(msg3_bytes);
  if (!msg3.ok()) return error_response(Status::kTampered);
  const Status ra_status = inbound.ra->handle_msg3(msg3.value());
  if (ra_status != Status::kOk) {
    inbound_.erase(it);
    return error_response(ra_status);
  }
  // Peer ME identity check (mirror of the outgoing side).
  if (!(inbound.ra->peer_identity().mr_enclave == identity().mr_enclave)) {
    inbound_.erase(it);
    return error_response(Status::kIdentityMismatch);
  }
  // Source provider authentication.
  auto auth = ProviderAuth::deserialize(auth_bytes);
  if (!auth.ok()) {
    inbound_.erase(it);
    return error_response(Status::kTampered);
  }
  std::string source_region;
  const Status auth_status = verify_provider_auth(
      auth.value(), inbound.ra->transcript_hash(),
      /*expected_address=*/auth.value().credential.address, &source_region);
  if (auth_status != Status::kOk) {
    inbound_.erase(it);
    return error_response(auth_status);
  }
  // Machine-level incoming policy.
  if (!allowed_source_regions_.empty()) {
    bool allowed = false;
    for (const auto& region : allowed_source_regions_) {
      if (region == source_region) allowed = true;
    }
    if (!allowed) {
      inbound_.erase(it);
      return error_response(Status::kPolicyViolation);
    }
  }
  inbound.source_region = source_region;
  inbound.authenticated = true;
  inbound.channel.emplace(inbound.ra->session_key(),
                          net::SecureChannel::Role::kResponder);

  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload = make_provider_auth(inbound.ra->transcript_hash()).serialize();
  return resp;
}

MeResponse MigrationEnclave::on_transfer(const MeRequest& req) {
  const auto it = inbound_.find(req.id);
  if (it == inbound_.end() || !it->second.authenticated) {
    return error_response(Status::kInvalidState);
  }
  InboundTransfer& inbound = it->second;
  auto plaintext = inbound.channel->open_record(req.payload);
  if (!plaintext.ok()) return error_response(plaintext.status());
  charge_gcm(plaintext.value().size());
  auto payload = TransferPayload::deserialize(plaintext.value());
  if (!payload.ok()) return error_response(Status::kTampered);

  // One pending migration per enclave identity at a time.
  if (pending_.count(payload.value().source_mr_enclave) != 0) {
    return error_response(Status::kAlreadyExists);
  }
  PendingIncoming pending;
  pending.transfer_id = req.id;
  pending.data = payload.value().data;
  pending.source_me_address = payload.value().source_me_address;
  pending_[payload.value().source_mr_enclave] = std::move(pending);

  MeResponse resp;
  resp.status = Status::kOk;
  resp.payload =
      inbound.channel->seal_record(to_bytes(std::string_view(kAcceptedMarker)));
  return resp;
}

MeResponse MigrationEnclave::on_done(const MeRequest& req) {
  const auto it = outgoing_.find(req.id);
  if (it == outgoing_.end()) return error_response(Status::kInvalidState);
  OutgoingTransfer& transfer = it->second;
  auto plaintext = transfer.channel->open_record(req.payload);
  if (!plaintext.ok()) return error_response(plaintext.status());
  BinaryReader r(plaintext.value());
  const std::string marker = r.str(64);
  const uint64_t confirmed_id = r.u64();
  if (!r.done() || marker != kDoneMarker || confirmed_id != req.id) {
    return error_response(Status::kTampered);
  }
  // Destination confirmed: delete the retained migration data.
  secure_wipe(transfer.retained_data);
  transfer.retained_data.clear();
  transfer.state = OutgoingState::kCompleted;
  MeResponse resp;
  resp.status = Status::kOk;
  return resp;
}

// ----- provider authentication helpers -----

ProviderAuth MigrationEnclave::make_provider_auth(
    const std::array<uint8_t, 32>& transcript) {
  ProviderAuth auth;
  auth.credential = credential_;
  auth.transcript_signature =
      machine_key_.sign(provider_auth_message(transcript));
  return auth;
}

Status MigrationEnclave::verify_provider_auth(
    const ProviderAuth& auth, const std::array<uint8_t, 32>& transcript,
    const std::string& expected_address, std::string* region_out) {
  // 1. The credential must be issued by our cloud provider's CA.
  if (!platform::ProviderCa::verify(provider_ca_key_, auth.credential)) {
    return Status::kProviderAuthFailure;
  }
  // 2. It must be bound to the machine we think we are talking to.
  if (auth.credential.address != expected_address) {
    return Status::kProviderAuthFailure;
  }
  // 3. The certified machine key must have signed THIS session transcript
  //    (freshness: no replaying certificates from other sessions).
  if (!crypto::ed25519_verify(auth.credential.machine_public_key,
                              provider_auth_message(transcript),
                              auth.transcript_signature)) {
    return Status::kProviderAuthFailure;
  }
  if (region_out != nullptr) *region_out = auth.credential.region;
  return Status::kOk;
}

}  // namespace sgxmig::migration

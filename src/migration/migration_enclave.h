// The Migration Enclave (ME) — paper §V-B / §VI-A.
//
// One ME runs in the management VM of every physical machine.  It:
//  * accepts local attestations from Migration Libraries and records the
//    attested MRENCLAVE of each session;
//  * for OUTGOING migrations: performs mutual remote attestation with the
//    destination ME, checks that the peer has *exactly its own* MRENCLAVE,
//    authenticates the peer as a machine of the same cloud provider (via
//    the operator-issued certificate + a signature over the attestation
//    transcript), enforces region policies, transfers the migration data
//    over the derived secure channel, and retains a copy until the
//    destination confirms (DONE);
//  * for INCOMING migrations: verifies the same things in the other
//    direction, stores the data until a local enclave with the matching
//    MRENCLAVE attests and fetches it, and relays the DONE confirmation
//    back to the source ME so it can delete its copy.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "migration/protocol.h"
#include "net/channel.h"
#include "platform/provider.h"
#include "sgx/dh.h"
#include "sgx/enclave.h"
#include "sgx/remote_attestation.h"

namespace sgxmig::migration {

class MigrationEnclave : public sgx::Enclave {
 public:
  /// Secure setup phase (paper §V-B): the ME generates its machine
  /// authentication key and the cloud operator certifies it for this
  /// machine's address and region.  Also registers the ME's network
  /// endpoint ("<address>/me").
  MigrationEnclave(sgx::PlatformIface& platform,
                   std::shared_ptr<const sgx::EnclaveImage> image,
                   platform::ProviderCa& provider);
  ~MigrationEnclave() override;

  /// The standard ME image every machine of the provider deploys.  MEs
  /// only cooperate with peers measuring to the same MRENCLAVE.
  static std::shared_ptr<const sgx::EnclaveImage> standard_image();

  /// Untrusted dispatcher entry point: raw request from the network.
  Result<Bytes> handle_request(ByteView raw);

  /// Optional machine-level policy: if non-empty, incoming migrations are
  /// only accepted from source machines in these regions.
  void set_allowed_source_regions(std::vector<std::string> regions) {
    allowed_source_regions_ = std::move(regions);
  }

  // ----- introspection (used by tests and the bench harness) -----
  size_t pending_incoming_count() const { return pending_.size(); }
  size_t outgoing_count() const { return outgoing_.size(); }
  OutgoingState outgoing_state(const sgx::Measurement& mr) const;

 private:
  struct LaSessionState {
    std::unique_ptr<sgx::DhSession> dh;
    std::optional<net::SecureChannel> channel;
    sgx::EnclaveIdentity peer;
  };
  struct InboundTransfer {
    std::unique_ptr<sgx::RaSession> ra;
    std::optional<net::SecureChannel> channel;
    bool authenticated = false;
    std::string source_region;
  };
  struct OutgoingTransfer {
    sgx::Measurement source_mr{};
    std::string destination_address;
    Bytes retained_data;  // kept until DONE (paper §V-D)
    std::optional<net::SecureChannel> channel;
    OutgoingState state = OutgoingState::kPending;
    uint64_t sequence = 0;  // creation order, for status queries
  };
  struct PendingIncoming {
    uint64_t transfer_id = 0;
    MigrationData data;
    std::string source_me_address;
    uint64_t delivering_session = 0;  // LA session the data was handed to
  };

  // outer-envelope handlers
  MeResponse on_la_start(const MeRequest& req);
  MeResponse on_la_msg2(const MeRequest& req);
  MeResponse on_la_record(const MeRequest& req);
  MeResponse on_ra_msg1(const MeRequest& req);
  MeResponse on_ra_msg3(const MeRequest& req);
  MeResponse on_transfer(const MeRequest& req);
  MeResponse on_done(const MeRequest& req);

  // inner LibMsg handlers (already authenticated via the LA channel)
  LibMsg on_migrate_request(LaSessionState& session, const LibMsg& msg);
  LibMsg on_fetch_incoming(uint64_t session_id, LaSessionState& session);
  LibMsg on_confirm_migration(uint64_t session_id, LaSessionState& session);
  LibMsg on_query_status(LaSessionState& session);

  /// Runs the whole outgoing side: RA + provider auth + policy + transfer.
  Status run_outgoing(const sgx::Measurement& source_mr,
                      const MigrateRequestPayload& request);

  /// Verifies the peer ME's provider authentication for a transcript.
  Status verify_provider_auth(const ProviderAuth& auth,
                              const std::array<uint8_t, 32>& transcript,
                              const std::string& expected_address,
                              std::string* region_out);

  ProviderAuth make_provider_auth(const std::array<uint8_t, 32>& transcript);

  uint64_t fresh_id();

  crypto::Ed25519KeyPair machine_key_;
  platform::MachineCredential credential_;
  crypto::Ed25519PublicKey provider_ca_key_{};
  std::vector<std::string> allowed_source_regions_;

  std::map<uint64_t, LaSessionState> la_sessions_;
  std::map<uint64_t, InboundTransfer> inbound_;
  std::map<uint64_t, OutgoingTransfer> outgoing_;
  std::map<sgx::Measurement, PendingIncoming> pending_;
  uint64_t next_outgoing_sequence_ = 1;
};

}  // namespace sgxmig::migration

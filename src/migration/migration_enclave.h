// The Migration Enclave (ME) — paper §V-B / §VI-A.
//
// One ME runs in the management VM of every physical machine.  It:
//  * accepts local attestations from Migration Libraries and records the
//    attested MRENCLAVE of each session;
//  * for OUTGOING migrations: performs mutual remote attestation with the
//    destination ME, checks that the peer has *exactly its own* MRENCLAVE,
//    authenticates the peer as a machine of the same cloud provider (via
//    the operator-issued certificate + a signature over the attestation
//    transcript), enforces region policies, transfers the migration data
//    over the derived secure channel, and retains a copy until the
//    destination confirms (DONE);
//  * for INCOMING migrations: verifies the same things in the other
//    direction, stores the data until a local enclave with the matching
//    MRENCLAVE attests and fetches it, and relays the DONE confirmation
//    back to the source ME so it can delete its copy.
//
// DURABLE TRANSFER QUEUE (§V-D hardening): the retention guarantee above
// is only worth anything if it survives the ME process itself.  Every
// queue transition (retain outgoing / accept incoming / confirm / DONE)
// seals the transfer queue — retained data, pending incoming entries, the
// secure-channel key material needed to finish each conversation, and the
// DONE-relay backlog — through the PersistenceEngine stack into an
// untrusted-storage OCALL (set_queue_persist_callback).  A restarted ME
// restores the queue via restore_queue() and resumes: it can still be
// DONE-confirmed for transfers it retained, still delivers pending data,
// and still re-relays unacknowledged DONEs.  Session state (local
// attestation channels) is deliberately NOT durable: libraries re-attest.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "migration/persistence_engine.h"
#include "migration/protocol.h"
#include "net/channel.h"
#include "platform/machine.h"
#include "platform/provider.h"
#include "sgx/dh.h"
#include "sgx/enclave.h"
#include "sgx/remote_attestation.h"

namespace sgxmig::migration {

class MigrationEnclave : public sgx::Enclave, private PersistSink {
 public:
  /// Secure setup phase (paper §V-B): the ME generates its machine
  /// authentication key and the cloud operator certifies it for this
  /// machine's address and region.  Also registers the ME's network
  /// endpoint ("<address>/me").  `engine` decides when the transfer queue
  /// is sealed + OCALLed out; nullptr selects the synchronous default.
  MigrationEnclave(sgx::PlatformIface& platform,
                   std::shared_ptr<const sgx::EnclaveImage> image,
                   platform::ProviderCa& provider,
                   std::unique_ptr<PersistenceEngine> engine = nullptr);
  ~MigrationEnclave() override;

  /// The standard ME image every machine of the provider deploys.  MEs
  /// only cooperate with peers measuring to the same MRENCLAVE.
  static std::shared_ptr<const sgx::EnclaveImage> standard_image();

  /// Untrusted dispatcher entry point: raw request from the network.
  Result<Bytes> handle_request(ByteView raw);

  // ----- pipelined outgoing transfers -----
  //
  // A kMigrateEnqueue request queues a per-transfer TransferTask instead
  // of running the ME<->ME conversation inline: the task decomposes the
  // old run_outgoing call chain into resumable steps (attest msg1/msg3 ->
  // ship -> await-ack -> retained) whose round trips travel through
  // net::Network::post, so N concurrent outgoing transfers interleave
  // over independent RA channels instead of serializing.  Tasks are part
  // of the durable queue (v3) from the moment they are queued: a restarted
  // ME resumes every in-flight pipeline (re-attesting under a fresh
  // transfer id; the request nonce makes re-ships exactly-once end to
  // end).  Terminal failures are held until the library polls them
  // (kPollTransfer), mapping onto the existing retry classification.

  /// Re-issues the next step of every task that is not awaiting a reply
  /// (freshly queued, restored from the durable queue after a restart, or
  /// whose conversation collapsed).  Returns the number of live tasks.
  /// Drive this alongside Network::pump_one().
  size_t pump();

  size_t transfer_task_count() const { return transfer_tasks_.size(); }

  /// Ships pre-copy ROUND hops through Network::post/pump() like
  /// TransferTask steps instead of a synchronous rpc: kPrecopyRound is
  /// acked as soon as the chunks are merged + persisted at the SOURCE ME,
  /// and the wire hop to the destination overlaps with every other lane.
  /// The finalize stays synchronous (it is the freeze-window tail and must
  /// not race an in-flight round — it resyncs the full merged set).
  void set_async_precopy(bool on) { async_precopy_ = on; }

  /// Freeze-aware arm pacing: at most this many armed payloads may be in
  /// flight before the poll stops reporting kSlotLive for parked
  /// (kAwaitArm) tasks.  Keeps the freeze window of each reserved task
  /// bounded by its OWN ship + accept, not the whole in-flight window's
  /// serialized source-lane work.  0 = unpaced (every parked task goes
  /// slot-live as soon as it is attested).
  void set_arm_window(uint32_t window) { arm_window_ = window; }

  /// Test hook: simulates an ME re-deployment without a process restart —
  /// cached-resume peers must fall back to a full handshake.
  void bump_instance_epoch();
  uint64_t instance_epoch() const { return instance_epoch_; }

  /// Handshake economics (bench observables): full mutual-RA handshakes
  /// completed as the INITIATOR vs. one-round-trip cached resumes.
  uint64_t full_handshake_count() const { return full_handshakes_; }
  uint64_t resumed_handshake_count() const { return resumed_handshakes_; }
  size_t peer_session_count() const { return peer_sessions_.size(); }

  /// Ages out destination-side pre-copy staging whose source stopped
  /// shipping rounds (abandoned without a reachable abort path); entries
  /// untouched for `age` are swept.  Duration::max() disables the sweep.
  void set_precopy_staging_max_age(Duration age) {
    precopy_staging_max_age_ = age;
  }
  /// Runs one sweep now; returns how many staging entries were expired.
  /// Also run opportunistically (rate-limited) on any inbound request.
  size_t sweep_stale_precopy_staging();

  /// Optional machine-level policy: if non-empty, incoming migrations are
  /// only accepted from source machines in these regions.
  void set_allowed_source_regions(std::vector<std::string> regions) {
    allowed_source_regions_ = std::move(regions);
  }

  // ----- durable transfer queue -----

  /// OCALL handing the sealed queue snapshot to the untrusted host for
  /// storage (the host should write it with UntrustedStore::put_versioned
  /// so a torn write cannot destroy the only copy).
  using QueuePersistCallback = std::function<void(ByteView sealed_queue)>;
  void set_queue_persist_callback(QueuePersistCallback callback) {
    queue_persist_callback_ = std::move(callback);
  }

  /// Restores the transfer queue from a previously persisted snapshot.
  /// Call once, right after construction of a restarted ME, before it
  /// serves requests.  Delivery pins and LA sessions are not restored:
  /// pending data is re-armed for whichever matching enclave attests next.
  Status restore_queue(ByteView sealed_queue);

  /// Latest sealed queue snapshot (what the persist OCALL last received).
  const Bytes& sealed_queue_state() const { return sealed_queue_state_; }

  /// Re-sends DONE confirmations whose delivery previously failed (source
  /// ME unreachable / restarting).  Returns how many are still unrelayed.
  /// Also retried opportunistically whenever the ME handles any request.
  size_t retry_done_relays();

  /// Reconciliation sweep for ONE undelivered pending entry (the
  /// lost-ACCEPTED re-route orphan, ROADMAP): asks the entry's
  /// originating source ME — over a fresh mutually attested channel —
  /// whether that logical migration is still live.  If the source ME
  /// reports the identity completed a NEWER transfer (and knows nothing
  /// live about this nonce), the stale entry (pre-migration state a
  /// future instance must never fetch) is expired, clearing the
  /// kAlreadyExists block for this enclave->machine pair.  Returns kOk
  /// when the entry was expired, kMigrationInProgress when the source
  /// considers it live (or could not vouch), kNoPendingMigration when
  /// there is nothing to reconcile.  Also invoked automatically when a
  /// new transfer is blocked by an undelivered pending entry.
  Status reconcile_pending(const sgx::Measurement& mr);

  /// Post-storm queue janitors (chaos harness + recovery drills).  A
  /// fault storm can strand queue entries whose normal cleanup message
  /// was itself lost: re-routed attempts whose abort never reached this
  /// ME, and pending entries whose lost-ACCEPTED orphan reconcile only
  /// runs when a NEW transfer collides with them.  Both sweeps act only
  /// on POSITIVE evidence and leave anything ambiguous retained (§V-D).
  ///
  /// reconcile_all_pending: one reconcile_pending sweep (same rate
  /// limit) over every undelivered pending entry; returns how many
  /// pending entries remain afterwards.
  size_t reconcile_all_pending();
  /// sweep_superseded_outgoing: expires retained outgoing transfers,
  /// pipelined transfer tasks, and source-side pre-copy attempts whose
  /// enclave identity verifiably completed a NEWER migration from this
  /// ME (a completion record under a different nonce, none under the
  /// entry's own).  Returns how many entries were expired.
  size_t sweep_superseded_outgoing();

  /// How long a delivery pin on pending incoming data survives without
  /// the pinned LA session showing activity.  After the timeout a NEW
  /// attested session of the same MRENCLAVE may re-arm the delivery (the
  /// pinned destination instance is presumed dead — the re-fetch path of
  /// a crashed destination enclave).  This is an explicit
  /// availability-vs-fork dial: an instance that fetched but is merely
  /// SLOW past the timeout still holds the data, so a takeover hands a
  /// second copy to the replacement (the revoked session blocks the old
  /// instance's confirm, not its memory).  Duration::max() restores the
  /// paper-strict unconditional pin (never fork, possibly stuck forever).
  void set_delivery_takeover_timeout(Duration timeout) {
    delivery_takeover_timeout_ = timeout;
  }

  // ----- introspection (used by tests and the bench harness) -----
  size_t pending_incoming_count() const { return pending_.size(); }
  /// Live (retained, not yet confirmed) outgoing transfers.  Confirmed
  /// transfers are erased from the queue; only a compact per-identity
  /// completion record remains.
  size_t outgoing_count() const { return outgoing_.size(); }
  size_t la_session_count() const { return la_sessions_.size(); }
  size_t unrelayed_done_count() const { return done_relays_.size(); }
  OutgoingState outgoing_state(const sgx::Measurement& mr) const;
  /// Live pre-copy attempts this ME is driving as the SOURCE side.
  size_t precopy_outgoing_count() const { return precopy_outgoing_.size(); }
  /// Pre-copy attempts staged on this ME as the DESTINATION side (not yet
  /// finalized into a pending entry).
  size_t precopy_staging_count() const { return precopy_staging_.size(); }

  /// Caps the FIFO-bounded completed-outgoing and confirmed-incoming
  /// histories (the exactly-once dedup retention).  0 restores the
  /// library default; values above the default are clamped to it, so a
  /// restored durable queue always passes the serialization tamper
  /// check.  Shrinking trims the oldest entries immediately.
  void set_completed_history_limit(size_t limit);
  /// Retained completed-outgoing records (memory-bound observable).
  size_t completed_history_size() const { return completed_order_.size(); }
  /// Retained confirmed-incoming records (memory-bound observable).
  size_t confirmed_incoming_size() const {
    return confirmed_incoming_order_.size();
  }

 private:
  struct LaSessionState {
    std::unique_ptr<sgx::DhSession> dh;
    std::optional<net::SecureChannel> channel;
    sgx::EnclaveIdentity peer;
    Duration last_used{};  // virtual time; drives delivery-pin takeover
  };
  struct InboundTransfer {
    std::unique_ptr<sgx::RaSession> ra;  // null once restored from disk
    std::optional<net::SecureChannel> channel;
    bool authenticated = false;
    std::string source_region;
    /// Provider-certified address of the peer machine (verified against
    /// its credential): authorizes source-scoped operations like kAbort.
    std::string source_address;
  };
  struct OutgoingTransfer {
    sgx::Measurement source_mr{};
    std::string destination_address;
    uint64_t request_nonce = 0;  // ties the transfer to one ML attempt
    Bytes retained_data;         // kept until DONE (paper §V-D)
    std::optional<net::SecureChannel> channel;
    uint64_t sequence = 0;  // creation order, for status queries
  };
  struct PendingIncoming {
    uint64_t transfer_id = 0;
    MigrationData data;
    std::string source_me_address;
    uint64_t request_nonce = 0;       // identifies the logical migration
    uint64_t delivering_session = 0;  // LA session the data was handed to
    /// Random token delivered INSIDE the sealed fetch reply: only the
    /// instance that received the data can present it, so a confirm
    /// bearing it is honored even from a fresh LA session (the instance
    /// re-attested after a channel desync).  Transient, like the pin.
    uint64_t delivery_token = 0;
    // Last reconciliation sweep (virtual time, not persisted): a LIVE
    // entry blocking a busy-retrying peer must not pay one RA handshake
    // to its source ME per retry just to re-learn it is live.
    Duration last_reconcile{};
  };
  /// Source-side state of one live pre-copy attempt, keyed by the
  /// library's request nonce: everything shipped so far (merged by chunk
  /// generation) plus the RA channel to the destination.  Durable — an ME
  /// restart between rounds resumes instead of restarting the pre-copy.
  struct PrecopyOutgoing {
    sgx::Measurement source_mr{};
    std::string destination_address;
    uint64_t transfer_id = 0;  // wire id of the ME<->ME conversation
    uint32_t rounds = 0;
    std::map<uint32_t, CounterChunk> merged;
    std::optional<net::SecureChannel> channel;
    /// Set when a send failed (channel possibly desynced): the next send
    /// re-attests under a fresh transfer id and re-ships the whole merged
    /// set, so the destination converges no matter what was lost.
    bool resync = false;
    // --- async round shipping (set_async_precopy) ---
    enum class ShipStep : uint8_t {
      kIdle = 0,           // nothing posted; kick when dirty > acked
      kAwaitRoundAck = 1,  // a sealed round record is in flight
      kAwaitFinalizeAck = 2  // the sealed finalize record is in flight
    };
    ShipStep ship_step = ShipStep::kIdle;
    /// Highest generation per chunk index the destination ACKed; the
    /// async ship sends merged entries newer than this (all, on resync).
    std::map<uint32_t, uint64_t> acked;
    /// Async-mode staged finalize, memory-only BY DESIGN: the record
    /// ships through the deferred pump like a round hop while the library
    /// polls its fate.  An ME restart (or an exhausted ship budget) drops
    /// it — the still-frozen library observes kNone and re-drives the
    /// finalize synchronously, which the nonce dedup makes idempotent.
    std::optional<PrecopyFinalizePayload> staged_finalize;
    uint32_t finalize_attempts = 0;  // memory-only ship retry budget
  };
  /// Destination-side staging of one pre-copy attempt, keyed by enclave
  /// identity: chunks merged by generation across rounds.  Durable; only
  /// the finalize manifest turns it into an authoritative pending entry.
  struct PrecopyStaging {
    uint64_t transfer_id = 0;  // inbound_ entry holding the live channel
    std::string source_me_address;
    uint64_t request_nonce = 0;
    uint32_t rounds = 0;
    std::map<uint32_t, CounterChunk> chunks;
    /// Virtual time of the last merged round (durable): drives the
    /// age-based sweep of staging whose source went away for good.
    Duration last_update{};
  };
  /// One pipelined outgoing transfer, keyed by the library's request
  /// nonce: the old run_outgoing call chain as resumable steps.  The
  /// payload is durable from kQueued on; the RA session and channel are
  /// per-attempt state — a restarted ME re-runs the attest from scratch
  /// under a fresh transfer id (the nonce keeps it exactly-once).
  struct TransferTask {
    enum class Step : uint8_t {
      kQueued = 0,       // nothing sent yet (fresh, restored, or resyncing)
      kAwaitRaMsg2 = 1,  // RA msg1 posted
      kAwaitAuth = 2,    // RA msg3 + provider auth posted
      kAwaitAccept = 3,  // sealed TransferPayload posted
      kFailed = 4,       // terminal; `failure` held until polled
      kAwaitArm = 5,     // reserve-mode: attested, slot held, awaiting data
      kAwaitResume = 6,  // cached-session resume posted
    };
    sgx::Measurement source_mr{};
    MigrateRequestPayload request;  // destination, nonce, policy, data
    Step step = Step::kQueued;
    Status failure = Status::kOk;
    uint64_t transfer_id = 0;  // current attempt's wire id
    std::unique_ptr<sgx::RaSession> ra;
    std::optional<net::SecureChannel> channel;
    /// false: freeze-aware reserve (kMigrateReserve) — request.data is
    /// empty until the library freezes and arms the task (kMigrateArm);
    /// the poll reports kSlotLive once the destination is attested.
    bool armed = true;
  };
  /// Compact durable record of a confirmed outgoing transfer: enough to
  /// answer status queries and absorb duplicate DONEs idempotently after
  /// the retained data itself has been wiped.  Bounded FIFO history.
  struct CompletedOutgoing {
    sgx::Measurement source_mr{};
    uint64_t request_nonce = 0;
    uint64_t sequence = 0;
  };
  /// A DONE confirmation the destination ME could not deliver: the exact
  /// sealed record is kept (re-sealing would desync the channel sequence
  /// numbers) and retried until the source ME acknowledges it.
  struct DoneRelay {
    std::string source_me_address;
    Bytes sealed_record;
  };
  /// Initiator-side cached attestation session toward one peer ME
  /// (durable, queue v4): the master key of a completed full handshake,
  /// bound to the peer's instance epoch, plus the certified credential so
  /// per-attempt policy is re-evaluated without a wire round trip.
  struct PeerSession {
    sgx::Key128 master_key{};
    uint64_t peer_epoch = 0;
    platform::MachineCredential credential;
    std::string region;
  };
  /// Responder-side resume acceptor, keyed by initiator address.  Kept in
  /// MEMORY ONLY by design: an ME restart forgets it, so every cached
  /// peer is forced back to the full handshake (restart = fresh epoch
  /// anyway).  Region/address are the already-verified provider facts the
  /// full handshake established — a resumed InboundTransfer reuses them.
  struct ResumeAcceptor {
    sgx::Key128 master_key{};
    std::string source_region;
    std::string source_address;
  };

  // outer-envelope handlers
  MeResponse on_la_start(const MeRequest& req);
  MeResponse on_la_msg2(const MeRequest& req);
  MeResponse on_la_record(const MeRequest& req);
  MeResponse on_ra_msg1(const MeRequest& req);
  MeResponse on_ra_msg3(const MeRequest& req);
  MeResponse on_transfer(const MeRequest& req);
  MeResponse on_done(const MeRequest& req);
  MeResponse on_precopy_chunk(const MeRequest& req);
  MeResponse on_precopy_finalize(const MeRequest& req);
  MeResponse on_reconcile(const MeRequest& req);
  MeResponse on_abort(const MeRequest& req);
  MeResponse on_session_resume(const MeRequest& req);

  // inner LibMsg handlers (already authenticated via the LA channel)
  LibMsg on_migrate_request(LaSessionState& session, const LibMsg& msg);
  LibMsg on_fetch_incoming(uint64_t session_id, LaSessionState& session);
  LibMsg on_confirm_migration(uint64_t session_id, LaSessionState& session,
                              const LibMsg& msg);
  LibMsg on_query_status(LaSessionState& session, const LibMsg& msg);
  LibMsg on_precopy_round(LaSessionState& session, const LibMsg& msg);
  LibMsg on_precopy_finalize_req(LaSessionState& session, const LibMsg& msg);
  LibMsg on_migrate_enqueue(LaSessionState& session, const LibMsg& msg);
  LibMsg on_migrate_reserve(LaSessionState& session, const LibMsg& msg);
  LibMsg on_migrate_arm(LaSessionState& session, const LibMsg& msg);
  LibMsg on_poll_transfer(LaSessionState& session, const LibMsg& msg);
  LibMsg on_abort_stale(LaSessionState& session, const LibMsg& msg);

  // ----- TransferTask step machine -----
  /// Front-of-queue validation + dedup shared with run_outgoing: kOk when
  /// (source_mr, nonce, destination) is already retained or completed (the
  /// poll will report kAccepted), kNoPendingMigration when it is unknown.
  Status dedup_against_queue(const sgx::Measurement& source_mr,
                             uint64_t nonce,
                             const std::string& destination_address);
  /// (Re-)issues the pending step of one kQueued task: draws a fresh
  /// transfer id and posts RA msg1.
  void kick_task(uint64_t nonce);
  void task_on_ra_msg2(uint64_t nonce, Result<Bytes> raw);
  void task_on_auth(uint64_t nonce, Result<Bytes> raw);
  void task_on_accept(uint64_t nonce, Result<Bytes> raw);
  /// Continuation of a posted kSessionResume: on success the channel is
  /// live and the task lands like a full handshake; any failure erases
  /// the cached session and falls back to posting RA msg1.
  void task_on_resume(uint64_t nonce, std::array<uint8_t, 16> nonce_i,
                      Result<Bytes> raw);
  /// Post-attestation landing shared by the full and resumed paths:
  /// armed tasks ship the sealed TransferPayload (-> kAwaitAccept),
  /// reserve-mode tasks park slot-live (-> kAwaitArm).
  void task_attested(uint64_t nonce, TransferTask& task);
  /// Seals + posts the task's TransferPayload (the tail of task_on_auth,
  /// shared with on_migrate_arm) -> kAwaitAccept.
  void ship_task_payload(uint64_t nonce, TransferTask& task);
  // ----- async pre-copy round shipping -----
  /// Posts the next sealed round record of one idle attempt with unacked
  /// merged chunks (or a full resync set); no-op when nothing is dirty.
  void kick_precopy_ship(uint64_t nonce);
  void precopy_on_round_ack(uint64_t nonce, uint64_t transfer_id,
                            const std::vector<ChunkManifestEntry>& shipped,
                            Result<Bytes> raw);
  /// Posts the staged finalize record (everything merged beyond the acked
  /// front rides along); re-attests first if the channel was dropped.
  void kick_precopy_finalize(uint64_t nonce);
  void precopy_on_finalize_ack(uint64_t nonce, uint64_t transfer_id,
                               Result<Bytes> raw);
  /// Destination committed the snapshot: assemble the retained full copy
  /// from the merged chunks + manifest, retire the pre-copy attempt into
  /// outgoing_, persist.  Shared by the sync finalize and the async ack.
  Status finish_precopy_outgoing(const sgx::Measurement& source_mr,
                                 const PrecopyFinalizePayload& fin);
  /// Parses a pumped MeResponse reply; non-kOk peers and transport
  /// failures collapse to a Status.
  static Result<Bytes> open_task_reply(const Result<Bytes>& raw);
  void fail_task(uint64_t nonce, Status status);
  /// cancel_posts tag + reply-lane key for this ME's deferred traffic.
  std::string net_endpoint() const;

  /// Proactively tells the orphaned destination of an abandoned attempt
  /// (re-route) to expire its undelivered entry; best-effort.
  Status abort_remote_pending(const sgx::Measurement& source_mr,
                              uint64_t nonce,
                              const std::string& destination_address);

  /// Runs the whole outgoing side: RA + provider auth + policy + transfer.
  /// `source_mr` is taken by value: the nested rpcs can re-enter
  /// handle_request (a peer ME's DONE-relay retry) and erase the session
  /// a reference would point into.
  Status run_outgoing(sgx::Measurement source_mr,
                      const MigrateRequestPayload& request);

  /// Mutual RA handshake + provider auth + policy against a peer ME:
  /// the front half of run_outgoing, shared with the pre-copy first
  /// contact and the reconcile sweep.  On success the returned channel is
  /// ready to seal records for `transfer_id` at the peer.
  Result<net::SecureChannel> attest_peer_me(
      const std::string& destination_address, uint64_t transfer_id,
      const MigrationPolicy& policy);

  /// One-round-trip resume against a cached peer session (sync path of
  /// attest_peer_me).  kNoPendingMigration = no cache entry; any other
  /// failure already erased the entry — fall back to the full handshake.
  Result<net::SecureChannel> try_resume_session(
      const std::string& destination_address, uint64_t transfer_id,
      const MigrationPolicy& policy);
  /// Caches the initiator-side session after a successful full handshake
  /// (the msg3 response carries the peer's instance epoch).
  void cache_peer_session(const std::string& destination_address,
                          const sgx::Key128& master_key, uint64_t peer_epoch,
                          const platform::MachineCredential& credential,
                          const std::string& region);

  /// Finds-or-creates the source-side pre-copy attempt for (session
  /// identity, nonce), re-attesting (fresh transfer id + resync) when the
  /// channel is missing or was dropped after a failed send.
  Result<PrecopyOutgoing*> precopy_attempt(const sgx::Measurement& source_mr,
                                           const std::string& destination,
                                           uint64_t nonce,
                                           const MigrationPolicy& policy);

  /// One sealed send to the pre-copy destination with the resync rules
  /// applied; `finalize` selects the finalize record + manifest + MSK.
  Status precopy_send(PrecopyOutgoing& attempt, uint64_t nonce,
                      const std::vector<CounterChunk>& fresh_chunks,
                      uint32_t round, bool finalize,
                      const std::vector<ChunkManifestEntry>& manifest,
                      const sgx::Key128& msk);

  /// Destination-side staging upsert shared by chunk and finalize
  /// records: supersedes an abandoned attempt (fresh nonce/source),
  /// rebinds the inbound channel after a source re-handshake, and merges
  /// `chunks` by generation.
  PrecopyStaging& merge_precopy_staging(const sgx::Measurement& mr,
                                        const std::string& source_me_address,
                                        uint64_t nonce, uint64_t transfer_id,
                                        const std::vector<CounterChunk>& chunks);

  /// Enforces one-pending-per-identity for an arriving transfer of
  /// (nonce, source): supersedes this migration's own undelivered orphan,
  /// or runs the (rate-limited) reconcile sweep for a foreign one.
  /// kOk = the slot is free; kAlreadyExists = blocked.
  Status free_pending_slot(const sgx::Measurement& mr, uint64_t nonce,
                           const std::string& source_me_address,
                           uint64_t arriving_transfer_id);

  /// Verifies the peer ME's provider authentication for a transcript.
  Status verify_provider_auth(const ProviderAuth& auth,
                              const std::array<uint8_t, 32>& transcript,
                              const std::string& expected_address,
                              std::string* region_out);

  ProviderAuth make_provider_auth(const std::array<uint8_t, 32>& transcript);

  uint64_t fresh_id();
  /// Effective completed/confirmed history cap (override or default).
  size_t history_limit() const;
  /// Records a confirmed outgoing transfer in the bounded history.
  void record_completed(uint64_t transfer_id, const OutgoingTransfer& t);
  /// Drops LA sessions whose peer measurement matches `mr` (the instance
  /// behind them is frozen/retired; a live library simply re-attests).
  void drop_sessions_for(const sgx::Measurement& mr);

  // ----- durable queue internals -----
  // PersistSink: the engine calls back into us to commit.
  Status commit_state() override;
  Duration now() const override;
  /// Reports one queue transition to the engine and fences it durable.
  Status persist_queue();
  Bytes serialize_queue() const;
  Status apply_queue(ByteView plaintext);

  crypto::Ed25519KeyPair machine_key_;
  platform::MachineCredential credential_;
  crypto::Ed25519PublicKey provider_ca_key_{};
  std::vector<std::string> allowed_source_regions_;

  std::map<uint64_t, LaSessionState> la_sessions_;
  std::map<uint64_t, InboundTransfer> inbound_;
  std::map<uint64_t, OutgoingTransfer> outgoing_;
  std::map<uint64_t, TransferTask> transfer_tasks_;  // by request nonce
  std::map<sgx::Measurement, PendingIncoming> pending_;
  std::map<uint64_t, PrecopyOutgoing> precopy_outgoing_;  // by request nonce
  std::map<sgx::Measurement, PrecopyStaging> precopy_staging_;
  // Per-identity latest outgoing state (sequence, state): O(log n) status
  // queries instead of scanning every transfer ever made.
  std::map<sgx::Measurement, std::pair<uint64_t, OutgoingState>>
      latest_outgoing_;
  std::map<uint64_t, CompletedOutgoing> completed_outgoing_;
  std::deque<uint64_t> completed_order_;  // FIFO eviction of the history
  /// Effective history cap; set once from the library default (or an
  /// operator override via set_completed_history_limit) in the .cpp.
  size_t completed_history_limit_ = 0;  // 0 = library default
  // Durable record that an incoming migration for this identity was
  // confirmed (pending_ erased, DONE queued), keyed by identity with the
  // confirming transfer id as value.  Lets a RE-sent confirm — whose
  // ConfirmAck reply was lost, forcing the library to re-attest and
  // retry — succeed idempotently instead of stranding a fully restored
  // destination instance.  FIFO-bounded like the completed history.
  std::map<sgx::Measurement, uint64_t> confirmed_incoming_;
  std::deque<sgx::Measurement> confirmed_incoming_order_;
  std::map<uint64_t, DoneRelay> done_relays_;
  uint64_t next_outgoing_sequence_ = 1;
  // Cached attestation sessions: initiator side durable (queue v4),
  // responder side memory-only (restart forgets -> full re-handshake).
  std::map<std::string, PeerSession> peer_sessions_;
  std::map<std::string, ResumeAcceptor> resume_acceptors_;
  uint64_t instance_epoch_ = 0;
  uint64_t full_handshakes_ = 0;
  uint64_t resumed_handshakes_ = 0;
  bool async_precopy_ = false;
  uint32_t arm_window_ = 2;

  std::unique_ptr<PersistenceEngine> engine_;
  std::optional<sgx::SealContext> queue_seal_ctx_;
  Bytes sealed_queue_state_;
  QueuePersistCallback queue_persist_callback_;
  // Default above the worst-case legitimate fetch->confirm gap: a full
  // restore creates up to 256 hardware counters at counter_create cost
  // (~250ms each, see cost_model.h) before the confirm is sent, so only
  // instances idle far beyond that are ever presumed dead.
  Duration delivery_takeover_timeout_ = seconds(120);
  // Opportunistic relay retries are rate-limited on the virtual clock so
  // a down source ME does not tax every unrelated request with one
  // doomed RPC per backlog entry.
  Duration relay_retry_interval_ = milliseconds(250);
  // Same idea for reconciliation sweeps against a still-live pending
  // entry (the common same-image serialization case).
  Duration reconcile_retry_interval_ = milliseconds(250);
  Duration last_relay_retry_{};
  bool retrying_relays_ = false;
  // Staging whose source stopped shipping for this long is presumed
  // abandoned (no abort ever reached us).  Far above any live round gap;
  // an ME restart RESUMES staging well inside the window.
  Duration precopy_staging_max_age_ = seconds(600);
  Duration last_staging_sweep_{};
  // LA session currently being serviced by on_la_record: protected from
  // drop_sessions_for so a reentrant DONE (arriving over a nested rpc)
  // cannot erase the session mid-dispatch.
  uint64_t active_la_session_ = 0;
};

/// Builds a Machine management-enclave factory producing a standard-image
/// ME with its durable transfer queue wired to the machine's untrusted
/// store (versioned two-slot writes, key "<address>.me-queue").  A
/// restarted ME restores the queue before serving; install fleet-wide via
/// World::install_management_enclaves.
platform::Machine::MgmtEnclaveFactory durable_me_factory(
    platform::ProviderCa& provider);

/// Installs a durable-queue ME on one machine and returns it (typed view
/// of Machine::management_enclave()).
MigrationEnclave* install_durable_me(platform::Machine& machine,
                                     platform::ProviderCa& provider);

/// Typed accessor for a machine's management enclave; nullptr when none
/// is installed or it is not a MigrationEnclave.
MigrationEnclave* me_on(platform::Machine& machine);

}  // namespace sgxmig::migration

// Wire messages of the migration protocol (paper Fig. 2).
//
// Two layers:
//  * the OUTER envelope (MeRequest/MeResponse) travels over the untrusted
//    network to a Migration Enclave's endpoint and carries attestation
//    handshake messages or encrypted channel records;
//  * the INNER messages travel as plaintext of SecureChannel records and
//    are only visible to the attested endpoints:
//      - LibMsg between a Migration Library and its local ME,
//      - TransferPayload / DONE between source and destination MEs.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "migration/migration_data.h"
#include "migration/policy.h"
#include "platform/provider.h"
#include "sgx/types.h"
#include "support/bytes.h"
#include "support/serde.h"
#include "support/status.h"

namespace sgxmig::migration {

// ----- outer envelope -----

enum class MeMsgType : uint8_t {
  kLaStart = 1,   // ML -> ME: begin local attestation (payload empty)
  kLaMsg2 = 2,    // ML -> ME: DH msg2 (payload = DhMsg2)
  kLaRecord = 3,  // ML -> ME: encrypted LibMsg record
  kRaMsg1 = 4,    // ME_src -> ME_dst: RA msg1
  kRaMsg3 = 5,    // ME_src -> ME_dst: RA msg3 + provider auth
  kTransfer = 6,  // ME_src -> ME_dst: encrypted TransferPayload record
  kDone = 7,      // ME_dst -> ME_src: encrypted DONE record
  // Live pre-copy transfer (VM-live-migration style, iterative rounds).
  kPrecopyChunk = 8,     // ME_src -> ME_dst: encrypted PrecopyChunkRecord
  kPrecopyFinalize = 9,  // ME_src -> ME_dst: encrypted PrecopyFinalizeRecord
  // Pending-entry reconciliation (lost-ACCEPTED re-route cleanup): the ME
  // holding an undelivered pending entry asks the ORIGINATING source ME,
  // over a fresh RA channel, whether that logical migration is still live.
  kReconcile = 10,  // ME_dst -> ME_src: encrypted ReconcileQuery record
  // Proactive abort on re-route: the ORIGINATING source ME tells the
  // orphaned destination — over a fresh RA channel — that a logical
  // migration attempt was abandoned, so its undelivered pending entry /
  // pre-copy staging can be expired immediately instead of lingering
  // until the pull-based reconcile sweep happens to run.
  kAbort = 11,  // ME_src -> ME_dst: encrypted AbortRequest record
  // Cached-session resume (one round-trip instead of full msg1/msg3): the
  // source ME proves possession of the master key of a previously
  // completed RA handshake toward this destination INSTANCE (epoch-bound)
  // and both sides derive a fresh channel key from fresh nonces.  Any
  // verification failure falls back to the full handshake.
  kSessionResume = 12,  // ME_src -> ME_dst: SessionResumeRequest (plaintext)
};

/// Stable wire-facing name of an outer envelope type ("la-record",
/// "transfer", ...) for fault-site enumeration, chaos coverage accounting,
/// and trace/report labels.  Unknown values map to "unknown".
const char* me_msg_type_name(MeMsgType type);

/// Every outer envelope type, in wire order — the fault-site enumeration
/// chaos profiles draw from when building per-message-type rules.
inline constexpr std::array<MeMsgType, 12> kAllMeMsgTypes = {
    MeMsgType::kLaStart,        MeMsgType::kLaMsg2,
    MeMsgType::kLaRecord,       MeMsgType::kRaMsg1,
    MeMsgType::kRaMsg3,         MeMsgType::kTransfer,
    MeMsgType::kDone,           MeMsgType::kPrecopyChunk,
    MeMsgType::kPrecopyFinalize, MeMsgType::kReconcile,
    MeMsgType::kAbort,          MeMsgType::kSessionResume,
};

struct MeRequest {
  MeMsgType type = MeMsgType::kLaStart;
  uint64_t id = 0;  // LA session id or transfer id
  Bytes payload;

  Bytes serialize() const;
  static Result<MeRequest> deserialize(ByteView bytes);
};

struct MeResponse {
  Status status = Status::kUnexpected;
  Bytes payload;

  Bytes serialize() const;
  static Result<MeResponse> deserialize(ByteView bytes);
};

// ----- inner ML <-> ME messages -----

enum class LibMsgType : uint8_t {
  // requests (ML -> ME)
  kMigrateRequest = 1,
  kFetchIncoming = 2,
  // Payload: u64 delivery token from the kIncomingData reply (which
  // carries {bytes data, u64 token}): proves the confirmer is the
  // instance the sealed fetch reply reached, even over a re-attested
  // session.  Empty payload = legacy, session-pinned confirm only.
  kConfirmMigration = 3,
  kQueryStatus = 4,
  kPrecopyRound = 5,        // ship chunks dirtied since the last round
  kPrecopyFinalizeReq = 6,  // frozen: ship the final delta + MSK
  kMigrateEnqueue = 7,      // non-blocking migrate: queue a TransferTask
  kPollTransfer = 8,        // progress of a queued TransferTask (by nonce)
  kAbortStale = 9,          // re-route: abort the previous attempt's orphan
  // responses (ME -> ML)
  kMigrateAccepted = 10,
  kIncomingData = 11,
  kConfirmAck = 12,
  kStatusReport = 13,
  kError = 14,
  kPrecopyAck = 15,
  kFinalizeAccepted = 16,
  kMigrateQueued = 17,      // TransferTask accepted into the pipeline
  kTransferProgress = 18,   // TransferProgressPayload
  // The abort path is best-effort fire-and-forget: a failed or ignored
  // abort just leaves the orphan for the pull-based reconcile sweep, so
  // the library deliberately never inspects this reply.
  kAbortAck = 19,  // simlint: allow(protocol-consume)
  // Freeze-aware (enqueue-without-freeze) pipeline: the library reserves
  // a transfer slot WITHOUT freezing (kMigrateReserve carries no data);
  // the ME runs the attestation pipeline and parks the task slot-live;
  // kPollTransfer then reports kSlotLive, the library freezes + collects
  // and arms the task with the real payload (kMigrateArm).
  kMigrateReserve = 20,     // request: MigrateReservePayload (no data)
  kMigrateArm = 21,         // request: MigrateRequestPayload (full data)
  kArmAck = 22,             // response: task armed, transfer shipping
};

struct LibMsg {
  LibMsgType type = LibMsgType::kError;
  Status status = Status::kOk;
  Bytes payload;

  Bytes serialize() const;
  static Result<LibMsg> deserialize(ByteView bytes);
};

/// Payload of kMigrateRequest.
struct MigrateRequestPayload {
  std::string destination_address;
  /// Random per-migration-attempt identifier chosen by the Migration
  /// Library.  The ME stores it in the durable transfer queue so that (a)
  /// a re-sent request after a lost reply is deduplicated instead of
  /// producing a second transfer, and (b) the library can re-query the
  /// fate of exactly THIS attempt (kQueryStatus with a nonce) after the
  /// ME restarted mid-exchange.  0 = legacy caller, no dedup/resume.
  uint64_t request_nonce = 0;
  /// Migration policy (paper §X extension), enforced by the source ME
  /// against the destination machine's certified attributes.
  MigrationPolicy policy;
  MigrationData data;

  Bytes serialize() const;
  static Result<MigrateRequestPayload> deserialize(ByteView bytes);
};

/// Payload of kStatusReport.
enum class OutgoingState : uint8_t {
  kNone = 0,       // no outgoing migration known for this enclave
  kPending = 1,    // data transferred, waiting for destination confirm
  kCompleted = 2,  // destination confirmed; source data deleted
};

// ----- pipelined (non-blocking) outgoing transfers -----
//
// kMigrateEnqueue carries the same MigrateRequestPayload as
// kMigrateRequest, but the source ME answers kMigrateQueued IMMEDIATELY
// and runs the ME<->ME conversation as a step-driven TransferTask behind
// its pump() scheduler, interleaved with every other in-flight transfer.
// The library polls the task's fate with kPollTransfer (nonce-scoped);
// the task is durable from the moment it is queued, so an ME restart
// resumes the pipeline instead of losing the attempt.

/// Observable state of one queued transfer attempt (kTransferProgress).
enum class TransferProgress : uint8_t {
  kNone = 0,      // the ME knows nothing about this nonce
  kInFlight = 1,  // queued or mid-conversation with the destination
  kAccepted = 2,  // destination accepted; retained (or already completed)
  kFailed = 3,    // terminal failure; `failure` carries the status
  /// Freeze-aware pipeline: the destination is attested and the transfer
  /// slot is held — the library should now freeze, collect, and arm the
  /// task (kMigrateArm).  Only reported for reserve-mode tasks.
  kSlotLive = 4,
};

/// Payload of kMigrateReserve (ML -> ME): like kMigrateEnqueue but with
/// no migration data — the enclave stays LIVE while the task queues and
/// attests.  The data follows in kMigrateArm once the poll reports
/// kSlotLive and the library has frozen + collected.
struct MigrateReservePayload {
  std::string destination_address;
  uint64_t request_nonce = 0;
  MigrationPolicy policy;

  Bytes serialize() const;
  static Result<MigrateReservePayload> deserialize(ByteView bytes);
};

/// Payload of kPollTransfer.
struct PollTransferPayload {
  uint64_t request_nonce = 0;

  Bytes serialize() const;
  static Result<PollTransferPayload> deserialize(ByteView bytes);
};

/// Payload of kTransferProgress.
struct TransferProgressPayload {
  TransferProgress progress = TransferProgress::kNone;
  Status failure = Status::kOk;

  Bytes serialize() const;
  static Result<TransferProgressPayload> deserialize(ByteView bytes);
};

/// Payload of kAbortStale (ML -> its local ME): the library re-routed a
/// staged attempt, so the old destination's undelivered entry for
/// `request_nonce` is an orphan the source ME should proactively expire.
struct AbortStalePayload {
  uint64_t request_nonce = 0;
  std::string destination_address;

  Bytes serialize() const;
  static Result<AbortStalePayload> deserialize(ByteView bytes);
};

/// Payload of the kAbort record (source ME -> orphaned destination ME).
struct AbortRequest {
  sgx::Measurement source_mr_enclave{};
  uint64_t request_nonce = 0;

  Bytes serialize() const;
  static Result<AbortRequest> deserialize(ByteView bytes);
};

/// Payload of kQueryStatus.  An empty payload asks for the most recent
/// outgoing migration of the calling enclave's MRENCLAVE; a nonce scopes
/// the answer to the single migrate request that carried it (the resume
/// path after an ME restart mid-exchange must not be confused by earlier
/// migrations of the same identity through the same ME).
struct QueryStatusPayload {
  uint64_t request_nonce = 0;  // 0 = per-identity query

  Bytes serialize() const;
  static Result<QueryStatusPayload> deserialize(ByteView bytes);
};

// ----- live pre-copy transfer (iterative rounds, paper-plus) -----
//
// The Table II counter array is tracked at sealed-chunk granularity: each
// chunk covers kPrecopyChunkSlots consecutive counter slots and carries a
// monotonic generation stamped by the library on every mutation that
// touches one of its slots.  Pre-copy rounds ship only chunks whose
// generation advanced since the last round, while the enclave keeps
// serving mutations; migration_finalize() freezes and ships just the
// final dirty delta plus the MSK.  The finalize manifest lists every
// chunk (index, generation) the destination must hold so a lost round can
// never silently restore a truncated Table II.

inline constexpr size_t kPrecopyChunkSlots = 16;
inline constexpr size_t kPrecopyChunkCount = kMaxCounters / kPrecopyChunkSlots;

/// One dirty region of the Table II counter array: the slots' active
/// flags and EFFECTIVE values (offset + hardware) at collect time.
struct CounterChunk {
  uint32_t index = 0;       // chunk index, [0, kPrecopyChunkCount)
  uint64_t generation = 0;  // library mutation generation at collect time
  std::array<bool, kPrecopyChunkSlots> active{};
  std::array<uint32_t, kPrecopyChunkSlots> values{};

  void serialize(BinaryWriter& w) const;
  static Result<CounterChunk> deserialize(BinaryReader& r);
};

/// One (chunk index, generation) pair of the finalize manifest.
struct ChunkManifestEntry {
  uint32_t index = 0;
  uint64_t generation = 0;
};

/// Payload of kPrecopyRound (ML -> source ME).
struct PrecopyRoundPayload {
  std::string destination_address;
  uint64_t request_nonce = 0;  // identifies the whole pre-copy attempt
  uint32_t round = 0;
  /// Enforced by the source ME against the destination's certified
  /// attributes on the first round, BEFORE any chunk leaves the machine.
  MigrationPolicy policy;
  std::vector<CounterChunk> chunks;

  Bytes serialize() const;
  static Result<PrecopyRoundPayload> deserialize(ByteView bytes);
};

/// Payload of kPrecopyFinalizeReq (ML -> source ME).  Sent after the
/// library froze, epoch-invalidated its sealed lineage, and persisted the
/// freeze flag; carries only the chunks dirtied since the last round (or
/// everything staged, after a re-route to a fresh destination).
struct PrecopyFinalizePayload {
  std::string destination_address;
  uint64_t request_nonce = 0;
  uint32_t round = 0;
  MigrationPolicy policy;
  std::vector<CounterChunk> chunks;  // final delta
  std::vector<ChunkManifestEntry> manifest;  // every chunk the dst must hold
  sgx::Key128 msk{};

  Bytes serialize() const;
  static Result<PrecopyFinalizePayload> deserialize(ByteView bytes);
};

/// Payload of the kPrecopyChunk record (source ME -> destination ME).
struct PrecopyChunkRecord {
  sgx::Measurement source_mr_enclave{};
  std::string source_me_address;
  uint64_t request_nonce = 0;
  uint32_t round = 0;
  std::vector<CounterChunk> chunks;

  Bytes serialize() const;
  static Result<PrecopyChunkRecord> deserialize(ByteView bytes);
};

/// Payload of the kPrecopyFinalize record (source ME -> destination ME).
struct PrecopyFinalizeRecord {
  sgx::Measurement source_mr_enclave{};
  std::string source_me_address;
  uint64_t request_nonce = 0;
  uint32_t round = 0;
  std::vector<CounterChunk> chunks;
  std::vector<ChunkManifestEntry> manifest;
  sgx::Key128 msk{};

  Bytes serialize() const;
  static Result<PrecopyFinalizeRecord> deserialize(ByteView bytes);
};

/// Payload of the kReconcile record (pending-entry holder -> the pending
/// entry's originating source ME, over a fresh RA channel).
struct ReconcileQuery {
  sgx::Measurement source_mr_enclave{};
  uint64_t request_nonce = 0;

  Bytes serialize() const;
  static Result<ReconcileQuery> deserialize(ByteView bytes);
};

/// Verdict of a reconcile query (u8 on the wire).
enum class ReconcileVerdict : uint8_t {
  kStillLive = 0,   // the migration may still complete (or: unknown; keep)
  kSuperseded = 1,  // a newer transfer of the identity completed: expire
};

// ----- inner ME <-> ME messages -----

/// Payload of the kTransfer record.
struct TransferPayload {
  sgx::Measurement source_mr_enclave{};
  std::string source_me_address;
  /// The library's request nonce, forwarded ME-to-ME so the destination
  /// can recognize a RE-transfer of the same logical migration: if the
  /// ACCEPTED ack is lost, the source retains nothing and retries with a
  /// fresh transfer id — without the nonce the orphaned pending entry
  /// would block that enclave->machine pair with kAlreadyExists forever.
  uint64_t request_nonce = 0;
  MigrationData data;

  Bytes serialize() const;
  static Result<TransferPayload> deserialize(ByteView bytes);
};

// ----- cached-session resume (ME <-> ME) -----
//
// After a successful full RA handshake the initiator caches the session
// master key together with the responder's instance epoch (a random value
// drawn at ME construction, returned with the msg3 response).  A later
// transfer to the same destination resumes in ONE round-trip: the
// initiator MACs a transcript containing the expected epoch and a fresh
// nonce with the cached master key; the responder (which keeps its
// acceptor table in MEMORY ONLY, so a restart forgets it) verifies and
// answers with its own nonce + MAC.  Both derive a fresh channel key
//   K = CMAC(master, "SGXMIG-RESUME-KEY" || nonce_i || nonce_r || id)
// so records of different resumed sessions never share a key stream.
// Any mismatch (unknown peer, stale epoch, bad MAC) makes the responder
// refuse and the initiator fall back to the full msg1/msg3 handshake.

/// Plaintext payload of kSessionResume (the MAC is the authenticator).
struct SessionResumeRequest {
  std::string initiator_address;
  uint64_t responder_epoch = 0;  // epoch the initiator believes is current
  std::array<uint8_t, 16> nonce{};
  std::array<uint8_t, 16> mac{};  // CMAC(master, resume transcript)

  Bytes serialize() const;
  static Result<SessionResumeRequest> deserialize(ByteView bytes);
};

/// Payload of the kSessionResume response.
struct SessionResumeReply {
  std::array<uint8_t, 16> nonce{};
  std::array<uint8_t, 16> mac{};  // CMAC(master, reply transcript)

  Bytes serialize() const;
  static Result<SessionResumeReply> deserialize(ByteView bytes);
};

/// Provider authentication attached to RA msg3 and its response: the
/// machine credential plus a signature over the attestation transcript
/// with the certified machine key (paper §V-B).
struct ProviderAuth {
  platform::MachineCredential credential;
  crypto::Ed25519Signature transcript_signature{};

  Bytes serialize() const;
  static Result<ProviderAuth> deserialize(ByteView bytes);
};

/// Message a machine key signs to authenticate an RA transcript.
Bytes provider_auth_message(const std::array<uint8_t, 32>& transcript_hash);

}  // namespace sgxmig::migration

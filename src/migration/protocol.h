// Wire messages of the migration protocol (paper Fig. 2).
//
// Two layers:
//  * the OUTER envelope (MeRequest/MeResponse) travels over the untrusted
//    network to a Migration Enclave's endpoint and carries attestation
//    handshake messages or encrypted channel records;
//  * the INNER messages travel as plaintext of SecureChannel records and
//    are only visible to the attested endpoints:
//      - LibMsg between a Migration Library and its local ME,
//      - TransferPayload / DONE between source and destination MEs.
#pragma once

#include <string>
#include <vector>

#include "migration/migration_data.h"
#include "migration/policy.h"
#include "platform/provider.h"
#include "sgx/types.h"
#include "support/bytes.h"
#include "support/serde.h"
#include "support/status.h"

namespace sgxmig::migration {

// ----- outer envelope -----

enum class MeMsgType : uint8_t {
  kLaStart = 1,   // ML -> ME: begin local attestation (payload empty)
  kLaMsg2 = 2,    // ML -> ME: DH msg2 (payload = DhMsg2)
  kLaRecord = 3,  // ML -> ME: encrypted LibMsg record
  kRaMsg1 = 4,    // ME_src -> ME_dst: RA msg1
  kRaMsg3 = 5,    // ME_src -> ME_dst: RA msg3 + provider auth
  kTransfer = 6,  // ME_src -> ME_dst: encrypted TransferPayload record
  kDone = 7,      // ME_dst -> ME_src: encrypted DONE record
};

struct MeRequest {
  MeMsgType type = MeMsgType::kLaStart;
  uint64_t id = 0;  // LA session id or transfer id
  Bytes payload;

  Bytes serialize() const;
  static Result<MeRequest> deserialize(ByteView bytes);
};

struct MeResponse {
  Status status = Status::kUnexpected;
  Bytes payload;

  Bytes serialize() const;
  static Result<MeResponse> deserialize(ByteView bytes);
};

// ----- inner ML <-> ME messages -----

enum class LibMsgType : uint8_t {
  // requests (ML -> ME)
  kMigrateRequest = 1,
  kFetchIncoming = 2,
  kConfirmMigration = 3,
  kQueryStatus = 4,
  // responses (ME -> ML)
  kMigrateAccepted = 10,
  kIncomingData = 11,
  kConfirmAck = 12,
  kStatusReport = 13,
  kError = 14,
};

struct LibMsg {
  LibMsgType type = LibMsgType::kError;
  Status status = Status::kOk;
  Bytes payload;

  Bytes serialize() const;
  static Result<LibMsg> deserialize(ByteView bytes);
};

/// Payload of kMigrateRequest.
struct MigrateRequestPayload {
  std::string destination_address;
  /// Random per-migration-attempt identifier chosen by the Migration
  /// Library.  The ME stores it in the durable transfer queue so that (a)
  /// a re-sent request after a lost reply is deduplicated instead of
  /// producing a second transfer, and (b) the library can re-query the
  /// fate of exactly THIS attempt (kQueryStatus with a nonce) after the
  /// ME restarted mid-exchange.  0 = legacy caller, no dedup/resume.
  uint64_t request_nonce = 0;
  /// Migration policy (paper §X extension), enforced by the source ME
  /// against the destination machine's certified attributes.
  MigrationPolicy policy;
  MigrationData data;

  Bytes serialize() const;
  static Result<MigrateRequestPayload> deserialize(ByteView bytes);
};

/// Payload of kStatusReport.
enum class OutgoingState : uint8_t {
  kNone = 0,       // no outgoing migration known for this enclave
  kPending = 1,    // data transferred, waiting for destination confirm
  kCompleted = 2,  // destination confirmed; source data deleted
};

/// Payload of kQueryStatus.  An empty payload asks for the most recent
/// outgoing migration of the calling enclave's MRENCLAVE; a nonce scopes
/// the answer to the single migrate request that carried it (the resume
/// path after an ME restart mid-exchange must not be confused by earlier
/// migrations of the same identity through the same ME).
struct QueryStatusPayload {
  uint64_t request_nonce = 0;  // 0 = per-identity query

  Bytes serialize() const;
  static Result<QueryStatusPayload> deserialize(ByteView bytes);
};

// ----- inner ME <-> ME messages -----

/// Payload of the kTransfer record.
struct TransferPayload {
  sgx::Measurement source_mr_enclave{};
  std::string source_me_address;
  /// The library's request nonce, forwarded ME-to-ME so the destination
  /// can recognize a RE-transfer of the same logical migration: if the
  /// ACCEPTED ack is lost, the source retains nothing and retries with a
  /// fresh transfer id — without the nonce the orphaned pending entry
  /// would block that enclave->machine pair with kAlreadyExists forever.
  uint64_t request_nonce = 0;
  MigrationData data;

  Bytes serialize() const;
  static Result<TransferPayload> deserialize(ByteView bytes);
};

/// Provider authentication attached to RA msg3 and its response: the
/// machine credential plus a signature over the attestation transcript
/// with the certified machine key (paper §V-B).
struct ProviderAuth {
  platform::MachineCredential credential;
  crypto::Ed25519Signature transcript_signature{};

  Bytes serialize() const;
  static Result<ProviderAuth> deserialize(ByteView bytes);
};

/// Message a machine key signs to authenticate an RA transcript.
Bytes provider_auth_message(const std::array<uint8_t, 32>& transcript_hash);

}  // namespace sgxmig::migration

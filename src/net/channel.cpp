#include "net/channel.h"

#include "support/serde.h"

namespace sgxmig::net {

namespace {
// Direction tags keep the two halves of the duplex channel from ever
// reusing an IV under the shared key.
constexpr uint32_t kDirInitiatorToResponder = 0x49325200;  // "I2R"
constexpr uint32_t kDirResponderToInitiator = 0x52324900;  // "R2I"

std::array<uint8_t, 12> make_iv(uint32_t dir, uint64_t seq) {
  std::array<uint8_t, 12> iv{};
  store_be32(iv.data(), dir);
  store_be64(iv.data() + 4, seq);
  return iv;
}

Bytes make_aad(uint32_t dir, uint64_t seq) {
  BinaryWriter w;
  w.u32(dir);
  w.u64(seq);
  return w.take();
}
}  // namespace

SecureChannel::SecureChannel(const sgx::Key128& key, Role role) : key_(key) {
  if (role == Role::kInitiator) {
    send_dir_ = kDirInitiatorToResponder;
    recv_dir_ = kDirResponderToInitiator;
  } else {
    send_dir_ = kDirResponderToInitiator;
    recv_dir_ = kDirInitiatorToResponder;
  }
}

Bytes SecureChannel::seal_record(ByteView plaintext) {
  const auto iv = make_iv(send_dir_, send_seq_);
  const auto ct = crypto::gcm_encrypt(ByteView(key_.data(), key_.size()),
                                      ByteView(iv.data(), iv.size()),
                                      make_aad(send_dir_, send_seq_), plaintext);
  ++send_seq_;
  BinaryWriter w;
  w.fixed(ct.tag);
  w.bytes(ct.ciphertext);
  return w.take();
}

Result<Bytes> SecureChannel::open_record(ByteView record) {
  BinaryReader r(record);
  const auto tag = r.fixed<16>();
  const Bytes ciphertext = r.bytes();
  if (!r.done()) return Status::kChannelError;

  const auto iv = make_iv(recv_dir_, recv_seq_);
  auto plaintext = crypto::gcm_decrypt(
      ByteView(key_.data(), key_.size()), ByteView(iv.data(), iv.size()),
      make_aad(recv_dir_, recv_seq_), ciphertext, ByteView(tag.data(), 16));
  if (!plaintext.ok()) {
    // A record that does not authenticate under the expected sequence
    // number is either tampered or an out-of-order/replayed record.
    return Status::kReplayDetected;
  }
  ++recv_seq_;
  return plaintext;
}

Bytes SecureChannel::serialize_state() const {
  BinaryWriter w;
  w.raw(ByteView(key_.data(), key_.size()));
  // The direction tags encode the role; storing both keeps the decoder
  // free of role-inference logic.
  w.u32(send_dir_);
  w.u32(recv_dir_);
  w.u64(send_seq_);
  w.u64(recv_seq_);
  return w.take();
}

Result<SecureChannel> SecureChannel::deserialize_state(ByteView blob) {
  BinaryReader r(blob);
  sgx::Key128 key = to_array<16>(r.raw(16));
  const uint32_t send_dir = r.u32();
  const uint32_t recv_dir = r.u32();
  const uint64_t send_seq = r.u64();
  const uint64_t recv_seq = r.u64();
  if (!r.done()) return Status::kChannelError;
  const bool initiator = send_dir == kDirInitiatorToResponder &&
                         recv_dir == kDirResponderToInitiator;
  const bool responder = send_dir == kDirResponderToInitiator &&
                         recv_dir == kDirInitiatorToResponder;
  if (!initiator && !responder) return Status::kChannelError;
  SecureChannel channel(key, initiator ? Role::kInitiator : Role::kResponder);
  channel.send_seq_ = send_seq;
  channel.recv_seq_ = recv_seq;
  secure_wipe(key.data(), key.size());
  return channel;
}

}  // namespace sgxmig::net

#include "net/network.h"

namespace sgxmig::net {

Network::Network(VirtualClock& clock, Rng& rng, const CostModel& costs)
    : clock_(clock), rng_(rng), costs_(costs) {}

void Network::register_endpoint(const std::string& address,
                                RpcHandler handler) {
  endpoints_[address] = std::move(handler);
}

void Network::unregister_endpoint(const std::string& address) {
  endpoints_.erase(address);
  down_.erase(address);
}

bool Network::has_endpoint(const std::string& address) const {
  return endpoints_.count(address) != 0;
}

void Network::charge(Duration base) {
  clock_.advance(Duration(static_cast<int64_t>(
      static_cast<double>(base.count()) * rng_.jitter(costs_.jitter_sigma))));
}

Result<Bytes> Network::rpc(const std::string& to, ByteView request) {
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) return Status::kNetworkUnreachable;
  const auto down_it = down_.find(to);
  if (down_it != down_.end() && down_it->second) {
    return Status::kNetworkUnreachable;
  }

  Bytes in_flight = to_bytes(request);
  if (tamper_ != nullptr && !tamper_(to, in_flight)) {
    // Dropped by the adversary; the caller observes a network failure.
    charge(costs_.net_latency);
    return Status::kNetworkUnreachable;
  }

  ++rpcs_sent_;
  bytes_sent_ += in_flight.size();
  charge(costs_.net_latency + costs_.transfer_time(in_flight.size()));

  Result<Bytes> response = it->second(in_flight);

  if (response.ok() && response_tamper_ != nullptr) {
    Bytes reply = std::move(response).value();
    if (!response_tamper_(to, reply)) {
      // Reply dropped AFTER the handler ran: the caller sees a network
      // failure but the remote side has already committed the request.
      charge(costs_.net_latency);
      return Status::kNetworkUnreachable;
    }
    response = std::move(reply);
  }

  if (response.ok()) {
    bytes_sent_ += response.value().size();
    charge(costs_.net_latency + costs_.transfer_time(response.value().size()));
  } else {
    charge(costs_.net_latency);
  }
  return response;
}

void Network::set_endpoint_down(const std::string& address, bool down) {
  down_[address] = down;
}

}  // namespace sgxmig::net

#include "net/network.h"

#include "obs/observability.h"

namespace sgxmig::net {

Network::Network(VirtualClock& clock, Rng& rng, const CostModel& costs)
    : clock_(clock), rng_(rng), costs_(costs) {}

void Network::register_endpoint(const std::string& address,
                                RpcHandler handler) {
  endpoints_[address] = std::move(handler);
}

void Network::unregister_endpoint(const std::string& address) {
  endpoints_.erase(address);
  down_.erase(address);
  flaps_.erase(address);
}

bool Network::has_endpoint(const std::string& address) const {
  return endpoints_.count(address) != 0;
}

void Network::charge(Duration base) {
  clock_.advance(Duration(static_cast<int64_t>(
      static_cast<double>(base.count()) * rng_.jitter(costs_.jitter_sigma))));
}

obs::TraceRecorder* Network::recorder() const {
  return obs_ != nullptr && obs_->enabled() ? &obs_->trace : nullptr;
}

obs::MetricsRegistry* Network::metrics() const {
  return obs_ != nullptr && obs_->enabled() ? &obs_->metrics : nullptr;
}

void Network::track_pending(Duration at, const std::string& lane, int delta) {
  const int depth = (pending_per_lane_[lane] += delta);
  if (obs::TraceRecorder* rec = recorder()) {
    rec->counter_at(at, "net.pending", lane, static_cast<double>(depth));
  }
  if (obs::MetricsRegistry* m = metrics()) {
    m->set_gauge("net.pending." + lane, static_cast<double>(depth));
  }
}

Result<Bytes> Network::rpc(const std::string& to, ByteView request) {
  if (obs::MetricsRegistry* m = metrics()) m->add("net.rpcs");
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) return Status::kNetworkUnreachable;
  if (endpoint_down_at(to, clock_.now())) return Status::kNetworkUnreachable;

  Bytes in_flight = to_bytes(request);
  if (tamper_ != nullptr && !tamper_(to, in_flight)) {
    // Dropped by the adversary; the caller observes a network failure.
    if (obs::MetricsRegistry* m = metrics()) m->add("net.rpc_drops.tamper");
    charge(costs_.net_latency);
    return Status::kNetworkUnreachable;
  }

  ++rpcs_sent_;
  bytes_sent_ += in_flight.size();
  charge(costs_.net_latency + costs_.transfer_time(in_flight.size()));

  Result<Bytes> response = it->second(in_flight);

  if (response.ok() && response_tamper_ != nullptr) {
    Bytes reply = std::move(response).value();
    if (!response_tamper_(to, reply)) {
      // Reply dropped AFTER the handler ran: the caller sees a network
      // failure but the remote side has already committed the request.
      if (obs::MetricsRegistry* m = metrics()) {
        m->add("net.rpc_drops.reply_lost");
      }
      charge(costs_.net_latency);
      return Status::kNetworkUnreachable;
    }
    response = std::move(reply);
  }

  if (response.ok()) {
    bytes_sent_ += response.value().size();
    charge(costs_.net_latency + costs_.transfer_time(response.value().size()));
  } else {
    charge(costs_.net_latency);
  }
  return response;
}

void Network::set_endpoint_down(const std::string& address, bool down) {
  down_[address] = down;
}

void Network::schedule_endpoint_flap(const std::string& address,
                                     Duration down_at, Duration down_for) {
  if (down_for <= Duration::zero()) return;
  flaps_[address].emplace_back(down_at, down_at + down_for);
}

void Network::clear_endpoint_flaps(const std::string& address) {
  flaps_.erase(address);
}

bool Network::endpoint_down_at(const std::string& address, Duration at) const {
  const auto down_it = down_.find(address);
  if (down_it != down_.end() && down_it->second) return true;
  const auto flap_it = flaps_.find(address);
  if (flap_it == flaps_.end()) return false;
  for (const auto& [from, until] : flap_it->second) {
    if (at >= from && at < until) return true;
  }
  return false;
}

// ----- deferred delivery -----

Duration Network::wire_time(size_t bytes) {
  const Duration base = costs_.net_latency + costs_.transfer_time(bytes);
  return Duration(static_cast<int64_t>(static_cast<double>(base.count()) *
                                       rng_.jitter(costs_.jitter_sigma)));
}

std::string Network::lane_of(const std::string& endpoint) {
  const size_t slash = endpoint.find('/');
  return slash == std::string::npos ? endpoint : endpoint.substr(0, slash);
}

uint64_t Network::post(const std::string& to, ByteView request,
                       const std::string& from_endpoint,
                       ReplyCallback on_reply) {
  DeferredEvent event;
  event.to = to;
  event.from = from_endpoint;
  event.payload = to_bytes(request);
  event.on_reply = std::move(on_reply);
  const uint64_t seq = next_event_seq_++;
  event.id = seq;
  const Duration deliver_at = clock_.now() + wire_time(request.size());
  if (obs::TraceRecorder* rec = recorder()) {
    rec->instant("net.post", lane_of(from_endpoint), 0,
                 {{"msg", std::to_string(seq)},
                  {"to", to},
                  {"bytes", std::to_string(request.size())}});
  }
  if (obs::MetricsRegistry* m = metrics()) {
    m->add("net.posts");
    m->observe("net.post_bytes", static_cast<double>(request.size()));
  }
  track_pending(clock_.now(), lane_of(to), +1);
  events_.emplace(std::make_pair(deliver_at, seq), std::move(event));
  return seq;
}

void Network::deliver_request(Duration at, DeferredEvent event) {
  Result<Bytes> response = Status::kNetworkUnreachable;
  Duration handler_end = at;

  track_pending(at, lane_of(event.to), -1);
  Bytes in_flight = std::move(event.payload);
  const auto it = endpoints_.find(event.to);
  const bool reachable =
      it != endpoints_.end() && !endpoint_down_at(event.to, at);
  const bool tamper_dropped =
      reachable && tamper_ != nullptr && !tamper_(event.to, in_flight);
  if (obs::TraceRecorder* rec = recorder()) {
    if (reachable && !tamper_dropped) {
      rec->instant_at(at, "net.deliver", lane_of(event.to), 0,
                      {{"msg", std::to_string(event.id)}, {"to", event.to}});
    } else {
      const char* reason = !reachable
                               ? (it == endpoints_.end() ? "unreachable"
                                                         : "down")
                               : "tamper";
      rec->instant_at(at, "net.drop", lane_of(event.to), 0,
                      {{"msg", std::to_string(event.id)},
                       {"to", event.to},
                       {"reason", reason}});
    }
  }
  if (obs::MetricsRegistry* m = metrics()) {
    if (reachable && !tamper_dropped) {
      m->add("net.delivered");
    } else {
      m->add(tamper_dropped ? "net.drops.tamper" : "net.drops.unreachable");
    }
  }
  if (reachable && !tamper_dropped) {
    ++rpcs_sent_;
    bytes_sent_ += in_flight.size();
    const auto run_handler = [&] { response = it->second(in_flight); };
    if (lanes_ != nullptr) {
      handler_end = lanes_->run(lane_of(event.to), at, run_handler);
    } else {
      if (at > clock_.now()) clock_.set_now(at);
      run_handler();
      handler_end = clock_.now();
    }
    if (response.ok() && response_tamper_ != nullptr) {
      Bytes reply = std::move(response).value();
      if (!response_tamper_(event.to, reply)) {
        // Reply dropped AFTER the handler ran ("processed but reply
        // lost"): the poster sees a transport failure.
        response = Status::kNetworkUnreachable;
      } else {
        response = std::move(reply);
      }
    }
    if (response.ok()) bytes_sent_ += response.value().size();
  }

  DeferredEvent reply;
  reply.is_reply = true;
  reply.id = event.id;
  reply.from = std::move(event.from);
  reply.on_reply = std::move(event.on_reply);
  if (response.ok()) {
    reply.payload = std::move(response).value();
  } else {
    reply.failure = response.status();
  }
  const Duration reply_at = handler_end + wire_time(reply.payload.size());
  track_pending(handler_end, lane_of(reply.from), +1);
  const uint64_t seq = next_event_seq_++;
  events_.emplace(std::make_pair(reply_at, seq), std::move(reply));
}

void Network::deliver_reply(Duration at, DeferredEvent& event) {
  track_pending(at, lane_of(event.from), -1);
  if (obs::TraceRecorder* rec = recorder()) {
    if (!event.on_reply) {
      rec->instant_at(at, "net.reply_drop", lane_of(event.from), 0,
                      {{"msg", std::to_string(event.id)},
                       {"reason", "canceled"}});
    } else {
      rec->instant_at(at, "net.reply", lane_of(event.from), 0,
                      {{"msg", std::to_string(event.id)},
                       {"status",
                        std::string(status_name(event.failure))}});
    }
  }
  if (!event.on_reply) return;  // poster canceled (e.g. crashed ME)
  const auto run_reply = [&] {
    if (event.failure == Status::kOk) {
      event.on_reply(Result<Bytes>(std::move(event.payload)));
    } else {
      event.on_reply(Result<Bytes>(event.failure));
    }
  };
  if (lanes_ != nullptr) {
    lanes_->run(lane_of(event.from), at, run_reply);
  } else {
    if (at > clock_.now()) clock_.set_now(at);
    run_reply();
  }
}

bool Network::pump_one() {
  if (events_.empty()) return false;
  const auto it = events_.begin();
  const Duration at = it->first.first;
  DeferredEvent event = std::move(it->second);
  events_.erase(it);
  if (event.is_reply) {
    deliver_reply(at, event);
  } else {
    deliver_request(at, std::move(event));
  }
  return true;
}

size_t Network::pump_all() {
  size_t processed = 0;
  while (pump_one()) ++processed;
  return processed;
}

void Network::cancel_posts(const std::string& from_endpoint) {
  for (auto& [key, event] : events_) {
    if (event.from == from_endpoint) event.on_reply = nullptr;
  }
}

}  // namespace sgxmig::net

// The Unix-socket <-> TCP proxy pair from paper §VI-C.
//
// The SGX SDK talks to Platform Services over a Unix socket; with enclaves
// confined to guest VMs and Platform Services in the management VM, the
// paper bridges the gap with two proxies: one inside the guest VM
// (listening where the SDK expects the Unix socket, forwarding over TCP)
// and one in the management VM (accepting TCP, forwarding to the real Unix
// socket).  Both legs are untrusted; this changes nothing security-wise
// because PSE sessions are protected end to end.
#pragma once

#include <string>

#include "net/network.h"

namespace sgxmig::net {

/// Guest-VM side: the simulated Unix socket endpoint that forwards every
/// request over "TCP" (a network RPC) to the management VM endpoint.
class GuestUdsProxy {
 public:
  GuestUdsProxy(Network& network, std::string uds_address,
                std::string mgmt_tcp_address);
  ~GuestUdsProxy();

  GuestUdsProxy(const GuestUdsProxy&) = delete;
  GuestUdsProxy& operator=(const GuestUdsProxy&) = delete;

  const std::string& uds_address() const { return uds_address_; }

 private:
  Network& network_;
  std::string uds_address_;
  std::string mgmt_tcp_address_;
};

/// Management-VM side: accepts the "TCP" connection and forwards to the
/// local Platform Services handler (the real Unix socket in the paper).
class MgmtTcpProxy {
 public:
  MgmtTcpProxy(Network& network, std::string tcp_address, RpcHandler target);
  ~MgmtTcpProxy();

  MgmtTcpProxy(const MgmtTcpProxy&) = delete;
  MgmtTcpProxy& operator=(const MgmtTcpProxy&) = delete;

 private:
  Network& network_;
  std::string tcp_address_;
};

}  // namespace sgxmig::net

#include "net/proxy.h"

namespace sgxmig::net {

GuestUdsProxy::GuestUdsProxy(Network& network, std::string uds_address,
                             std::string mgmt_tcp_address)
    : network_(network),
      uds_address_(std::move(uds_address)),
      mgmt_tcp_address_(std::move(mgmt_tcp_address)) {
  network_.register_endpoint(uds_address_, [this](ByteView request) {
    return network_.rpc(mgmt_tcp_address_, request);
  });
}

GuestUdsProxy::~GuestUdsProxy() { network_.unregister_endpoint(uds_address_); }

MgmtTcpProxy::MgmtTcpProxy(Network& network, std::string tcp_address,
                           RpcHandler target)
    : network_(network), tcp_address_(std::move(tcp_address)) {
  network_.register_endpoint(tcp_address_, std::move(target));
}

MgmtTcpProxy::~MgmtTcpProxy() { network_.unregister_endpoint(tcp_address_); }

}  // namespace sgxmig::net

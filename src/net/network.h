// Simulated data-center network.
//
// Synchronous RPC between named endpoints, charging virtual time for
// latency and bandwidth.  The network is UNTRUSTED: the adversary hooks
// let tests and attack harnesses observe, tamper with, or drop any
// message, matching the paper's threat model ("the ability to monitor and
// manipulate all network traffic").  Security must come from the
// attestation-derived secure channels layered on top (net/channel.h).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/bytes.h"
#include "support/cost_model.h"
#include "support/rng.h"
#include "support/sim_clock.h"
#include "support/status.h"

namespace sgxmig::obs {
struct Observability;
class TraceRecorder;
class MetricsRegistry;
}  // namespace sgxmig::obs

namespace sgxmig::net {

using RpcHandler = std::function<Result<Bytes>(ByteView request)>;

/// Continuation of a deferred (post()ed) request: invoked from pump_one()
/// with the peer's reply, or with the transport failure.
using ReplyCallback = std::function<void(Result<Bytes> reply)>;

/// Inspect/modify a request in flight; return false to drop it.
using TamperHook =
    std::function<bool(const std::string& to, Bytes& request)>;

/// Inspect/modify a RESPONSE in flight; return false to drop it.  The
/// handler has already run when this fires, so dropping models the
/// "request processed but reply lost" failure mode that the Migration
/// Enclave's durable transfer queue must survive (§V-D error handling).
using ResponseTamperHook =
    std::function<bool(const std::string& to, Bytes& response)>;

class Network {
 public:
  Network(VirtualClock& clock, Rng& rng, const CostModel& costs);

  void register_endpoint(const std::string& address, RpcHandler handler);
  void unregister_endpoint(const std::string& address);
  bool has_endpoint(const std::string& address) const;

  /// Synchronous request/response.  Charges 2x one-way latency plus
  /// transfer time for both directions.  Returns kNetworkUnreachable for
  /// unknown or downed endpoints and for dropped messages.
  Result<Bytes> rpc(const std::string& to, ByteView request);

  // ----- deferred delivery (the pipelined-transfer pump) -----
  //
  // post() puts a request "on the wire" without blocking: delivery is
  // scheduled at now + one-way latency + transfer time, and the poster's
  // continuation runs when the reply lands.  pump_one() advances the
  // earliest scheduled event — delivering a request to its endpoint
  // handler, or a reply to its continuation — so N in-flight
  // conversations interleave instead of serializing.
  //
  // Time accounting: with a LaneSchedule installed (set_lane_schedule),
  // the endpoint handler runs on the DESTINATION machine's lane (lane =
  // endpoint address up to the first '/') starting at the delivery
  // instant, and the continuation runs on the POSTER's lane at the reply
  // instant — so wire latency and per-machine compute of independent
  // conversations genuinely overlap.  Without one, the clock simply jumps
  // forward to each event time (never backward) and everything stays
  // monotone and deterministic.
  //
  // Fault semantics mirror rpc(): unknown/down endpoints and
  // tamper-dropped requests surface as kNetworkUnreachable to the
  // continuation; a response-tamper drop models "processed but reply
  // lost" — the handler ran, the continuation sees a transport failure.

  /// Schedules `request` for delivery to `to`.  `from_endpoint` names the
  /// poster (its machine lane is the reply lane, and cancel_posts() keys
  /// on it).  Returns the event id.
  uint64_t post(const std::string& to, ByteView request,
                const std::string& from_endpoint, ReplyCallback on_reply);

  /// Delivers the earliest scheduled event; false when none are pending.
  bool pump_one();

  /// Drains every scheduled event (including ones scheduled while
  /// pumping); returns how many were processed.
  size_t pump_all();

  size_t pending_events() const { return events_.size(); }

  /// Disowns every continuation registered by `from_endpoint`: requests
  /// already on the wire are still delivered (the bytes left the machine),
  /// but their replies are dropped.  Posters with shorter lifetimes than
  /// the network (e.g. a Migration Enclave that can be crash-simulated)
  /// MUST call this before dying.
  void cancel_posts(const std::string& from_endpoint);

  /// Installs the lane ledger deferred deliveries are attributed to
  /// (nullptr restores plain monotone pumping).  The caller owns it and
  /// must uninstall it before it dies.
  void set_lane_schedule(LaneSchedule* lanes) { lanes_ = lanes; }

  /// Installs the world's trace/metrics bundle (nullptr disconnects).
  /// When tracing is enabled the network emits net.post / net.deliver /
  /// net.drop / net.reply instants (timestamped at the scheduled delivery
  /// instant, not the recording instant) and a per-destination-lane
  /// "net.pending" queue-depth counter track.
  void set_observability(obs::Observability* obs) { obs_ = obs; }

  // ----- fault & adversary injection -----
  void set_endpoint_down(const std::string& address, bool down);
  /// Schedules a down-up flap: the endpoint is unreachable during
  /// [down_at, down_at + down_for).  Reachability is evaluated at the
  /// QUERY instant — rpc() uses the current clock, a deferred post() uses
  /// its scheduled delivery instant — so a message already on the wire
  /// when the flap begins is lost exactly when its delivery lands inside
  /// the window.  Flaps compose with set_endpoint_down and with the
  /// tamper hooks (a flapped-away message never reaches the hooks, like
  /// any other unreachable destination).  Windows may overlap.
  void schedule_endpoint_flap(const std::string& address, Duration down_at,
                              Duration down_for);
  void clear_endpoint_flaps(const std::string& address);
  /// True when `address` is administratively down (set_endpoint_down) or
  /// inside a scheduled flap window at instant `at`.
  bool endpoint_down_at(const std::string& address, Duration at) const;
  void set_tamper_hook(TamperHook hook) { tamper_ = std::move(hook); }
  void clear_tamper_hook() { tamper_ = nullptr; }
  void set_response_tamper_hook(ResponseTamperHook hook) {
    response_tamper_ = std::move(hook);
  }
  void clear_response_tamper_hook() { response_tamper_ = nullptr; }

  // ----- accounting -----
  uint64_t rpcs_sent() const { return rpcs_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct DeferredEvent {
    bool is_reply = false;
    uint64_t id = 0;          // post() return value; replies inherit it
    std::string to;           // request: destination endpoint
    std::string from;         // poster endpoint (cancel key + reply lane)
    Bytes payload;            // request bytes, or the reply bytes
    Status failure = Status::kOk;  // reply events: transport verdict
    ReplyCallback on_reply;   // null once canceled
  };

  void charge(Duration base);
  /// One modeled one-way trip (latency + bandwidth), jittered.
  Duration wire_time(size_t bytes);
  static std::string lane_of(const std::string& endpoint);
  void deliver_request(Duration at, DeferredEvent event);
  void deliver_reply(Duration at, DeferredEvent& event);

  /// The trace recorder / metrics registry, or nullptr when observability
  /// is absent or disabled.
  obs::TraceRecorder* recorder() const;
  obs::MetricsRegistry* metrics() const;
  /// Adjusts the in-flight count of `lane` and samples "net.pending".
  void track_pending(Duration at, const std::string& lane, int delta);

  VirtualClock& clock_;
  Rng& rng_;
  const CostModel& costs_;
  std::map<std::string, RpcHandler> endpoints_;
  std::map<std::string, bool> down_;
  // Scheduled flap windows per endpoint: [down_at, down_at + down_for).
  std::map<std::string, std::vector<std::pair<Duration, Duration>>> flaps_;
  TamperHook tamper_;
  ResponseTamperHook response_tamper_;
  LaneSchedule* lanes_ = nullptr;
  obs::Observability* obs_ = nullptr;
  std::map<std::string, int> pending_per_lane_;  // deferred events en route
  // (event time, sequence) orders deliveries deterministically.
  std::map<std::pair<Duration, uint64_t>, DeferredEvent> events_;
  uint64_t next_event_seq_ = 1;
  uint64_t rpcs_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace sgxmig::net

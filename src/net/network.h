// Simulated data-center network.
//
// Synchronous RPC between named endpoints, charging virtual time for
// latency and bandwidth.  The network is UNTRUSTED: the adversary hooks
// let tests and attack harnesses observe, tamper with, or drop any
// message, matching the paper's threat model ("the ability to monitor and
// manipulate all network traffic").  Security must come from the
// attestation-derived secure channels layered on top (net/channel.h).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "support/bytes.h"
#include "support/cost_model.h"
#include "support/rng.h"
#include "support/sim_clock.h"
#include "support/status.h"

namespace sgxmig::net {

using RpcHandler = std::function<Result<Bytes>(ByteView request)>;

/// Inspect/modify a request in flight; return false to drop it.
using TamperHook =
    std::function<bool(const std::string& to, Bytes& request)>;

/// Inspect/modify a RESPONSE in flight; return false to drop it.  The
/// handler has already run when this fires, so dropping models the
/// "request processed but reply lost" failure mode that the Migration
/// Enclave's durable transfer queue must survive (§V-D error handling).
using ResponseTamperHook =
    std::function<bool(const std::string& to, Bytes& response)>;

class Network {
 public:
  Network(VirtualClock& clock, Rng& rng, const CostModel& costs);

  void register_endpoint(const std::string& address, RpcHandler handler);
  void unregister_endpoint(const std::string& address);
  bool has_endpoint(const std::string& address) const;

  /// Synchronous request/response.  Charges 2x one-way latency plus
  /// transfer time for both directions.  Returns kNetworkUnreachable for
  /// unknown or downed endpoints and for dropped messages.
  Result<Bytes> rpc(const std::string& to, ByteView request);

  // ----- fault & adversary injection -----
  void set_endpoint_down(const std::string& address, bool down);
  void set_tamper_hook(TamperHook hook) { tamper_ = std::move(hook); }
  void clear_tamper_hook() { tamper_ = nullptr; }
  void set_response_tamper_hook(ResponseTamperHook hook) {
    response_tamper_ = std::move(hook);
  }
  void clear_response_tamper_hook() { response_tamper_ = nullptr; }

  // ----- accounting -----
  uint64_t rpcs_sent() const { return rpcs_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  void charge(Duration base);

  VirtualClock& clock_;
  Rng& rng_;
  const CostModel& costs_;
  std::map<std::string, RpcHandler> endpoints_;
  std::map<std::string, bool> down_;
  TamperHook tamper_;
  ResponseTamperHook response_tamper_;
  uint64_t rpcs_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace sgxmig::net

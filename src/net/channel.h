// Authenticated-encryption record channel over an attestation-derived key.
//
// Every enclave-to-enclave conversation (Migration Library <-> Migration
// Enclave after local attestation; Migration Enclave <-> Migration Enclave
// after remote attestation) runs over one of these.  Records are AES-GCM
// with direction-tagged deterministic IVs and strictly increasing sequence
// numbers, so reflection, reordering, and replay of records within a
// session are all detected.
#pragma once

#include "crypto/gcm.h"
#include "sgx/types.h"
#include "support/bytes.h"
#include "support/status.h"

namespace sgxmig::net {

class SecureChannel {
 public:
  enum class Role { kInitiator, kResponder };

  SecureChannel(const sgx::Key128& key, Role role);

  /// Encrypts and frames one record.
  Bytes seal_record(ByteView plaintext);

  /// Opens the next record; enforces the expected sequence number.
  Result<Bytes> open_record(ByteView record);

  uint64_t records_sent() const { return send_seq_; }
  uint64_t records_received() const { return recv_seq_; }

  // ----- durable snapshot (Migration Enclave transfer queue) -----
  //
  // A Migration Enclave must be able to resume a channel after a restart
  // (e.g. open the destination's DONE record over the RA-derived channel
  // that transferred the data).  The snapshot carries the RAW session key
  // and both sequence counters; callers may only ever persist it inside a
  // sealed blob — it must never touch untrusted storage in plaintext.
  Bytes serialize_state() const;
  static Result<SecureChannel> deserialize_state(ByteView blob);

 private:
  sgx::Key128 key_;
  uint32_t send_dir_;
  uint32_t recv_dir_;
  uint64_t send_seq_ = 0;
  uint64_t recv_seq_ = 0;
};

}  // namespace sgxmig::net

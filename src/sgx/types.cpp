#include "sgx/types.h"

namespace sgxmig::sgx {

void serialize_identity(BinaryWriter& w, const EnclaveIdentity& id) {
  w.fixed(id.mr_enclave);
  w.fixed(id.mr_signer);
  w.u16(id.isv_prod_id);
  w.u16(id.isv_svn);
}

EnclaveIdentity deserialize_identity(BinaryReader& r) {
  EnclaveIdentity id;
  id.mr_enclave = r.fixed<32>();
  id.mr_signer = r.fixed<32>();
  id.isv_prod_id = r.u16();
  id.isv_svn = r.u16();
  return id;
}

}  // namespace sgxmig::sgx

// The per-machine CPU key hierarchy (the root of everything machine-bound).
//
// Real SGX derives all enclave keys from fuse keys burned into the CPU at
// manufacturing; the simulation gives every machine a random 256-bit CPU
// secret and derives keys with HMAC-SHA256.  The property the paper's whole
// problem statement rests on — sealing keys and counters are useless on any
// other physical machine — follows directly: a different Machine has a
// different cpu_secret, so EGETKEY returns unrelated keys for the very same
// enclave identity.
#pragma once

#include "sgx/types.h"
#include "support/bytes.h"

namespace sgxmig::sgx {

class SimCpu {
 public:
  /// `secret_seed` plays the role of the manufacturing-time fuse values.
  explicit SimCpu(const std::array<uint8_t, 32>& secret_seed);

  /// EGETKEY: derives a 128-bit key bound to this CPU, the requested key
  /// name, the policy-selected identity fields, and the key id.
  /// Per SGX semantics, kMrEnclave policy binds mr_enclave; kMrSigner
  /// policy binds (mr_signer, isv_prod_id) so newer versions of the same
  /// signed enclave can unseal.
  Key128 get_key(KeyName name, KeyPolicy policy, const EnclaveIdentity& id,
                 const KeyId& key_id) const;

  /// The REPORT key of a (target) enclave: used by EREPORT to MAC reports
  /// and by the target to verify them.  Only code running on this CPU can
  /// obtain it, which is what makes local attestation machine-bound.
  Key128 report_key(const Measurement& target_mr_enclave) const;

 private:
  std::array<uint8_t, 32> cpu_secret_;
};

}  // namespace sgxmig::sgx

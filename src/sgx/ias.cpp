#include "sgx/ias.h"

#include "crypto/sha256.h"

namespace sgxmig::sgx {

Bytes VerificationReport::signed_message() const {
  BinaryWriter w;
  w.str("SGXMIG-IAS-REPORT-v1");
  w.u8(static_cast<uint8_t>(verdict));
  w.bytes(quote_body);
  return w.take();
}

Bytes VerificationReport::serialize() const {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(verdict));
  w.bytes(quote_body);
  w.fixed(ias_signature);
  return w.take();
}

Result<VerificationReport> VerificationReport::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  VerificationReport report;
  report.verdict = static_cast<IasVerdict>(r.u8());
  report.quote_body = r.bytes();
  report.ias_signature = r.fixed<64>();
  if (!r.done()) return Status::kTampered;
  return report;
}

bool VerificationReport::verify(const crypto::Ed25519PublicKey& ias_key) const {
  return crypto::ed25519_verify(ias_key, signed_message(), ias_signature);
}

IntelAttestationService::IntelAttestationService(EpidAuthority& authority,
                                                 VirtualClock& clock,
                                                 const CostModel& costs,
                                                 uint64_t seed)
    : authority_(authority),
      clock_(clock),
      costs_(costs),
      signing_key_(crypto::Ed25519KeyPair::from_seed(crypto::Sha256::hash(
          to_bytes("ias-signing-key:" + std::to_string(seed))))) {}

VerificationReport IntelAttestationService::verify_quote(const Quote& quote) {
  clock_.advance(costs_.ias_round_trip);

  VerificationReport report;
  report.quote_body = quote.body.serialize();
  if (quote.credential.group_id != authority_.group_id()) {
    report.verdict = IasVerdict::kUnknownGroup;
  } else if (!authority_.verify_credential(quote.credential)) {
    report.verdict = IasVerdict::kSignatureInvalid;
  } else if (authority_.is_revoked(quote.credential.member_public_key)) {
    report.verdict = IasVerdict::kGroupRevoked;
  } else if (!crypto::ed25519_verify(quote.credential.member_public_key,
                                     quote.signed_message(),
                                     quote.signature)) {
    report.verdict = IasVerdict::kSignatureInvalid;
  } else {
    report.verdict = IasVerdict::kOk;
  }
  report.ias_signature = signing_key_.sign(report.signed_message());
  return report;
}

}  // namespace sgxmig::sgx

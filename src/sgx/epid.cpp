#include "sgx/epid.h"

#include "crypto/sha256.h"

namespace sgxmig::sgx {

void EpidMemberCredential::serialize(BinaryWriter& w) const {
  w.u32(group_id);
  w.fixed(member_public_key);
  w.fixed(membership_certificate);
}

EpidMemberCredential EpidMemberCredential::deserialize(BinaryReader& r) {
  EpidMemberCredential c;
  c.group_id = r.u32();
  c.member_public_key = r.fixed<32>();
  c.membership_certificate = r.fixed<64>();
  return c;
}

EpidAuthority::EpidAuthority(uint64_t seed)
    : group_key_(crypto::Ed25519KeyPair::from_seed(crypto::Sha256::hash(
          to_bytes("epid-group-key:" + std::to_string(seed))))),
      group_id_(static_cast<uint32_t>(seed & 0xffff) | 0x0b0b0000),
      seed_(seed) {}

Bytes EpidAuthority::certificate_message(
    const EpidMemberCredential& credential) const {
  BinaryWriter w;
  w.str("SGXMIG-EPID-MEMBER-v1");
  w.u32(credential.group_id);
  w.fixed(credential.member_public_key);
  return w.take();
}

EpidMemberKey EpidAuthority::provision_member() {
  EpidMemberKey member;
  member.member_seed = crypto::Sha256::hash(to_bytes(
      "epid-member:" + std::to_string(seed_) + ":" +
      std::to_string(next_member_++)));
  const auto kp = crypto::Ed25519KeyPair::from_seed(member.member_seed);
  member.credential.group_id = group_id_;
  member.credential.member_public_key = kp.public_key();
  member.credential.membership_certificate =
      group_key_.sign(certificate_message(member.credential));
  return member;
}

bool EpidAuthority::verify_credential(
    const EpidMemberCredential& credential) const {
  if (credential.group_id != group_id_) return false;
  return crypto::ed25519_verify(group_key_.public_key(),
                                certificate_message(credential),
                                credential.membership_certificate);
}

void EpidAuthority::revoke(const crypto::Ed25519PublicKey& member_public_key) {
  revoked_.insert(member_public_key);
}

bool EpidAuthority::is_revoked(
    const crypto::Ed25519PublicKey& member_public_key) const {
  return revoked_.count(member_public_key) != 0;
}

}  // namespace sgxmig::sgx

// Core identity types of the simulated SGX model, mirroring the SDK's
// sgx_measurement_t / sgx_report_data_t / key request structures.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.h"
#include "support/serde.h"

namespace sgxmig::sgx {

/// 256-bit measurement: MRENCLAVE (code identity) or MRSIGNER (hash of the
/// enclave developer's signing public key).
using Measurement = std::array<uint8_t, 32>;

/// 64 bytes of application data bound into a local-attestation REPORT or a
/// remote-attestation quote (e.g. a hash of key-agreement messages).
using ReportData = std::array<uint8_t, 64>;

/// Random wear-out/diversification value in a key request.
using KeyId = std::array<uint8_t, 32>;

/// 128-bit symmetric key, the width of all SGX derived keys.
using Key128 = std::array<uint8_t, 16>;

/// Which identity a derived key is bound to (sgx_key_policy).
enum class KeyPolicy : uint16_t {
  kMrEnclave = 0x0001,  // only this exact enclave code
  kMrSigner = 0x0002,   // any enclave from the same signer
};

/// Which key EGETKEY derives (subset of sgx_key_name relevant here).
enum class KeyName : uint16_t {
  kSeal = 4,
  kReport = 3,
};

struct EnclaveIdentity {
  Measurement mr_enclave{};
  Measurement mr_signer{};
  uint16_t isv_prod_id = 0;
  uint16_t isv_svn = 0;

  bool operator==(const EnclaveIdentity&) const = default;
};

void serialize_identity(BinaryWriter& w, const EnclaveIdentity& id);
EnclaveIdentity deserialize_identity(BinaryReader& r);

/// Identity of the enclave a REPORT is targeted at (sgx_target_info_t).
struct TargetInfo {
  Measurement mr_enclave{};
};

}  // namespace sgxmig::sgx

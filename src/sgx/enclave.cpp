#include "sgx/enclave.h"

#include "sgx/pse_wire.h"

namespace sgxmig::sgx {

Enclave::Enclave(PlatformIface& platform,
                 std::shared_ptr<const EnclaveImage> image)
    : platform_(platform),
      image_(std::move(image)),
      identity_(image_->identity()),
      drbg_(platform_.draw_entropy(48)) {}

Result<Bytes> Enclave::seal(KeyPolicy policy, ByteView aad,
                            ByteView plaintext) {
  platform_.charge(platform_.costs().egetkey);
  charge_gcm(plaintext.size() + aad.size());
  return seal_data(platform_.cpu(), identity_, drbg_, policy, aad, plaintext);
}

SealContext Enclave::make_seal_context(KeyPolicy policy) {
  platform_.charge(platform_.costs().egetkey);
  return SealContext(platform_.cpu(), identity_, drbg_, policy);
}

Result<Bytes> Enclave::seal_with(SealContext& context, ByteView aad,
                                 ByteView plaintext) {
  charge_gcm(plaintext.size() + aad.size());
  return context.seal(aad, plaintext);
}

Result<UnsealedData> Enclave::unseal(ByteView sealed_blob) {
  platform_.charge(platform_.costs().egetkey);
  charge_gcm(sealed_blob.size());
  return unseal_data(platform_.cpu(), identity_, sealed_blob);
}

Report Enclave::make_report(const TargetInfo& target, const ReportData& data) {
  platform_.charge(platform_.costs().ereport);
  return create_report(platform_.cpu(), identity_, target, data);
}

bool Enclave::check_report(const Report& report) {
  platform_.charge(platform_.costs().report_verify);
  return verify_report(platform_.cpu(), identity_.mr_enclave, report);
}

void Enclave::charge_gcm(size_t bytes) {
  platform_.charge(platform_.costs().gcm_time(bytes));
}

Result<PseResponse> Enclave::pse_roundtrip(const PseRequest& request) {
  auto raw = platform_.pse_call(identity_.mr_enclave, request.serialize());
  if (!raw.ok()) return raw.status();
  auto resp = PseResponse::deserialize(raw.value());
  if (!resp.ok()) return Status::kTampered;
  return resp;
}

Result<CreatedCounter> Enclave::counter_create() {
  PseRequest req;
  req.op = PseOp::kCreate;
  req.owner = identity_.mr_enclave;
  req.nonce_entropy = drbg_.bytes(12);
  auto resp = pse_roundtrip(req);
  if (!resp.ok()) return resp.status();
  if (resp.value().status != Status::kOk) return resp.value().status;
  CreatedCounter created;
  created.uuid = resp.value().uuid;
  created.value = resp.value().value;
  return created;
}

Result<uint32_t> Enclave::counter_read(const CounterUuid& uuid) {
  PseRequest req;
  req.op = PseOp::kRead;
  req.owner = identity_.mr_enclave;
  req.uuid = uuid;
  auto resp = pse_roundtrip(req);
  if (!resp.ok()) return resp.status();
  if (resp.value().status != Status::kOk) return resp.value().status;
  return resp.value().value;
}

Result<uint32_t> Enclave::counter_increment(const CounterUuid& uuid) {
  PseRequest req;
  req.op = PseOp::kIncrement;
  req.owner = identity_.mr_enclave;
  req.uuid = uuid;
  auto resp = pse_roundtrip(req);
  if (!resp.ok()) return resp.status();
  if (resp.value().status != Status::kOk) return resp.value().status;
  return resp.value().value;
}

Status Enclave::counter_destroy(const CounterUuid& uuid) {
  PseRequest req;
  req.op = PseOp::kDestroy;
  req.owner = identity_.mr_enclave;
  req.uuid = uuid;
  auto resp = pse_roundtrip(req);
  if (!resp.ok()) return resp.status();
  return resp.value().status;
}

Result<uint32_t> Enclave::counter_retire_all() {
  PseRequest req;
  req.op = PseOp::kRetireAll;
  req.owner = identity_.mr_enclave;
  auto resp = pse_roundtrip(req);
  if (!resp.ok()) return resp.status();
  if (resp.value().status != Status::kOk) return resp.value().status;
  return resp.value().value;
}

}  // namespace sgxmig::sgx

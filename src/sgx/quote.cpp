#include "sgx/quote.h"

namespace sgxmig::sgx {

Bytes Quote::signed_message() const {
  BinaryWriter w;
  w.str("SGXMIG-QUOTE-v1");
  w.raw(body.serialize());
  w.u32(credential.group_id);
  return w.take();
}

Bytes Quote::serialize() const {
  BinaryWriter w;
  w.raw(body.serialize());
  credential.serialize(w);
  w.fixed(signature);
  return w.take();
}

Result<Quote> Quote::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  Quote q;
  q.body = ReportBody::deserialize(r);
  q.credential = EpidMemberCredential::deserialize(r);
  q.signature = r.fixed<64>();
  if (!r.done()) return Status::kTampered;
  return q;
}

QuotingEnclave::QuotingEnclave(PlatformIface& platform,
                               EpidMemberKey member_key)
    : Enclave(platform, standard_image()),
      member_key_(member_key),
      signing_key_(crypto::Ed25519KeyPair::from_seed(member_key_.member_seed)) {}

std::shared_ptr<const EnclaveImage> QuotingEnclave::standard_image() {
  static const std::shared_ptr<const EnclaveImage> image =
      EnclaveImage::create("intel-quoting-enclave", /*code_version=*/1,
                           /*signer_name=*/"intel", /*isv_prod_id=*/0x8086,
                           /*isv_svn=*/1);
  return image;
}

Result<Quote> QuotingEnclave::create_quote(const Report& report) {
  auto scope = enter_ecall();
  // Only reports produced on this machine, targeted at this QE, verify.
  if (!check_report(report)) return Status::kAttestationFailure;
  charge(platform().costs().quote_generation);

  Quote quote;
  quote.body = report.body;
  quote.credential = member_key_.credential;
  quote.signature = signing_key_.sign(quote.signed_message());
  return quote;
}

}  // namespace sgxmig::sgx

// Platform Services monotonic counters.
//
// Models the Intel Platform Services Enclave + Management Engine counter
// store with the invariants the paper's security argument needs:
//   * counters are machine-local and survive enclave restarts and reboots
//     (they live in ME flash, here: in the Machine-owned service);
//   * a counter UUID = (counter id, nonce); the nonce gates access to the
//     creating enclave identity, and counter ids are never reused, so a
//     destroyed counter can never be resurrected with a lower value;
//   * each enclave identity may own at most 256 counters;
//   * values only move upward; increments saturate/fail at uint32 max.
//
// Latency: every operation charges the Management-Engine flash cost from
// the CostModel (plus the PSE IPC path cost set by the access path), which
// is what gives Fig. 3 its absolute scale.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "sgx/types.h"
#include "support/bytes.h"
#include "support/serde.h"
#include "support/status.h"

namespace sgxmig::sgx {

struct CounterUuid {
  uint32_t counter_id = 0;
  std::array<uint8_t, 12> nonce{};

  bool operator==(const CounterUuid&) const = default;
};

void serialize_uuid(BinaryWriter& w, const CounterUuid& uuid);
CounterUuid deserialize_uuid(BinaryReader& r);

struct CreatedCounter {
  CounterUuid uuid;
  uint32_t value = 0;
};

/// The machine-local counter service (PSE backend).
class MonotonicCounterService {
 public:
  static constexpr size_t kMaxCountersPerEnclave = 256;

  /// Creates a counter owned by `owner` (the creating enclave's
  /// MRENCLAVE).  `nonce_entropy` feeds the UUID nonce.
  Result<CreatedCounter> create(const Measurement& owner, ByteView nonce_entropy);

  Result<uint32_t> read(const Measurement& owner, const CounterUuid& uuid) const;
  Result<uint32_t> increment(const Measurement& owner, const CounterUuid& uuid);
  Status destroy(const Measurement& owner, const CounterUuid& uuid);

  /// Marks every counter owned by `owner` dead in one firmware journal
  /// entry: immediately irreversible (reads, increments and destroys
  /// report kCounterNotFound from here on), but the flash slots stay
  /// allocated — and counted against the owner's quota — until the
  /// background reclaim sweep frees them.  Returns how many it retired.
  size_t retire_all(const Measurement& owner);
  /// Background GC sweep: frees the flash slots of retired counters.
  /// Returns how many were reclaimed; the caller charges the per-slot
  /// flash cost (this never runs on an enclave's critical path).
  size_t reclaim_retired();
  /// Retired-but-not-yet-reclaimed slots (the deferred-GC backlog).
  size_t retired_count() const;

  /// Number of live counters owned by `owner` (retired slots included:
  /// they hold quota until reclaimed).
  size_t count_for(const Measurement& owner) const;

  /// Total counter ids ever allocated (ids are never reused).
  uint32_t ids_allocated() const { return next_id_; }

 private:
  struct Entry {
    Measurement owner{};
    std::array<uint8_t, 12> nonce{};
    uint32_t value = 0;
    bool retired = false;
  };

  const Entry* find(const Measurement& owner, const CounterUuid& uuid) const;

  std::map<uint32_t, Entry> counters_;
  uint32_t next_id_ = 1;
};

}  // namespace sgxmig::sgx

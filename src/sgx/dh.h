// SDK-style local-attestation Diffie-Hellman sessions (sgx_dh_*).
//
// Two enclaves on the SAME machine establish a shared key and learn each
// other's verified identity in three messages:
//   msg1 (responder -> initiator): responder DH public key + target info
//   msg2 (initiator -> responder): initiator DH public key + a REPORT
//        targeted at the responder, binding both public keys
//   msg3 (responder -> initiator): responder REPORT targeted at the
//        initiator, binding both public keys
// Report MACs only verify on the same CPU, so a completed session proves
// same-machine, genuine-enclave, and the exact MRENCLAVE of the peer —
// everything the Migration Enclave needs from local attestation (§V-B).
#pragma once

#include "crypto/x25519.h"
#include "sgx/platform_iface.h"
#include "sgx/report.h"
#include "sgx/types.h"
#include "support/serde.h"
#include "support/status.h"

namespace sgxmig::sgx {

struct DhMsg1 {
  crypto::X25519Key responder_public{};
  TargetInfo responder_target;

  Bytes serialize() const;
  static Result<DhMsg1> deserialize(ByteView bytes);
};

struct DhMsg2 {
  crypto::X25519Key initiator_public{};
  Report initiator_report;

  Bytes serialize() const;
  static Result<DhMsg2> deserialize(ByteView bytes);
};

struct DhMsg3 {
  Report responder_report;

  Bytes serialize() const;
  static Result<DhMsg3> deserialize(ByteView bytes);
};

/// One side of a local-attestation session.  Instantiate inside the
/// enclave; `platform` provides the CPU, entropy, and cost accounting, and
/// `self` is the owning enclave's identity.
class DhSession {
 public:
  enum class Role { kInitiator, kResponder };

  DhSession(PlatformIface& platform, const EnclaveIdentity& self, Role role);

  // --- responder side ---
  DhMsg1 create_msg1();
  Result<DhMsg3> handle_msg2(const DhMsg2& msg2);

  // --- initiator side ---
  Result<DhMsg2> handle_msg1(const DhMsg1& msg1);
  Status handle_msg3(const DhMsg3& msg3);

  bool established() const { return established_; }
  const Key128& session_key() const { return session_key_; }
  const EnclaveIdentity& peer_identity() const { return peer_identity_; }

 private:
  ReportData binding(const crypto::X25519Key& first,
                     const crypto::X25519Key& second) const;
  void derive_key(const crypto::X25519Key& peer_public,
                  const crypto::X25519Key& initiator_public,
                  const crypto::X25519Key& responder_public);

  PlatformIface& platform_;
  EnclaveIdentity self_;
  Role role_;
  crypto::X25519Key private_key_{};
  crypto::X25519Key public_key_{};
  crypto::X25519Key peer_public_{};
  Key128 session_key_{};
  EnclaveIdentity peer_identity_;
  bool established_ = false;
};

}  // namespace sgxmig::sgx

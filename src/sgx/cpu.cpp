#include "sgx/cpu.h"

#include "crypto/hmac.h"
#include "support/serde.h"

namespace sgxmig::sgx {

SimCpu::SimCpu(const std::array<uint8_t, 32>& secret_seed)
    : cpu_secret_(secret_seed) {}

Key128 SimCpu::get_key(KeyName name, KeyPolicy policy,
                       const EnclaveIdentity& id, const KeyId& key_id) const {
  BinaryWriter w;
  w.str("SGXMIG-EGETKEY-v1");
  w.u16(static_cast<uint16_t>(name));
  w.u16(static_cast<uint16_t>(policy));
  switch (policy) {
    case KeyPolicy::kMrEnclave:
      w.fixed(id.mr_enclave);
      break;
    case KeyPolicy::kMrSigner:
      w.fixed(id.mr_signer);
      w.u16(id.isv_prod_id);
      break;
  }
  w.fixed(key_id);
  const auto mac =
      crypto::hmac_sha256(ByteView(cpu_secret_.data(), cpu_secret_.size()),
                          w.data());
  return to_array<16>(ByteView(mac.data(), mac.size()));
}

Key128 SimCpu::report_key(const Measurement& target_mr_enclave) const {
  BinaryWriter w;
  w.str("SGXMIG-REPORTKEY-v1");
  w.fixed(target_mr_enclave);
  const auto mac =
      crypto::hmac_sha256(ByteView(cpu_secret_.data(), cpu_secret_.size()),
                          w.data());
  return to_array<16>(ByteView(mac.data(), mac.size()));
}

}  // namespace sgxmig::sgx

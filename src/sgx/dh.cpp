#include "sgx/dh.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace sgxmig::sgx {

Bytes DhMsg1::serialize() const {
  BinaryWriter w;
  w.fixed(responder_public);
  w.fixed(responder_target.mr_enclave);
  return w.take();
}

Result<DhMsg1> DhMsg1::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  DhMsg1 m;
  m.responder_public = r.fixed<32>();
  m.responder_target.mr_enclave = r.fixed<32>();
  if (!r.done()) return Status::kTampered;
  return m;
}

Bytes DhMsg2::serialize() const {
  BinaryWriter w;
  w.fixed(initiator_public);
  w.bytes(initiator_report.serialize());
  return w.take();
}

Result<DhMsg2> DhMsg2::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  DhMsg2 m;
  m.initiator_public = r.fixed<32>();
  auto report = Report::deserialize(r.bytes(1024));
  if (!r.done() || !report.ok()) return Status::kTampered;
  m.initiator_report = std::move(report).value();
  return m;
}

Bytes DhMsg3::serialize() const {
  BinaryWriter w;
  w.bytes(responder_report.serialize());
  return w.take();
}

Result<DhMsg3> DhMsg3::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  DhMsg3 m;
  auto report = Report::deserialize(r.bytes(1024));
  if (!r.done() || !report.ok()) return Status::kTampered;
  m.responder_report = std::move(report).value();
  return m;
}

DhSession::DhSession(PlatformIface& platform, const EnclaveIdentity& self,
                     Role role)
    : platform_(platform), self_(self), role_(role) {
  const Bytes entropy = platform_.draw_entropy(32);
  for (size_t i = 0; i < 32; ++i) private_key_[i] = entropy[i];
  public_key_ = crypto::x25519_base(private_key_);
}

ReportData DhSession::binding(const crypto::X25519Key& first,
                              const crypto::X25519Key& second) const {
  BinaryWriter w;
  w.str("SGXMIG-DH-BINDING-v1");
  w.fixed(first);
  w.fixed(second);
  const auto digest = crypto::Sha256::hash(w.data());
  ReportData data{};
  for (size_t i = 0; i < digest.size(); ++i) data[i] = digest[i];
  return data;
}

void DhSession::derive_key(const crypto::X25519Key& peer_public,
                           const crypto::X25519Key& initiator_public,
                           const crypto::X25519Key& responder_public) {
  const crypto::X25519Key shared = crypto::x25519(private_key_, peer_public);
  BinaryWriter info;
  info.str("SGXMIG-LA-AEK-v1");
  info.fixed(initiator_public);
  info.fixed(responder_public);
  const Bytes key = crypto::hkdf_sha256(ByteView(shared.data(), shared.size()),
                                        ByteView(), info.data(), 16);
  session_key_ = to_array<16>(key);
}

DhMsg1 DhSession::create_msg1() {
  DhMsg1 m;
  m.responder_public = public_key_;
  m.responder_target.mr_enclave = self_.mr_enclave;
  return m;
}

Result<DhMsg2> DhSession::handle_msg1(const DhMsg1& msg1) {
  if (role_ != Role::kInitiator) return Status::kInvalidState;
  peer_public_ = msg1.responder_public;
  DhMsg2 m;
  m.initiator_public = public_key_;
  platform_.charge(platform_.costs().ereport);
  m.initiator_report =
      create_report(platform_.cpu(), self_, msg1.responder_target,
                    binding(public_key_, msg1.responder_public));
  return m;
}

Result<DhMsg3> DhSession::handle_msg2(const DhMsg2& msg2) {
  if (role_ != Role::kResponder) return Status::kInvalidState;
  platform_.charge(platform_.costs().report_verify);
  if (!verify_report(platform_.cpu(), self_.mr_enclave,
                     msg2.initiator_report)) {
    return Status::kAttestationFailure;
  }
  const ReportData expected = binding(msg2.initiator_public, public_key_);
  if (!constant_time_eq(
          ByteView(expected.data(), expected.size()),
          ByteView(msg2.initiator_report.body.report_data.data(), 64))) {
    return Status::kAttestationFailure;
  }
  peer_public_ = msg2.initiator_public;
  peer_identity_ = msg2.initiator_report.body.identity;
  derive_key(peer_public_, msg2.initiator_public, public_key_);
  established_ = true;

  DhMsg3 m;
  platform_.charge(platform_.costs().ereport);
  m.responder_report =
      create_report(platform_.cpu(), self_,
                    TargetInfo{peer_identity_.mr_enclave},
                    binding(public_key_, msg2.initiator_public));
  return m;
}

Status DhSession::handle_msg3(const DhMsg3& msg3) {
  if (role_ != Role::kInitiator) return Status::kInvalidState;
  platform_.charge(platform_.costs().report_verify);
  if (!verify_report(platform_.cpu(), self_.mr_enclave,
                     msg3.responder_report)) {
    return Status::kAttestationFailure;
  }
  const ReportData expected = binding(peer_public_, public_key_);
  if (!constant_time_eq(
          ByteView(expected.data(), expected.size()),
          ByteView(msg3.responder_report.body.report_data.data(), 64))) {
    return Status::kAttestationFailure;
  }
  peer_identity_ = msg3.responder_report.body.identity;
  derive_key(peer_public_, public_key_, peer_public_);
  established_ = true;
  return Status::kOk;
}

}  // namespace sgxmig::sgx

// SGX quotes and the Quoting Enclave.
//
// Remote attestation step 1: a prover enclave produces a REPORT targeted
// at its local Quoting Enclave; the QE verifies the report (possible only
// on the same machine) and converts it into a quote signed with the
// platform's (simulated) EPID member key.  The quote is then meaningful to
// off-machine verifiers via the IAS (sgx/ias.h).
#pragma once

#include <memory>

#include "sgx/enclave.h"
#include "sgx/epid.h"
#include "sgx/report.h"

namespace sgxmig::sgx {

struct Quote {
  ReportBody body;          // identity + report_data of the prover
  EpidMemberCredential credential;
  crypto::Ed25519Signature signature{};  // member key over the body

  Bytes serialize() const;
  static Result<Quote> deserialize(ByteView bytes);
  Bytes signed_message() const;
};

class QuotingEnclave : public Enclave {
 public:
  QuotingEnclave(PlatformIface& platform, EpidMemberKey member_key);

  /// ECALL: verifies that `report` targets this QE on this machine and
  /// signs the quote.  Refuses reports from other machines (kMacMismatch
  /// inside kAttestationFailure).
  Result<Quote> create_quote(const Report& report);

  TargetInfo target_info() const { return TargetInfo{identity().mr_enclave}; }

  /// The Intel-provided QE image (same MRENCLAVE on every machine).
  static std::shared_ptr<const EnclaveImage> standard_image();

 private:
  EpidMemberKey member_key_;
  crypto::Ed25519KeyPair signing_key_;
};

}  // namespace sgxmig::sgx

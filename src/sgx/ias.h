// Simulated Intel Attestation Service (IAS).
//
// Remote attestation step 2: a verifier submits a quote; the IAS checks
// the EPID membership and revocation status and the quote signature, and
// returns an Attestation Verification Report signed with the IAS report
// signing key — which relying parties (our Migration Enclaves) pin and
// verify, exactly like production code pins Intel's report signing
// certificate.
#pragma once

#include "sgx/epid.h"
#include "sgx/quote.h"
#include "support/cost_model.h"
#include "support/sim_clock.h"

namespace sgxmig::sgx {

enum class IasVerdict : uint8_t {
  kOk = 0,
  kSignatureInvalid = 1,
  kGroupRevoked = 2,
  kUnknownGroup = 3,
};

struct VerificationReport {
  IasVerdict verdict = IasVerdict::kSignatureInvalid;
  Bytes quote_body;  // serialized ReportBody the verdict covers
  crypto::Ed25519Signature ias_signature{};

  Bytes serialize() const;
  static Result<VerificationReport> deserialize(ByteView bytes);
  Bytes signed_message() const;

  /// Verifies the IAS signature against a pinned IAS key.
  bool verify(const crypto::Ed25519PublicKey& ias_key) const;
};

class IntelAttestationService {
 public:
  IntelAttestationService(EpidAuthority& authority, VirtualClock& clock,
                          const CostModel& costs, uint64_t seed);

  /// Verifies `quote` and returns a signed verification report.  Charges
  /// the modeled IAS round-trip latency (this is a remote web service).
  VerificationReport verify_quote(const Quote& quote);

  const crypto::Ed25519PublicKey& report_signing_key() const {
    return signing_key_.public_key();
  }

 private:
  EpidAuthority& authority_;
  VirtualClock& clock_;
  const CostModel& costs_;
  crypto::Ed25519KeyPair signing_key_;
};

}  // namespace sgxmig::sgx

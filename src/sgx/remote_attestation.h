// Mutual remote attestation between enclaves on different machines.
//
// Each side proves its identity with a quote (REPORT -> Quoting Enclave ->
// EPID signature) whose report_data binds the X25519 key agreement; each
// side submits the peer's quote to the IAS and checks the signed verdict.
// A completed session yields a shared key plus the peer's verified
// identity and leaves the transcript hash available so higher layers (the
// Migration Enclaves) can bind additional authentication to the session —
// the paper's cloud-provider signature exchange (§V-B).
#pragma once

#include "crypto/x25519.h"
#include "sgx/ias.h"
#include "sgx/platform_iface.h"
#include "sgx/quote.h"
#include "sgx/types.h"
#include "support/serde.h"
#include "support/status.h"

namespace sgxmig::sgx {

struct RaMsg1 {
  crypto::X25519Key initiator_public{};

  Bytes serialize() const;
  static Result<RaMsg1> deserialize(ByteView bytes);
};

struct RaMsg2 {
  crypto::X25519Key responder_public{};
  Bytes responder_quote;  // serialized Quote

  Bytes serialize() const;
  static Result<RaMsg2> deserialize(ByteView bytes);
};

struct RaMsg3 {
  Bytes initiator_quote;  // serialized Quote

  Bytes serialize() const;
  static Result<RaMsg3> deserialize(ByteView bytes);
};

class RaSession {
 public:
  enum class Role { kInitiator, kResponder };

  RaSession(PlatformIface& platform, const EnclaveIdentity& self, Role role);

  // --- initiator ---
  RaMsg1 create_msg1();
  Result<RaMsg3> handle_msg2(const RaMsg2& msg2);

  // --- responder ---
  Result<RaMsg2> handle_msg1(const RaMsg1& msg1);
  Status handle_msg3(const RaMsg3& msg3);

  bool established() const { return established_; }
  const Key128& session_key() const { return session_key_; }
  const EnclaveIdentity& peer_identity() const { return peer_identity_; }

  /// SHA-256 over both DH public keys — the attestation transcript both
  /// sides agree on, used for provider-authentication signatures.
  std::array<uint8_t, 32> transcript_hash() const;

 private:
  ReportData binding(const char* label) const;
  Result<Bytes> make_quote(const char* label);
  Status verify_peer_quote(ByteView quote_bytes, const char* label);
  void derive_key();

  PlatformIface& platform_;
  EnclaveIdentity self_;
  Role role_;
  crypto::X25519Key private_key_{};
  crypto::X25519Key public_key_{};
  crypto::X25519Key initiator_public_{};
  crypto::X25519Key responder_public_{};
  Key128 session_key_{};
  EnclaveIdentity peer_identity_;
  bool established_ = false;
};

}  // namespace sgxmig::sgx

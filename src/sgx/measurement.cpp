#include "sgx/measurement.h"

#include "crypto/sha256.h"
#include "support/serde.h"

namespace sgxmig::sgx {

Measurement measure_signer(const crypto::Ed25519PublicKey& key) {
  return crypto::Sha256::hash(ByteView(key.data(), key.size()));
}

EnclaveImage::EnclaveImage(std::string name, uint64_t code_version,
                           const crypto::Ed25519PublicKey& signer_public_key,
                           uint16_t isv_prod_id, uint16_t isv_svn)
    : name_(std::move(name)),
      code_version_(code_version),
      isv_prod_id_(isv_prod_id),
      isv_svn_(isv_svn) {
  // Deterministic measurement over the image descriptor — the stand-in for
  // hashing the enclave's pages at load time.
  BinaryWriter w;
  w.str("SGXMIG-MRENCLAVE-v1");
  w.str(name_);
  w.u64(code_version_);
  w.u16(isv_prod_id_);
  mr_enclave_ = crypto::Sha256::hash(w.data());
  mr_signer_ = measure_signer(signer_public_key);
}

EnclaveIdentity EnclaveImage::identity() const {
  EnclaveIdentity id;
  id.mr_enclave = mr_enclave_;
  id.mr_signer = mr_signer_;
  id.isv_prod_id = isv_prod_id_;
  id.isv_svn = isv_svn_;
  return id;
}

std::shared_ptr<const EnclaveImage> EnclaveImage::create(
    std::string name, uint64_t code_version, const std::string& signer_name,
    uint16_t isv_prod_id, uint16_t isv_svn) {
  // Deterministic developer key: fine for the simulation, where the signer
  // is an identity, not a secret held by this process.
  const auto seed = crypto::Sha256::hash(to_bytes("signer:" + signer_name));
  const auto kp = crypto::Ed25519KeyPair::from_seed(seed);
  return std::make_shared<const EnclaveImage>(std::move(name), code_version,
                                              kp.public_key(), isv_prod_id,
                                              isv_svn);
}

}  // namespace sgxmig::sgx

// SGX sealing: sgx_seal_data / sgx_unseal_data equivalents.
//
// The sealed blob mirrors sgx_sealed_data_t: a key request (policy +
// random key id), authenticated additional text (AAD), and an AES-GCM
// payload.  The sealing key comes from EGETKEY, so it is bound to BOTH the
// enclave identity and the machine's CPU secret — sealed data produced on
// one machine cannot be unsealed on another, which is precisely the
// persistent-state problem the paper addresses.
#pragma once

#include "crypto/drbg.h"
#include "sgx/cpu.h"
#include "sgx/types.h"
#include "support/bytes.h"
#include "support/status.h"

namespace sgxmig::sgx {

struct UnsealedData {
  Bytes plaintext;
  Bytes aad;  // the additional MAC text, integrity-protected but readable
};

/// Seals `plaintext` (+ authenticated `aad`) for the enclave identified by
/// `self` under `policy`, on the machine owning `cpu`.  `drbg` supplies the
/// random key id and IV.  Returns the serialized sealed blob.
Result<Bytes> seal_data(const SimCpu& cpu, const EnclaveIdentity& self,
                        crypto::CtrDrbg& drbg, KeyPolicy policy, ByteView aad,
                        ByteView plaintext);

/// Unseals a blob produced by seal_data.  The key is re-derived from the
/// *caller's* identity (`self`), exactly like the SDK: a different enclave
/// (or the same enclave on a different machine) derives a different key and
/// gets kMacMismatch.
Result<UnsealedData> unseal_data(const SimCpu& cpu, const EnclaveIdentity& self,
                                 ByteView sealed_blob);

/// Size of the serialized sealed blob for a given payload (used by cost
/// accounting and by callers sizing buffers, like sgx_calc_sealed_data_size).
size_t sealed_blob_size(size_t aad_len, size_t plaintext_len);

/// Reusable sealing context: derives the sealing key ONCE (one EGETKEY /
/// key id) and reuses it for repeated seals.  Hot persist paths — the
/// Migration Library re-seals its Table II buffer on every mutating
/// counter op, and a batching PersistenceEngine flushes it repeatedly —
/// would otherwise re-derive the key per flush.  Blobs are wire-identical
/// to seal_data output, so unseal_data opens them; each seal still draws a
/// fresh random IV.
class SealContext {
 public:
  SealContext(const SimCpu& cpu, const EnclaveIdentity& self,
              crypto::CtrDrbg& drbg, KeyPolicy policy);

  Result<Bytes> seal(ByteView aad, ByteView plaintext);

  KeyPolicy policy() const { return policy_; }

 private:
  crypto::CtrDrbg& drbg_;
  KeyPolicy policy_;
  KeyId key_id_{};
  Key128 key_{};
};

}  // namespace sgxmig::sgx

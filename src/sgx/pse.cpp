#include "sgx/pse.h"

#include <limits>

namespace sgxmig::sgx {

void serialize_uuid(BinaryWriter& w, const CounterUuid& uuid) {
  w.u32(uuid.counter_id);
  w.fixed(uuid.nonce);
}

CounterUuid deserialize_uuid(BinaryReader& r) {
  CounterUuid uuid;
  uuid.counter_id = r.u32();
  uuid.nonce = r.fixed<12>();
  return uuid;
}

Result<CreatedCounter> MonotonicCounterService::create(
    const Measurement& owner, ByteView nonce_entropy) {
  if (count_for(owner) >= kMaxCountersPerEnclave) {
    return Status::kCounterQuotaExceeded;
  }
  Entry entry;
  entry.owner = owner;
  entry.value = 0;
  for (size_t i = 0; i < entry.nonce.size() && i < nonce_entropy.size(); ++i) {
    entry.nonce[i] = nonce_entropy[i];
  }
  CreatedCounter created;
  created.uuid.counter_id = next_id_++;
  created.uuid.nonce = entry.nonce;
  created.value = 0;
  counters_.emplace(created.uuid.counter_id, entry);
  return created;
}

const MonotonicCounterService::Entry* MonotonicCounterService::find(
    const Measurement& owner, const CounterUuid& uuid) const {
  const auto it = counters_.find(uuid.counter_id);
  if (it == counters_.end()) return nullptr;
  // The nonce check is what prevents another enclave from touching the
  // counter even if it learns the id; the owner check mirrors the PSE
  // binding of counters to the creating enclave.
  if (it->second.nonce != uuid.nonce || !(it->second.owner == owner)) {
    return nullptr;
  }
  // A retired counter is logically destroyed: indistinguishable from a
  // gone one to every caller, even before the reclaim sweep runs.
  if (it->second.retired) return nullptr;
  return &it->second;
}

Result<uint32_t> MonotonicCounterService::read(const Measurement& owner,
                                               const CounterUuid& uuid) const {
  const Entry* entry = find(owner, uuid);
  if (entry == nullptr) return Status::kCounterNotFound;
  return entry->value;
}

Result<uint32_t> MonotonicCounterService::increment(const Measurement& owner,
                                                    const CounterUuid& uuid) {
  const Entry* entry = find(owner, uuid);
  if (entry == nullptr) return Status::kCounterNotFound;
  auto& mutable_entry = counters_.at(uuid.counter_id);
  if (mutable_entry.value == std::numeric_limits<uint32_t>::max()) {
    return Status::kCounterOverflow;
  }
  return ++mutable_entry.value;
}

Status MonotonicCounterService::destroy(const Measurement& owner,
                                        const CounterUuid& uuid) {
  if (find(owner, uuid) == nullptr) return Status::kCounterNotFound;
  counters_.erase(uuid.counter_id);
  return Status::kOk;
}

size_t MonotonicCounterService::retire_all(const Measurement& owner) {
  size_t n = 0;
  for (auto& [id, entry] : counters_) {
    if (entry.owner == owner && !entry.retired) {
      entry.retired = true;
      ++n;
    }
  }
  return n;
}

size_t MonotonicCounterService::reclaim_retired() {
  size_t n = 0;
  for (auto it = counters_.begin(); it != counters_.end();) {
    if (it->second.retired) {
      it = counters_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  return n;
}

size_t MonotonicCounterService::retired_count() const {
  size_t n = 0;
  for (const auto& [id, entry] : counters_) {
    if (entry.retired) ++n;
  }
  return n;
}

size_t MonotonicCounterService::count_for(const Measurement& owner) const {
  size_t n = 0;
  for (const auto& [id, entry] : counters_) {
    if (entry.owner == owner) ++n;
  }
  return n;
}

}  // namespace sgxmig::sgx

#include "sgx/report.h"

namespace sgxmig::sgx {

Bytes ReportBody::serialize() const {
  BinaryWriter w;
  serialize_identity(w, identity);
  w.fixed(report_data);
  return w.take();
}

ReportBody ReportBody::deserialize(BinaryReader& r) {
  ReportBody body;
  body.identity = deserialize_identity(r);
  body.report_data = r.fixed<64>();
  return body;
}

Bytes Report::serialize() const {
  BinaryWriter w;
  w.raw(body.serialize());
  w.fixed(mac);
  return w.take();
}

Result<Report> Report::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  Report report;
  report.body = ReportBody::deserialize(r);
  report.mac = r.fixed<16>();
  if (!r.done()) return Status::kTampered;
  return report;
}

Report create_report(const SimCpu& cpu, const EnclaveIdentity& self,
                     const TargetInfo& target, const ReportData& data) {
  Report report;
  report.body.identity = self;
  report.body.report_data = data;
  const Key128 key = cpu.report_key(target.mr_enclave);
  report.mac = crypto::aes_cmac(ByteView(key.data(), key.size()),
                                report.body.serialize());
  return report;
}

bool verify_report(const SimCpu& cpu, const Measurement& self_mr_enclave,
                   const Report& report) {
  const Key128 key = cpu.report_key(self_mr_enclave);
  const crypto::CmacTag expected = crypto::aes_cmac(
      ByteView(key.data(), key.size()), report.body.serialize());
  return constant_time_eq(ByteView(expected.data(), expected.size()),
                          ByteView(report.mac.data(), report.mac.size()));
}

}  // namespace sgxmig::sgx

#include "sgx/remote_attestation.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace sgxmig::sgx {

Bytes RaMsg1::serialize() const {
  BinaryWriter w;
  w.fixed(initiator_public);
  return w.take();
}

Result<RaMsg1> RaMsg1::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  RaMsg1 m;
  m.initiator_public = r.fixed<32>();
  if (!r.done()) return Status::kTampered;
  return m;
}

Bytes RaMsg2::serialize() const {
  BinaryWriter w;
  w.fixed(responder_public);
  w.bytes(responder_quote);
  return w.take();
}

Result<RaMsg2> RaMsg2::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  RaMsg2 m;
  m.responder_public = r.fixed<32>();
  m.responder_quote = r.bytes(4096);
  if (!r.done()) return Status::kTampered;
  return m;
}

Bytes RaMsg3::serialize() const {
  BinaryWriter w;
  w.bytes(initiator_quote);
  return w.take();
}

Result<RaMsg3> RaMsg3::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  RaMsg3 m;
  m.initiator_quote = r.bytes(4096);
  if (!r.done()) return Status::kTampered;
  return m;
}

RaSession::RaSession(PlatformIface& platform, const EnclaveIdentity& self,
                     Role role)
    : platform_(platform), self_(self), role_(role) {
  const Bytes entropy = platform_.draw_entropy(32);
  for (size_t i = 0; i < 32; ++i) private_key_[i] = entropy[i];
  public_key_ = crypto::x25519_base(private_key_);
  if (role_ == Role::kInitiator) {
    initiator_public_ = public_key_;
  } else {
    responder_public_ = public_key_;
  }
}

ReportData RaSession::binding(const char* label) const {
  BinaryWriter w;
  w.str("SGXMIG-RA-BINDING-v1");
  w.str(label);
  w.fixed(initiator_public_);
  w.fixed(responder_public_);
  const auto digest = crypto::Sha256::hash(w.data());
  ReportData data{};
  for (size_t i = 0; i < digest.size(); ++i) data[i] = digest[i];
  return data;
}

std::array<uint8_t, 32> RaSession::transcript_hash() const {
  BinaryWriter w;
  w.str("SGXMIG-RA-TRANSCRIPT-v1");
  w.fixed(initiator_public_);
  w.fixed(responder_public_);
  return crypto::Sha256::hash(w.data());
}

Result<Bytes> RaSession::make_quote(const char* label) {
  // REPORT targeted at the local QE, then quote it.
  platform_.charge(platform_.costs().ereport);
  const Report report =
      create_report(platform_.cpu(), self_,
                    platform_.quoting_enclave().target_info(), binding(label));
  auto quote = platform_.quoting_enclave().create_quote(report);
  if (!quote.ok()) return quote.status();
  return quote.value().serialize();
}

Status RaSession::verify_peer_quote(ByteView quote_bytes, const char* label) {
  auto quote = Quote::deserialize(quote_bytes);
  if (!quote.ok()) return Status::kTampered;

  // Submit to the IAS and check the signed verdict (we are the relying
  // party; the IAS key is pinned via the platform).
  const VerificationReport verdict =
      platform_.attestation_service().verify_quote(quote.value());
  if (!verdict.verify(platform_.attestation_service().report_signing_key())) {
    return Status::kQuoteVerificationFailure;
  }
  if (verdict.verdict != IasVerdict::kOk) {
    return Status::kQuoteVerificationFailure;
  }
  // The verdict must cover exactly the quote body we think we verified.
  if (verdict.quote_body != quote.value().body.serialize()) {
    return Status::kQuoteVerificationFailure;
  }
  // Key-agreement binding.
  const ReportData expected = binding(label);
  if (!constant_time_eq(
          ByteView(expected.data(), expected.size()),
          ByteView(quote.value().body.report_data.data(), 64))) {
    return Status::kAttestationFailure;
  }
  peer_identity_ = quote.value().body.identity;
  return Status::kOk;
}

void RaSession::derive_key() {
  const crypto::X25519Key peer =
      role_ == Role::kInitiator ? responder_public_ : initiator_public_;
  const crypto::X25519Key shared = crypto::x25519(private_key_, peer);
  BinaryWriter info;
  info.str("SGXMIG-RA-SK-v1");
  info.fixed(initiator_public_);
  info.fixed(responder_public_);
  const Bytes key = crypto::hkdf_sha256(ByteView(shared.data(), shared.size()),
                                        ByteView(), info.data(), 16);
  session_key_ = to_array<16>(key);
}

RaMsg1 RaSession::create_msg1() {
  RaMsg1 m;
  m.initiator_public = public_key_;
  return m;
}

Result<RaMsg2> RaSession::handle_msg1(const RaMsg1& msg1) {
  if (role_ != Role::kResponder) return Status::kInvalidState;
  initiator_public_ = msg1.initiator_public;
  RaMsg2 m;
  m.responder_public = public_key_;
  auto quote = make_quote("responder");
  if (!quote.ok()) return quote.status();
  m.responder_quote = std::move(quote).value();
  return m;
}

Result<RaMsg3> RaSession::handle_msg2(const RaMsg2& msg2) {
  if (role_ != Role::kInitiator) return Status::kInvalidState;
  responder_public_ = msg2.responder_public;
  const Status status = verify_peer_quote(msg2.responder_quote, "responder");
  if (status != Status::kOk) return status;
  derive_key();
  established_ = true;

  RaMsg3 m;
  auto quote = make_quote("initiator");
  if (!quote.ok()) return quote.status();
  m.initiator_quote = std::move(quote).value();
  return m;
}

Status RaSession::handle_msg3(const RaMsg3& msg3) {
  if (role_ != Role::kResponder) return Status::kInvalidState;
  const Status status = verify_peer_quote(msg3.initiator_quote, "initiator");
  if (status != Status::kOk) return status;
  derive_key();
  established_ = true;
  return Status::kOk;
}

}  // namespace sgxmig::sgx

// The services a physical machine exposes to enclaves running on it.
//
// platform::Machine implements this interface; the sgx layer only depends
// on the abstraction so that enclaves can also be unit-tested against a
// bare-bones fake.
#pragma once

#include <string>

#include "sgx/cpu.h"
#include "sgx/types.h"
#include "support/bytes.h"
#include "support/cost_model.h"
#include "support/sim_clock.h"
#include "support/status.h"

namespace sgxmig::net {
class Network;
}  // namespace sgxmig::net

namespace sgxmig::obs {
struct Observability;
}  // namespace sgxmig::obs

namespace sgxmig::sgx {

class QuotingEnclave;
class IntelAttestationService;

class PlatformIface {
 public:
  virtual ~PlatformIface() = default;

  virtual SimCpu& cpu() = 0;
  virtual VirtualClock& clock() = 0;
  virtual const CostModel& costs() const = 0;

  /// Advances virtual time by `base` with the model's multiplicative jitter.
  virtual void charge(Duration base) = 0;

  /// RDRAND stand-in: machine entropy for seeding enclave DRBGs.
  virtual Bytes draw_entropy(size_t len) = 0;

  /// Platform Services call on behalf of the enclave identified by
  /// `caller`.  Routed through the simulated Unix-socket/TCP proxy pair to
  /// the management VM (paper §VI-C); the request format is sgx/pse_wire.h.
  virtual Result<Bytes> pse_call(const Measurement& caller,
                                 ByteView request) = 0;

  /// Network address of this machine ("m0", "m1", ...).
  virtual const std::string& address() const = 0;

  /// Geographic/administrative region of this machine (for migration
  /// policies, paper §X).
  virtual const std::string& region() const = 0;

  /// Certified CPU core count (for computational-requirement policies).
  virtual uint32_t cpu_cores() const = 0;

  /// The simulated data-center network; null in minimal unit-test fakes.
  virtual net::Network* network() = 0;

  /// The world's trace/metrics bundle; null in unit-test fakes and when
  /// the platform has no observability wired (instrumentation sites must
  /// tolerate nullptr).
  virtual obs::Observability* observability() { return nullptr; }

  /// This machine's Quoting Enclave (for remote attestation).
  virtual QuotingEnclave& quoting_enclave() = 0;

  /// The Intel Attestation Service reachable from this machine.
  virtual IntelAttestationService& attestation_service() = 0;
};

}  // namespace sgxmig::sgx

// Simulated EPID group membership.
//
// Real SGX quotes are signed with EPID, a pairing-based group signature
// scheme; the paper uses it purely as "the Quoting Enclave signs quotes
// that the Intel Attestation Service can verify and revoke".  We preserve
// exactly that interface with Ed25519: Intel (the EpidAuthority) issues
// each platform a member key plus a membership certificate over it; quotes
// carry the member public key, certificate, and signature.  This drops
// EPID's signer anonymity — irrelevant to every protocol step in the
// paper — and keeps verification and revocation (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <set>

#include "crypto/ed25519.h"
#include "support/bytes.h"
#include "support/serde.h"
#include "support/status.h"

namespace sgxmig::sgx {

struct EpidMemberCredential {
  uint32_t group_id = 0;
  crypto::Ed25519PublicKey member_public_key{};
  crypto::Ed25519Signature membership_certificate{};

  void serialize(BinaryWriter& w) const;
  static EpidMemberCredential deserialize(BinaryReader& r);
};

/// A platform's provisioned EPID identity: the credential plus the member
/// private key (held by the Quoting Enclave).
struct EpidMemberKey {
  EpidMemberCredential credential;
  crypto::Ed25519Seed member_seed{};
};

class EpidAuthority {
 public:
  explicit EpidAuthority(uint64_t seed);

  /// Provisioning: issues a fresh member key for a platform (done once per
  /// machine at manufacturing/provisioning time).
  EpidMemberKey provision_member();

  /// Verifies a membership certificate.
  bool verify_credential(const EpidMemberCredential& credential) const;

  /// Revocation: a revoked member's quotes are rejected by the IAS.
  void revoke(const crypto::Ed25519PublicKey& member_public_key);
  bool is_revoked(const crypto::Ed25519PublicKey& member_public_key) const;

  uint32_t group_id() const { return group_id_; }

 private:
  Bytes certificate_message(const EpidMemberCredential& credential) const;

  crypto::Ed25519KeyPair group_key_;
  uint32_t group_id_;
  uint64_t next_member_ = 0;
  uint64_t seed_;
  std::set<crypto::Ed25519PublicKey> revoked_;
};

}  // namespace sgxmig::sgx

// Local-attestation REPORTs (EREPORT / verify_report).
//
// A REPORT proves, to another enclave on the *same machine*, which enclave
// produced it: the CPU MACs the report body with the target enclave's
// report key, which only that target (on that CPU) can re-derive.
#pragma once

#include "crypto/cmac.h"
#include "sgx/cpu.h"
#include "sgx/types.h"
#include "support/bytes.h"
#include "support/serde.h"
#include "support/status.h"

namespace sgxmig::sgx {

struct ReportBody {
  EnclaveIdentity identity;
  ReportData report_data{};

  Bytes serialize() const;
  static ReportBody deserialize(BinaryReader& r);
};

struct Report {
  ReportBody body;
  crypto::CmacTag mac{};

  Bytes serialize() const;
  static Result<Report> deserialize(ByteView bytes);
};

/// EREPORT: creates a report of `self` targeted at `target`, MACed with the
/// target's report key on `cpu`.
Report create_report(const SimCpu& cpu, const EnclaveIdentity& self,
                     const TargetInfo& target, const ReportData& data);

/// Verifies a report that was targeted at `self_mr_enclave` on `cpu`.
/// Fails for reports produced on a different machine (different CPU secret)
/// or targeted at a different enclave.
bool verify_report(const SimCpu& cpu, const Measurement& self_mr_enclave,
                   const Report& report);

}  // namespace sgxmig::sgx

// Enclave images and measurement.
//
// On real SGX, loading an enclave hashes every page's content and layout
// into MRENCLAVE — the same binary measures to the same value on any
// machine.  The simulation captures exactly that property: an EnclaveImage
// is a (name, version, content descriptor) triple whose MRENCLAVE is a
// SHA-256 over the descriptor, plus the developer's signing key whose hash
// is MRSIGNER.  Two machines instantiating the same image get identical
// identities; bumping the version models a patched (different) enclave.
#pragma once

#include <memory>
#include <string>

#include "crypto/ed25519.h"
#include "sgx/types.h"

namespace sgxmig::sgx {

class EnclaveImage {
 public:
  EnclaveImage(std::string name, uint64_t code_version,
               const crypto::Ed25519PublicKey& signer_public_key,
               uint16_t isv_prod_id, uint16_t isv_svn);

  const std::string& name() const { return name_; }
  uint64_t code_version() const { return code_version_; }
  const Measurement& mr_enclave() const { return mr_enclave_; }
  const Measurement& mr_signer() const { return mr_signer_; }

  EnclaveIdentity identity() const;

  /// Convenience: builds an image signed with a key derived from
  /// `signer_name` (deterministic developer identity).
  static std::shared_ptr<const EnclaveImage> create(
      std::string name, uint64_t code_version, const std::string& signer_name,
      uint16_t isv_prod_id = 1, uint16_t isv_svn = 1);

 private:
  std::string name_;
  uint64_t code_version_;
  uint16_t isv_prod_id_;
  uint16_t isv_svn_;
  Measurement mr_enclave_{};
  Measurement mr_signer_{};
};

/// MRSIGNER = SHA-256 of the signing public key (as on real SGX).
Measurement measure_signer(const crypto::Ed25519PublicKey& key);

}  // namespace sgxmig::sgx

#include "sgx/sealing.h"

#include "crypto/gcm.h"
#include "support/serde.h"

namespace sgxmig::sgx {

namespace {
constexpr char kMagic[] = "SGXMIG-SEALED-v1";

// The AAD fed to GCM covers the key request so it cannot be swapped.
Bytes gcm_aad(KeyPolicy policy, const KeyId& key_id, ByteView user_aad) {
  BinaryWriter w;
  w.u16(static_cast<uint16_t>(policy));
  w.fixed(key_id);
  w.bytes(user_aad);
  return w.take();
}
}  // namespace

size_t sealed_blob_size(size_t aad_len, size_t plaintext_len) {
  // magic(str) + policy + key_id + aad + iv + tag + ciphertext, with the
  // u32 length prefixes from the serialization format.
  return 4 + sizeof(kMagic) - 1 + 2 + 32 + 4 + aad_len + 12 + 16 + 4 +
         plaintext_len;
}

namespace {
// Shared by seal_data and SealContext::seal: everything after key
// derivation, emitting the wire format unseal_data expects.
Result<Bytes> seal_with_key(const Key128& key, const KeyId& key_id,
                            KeyPolicy policy, crypto::CtrDrbg& drbg,
                            ByteView aad, ByteView plaintext) {
  Bytes iv(crypto::kGcmIvSize);
  drbg.generate(iv.data(), iv.size());

  const crypto::GcmCiphertext ct =
      crypto::gcm_encrypt(ByteView(key.data(), key.size()), iv,
                          gcm_aad(policy, key_id, aad), plaintext);

  BinaryWriter w;
  w.str(kMagic);
  w.u16(static_cast<uint16_t>(policy));
  w.fixed(key_id);
  w.bytes(aad);
  w.fixed(ct.iv);
  w.fixed(ct.tag);
  w.bytes(ct.ciphertext);
  return w.take();
}
}  // namespace

Result<Bytes> seal_data(const SimCpu& cpu, const EnclaveIdentity& self,
                        crypto::CtrDrbg& drbg, KeyPolicy policy, ByteView aad,
                        ByteView plaintext) {
  KeyId key_id{};
  drbg.generate(key_id.data(), key_id.size());
  const Key128 key = cpu.get_key(KeyName::kSeal, policy, self, key_id);
  return seal_with_key(key, key_id, policy, drbg, aad, plaintext);
}

SealContext::SealContext(const SimCpu& cpu, const EnclaveIdentity& self,
                         crypto::CtrDrbg& drbg, KeyPolicy policy)
    : drbg_(drbg), policy_(policy) {
  drbg.generate(key_id_.data(), key_id_.size());
  key_ = cpu.get_key(KeyName::kSeal, policy, self, key_id_);
}

Result<Bytes> SealContext::seal(ByteView aad, ByteView plaintext) {
  return seal_with_key(key_, key_id_, policy_, drbg_, aad, plaintext);
}

Result<UnsealedData> unseal_data(const SimCpu& cpu,
                                 const EnclaveIdentity& self,
                                 ByteView sealed_blob) {
  BinaryReader r(sealed_blob);
  const std::string magic = r.str(64);
  const uint16_t policy_raw = r.u16();
  const KeyId key_id = r.fixed<32>();
  const Bytes aad = r.bytes();
  const auto iv = r.fixed<12>();
  const auto tag = r.fixed<16>();
  const Bytes ciphertext = r.bytes();
  if (!r.done() || magic != kMagic) return Status::kTampered;
  if (policy_raw != static_cast<uint16_t>(KeyPolicy::kMrEnclave) &&
      policy_raw != static_cast<uint16_t>(KeyPolicy::kMrSigner)) {
    return Status::kTampered;
  }
  const auto policy = static_cast<KeyPolicy>(policy_raw);

  const Key128 key = cpu.get_key(KeyName::kSeal, policy, self, key_id);
  auto plaintext = crypto::gcm_decrypt(
      ByteView(key.data(), key.size()), ByteView(iv.data(), iv.size()),
      gcm_aad(policy, key_id, aad), ciphertext,
      ByteView(tag.data(), tag.size()));
  if (!plaintext.ok()) return plaintext.status();

  UnsealedData out;
  out.plaintext = std::move(plaintext).value();
  out.aad = aad;
  return out;
}

}  // namespace sgxmig::sgx

#include "sgx/pse_wire.h"

#include "support/serde.h"

namespace sgxmig::sgx {

Bytes PseRequest::serialize() const {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(op));
  w.fixed(owner);
  w.fixed(session_token);
  serialize_uuid(w, uuid);
  w.bytes(nonce_entropy);
  return w.take();
}

Result<PseRequest> PseRequest::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  PseRequest req;
  const uint8_t op = r.u8();
  if (op < 1 || op > 5) return Status::kTampered;
  req.op = static_cast<PseOp>(op);
  req.owner = r.fixed<32>();
  req.session_token = r.fixed<16>();
  req.uuid = deserialize_uuid(r);
  req.nonce_entropy = r.bytes(64);
  if (!r.done()) return Status::kTampered;
  return req;
}

Bytes PseResponse::serialize() const {
  BinaryWriter w;
  w.u32(static_cast<uint32_t>(status));
  serialize_uuid(w, uuid);
  w.u32(value);
  return w.take();
}

Result<PseResponse> PseResponse::deserialize(ByteView bytes) {
  BinaryReader r(bytes);
  PseResponse resp;
  resp.status = static_cast<Status>(r.u32());
  resp.uuid = deserialize_uuid(r);
  resp.value = r.u32();
  if (!r.done()) return Status::kTampered;
  return resp;
}

crypto::CmacTag pse_session_token(const Key128& machine_secret,
                                  const Measurement& owner) {
  return crypto::aes_cmac(ByteView(machine_secret.data(), machine_secret.size()),
                          ByteView(owner.data(), owner.size()));
}

}  // namespace sgxmig::sgx

// Enclave base class: the trusted runtime of a simulated enclave.
//
// Lifecycle semantics match the SGX Developer Guide rules the paper quotes:
// an Enclave object's members are the EPC contents; destroying the object
// (application closes the enclave, application crashes, machine reboots)
// irrecoverably discards them.  Anything that must survive goes through
// seal()/counters — the persistent state whose migration this repo is
// about.
//
// Concrete enclaves (Migration Enclave, Quoting Enclave, the example app
// enclaves) subclass this.  Public methods of subclasses are the ECALL
// surface; they should open an EcallScope to account for the transition
// cost.  The protected methods below are the in-enclave trusted runtime
// (sgx_tseal / EREPORT / PSE session / RDRAND equivalents).
#pragma once

#include <memory>

#include "crypto/drbg.h"
#include "sgx/measurement.h"
#include "sgx/platform_iface.h"
#include "sgx/pse.h"
#include "sgx/pse_wire.h"
#include "sgx/report.h"
#include "sgx/sealing.h"
#include "sgx/types.h"

namespace sgxmig::migration {
class MigrationLibrary;
}  // namespace sgxmig::migration

namespace sgxmig::baseline {
class GuMigrationLibrary;
}  // namespace sgxmig::baseline

namespace sgxmig::sgx {

class Enclave {
 public:
  Enclave(PlatformIface& platform, std::shared_ptr<const EnclaveImage> image);
  virtual ~Enclave() = default;

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  /// Public identity (readable by untrusted code, as on real SGX).
  const EnclaveIdentity& identity() const { return identity_; }
  const EnclaveImage& image() const { return *image_; }

 protected:
  /// RAII ECALL transition: charges EENTER on construction, EEXIT on
  /// destruction.
  class EcallScope {
   public:
    explicit EcallScope(PlatformIface& platform) : platform_(platform) {
      platform_.charge(platform_.costs().ecall);
    }
    ~EcallScope() { platform_.charge(platform_.costs().ecall); }
    EcallScope(const EcallScope&) = delete;
    EcallScope& operator=(const EcallScope&) = delete;

   private:
    PlatformIface& platform_;
  };

  EcallScope enter_ecall() { return EcallScope(platform_); }

  // ----- sealing (sgx_seal_data / sgx_unseal_data) -----
  Result<Bytes> seal(KeyPolicy policy, ByteView aad, ByteView plaintext);
  Result<UnsealedData> unseal(ByteView sealed_blob);

  /// One-time EGETKEY for a reusable seal context: the derivation cost is
  /// charged here, once; each seal_with() charges only the GCM work.  Used
  /// by hot persist paths that re-seal the same state repeatedly.
  SealContext make_seal_context(KeyPolicy policy);
  Result<Bytes> seal_with(SealContext& context, ByteView aad,
                          ByteView plaintext);

  // ----- local attestation (EREPORT) -----
  Report make_report(const TargetInfo& target, const ReportData& data);
  bool check_report(const Report& report);

  // ----- Platform Services monotonic counters -----
  Result<CreatedCounter> counter_create();
  Result<uint32_t> counter_read(const CounterUuid& uuid);
  Result<uint32_t> counter_increment(const CounterUuid& uuid);
  Status counter_destroy(const CounterUuid& uuid);
  /// Logically destroys EVERY counter this enclave owns in one PSE round
  /// trip (one firmware journal entry).  Reads of retired counters fail
  /// immediately; the flash slots are reclaimed later by the platform's
  /// background sweep.  Returns how many counters were retired.
  Result<uint32_t> counter_retire_all();

  // ----- misc trusted runtime -----
  crypto::CtrDrbg& rng() { return drbg_; }
  PlatformIface& platform() { return platform_; }
  const PlatformIface& platform() const { return platform_; }
  void charge(Duration d) { platform_.charge(d); }
  /// Charges the modeled AES-GCM cost for `bytes` of payload.
  void charge_gcm(size_t bytes);

 private:
  // The migration libraries are linked into the enclave and run in the
  // same protection domain (paper §V-C: "the Migration Library and the
  // application enclave ... reside in the same protection domain. This
  // means that they both trust each other fully"), so they may use the
  // trusted runtime of their host enclave.
  friend class sgxmig::migration::MigrationLibrary;
  friend class sgxmig::baseline::GuMigrationLibrary;

  Result<PseResponse> pse_roundtrip(const PseRequest& request);

  PlatformIface& platform_;
  std::shared_ptr<const EnclaveImage> image_;
  EnclaveIdentity identity_;
  crypto::CtrDrbg drbg_;
};

}  // namespace sgxmig::sgx

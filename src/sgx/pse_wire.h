// Wire format of Platform Services (monotonic counter) calls.
//
// App enclaves reach Platform Services through a simulated Unix-socket →
// TCP proxy chain into the management VM (paper §VI-C), so the operations
// are serialized.  A session token — a MAC over the caller's MRENCLAVE
// with a machine secret — models the local attestation that binds a PSE
// session to the calling enclave; software outside an enclave cannot forge
// it, which the tests exercise.
#pragma once

#include "crypto/cmac.h"
#include "sgx/pse.h"
#include "sgx/types.h"
#include "support/bytes.h"
#include "support/status.h"

namespace sgxmig::sgx {

enum class PseOp : uint8_t {
  kCreate = 1,
  kRead = 2,
  kIncrement = 3,
  kDestroy = 4,
  /// Logical mass-destroy of every counter the caller owns (one firmware
  /// journal entry); physical slot reclaim is the background sweep.
  kRetireAll = 5,
};

struct PseRequest {
  PseOp op = PseOp::kRead;
  Measurement owner{};
  crypto::CmacTag session_token{};
  CounterUuid uuid{};        // ignored for kCreate
  Bytes nonce_entropy;       // only for kCreate

  Bytes serialize() const;
  static Result<PseRequest> deserialize(ByteView bytes);
};

struct PseResponse {
  Status status = Status::kUnexpected;
  CounterUuid uuid{};   // for kCreate
  uint32_t value = 0;   // for kCreate/kRead/kIncrement

  Bytes serialize() const;
  static Result<PseResponse> deserialize(ByteView bytes);
};

/// Session token binding `owner` to this machine's PSE.
crypto::CmacTag pse_session_token(const Key128& machine_secret,
                                  const Measurement& owner);

}  // namespace sgxmig::sgx

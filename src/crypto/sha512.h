// SHA-512 (FIPS 180-4), implemented from scratch.  Used by Ed25519.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.h"

namespace sgxmig::crypto {

using Sha512Digest = std::array<uint8_t, 64>;

class Sha512 {
 public:
  Sha512();

  void update(ByteView data);
  Sha512Digest finish();

  static Sha512Digest hash(ByteView data);

  static constexpr size_t kBlockSize = 128;
  static constexpr size_t kDigestSize = 64;

 private:
  void process_block(const uint8_t* block);

  uint64_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace sgxmig::crypto

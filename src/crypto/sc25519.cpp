#include "crypto/sc25519.h"

#include <cstring>

namespace sgxmig::crypto {

namespace {
using u128 = unsigned __int128;

constexpr uint64_t kL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0,
                            0x1000000000000000ULL};

// True iff a >= L.
bool ge_l(const uint64_t a[4]) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] > kL[i]) return true;
    if (a[i] < kL[i]) return false;
  }
  return true;  // equal
}

void sub_l(uint64_t a[4]) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 diff = (u128)a[i] - kL[i] - (uint64_t)borrow;
    a[i] = (uint64_t)diff;
    borrow = (diff >> 64) & 1;  // 1 if borrowed
  }
}

// r = 2r (+ bit), then reduce once; requires r < L on entry.
void shl1_add_mod(uint64_t r[4], uint64_t bit) {
  uint64_t carry = bit;
  for (int i = 0; i < 4; ++i) {
    const uint64_t next_carry = r[i] >> 63;
    r[i] = (r[i] << 1) | carry;
    carry = next_carry;
  }
  // r < 2L < 2^254, so the shift never overflows 256 bits and one
  // conditional subtraction restores r < L.
  if (ge_l(r)) sub_l(r);
}
}  // namespace

Sc sc_zero() { return Sc{{0, 0, 0, 0}}; }

Sc sc_from_bytes(ByteView bytes) {
  Sc r = sc_zero();
  // Most-significant byte first.
  for (size_t i = bytes.size(); i-- > 0;) {
    const uint8_t byte = bytes[i];
    for (int bit = 7; bit >= 0; --bit) {
      shl1_add_mod(r.v, (byte >> bit) & 1);
    }
  }
  return r;
}

Sc sc_add(const Sc& a, const Sc& b) {
  uint64_t r[4];
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 sum = (u128)a.v[i] + b.v[i] + (uint64_t)carry;
    r[i] = (uint64_t)sum;
    carry = sum >> 64;
  }
  // a, b < L < 2^253 so the sum fits in 254 bits (no carry out).
  if (ge_l(r)) sub_l(r);
  Sc out;
  std::memcpy(out.v, r, sizeof(r));
  return out;
}

Sc sc_muladd(const Sc& a, const Sc& b, const Sc& c) {
  // 512-bit schoolbook product.
  uint64_t wide[8] = {0};
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 t = (u128)a.v[i] * b.v[j] + wide[i + j] + (uint64_t)carry;
      wide[i + j] = (uint64_t)t;
      carry = t >> 64;
    }
    wide[i + 4] += (uint64_t)carry;
  }
  // Add c.
  u128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    const u128 t = (u128)wide[i] + (i < 4 ? c.v[i] : 0) + (uint64_t)carry;
    wide[i] = (uint64_t)t;
    carry = t >> 64;
  }
  // Reduce the 512-bit value mod L, MSB first.
  Sc r = sc_zero();
  for (int limb = 7; limb >= 0; --limb) {
    for (int bit = 63; bit >= 0; --bit) {
      shl1_add_mod(r.v, (wide[limb] >> bit) & 1);
    }
  }
  return r;
}

void sc_tobytes(uint8_t out[32], const Sc& s) {
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 8; ++b) {
      out[8 * i + b] = static_cast<uint8_t>(s.v[i] >> (8 * b));
    }
  }
}

bool sc_is_canonical(const uint8_t bytes[32]) {
  uint64_t limbs[4];
  for (int i = 0; i < 4; ++i) {
    uint64_t limb = 0;
    for (int b = 7; b >= 0; --b) limb = (limb << 8) | bytes[8 * i + b];
    limbs[i] = limb;
  }
  return !ge_l(limbs);
}

}  // namespace sgxmig::crypto

#include "crypto/drbg.h"

#include <cstring>
#include <stdexcept>

#include "crypto/aes.h"

namespace sgxmig::crypto {

CtrDrbg::CtrDrbg(ByteView seed) {
  if (seed.size() < 32) {
    throw std::invalid_argument("CtrDrbg: seed must be >= 32 bytes");
  }
  update(seed.subspan(0, 32));
}

void CtrDrbg::increment_v() {
  for (int i = 15; i >= 0; --i) {
    if (++v_[i] != 0) break;
  }
}

void CtrDrbg::update(ByteView provided) {
  uint8_t temp[32];
  const Aes aes(ByteView(key_.data(), key_.size()));
  for (int block = 0; block < 2; ++block) {
    increment_v();
    aes.encrypt_block(v_.data(), temp + 16 * block);
  }
  for (size_t i = 0; i < 32 && i < provided.size(); ++i) temp[i] ^= provided[i];
  std::memcpy(key_.data(), temp, 16);
  std::memcpy(v_.data(), temp + 16, 16);
}

void CtrDrbg::generate(uint8_t* out, size_t len) {
  const Aes aes(ByteView(key_.data(), key_.size()));
  size_t offset = 0;
  while (offset < len) {
    increment_v();
    uint8_t block[16];
    aes.encrypt_block(v_.data(), block);
    const size_t take = std::min<size_t>(16, len - offset);
    std::memcpy(out + offset, block, take);
    offset += take;
  }
  update(ByteView());
}

Bytes CtrDrbg::bytes(size_t len) {
  Bytes out(len);
  generate(out.data(), len);
  return out;
}

void CtrDrbg::reseed(ByteView entropy) { update(entropy); }

}  // namespace sgxmig::crypto

// AES-128-CMAC (RFC 4493 / NIST SP 800-38B).
//
// SGX uses CMAC with the report key to MAC local-attestation REPORTs
// (EREPORT), and CMAC-based KDFs in EGETKEY; the simulated SGX layer does
// the same.
#pragma once

#include <array>

#include "support/bytes.h"

namespace sgxmig::crypto {

using CmacTag = std::array<uint8_t, 16>;

CmacTag aes_cmac(ByteView key, ByteView message);

}  // namespace sgxmig::crypto

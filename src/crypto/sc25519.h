// Scalar arithmetic modulo the Ed25519 group order
// L = 2^252 + 27742317777372353535851937790883648493.
//
// Correctness-first implementation: reduction is binary shift-and-subtract,
// multiplication is schoolbook with 128-bit accumulation.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.h"

namespace sgxmig::crypto {

/// A scalar in [0, L), little-endian 64-bit limbs.
struct Sc {
  uint64_t v[4];
};

Sc sc_zero();

/// Reduces a little-endian byte string (any length <= 64) mod L.
Sc sc_from_bytes(ByteView bytes);

/// (a * b + c) mod L.
Sc sc_muladd(const Sc& a, const Sc& b, const Sc& c);

/// (a + b) mod L.
Sc sc_add(const Sc& a, const Sc& b);

void sc_tobytes(uint8_t out[32], const Sc& s);

/// True iff the 32-byte little-endian value is < L (canonical S check for
/// signature verification, RFC 8032 §5.1.7).
bool sc_is_canonical(const uint8_t bytes[32]);

}  // namespace sgxmig::crypto

#include "crypto/cmac.h"

#include <cstring>

#include "crypto/aes.h"

namespace sgxmig::crypto {

namespace {

// Doubling in GF(2^128) with the CMAC polynomial (left shift, conditional
// XOR of 0x87 into the last byte).
void gf_double(uint8_t block[16]) {
  const uint8_t carry = block[0] >> 7;
  for (int i = 0; i < 15; ++i) {
    block[i] = static_cast<uint8_t>((block[i] << 1) | (block[i + 1] >> 7));
  }
  block[15] = static_cast<uint8_t>(block[15] << 1);
  if (carry != 0) block[15] ^= 0x87;
}

}  // namespace

CmacTag aes_cmac(ByteView key, ByteView message) {
  const Aes aes(key);

  // Subkey generation.
  uint8_t l[16] = {0};
  uint8_t zero[16] = {0};
  aes.encrypt_block(zero, l);
  uint8_t k1[16];
  std::memcpy(k1, l, 16);
  gf_double(k1);
  uint8_t k2[16];
  std::memcpy(k2, k1, 16);
  gf_double(k2);

  const size_t n = message.size();
  const size_t full_blocks = n == 0 ? 0 : (n - 1) / 16;
  const size_t last_len = n - full_blocks * 16;  // 1..16 (0 only if n == 0)

  uint8_t x[16] = {0};
  for (size_t b = 0; b < full_blocks; ++b) {
    for (int i = 0; i < 16; ++i) x[i] ^= message[b * 16 + i];
    aes.encrypt_block(x, x);
  }

  uint8_t last[16] = {0};
  if (n != 0 && last_len == 16) {
    for (int i = 0; i < 16; ++i) {
      last[i] = message[full_blocks * 16 + i] ^ k1[i];
    }
  } else {
    for (size_t i = 0; i < last_len; ++i) last[i] = message[full_blocks * 16 + i];
    last[last_len] = 0x80;
    for (int i = 0; i < 16; ++i) last[i] ^= k2[i];
  }
  for (int i = 0; i < 16; ++i) x[i] ^= last[i];

  CmacTag tag{};
  aes.encrypt_block(x, tag.data());
  return tag;
}

}  // namespace sgxmig::crypto

// SHA-256 (FIPS 180-4), implemented from scratch.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.h"

namespace sgxmig::crypto {

using Sha256Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(ByteView data);
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(ByteView data);

  static constexpr size_t kBlockSize = 64;
  static constexpr size_t kDigestSize = 32;

 private:
  void process_block(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace sgxmig::crypto

#include "crypto/ed25519.h"

#include <cstring>

#include "crypto/fe25519.h"
#include "crypto/sc25519.h"
#include "crypto/sha512.h"

namespace sgxmig::crypto {

namespace {

// Point in extended twisted Edwards coordinates (X : Y : Z : T), T = XY/Z.
struct Ge {
  Fe x, y, z, t;
};

// Curve constant d = -121665/121666 mod p, computed once.
const Fe& curve_d() {
  static const Fe value = fe_neg(
      fe_mul(fe_from_u64(121665), fe_invert(fe_from_u64(121666))));
  return value;
}

const Fe& curve_2d() {
  static const Fe value = fe_add(curve_d(), curve_d());
  return value;
}

Ge ge_identity() { return Ge{fe_zero(), fe_one(), fe_one(), fe_zero()}; }

// Strongly unified addition (add-2008-hwcd-3 for a = -1); valid for
// doubling and for the identity element.
Ge ge_add(const Ge& p, const Ge& q) {
  const Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  const Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  const Fe c = fe_mul(fe_mul(p.t, curve_2d()), q.t);
  const Fe d = fe_mul(fe_add(p.z, p.z), q.z);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Ge ge_neg(const Ge& p) { return Ge{fe_neg(p.x), p.y, p.z, fe_neg(p.t)}; }

// Variable-time double-and-add; acceptable in the simulator (DESIGN.md).
Ge ge_scalarmult(const Ge& p, const uint8_t scalar[32]) {
  Ge r = ge_identity();
  for (int i = 255; i >= 0; --i) {
    r = ge_add(r, r);
    if ((scalar[i / 8] >> (i % 8)) & 1) r = ge_add(r, p);
  }
  return r;
}

void ge_tobytes(uint8_t out[32], const Ge& p) {
  const Fe zinv = fe_invert(p.z);
  const Fe x = fe_mul(p.x, zinv);
  const Fe y = fe_mul(p.y, zinv);
  fe_tobytes(out, y);
  out[31] ^= static_cast<uint8_t>(fe_is_negative(x) << 7);
}

// Decompression per RFC 8032 §5.1.3.  Returns false for invalid encodings.
bool ge_frombytes(Ge& out, const uint8_t s[32]) {
  const Fe y = fe_frombytes(s);
  const int sign = s[31] >> 7;

  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, fe_one());            // y^2 - 1
  const Fe v = fe_add(fe_mul(y2, curve_d()), fe_one());  // d y^2 + 1

  // Candidate root: x = (u/v)^((p+3)/8) = u v^3 (u v^7)^((p-5)/8).
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow22523(fe_mul(u, v7)));

  const Fe vx2 = fe_mul(v, fe_sq(x));
  if (!fe_equal(vx2, u)) {
    if (fe_equal(vx2, fe_neg(u))) {
      x = fe_mul(x, fe_sqrtm1());
    } else {
      return false;
    }
  }
  if (fe_is_zero(x) && sign == 1) return false;  // -0 is invalid
  if (fe_is_negative(x) != sign) x = fe_neg(x);

  out = Ge{x, y, fe_one(), fe_mul(x, y)};
  return true;
}

const Ge& base_point() {
  static const Ge value = [] {
    // Standard little-endian encoding of B = (x, 4/5) with x "positive":
    // 0x58 0x66 0x66 ... 0x66.
    uint8_t enc[32];
    std::memset(enc, 0x66, 32);
    enc[0] = 0x58;
    Ge b{};
    const bool ok = ge_frombytes(b, enc);
    (void)ok;
    return b;
  }();
  return value;
}

void clamp(uint8_t scalar[32]) {
  scalar[0] &= 248;
  scalar[31] &= 127;
  scalar[31] |= 64;
}

}  // namespace

Ed25519KeyPair Ed25519KeyPair::from_seed(const Ed25519Seed& seed) {
  Ed25519KeyPair kp;
  kp.seed_ = seed;
  const Sha512Digest h = Sha512::hash(ByteView(seed.data(), seed.size()));
  std::memcpy(kp.scalar_.data(), h.data(), 32);
  std::memcpy(kp.prefix_.data(), h.data() + 32, 32);
  clamp(kp.scalar_.data());
  const Ge a = ge_scalarmult(base_point(), kp.scalar_.data());
  ge_tobytes(kp.public_key_.data(), a);
  return kp;
}

Ed25519Signature Ed25519KeyPair::sign(ByteView message) const {
  // r = SHA512(prefix || M) mod L.
  Sha512 hr;
  hr.update(ByteView(prefix_.data(), prefix_.size()));
  hr.update(message);
  const Sha512Digest r_hash = hr.finish();
  const Sc r = sc_from_bytes(ByteView(r_hash.data(), r_hash.size()));

  uint8_t r_bytes[32];
  sc_tobytes(r_bytes, r);
  const Ge r_point = ge_scalarmult(base_point(), r_bytes);
  Ed25519Signature sig{};
  ge_tobytes(sig.data(), r_point);

  // k = SHA512(enc(R) || pub || M) mod L.
  Sha512 hk;
  hk.update(ByteView(sig.data(), 32));
  hk.update(ByteView(public_key_.data(), public_key_.size()));
  hk.update(message);
  const Sha512Digest k_hash = hk.finish();
  const Sc k = sc_from_bytes(ByteView(k_hash.data(), k_hash.size()));

  // S = r + k * s mod L.
  const Sc s = sc_from_bytes(ByteView(scalar_.data(), scalar_.size()));
  const Sc big_s = sc_muladd(k, s, r);
  sc_tobytes(sig.data() + 32, big_s);
  return sig;
}

bool ed25519_verify(const Ed25519PublicKey& public_key, ByteView message,
                    const Ed25519Signature& signature) {
  if (!sc_is_canonical(signature.data() + 32)) return false;
  Ge a{};
  if (!ge_frombytes(a, public_key.data())) return false;

  Sha512 hk;
  hk.update(ByteView(signature.data(), 32));
  hk.update(ByteView(public_key.data(), public_key.size()));
  hk.update(message);
  const Sha512Digest k_hash = hk.finish();
  const Sc k = sc_from_bytes(ByteView(k_hash.data(), k_hash.size()));
  uint8_t k_bytes[32];
  sc_tobytes(k_bytes, k);

  // Check enc(S*B - k*A) == R.
  const Ge sb = ge_scalarmult(base_point(), signature.data() + 32);
  const Ge ka = ge_scalarmult(ge_neg(a), k_bytes);
  const Ge r_check = ge_add(sb, ka);
  uint8_t r_bytes[32];
  ge_tobytes(r_bytes, r_check);
  return constant_time_eq(ByteView(r_bytes, 32), ByteView(signature.data(), 32));
}

}  // namespace sgxmig::crypto

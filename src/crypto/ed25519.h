// Ed25519 signatures (RFC 8032), implemented from scratch on top of
// fe25519/sc25519.
//
// In this reproduction Ed25519 stands in for every signature scheme the
// paper's ecosystem uses as an opaque primitive: the EPID group signature
// of the Quoting Enclave, the Intel Attestation Service report signature,
// the cloud provider's machine certificates, and application-level
// signatures (Teechan payments, TrInX certifications).
#pragma once

#include <array>

#include "support/bytes.h"

namespace sgxmig::crypto {

using Ed25519PublicKey = std::array<uint8_t, 32>;
using Ed25519Seed = std::array<uint8_t, 32>;
using Ed25519Signature = std::array<uint8_t, 64>;

class Ed25519KeyPair {
 public:
  /// Derives the key pair from a 32-byte seed (RFC 8032 §5.1.5).
  static Ed25519KeyPair from_seed(const Ed25519Seed& seed);

  const Ed25519PublicKey& public_key() const { return public_key_; }
  const Ed25519Seed& seed() const { return seed_; }

  Ed25519Signature sign(ByteView message) const;

 private:
  Ed25519Seed seed_{};
  Ed25519PublicKey public_key_{};
  std::array<uint8_t, 32> scalar_{};  // clamped secret scalar s
  std::array<uint8_t, 32> prefix_{};  // deterministic nonce prefix
};

/// Verifies a signature; rejects non-canonical S and invalid points.
bool ed25519_verify(const Ed25519PublicKey& public_key, ByteView message,
                    const Ed25519Signature& signature);

}  // namespace sgxmig::crypto

#include "crypto/hmac.h"

#include <stdexcept>

namespace sgxmig::crypto {

namespace {

template <typename Hash, size_t BlockSize, size_t DigestSize>
std::array<uint8_t, DigestSize> hmac_impl(ByteView key, ByteView message) {
  uint8_t key_block[BlockSize] = {0};
  if (key.size() > BlockSize) {
    const auto digest = Hash::hash(key);
    for (size_t i = 0; i < digest.size(); ++i) key_block[i] = digest[i];
  } else {
    for (size_t i = 0; i < key.size(); ++i) key_block[i] = key[i];
  }
  uint8_t ipad[BlockSize];
  uint8_t opad[BlockSize];
  for (size_t i = 0; i < BlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }
  Hash inner;
  inner.update(ByteView(ipad, BlockSize));
  inner.update(message);
  const auto inner_digest = inner.finish();
  Hash outer;
  outer.update(ByteView(opad, BlockSize));
  outer.update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

}  // namespace

Sha256Digest hmac_sha256(ByteView key, ByteView message) {
  return hmac_impl<Sha256, Sha256::kBlockSize, Sha256::kDigestSize>(key, message);
}

Sha512Digest hmac_sha512(ByteView key, ByteView message) {
  return hmac_impl<Sha512, Sha512::kBlockSize, Sha512::kDigestSize>(key, message);
}

Bytes hkdf_sha256(ByteView ikm, ByteView salt, ByteView info, size_t length) {
  if (length > 255 * Sha256::kDigestSize) {
    throw std::invalid_argument("hkdf_sha256: requested length too large");
  }
  // Extract.
  const Sha256Digest prk = hmac_sha256(salt, ikm);
  // Expand.
  Bytes okm;
  okm.reserve(length);
  Bytes previous;
  uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block = previous;
    append(block, info);
    block.push_back(counter++);
    const Sha256Digest t = hmac_sha256(ByteView(prk.data(), prk.size()), block);
    previous.assign(t.begin(), t.end());
    const size_t take = std::min(previous.size(), length - okm.size());
    okm.insert(okm.end(), previous.begin(), previous.begin() + static_cast<ptrdiff_t>(take));
  }
  return okm;
}

}  // namespace sgxmig::crypto

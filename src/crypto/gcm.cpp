#include "crypto/gcm.h"

#include <cstring>
#include <stdexcept>

#include "crypto/aes.h"

namespace sgxmig::crypto {

namespace {

struct Block {
  uint64_t hi = 0;
  uint64_t lo = 0;
};

Block load_block(const uint8_t* p) {
  return Block{load_be64(p), load_be64(p + 8)};
}

void store_block(uint8_t* p, const Block& b) {
  store_be64(p, b.hi);
  store_be64(p + 8, b.lo);
}

// Multiplication in GF(2^128) with the GCM polynomial, bit-by-bit
// (right-shift algorithm from SP 800-38D §6.3).
Block ghash_multiply(const Block& x, const Block& h) {
  Block z{0, 0};
  Block v = h;
  for (int i = 0; i < 128; ++i) {
    const uint64_t bit =
        i < 64 ? (x.hi >> (63 - i)) & 1 : (x.lo >> (127 - i)) & 1;
    if (bit != 0) {
      z.hi ^= v.hi;
      z.lo ^= v.lo;
    }
    const uint64_t lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb != 0) v.hi ^= 0xe100000000000000ULL;
  }
  return z;
}

class Ghash {
 public:
  explicit Ghash(const Block& h) : h_(h) {}

  void update(ByteView data) {
    size_t offset = 0;
    while (offset < data.size()) {
      uint8_t block[16] = {0};
      const size_t take = std::min<size_t>(16, data.size() - offset);
      std::memcpy(block, data.data() + offset, take);
      const Block b = load_block(block);
      y_.hi ^= b.hi;
      y_.lo ^= b.lo;
      y_ = ghash_multiply(y_, h_);
      offset += take;
    }
  }

  void lengths(uint64_t aad_bits, uint64_t ct_bits) {
    y_.hi ^= aad_bits;
    y_.lo ^= ct_bits;
    y_ = ghash_multiply(y_, h_);
  }

  Block digest() const { return y_; }

 private:
  Block h_;
  Block y_{0, 0};
};

void ctr_crypt(const Aes& aes, const uint8_t j0[16], ByteView in, Bytes& out) {
  uint8_t counter[16];
  std::memcpy(counter, j0, 16);
  out.resize(in.size());
  size_t offset = 0;
  while (offset < in.size()) {
    // Increment the low 32 bits (inc32).
    uint32_t ctr = load_be32(counter + 12);
    store_be32(counter + 12, ctr + 1);
    uint8_t keystream[16];
    aes.encrypt_block(counter, keystream);
    const size_t take = std::min<size_t>(16, in.size() - offset);
    for (size_t i = 0; i < take; ++i) {
      out[offset + i] = in[offset + i] ^ keystream[i];
    }
    offset += take;
  }
}

void compute_tag(const Aes& aes, const Block& hash_subkey,
                 const uint8_t j0[16], ByteView aad, ByteView ciphertext,
                 uint8_t tag[16]) {
  Ghash ghash(hash_subkey);
  ghash.update(aad);
  ghash.update(ciphertext);
  ghash.lengths(static_cast<uint64_t>(aad.size()) * 8,
                static_cast<uint64_t>(ciphertext.size()) * 8);
  uint8_t s[16];
  store_block(s, ghash.digest());
  uint8_t e[16];
  aes.encrypt_block(j0, e);
  for (int i = 0; i < 16; ++i) tag[i] = s[i] ^ e[i];
}

}  // namespace

GcmCiphertext gcm_encrypt(ByteView key, ByteView iv, ByteView aad,
                          ByteView plaintext) {
  if (iv.size() != kGcmIvSize) {
    throw std::invalid_argument("gcm_encrypt: IV must be 12 bytes");
  }
  const Aes aes(key);
  uint8_t zero[16] = {0};
  uint8_t h_bytes[16];
  aes.encrypt_block(zero, h_bytes);
  const Block h = load_block(h_bytes);

  uint8_t j0[16];
  std::memcpy(j0, iv.data(), 12);
  store_be32(j0 + 12, 1);

  GcmCiphertext out;
  std::memcpy(out.iv.data(), iv.data(), kGcmIvSize);
  ctr_crypt(aes, j0, plaintext, out.ciphertext);
  compute_tag(aes, h, j0, aad, out.ciphertext, out.tag.data());
  return out;
}

Result<Bytes> gcm_decrypt(ByteView key, ByteView iv, ByteView aad,
                          ByteView ciphertext, ByteView tag) {
  if (iv.size() != kGcmIvSize || tag.size() != kGcmTagSize) {
    return Status::kInvalidParameter;
  }
  const Aes aes(key);
  uint8_t zero[16] = {0};
  uint8_t h_bytes[16];
  aes.encrypt_block(zero, h_bytes);
  const Block h = load_block(h_bytes);

  uint8_t j0[16];
  std::memcpy(j0, iv.data(), 12);
  store_be32(j0 + 12, 1);

  uint8_t expected_tag[16];
  compute_tag(aes, h, j0, aad, ciphertext, expected_tag);
  if (!constant_time_eq(ByteView(expected_tag, 16), tag)) {
    return Status::kMacMismatch;
  }
  Bytes plaintext;
  ctr_crypt(aes, j0, ciphertext, plaintext);
  return plaintext;
}

}  // namespace sgxmig::crypto

#include "crypto/fe25519.h"

#include <cstring>

#include "support/bytes.h"

namespace sgxmig::crypto {

namespace {
using u128 = unsigned __int128;
constexpr uint64_t kMask51 = 0x7ffffffffffffULL;  // 2^51 - 1

// Reduces limbs to < 2^52 after an add/sub (inputs < 2^54 per limb).
Fe carry_reduce(Fe t) {
  for (int i = 0; i < 4; ++i) {
    t.v[i + 1] += t.v[i] >> 51;
    t.v[i] &= kMask51;
  }
  t.v[0] += 19 * (t.v[4] >> 51);
  t.v[4] &= kMask51;
  return t;
}
}  // namespace

Fe fe_zero() { return Fe{{0, 0, 0, 0, 0}}; }
Fe fe_one() { return Fe{{1, 0, 0, 0, 0}}; }
Fe fe_from_u64(uint64_t x) { return carry_reduce(Fe{{x, 0, 0, 0, 0}}); }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe out;
  for (int i = 0; i < 5; ++i) out.v[i] = a.v[i] + b.v[i];
  return carry_reduce(out);
}

Fe fe_sub(const Fe& a, const Fe& b) {
  // a + 4p - b keeps every limb positive for inputs with limbs < 2^53.
  static constexpr uint64_t k4p0 = 0x1fffffffffffb4ULL;  // 4*(2^51-19)
  static constexpr uint64_t k4pi = 0x1ffffffffffffcULL;  // 4*(2^51-1)
  Fe out;
  out.v[0] = a.v[0] + k4p0 - b.v[0];
  for (int i = 1; i < 5; ++i) out.v[i] = a.v[i] + k4pi - b.v[i];
  return carry_reduce(out);
}

Fe fe_neg(const Fe& a) { return fe_sub(fe_zero(), a); }

Fe fe_mul(const Fe& a, const Fe& b) {
  const uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];

  u128 t0 = (u128)a0 * b0 +
            (u128)19 * ((u128)a1 * b4 + (u128)a2 * b3 + (u128)a3 * b2 + (u128)a4 * b1);
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 +
            (u128)19 * ((u128)a2 * b4 + (u128)a3 * b3 + (u128)a4 * b2);
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)19 * ((u128)a3 * b4 + (u128)a4 * b3);
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)19 * ((u128)a4 * b4);
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe r;
  uint64_t c;
  r.v[0] = (uint64_t)t0 & kMask51; c = (uint64_t)(t0 >> 51);
  t1 += c; r.v[1] = (uint64_t)t1 & kMask51; c = (uint64_t)(t1 >> 51);
  t2 += c; r.v[2] = (uint64_t)t2 & kMask51; c = (uint64_t)(t2 >> 51);
  t3 += c; r.v[3] = (uint64_t)t3 & kMask51; c = (uint64_t)(t3 >> 51);
  t4 += c; r.v[4] = (uint64_t)t4 & kMask51; c = (uint64_t)(t4 >> 51);
  r.v[0] += c * 19;
  c = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += c;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_mul_small(const Fe& a, uint64_t s) {
  u128 t;
  Fe r;
  uint64_t c = 0;
  for (int i = 0; i < 5; ++i) {
    t = (u128)a.v[i] * s + c;
    r.v[i] = (uint64_t)t & kMask51;
    c = (uint64_t)(t >> 51);
  }
  r.v[0] += c * 19;
  c = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += c;
  return r;
}

Fe fe_pow(const Fe& a, const std::array<uint8_t, 32>& e) {
  // MSB-first square-and-multiply; skips leading zero bits.
  Fe result = fe_one();
  bool started = false;
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) result = fe_sq(result);
      if ((e[byte] >> bit) & 1) {
        result = fe_mul(result, a);
        started = true;
      }
    }
  }
  return result;
}

Fe fe_invert(const Fe& a) {
  // p - 2 = 2^255 - 21.
  std::array<uint8_t, 32> e{};
  e.fill(0xff);
  e[0] = 0xeb;
  e[31] = 0x7f;
  return fe_pow(a, e);
}

Fe fe_pow22523(const Fe& a) {
  // (p - 5) / 8 = 2^252 - 3.
  std::array<uint8_t, 32> e{};
  e.fill(0xff);
  e[0] = 0xfd;
  e[31] = 0x0f;
  return fe_pow(a, e);
}

void fe_cswap(Fe& a, Fe& b, uint64_t swap) {
  const uint64_t mask = 0 - swap;  // 0 or all-ones
  for (int i = 0; i < 5; ++i) {
    const uint64_t x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

Fe fe_frombytes(const uint8_t s[32]) {
  Fe out;
  out.v[0] = load_le64(s) & kMask51;
  out.v[1] = (load_le64(s + 6) >> 3) & kMask51;
  out.v[2] = (load_le64(s + 12) >> 6) & kMask51;
  out.v[3] = (load_le64(s + 19) >> 1) & kMask51;
  out.v[4] = (load_le64(s + 24) >> 12) & kMask51;
  return out;
}

void fe_tobytes(uint8_t out[32], const Fe& f) {
  Fe t = carry_reduce(f);
  t = carry_reduce(t);
  // Compute q = floor((t + 19) / 2^255) ∈ {0, 1}: 1 iff t >= p.
  uint64_t q = (t.v[0] + 19) >> 51;
  q = (t.v[1] + q) >> 51;
  q = (t.v[2] + q) >> 51;
  q = (t.v[3] + q) >> 51;
  q = (t.v[4] + q) >> 51;
  // Subtract p by adding 19q and dropping the 2^255 bit.
  t.v[0] += 19 * q;
  for (int i = 0; i < 4; ++i) {
    t.v[i + 1] += t.v[i] >> 51;
    t.v[i] &= kMask51;
  }
  t.v[4] &= kMask51;

  // Pack 5 x 51 bits little-endian.  The accumulator never holds more
  // than 7 + 51 = 58 bits, so the shifts below cannot overflow.
  uint8_t buf[40] = {0};
  uint64_t acc = 0;
  int acc_bits = 0;
  int pos = 0;
  for (int i = 0; i < 5; ++i) {
    acc |= t.v[i] << acc_bits;
    acc_bits += 51;
    while (acc_bits >= 8) {
      buf[pos++] = static_cast<uint8_t>(acc);
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  while (acc_bits > 0) {
    buf[pos++] = static_cast<uint8_t>(acc);
    acc >>= 8;
    acc_bits -= 8;
  }
  std::memcpy(out, buf, 32);
}

bool fe_is_zero(const Fe& a) {
  uint8_t bytes[32];
  fe_tobytes(bytes, a);
  uint8_t acc = 0;
  for (uint8_t b : bytes) acc |= b;
  return acc == 0;
}

int fe_is_negative(const Fe& a) {
  uint8_t bytes[32];
  fe_tobytes(bytes, a);
  return bytes[0] & 1;
}

bool fe_equal(const Fe& a, const Fe& b) {
  uint8_t ab[32], bb[32];
  fe_tobytes(ab, a);
  fe_tobytes(bb, b);
  return constant_time_eq(ByteView(ab, 32), ByteView(bb, 32));
}

const Fe& fe_sqrtm1() {
  // sqrt(-1) = 2^((p-1)/4) mod p, with (p-1)/4 = 2^253 - 5.
  static const Fe value = [] {
    std::array<uint8_t, 32> e{};
    e.fill(0xff);
    e[0] = 0xfb;
    e[31] = 0x1f;
    return fe_pow(fe_from_u64(2), e);
  }();
  return value;
}

}  // namespace sgxmig::crypto

// Field arithmetic modulo p = 2^255 - 19, with 5 limbs of 51 bits
// (curve25519-donna style, using unsigned __int128 accumulation).
//
// Shared by X25519 (Montgomery ladder) and Ed25519 (Edwards curve).
// Exponentiation is square-and-multiply over public exponents; this is a
// simulator, not a hardened production signer, and timing side channels of
// the host are out of the simulated threat model (see DESIGN.md).
#pragma once

#include <array>
#include <cstdint>

namespace sgxmig::crypto {

struct Fe {
  uint64_t v[5];
};

Fe fe_zero();
Fe fe_one();
Fe fe_from_u64(uint64_t x);

Fe fe_add(const Fe& a, const Fe& b);
Fe fe_sub(const Fe& a, const Fe& b);
Fe fe_mul(const Fe& a, const Fe& b);
Fe fe_sq(const Fe& a);
Fe fe_mul_small(const Fe& a, uint64_t s);  // s < 2^13
Fe fe_neg(const Fe& a);

/// a^e where `e` is a little-endian 256-bit exponent (variable time).
Fe fe_pow(const Fe& a, const std::array<uint8_t, 32>& e);
Fe fe_invert(const Fe& a);     // a^(p-2)
Fe fe_pow22523(const Fe& a);   // a^((p-5)/8), used for square roots

/// Conditionally swaps a and b when `swap` is 1 (branch-free).
void fe_cswap(Fe& a, Fe& b, uint64_t swap);

/// Decodes 32 little-endian bytes (top bit ignored, as in RFC 7748/8032).
Fe fe_frombytes(const uint8_t s[32]);
/// Encodes fully reduced (canonical) 32-byte little-endian form.
void fe_tobytes(uint8_t out[32], const Fe& f);

bool fe_is_zero(const Fe& a);
/// The "sign" used by Ed25519 encodings: lowest bit of the canonical form.
int fe_is_negative(const Fe& a);
bool fe_equal(const Fe& a, const Fe& b);

/// sqrt(-1) mod p (lazily computed constant).
const Fe& fe_sqrtm1();

}  // namespace sgxmig::crypto

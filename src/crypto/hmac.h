// HMAC (RFC 2104) over SHA-256 and SHA-512, and HKDF (RFC 5869).
#pragma once

#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "support/bytes.h"

namespace sgxmig::crypto {

Sha256Digest hmac_sha256(ByteView key, ByteView message);
Sha512Digest hmac_sha512(ByteView key, ByteView message);

/// HKDF-Extract-then-Expand with HMAC-SHA256.  `length` <= 255 * 32.
Bytes hkdf_sha256(ByteView ikm, ByteView salt, ByteView info, size_t length);

}  // namespace sgxmig::crypto

// AES-GCM authenticated encryption (NIST SP 800-38D).
//
// This is the algorithm behind SGX's sgx_seal_data (the SDK uses
// AES-128-GCM via sgx_rijndael128GCM_encrypt); every sealed blob, secure
// channel record, and migration-data payload in this repo goes through it.
#pragma once

#include <optional>

#include "support/bytes.h"
#include "support/status.h"

namespace sgxmig::crypto {

constexpr size_t kGcmIvSize = 12;
constexpr size_t kGcmTagSize = 16;

struct GcmCiphertext {
  std::array<uint8_t, kGcmIvSize> iv{};
  std::array<uint8_t, kGcmTagSize> tag{};
  Bytes ciphertext;
};

/// Encrypts `plaintext` with AES-GCM.  `key` must be 16 or 32 bytes; `iv`
/// must be exactly 12 bytes (the caller is responsible for uniqueness).
GcmCiphertext gcm_encrypt(ByteView key, ByteView iv, ByteView aad,
                          ByteView plaintext);

/// Decrypts and authenticates.  Returns kMacMismatch if the tag (over the
/// AAD and ciphertext) does not verify; no plaintext is released then.
Result<Bytes> gcm_decrypt(ByteView key, ByteView iv, ByteView aad,
                          ByteView ciphertext, ByteView tag);

}  // namespace sgxmig::crypto

// AES-128/192/256 block cipher (FIPS 197), implemented from scratch.
//
// This is a straightforward table-free implementation (S-box lookups on
// bytes, column mixing in GF(2^8)).  It stands in for the AES-NI hardware
// instructions the paper's enclaves use; throughput is benchmarked in
// bench/bench_crypto.cpp and feeds the cost model constants.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.h"

namespace sgxmig::crypto {

using Aes128Key = std::array<uint8_t, 16>;

class Aes {
 public:
  /// `key` must be 16, 24, or 32 bytes.
  explicit Aes(ByteView key);

  void encrypt_block(const uint8_t in[16], uint8_t out[16]) const;
  void decrypt_block(const uint8_t in[16], uint8_t out[16]) const;

  static constexpr size_t kBlockSize = 16;

 private:
  uint8_t round_keys_[15 * 16];  // up to 14 rounds + initial
  int rounds_;
};

}  // namespace sgxmig::crypto

// X25519 Diffie-Hellman function (RFC 7748).
//
// Used for every key agreement in the system: SDK-style local-attestation
// DH sessions, remote-attestation channels between Migration Enclaves, and
// the proxied secure channels.
#pragma once

#include <array>

#include "support/bytes.h"

namespace sgxmig::crypto {

using X25519Key = std::array<uint8_t, 32>;

/// out = scalar * point (u-coordinate), per RFC 7748 §5.
X25519Key x25519(const X25519Key& scalar, const X25519Key& point);

/// out = scalar * base point (u = 9).
X25519Key x25519_base(const X25519Key& scalar);

}  // namespace sgxmig::crypto

// AES-128 CTR deterministic random bit generator (simplified NIST
// SP 800-90A CTR_DRBG without derivation function).
//
// Inside the simulated world this stands in for RDRAND: each enclave's
// trusted runtime owns a CtrDrbg seeded from the (deterministic) world
// entropy source, so nonces, keys, and IVs are reproducible per seed yet
// unpredictable without it.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.h"

namespace sgxmig::crypto {

class CtrDrbg {
 public:
  /// `seed` must be at least 32 bytes of entropy (key || V).
  explicit CtrDrbg(ByteView seed);

  void generate(uint8_t* out, size_t len);
  Bytes bytes(size_t len);

  /// Mixes additional entropy into the state.
  void reseed(ByteView entropy);

 private:
  void update(ByteView provided);
  void increment_v();

  std::array<uint8_t, 16> key_{};
  std::array<uint8_t, 16> v_{};
};

}  // namespace sgxmig::crypto

// Invariant oracles for chaos storms (ISSUE 9): after a fault-injected
// drain, prove the paper's §III-B/§V-D guarantees held —
//
//   * convergence: every planned migration succeeded, the source is
//     empty, and each enclave completed EXACTLY one registry-confirmed
//     move (the nonce exactly-once observable);
//   * no counter regression: every pre-drain counter value reads back
//     exactly on the migrated instance;
//   * no forks: neither the post-drain stored buffer (freeze flag) nor
//     the pre-drain sealed snapshot (epoch guard / destroyed counters)
//     restores into a second USABLE instance — refusals are counted so
//     the no-fork verdict is cross-checked against epoch-guard refusals;
//   * durable-queue consistency: every surviving ME drained its pending
//     incoming entries, transfer tasks, and done-relay retries.
//
// check_fault_recovery is the C++ twin of scripts/trace_check.py
// --chaos: every "chaos.fault" trace instant must be followed by traced
// recovery evidence (a later delivery/reply, a heal, or later protocol
// spans) rather than a silent stall.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "orchestrator/fleet_registry.h"
#include "orchestrator/report.h"

namespace sgxmig::chaos {

/// One violated invariant: `check` names the oracle, `detail` the
/// witness.  An empty finding list is the pass verdict.
struct OracleFinding {
  std::string check;
  std::string detail;
};

class ConvergenceOracle {
 public:
  /// `source_machine` is the machine the plan drains.
  ConvergenceOracle(orchestrator::FleetRegistry& fleet,
                    std::string source_machine);

  /// Snapshots the pre-drain ground truth: per-enclave counter values,
  /// completed-move counts, the current sealed buffer (the fork drill
  /// artifact an adversary would replay), and live-transfer capability.
  /// Call BEFORE Orchestrator::execute.
  void capture();

  /// Runs every post-drain oracle against `report` and the live fleet.
  /// Returns the violations (empty = all invariants held).
  std::vector<OracleFinding> verify(
      const orchestrator::OrchestratorReport& report);

  /// Stale restores refused by the epoch guard / freeze flag during
  /// verify() — the cross-check that the no-fork verdict came from the
  /// anti-fork machinery actually firing, not from luck.
  uint64_t epoch_guard_refusals() const { return epoch_guard_refusals_; }

  /// Forked instances detected by the last verify() (a stale buffer that
  /// restored AND could read state).  The headline gate is forks() == 0.
  uint64_t forks() const { return forks_; }

 private:
  struct Captured {
    uint64_t id = 0;
    std::string name;
    std::shared_ptr<const sgx::EnclaveImage> image;
    std::vector<std::pair<uint32_t, uint32_t>> counters;  // slot -> value
    uint32_t completed_migrations = 0;
    Bytes sealed;
    bool live_transfer = false;
  };

  orchestrator::FleetRegistry& fleet_;
  std::string source_;
  std::vector<Captured> captured_;
  uint64_t epoch_guard_refusals_ = 0;
  uint64_t forks_ = 0;
};

/// Trace-level recovery oracle: every "chaos.fault" instant must be
/// followed (strictly later in virtual time) by recovery evidence — a
/// net.deliver / net.reply instant, a "chaos.heal", or a span starting
/// after the fault.  A fault with no subsequent activity is a silent
/// stall.  Returns one finding per stalled fault.
std::vector<OracleFinding> check_fault_recovery(
    const obs::TraceRecorder& recorder);

}  // namespace sgxmig::chaos

#include "chaos/chaos_plan.h"

#include <cstdio>

#include "support/json.h"
#include "support/json_parse.h"
#include "support/rng.h"

namespace sgxmig::chaos {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMeCrash:
      return "me-crash";
    case FaultKind::kMeRestart:
      return "me-restart";
    case FaultKind::kEndpointFlap:
      return "endpoint-flap";
    case FaultKind::kTamper:
      return "tamper";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kReplyLoss:
      return "reply-loss";
    case FaultKind::kChunkCorrupt:
      return "chunk-corrupt";
  }
  return "unknown";
}

Result<FaultKind> fault_kind_from_name(std::string_view name) {
  for (const FaultKind kind :
       {FaultKind::kMeCrash, FaultKind::kMeRestart, FaultKind::kEndpointFlap,
        FaultKind::kTamper, FaultKind::kDrop, FaultKind::kReplyLoss,
        FaultKind::kChunkCorrupt}) {
    if (name == fault_kind_name(kind)) return kind;
  }
  return Status::kInvalidParameter;
}

namespace {

void append_number(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out += buf;
}

void append_number(std::string& out, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

std::string ChaosPlan::to_json() const {
  std::string out = "{\"seed\": ";
  append_number(out, seed);
  out += ", \"events\": [";
  bool first = true;
  for (const FaultEvent& e : events) {
    if (!first) out += ", ";
    first = false;
    out += "{\"kind\": ";
    append_json_string(out, fault_kind_name(e.kind));
    out += ", \"target\": ";
    append_json_string(out, e.target);
    out += ", \"at_wave\": ";
    append_number(out, static_cast<uint64_t>(e.at_wave));
    out += ", \"at_round\": ";
    append_number(out, static_cast<uint64_t>(e.at_round));
    out += ", \"at_seconds\": ";
    append_number(out, to_seconds(e.at));
    out += ", \"duration_seconds\": ";
    append_number(out, to_seconds(e.duration));
    out += ", \"msg_type\": ";
    append_number(out, static_cast<uint64_t>(e.msg_type));
    out += ", \"probability\": ";
    append_number(out, e.probability);
    out += ", \"max_firings\": ";
    append_number(out, static_cast<uint64_t>(e.max_firings));
    out += "}";
  }
  out += "]}";
  return out;
}

Result<ChaosPlan> ChaosPlan::from_json(std::string_view text) {
  auto parsed = parse_json(text);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) return Status::kInvalidParameter;
  const JsonValue* seed_value = doc.find("seed");
  const JsonValue* events_value = doc.find("events");
  if (seed_value == nullptr || !seed_value->is_number() ||
      events_value == nullptr || !events_value->is_array()) {
    return Status::kInvalidParameter;
  }

  ChaosPlan plan;
  plan.seed = static_cast<uint64_t>(seed_value->as_number());
  for (const JsonValue& item : events_value->items()) {
    if (!item.is_object()) return Status::kInvalidParameter;
    const JsonValue* kind_value = item.find("kind");
    if (kind_value == nullptr || !kind_value->is_string()) {
      return Status::kInvalidParameter;
    }
    auto kind = fault_kind_from_name(kind_value->as_string());
    if (!kind.ok()) return kind.status();

    FaultEvent event;
    event.kind = kind.value();
    const auto number_field = [&item](std::string_view key) -> double {
      const JsonValue* v = item.find(key);
      return v != nullptr && v->is_number() ? v->as_number() : 0.0;
    };
    if (const JsonValue* v = item.find("target");
        v != nullptr && v->is_string()) {
      event.target = v->as_string();
    }
    event.at_wave = static_cast<uint32_t>(number_field("at_wave"));
    event.at_round = static_cast<uint32_t>(number_field("at_round"));
    event.at = seconds(number_field("at_seconds"));
    event.duration = seconds(number_field("duration_seconds"));
    event.msg_type = static_cast<uint8_t>(number_field("msg_type"));
    event.probability = number_field("probability");
    event.max_firings = static_cast<uint32_t>(number_field("max_firings"));
    plan.events.push_back(std::move(event));
  }
  return plan;
}

StormProfile mixed_profile() { return StormProfile{}; }

StormProfile wire_heavy_profile() {
  StormProfile profile;
  profile.name = "wire-heavy";
  profile.me_crash_restart_pairs = 0;
  profile.endpoint_flaps = 3;
  profile.tamper_probability = 0.15;
  profile.drop_probability = 0.10;
  profile.reply_loss_probability = 0.12;
  profile.chunk_corrupt_probability = 0.10;
  profile.wire_rule_max_firings = 40;
  return profile;
}

StormProfile crash_heavy_profile() {
  StormProfile profile;
  profile.name = "crash-heavy";
  profile.me_crash_restart_pairs = 2;
  profile.crash_wave_span = 6;
  profile.revive_after_waves = 2;
  profile.endpoint_flaps = 1;
  profile.tamper_probability = 0.03;
  profile.drop_probability = 0.02;
  profile.reply_loss_probability = 0.03;
  profile.chunk_corrupt_probability = 0.0;
  profile.wire_rule_max_firings = 8;
  return profile;
}

ChaosPlan generate_storm(uint64_t seed, const StormProfile& profile,
                         const std::string& source_machine,
                         const std::vector<std::string>& destinations) {
  Rng rng(seed);
  ChaosPlan plan;
  plan.seed = seed;

  // ME crash/restart pairs on the drain source.  Crashes of one storm
  // fire at distinct waves only by chance — overlapping pairs are legal
  // (a crash of an already-dead ME is a no-op the executor skips).
  for (uint32_t i = 0; i < profile.me_crash_restart_pairs; ++i) {
    const uint32_t crash_wave =
        1 + static_cast<uint32_t>(
                rng.uniform(profile.crash_wave_span > 0
                                ? profile.crash_wave_span
                                : 1));
    FaultEvent crash;
    crash.kind = FaultKind::kMeCrash;
    crash.target = source_machine;
    crash.at_wave = crash_wave;
    plan.events.push_back(crash);

    FaultEvent restart;
    restart.kind = FaultKind::kMeRestart;
    restart.target = source_machine;
    restart.at_wave = crash_wave + profile.revive_after_waves;
    plan.events.push_back(restart);
  }

  // Destination-endpoint flaps, early in the drain.
  for (uint32_t i = 0; i < profile.endpoint_flaps && !destinations.empty();
       ++i) {
    const std::string& machine =
        destinations[rng.uniform(destinations.size())];
    FaultEvent flap;
    flap.kind = FaultKind::kEndpointFlap;
    flap.target = machine + "/me";
    flap.at = seconds(rng.uniform_double() * profile.flap_window_seconds);
    flap.duration = seconds(
        profile.flap_min_seconds +
        rng.uniform_double() *
            (profile.flap_max_seconds - profile.flap_min_seconds));
    plan.events.push_back(flap);
  }

  // Probabilistic wire-fault rules (msg_type 0 = the kind's default
  // match set; target "" = any /me endpoint).
  const auto wire_rule = [&plan, &profile](FaultKind kind,
                                           double probability) {
    if (probability <= 0.0) return;
    FaultEvent rule;
    rule.kind = kind;
    rule.probability = probability;
    rule.max_firings = profile.wire_rule_max_firings;
    plan.events.push_back(rule);
  };
  wire_rule(FaultKind::kTamper, profile.tamper_probability);
  wire_rule(FaultKind::kDrop, profile.drop_probability);
  wire_rule(FaultKind::kReplyLoss, profile.reply_loss_probability);
  wire_rule(FaultKind::kChunkCorrupt, profile.chunk_corrupt_probability);
  return plan;
}

}  // namespace sgxmig::chaos

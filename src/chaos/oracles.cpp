#include "chaos/oracles.h"

#include "migration/migratable_enclave.h"
#include "migration/migration_enclave.h"

namespace sgxmig::chaos {

using migration::InitState;
using migration::MigratableEnclave;

ConvergenceOracle::ConvergenceOracle(orchestrator::FleetRegistry& fleet,
                                     std::string source_machine)
    : fleet_(fleet), source_(std::move(source_machine)) {}

void ConvergenceOracle::capture() {
  captured_.clear();
  for (const uint64_t id : fleet_.ids_on(source_)) {
    const orchestrator::EnclaveRecord* record = fleet_.find(id);
    if (record == nullptr || record->enclave == nullptr) continue;
    Captured snap;
    snap.id = id;
    snap.name = record->name;
    snap.image = record->image;
    snap.completed_migrations = record->completed_migrations;
    snap.sealed = record->enclave->sealed_state();
    snap.live_transfer = record->enclave->live_transfer_capable();
    for (uint32_t slot = 0; slot < migration::kMaxCounters; ++slot) {
      auto value = record->enclave->ecall_read_migratable_counter(slot);
      if (value.ok()) snap.counters.emplace_back(slot, value.value());
    }
    captured_.push_back(std::move(snap));
  }
}

std::vector<OracleFinding> ConvergenceOracle::verify(
    const orchestrator::OrchestratorReport& report) {
  std::vector<OracleFinding> findings;
  epoch_guard_refusals_ = 0;
  forks_ = 0;

  if (report.failed() != 0) {
    findings.push_back({"convergence", std::to_string(report.failed()) +
                                           " migrations failed terminally"});
  }
  if (fleet_.count_on(source_) != 0) {
    findings.push_back(
        {"convergence", std::to_string(fleet_.count_on(source_)) +
                            " enclaves still placed on " + source_});
  }

  platform::Machine* source_machine = fleet_.world().machine(source_);

  for (const Captured& snap : captured_) {
    const orchestrator::EnclaveRecord* record = fleet_.find(snap.id);
    if (record == nullptr || record->enclave == nullptr) {
      findings.push_back({"convergence", snap.name + " vanished from the "
                                                     "registry"});
      continue;
    }

    // Nonce exactly-once, end to end: however many attempts, retries, and
    // ME restarts the storm forced, the registry must confirm EXACTLY one
    // completed move per enclave (a double-applied transfer would confirm
    // twice, a lost one zero times).
    if (record->completed_migrations != snap.completed_migrations + 1) {
      findings.push_back(
          {"exactly-once",
           snap.name + " completed " +
               std::to_string(record->completed_migrations -
                              snap.completed_migrations) +
               " moves (expected 1)"});
    }

    // No counter regression or loss across the migration.
    for (const auto& [slot, expected] : snap.counters) {
      auto value = record->enclave->ecall_read_migratable_counter(slot);
      if (!value.ok()) {
        findings.push_back({"counter-regression",
                            snap.name + " slot " + std::to_string(slot) +
                                " unreadable after migration"});
      } else if (value.value() != expected) {
        findings.push_back({"counter-regression",
                            snap.name + " slot " + std::to_string(slot) +
                                " read " + std::to_string(value.value()) +
                                ", captured " + std::to_string(expected)});
      }
    }

    if (source_machine == nullptr) continue;

    // Fork check A — the POST-drain stored buffer on the source: the
    // migrated-away instance's final sealed state carries the freeze
    // flag, so restoring it must refuse with kMigrationFrozen.
    auto stored = source_machine->storage().get(snap.name + ".ml");
    if (stored.ok()) {
      MigratableEnclave replay(*source_machine, snap.image);
      const Status status = replay.ecall_migration_init(
          stored.value(), InitState::kRestore, source_);
      if (status == Status::kMigrationFrozen) {
        ++epoch_guard_refusals_;
      } else if (status == Status::kOk) {
        ++forks_;
        findings.push_back({"fork", snap.name + " post-drain buffer "
                                                "restored into a live "
                                                "instance"});
      }
    }

    // Fork check B — the PRE-drain sealed snapshot (what an adversary
    // replaying an old backup would present): for live-transfer enclaves
    // the epoch guard must refuse it outright; for full-snapshot
    // enclaves it may unseal (the freeze flag postdates it) but its
    // hardware counters were destroyed, so reading ANY captured slot
    // back means a usable fork.
    if (!snap.sealed.empty()) {
      MigratableEnclave replay(*source_machine, snap.image);
      const Status status = replay.ecall_migration_init(
          snap.sealed, InitState::kRestore, source_);
      if (status == Status::kMigrationFrozen) {
        ++epoch_guard_refusals_;
      } else if (status == Status::kOk) {
        bool readable = false;
        for (const auto& [slot, expected] : snap.counters) {
          if (replay.ecall_read_migratable_counter(slot).ok()) {
            readable = true;
            break;
          }
        }
        if (readable) {
          ++forks_;
          findings.push_back(
              {"fork", snap.name + " pre-drain snapshot restored with "
                                   "readable counters"});
        }
        if (snap.live_transfer) {
          findings.push_back(
              {"fork", snap.name + " epoch guard accepted a stale "
                                   "pre-drain snapshot"});
        }
      }
    }
  }

  // Durable-queue consistency: every surviving ME fully drained.
  for (platform::Machine* machine : fleet_.world().machines()) {
    migration::MigrationEnclave* me = migration::me_on(*machine);
    if (me == nullptr) continue;
    const std::string& address = machine->address();
    if (me->pending_incoming_count() != 0) {
      findings.push_back({"durable-queue",
                          address + " ME holds " +
                              std::to_string(me->pending_incoming_count()) +
                              " undelivered incoming entries"});
    }
    if (me->transfer_task_count() != 0) {
      findings.push_back({"durable-queue",
                          address + " ME holds " +
                              std::to_string(me->transfer_task_count()) +
                              " unfinished transfer tasks"});
    }
    if (me->retry_done_relays() != 0) {
      findings.push_back({"durable-queue",
                          address + " ME holds " +
                              std::to_string(me->retry_done_relays()) +
                              " unflushed done-relay retries"});
    }
    if (address == source_ && me->outgoing_count() != 0) {
      findings.push_back({"durable-queue",
                          address + " ME retains " +
                              std::to_string(me->outgoing_count()) +
                              " outgoing transfers after the drain"});
    }
  }
  return findings;
}

std::vector<OracleFinding> check_fault_recovery(
    const obs::TraceRecorder& recorder) {
  // Latest recovery-evidence timestamps, computed once: traffic instants
  // and heals, and the latest span start (protocol work happening).
  bool any_instant = false;
  Duration last_instant{};
  for (const obs::TraceInstant& instant : recorder.instants()) {
    if (instant.name != "net.deliver" && instant.name != "net.reply" &&
        instant.name != "chaos.heal") {
      continue;
    }
    if (!any_instant || instant.at > last_instant) last_instant = instant.at;
    any_instant = true;
  }
  bool any_span = false;
  Duration last_span_start{};
  for (const obs::TraceSpan& span : recorder.spans()) {
    if (!any_span || span.start > last_span_start) {
      last_span_start = span.start;
    }
    any_span = true;
  }

  std::vector<OracleFinding> findings;
  for (const obs::TraceInstant& fault : recorder.instants()) {
    if (fault.name != "chaos.fault") continue;
    const bool recovered = (any_instant && last_instant > fault.at) ||
                           (any_span && last_span_start > fault.at);
    if (recovered) continue;
    std::string kind = "?";
    for (const auto& [key, value] : fault.args) {
      if (key == "kind") kind = value;
    }
    findings.push_back(
        {"fault-recovery",
         "silent stall: no traced activity after " + kind + " fault on " +
             fault.lane + " at t=" + std::to_string(to_seconds(fault.at))});
  }
  return findings;
}

}  // namespace sgxmig::chaos

#include "chaos/chaos_executor.h"

#include "migration/protocol.h"
#include "obs/observability.h"

namespace sgxmig::chaos {

namespace {

using migration::MeMsgType;
using migration::MeRequest;

std::string lane_of(const std::string& endpoint) {
  const size_t slash = endpoint.find('/');
  return slash == std::string::npos ? endpoint : endpoint.substr(0, slash);
}

bool is_wire_request_kind(FaultKind kind) {
  return kind == FaultKind::kTamper || kind == FaultKind::kDrop ||
         kind == FaultKind::kChunkCorrupt;
}

bool target_matches(const std::string& target, const std::string& to) {
  if (target.empty()) return true;
  if (target.find('/') != std::string::npos) return to == target;
  return to == target + "/me";
}

bool type_matches(const FaultEvent& event, MeMsgType type) {
  if (event.msg_type != 0) {
    return type == static_cast<MeMsgType>(event.msg_type);
  }
  switch (event.kind) {
    case FaultKind::kTamper:
      // Default tamper set: sealed records, whose corruption fails the
      // channel MAC and is RETRYABLE.  Attestation handshake messages
      // are excluded — corrupting those is classified fatal by design.
      return type == MeMsgType::kLaRecord || type == MeMsgType::kTransfer ||
             type == MeMsgType::kDone || type == MeMsgType::kPrecopyChunk;
    case FaultKind::kChunkCorrupt:
      return type == MeMsgType::kPrecopyChunk;
    default:
      // Drops are plain transport failures — retryable for every type.
      return true;
  }
}

}  // namespace

ChaosExecutor::ChaosExecutor(platform::World& world, ChaosPlan plan)
    : world_(world),
      plan_(std::move(plan)),
      // Private stream, decorrelated from the generator's Rng(seed).
      rng_(plan_.seed ^ 0x9e3779b97f4a7c15ULL),
      firings_(plan_.events.size(), 0) {}

ChaosExecutor::~ChaosExecutor() { disarm(); }

void ChaosExecutor::arm(orchestrator::Orchestrator& orch) {
  disarm();
  armed_orch_ = &orch;
  orch.set_wave_hook([this](uint32_t wave) { on_wave(wave); });
  orch.set_round_hook(
      [this](uint64_t enclave_id, uint32_t round) {
        on_round(enclave_id, round);
      });
  world_.network().set_tamper_hook(
      [this](const std::string& to, Bytes& request) {
        return on_request(to, request);
      });
  world_.network().set_response_tamper_hook(
      [this](const std::string& to, Bytes& response) {
        return on_response(to, response);
      });
  hooks_installed_ = true;

  // Flap windows are declared RELATIVE to arm time (the drain start), so
  // a plan generated before world setup still lands inside the drain.
  const Duration base = world_.clock().now();
  obs::Observability& obs = world_.observability();
  obs::TraceRecorder* rec = obs.enabled() ? &obs.trace : nullptr;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.kind != FaultKind::kEndpointFlap) continue;
    world_.network().schedule_endpoint_flap(event.target, base + event.at,
                                            event.duration);
    ++firings_[i];
    count(event);
    injected_["healed.endpoint-flap"] += 1;
    if (rec != nullptr) {
      rec->instant_at(base + event.at, "chaos.fault", lane_of(event.target),
                      0,
                      {{"kind", fault_kind_name(event.kind)},
                       {"detail", event.target}});
      rec->instant_at(base + event.at + event.duration, "chaos.heal",
                      lane_of(event.target), 0,
                      {{"kind", fault_kind_name(event.kind)},
                       {"detail", event.target}});
    }
  }
}

void ChaosExecutor::disarm() {
  if (armed_orch_ != nullptr) {
    armed_orch_->set_wave_hook(nullptr);
    armed_orch_->set_round_hook(nullptr);
    armed_orch_ = nullptr;
  }
  if (hooks_installed_) {
    world_.network().clear_tamper_hook();
    world_.network().clear_response_tamper_hook();
    for (const FaultEvent& event : plan_.events) {
      if (event.kind == FaultKind::kEndpointFlap) {
        world_.network().clear_endpoint_flaps(event.target);
      }
    }
    hooks_installed_ = false;
  }
}

uint64_t ChaosExecutor::injected_total() const {
  uint64_t total = 0;
  for (const auto& [key, value] : injected_) {
    if (key.rfind("injected.", 0) == 0) total += value;
  }
  return total;
}

std::map<std::string, uint64_t> ChaosExecutor::report_stats() const {
  std::map<std::string, uint64_t> stats = injected_;
  stats["seed"] = plan_.seed;
  stats["injected.total"] = injected_total();
  return stats;
}

void ChaosExecutor::on_wave(uint32_t wave) {
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.at_round != 0 || event.at_wave != wave) continue;
    if (firings_[i] != 0) continue;
    if (event.kind == FaultKind::kMeCrash) {
      firings_[i] = 1;
      fire_crash(event);
    } else if (event.kind == FaultKind::kMeRestart) {
      firings_[i] = 1;
      fire_restart(event);
    }
  }
}

void ChaosExecutor::on_round(uint64_t enclave_id, uint32_t round) {
  (void)enclave_id;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.at_round == 0 || event.at_round != round) continue;
    if (firings_[i] != 0) continue;
    if (event.kind == FaultKind::kMeCrash) {
      firings_[i] = 1;
      fire_crash(event);
    } else if (event.kind == FaultKind::kMeRestart) {
      firings_[i] = 1;
      fire_restart(event);
    }
  }
}

void ChaosExecutor::fire_crash(const FaultEvent& event) {
  platform::Machine* machine = world_.machine(event.target);
  // Crashing an already-dead ME is a no-op (overlapping storm pairs).
  if (machine == nullptr || !machine->has_management_enclave()) return;
  machine->kill_management_enclave();
  count(event);
  record_fault(event.target, event.kind, "wave");
}

void ChaosExecutor::fire_restart(const FaultEvent& event) {
  platform::Machine* machine = world_.machine(event.target);
  if (machine == nullptr || machine->has_management_enclave()) return;
  if (!machine->restart_management_enclave()) return;
  injected_["healed.me-restart"] += 1;
  record_heal(event.target, event.kind, "wave");
}

bool ChaosExecutor::on_request(const std::string& to, Bytes& request) {
  if (to.find("/me") == std::string::npos) return true;
  auto parsed = MeRequest::deserialize(request);
  if (!parsed.ok()) return true;
  const MeMsgType type = parsed.value().type;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    if (!is_wire_request_kind(event.kind)) continue;
    if (!target_matches(event.target, to)) continue;
    if (!type_matches(event, type)) continue;
    if (event.max_firings != 0 && firings_[i] >= event.max_firings) continue;
    if (rng_.uniform_double() >= event.probability) continue;
    // At most one rule fires per message so per-kind accounting stays
    // attributable to exactly one injected fault.
    ++firings_[i];
    count(event);
    injected_[std::string("msg.") + migration::me_msg_type_name(type)] += 1;
    record_fault(lane_of(to), event.kind, migration::me_msg_type_name(type));
    if (event.kind == FaultKind::kDrop) return false;
    if (!request.empty()) {
      request[request.size() - 1] ^= 0x40;  // inside the sealed payload
    }
    return true;
  }
  return true;
}

bool ChaosExecutor::on_response(const std::string& to, Bytes& response) {
  (void)response;
  if (to.find("/me") == std::string::npos) return true;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    if (event.kind != FaultKind::kReplyLoss) continue;
    if (!target_matches(event.target, to)) continue;
    if (event.max_firings != 0 && firings_[i] >= event.max_firings) continue;
    if (rng_.uniform_double() >= event.probability) continue;
    ++firings_[i];
    count(event);
    record_fault(lane_of(to), event.kind, "reply");
    return false;
  }
  return true;
}

void ChaosExecutor::count(const FaultEvent& event) {
  injected_[std::string("injected.") + fault_kind_name(event.kind)] += 1;
}

void ChaosExecutor::record_fault(const std::string& lane, FaultKind kind,
                                 const std::string& detail) {
  obs::Observability& obs = world_.observability();
  if (!obs.enabled()) return;
  obs.trace.instant("chaos.fault", lane, 0,
                    {{"kind", fault_kind_name(kind)}, {"detail", detail}});
}

void ChaosExecutor::record_heal(const std::string& lane, FaultKind kind,
                                const std::string& detail) {
  obs::Observability& obs = world_.observability();
  if (!obs.enabled()) return;
  obs.trace.instant("chaos.heal", lane, 0,
                    {{"kind", fault_kind_name(kind)}, {"detail", detail}});
}

}  // namespace sgxmig::chaos

// ChaosExecutor — compiles a declarative ChaosPlan onto the existing
// fault primitives and keeps per-kind injection accounting:
//
//   kMeCrash / kMeRestart  -> Orchestrator WaveHook / RoundHook
//                             (Machine::kill/restart_management_enclave)
//   kEndpointFlap          -> net::Network::schedule_endpoint_flap
//   kTamper / kDrop /        -> net::Network tamper hook
//   kChunkCorrupt
//   kReplyLoss             -> net::Network response-tamper hook
//
// While armed, every fault that actually fires emits a "chaos.fault"
// trace instant (and every scheduled heal a "chaos.heal") so
// scripts/trace_check.py --chaos and the C++ recovery oracle can verify
// each injected fault is followed by a traced recovery path.  All
// probability draws come from a PRIVATE Rng derived from the plan seed
// and happen whether or not tracing is enabled, so traced and untraced
// storms of the same seed are bit-identical in virtual time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/chaos_plan.h"
#include "orchestrator/orchestrator.h"
#include "platform/world.h"
#include "support/rng.h"

namespace sgxmig::chaos {

class ChaosExecutor {
 public:
  ChaosExecutor(platform::World& world, ChaosPlan plan);
  ~ChaosExecutor();

  ChaosExecutor(const ChaosExecutor&) = delete;
  ChaosExecutor& operator=(const ChaosExecutor&) = delete;

  /// Installs the plan: wave/round hooks on `orch` (owned while armed),
  /// tamper + response hooks on the world's network, and the scheduled
  /// flap windows (their fault/heal instants are recorded immediately,
  /// timestamped at the window edges).  Re-arming first disarms.
  void arm(orchestrator::Orchestrator& orch);

  /// Uninstalls every hook and clears the scheduled flap windows.  Safe
  /// to call repeatedly; the destructor calls it.
  void disarm();

  const ChaosPlan& plan() const { return plan_; }

  /// Raw per-key injection counts ("injected.<kind>" plus per-message
  /// "msg.<me-msg-name>" coverage for wire faults).
  const std::map<std::string, uint64_t>& injected() const {
    return injected_;
  }
  uint64_t injected_total() const;

  /// Chaos block for OrchestratorReport::chaos_stats: the plan seed,
  /// "injected.total", and every raw count.  The harness merges its own
  /// oracle verdicts (e.g. "forks") on top.
  std::map<std::string, uint64_t> report_stats() const;

 private:
  void on_wave(uint32_t wave);
  void on_round(uint64_t enclave_id, uint32_t round);
  /// Tamper-hook body: applies the first matching armed wire rule.
  bool on_request(const std::string& to, Bytes& request);
  bool on_response(const std::string& to, Bytes& response);
  void fire_crash(const FaultEvent& event);
  void fire_restart(const FaultEvent& event);
  void count(const FaultEvent& event);
  void record_fault(const std::string& lane, FaultKind kind,
                    const std::string& detail);
  void record_heal(const std::string& lane, FaultKind kind,
                   const std::string& detail);

  platform::World& world_;
  ChaosPlan plan_;
  Rng rng_;
  orchestrator::Orchestrator* armed_orch_ = nullptr;
  bool hooks_installed_ = false;
  /// Per-event firing counts (max_firings enforcement; crash/restart and
  /// round-triggered events fire at most once).
  std::vector<uint32_t> firings_;
  std::map<std::string, uint64_t> injected_;
};

}  // namespace sgxmig::chaos

// Declarative chaos plans (ISSUE 9 tentpole, paper §III-B/§V-D threat
// model): a ChaosPlan is a typed, serializable schedule of fault events —
// ME crash/restart at wave N, endpoint down-up flaps with durations,
// per-message-type tamper/drop rules with probabilities, response-loss
// ("processed but reply lost") injections, and pre-copy chunk corruption.
// Plans are DATA: the ChaosExecutor (chaos_executor.h) compiles them onto
// the orchestrator's wave/round hooks and the network's tamper/flap
// primitives, and the seeded storm generator samples randomized plans
// from a fault-mix profile with the repo's deterministic RNG — the seed
// is embedded in the plan (and every report built from it) so any failing
// storm replays exactly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/sim_clock.h"
#include "support/status.h"

namespace sgxmig::chaos {

enum class FaultKind : uint8_t {
  /// Kill the Migration Enclave on machine `target` (EPC contents die;
  /// the durable transfer queue survives on disk).  Fires on the wave (or
  /// pre-copy round) hook.
  kMeCrash = 0,
  /// Restart the ME on machine `target` from its installed factory.
  kMeRestart = 1,
  /// Endpoint `target` unreachable during [at, at + duration) — the
  /// network's scheduled flap primitive, composable with tamper rules.
  kEndpointFlap = 2,
  /// Flip a byte inside matching sealed records in flight (channel MAC
  /// failure — the retryable tamper class; corrupted attestation
  /// HANDSHAKES are fatal by design and never targeted by default).
  kTamper = 3,
  /// Drop matching requests on the wire (transport failure, retryable
  /// for every message type).
  kDrop = 4,
  /// Drop matching REPLIES after the handler ran — the "processed but
  /// reply lost" failure mode the durable queue must survive (§V-D).
  kReplyLoss = 5,
  /// Corrupt pre-copy chunk records specifically (round re-ship path).
  kChunkCorrupt = 6,
};

/// Stable name of a fault kind ("me-crash", "endpoint-flap", ...), used
/// in plan JSON, chaos stats keys, and trace instant args.
const char* fault_kind_name(FaultKind kind);

/// Inverse of fault_kind_name; kInvalidParameter for unknown names.
Result<FaultKind> fault_kind_from_name(std::string_view name);

/// One scheduled or probabilistic fault.  Which fields are meaningful
/// depends on the kind:
///   kMeCrash / kMeRestart: target (machine address) + at_wave, or
///     at_round for pre-copy-round-triggered firing;
///   kEndpointFlap:         target (endpoint) + at (offset from the
///     executor's arm instant) + duration;
///   kTamper/kDrop/kReplyLoss/kChunkCorrupt: target ("" = any /me
///     endpoint), msg_type (MeMsgType value; 0 = the kind's default
///     match set), probability, max_firings (0 = unlimited).
struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  std::string target;
  uint32_t at_wave = 0;
  uint32_t at_round = 0;  // 0 = wave-triggered (crash/restart kinds)
  Duration at{};
  Duration duration{};
  uint8_t msg_type = 0;
  double probability = 1.0;
  uint32_t max_firings = 0;
};

/// A full storm: the generator seed plus the event schedule.  Round-trips
/// through JSON so failing storms can be archived and replayed verbatim.
struct ChaosPlan {
  uint64_t seed = 0;
  std::vector<FaultEvent> events;

  std::string to_json() const;
  static Result<ChaosPlan> from_json(std::string_view text);
};

/// Fault-mix profile the storm generator samples from.  All windows are
/// virtual time; flap windows stay early in the drain so every injected
/// fault has drain traffic after it (the recovery oracle's horizon).
struct StormProfile {
  std::string name = "mixed";
  /// ME crash+restart pairs on the SOURCE machine (the drain's hot spot).
  uint32_t me_crash_restart_pairs = 1;
  /// Crash waves are drawn from [1, crash_wave_span].
  uint32_t crash_wave_span = 4;
  /// The paired restart fires this many waves after its crash.
  uint32_t revive_after_waves = 3;
  /// Destination-endpoint flaps drawn across the destinations.
  uint32_t endpoint_flaps = 2;
  /// Flap start instants are drawn from [0, flap_window_seconds).
  double flap_window_seconds = 1.5;
  double flap_min_seconds = 0.05;
  double flap_max_seconds = 0.35;
  // Per-message firing probabilities of the wire-fault rules (0 = rule
  // not generated).
  double tamper_probability = 0.08;
  double drop_probability = 0.05;
  double reply_loss_probability = 0.06;
  double chunk_corrupt_probability = 0.05;
  /// Firing budget per generated wire rule (FaultEvent::max_firings): a
  /// storm FRONT that passes, not permanent weather.  Unbounded rules
  /// (0) can legitimately starve convergence — retries are hit at the
  /// same rate as first attempts forever — which is a different
  /// experiment than the convergence gate runs.
  uint32_t wire_rule_max_firings = 20;
};

/// Canned profiles for benches/CI: a balanced mix, a wire-fault-heavy
/// storm (no crashes), and a crash-heavy storm (little wire noise).
StormProfile mixed_profile();
StormProfile wire_heavy_profile();
StormProfile crash_heavy_profile();

/// Samples a randomized ChaosPlan from `profile` with a PRIVATE
/// deterministic Rng(seed): same seed + profile + topology => the same
/// plan, independent of any other RNG use in the world.
ChaosPlan generate_storm(uint64_t seed, const StormProfile& profile,
                         const std::string& source_machine,
                         const std::vector<std::string>& destinations);

}  // namespace sgxmig::chaos

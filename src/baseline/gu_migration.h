// Simplified reimplementation of Gu et al. [2] — the prior state of the
// art this paper improves on (source unavailable; reimplemented from the
// paper's description, see DESIGN.md §2).
//
// Gu et al. migrate an enclave's DATA MEMORY: the source library performs
// remote attestation with an identical enclave on the destination,
// re-encrypts the memory image under the agreed key, and ships it out.
// After migration the source enclave is held in a perpetual spin lock via
// a "migrated" flag.  The paper's §III-B analysis turns on one detail the
// original leaves open — whether that flag is persisted:
//   * kVolatile:  flag lives in enclave memory only.  Restarting the
//     application clears it -> the fork attack of §III-B succeeds.
//   * kPersisted: flag sealed to disk.  Fork blocked — but the enclave can
//     NEVER migrate back to this machine (indistinguishable from a fork),
//     a restriction the Migration Enclave design removes.
// Neither variant migrates sealed data or monotonic counters.
#pragma once

#include <functional>

#include "sgx/enclave.h"

namespace sgxmig::baseline {

class GuMigrationLibrary {
 public:
  enum class FlagMode { kVolatile, kPersisted };

  GuMigrationLibrary(sgx::Enclave& host, FlagMode mode);

  using PersistCallback = std::function<void(ByteView sealed_flag)>;
  void set_persist_callback(PersistCallback callback) {
    persist_callback_ = std::move(callback);
  }

  /// Restores the library state on enclave start.  In kPersisted mode the
  /// application passes the stored flag blob (empty on first start); a
  /// restored "migrated" flag spin-locks the enclave.
  Status restore(ByteView sealed_flag_blob);

  /// True once this instance (or, in kPersisted mode, this machine's
  /// persisted state) has been migrated away: all work must stop.
  bool spin_locked() const { return migrated_; }

  /// Runs the whole migration: mutual remote attestation between the two
  /// enclave instances, identity check, re-encrypted memory transfer.
  /// On success the source is spin-locked (and the flag persisted in
  /// kPersisted mode) and `received` holds the memory image on the
  /// destination side.
  static Status migrate_memory(GuMigrationLibrary& source, ByteView memory,
                               GuMigrationLibrary& destination,
                               Bytes* received);

 private:
  Status persist_flag();

  sgx::Enclave& host_;
  FlagMode mode_;
  bool migrated_ = false;
  PersistCallback persist_callback_;
};

}  // namespace sgxmig::baseline

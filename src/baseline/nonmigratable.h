// The non-migratable baseline enclave: standard SGX sealing and monotonic
// counters, no migration library.  This is the "baseline implementation"
// every Fig. 3 / Fig. 4 comparison runs against, and the enclave whose
// persistent state is simply LOST on migration (the motivating failure).
#pragma once

#include <map>

#include "sgx/enclave.h"

namespace sgxmig::baseline {

class BaselineEnclave : public sgx::Enclave {
 public:
  BaselineEnclave(sgx::PlatformIface& platform,
                  std::shared_ptr<const sgx::EnclaveImage> image)
      : Enclave(platform, std::move(image)) {}

  // Standard sealing (sgx_seal_data / sgx_unseal_data).
  Result<Bytes> ecall_seal(ByteView aad, ByteView plaintext) {
    auto scope = enter_ecall();
    return seal(sgx::KeyPolicy::kMrEnclave, aad, plaintext);
  }

  Result<sgx::UnsealedData> ecall_unseal(ByteView blob) {
    auto scope = enter_ecall();
    return unseal(blob);
  }

  // Standard monotonic counters, addressed by SGX UUID (the application
  // must store the UUID itself — exactly the usage the Migration Library
  // replaces with its internal counter ids).
  Result<sgx::CreatedCounter> ecall_create_counter() {
    auto scope = enter_ecall();
    return counter_create();
  }

  Result<uint32_t> ecall_read_counter(const sgx::CounterUuid& uuid) {
    auto scope = enter_ecall();
    return counter_read(uuid);
  }

  Result<uint32_t> ecall_increment_counter(const sgx::CounterUuid& uuid) {
    auto scope = enter_ecall();
    return counter_increment(uuid);
  }

  Status ecall_destroy_counter(const sgx::CounterUuid& uuid) {
    auto scope = enter_ecall();
    return counter_destroy(uuid);
  }
};

}  // namespace sgxmig::baseline

// The rejected counter-migration design from §VI-B: "transfer the current
// counter value to the destination enclave and have the latter create a
// new counter and increment it until the counter value reaches the
// transferred value."  Cost is LINEAR in the counter value — and hardware
// increments are ~160 ms each — versus the offset scheme's constant time.
// bench/ablation_counter_offset.cpp reproduces this comparison.
#pragma once

#include "baseline/nonmigratable.h"
#include "sgx/pse.h"
#include "support/status.h"

namespace sgxmig::baseline {

/// Recreates a counter with value `target_value` on the destination by
/// brute-force incrementing.  Returns the new counter's UUID.
inline Result<sgx::CounterUuid> naive_migrate_counter(
    BaselineEnclave& destination, uint32_t target_value) {
  auto created = destination.ecall_create_counter();
  if (!created.ok()) return created.status();
  for (uint32_t v = 0; v < target_value; ++v) {
    auto incremented =
        destination.ecall_increment_counter(created.value().uuid);
    if (!incremented.ok()) return incremented.status();
  }
  return created.value().uuid;
}

}  // namespace sgxmig::baseline

#include "baseline/gu_migration.h"

#include "net/channel.h"
#include "sgx/remote_attestation.h"
#include "support/serde.h"

namespace sgxmig::baseline {

namespace {
constexpr char kFlagAad[] = "GU-MIGRATED-FLAG";
}  // namespace

GuMigrationLibrary::GuMigrationLibrary(sgx::Enclave& host, FlagMode mode)
    : host_(host), mode_(mode) {}

Status GuMigrationLibrary::restore(ByteView sealed_flag_blob) {
  if (mode_ == FlagMode::kVolatile || sealed_flag_blob.empty()) {
    // Nothing persisted: a fresh instance starts unlocked — this is
    // exactly the gap the §III-B fork attack drives through.
    migrated_ = false;
    return Status::kOk;
  }
  auto unsealed = host_.unseal(sealed_flag_blob);
  if (!unsealed.ok()) return unsealed.status();
  if (to_string(unsealed.value().aad) != kFlagAad ||
      unsealed.value().plaintext.size() != 1) {
    return Status::kTampered;
  }
  migrated_ = unsealed.value().plaintext[0] != 0;
  return Status::kOk;
}

Status GuMigrationLibrary::persist_flag() {
  const Bytes flag = {static_cast<uint8_t>(migrated_ ? 1 : 0)};
  auto sealed =
      host_.seal(sgx::KeyPolicy::kMrEnclave,
                 to_bytes(std::string_view(kFlagAad)), flag);
  if (!sealed.ok()) return sealed.status();
  if (persist_callback_) {
    host_.platform().charge(host_.platform().costs().ocall);
    persist_callback_(sealed.value());
  }
  return Status::kOk;
}

Status GuMigrationLibrary::migrate_memory(GuMigrationLibrary& source,
                                          ByteView memory,
                                          GuMigrationLibrary& destination,
                                          Bytes* received) {
  if (source.migrated_) return Status::kMigrationFrozen;
  if (destination.migrated_) return Status::kInvalidState;

  // Mutual remote attestation directly between the two enclave instances
  // (Gu et al. have no Migration Enclave intermediary).
  sgx::RaSession initiator(source.host_.platform(), source.host_.identity(),
                           sgx::RaSession::Role::kInitiator);
  sgx::RaSession responder(destination.host_.platform(),
                           destination.host_.identity(),
                           sgx::RaSession::Role::kResponder);
  auto msg2 = responder.handle_msg1(initiator.create_msg1());
  if (!msg2.ok()) return msg2.status();
  auto msg3 = initiator.handle_msg2(msg2.value());
  if (!msg3.ok()) return msg3.status();
  const Status ra = responder.handle_msg3(msg3.value());
  if (ra != Status::kOk) return ra;
  // Only an identical enclave may receive the memory image.
  if (!(initiator.peer_identity().mr_enclave ==
        source.host_.identity().mr_enclave)) {
    return Status::kIdentityMismatch;
  }

  // Re-encrypt the memory pages under the agreed key and "send" them.
  net::SecureChannel tx(initiator.session_key(),
                        net::SecureChannel::Role::kInitiator);
  net::SecureChannel rx(responder.session_key(),
                        net::SecureChannel::Role::kResponder);
  source.host_.charge_gcm(memory.size());
  const Bytes wire = tx.seal_record(memory);
  source.host_.platform().charge(
      source.host_.platform().costs().net_latency +
      source.host_.platform().costs().transfer_time(wire.size()));
  auto plain = rx.open_record(wire);
  if (!plain.ok()) return plain.status();
  destination.host_.charge_gcm(plain.value().size());
  if (received != nullptr) *received = std::move(plain).value();

  // Hold the source in its spin lock.
  source.migrated_ = true;
  if (source.mode_ == FlagMode::kPersisted) {
    const Status status = source.persist_flag();
    if (status != Status::kOk) return status;
  }
  return Status::kOk;
}

}  // namespace sgxmig::baseline

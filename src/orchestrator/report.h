// Progress/event log and final report of one orchestrated plan run.
//
// Every state transition of every migration task lands in the event log
// (virtual timestamped, append-only); the report aggregates per-migration
// latency and retry counts for the bench layer and serializes to JSON so
// CI can archive the perf trajectory (BENCH_fleet_drain.json).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "migration/migration_library.h"
#include "orchestrator/plan.h"
#include "support/sim_clock.h"
#include "support/status.h"

namespace sgxmig::orchestrator {

enum class EventKind : uint8_t {
  kPlanned = 0,    // task created from the plan
  kAdmitted,       // passed the concurrency caps; destination selected
  kStartOk,        // source-side protocol done; data pending at destination
  kStartFailed,    // migration_start failed (detail = class + step)
  kBackoff,        // retry scheduled (detail = retry time)
  kRestored,       // destination instance fetched + confirmed the data
  kDone,           // registry updated; migration complete
  kFailed,         // terminal failure (fatal class or attempts exhausted)
};

const char* event_kind_name(EventKind kind);

struct OrchestratorEvent {
  Duration at{};
  uint64_t enclave_id = 0;
  EventKind kind = EventKind::kPlanned;
  std::string detail;
};

/// Outcome of one per-enclave migration task.
struct MigrationRecord {
  uint64_t enclave_id = 0;
  std::string name;
  std::string source;
  std::string destination;  // final destination (last attempted on failure)
  uint32_t attempts = 0;    // migration_start invocations
  bool success = false;
  Status final_status = Status::kOk;
  migration::MigrationFailureClass failure_class =
      migration::MigrationFailureClass::kNone;
  std::string failure_message;
  Duration planned_at{};
  Duration admitted_at{};
  Duration finished_at{};
  /// Virtual time the enclave spent frozen on the source (freeze ->
  /// transfer accepted); the pre-copy observable.  Zero on failure.
  Duration freeze_window{};
  /// Freeze-aware: live wait between the reserve and the slot going live
  /// (the part of the queue depth the freeze window no longer absorbs).
  Duration enqueue_wait{};
  /// Pre-copy rounds shipped before the freeze (0 = full snapshot).
  uint32_t precopy_rounds = 0;
  /// Serialized migration payload bytes (all rounds + final delta, or the
  /// one full snapshot).
  uint64_t transfer_bytes = 0;

  /// Queue + transfer + restore, in virtual time.
  Duration latency() const { return finished_at - planned_at; }
};

struct OrchestratorReport {
  PlanKind plan = PlanKind::kDrainMachine;
  std::vector<MigrationRecord> migrations;
  std::vector<OrchestratorEvent> events;
  /// Oldest events dropped by the orchestrator's event-log ring
  /// (OrchestratorOptions::event_log_limit).  Serialized only when
  /// non-zero, so unbounded runs keep their exact historical JSON.
  uint64_t events_dropped = 0;
  Duration started_at{};
  Duration finished_at{};
  /// Peak number of simultaneously in-flight migrations, total and per
  /// source machine (the enforced caps' observable).
  uint32_t peak_inflight_total = 0;
  std::map<std::string, uint32_t> peak_inflight_per_machine;
  /// Per-enclave freeze budget copied from the options (zero =
  /// unenforced); freeze_budget_violations() counts against it.
  Duration freeze_budget{};
  /// Pre-rendered JSON object from obs::MetricsRegistry::to_json(); when
  /// non-empty, to_json() merges it under the "metrics" key so BENCH_*
  /// files carry the run's counters/gauges/histograms.
  std::string metrics_json;
  /// Chaos accounting (filled by chaos::ChaosExecutor::report_stats plus
  /// the harness's oracle verdicts — e.g. "seed", "injected.total",
  /// per-kind "injected.<kind>" counts, "forks").  Serialized under the
  /// "chaos" key when non-empty so BENCH_chaos.json rows and the
  /// trace_check.py --chaos mode can cross-check trace-visible faults
  /// against what the executor claims to have injected.
  std::map<std::string, uint64_t> chaos_stats;

  Duration wall() const { return finished_at - started_at; }
  size_t succeeded() const;
  size_t failed() const;
  /// Extra migration_start invocations beyond the first per task.
  uint32_t total_retries() const;
  double mean_latency_seconds() const;
  double max_latency_seconds() const;
  /// Freeze-window aggregates over SUCCESSFUL migrations (the fleet-wide
  /// service-interruption cost a drain inflicts).
  double mean_freeze_window_seconds() const;
  double max_freeze_window_seconds() const;
  /// Freeze-window percentiles over successful migrations (p in [0,100]);
  /// the tail the freeze budget is written against.
  double freeze_window_percentile_seconds(double p) const;
  /// Live reserve->slot-live wait percentiles over successful migrations
  /// (zero everywhere when not running freeze-aware).
  double enqueue_wait_percentile_seconds(double p) const;
  /// Successful migrations whose freeze window exceeded freeze_budget
  /// (always 0 when the budget is unset).
  size_t freeze_budget_violations() const;

  /// Machine-readable dump ({"plan":..., "migrations":[...], ...});
  /// events included only when `include_events`.
  std::string to_json(bool include_events = false) const;
};

}  // namespace sgxmig::orchestrator

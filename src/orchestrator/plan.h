// Fleet migration plans — the datacenter scenarios a single
// migration_start cannot express.
//
//   * drain    — evacuate every enclave off one machine (maintenance,
//                decommission).
//   * evacuate — evacuate every enclave out of a region (regulatory move,
//                regional failure); no destination inside the region.
//   * rebalance — move enclaves off machines loaded above the fleet
//                average until no machine exceeds ceil(total/machines).
//   * move     — targeted migrations with fixed destinations.
//
// A Plan is pure data; the Orchestrator expands it into per-enclave
// migration tasks against the current FleetRegistry contents.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sgxmig::orchestrator {

enum class PlanKind : uint8_t {
  kDrainMachine = 0,
  kEvacuateRegion = 1,
  kRebalance = 2,
  kTargetedMove = 3,
};

const char* plan_kind_name(PlanKind kind);

struct TargetedMove {
  uint64_t enclave_id = 0;
  std::string destination;
};

struct Plan {
  PlanKind kind = PlanKind::kDrainMachine;
  std::string machine;               // kDrainMachine
  std::string region;                // kEvacuateRegion
  std::vector<TargetedMove> moves;   // kTargetedMove

  static Plan drain(std::string machine_address) {
    Plan plan;
    plan.kind = PlanKind::kDrainMachine;
    plan.machine = std::move(machine_address);
    return plan;
  }

  static Plan evacuate(std::string region_name) {
    Plan plan;
    plan.kind = PlanKind::kEvacuateRegion;
    plan.region = std::move(region_name);
    return plan;
  }

  static Plan rebalance() {
    Plan plan;
    plan.kind = PlanKind::kRebalance;
    return plan;
  }

  static Plan move(std::vector<TargetedMove> moves) {
    Plan plan;
    plan.kind = PlanKind::kTargetedMove;
    plan.moves = std::move(moves);
    return plan;
  }

  static Plan move_one(uint64_t enclave_id, std::string destination) {
    return move({TargetedMove{enclave_id, std::move(destination)}});
  }
};

}  // namespace sgxmig::orchestrator

#include "orchestrator/fleet_registry.h"

namespace sgxmig::orchestrator {

namespace {

void install_persist_callback(migration::MigratableEnclave& enclave,
                              platform::Machine& machine,
                              const std::string& key) {
  enclave.set_persist_callback([&machine, key](ByteView sealed_state) {
    machine.storage().put(key, sealed_state);
  });
}

}  // namespace

FleetRegistry::~FleetRegistry() {
  for (auto& [id, record] : records_) {
    if (auto* m = world_.machine(record.machine)) m->note_enclave_detached();
  }
}

Result<uint64_t> FleetRegistry::launch(
    const std::string& machine_address, const std::string& name,
    std::shared_ptr<const sgx::EnclaveImage> image,
    const LaunchOptions& options) {
  platform::Machine* machine = world_.machine(machine_address);
  if (machine == nullptr || image == nullptr) {
    return Status::kInvalidParameter;
  }
  for (const auto& [id, record] : records_) {
    if (record.name == name) return Status::kAlreadyExists;
  }

  auto enclave = std::make_unique<migration::MigratableEnclave>(
      *machine, image, options.persistence, options.group_commit,
      options.live_transfer);
  install_persist_callback(*enclave, *machine, storage_key(name));
  const Status init = enclave->ecall_migration_init(
      ByteView(), migration::InitState::kNew, machine_address);
  if (init != Status::kOk) return init;
  machine->storage().put(storage_key(name), enclave->sealed_state());

  EnclaveRecord record;
  record.id = next_id_++;
  record.name = name;
  record.image = std::move(image);
  record.machine = machine_address;
  record.options = options;
  record.enclave = std::move(enclave);
  machine->note_enclave_attached();
  const uint64_t id = record.id;
  records_.emplace(id, std::move(record));
  return id;
}

Status FleetRegistry::complete_move(uint64_t id,
                                    const std::string& destination_address) {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::kInvalidParameter;
  EnclaveRecord& record = it->second;
  platform::Machine* destination = world_.machine(destination_address);
  if (destination == nullptr) return Status::kInvalidParameter;

  // Bring the destination instance up BEFORE retiring the frozen source
  // object: if fetching the incoming data fails (destination ME crashed
  // and lost its pending copy, network partition, ...), nothing is lost —
  // the source ME still retains the data (§V-D) and the caller decides
  // what to do next.
  auto next = std::make_unique<migration::MigratableEnclave>(
      *destination, record.image, record.options.persistence,
      record.options.group_commit, record.options.live_transfer);
  install_persist_callback(*next, *destination, storage_key(record.name));
  const Status init = next->ecall_migration_init(
      ByteView(), migration::InitState::kMigrate, destination_address);
  bool salvaged = false;
  if (init == Status::kNoPendingMigration) {
    // Confirm-ack loss salvage (§V-D): a previous destination instance
    // may have fetched, applied (apply_incoming force-persists the
    // restored state into this machine's storage), and CONFIRMED — which
    // erased the ME's pending entry — and then been discarded because
    // every ConfirmAck reply was lost.  If that durable blob exists,
    // restore from it instead of failing the migration.  Safe against
    // stale blobs from an EARLIER visit to this machine: migrating away
    // set their freeze flag / bumped the epoch guard, so kRestore refuses
    // them and the original error stands.
    auto persisted = destination->storage().get(storage_key(record.name));
    if (persisted.ok()) {
      auto salvage = std::make_unique<migration::MigratableEnclave>(
          *destination, record.image, record.options.persistence,
          record.options.group_commit, record.options.live_transfer);
      install_persist_callback(*salvage, *destination,
                               storage_key(record.name));
      if (salvage->ecall_migration_init(persisted.value(),
                                        migration::InitState::kRestore,
                                        destination_address) == Status::kOk) {
        next = std::move(salvage);
        salvaged = true;
      }
    }
  }
  if (init != Status::kOk && !salvaged) return init;
  destination->storage().put(storage_key(record.name), next->sealed_state());

  if (auto* source = world_.machine(record.machine)) {
    source->note_enclave_detached();
  }
  destination->note_enclave_attached();
  record.enclave = std::move(next);  // destroys the frozen source instance
  record.machine = destination_address;
  ++record.completed_migrations;
  if (completion_callback_) completion_callback_(record);
  return Status::kOk;
}

Status FleetRegistry::retire(uint64_t id) {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::kInvalidParameter;
  if (auto* m = world_.machine(it->second.machine)) m->note_enclave_detached();
  records_.erase(it);
  return Status::kOk;
}

EnclaveRecord* FleetRegistry::find(uint64_t id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

const EnclaveRecord* FleetRegistry::find(uint64_t id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

migration::MigratableEnclave* FleetRegistry::enclave(uint64_t id) {
  EnclaveRecord* record = find(id);
  return record == nullptr ? nullptr : record->enclave.get();
}

std::vector<uint64_t> FleetRegistry::all_ids() const {
  std::vector<uint64_t> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(id);
  return out;
}

std::vector<uint64_t> FleetRegistry::ids_on(
    const std::string& machine_address) const {
  std::vector<uint64_t> out;
  for (const auto& [id, record] : records_) {
    if (record.machine == machine_address) out.push_back(id);
  }
  return out;
}

std::vector<uint64_t> FleetRegistry::ids_in_region(
    const std::string& region) const {
  std::vector<uint64_t> out;
  for (const auto& [id, record] : records_) {
    platform::Machine* m = world_.machine(record.machine);
    if (m != nullptr && m->region() == region) out.push_back(id);
  }
  return out;
}

size_t FleetRegistry::count_on(const std::string& machine_address) const {
  size_t n = 0;
  for (const auto& [id, record] : records_) {
    if (record.machine == machine_address) ++n;
  }
  return n;
}

bool FleetRegistry::hosts_image(const std::string& machine_address,
                                const sgx::Measurement& mr) const {
  for (const auto& [id, record] : records_) {
    if (record.machine == machine_address &&
        record.image->mr_enclave() == mr) {
      return true;
    }
  }
  return false;
}

}  // namespace sgxmig::orchestrator

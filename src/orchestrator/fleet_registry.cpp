#include "orchestrator/fleet_registry.h"

namespace sgxmig::orchestrator {

namespace {

void install_persist_callback(migration::MigratableEnclave& enclave,
                              platform::Machine& machine,
                              const std::string& key) {
  enclave.set_persist_callback([&machine, key](ByteView sealed_state) {
    machine.storage().put(key, sealed_state);
  });
}

/// Changelog entries kept before compaction.  Large enough that a
/// scheduler syncing once per placement decision never falls behind;
/// small enough that an idle subscriber cannot make the log grow with
/// the drain length.
constexpr size_t kChangelogCompactLimit = 4096;

}  // namespace

FleetRegistry::~FleetRegistry() {
  for (auto& [id, record] : records_) {
    if (auto* m = world_.machine(record.machine)) m->note_enclave_detached();
  }
}

Result<uint64_t> FleetRegistry::launch(
    const std::string& machine_address, const std::string& name,
    std::shared_ptr<const sgx::EnclaveImage> image,
    const LaunchOptions& options) {
  platform::Machine* machine = world_.machine(machine_address);
  if (machine == nullptr || image == nullptr) {
    return Status::kInvalidParameter;
  }
  if (names_.count(name) != 0) return Status::kAlreadyExists;

  auto enclave = std::make_unique<migration::MigratableEnclave>(
      *machine, image, options.persistence, options.group_commit,
      options.live_transfer);
  install_persist_callback(*enclave, *machine, storage_key(name));
  const Status init = enclave->ecall_migration_init(
      ByteView(), migration::InitState::kNew, machine_address);
  if (init != Status::kOk) return init;
  machine->storage().put(storage_key(name), enclave->sealed_state());

  EnclaveRecord record;
  record.id = next_id_++;
  record.name = name;
  record.image = std::move(image);
  record.machine = machine_address;
  record.options = options;
  record.enclave = std::move(enclave);
  machine->note_enclave_attached();
  const uint64_t id = record.id;
  auto [it, inserted] = records_.emplace(id, std::move(record));
  (void)inserted;
  index_insert(it->second);
  return id;
}

Status FleetRegistry::complete_move(uint64_t id,
                                    const std::string& destination_address) {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::kInvalidParameter;
  EnclaveRecord& record = it->second;
  platform::Machine* destination = world_.machine(destination_address);
  if (destination == nullptr) return Status::kInvalidParameter;

  // Bring the destination instance up BEFORE retiring the frozen source
  // object: if fetching the incoming data fails (destination ME crashed
  // and lost its pending copy, network partition, ...), nothing is lost —
  // the source ME still retains the data (§V-D) and the caller decides
  // what to do next.
  auto next = std::make_unique<migration::MigratableEnclave>(
      *destination, record.image, record.options.persistence,
      record.options.group_commit, record.options.live_transfer);
  install_persist_callback(*next, *destination, storage_key(record.name));
  const Status init = next->ecall_migration_init(
      ByteView(), migration::InitState::kMigrate, destination_address);
  bool salvaged = false;
  if (init == Status::kNoPendingMigration) {
    // Confirm-ack loss salvage (§V-D): a previous destination instance
    // may have fetched, applied (apply_incoming force-persists the
    // restored state into this machine's storage), and CONFIRMED — which
    // erased the ME's pending entry — and then been discarded because
    // every ConfirmAck reply was lost.  If that durable blob exists,
    // restore from it instead of failing the migration.  Safe against
    // stale blobs from an EARLIER visit to this machine: migrating away
    // set their freeze flag / bumped the epoch guard, so kRestore refuses
    // them and the original error stands.
    auto persisted = destination->storage().get(storage_key(record.name));
    if (persisted.ok()) {
      auto salvage = std::make_unique<migration::MigratableEnclave>(
          *destination, record.image, record.options.persistence,
          record.options.group_commit, record.options.live_transfer);
      install_persist_callback(*salvage, *destination,
                               storage_key(record.name));
      if (salvage->ecall_migration_init(persisted.value(),
                                        migration::InitState::kRestore,
                                        destination_address) == Status::kOk) {
        next = std::move(salvage);
        salvaged = true;
      }
    }
  }
  if (init != Status::kOk && !salvaged) return init;
  destination->storage().put(storage_key(record.name), next->sealed_state());

  if (auto* source = world_.machine(record.machine)) {
    source->note_enclave_detached();
  }
  destination->note_enclave_attached();
  index_erase(record);  // still indexed under the source machine
  record.enclave = std::move(next);  // destroys the frozen source instance
  record.machine = destination_address;
  ++record.completed_migrations;
  index_insert(record);
  if (completion_callback_) completion_callback_(record);
  return Status::kOk;
}

Status FleetRegistry::retire(uint64_t id) {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::kInvalidParameter;
  if (auto* m = world_.machine(it->second.machine)) m->note_enclave_detached();
  index_erase(it->second);
  records_.erase(it);
  return Status::kOk;
}

EnclaveRecord* FleetRegistry::find(uint64_t id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

const EnclaveRecord* FleetRegistry::find(uint64_t id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

migration::MigratableEnclave* FleetRegistry::enclave(uint64_t id) {
  EnclaveRecord* record = find(id);
  return record == nullptr ? nullptr : record->enclave.get();
}

std::vector<uint64_t> FleetRegistry::all_ids() const {
  std::vector<uint64_t> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(id);
  return out;
}

std::vector<uint64_t> FleetRegistry::ids_on(
    const std::string& machine_address) const {
  auto it = ids_by_machine_.find(machine_address);
  if (it == ids_by_machine_.end()) return {};
  return std::vector<uint64_t>(it->second.begin(), it->second.end());
}

std::vector<uint64_t> FleetRegistry::ids_in_region(
    const std::string& region) const {
  auto it = ids_by_region_.find(region);
  if (it == ids_by_region_.end()) return {};
  return std::vector<uint64_t>(it->second.begin(), it->second.end());
}

size_t FleetRegistry::count_on(const std::string& machine_address) const {
  auto it = ids_by_machine_.find(machine_address);
  return it == ids_by_machine_.end() ? 0 : it->second.size();
}

bool FleetRegistry::hosts_image(const std::string& machine_address,
                                const sgx::Measurement& mr) const {
  auto it = images_by_machine_.find(machine_address);
  if (it == images_by_machine_.end()) return false;
  auto image_it = it->second.find(mr);
  return image_it != it->second.end() && image_it->second > 0;
}

bool FleetRegistry::replay_load_changes(
    uint64_t& cursor,
    const std::function<void(const std::string&, uint32_t)>& fn) const {
  if (cursor < changelog_base_) return false;  // compacted past the cursor
  for (size_t i = cursor - changelog_base_; i < load_changelog_.size(); ++i) {
    fn(load_changelog_[i].first, load_changelog_[i].second);
  }
  cursor = load_version();
  return true;
}

size_t FleetRegistry::index_bytes() const {
  size_t bytes = names_.size() * sizeof(std::string);
  for (const auto& [machine, ids] : ids_by_machine_) {
    bytes += machine.size() + ids.size() * sizeof(uint64_t);
  }
  for (const auto& [region, ids] : ids_by_region_) {
    bytes += region.size() + ids.size() * sizeof(uint64_t);
  }
  for (const auto& [machine, images] : images_by_machine_) {
    bytes += machine.size() +
             images.size() * (sizeof(sgx::Measurement) + sizeof(uint32_t));
  }
  bytes += load_changelog_.capacity() *
           sizeof(std::pair<std::string, uint32_t>);
  return bytes;
}

void FleetRegistry::index_insert(const EnclaveRecord& record) {
  names_.insert(record.name);
  ids_by_machine_[record.machine].insert(record.id);
  if (const platform::Machine* m = world_.machine(record.machine)) {
    ids_by_region_[m->region()].insert(record.id);
  }
  if (record.image != nullptr) {
    ++images_by_machine_[record.machine][record.image->mr_enclave()];
  }
  record_load_change(record.machine);
}

void FleetRegistry::index_erase(const EnclaveRecord& record) {
  names_.erase(record.name);
  auto machine_it = ids_by_machine_.find(record.machine);
  if (machine_it != ids_by_machine_.end()) {
    machine_it->second.erase(record.id);
    if (machine_it->second.empty()) ids_by_machine_.erase(machine_it);
  }
  if (const platform::Machine* m = world_.machine(record.machine)) {
    auto region_it = ids_by_region_.find(m->region());
    if (region_it != ids_by_region_.end()) {
      region_it->second.erase(record.id);
      if (region_it->second.empty()) ids_by_region_.erase(region_it);
    }
  }
  if (record.image != nullptr) {
    auto images_it = images_by_machine_.find(record.machine);
    if (images_it != images_by_machine_.end()) {
      auto image_it = images_it->second.find(record.image->mr_enclave());
      if (image_it != images_it->second.end() && --image_it->second == 0) {
        images_it->second.erase(image_it);
      }
      if (images_it->second.empty()) images_by_machine_.erase(images_it);
    }
  }
  record_load_change(record.machine);
}

void FleetRegistry::record_load_change(const std::string& machine_address) {
  load_changelog_.emplace_back(
      machine_address, static_cast<uint32_t>(count_on(machine_address)));
  if (load_changelog_.size() > kChangelogCompactLimit) {
    changelog_base_ += load_changelog_.size();
    load_changelog_.clear();
  }
}

}  // namespace sgxmig::orchestrator

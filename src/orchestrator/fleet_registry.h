// FleetRegistry — the orchestrator's view of every migratable enclave in
// the world.
//
// The paper's protocol moves ONE enclave between two Migration Enclaves;
// a data center runs thousands.  The registry owns the live
// MigratableEnclave instances, remembers where each one runs (and with
// which image, persistence engine, and migration policy), keeps the
// per-machine load gauges on platform::Machine in sync, and provides the
// placement queries (count per machine, image anti-affinity) the
// Scheduler's policies rank destinations with.
//
// Placement changes flow through exactly two mutators so the registry can
// never disagree with reality: launch() (a fresh enclave on a machine)
// and complete_move() (the destination half of a migration whose source
// half — migration_start — the Orchestrator already drove).  The
// completion callback installed via set_completion_callback is how upper
// layers (event logs, benches) observe registry-confirmed moves.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "migration/migratable_enclave.h"
#include "platform/world.h"

namespace sgxmig::orchestrator {

/// Per-enclave launch configuration (everything complete_move() needs to
/// re-instantiate the enclave on the destination machine).
struct LaunchOptions {
  migration::PersistenceMode persistence = migration::PersistenceMode::kSync;
  migration::GroupCommitOptions group_commit = {};
  /// Travels with every migrate request for this enclave (§X policies).
  migration::MigrationPolicy policy = {};
  /// Equip the enclave's Migration Library with the epoch guard so the
  /// orchestrator can move it via iterative pre-copy (TransferMode).
  bool live_transfer = false;
};

struct EnclaveRecord {
  uint64_t id = 0;
  std::string name;  // unique; also the untrusted-storage key ("<name>.ml")
  std::shared_ptr<const sgx::EnclaveImage> image;
  std::string machine;  // current placement (machine address)
  LaunchOptions options;
  uint32_t completed_migrations = 0;
  std::unique_ptr<migration::MigratableEnclave> enclave;
};

class FleetRegistry {
 public:
  explicit FleetRegistry(platform::World& world) : world_(world) {}
  ~FleetRegistry();

  FleetRegistry(const FleetRegistry&) = delete;
  FleetRegistry& operator=(const FleetRegistry&) = delete;

  /// Creates a MigratableEnclave on `machine_address`, runs
  /// migration_init(kNew), wires its persist OCALL into the machine's
  /// untrusted store under "<name>.ml", and registers it.  Returns the
  /// fleet-assigned enclave id.
  Result<uint64_t> launch(const std::string& machine_address,
                          const std::string& name,
                          std::shared_ptr<const sgx::EnclaveImage> image,
                          const LaunchOptions& options = {});

  /// Destination half of a migration: instantiates the enclave on
  /// `destination_address`, fetches the incoming data from the local ME
  /// (migration_init(kMigrate)), and only then retires the frozen source
  /// instance and moves the record.  On failure the source instance (and
  /// the source ME's retained copy) are left untouched for the caller to
  /// retry or escalate.
  Status complete_move(uint64_t id, const std::string& destination_address);

  /// Destroys the instance and unregisters the record (enclave shutdown).
  Status retire(uint64_t id);

  // ----- lookups -----
  EnclaveRecord* find(uint64_t id);
  const EnclaveRecord* find(uint64_t id) const;
  migration::MigratableEnclave* enclave(uint64_t id);

  std::vector<uint64_t> all_ids() const;
  std::vector<uint64_t> ids_on(const std::string& machine_address) const;
  std::vector<uint64_t> ids_in_region(const std::string& region) const;

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  size_t count_on(const std::string& machine_address) const;
  /// True when the machine hosts a registered enclave with this
  /// MRENCLAVE (anti-affinity placement query).
  bool hosts_image(const std::string& machine_address,
                   const sgx::Measurement& mr) const;

  // ----- incremental load feed (placement indexes) -----
  //
  // Every placement change appends (machine, new enclave count) to a
  // bounded changelog.  A Scheduler keeps a cursor and replays only the
  // deltas since its last pick, so its per-region load gauges stay in
  // sync without rescanning the fleet.  The log is compacted once it
  // grows past a few thousand entries; a cursor that falls behind the
  // compaction point gets `false` and must rebuild from count_on().

  /// Monotonic version: one tick per recorded placement change.
  uint64_t load_version() const {
    return changelog_base_ + load_changelog_.size();
  }

  /// Replays every load change after `cursor` into `fn(machine,
  /// new_count)` and advances `cursor` to load_version().  Returns false
  /// (cursor untouched) when the changelog was compacted past `cursor`.
  bool replay_load_changes(
      uint64_t& cursor,
      const std::function<void(const std::string&, uint32_t)>& fn) const;

  /// Bytes held by the registry's placement indexes (deterministic
  /// accounting for the control-plane memory gauge, not an allocator
  /// measurement).
  size_t index_bytes() const;

  /// Invoked after every registry-confirmed placement change
  /// (complete_move success), with the record already updated.
  using CompletionCallback = std::function<void(const EnclaveRecord&)>;
  void set_completion_callback(CompletionCallback cb) {
    completion_callback_ = std::move(cb);
  }

  /// The registry does not own the world; the reference stays usable from
  /// const registry contexts (placement queries only read machine state).
  platform::World& world() const { return world_; }

 private:
  std::string storage_key(const std::string& name) const {
    return name + ".ml";
  }

  /// Adds/removes `record` (already placed on record.machine) to the
  /// per-machine, per-region, and per-image indexes and logs the load
  /// change.
  void index_insert(const EnclaveRecord& record);
  void index_erase(const EnclaveRecord& record);
  void record_load_change(const std::string& machine_address);

  platform::World& world_;
  std::map<uint64_t, EnclaveRecord> records_;  // ordered: deterministic scans
  uint64_t next_id_ = 1;
  CompletionCallback completion_callback_;

  // Placement indexes.  records_ stays the source of truth; these shard
  // it by machine / region / image so the hot placement queries
  // (count_on, ids_on, hosts_image) are O(log M) instead of O(enclaves).
  // All keyed by strings or ids — orderings stay deterministic.
  std::set<std::string> names_;
  std::map<std::string, std::set<uint64_t>> ids_by_machine_;
  std::map<std::string, std::set<uint64_t>> ids_by_region_;
  std::map<std::string, std::map<sgx::Measurement, uint32_t>>
      images_by_machine_;
  std::vector<std::pair<std::string, uint32_t>> load_changelog_;
  uint64_t changelog_base_ = 0;
};

}  // namespace sgxmig::orchestrator

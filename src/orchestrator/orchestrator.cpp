#include "orchestrator/orchestrator.h"

#include <algorithm>
#include <optional>

#include "migration/migration_enclave.h"

namespace sgxmig::orchestrator {

using migration::MigrationFailureClass;

const char* transfer_mode_name(TransferMode mode) {
  switch (mode) {
    case TransferMode::kFullSnapshot: return "full-snapshot";
    case TransferMode::kPrecopy: return "precopy";
  }
  return "unknown";
}

Orchestrator::Orchestrator(FleetRegistry& fleet, Scheduler& scheduler,
                           OrchestratorOptions options)
    : fleet_(fleet), scheduler_(scheduler), options_(options) {}

Duration Orchestrator::now() const { return fleet_.world().clock().now(); }

void Orchestrator::log(const Task& task, EventKind kind, std::string detail) {
  OrchestratorEvent event;
  event.at = now();
  event.enclave_id = task.enclave_id;
  event.kind = kind;
  event.detail = std::move(detail);
  events_.push_back(std::move(event));
}

std::vector<Orchestrator::Task> Orchestrator::build_tasks(const Plan& plan) {
  std::vector<Task> tasks;
  auto make_task = [&](uint64_t id) {
    Task task;
    const EnclaveRecord* record = fleet_.find(id);
    if (record == nullptr) return task;  // enclave_id stays 0: skipped
    task.enclave_id = id;
    task.name = record->name;
    task.source = record->machine;
    task.planned_at = now();
    return task;
  };

  switch (plan.kind) {
    case PlanKind::kDrainMachine: {
      for (const uint64_t id : fleet_.ids_on(plan.machine)) {
        Task task = make_task(id);
        if (task.enclave_id != 0) tasks.push_back(std::move(task));
      }
      break;
    }
    case PlanKind::kEvacuateRegion: {
      // No destination inside the evacuating region, ever.
      std::vector<std::string> forbidden;
      for (platform::Machine* m :
           fleet_.world().machines_in_region(plan.region)) {
        forbidden.push_back(m->address());
      }
      for (const uint64_t id : fleet_.ids_in_region(plan.region)) {
        Task task = make_task(id);
        if (task.enclave_id == 0) continue;
        task.forbidden = forbidden;
        tasks.push_back(std::move(task));
      }
      break;
    }
    case PlanKind::kRebalance: {
      const auto machines = fleet_.world().machines();
      if (machines.empty() || fleet_.empty()) break;
      const uint32_t target = static_cast<uint32_t>(
          (fleet_.size() + machines.size() - 1) / machines.size());
      for (platform::Machine* m : machines) {
        const auto ids = fleet_.ids_on(m->address());
        if (ids.size() <= target) continue;
        // Move the most recently launched enclaves first (highest ids):
        // long-lived placements stay put.
        for (size_t i = target; i < ids.size(); ++i) {
          Task task = make_task(ids[i]);
          if (task.enclave_id != 0) tasks.push_back(std::move(task));
        }
      }
      break;
    }
    case PlanKind::kTargetedMove: {
      for (const TargetedMove& move : plan.moves) {
        Task task = make_task(move.enclave_id);
        if (task.enclave_id == 0) continue;
        task.fixed_destination = move.destination;
        tasks.push_back(std::move(task));
      }
      break;
    }
  }
  for (Task& task : tasks) {
    log(task, EventKind::kPlanned, task.source);
  }
  return tasks;
}

std::map<std::string, uint32_t> Orchestrator::reserved_destinations() const {
  return inflight_to_destination_;
}

bool Orchestrator::admit_and_start(Task& task) {
  if (inflight_total_ >= options_.max_inflight_total) return false;
  if (inflight_per_machine_[task.source] >=
      options_.max_inflight_per_machine) {
    return false;
  }

  // A resumed task (source side already done) keeps its destination: the
  // data is pending at that ME.  Everything else (re-)selects one.
  if (!task.transfer_done) {
    if (!task.fixed_destination.empty()) {
      task.destination = task.fixed_destination;
    } else {
      PlacementQuery query;
      query.source = task.source;
      query.excluded = task.forbidden;
      query.avoid = task.failed_destinations;
      query.reserved = reserved_destinations();
      if (const EnclaveRecord* record = fleet_.find(task.enclave_id)) {
        query.image = record->image.get();
      }
      auto picked = scheduler_.pick_destination(query);
      if (!picked.ok()) {
        handle_failure(task, picked.status(),
                       MigrationFailureClass::kFatalState,
                       "scheduler: no eligible destination",
                       /*destination_specific=*/false);
        return true;  // task consumed (terminal), not capacity-blocked
      }
      task.destination = picked.value();
    }
    // Destination cap: enforced only once the destination is known, and
    // only for transfers that still have to ship data (a restore-only
    // retry is already resident at its destination ME).  Returning false
    // keeps the task queued; the next wave re-selects with fresh gauges.
    if (options_.max_inflight_per_destination != 0 &&
        inflight_to_destination_[task.destination] >=
            options_.max_inflight_per_destination) {
      return false;
    }
  }

  ++inflight_total_;
  ++inflight_per_machine_[task.source];
  ++inflight_to_destination_[task.destination];
  peak_inflight_total_ = std::max(peak_inflight_total_, inflight_total_);
  peak_inflight_per_machine_[task.source] =
      std::max(peak_inflight_per_machine_[task.source],
               inflight_per_machine_[task.source]);
  if (task.attempts == 0) task.admitted_at = now();
  log(task, EventKind::kAdmitted,
      task.source + " -> " + task.destination +
          (task.attempts > 0 ? " (retry)" : ""));

  if (task.transfer_done) {
    // Source side done on a previous attempt; only the restore remains.
    // Still counts against max_attempts so a permanently failing restore
    // cannot retry forever.
    ++task.attempts;
    if (lanes_ != nullptr) {
      // Pipelined: the restore runs on the destination lane in the
      // completion wave, overlapping with everything else.
      task.phase = TaskPhase::kStarted;
      task.ready_at = std::max(next_slot_time(), task.retry_at);
      return true;
    }
    complete(task);
    return true;
  }

  migration::MigratableEnclave* enclave = fleet_.enclave(task.enclave_id);
  const EnclaveRecord* record = fleet_.find(task.enclave_id);
  ++task.attempts;
  if (lanes_ != nullptr) {
    start_pipelined(task, *enclave, *record);
    return true;
  }
  // A start whose reply path died (source ME killed or restarted
  // mid-exchange) resumes inside migration_start itself: the library
  // re-queries the fate of the staged attempt (nonce-scoped) from the
  // ME's durable queue and reports success when the transfer landed, so
  // the retry machinery here never double-ships or burns attempts on an
  // already-accepted transfer.
  const migration::MigrationStartResult result =
      run_source_side(task, *enclave, *record);
  if (!result.ok()) {
    --inflight_total_;
    --inflight_per_machine_[task.source];
    --inflight_to_destination_[task.destination];
    log(task, EventKind::kStartFailed,
        std::string(migration::migration_failure_class_name(
            result.failure_class)) +
            ": " + result.message);
    handle_failure(task, result.status, result.failure_class, result.message,
                   /*destination_specific=*/true);
    return true;
  }
  task.phase = TaskPhase::kStarted;
  task.freeze_window = enclave->last_freeze_window();
  task.precopy_rounds = enclave->last_precopy_rounds();
  task.transfer_bytes = enclave->last_transfer_bytes();
  log(task, EventKind::kStartOk, task.destination);
  return true;
}

migration::MigrationStartResult Orchestrator::run_source_side(
    Task& task, migration::MigratableEnclave& enclave,
    const EnclaveRecord& record) {
  if (options_.transfer_mode == TransferMode::kFullSnapshot ||
      !enclave.live_transfer_capable()) {
    return enclave.ecall_migration_start_detailed(task.destination,
                                                  record.options.policy);
  }
  // A previous attempt may have frozen the library with the finalize
  // staged (e.g. the accept reply AND the fallback status query were both
  // lost to a dying ME): rounds are impossible — and unnecessary — once
  // frozen, so resume the finalize directly.  It dedups by nonce at the
  // ME and supports post-freeze re-routes, so a retried or re-targeted
  // attempt lands exactly once.
  if (enclave.migration_frozen()) {
    return enclave.ecall_migration_finalize_detailed(task.destination,
                                                     record.options.policy);
  }
  // Iterative pre-copy on the virtual clock: ship dirty rounds while the
  // enclave keeps serving (the round hook is where live mutations land),
  // then freeze for the final delta.  A failed round surfaces as a
  // classified start failure so the existing retry/backoff/re-route
  // machinery applies unchanged — the library's per-attempt state resumes
  // rounds toward the same destination and restarts toward a new one.
  while (true) {
    auto round = enclave.ecall_migration_precopy_round(task.destination,
                                                       record.options.policy);
    if (!round.ok()) {
      migration::MigrationStartResult failure;
      failure.status = round.status();
      failure.failure_class =
          migration::classify_migration_failure(round.status());
      failure.message = "pre-copy round: " +
                        std::string(status_name(round.status()));
      return failure;
    }
    if (round_hook_) round_hook_(task.enclave_id, round.value().round);
    if (round.value().converged(options_.precopy)) break;
  }
  return enclave.ecall_migration_finalize_detailed(task.destination,
                                                   record.options.policy);
}

// ----- pipelined engine -----

Duration Orchestrator::next_slot_time() {
  Duration ready = lanes_ != nullptr ? lanes_->control() : now();
  if (!released_slots_.empty()) {
    // Every capacity decrement (restore completion OR source failure)
    // records WHEN its slot freed, and every admission takes over the
    // earliest-freed one: the cap is a TIME constraint, not just a
    // count.  (A pipeline that never saturated pops a release it did
    // not strictly need — still bounded by a real event, and exact in
    // the saturated regime the cap sweep measures.)
    ready = std::max(ready, released_slots_.front());
    released_slots_.erase(released_slots_.begin());
  }
  return ready;
}

void Orchestrator::release_slot(Duration freed_at) {
  released_slots_.insert(std::upper_bound(released_slots_.begin(),
                                          released_slots_.end(), freed_at),
                         freed_at);
}

void Orchestrator::pipelined_source_failure(
    Task& task, const migration::MigrationStartResult& result,
    Duration freed_at) {
  --inflight_total_;
  --inflight_per_machine_[task.source];
  --inflight_to_destination_[task.destination];
  // The failing task's slot frees at the lane instant the failure was
  // observed, not at some unrelated restore's completion.
  release_slot(freed_at);
  log(task, EventKind::kStartFailed,
      std::string(
          migration::migration_failure_class_name(result.failure_class)) +
          ": " + result.message);
  handle_failure(task, result.status, result.failure_class, result.message,
                 /*destination_specific=*/true);
}

void Orchestrator::mark_started(Task& task,
                                migration::MigratableEnclave& enclave,
                                Duration ready_at) {
  task.phase = TaskPhase::kStarted;
  task.ready_at = ready_at;
  task.freeze_window = enclave.last_freeze_window();
  task.enqueue_wait = enclave.last_enqueue_wait();
  task.precopy_rounds = enclave.last_precopy_rounds();
  task.transfer_bytes = enclave.last_transfer_bytes();
  log(task, EventKind::kStartOk, task.destination);
}

void Orchestrator::start_pipelined(Task& task,
                                   migration::MigratableEnclave& enclave,
                                   const EnclaveRecord& record) {
  const Duration ready = std::max(next_slot_time(), task.retry_at);
  const bool precopy = options_.transfer_mode == TransferMode::kPrecopy &&
                       enclave.live_transfer_capable();
  if (precopy) {
    if (enclave.migration_frozen()) {
      // Frozen with the finalize staged (lost accept reply): resume the
      // finalize directly — rounds are impossible and unnecessary.
      migration::MigrationStartResult result;
      const Duration end = lanes_->run(task.source, ready, [&] {
        result = enclave.ecall_migration_finalize_detailed(
            task.destination, record.options.policy);
      });
      task.ready_at = end;
      if (result.status == Status::kMigrationInProgress &&
          result.failure_class == migration::MigrationFailureClass::kNone) {
        // Async source ME queued the re-driven finalize too.
        task.phase = TaskPhase::kTransferring;
      } else if (result.ok()) {
        mark_started(task, enclave, end);
      } else {
        pipelined_source_failure(task, result, end);
      }
      return;
    }
    task.phase = TaskPhase::kPrecopying;
    task.ready_at = ready;
    return;  // rounds advance one per wave, interleaved across tasks
  }
  // Full snapshot: non-blocking enqueue at the source ME; the transfer
  // itself runs behind the pump, and poll_transferring learns its fate.
  // Freeze-aware: reserve instead — the enclave keeps serving until the
  // slot-live poll freezes it, so the freeze window no longer absorbs
  // the queue wait.
  migration::MigrationStartResult result;
  const Duration end = lanes_->run(task.source, ready, [&] {
    result = options_.freeze_aware
                 ? enclave.ecall_migration_reserve_detailed(
                       task.destination, record.options.policy)
                 : enclave.ecall_migration_enqueue_detailed(
                       task.destination, record.options.policy);
  });
  if (!result.ok()) {
    pipelined_source_failure(task, result, end);
    return;
  }
  task.phase = TaskPhase::kTransferring;
  task.ready_at = end;
}

void Orchestrator::poll_transferring(Task& task) {
  migration::MigratableEnclave* enclave = fleet_.enclave(task.enclave_id);
  migration::MigrationStartResult result;
  const Duration end =
      lanes_->run(task.source, std::max(task.ready_at, lanes_->control()),
                  [&] { result = enclave->ecall_migration_poll_transfer(); });
  task.ready_at = end;
  if (result.status == Status::kMigrationInProgress &&
      result.failure_class == migration::MigrationFailureClass::kNone) {
    return;  // still in flight; pump and poll again next wave
  }
  if (result.ok()) {
    mark_started(task, *enclave, end);
    return;
  }
  pipelined_source_failure(task, result, end);
}

void Orchestrator::advance_precopy(Task& task) {
  migration::MigratableEnclave* enclave = fleet_.enclave(task.enclave_id);
  const EnclaveRecord* record = fleet_.find(task.enclave_id);
  migration::MigrationStartResult result;
  bool terminal = false;
  const Duration end = lanes_->run(
      task.source, std::max(task.ready_at, lanes_->control()), [&] {
        if (enclave->migration_frozen()) {
          result = enclave->ecall_migration_finalize_detailed(
              task.destination, record->options.policy);
          terminal = true;
          return;
        }
        auto round = enclave->ecall_migration_precopy_round(
            task.destination, record->options.policy);
        if (!round.ok()) {
          result.status = round.status();
          result.failure_class =
              migration::classify_migration_failure(round.status());
          result.message = "pre-copy round: " +
                           std::string(status_name(round.status()));
          terminal = true;
          return;
        }
        if (round_hook_) round_hook_(task.enclave_id, round.value().round);
        if (round.value().converged(options_.precopy)) {
          result = enclave->ecall_migration_finalize_detailed(
              task.destination, record->options.policy);
          terminal = true;
        }
      });
  task.ready_at = end;
  if (!terminal) return;  // next round next wave
  if (result.status == Status::kMigrationInProgress &&
      result.failure_class == migration::MigrationFailureClass::kNone) {
    // Async source ME queued the finalize: the record ships behind the
    // pump and the poll machinery owns the outcome from here.
    task.phase = TaskPhase::kTransferring;
    return;
  }
  if (result.ok()) {
    mark_started(task, *enclave, end);
  } else {
    pipelined_source_failure(task, result, end);
  }
}

void Orchestrator::complete(Task& task) {
  const Status status = fleet_.complete_move(task.enclave_id,
                                             task.destination);
  --inflight_total_;
  --inflight_per_machine_[task.source];
  --inflight_to_destination_[task.destination];
  if (status == Status::kOk) {
    task.phase = TaskPhase::kDone;
    task.finished_at = now();
    log(task, EventKind::kRestored, task.destination);
    log(task, EventKind::kDone,
        task.source + " -> " + task.destination);
    return;
  }
  task.transfer_done = true;  // the data still sits at the destination ME
  handle_failure(task, status, migration::classify_migration_failure(status),
                 "restoring on destination: " +
                     std::string(status_name(status)),
                 /*destination_specific=*/false);
}

void Orchestrator::handle_failure(Task& task, Status status,
                                  MigrationFailureClass cls,
                                  const std::string& message,
                                  bool destination_specific) {
  task.last_status = status;
  task.last_class = cls;
  task.last_message = message;
  // A policy denial is fatal only for THAT destination: the source ME
  // evaluated the enclave's policy against this machine's certified
  // attributes.  The library keeps the staged data precisely so the
  // caller can retry toward another destination (§V-D), so re-select —
  // with the denied machine hard-excluded — instead of stranding a
  // frozen enclave while an eligible destination exists.
  const bool policy_denied_destination =
      cls == MigrationFailureClass::kFatalPolicy && destination_specific &&
      task.fixed_destination.empty();
  const bool retryable =
      (migration::migration_failure_is_retryable(cls) ||
       policy_denied_destination) &&
      task.attempts < options_.max_attempts;
  if (!retryable) {
    fail_task(task);
    return;
  }
  if (destination_specific && task.fixed_destination.empty() &&
      !task.destination.empty()) {
    if (policy_denied_destination) {
      // Hard exclusion: the certified attributes will not change.
      if (std::find(task.forbidden.begin(), task.forbidden.end(),
                    task.destination) == task.forbidden.end()) {
        task.forbidden.push_back(task.destination);
      }
    } else if (std::find(task.failed_destinations.begin(),
                         task.failed_destinations.end(),
                         task.destination) ==
               task.failed_destinations.end()) {
      // Prefer another machine on the next attempt; soft exclusion, so a
      // fleet with no alternative still retries this one.
      task.failed_destinations.push_back(task.destination);
    }
  }
  const uint32_t exponent = task.attempts > 0 ? task.attempts - 1 : 0;
  const Duration backoff = options_.retry_backoff * (1u << exponent);
  task.retry_at = now() + backoff;
  task.phase = TaskPhase::kBackoff;
  log(task, EventKind::kBackoff,
      "retry at " + std::to_string(to_seconds(task.retry_at)) + "s");
}

void Orchestrator::fail_task(Task& task) {
  task.phase = TaskPhase::kFailed;
  task.finished_at = now();
  log(task, EventKind::kFailed,
      std::string(migration::migration_failure_class_name(task.last_class)) +
          ": " + task.last_message);
}

OrchestratorReport Orchestrator::execute(const Plan& plan) {
  events_.clear();
  inflight_per_machine_.clear();
  inflight_to_destination_.clear();
  inflight_total_ = 0;
  peak_inflight_total_ = 0;
  peak_inflight_per_machine_.clear();
  released_slots_.clear();

  OrchestratorReport report;
  report.plan = plan.kind;
  report.started_at = now();

  // Pipelined engine: per-machine lanes over the shared clock, with the
  // deferred-delivery pump attributed to them.  Scoped to this execute():
  // the LaneSchedule destructor lands the clock on the parallel horizon,
  // so a stopwatch around execute() reads max-over-lanes wall time.
  net::Network& net = fleet_.world().network();
  std::optional<LaneSchedule> lanes;
  if (options_.pipelined) {
    lanes.emplace(fleet_.world().clock());
    lanes_ = &*lanes;
    net.set_lane_schedule(lanes_);
  }

  std::vector<Task> tasks = build_tasks(plan);
  auto unfinished = [&] {
    return std::any_of(tasks.begin(), tasks.end(), [](const Task& t) {
      return t.phase != TaskPhase::kDone && t.phase != TaskPhase::kFailed;
    });
  };

  uint32_t wave = 0;
  uint32_t stalled_waves = 0;
  while (unfinished()) {
    if (wave_hook_) {
      wave_hook_(wave);
      // Chaos hooks (ME kills/restarts) charge the clock at control
      // level; fold that into the control instant so lane runs do not
      // discard it.
      if (lanes_ != nullptr) lanes_->sync_control_from_clock();
    }
    ++wave;
    bool progressed = false;

    // Admission wave: start every ready task the caps allow.  Started
    // tasks stay in flight (data pending at their destination MEs) until
    // the completion wave below, so the in-flight gauges genuinely
    // overlap up to the caps.
    for (Task& task : tasks) {
      const bool ready =
          task.phase == TaskPhase::kQueued ||
          (task.phase == TaskPhase::kBackoff && task.retry_at <= now());
      if (!ready) continue;
      if (admit_and_start(task)) progressed = true;
    }

    if (lanes_ != nullptr) {
      // Pump wave: re-kick source-ME tasks (freshly queued after an ME
      // restart resumes them from the durable queue) and drain the
      // deferred deliveries — every in-flight ME<->ME conversation
      // advances, interleaved across lanes.
      for (platform::Machine* m : fleet_.world().machines()) {
        auto* me = migration::me_on(*m);
        if (me == nullptr || (me->transfer_task_count() == 0 &&
                              me->precopy_outgoing_count() == 0)) {
          continue;  // async pre-copy ships also need the pump re-kick
        }
        lanes_->run(m->address(), lanes_->control(), [&] { me->pump(); });
      }
      if (net.pump_all() > 0) progressed = true;

      for (Task& task : tasks) {
        if (task.phase == TaskPhase::kPrecopying) {
          advance_precopy(task);
          progressed = true;
        }
      }
      for (Task& task : tasks) {
        if (task.phase != TaskPhase::kTransferring) continue;
        poll_transferring(task);
        if (task.phase != TaskPhase::kTransferring) progressed = true;
      }
    }

    // Completion wave: restore every in-flight migration on its
    // destination.  Pipelined restores run on the DESTINATION lane —
    // restores toward different machines overlap with each other and
    // with the source lane still streaming the next transfers.
    for (Task& task : tasks) {
      if (task.phase != TaskPhase::kStarted) continue;
      if (lanes_ != nullptr) {
        const Duration end = lanes_->run(
            task.destination, std::max(task.ready_at, lanes_->control()),
            [&] { complete(task); });
        release_slot(end);
      } else {
        complete(task);
      }
      progressed = true;
    }

    if (progressed) {
      stalled_waves = 0;
      continue;
    }
    // Everything left is backing off (or, pipelined, awaiting a pump that
    // produced nothing): jump the virtual clock to the earliest retry
    // instead of spinning.
    Duration earliest = Duration::max();
    for (const Task& task : tasks) {
      if (task.phase == TaskPhase::kBackoff) {
        earliest = std::min(earliest, task.retry_at);
      }
    }
    if (earliest == Duration::max()) {
      // Pipelined in-flight tasks with nothing pumpable resolve at the
      // next poll; give them bounded slack before declaring a wedge.
      if (lanes_ != nullptr && ++stalled_waves < 64) continue;
      break;  // defensive: nothing to wait on
    }
    if (lanes_ != nullptr) {
      lanes_->advance_control(earliest);
    } else {
      VirtualClock& clock = fleet_.world().clock();
      if (earliest > clock.now()) clock.advance(earliest - clock.now());
    }
  }

  if (options_.pipelined) {
    net.set_lane_schedule(nullptr);
    lanes_ = nullptr;
    lanes.reset();  // clock lands on the parallel horizon
  }
  report.finished_at = now();
  report.peak_inflight_total = peak_inflight_total_;
  report.peak_inflight_per_machine = peak_inflight_per_machine_;
  report.events = events_;
  for (const Task& task : tasks) {
    MigrationRecord record;
    record.enclave_id = task.enclave_id;
    record.name = task.name;
    record.source = task.source;
    record.destination = task.destination;
    record.attempts = task.attempts;
    record.success = task.phase == TaskPhase::kDone;
    record.final_status = task.last_status;
    record.failure_class = task.last_class;
    record.failure_message = task.last_message;
    record.planned_at = task.planned_at;
    record.admitted_at = task.admitted_at;
    record.finished_at = task.finished_at;
    record.freeze_window = task.freeze_window;
    record.enqueue_wait = task.enqueue_wait;
    record.precopy_rounds = task.precopy_rounds;
    record.transfer_bytes = task.transfer_bytes;
    report.migrations.push_back(std::move(record));
  }
  report.freeze_budget = options_.freeze_budget;
  return report;
}

}  // namespace sgxmig::orchestrator

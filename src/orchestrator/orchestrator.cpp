#include "orchestrator/orchestrator.h"

#include <algorithm>
#include <optional>

#include "migration/migration_enclave.h"
#include "net/network.h"

namespace sgxmig::orchestrator {

using migration::MigrationFailureClass;

const char* transfer_mode_name(TransferMode mode) {
  switch (mode) {
    case TransferMode::kFullSnapshot: return "full-snapshot";
    case TransferMode::kPrecopy: return "precopy";
  }
  return "unknown";
}

Orchestrator::Orchestrator(FleetRegistry& fleet, Scheduler& scheduler,
                           OrchestratorOptions options)
    : fleet_(fleet), scheduler_(scheduler), options_(options) {}

Duration Orchestrator::now() const { return fleet_.world().clock().now(); }

void Orchestrator::log(const Task& task, EventKind kind, std::string detail) {
  OrchestratorEvent event;
  event.at = now();
  event.enclave_id = task.enclave_id;
  event.kind = kind;
  event.detail = std::move(detail);
  events_.push_back(std::move(event));
  if (options_.event_log_limit != 0) {
    while (events_.size() > options_.event_log_limit) {
      events_.pop_front();
      ++events_dropped_;
    }
  }
}

void Orchestrator::set_phase(Task& task, TaskPhase phase) {
  const uint32_t idx = static_cast<uint32_t>(&task - tasks_.data());
  switch (task.phase) {
    case TaskPhase::kQueued:
      ready_by_source_[task.source].erase(idx);
      break;
    case TaskPhase::kBackoff:
      // Ripened backoffs sit in the ready set; unripe ones only in the
      // heap (their entry is popped at ripen time, so no stale entries).
      ready_by_source_[task.source].erase(idx);
      ripe_backoff_.erase(idx);
      break;
    case TaskPhase::kTransferring: transferring_.erase(idx); break;
    case TaskPhase::kPrecopying: precopying_.erase(idx); break;
    case TaskPhase::kStarted: started_.erase(idx); break;
    default: break;
  }
  task.phase = phase;
  switch (phase) {
    case TaskPhase::kBackoff:
      // retry_at is already rewritten by handle_failure at this point.
      backoff_heap_.push({task.retry_at, idx});
      break;
    case TaskPhase::kTransferring: transferring_.insert(idx); break;
    case TaskPhase::kPrecopying: precopying_.insert(idx); break;
    case TaskPhase::kStarted: started_.insert(idx); break;
    case TaskPhase::kDone:
    case TaskPhase::kFailed:
      --unfinished_count_;
      break;
    default: break;
  }
}

void Orchestrator::ripen_backoffs(Duration at, std::vector<uint32_t>* newly) {
  while (!backoff_heap_.empty() && backoff_heap_.top().first <= at) {
    const uint32_t idx = backoff_heap_.top().second;
    backoff_heap_.pop();
    Task& task = tasks_[idx];
    // Defensive: a re-backed-off task re-pushes with its new retry time,
    // and set_phase pops the ripe marker, so stale entries should not
    // exist — skip them if they ever do.
    if (task.phase != TaskPhase::kBackoff || ripe_backoff_.count(idx) != 0) {
      continue;
    }
    ripe_backoff_[idx] = task.retry_at;
    ready_by_source_[task.source].insert(idx);
    if (newly != nullptr) newly->push_back(idx);
  }
}

std::vector<Orchestrator::Task> Orchestrator::build_tasks(const Plan& plan) {
  std::vector<Task> tasks;
  auto make_task = [&](uint64_t id) {
    Task task;
    const EnclaveRecord* record = fleet_.find(id);
    if (record == nullptr) return task;  // enclave_id stays 0: skipped
    task.enclave_id = id;
    task.name = record->name;
    task.source = record->machine;
    task.planned_at = now();
    return task;
  };

  switch (plan.kind) {
    case PlanKind::kDrainMachine: {
      for (const uint64_t id : fleet_.ids_on(plan.machine)) {
        Task task = make_task(id);
        if (task.enclave_id != 0) tasks.push_back(std::move(task));
      }
      break;
    }
    case PlanKind::kEvacuateRegion: {
      // No destination inside the evacuating region, ever.  Carried as
      // the region NAME: at 1000 machines an enumerated exclusion list
      // would drag ~100 entries through every destination pick of every
      // task.
      for (const uint64_t id : fleet_.ids_in_region(plan.region)) {
        Task task = make_task(id);
        if (task.enclave_id == 0) continue;
        task.forbidden_regions.push_back(plan.region);
        tasks.push_back(std::move(task));
      }
      break;
    }
    case PlanKind::kRebalance: {
      const auto machines = fleet_.world().machines();
      if (machines.empty() || fleet_.empty()) break;
      const uint32_t target = static_cast<uint32_t>(
          (fleet_.size() + machines.size() - 1) / machines.size());
      for (platform::Machine* m : machines) {
        const auto ids = fleet_.ids_on(m->address());
        if (ids.size() <= target) continue;
        // Move the most recently launched enclaves first (highest ids):
        // long-lived placements stay put.
        for (size_t i = target; i < ids.size(); ++i) {
          Task task = make_task(ids[i]);
          if (task.enclave_id != 0) tasks.push_back(std::move(task));
        }
      }
      break;
    }
    case PlanKind::kTargetedMove: {
      for (const TargetedMove& move : plan.moves) {
        Task task = make_task(move.enclave_id);
        if (task.enclave_id == 0) continue;
        task.fixed_destination = move.destination;
        tasks.push_back(std::move(task));
      }
      break;
    }
  }
  for (Task& task : tasks) {
    log(task, EventKind::kPlanned, task.source);
  }
  return tasks;
}

std::map<std::string, uint32_t> Orchestrator::reserved_destinations() const {
  return inflight_to_destination_;
}

void Orchestrator::reserve_destination(const std::string& machine) {
  ++inflight_to_destination_[machine];
  scheduler_.note_reservation(machine, +1);
}

void Orchestrator::release_destination(const std::string& machine) {
  --inflight_to_destination_[machine];
  scheduler_.note_reservation(machine, -1);
}

bool Orchestrator::admit_and_start(Task& task) {
  if (inflight_total_ >= options_.max_inflight_total) return false;
  if (inflight_per_machine_[task.source] >=
      options_.max_inflight_per_machine) {
    return false;
  }

  // A resumed task (source side already done) keeps its destination: the
  // data is pending at that ME.  Everything else (re-)selects one.
  if (!task.transfer_done) {
    if (!task.fixed_destination.empty()) {
      task.destination = task.fixed_destination;
    } else {
      PlacementQuery query;
      query.source = task.source;
      query.excluded = task.forbidden;
      query.excluded_regions = task.forbidden_regions;
      query.avoid = task.failed_destinations;
      // Indexed picks read the scheduler's reservation ledger (kept in
      // sync by reserve/release_destination); only the brute-force path
      // needs the per-query map.
      if (!scheduler_.index_active()) {
        query.reserved = reserved_destinations();
      }
      if (const EnclaveRecord* record = fleet_.find(task.enclave_id)) {
        query.image = record->image.get();
      }
      auto picked = scheduler_.pick_destination(query);
      if (!picked.ok()) {
        handle_failure(task, picked.status(),
                       MigrationFailureClass::kFatalState,
                       "scheduler: no eligible destination",
                       /*destination_specific=*/false);
        return true;  // task consumed (terminal), not capacity-blocked
      }
      task.destination = picked.value();
    }
    // Destination cap: enforced only once the destination is known, and
    // only for transfers that still have to ship data (a restore-only
    // retry is already resident at its destination ME).  Returning false
    // keeps the task queued; the next wave re-selects with fresh gauges.
    if (options_.max_inflight_per_destination != 0 &&
        inflight_to_destination_[task.destination] >=
            options_.max_inflight_per_destination) {
      return false;
    }
  }

  ++inflight_total_;
  ++inflight_per_machine_[task.source];
  reserve_destination(task.destination);
  peak_inflight_total_ = std::max(peak_inflight_total_, inflight_total_);
  peak_inflight_per_machine_[task.source] =
      std::max(peak_inflight_per_machine_[task.source],
               inflight_per_machine_[task.source]);
  if (task.attempts == 0) task.admitted_at = now();
  log(task, EventKind::kAdmitted,
      task.source + " -> " + task.destination +
          (task.attempts > 0 ? " (retry)" : ""));

  if (task.transfer_done) {
    // Source side done on a previous attempt; only the restore remains.
    // Still counts against max_attempts so a permanently failing restore
    // cannot retry forever.
    ++task.attempts;
    if (lanes_ != nullptr) {
      // Pipelined: the restore runs on the destination lane in the
      // completion wave, overlapping with everything else.
      task.ready_at = std::max(next_slot_time(), task.retry_at);
      set_phase(task, TaskPhase::kStarted);
      return true;
    }
    complete(task);
    return true;
  }

  migration::MigratableEnclave* enclave = fleet_.enclave(task.enclave_id);
  const EnclaveRecord* record = fleet_.find(task.enclave_id);
  ++task.attempts;
  if (lanes_ != nullptr) {
    start_pipelined(task, *enclave, *record);
    return true;
  }
  // A start whose reply path died (source ME killed or restarted
  // mid-exchange) resumes inside migration_start itself: the library
  // re-queries the fate of the staged attempt (nonce-scoped) from the
  // ME's durable queue and reports success when the transfer landed, so
  // the retry machinery here never double-ships or burns attempts on an
  // already-accepted transfer.
  const migration::MigrationStartResult result =
      run_source_side(task, *enclave, *record);
  if (!result.ok()) {
    --inflight_total_;
    --inflight_per_machine_[task.source];
    release_destination(task.destination);
    log(task, EventKind::kStartFailed,
        std::string(migration::migration_failure_class_name(
            result.failure_class)) +
            ": " + result.message);
    handle_failure(task, result.status, result.failure_class, result.message,
                   /*destination_specific=*/true);
    return true;
  }
  set_phase(task, TaskPhase::kStarted);
  task.freeze_window = enclave->last_freeze_window();
  task.precopy_rounds = enclave->last_precopy_rounds();
  task.transfer_bytes = enclave->last_transfer_bytes();
  log(task, EventKind::kStartOk, task.destination);
  return true;
}

migration::MigrationStartResult Orchestrator::run_source_side(
    Task& task, migration::MigratableEnclave& enclave,
    const EnclaveRecord& record) {
  if (options_.transfer_mode == TransferMode::kFullSnapshot ||
      !enclave.live_transfer_capable()) {
    return enclave.ecall_migration_start_detailed(task.destination,
                                                  record.options.policy);
  }
  // A previous attempt may have frozen the library with the finalize
  // staged (e.g. the accept reply AND the fallback status query were both
  // lost to a dying ME): rounds are impossible — and unnecessary — once
  // frozen, so resume the finalize directly.  It dedups by nonce at the
  // ME and supports post-freeze re-routes, so a retried or re-targeted
  // attempt lands exactly once.
  if (enclave.migration_frozen()) {
    return enclave.ecall_migration_finalize_detailed(task.destination,
                                                     record.options.policy);
  }
  // Iterative pre-copy on the virtual clock: ship dirty rounds while the
  // enclave keeps serving (the round hook is where live mutations land),
  // then freeze for the final delta.  A failed round surfaces as a
  // classified start failure so the existing retry/backoff/re-route
  // machinery applies unchanged — the library's per-attempt state resumes
  // rounds toward the same destination and restarts toward a new one.
  while (true) {
    auto round = enclave.ecall_migration_precopy_round(task.destination,
                                                       record.options.policy);
    if (!round.ok()) {
      migration::MigrationStartResult failure;
      failure.status = round.status();
      failure.failure_class =
          migration::classify_migration_failure(round.status());
      failure.message = "pre-copy round: " +
                        std::string(status_name(round.status()));
      return failure;
    }
    if (round_hook_) round_hook_(task.enclave_id, round.value().round);
    if (round.value().converged(options_.precopy)) break;
  }
  return enclave.ecall_migration_finalize_detailed(task.destination,
                                                   record.options.policy);
}

// ----- pipelined engine -----

Duration Orchestrator::next_slot_time() {
  Duration ready = lanes_ != nullptr ? lanes_->control() : now();
  if (!released_slots_.empty()) {
    // Every capacity decrement (restore completion OR source failure)
    // records WHEN its slot freed, and every admission takes over the
    // earliest-freed one: the cap is a TIME constraint, not just a
    // count.  (A pipeline that never saturated pops a release it did
    // not strictly need — still bounded by a real event, and exact in
    // the saturated regime the cap sweep measures.)
    ready = std::max(ready, released_slots_.front());
    released_slots_.erase(released_slots_.begin());
  }
  return ready;
}

void Orchestrator::release_slot(Duration freed_at) {
  released_slots_.insert(std::upper_bound(released_slots_.begin(),
                                          released_slots_.end(), freed_at),
                         freed_at);
}

void Orchestrator::pipelined_source_failure(
    Task& task, const migration::MigrationStartResult& result,
    Duration freed_at) {
  --inflight_total_;
  --inflight_per_machine_[task.source];
  release_destination(task.destination);
  // The failing task's slot frees at the lane instant the failure was
  // observed, not at some unrelated restore's completion.
  release_slot(freed_at);
  log(task, EventKind::kStartFailed,
      std::string(
          migration::migration_failure_class_name(result.failure_class)) +
          ": " + result.message);
  handle_failure(task, result.status, result.failure_class, result.message,
                 /*destination_specific=*/true);
}

void Orchestrator::mark_started(Task& task,
                                migration::MigratableEnclave& enclave,
                                Duration ready_at) {
  set_phase(task, TaskPhase::kStarted);
  task.ready_at = ready_at;
  task.freeze_window = enclave.last_freeze_window();
  task.enqueue_wait = enclave.last_enqueue_wait();
  task.precopy_rounds = enclave.last_precopy_rounds();
  task.transfer_bytes = enclave.last_transfer_bytes();
  log(task, EventKind::kStartOk, task.destination);
}

void Orchestrator::start_pipelined(Task& task,
                                   migration::MigratableEnclave& enclave,
                                   const EnclaveRecord& record) {
  const Duration ready = std::max(next_slot_time(), task.retry_at);
  const bool precopy = options_.transfer_mode == TransferMode::kPrecopy &&
                       enclave.live_transfer_capable();
  if (precopy) {
    if (enclave.migration_frozen()) {
      // Frozen with the finalize staged (lost accept reply): resume the
      // finalize directly — rounds are impossible and unnecessary.
      migration::MigrationStartResult result;
      const Duration end = lanes_->run(task.source, ready, [&] {
        result = enclave.ecall_migration_finalize_detailed(
            task.destination, record.options.policy);
      });
      task.ready_at = end;
      if (result.status == Status::kMigrationInProgress &&
          result.failure_class == migration::MigrationFailureClass::kNone) {
        // Async source ME queued the re-driven finalize too.
        set_phase(task, TaskPhase::kTransferring);
      } else if (result.ok()) {
        mark_started(task, enclave, end);
      } else {
        pipelined_source_failure(task, result, end);
      }
      return;
    }
    set_phase(task, TaskPhase::kPrecopying);
    task.ready_at = ready;
    return;  // rounds advance one per wave, interleaved across tasks
  }
  // Full snapshot: non-blocking enqueue at the source ME; the transfer
  // itself runs behind the pump, and poll_transferring learns its fate.
  // Freeze-aware: reserve instead — the enclave keeps serving until the
  // slot-live poll freezes it, so the freeze window no longer absorbs
  // the queue wait.
  migration::MigrationStartResult result;
  const Duration end = lanes_->run(task.source, ready, [&] {
    result = options_.freeze_aware
                 ? enclave.ecall_migration_reserve_detailed(
                       task.destination, record.options.policy)
                 : enclave.ecall_migration_enqueue_detailed(
                       task.destination, record.options.policy);
  });
  if (!result.ok()) {
    pipelined_source_failure(task, result, end);
    return;
  }
  set_phase(task, TaskPhase::kTransferring);
  task.ready_at = end;
}

void Orchestrator::poll_transferring(Task& task) {
  migration::MigratableEnclave* enclave = fleet_.enclave(task.enclave_id);
  migration::MigrationStartResult result;
  const Duration end =
      lanes_->run(task.source, std::max(task.ready_at, lanes_->control()),
                  [&] { result = enclave->ecall_migration_poll_transfer(); });
  task.ready_at = end;
  if (result.status == Status::kMigrationInProgress &&
      result.failure_class == migration::MigrationFailureClass::kNone) {
    return;  // still in flight; pump and poll again next wave
  }
  if (result.ok()) {
    mark_started(task, *enclave, end);
    return;
  }
  pipelined_source_failure(task, result, end);
}

void Orchestrator::advance_precopy(Task& task) {
  migration::MigratableEnclave* enclave = fleet_.enclave(task.enclave_id);
  const EnclaveRecord* record = fleet_.find(task.enclave_id);
  migration::MigrationStartResult result;
  bool terminal = false;
  const Duration end = lanes_->run(
      task.source, std::max(task.ready_at, lanes_->control()), [&] {
        if (enclave->migration_frozen()) {
          result = enclave->ecall_migration_finalize_detailed(
              task.destination, record->options.policy);
          terminal = true;
          return;
        }
        auto round = enclave->ecall_migration_precopy_round(
            task.destination, record->options.policy);
        if (!round.ok()) {
          result.status = round.status();
          result.failure_class =
              migration::classify_migration_failure(round.status());
          result.message = "pre-copy round: " +
                           std::string(status_name(round.status()));
          terminal = true;
          return;
        }
        if (round_hook_) round_hook_(task.enclave_id, round.value().round);
        if (round.value().converged(options_.precopy)) {
          result = enclave->ecall_migration_finalize_detailed(
              task.destination, record->options.policy);
          terminal = true;
        }
      });
  task.ready_at = end;
  if (!terminal) return;  // next round next wave
  if (result.status == Status::kMigrationInProgress &&
      result.failure_class == migration::MigrationFailureClass::kNone) {
    // Async source ME queued the finalize: the record ships behind the
    // pump and the poll machinery owns the outcome from here.
    set_phase(task, TaskPhase::kTransferring);
    return;
  }
  if (result.ok()) {
    mark_started(task, *enclave, end);
  } else {
    pipelined_source_failure(task, result, end);
  }
}

void Orchestrator::complete(Task& task) {
  const Status status = fleet_.complete_move(task.enclave_id,
                                             task.destination);
  --inflight_total_;
  --inflight_per_machine_[task.source];
  release_destination(task.destination);
  if (status == Status::kOk) {
    set_phase(task, TaskPhase::kDone);
    task.finished_at = now();
    log(task, EventKind::kRestored, task.destination);
    log(task, EventKind::kDone,
        task.source + " -> " + task.destination);
    return;
  }
  task.transfer_done = true;  // the data still sits at the destination ME
  handle_failure(task, status, migration::classify_migration_failure(status),
                 "restoring on destination: " +
                     std::string(status_name(status)),
                 /*destination_specific=*/false);
}

void Orchestrator::handle_failure(Task& task, Status status,
                                  MigrationFailureClass cls,
                                  const std::string& message,
                                  bool destination_specific) {
  task.last_status = status;
  task.last_class = cls;
  task.last_message = message;
  // A policy denial is fatal only for THAT destination: the source ME
  // evaluated the enclave's policy against this machine's certified
  // attributes.  The library keeps the staged data precisely so the
  // caller can retry toward another destination (§V-D), so re-select —
  // with the denied machine hard-excluded — instead of stranding a
  // frozen enclave while an eligible destination exists.
  const bool policy_denied_destination =
      cls == MigrationFailureClass::kFatalPolicy && destination_specific &&
      task.fixed_destination.empty();
  const bool retryable =
      (migration::migration_failure_is_retryable(cls) ||
       policy_denied_destination) &&
      task.attempts < options_.max_attempts;
  if (!retryable) {
    fail_task(task);
    return;
  }
  if (destination_specific && task.fixed_destination.empty() &&
      !task.destination.empty()) {
    if (policy_denied_destination) {
      // Hard exclusion: the certified attributes will not change.
      if (std::find(task.forbidden.begin(), task.forbidden.end(),
                    task.destination) == task.forbidden.end()) {
        task.forbidden.push_back(task.destination);
      }
    } else if (std::find(task.failed_destinations.begin(),
                         task.failed_destinations.end(),
                         task.destination) ==
               task.failed_destinations.end()) {
      // Prefer another machine on the next attempt; soft exclusion, so a
      // fleet with no alternative still retries this one.
      task.failed_destinations.push_back(task.destination);
    }
  }
  const uint32_t exponent = task.attempts > 0 ? task.attempts - 1 : 0;
  const Duration backoff = options_.retry_backoff * (1u << exponent);
  task.retry_at = now() + backoff;
  set_phase(task, TaskPhase::kBackoff);
  log(task, EventKind::kBackoff,
      "retry at " + std::to_string(to_seconds(task.retry_at)) + "s");
}

void Orchestrator::fail_task(Task& task) {
  set_phase(task, TaskPhase::kFailed);
  task.finished_at = now();
  log(task, EventKind::kFailed,
      std::string(migration::migration_failure_class_name(task.last_class)) +
          ": " + task.last_message);
}

// ----- wave drivers -----
//
// Both drivers run the same wave skeleton — admission, (pipelined) pump +
// pre-copy advances + polls, completions, backoff stall-jump — through
// the same admit/poll/complete primitives; they differ ONLY in which
// tasks and machines each wave VISITS.  The legacy loop scans every task
// and every machine every wave (O(tasks) per wave even when one enclave
// is in flight); the event-driven loop walks the phase sets, the
// per-source ready index, and the lane-event kick set, so a wave costs
// work proportional to what actually happened.  The visit ORDER within a
// wave is ascending task index / machine creation order in both, which
// is why the two produce bit-identical reports (enforced by
// test_event_driver.cpp and the fleet-scale bench gate).

void Orchestrator::run_legacy_loop(net::Network& net) {
  auto unfinished = [&] {
    return std::any_of(tasks_.begin(), tasks_.end(), [](const Task& t) {
      return t.phase != TaskPhase::kDone && t.phase != TaskPhase::kFailed;
    });
  };

  uint32_t wave = 0;
  uint32_t stalled_waves = 0;
  while (unfinished()) {
    if (wave_hook_) {
      wave_hook_(wave);
      // Chaos hooks (ME kills/restarts) charge the clock at control
      // level; fold that into the control instant so lane runs do not
      // discard it.
      if (lanes_ != nullptr) lanes_->sync_control_from_clock();
    }
    ++wave;
    ++stats_.waves;
    bool progressed = false;

    // Admission wave: start every ready task the caps allow.  Started
    // tasks stay in flight (data pending at their destination MEs) until
    // the completion wave below, so the in-flight gauges genuinely
    // overlap up to the caps.
    for (Task& task : tasks_) {
      ++stats_.task_touches;
      const bool ready =
          task.phase == TaskPhase::kQueued ||
          (task.phase == TaskPhase::kBackoff && task.retry_at <= now());
      if (!ready) continue;
      ++stats_.admission_checks;
      if (admit_and_start(task)) progressed = true;
    }

    if (lanes_ != nullptr) {
      // Pump wave: re-kick source-ME tasks (freshly queued after an ME
      // restart resumes them from the durable queue) and drain the
      // deferred deliveries — every in-flight ME<->ME conversation
      // advances, interleaved across lanes.
      for (platform::Machine* m : machines_) {
        auto* me = migration::me_on(*m);
        if (me == nullptr || (me->transfer_task_count() == 0 &&
                              me->precopy_outgoing_count() == 0)) {
          continue;  // async pre-copy ships also need the pump re-kick
        }
        ++stats_.pump_kicks;
        lanes_->run(m->address(), lanes_->control(), [&] { me->pump(); });
      }
      if (net.pump_all() > 0) progressed = true;

      for (Task& task : tasks_) {
        ++stats_.task_touches;
        if (task.phase == TaskPhase::kPrecopying) {
          advance_precopy(task);
          progressed = true;
        }
      }
      for (Task& task : tasks_) {
        ++stats_.task_touches;
        if (task.phase != TaskPhase::kTransferring) continue;
        poll_transferring(task);
        if (task.phase != TaskPhase::kTransferring) progressed = true;
      }
    }

    // Completion wave: restore every in-flight migration on its
    // destination.  Pipelined restores run on the DESTINATION lane —
    // restores toward different machines overlap with each other and
    // with the source lane still streaming the next transfers.
    for (Task& task : tasks_) {
      ++stats_.task_touches;
      if (task.phase != TaskPhase::kStarted) continue;
      if (lanes_ != nullptr) {
        const Duration end = lanes_->run(
            task.destination, std::max(task.ready_at, lanes_->control()),
            [&] { complete(task); });
        release_slot(end);
      } else {
        complete(task);
      }
      progressed = true;
    }

    if (progressed) {
      stalled_waves = 0;
      continue;
    }
    // Everything left is backing off (or, pipelined, awaiting a pump that
    // produced nothing): jump the virtual clock to the earliest retry
    // instead of spinning.
    Duration earliest = Duration::max();
    for (const Task& task : tasks_) {
      if (task.phase == TaskPhase::kBackoff) {
        earliest = std::min(earliest, task.retry_at);
      }
    }
    if (earliest == Duration::max()) {
      // Pipelined in-flight tasks with nothing pumpable resolve at the
      // next poll; give them bounded slack before declaring a wedge.
      if (lanes_ != nullptr && ++stalled_waves < 64) continue;
      break;  // defensive: nothing to wait on
    }
    if (lanes_ != nullptr) {
      lanes_->advance_control(earliest);
    } else {
      VirtualClock& clock = fleet_.world().clock();
      if (earliest > clock.now()) clock.advance(earliest - clock.now());
    }
  }
}

bool Orchestrator::event_admission_pass() {
  ripen_backoffs(now(), nullptr);
  // Saturated fleet: the legacy scan would refuse every ready task with
  // no side effects, so the whole pass can be skipped.
  if (inflight_total_ >= options_.max_inflight_total) return false;

  // Merge the per-source ready sets into one ascending-index stream so
  // candidates are processed in exactly the legacy scan order, while a
  // saturated source contributes nothing (its candidates would all be
  // refused without side effects — only a source's OWN admissions can
  // change its gauge mid-pass, so saturation holds for the whole pass).
  using Entry = std::pair<uint32_t, const std::string*>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> merge;
  for (const auto& [source, ready] : ready_by_source_) {
    if (ready.empty()) continue;
    if (inflight_per_machine_[source] >= options_.max_inflight_per_machine) {
      continue;
    }
    merge.push({*ready.begin(), &source});
  }

  bool progressed = false;
  uint32_t pass_pos = 0;  // next global index the scan may still visit
  std::vector<uint32_t> newly;
  while (!merge.empty()) {
    // Once the fleet-wide cap is hit mid-pass nothing can release it
    // before the pass ends (releases require processing, which the cap
    // now refuses), so the legacy scan's remaining visits are all
    // side-effect-free refusals.
    if (inflight_total_ >= options_.max_inflight_total) break;
    const auto [idx0, source] = merge.top();
    merge.pop();
    auto sit = ready_by_source_.find(*source);
    if (sit == ready_by_source_.end()) continue;
    if (inflight_per_machine_[*source] >= options_.max_inflight_per_machine) {
      continue;  // saturated for the rest of the pass (see above)
    }
    // Validate against the live ready set: the entry may be stale
    // (admitted via a duplicate, or refused earlier this pass — a
    // refused candidate keeps its ready slot but is not revisited until
    // the next wave, exactly like the one-directional legacy scan).
    const auto it = sit->second.lower_bound(std::max(idx0, pass_pos));
    if (it == sit->second.end()) continue;
    if (*it != idx0) {
      merge.push({*it, source});
      continue;
    }
    pass_pos = idx0 + 1;
    ++stats_.task_touches;
    ++stats_.admission_checks;
    if (admit_and_start(tasks_[idx0])) progressed = true;
    // Blocking (non-pipelined) admissions advance the clock: tasks later
    // in the scan may ripen mid-pass, exactly as the legacy loop sees
    // them at visit time.  Earlier indices ripen into the ready set for
    // the NEXT wave only — the lower_bound(pass_pos) above skips them.
    newly.clear();
    ripen_backoffs(now(), &newly);
    for (const uint32_t ripe : newly) {
      const Task& t = tasks_[ripe];
      if (inflight_per_machine_[t.source] <
          options_.max_inflight_per_machine) {
        merge.push({ripe, &ready_by_source_.find(t.source)->first});
      }
    }
    // Re-arm this source's next candidate at or past the scan position.
    const auto next = sit->second.lower_bound(pass_pos);
    if (next != sit->second.end()) merge.push({*next, source});
  }
  return progressed;
}

void Orchestrator::run_event_loop(net::Network& net) {
  uint32_t wave = 0;
  uint32_t stalled_waves = 0;
  std::vector<uint32_t> snapshot;
  while (unfinished_count_ > 0) {
    if (wave_hook_) {
      wave_hook_(wave);
      if (lanes_ != nullptr) lanes_->sync_control_from_clock();
    }
    ++wave;
    ++stats_.waves;
    bool progressed = false;

    if (event_admission_pass()) progressed = true;

    if (lanes_ != nullptr) {
      // Pump wave, event-driven: a machine needs a kick only if its lane
      // ran since it was last pumped (enqueues, deliveries, restores and
      // pumps all run on lanes, so any ME that gained or still has work
      // has a lane event behind it).  Candidates leave the set the first
      // wave their ME has nothing queued.  Hooks can revive MEs with no
      // lane traffic of their own (mid-plan restarts), so hooked runs
      // fall back to the legacy full scan.
      for (const auto& event : lanes_->take_lane_events()) {
        const auto it = machine_index_.find(event.lane);
        if (it != machine_index_.end()) kick_candidates_.insert(it->second);
      }
      if (wave_hook_ || round_hook_) {
        for (platform::Machine* m : machines_) {
          auto* me = migration::me_on(*m);
          if (me == nullptr || (me->transfer_task_count() == 0 &&
                                me->precopy_outgoing_count() == 0)) {
            continue;
          }
          ++stats_.pump_kicks;
          lanes_->run(m->address(), lanes_->control(), [&] { me->pump(); });
        }
      } else {
        snapshot.assign(kick_candidates_.begin(), kick_candidates_.end());
        for (const uint32_t idx : snapshot) {
          auto* me = migration::me_on(*machines_[idx]);
          if (me == nullptr || (me->transfer_task_count() == 0 &&
                                me->precopy_outgoing_count() == 0)) {
            kick_candidates_.erase(idx);
            continue;
          }
          ++stats_.pump_kicks;
          lanes_->run(machines_[idx]->address(), lanes_->control(),
                      [&] { me->pump(); });
        }
      }
      if (net.pump_all() > 0) progressed = true;

      // Pre-copy advances, then polls: snapshots in ascending index order
      // replicate the legacy full scans (one task's advance/poll never
      // changes another task's phase), and taking the poll snapshot
      // AFTER the advances lets a just-finalized pre-copy be polled in
      // the same wave, as the legacy re-scan would.
      snapshot.assign(precopying_.begin(), precopying_.end());
      for (const uint32_t idx : snapshot) {
        Task& task = tasks_[idx];
        if (task.phase != TaskPhase::kPrecopying) continue;
        ++stats_.task_touches;
        advance_precopy(task);
        progressed = true;
      }
      snapshot.assign(transferring_.begin(), transferring_.end());
      for (const uint32_t idx : snapshot) {
        Task& task = tasks_[idx];
        if (task.phase != TaskPhase::kTransferring) continue;
        ++stats_.task_touches;
        poll_transferring(task);
        if (task.phase != TaskPhase::kTransferring) progressed = true;
      }
    }

    // Completion wave over the started set (snapshot taken after the
    // polls so a transfer that completed its source side this wave
    // restores this wave, like the legacy re-scan).
    snapshot.assign(started_.begin(), started_.end());
    for (const uint32_t idx : snapshot) {
      Task& task = tasks_[idx];
      if (task.phase != TaskPhase::kStarted) continue;
      ++stats_.task_touches;
      if (lanes_ != nullptr) {
        const Duration end = lanes_->run(
            task.destination, std::max(task.ready_at, lanes_->control()),
            [&] { complete(task); });
        release_slot(end);
      } else {
        complete(task);
      }
      progressed = true;
    }

    if (progressed) {
      stalled_waves = 0;
      continue;
    }
    // Stall: jump to the earliest pending retry — the heap holds the
    // unripe backoffs, the ripe map the ripened-but-capacity-blocked
    // ones (whose retry times are already in the past, making the jump a
    // no-op exactly as in the legacy scan).
    Duration earliest = Duration::max();
    if (!backoff_heap_.empty()) {
      earliest = backoff_heap_.top().first;
    }
    for (const auto& [idx, retry_at] : ripe_backoff_) {
      earliest = std::min(earliest, retry_at);
    }
    if (earliest == Duration::max()) {
      if (lanes_ != nullptr && ++stalled_waves < 64) continue;
      break;  // defensive: nothing to wait on
    }
    if (lanes_ != nullptr) {
      lanes_->advance_control(earliest);
    } else {
      VirtualClock& clock = fleet_.world().clock();
      if (earliest > clock.now()) clock.advance(earliest - clock.now());
    }
  }
}

OrchestratorReport Orchestrator::execute(const Plan& plan) {
  events_.clear();
  events_dropped_ = 0;
  inflight_per_machine_.clear();
  inflight_to_destination_.clear();
  inflight_total_ = 0;
  peak_inflight_total_ = 0;
  peak_inflight_per_machine_.clear();
  released_slots_.clear();
  scheduler_.clear_reservations();
  ready_by_source_.clear();
  backoff_heap_ = {};
  ripe_backoff_.clear();
  transferring_.clear();
  precopying_.clear();
  started_.clear();
  kick_candidates_.clear();
  stats_ = {};
  machines_ = fleet_.world().machines();
  machine_index_.clear();
  for (size_t i = 0; i < machines_.size(); ++i) {
    machine_index_[machines_[i]->address()] = static_cast<uint32_t>(i);
  }

  OrchestratorReport report;
  report.plan = plan.kind;
  report.started_at = now();

  // Pipelined engine: per-machine lanes over the shared clock, with the
  // deferred-delivery pump attributed to them.  Scoped to this execute():
  // the LaneSchedule destructor lands the clock on the parallel horizon,
  // so a stopwatch around execute() reads max-over-lanes wall time.
  net::Network& net = fleet_.world().network();
  std::optional<LaneSchedule> lanes;
  if (options_.pipelined) {
    lanes.emplace(fleet_.world().clock());
    lanes_ = &*lanes;
    lanes_->set_event_recording(!options_.legacy_wave_loop);
    net.set_lane_schedule(lanes_);
  }

  tasks_ = build_tasks(plan);
  unfinished_count_ = tasks_.size();
  for (uint32_t i = 0; i < tasks_.size(); ++i) {
    ready_by_source_[tasks_[i].source].insert(i);
  }
  if (lanes_ != nullptr && !options_.legacy_wave_loop) {
    // Seed the kick set with MEs already busy before this plan (durable
    // queues surviving a previous execute); everything after this enters
    // via lane events.
    for (uint32_t i = 0; i < machines_.size(); ++i) {
      auto* me = migration::me_on(*machines_[i]);
      if (me != nullptr && (me->transfer_task_count() > 0 ||
                            me->precopy_outgoing_count() > 0)) {
        kick_candidates_.insert(i);
      }
    }
  }

  if (options_.legacy_wave_loop) {
    run_legacy_loop(net);
  } else {
    run_event_loop(net);
  }

  if (options_.pipelined) {
    lanes_->set_event_recording(false);
    net.set_lane_schedule(nullptr);
    lanes_ = nullptr;
    lanes.reset();  // clock lands on the parallel horizon
  }
  report.finished_at = now();
  report.peak_inflight_total = peak_inflight_total_;
  report.peak_inflight_per_machine = peak_inflight_per_machine_;
  report.events.assign(events_.begin(), events_.end());
  report.events_dropped = events_dropped_;
  for (const Task& task : tasks_) {
    MigrationRecord record;
    record.enclave_id = task.enclave_id;
    record.name = task.name;
    record.source = task.source;
    record.destination = task.destination;
    record.attempts = task.attempts;
    record.success = task.phase == TaskPhase::kDone;
    record.final_status = task.last_status;
    record.failure_class = task.last_class;
    record.failure_message = task.last_message;
    record.planned_at = task.planned_at;
    record.admitted_at = task.admitted_at;
    record.finished_at = task.finished_at;
    record.freeze_window = task.freeze_window;
    record.enqueue_wait = task.enqueue_wait;
    record.precopy_rounds = task.precopy_rounds;
    record.transfer_bytes = task.transfer_bytes;
    report.migrations.push_back(std::move(record));
  }
  report.freeze_budget = options_.freeze_budget;
  return report;
}

size_t Orchestrator::control_plane_bytes() const {
  // Deterministic accounting (container node overhead approximated by a
  // fixed constant) so the scaling bench's memory-per-enclave gate does
  // not depend on the allocator.
  constexpr size_t kNode = 48;
  size_t bytes = tasks_.capacity() * sizeof(Task);
  for (const Task& task : tasks_) {
    bytes += task.name.size() + task.source.size() +
             task.fixed_destination.size() + task.destination.size() +
             task.last_message.size();
    for (const auto& s : task.forbidden) bytes += s.size() + sizeof(s);
    for (const auto& s : task.forbidden_regions) bytes += s.size() + sizeof(s);
    for (const auto& s : task.failed_destinations) {
      bytes += s.size() + sizeof(s);
    }
  }
  bytes += events_.size() * sizeof(OrchestratorEvent);
  for (const auto& event : events_) bytes += event.detail.size();
  const auto gauge_bytes = [&](const std::map<std::string, uint32_t>& m) {
    size_t b = 0;
    for (const auto& [key, value] : m) b += key.size() + sizeof(value) + kNode;
    return b;
  };
  bytes += gauge_bytes(inflight_per_machine_);
  bytes += gauge_bytes(inflight_to_destination_);
  bytes += gauge_bytes(peak_inflight_per_machine_);
  bytes += released_slots_.capacity() * sizeof(Duration);
  for (const auto& [source, ready] : ready_by_source_) {
    bytes += source.size() + kNode + ready.size() * (sizeof(uint32_t) + kNode);
  }
  bytes += backoff_heap_.size() * sizeof(std::pair<Duration, uint32_t>);
  bytes += ripe_backoff_.size() *
           (sizeof(uint32_t) + sizeof(Duration) + kNode);
  bytes += (transferring_.size() + precopying_.size() + started_.size() +
            kick_candidates_.size()) *
           (sizeof(uint32_t) + kNode);
  bytes += machines_.capacity() * sizeof(platform::Machine*);
  for (const auto& [address, idx] : machine_index_) {
    bytes += address.size() + sizeof(idx) + kNode;
  }
  return bytes;
}

}  // namespace sgxmig::orchestrator

#include "orchestrator/report.h"

#include <algorithm>
#include <cstdio>

#include "support/json.h"
#include "support/stats.h"

namespace sgxmig::orchestrator {

const char* plan_kind_name(PlanKind kind) {
  switch (kind) {
    case PlanKind::kDrainMachine: return "drain-machine";
    case PlanKind::kEvacuateRegion: return "evacuate-region";
    case PlanKind::kRebalance: return "rebalance";
    case PlanKind::kTargetedMove: return "targeted-move";
  }
  return "unknown";
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kPlanned: return "planned";
    case EventKind::kAdmitted: return "admitted";
    case EventKind::kStartOk: return "start-ok";
    case EventKind::kStartFailed: return "start-failed";
    case EventKind::kBackoff: return "backoff";
    case EventKind::kRestored: return "restored";
    case EventKind::kDone: return "done";
    case EventKind::kFailed: return "failed";
  }
  return "unknown";
}

size_t OrchestratorReport::succeeded() const {
  size_t n = 0;
  for (const auto& m : migrations) n += m.success ? 1 : 0;
  return n;
}

size_t OrchestratorReport::failed() const {
  return migrations.size() - succeeded();
}

uint32_t OrchestratorReport::total_retries() const {
  uint32_t n = 0;
  for (const auto& m : migrations) {
    if (m.attempts > 1) n += m.attempts - 1;
  }
  return n;
}

double OrchestratorReport::mean_latency_seconds() const {
  if (migrations.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : migrations) sum += to_seconds(m.latency());
  return sum / static_cast<double>(migrations.size());
}

double OrchestratorReport::max_latency_seconds() const {
  double max = 0.0;
  for (const auto& m : migrations) {
    const double s = to_seconds(m.latency());
    if (s > max) max = s;
  }
  return max;
}

double OrchestratorReport::mean_freeze_window_seconds() const {
  double sum = 0.0;
  size_t n = 0;
  for (const auto& m : migrations) {
    if (!m.success) continue;
    sum += to_seconds(m.freeze_window);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double OrchestratorReport::max_freeze_window_seconds() const {
  double max = 0.0;
  for (const auto& m : migrations) {
    if (!m.success) continue;
    const double s = to_seconds(m.freeze_window);
    if (s > max) max = s;
  }
  return max;
}

double OrchestratorReport::freeze_window_percentile_seconds(double p) const {
  std::vector<double> samples;
  for (const auto& m : migrations) {
    if (m.success) samples.push_back(to_seconds(m.freeze_window));
  }
  return percentile_nearest_rank(std::move(samples), p);
}

double OrchestratorReport::enqueue_wait_percentile_seconds(double p) const {
  std::vector<double> samples;
  for (const auto& m : migrations) {
    if (m.success) samples.push_back(to_seconds(m.enqueue_wait));
  }
  return percentile_nearest_rank(std::move(samples), p);
}

size_t OrchestratorReport::freeze_budget_violations() const {
  if (freeze_budget == Duration{}) return 0;
  size_t n = 0;
  for (const auto& m : migrations) {
    if (m.success && m.freeze_window > freeze_budget) ++n;
  }
  return n;
}

namespace {

void append_number(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out += buf;
}

void append_number(std::string& out, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

std::string OrchestratorReport::to_json(bool include_events) const {
  std::string out = "{\"plan\": ";
  append_json_string(out, plan_kind_name(plan));
  out += ", \"wall_seconds\": ";
  append_number(out, to_seconds(wall()));
  out += ", \"succeeded\": ";
  append_number(out, static_cast<uint64_t>(succeeded()));
  out += ", \"failed\": ";
  append_number(out, static_cast<uint64_t>(failed()));
  out += ", \"total_retries\": ";
  append_number(out, static_cast<uint64_t>(total_retries()));
  out += ", \"peak_inflight_total\": ";
  append_number(out, static_cast<uint64_t>(peak_inflight_total));
  out += ", \"mean_latency_seconds\": ";
  append_number(out, mean_latency_seconds());
  out += ", \"max_latency_seconds\": ";
  append_number(out, max_latency_seconds());
  out += ", \"mean_freeze_window_seconds\": ";
  append_number(out, mean_freeze_window_seconds());
  out += ", \"max_freeze_window_seconds\": ";
  append_number(out, max_freeze_window_seconds());
  out += ", \"p50_freeze_window_seconds\": ";
  append_number(out, freeze_window_percentile_seconds(50.0));
  out += ", \"p99_freeze_window_seconds\": ";
  append_number(out, freeze_window_percentile_seconds(99.0));
  out += ", \"p50_enqueue_wait_seconds\": ";
  append_number(out, enqueue_wait_percentile_seconds(50.0));
  out += ", \"p99_enqueue_wait_seconds\": ";
  append_number(out, enqueue_wait_percentile_seconds(99.0));
  out += ", \"freeze_budget_seconds\": ";
  append_number(out, to_seconds(freeze_budget));
  out += ", \"freeze_budget_violations\": ";
  append_number(out, static_cast<uint64_t>(freeze_budget_violations()));

  out += ", \"peak_inflight_per_machine\": {";
  bool first = true;
  for (const auto& [machine, peak] : peak_inflight_per_machine) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, machine);
    out += ": ";
    append_number(out, static_cast<uint64_t>(peak));
  }
  out += "}";

  out += ", \"migrations\": [";
  first = true;
  for (const auto& m : migrations) {
    if (!first) out += ", ";
    first = false;
    out += "{\"enclave_id\": ";
    append_number(out, m.enclave_id);
    out += ", \"name\": ";
    append_json_string(out, m.name);
    out += ", \"source\": ";
    append_json_string(out, m.source);
    out += ", \"destination\": ";
    append_json_string(out, m.destination);
    out += ", \"attempts\": ";
    append_number(out, static_cast<uint64_t>(m.attempts));
    out += ", \"success\": ";
    out += m.success ? "true" : "false";
    out += ", \"latency_seconds\": ";
    append_number(out, to_seconds(m.latency()));
    out += ", \"freeze_window_seconds\": ";
    append_number(out, to_seconds(m.freeze_window));
    out += ", \"enqueue_wait_seconds\": ";
    append_number(out, to_seconds(m.enqueue_wait));
    out += ", \"precopy_rounds\": ";
    append_number(out, static_cast<uint64_t>(m.precopy_rounds));
    out += ", \"transfer_bytes\": ";
    append_number(out, m.transfer_bytes);
    if (!m.success) {
      out += ", \"status\": ";
      append_json_string(out, std::string(status_name(m.final_status)));
      out += ", \"failure_class\": ";
      append_json_string(
          out, migration::migration_failure_class_name(m.failure_class));
      out += ", \"message\": ";
      append_json_string(out, m.failure_message);
    }
    out += "}";
  }
  out += "]";

  if (include_events) {
    out += ", \"events\": [";
    first = true;
    for (const auto& e : events) {
      if (!first) out += ", ";
      first = false;
      out += "{\"t\": ";
      append_number(out, to_seconds(e.at));
      out += ", \"enclave_id\": ";
      append_number(out, e.enclave_id);
      out += ", \"kind\": ";
      append_json_string(out, event_kind_name(e.kind));
      out += ", \"detail\": ";
      append_json_string(out, e.detail);
      out += "}";
    }
    out += "]";
  }
  if (events_dropped > 0) {
    out += ", \"events_dropped\": ";
    append_number(out, events_dropped);
  }

  if (!chaos_stats.empty()) {
    out += ", \"chaos\": {";
    first = true;
    for (const auto& [key, value] : chaos_stats) {
      if (!first) out += ", ";
      first = false;
      append_json_string(out, key);
      out += ": ";
      append_number(out, value);
    }
    out += "}";
  }

  if (!metrics_json.empty()) {
    out += ", \"metrics\": ";
    out += metrics_json;
  }
  out += "}";
  return out;
}

}  // namespace sgxmig::orchestrator

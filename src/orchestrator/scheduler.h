// Destination selection for fleet migrations.
//
// A PlacementPolicy ranks candidate destination machines for one enclave
// about to leave its source; the Scheduler applies the hard constraints
// (never the source, never a plan-forbidden machine) and hands the
// survivors to the policy.  Policies see only platform-level queries
// (Machine::enclave_load, Machine::region) plus the registry's
// anti-affinity lookup, so new policies need no orchestrator internals.
//
// Built-in policies:
//   * least-loaded       — fewest enclaves (registry count + in-flight
//                          reservations) first; ties broken by address.
//   * same-region-first  — destinations sharing the source's region
//                          first, least-loaded within each group.
//   * anti-affinity      — machines NOT already hosting an enclave of the
//                          same MRENCLAVE first (spread replicas of one
//                          app), least-loaded within each group.
//   * capacity-weighted  — load is divided by the machine's certified
//                          cpu_cores (the attribute the provider CA signs
//                          into its credential), so a 32-core machine
//                          absorbs twice the enclaves of a 16-core one
//                          before ranking equal.
//
// Policies COMPOSE: every policy exposes its judgment as a small
// preference bucket plus a load weight, and make_composite_policy stacks
// them lexicographically — e.g. {same-region-first, anti-affinity,
// capacity-weighted} prefers in-region machines, spreads replicas within
// the region, and breaks remaining ties by certified per-core headroom.
//
// All orderings are total and deterministic, so fleet runs reproduce
// exactly per seed.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "orchestrator/fleet_registry.h"

namespace sgxmig::orchestrator {

struct PlacementQuery {
  /// Machine the enclave is leaving (never selected).
  std::string source;
  /// Hard exclusions (e.g. every machine of an evacuating region).
  std::vector<std::string> excluded;
  /// Hard exclusion of whole regions — one region name instead of
  /// enumerating its machines, so a region evacuation at 1000 machines
  /// does not drag a 100-entry exclusion list through every pick.
  std::vector<std::string> excluded_regions;
  /// Soft exclusions: destinations that already failed for this
  /// migration.  Ranked last rather than dropped, so a fleet with no
  /// other options can still retry them once the interference clears.
  std::vector<std::string> avoid;
  /// In-flight migrations already headed to each machine (reservations
  /// the registry cannot see yet).  Added to the registry load.
  std::map<std::string, uint32_t> reserved;
  /// Identity of the enclave being placed (anti-affinity).
  const sgx::EnclaveImage* image = nullptr;
};

/// Which incrementally-maintained index (if any) can answer
/// pick_destination for a policy without ranking every machine.  A policy
/// advertising a mode MUST order identically to its brute-force rank();
/// the determinism tests in test_event_driver.cpp enforce this.
enum class PlacementIndexMode : uint8_t {
  kNone = 0,         // arbitrary rank(): full scan required
  kLeastLoaded = 1,  // order by (effective load, address)
  kHierarchical = 2, // region by aggregate occupancy/cores, then
                     // capacity-weighted machine within the region
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;

  /// Index the Scheduler may use for pick_destination.  kNone (default)
  /// keeps the full-scan path.
  virtual PlacementIndexMode index_mode() const {
    return PlacementIndexMode::kNone;
  }

  /// Policy-specific preference bucket for one machine; lower is better.
  /// This is the composable judgment: CompositePolicy sorts by the
  /// stacked policies' buckets lexicographically.
  virtual int preference(const FleetRegistry& fleet,
                         const PlacementQuery& query,
                         const platform::Machine& machine) const {
    (void)fleet;
    (void)query;
    (void)machine;
    return 0;
  }

  /// Load term used after the preference buckets; lower is better.
  /// Defaults to the raw effective load (enclaves + reservations).
  virtual double load_weight(const FleetRegistry& fleet,
                             const PlacementQuery& query,
                             const platform::Machine& machine) const;

  /// Candidate destinations ranked best-first.  `candidates` has the hard
  /// constraints already applied and is non-empty.  The default total
  /// order is (soft-avoided, preference, load_weight, address); override
  /// only for orderings this shape cannot express.
  virtual std::vector<platform::Machine*> rank(
      const FleetRegistry& fleet, const PlacementQuery& query,
      std::vector<platform::Machine*> candidates) const;
};

std::unique_ptr<PlacementPolicy> make_least_loaded_policy();
std::unique_ptr<PlacementPolicy> make_same_region_first_policy();
std::unique_ptr<PlacementPolicy> make_anti_affinity_policy();
std::unique_ptr<PlacementPolicy> make_capacity_weighted_policy();
/// Hierarchical datacenter placement: pick the region with the lowest
/// aggregate occupancy per certified core — computed over ALL machines of
/// the region, so region health is a property of the region, not of the
/// filtered candidate set — then the capacity-weighted machine within it.
/// Ties break by region name, then machine address.  Index-accelerated
/// (PlacementIndexMode::kHierarchical).
std::unique_ptr<PlacementPolicy> make_hierarchical_policy();

/// Stacks policies lexicographically: candidates sort by stage 1's
/// preference bucket first, ties by stage 2's, and so on; the LAST
/// stage's load weight breaks remaining ties (so ending the stack with
/// capacity-weighted makes every earlier policy capacity-aware).
std::unique_ptr<PlacementPolicy> make_composite_policy(
    std::vector<std::unique_ptr<PlacementPolicy>> stages);

class Scheduler {
 public:
  /// `policy` defaults to least-loaded.
  Scheduler(FleetRegistry& fleet,
            std::unique_ptr<PlacementPolicy> policy = nullptr);

  /// Best destination for the query, or kNoEligibleDestination when no
  /// machine survives the hard constraints.  When the policy advertises
  /// an index mode (and the index is enabled, the default), the pick
  /// walks the per-region load gauges — O(regions + skips) — instead of
  /// ranking every machine; the result is identical to the full scan.
  ///
  /// NOTE: the indexed path uses the reservation ledger maintained via
  /// note_reservation() — a per-query map cannot be baked into a
  /// persistent index — so a query with a non-empty `reserved` map falls
  /// back to the full scan.  Ledger users leave the map empty; the
  /// Orchestrator keeps the ledger in sync with its in-flight gauges, so
  /// either path sees the same loads.
  Result<std::string> pick_destination(const PlacementQuery& query) const;

  /// Full ranking (tests and rebalance planning).  Always brute-force.
  std::vector<std::string> rank_destinations(
      const PlacementQuery& query) const;

  const PlacementPolicy& policy() const { return *policy_; }

  // ----- in-flight reservation ledger (indexed picks) -----

  /// Adjusts the in-flight reservation count for `machine` by `delta`
  /// (the indexed analog of PlacementQuery::reserved).
  void note_reservation(const std::string& machine, int32_t delta);
  void clear_reservations();

  /// Determinism tests flip this off to force the brute-force path.
  void set_use_index(bool on) { use_index_ = on; }
  /// True when pick_destination will take the indexed path.
  bool index_active() const {
    return use_index_ && policy_->index_mode() != PlacementIndexMode::kNone;
  }

  /// Deterministic byte accounting for the index (control-plane memory
  /// gauge).
  size_t index_bytes() const;

 private:
  struct IndexEntry {
    uint32_t load = 0;      // registry enclave count
    uint32_t reserved = 0;  // ledger reservations
    uint32_t cores = 1;
    std::string region;
  };
  struct RegionShard {
    /// (load + reserved, address) — least-loaded order.
    std::set<std::pair<uint32_t, std::string>> by_load;
    /// ((load + reserved + 1) / cores, address) — capacity-weighted
    /// order.  The double is computed by the same expression as the
    /// brute-force comparator, so the orders agree bit-for-bit.
    std::set<std::pair<double, std::string>> by_weight;
    uint64_t total_load = 0;  // load + reserved over member machines
    uint64_t total_cores = 0;
  };

  void sync_index() const;
  void rebuild_index() const;
  void shard_insert(const std::string& machine, const IndexEntry& entry) const;
  void shard_erase(const std::string& machine, const IndexEntry& entry) const;
  void index_apply_load(const std::string& machine, uint32_t new_load) const;
  /// Indexed pick; empty string when nothing survives the constraints.
  std::string indexed_pick(const PlacementQuery& query,
                           PlacementIndexMode mode) const;

  FleetRegistry& fleet_;
  std::unique_ptr<PlacementPolicy> policy_;
  bool use_index_ = true;
  /// Reservation ledger; survives index rebuilds.
  std::map<std::string, uint32_t> reservations_;

  // Index state is a cache over the registry (synced lazily from its
  // load changelog before every indexed pick), so const picks stay const.
  mutable std::map<std::string, IndexEntry> entries_;
  mutable std::map<std::string, RegionShard> shards_;
  mutable uint64_t load_cursor_ = 0;
  mutable bool index_built_ = false;
};

/// Effective load used by every built-in policy: enclaves the registry
/// places on the machine plus the query's in-flight reservations.
uint32_t effective_load(const FleetRegistry& fleet,
                        const PlacementQuery& query,
                        const platform::Machine& machine);

}  // namespace sgxmig::orchestrator

// Destination selection for fleet migrations.
//
// A PlacementPolicy ranks candidate destination machines for one enclave
// about to leave its source; the Scheduler applies the hard constraints
// (never the source, never a plan-forbidden machine) and hands the
// survivors to the policy.  Policies see only platform-level queries
// (Machine::enclave_load, Machine::region) plus the registry's
// anti-affinity lookup, so new policies need no orchestrator internals.
//
// Built-in policies:
//   * least-loaded       — fewest enclaves (registry count + in-flight
//                          reservations) first; ties broken by address.
//   * same-region-first  — destinations sharing the source's region
//                          first, least-loaded within each group.
//   * anti-affinity      — machines NOT already hosting an enclave of the
//                          same MRENCLAVE first (spread replicas of one
//                          app), least-loaded within each group.
//
// All orderings are total and deterministic, so fleet runs reproduce
// exactly per seed.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "orchestrator/fleet_registry.h"

namespace sgxmig::orchestrator {

struct PlacementQuery {
  /// Machine the enclave is leaving (never selected).
  std::string source;
  /// Hard exclusions (e.g. every machine of an evacuating region).
  std::vector<std::string> excluded;
  /// Soft exclusions: destinations that already failed for this
  /// migration.  Ranked last rather than dropped, so a fleet with no
  /// other options can still retry them once the interference clears.
  std::vector<std::string> avoid;
  /// In-flight migrations already headed to each machine (reservations
  /// the registry cannot see yet).  Added to the registry load.
  std::map<std::string, uint32_t> reserved;
  /// Identity of the enclave being placed (anti-affinity).
  const sgx::EnclaveImage* image = nullptr;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;
  /// Candidate destinations ranked best-first.  `candidates` has the hard
  /// constraints already applied and is non-empty.
  virtual std::vector<platform::Machine*> rank(
      const FleetRegistry& fleet, const PlacementQuery& query,
      std::vector<platform::Machine*> candidates) const = 0;
};

std::unique_ptr<PlacementPolicy> make_least_loaded_policy();
std::unique_ptr<PlacementPolicy> make_same_region_first_policy();
std::unique_ptr<PlacementPolicy> make_anti_affinity_policy();

class Scheduler {
 public:
  /// `policy` defaults to least-loaded.
  Scheduler(FleetRegistry& fleet,
            std::unique_ptr<PlacementPolicy> policy = nullptr);

  /// Best destination for the query, or kNoEligibleDestination when no
  /// machine survives the hard constraints.
  Result<std::string> pick_destination(const PlacementQuery& query) const;

  /// Full ranking (tests and rebalance planning).
  std::vector<std::string> rank_destinations(
      const PlacementQuery& query) const;

  const PlacementPolicy& policy() const { return *policy_; }

 private:
  FleetRegistry& fleet_;
  std::unique_ptr<PlacementPolicy> policy_;
};

/// Effective load used by every built-in policy: enclaves the registry
/// places on the machine plus the query's in-flight reservations.
uint32_t effective_load(const FleetRegistry& fleet,
                        const PlacementQuery& query,
                        const platform::Machine& machine);

}  // namespace sgxmig::orchestrator

// Destination selection for fleet migrations.
//
// A PlacementPolicy ranks candidate destination machines for one enclave
// about to leave its source; the Scheduler applies the hard constraints
// (never the source, never a plan-forbidden machine) and hands the
// survivors to the policy.  Policies see only platform-level queries
// (Machine::enclave_load, Machine::region) plus the registry's
// anti-affinity lookup, so new policies need no orchestrator internals.
//
// Built-in policies:
//   * least-loaded       — fewest enclaves (registry count + in-flight
//                          reservations) first; ties broken by address.
//   * same-region-first  — destinations sharing the source's region
//                          first, least-loaded within each group.
//   * anti-affinity      — machines NOT already hosting an enclave of the
//                          same MRENCLAVE first (spread replicas of one
//                          app), least-loaded within each group.
//   * capacity-weighted  — load is divided by the machine's certified
//                          cpu_cores (the attribute the provider CA signs
//                          into its credential), so a 32-core machine
//                          absorbs twice the enclaves of a 16-core one
//                          before ranking equal.
//
// Policies COMPOSE: every policy exposes its judgment as a small
// preference bucket plus a load weight, and make_composite_policy stacks
// them lexicographically — e.g. {same-region-first, anti-affinity,
// capacity-weighted} prefers in-region machines, spreads replicas within
// the region, and breaks remaining ties by certified per-core headroom.
//
// All orderings are total and deterministic, so fleet runs reproduce
// exactly per seed.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "orchestrator/fleet_registry.h"

namespace sgxmig::orchestrator {

struct PlacementQuery {
  /// Machine the enclave is leaving (never selected).
  std::string source;
  /// Hard exclusions (e.g. every machine of an evacuating region).
  std::vector<std::string> excluded;
  /// Soft exclusions: destinations that already failed for this
  /// migration.  Ranked last rather than dropped, so a fleet with no
  /// other options can still retry them once the interference clears.
  std::vector<std::string> avoid;
  /// In-flight migrations already headed to each machine (reservations
  /// the registry cannot see yet).  Added to the registry load.
  std::map<std::string, uint32_t> reserved;
  /// Identity of the enclave being placed (anti-affinity).
  const sgx::EnclaveImage* image = nullptr;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const char* name() const = 0;

  /// Policy-specific preference bucket for one machine; lower is better.
  /// This is the composable judgment: CompositePolicy sorts by the
  /// stacked policies' buckets lexicographically.
  virtual int preference(const FleetRegistry& fleet,
                         const PlacementQuery& query,
                         const platform::Machine& machine) const {
    (void)fleet;
    (void)query;
    (void)machine;
    return 0;
  }

  /// Load term used after the preference buckets; lower is better.
  /// Defaults to the raw effective load (enclaves + reservations).
  virtual double load_weight(const FleetRegistry& fleet,
                             const PlacementQuery& query,
                             const platform::Machine& machine) const;

  /// Candidate destinations ranked best-first.  `candidates` has the hard
  /// constraints already applied and is non-empty.  The default total
  /// order is (soft-avoided, preference, load_weight, address); override
  /// only for orderings this shape cannot express.
  virtual std::vector<platform::Machine*> rank(
      const FleetRegistry& fleet, const PlacementQuery& query,
      std::vector<platform::Machine*> candidates) const;
};

std::unique_ptr<PlacementPolicy> make_least_loaded_policy();
std::unique_ptr<PlacementPolicy> make_same_region_first_policy();
std::unique_ptr<PlacementPolicy> make_anti_affinity_policy();
std::unique_ptr<PlacementPolicy> make_capacity_weighted_policy();

/// Stacks policies lexicographically: candidates sort by stage 1's
/// preference bucket first, ties by stage 2's, and so on; the LAST
/// stage's load weight breaks remaining ties (so ending the stack with
/// capacity-weighted makes every earlier policy capacity-aware).
std::unique_ptr<PlacementPolicy> make_composite_policy(
    std::vector<std::unique_ptr<PlacementPolicy>> stages);

class Scheduler {
 public:
  /// `policy` defaults to least-loaded.
  Scheduler(FleetRegistry& fleet,
            std::unique_ptr<PlacementPolicy> policy = nullptr);

  /// Best destination for the query, or kNoEligibleDestination when no
  /// machine survives the hard constraints.
  Result<std::string> pick_destination(const PlacementQuery& query) const;

  /// Full ranking (tests and rebalance planning).
  std::vector<std::string> rank_destinations(
      const PlacementQuery& query) const;

  const PlacementPolicy& policy() const { return *policy_; }

 private:
  FleetRegistry& fleet_;
  std::unique_ptr<PlacementPolicy> policy_;
};

/// Effective load used by every built-in policy: enclaves the registry
/// places on the machine plus the query's in-flight reservations.
uint32_t effective_load(const FleetRegistry& fleet,
                        const PlacementQuery& query,
                        const platform::Machine& machine);

}  // namespace sgxmig::orchestrator

#include "orchestrator/scheduler.h"

#include <algorithm>

namespace sgxmig::orchestrator {

namespace {

bool contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

/// Shared comparator scaffold: candidates sort by (avoided, preference
/// vector, load weight, address).  Sort keys are computed once per
/// candidate, not per comparison: effective_load scans the registry.
std::vector<platform::Machine*> rank_by_keys(
    const PlacementQuery& query, std::vector<platform::Machine*> candidates,
    const std::function<std::vector<int>(const platform::Machine&)>& prefs,
    const std::function<double(const platform::Machine&)>& load) {
  struct Keyed {
    int avoided;
    std::vector<int> prefs;
    double load;
    platform::Machine* machine;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(candidates.size());
  for (platform::Machine* m : candidates) {
    keyed.push_back({contains(query.avoid, m->address()) ? 1 : 0, prefs(*m),
                     load(*m), m});
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.avoided != b.avoided) return a.avoided < b.avoided;
                     if (a.prefs != b.prefs) return a.prefs < b.prefs;
                     if (a.load != b.load) return a.load < b.load;
                     return a.machine->address() < b.machine->address();
                   });
  for (size_t i = 0; i < keyed.size(); ++i) candidates[i] = keyed[i].machine;
  return candidates;
}

class LeastLoadedPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "least-loaded"; }
};

class SameRegionFirstPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "same-region-first"; }
  int preference(const FleetRegistry& fleet, const PlacementQuery& query,
                 const platform::Machine& machine) const override {
    // One map lookup per candidate; policies stay stateless so one
    // instance can serve any number of rankings.
    const platform::Machine* source = fleet.world().machine(query.source);
    return source != nullptr && machine.region() == source->region() ? 0 : 1;
  }
};

class AntiAffinityPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "anti-affinity"; }
  int preference(const FleetRegistry& fleet, const PlacementQuery& query,
                 const platform::Machine& machine) const override {
    if (query.image == nullptr) return 0;
    return fleet.hosts_image(machine.address(), query.image->mr_enclave())
               ? 1
               : 0;
  }
};

class CapacityWeightedPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "capacity-weighted"; }
  double load_weight(const FleetRegistry& fleet, const PlacementQuery& query,
                     const platform::Machine& machine) const override {
    // Certified per-core occupancy: cpu_cores is the attribute the
    // provider CA signs into the machine credential (the same value
    // migration policies evaluate), so a scheduler trusting it is
    // trusting the operator, not the machine's self-report.  +1 biases
    // toward big machines even from an empty fleet.
    const double cores =
        machine.cpu_cores() == 0 ? 1.0 : static_cast<double>(machine.cpu_cores());
    return (static_cast<double>(effective_load(fleet, query, machine)) + 1.0) /
           cores;
  }
};

class CompositePolicy final : public PlacementPolicy {
 public:
  explicit CompositePolicy(std::vector<std::unique_ptr<PlacementPolicy>> stages)
      : stages_(std::move(stages)) {}
  const char* name() const override { return "composite"; }
  std::vector<platform::Machine*> rank(
      const FleetRegistry& fleet, const PlacementQuery& query,
      std::vector<platform::Machine*> candidates) const override {
    return rank_by_keys(
        query, std::move(candidates),
        [&](const platform::Machine& m) {
          std::vector<int> prefs;
          prefs.reserve(stages_.size());
          for (const auto& stage : stages_) {
            prefs.push_back(stage->preference(fleet, query, m));
          }
          return prefs;
        },
        [&](const platform::Machine& m) {
          return stages_.empty()
                     ? static_cast<double>(effective_load(fleet, query, m))
                     : stages_.back()->load_weight(fleet, query, m);
        });
  }

 private:
  std::vector<std::unique_ptr<PlacementPolicy>> stages_;
};

}  // namespace

double PlacementPolicy::load_weight(const FleetRegistry& fleet,
                                    const PlacementQuery& query,
                                    const platform::Machine& machine) const {
  return static_cast<double>(effective_load(fleet, query, machine));
}

std::vector<platform::Machine*> PlacementPolicy::rank(
    const FleetRegistry& fleet, const PlacementQuery& query,
    std::vector<platform::Machine*> candidates) const {
  return rank_by_keys(
      query, std::move(candidates),
      [&](const platform::Machine& m) {
        return std::vector<int>{preference(fleet, query, m)};
      },
      [&](const platform::Machine& m) { return load_weight(fleet, query, m); });
}

uint32_t effective_load(const FleetRegistry& fleet,
                        const PlacementQuery& query,
                        const platform::Machine& machine) {
  uint32_t load = static_cast<uint32_t>(fleet.count_on(machine.address()));
  const auto it = query.reserved.find(machine.address());
  if (it != query.reserved.end()) load += it->second;
  return load;
}

std::unique_ptr<PlacementPolicy> make_least_loaded_policy() {
  return std::make_unique<LeastLoadedPolicy>();
}
std::unique_ptr<PlacementPolicy> make_same_region_first_policy() {
  return std::make_unique<SameRegionFirstPolicy>();
}
std::unique_ptr<PlacementPolicy> make_anti_affinity_policy() {
  return std::make_unique<AntiAffinityPolicy>();
}
std::unique_ptr<PlacementPolicy> make_capacity_weighted_policy() {
  return std::make_unique<CapacityWeightedPolicy>();
}
std::unique_ptr<PlacementPolicy> make_composite_policy(
    std::vector<std::unique_ptr<PlacementPolicy>> stages) {
  return std::make_unique<CompositePolicy>(std::move(stages));
}

Scheduler::Scheduler(FleetRegistry& fleet,
                     std::unique_ptr<PlacementPolicy> policy)
    : fleet_(fleet),
      policy_(policy ? std::move(policy) : make_least_loaded_policy()) {}

std::vector<std::string> Scheduler::rank_destinations(
    const PlacementQuery& query) const {
  std::vector<platform::Machine*> candidates;
  for (platform::Machine* m : fleet_.world().machines()) {
    if (m->address() == query.source) continue;
    if (contains(query.excluded, m->address())) continue;
    candidates.push_back(m);
  }
  std::vector<std::string> out;
  if (candidates.empty()) return out;
  for (platform::Machine* m :
       policy_->rank(fleet_, query, std::move(candidates))) {
    out.push_back(m->address());
  }
  return out;
}

Result<std::string> Scheduler::pick_destination(
    const PlacementQuery& query) const {
  auto ranked = rank_destinations(query);
  if (ranked.empty()) return Status::kNoEligibleDestination;
  return ranked.front();
}

}  // namespace sgxmig::orchestrator

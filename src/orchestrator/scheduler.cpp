#include "orchestrator/scheduler.h"

#include <algorithm>

namespace sgxmig::orchestrator {

namespace {

bool contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

/// Capacity-weighted machine key.  ONE definition shared by the
/// brute-force policies and the index shards, so both orders agree
/// bit-for-bit.
double capacity_weight(uint32_t load_plus_reserved, uint32_t cores) {
  const double c = cores == 0 ? 1.0 : static_cast<double>(cores);
  return (static_cast<double>(load_plus_reserved) + 1.0) / c;
}

/// Region-level occupancy key for hierarchical placement: aggregate
/// effective load per certified core over ALL machines of the region.
double region_weight(uint64_t total_load_plus_reserved,
                     uint64_t total_cores) {
  const double c =
      total_cores == 0 ? 1.0 : static_cast<double>(total_cores);
  return (static_cast<double>(total_load_plus_reserved) + 1.0) / c;
}

/// Shared comparator scaffold: candidates sort by (avoided, preference
/// vector, load weight, address).  Sort keys are computed once per
/// candidate, not per comparison: effective_load scans the registry.
std::vector<platform::Machine*> rank_by_keys(
    const PlacementQuery& query, std::vector<platform::Machine*> candidates,
    const std::function<std::vector<int>(const platform::Machine&)>& prefs,
    const std::function<double(const platform::Machine&)>& load) {
  struct Keyed {
    int avoided;
    std::vector<int> prefs;
    double load;
    platform::Machine* machine;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(candidates.size());
  for (platform::Machine* m : candidates) {
    keyed.push_back({contains(query.avoid, m->address()) ? 1 : 0, prefs(*m),
                     load(*m), m});
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.avoided != b.avoided) return a.avoided < b.avoided;
                     if (a.prefs != b.prefs) return a.prefs < b.prefs;
                     if (a.load != b.load) return a.load < b.load;
                     return a.machine->address() < b.machine->address();
                   });
  for (size_t i = 0; i < keyed.size(); ++i) candidates[i] = keyed[i].machine;
  return candidates;
}

class LeastLoadedPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "least-loaded"; }
  PlacementIndexMode index_mode() const override {
    return PlacementIndexMode::kLeastLoaded;
  }
};

class SameRegionFirstPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "same-region-first"; }
  int preference(const FleetRegistry& fleet, const PlacementQuery& query,
                 const platform::Machine& machine) const override {
    // One map lookup per candidate; policies stay stateless so one
    // instance can serve any number of rankings.
    const platform::Machine* source = fleet.world().machine(query.source);
    return source != nullptr && machine.region() == source->region() ? 0 : 1;
  }
};

class AntiAffinityPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "anti-affinity"; }
  int preference(const FleetRegistry& fleet, const PlacementQuery& query,
                 const platform::Machine& machine) const override {
    if (query.image == nullptr) return 0;
    return fleet.hosts_image(machine.address(), query.image->mr_enclave())
               ? 1
               : 0;
  }
};

class CapacityWeightedPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "capacity-weighted"; }
  double load_weight(const FleetRegistry& fleet, const PlacementQuery& query,
                     const platform::Machine& machine) const override {
    // Certified per-core occupancy: cpu_cores is the attribute the
    // provider CA signs into the machine credential (the same value
    // migration policies evaluate), so a scheduler trusting it is
    // trusting the operator, not the machine's self-report.  +1 biases
    // toward big machines even from an empty fleet.
    const double cores =
        machine.cpu_cores() == 0 ? 1.0 : static_cast<double>(machine.cpu_cores());
    return (static_cast<double>(effective_load(fleet, query, machine)) + 1.0) /
           cores;
  }
};

class HierarchicalPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "hierarchical"; }
  PlacementIndexMode index_mode() const override {
    return PlacementIndexMode::kHierarchical;
  }
  std::vector<platform::Machine*> rank(
      const FleetRegistry& fleet, const PlacementQuery& query,
      std::vector<platform::Machine*> candidates) const override {
    // Region weights span ALL machines of each region (not just the
    // candidates), matching the index's per-region aggregates.
    std::map<std::string, double> weights;
    auto weight_of = [&](const std::string& region) {
      auto it = weights.find(region);
      if (it != weights.end()) return it->second;
      uint64_t total_load = 0;
      uint64_t total_cores = 0;
      for (platform::Machine* m :
           fleet.world().machines_in_region(region)) {
        total_load += effective_load(fleet, query, *m);
        total_cores += m->cpu_cores();
      }
      const double w = region_weight(total_load, total_cores);
      weights.emplace(region, w);
      return w;
    };
    struct Keyed {
      int avoided;
      double region_weight;
      std::string region;
      double machine_weight;
      platform::Machine* machine;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(candidates.size());
    for (platform::Machine* m : candidates) {
      keyed.push_back({contains(query.avoid, m->address()) ? 1 : 0,
                       weight_of(m->region()), m->region(),
                       capacity_weight(effective_load(fleet, query, *m),
                                       m->cpu_cores()),
                       m});
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const Keyed& a, const Keyed& b) {
                       if (a.avoided != b.avoided)
                         return a.avoided < b.avoided;
                       if (a.region_weight != b.region_weight)
                         return a.region_weight < b.region_weight;
                       if (a.region != b.region) return a.region < b.region;
                       if (a.machine_weight != b.machine_weight)
                         return a.machine_weight < b.machine_weight;
                       return a.machine->address() < b.machine->address();
                     });
    for (size_t i = 0; i < keyed.size(); ++i) candidates[i] = keyed[i].machine;
    return candidates;
  }
};

class CompositePolicy final : public PlacementPolicy {
 public:
  explicit CompositePolicy(std::vector<std::unique_ptr<PlacementPolicy>> stages)
      : stages_(std::move(stages)) {}
  const char* name() const override { return "composite"; }
  std::vector<platform::Machine*> rank(
      const FleetRegistry& fleet, const PlacementQuery& query,
      std::vector<platform::Machine*> candidates) const override {
    return rank_by_keys(
        query, std::move(candidates),
        [&](const platform::Machine& m) {
          std::vector<int> prefs;
          prefs.reserve(stages_.size());
          for (const auto& stage : stages_) {
            prefs.push_back(stage->preference(fleet, query, m));
          }
          return prefs;
        },
        [&](const platform::Machine& m) {
          return stages_.empty()
                     ? static_cast<double>(effective_load(fleet, query, m))
                     : stages_.back()->load_weight(fleet, query, m);
        });
  }

 private:
  std::vector<std::unique_ptr<PlacementPolicy>> stages_;
};

}  // namespace

double PlacementPolicy::load_weight(const FleetRegistry& fleet,
                                    const PlacementQuery& query,
                                    const platform::Machine& machine) const {
  return static_cast<double>(effective_load(fleet, query, machine));
}

std::vector<platform::Machine*> PlacementPolicy::rank(
    const FleetRegistry& fleet, const PlacementQuery& query,
    std::vector<platform::Machine*> candidates) const {
  return rank_by_keys(
      query, std::move(candidates),
      [&](const platform::Machine& m) {
        return std::vector<int>{preference(fleet, query, m)};
      },
      [&](const platform::Machine& m) { return load_weight(fleet, query, m); });
}

uint32_t effective_load(const FleetRegistry& fleet,
                        const PlacementQuery& query,
                        const platform::Machine& machine) {
  uint32_t load = static_cast<uint32_t>(fleet.count_on(machine.address()));
  const auto it = query.reserved.find(machine.address());
  if (it != query.reserved.end()) load += it->second;
  return load;
}

std::unique_ptr<PlacementPolicy> make_least_loaded_policy() {
  return std::make_unique<LeastLoadedPolicy>();
}
std::unique_ptr<PlacementPolicy> make_same_region_first_policy() {
  return std::make_unique<SameRegionFirstPolicy>();
}
std::unique_ptr<PlacementPolicy> make_anti_affinity_policy() {
  return std::make_unique<AntiAffinityPolicy>();
}
std::unique_ptr<PlacementPolicy> make_capacity_weighted_policy() {
  return std::make_unique<CapacityWeightedPolicy>();
}
std::unique_ptr<PlacementPolicy> make_hierarchical_policy() {
  return std::make_unique<HierarchicalPolicy>();
}
std::unique_ptr<PlacementPolicy> make_composite_policy(
    std::vector<std::unique_ptr<PlacementPolicy>> stages) {
  return std::make_unique<CompositePolicy>(std::move(stages));
}

Scheduler::Scheduler(FleetRegistry& fleet,
                     std::unique_ptr<PlacementPolicy> policy)
    : fleet_(fleet),
      policy_(policy ? std::move(policy) : make_least_loaded_policy()) {}

std::vector<std::string> Scheduler::rank_destinations(
    const PlacementQuery& query) const {
  std::vector<platform::Machine*> candidates;
  for (platform::Machine* m : fleet_.world().machines()) {
    if (m->address() == query.source) continue;
    if (contains(query.excluded, m->address())) continue;
    if (contains(query.excluded_regions, m->region())) continue;
    candidates.push_back(m);
  }
  std::vector<std::string> out;
  if (candidates.empty()) return out;
  for (platform::Machine* m :
       policy_->rank(fleet_, query, std::move(candidates))) {
    out.push_back(m->address());
  }
  return out;
}

Result<std::string> Scheduler::pick_destination(
    const PlacementQuery& query) const {
  // A non-empty query.reserved is the legacy calling convention (per-query
  // reservation map); a persistent index cannot honor it, so those picks
  // take the brute-force path.  Ledger users leave it empty.
  if (index_active() && query.reserved.empty()) {
    const std::string pick = indexed_pick(query, policy_->index_mode());
    if (pick.empty()) return Status::kNoEligibleDestination;
    return pick;
  }
  auto ranked = rank_destinations(query);
  if (ranked.empty()) return Status::kNoEligibleDestination;
  return ranked.front();
}

// ----- incrementally-maintained placement index -----

void Scheduler::note_reservation(const std::string& machine, int32_t delta) {
  uint32_t& count = reservations_[machine];
  const int64_t next = static_cast<int64_t>(count) + delta;
  count = next < 0 ? 0u : static_cast<uint32_t>(next);
  if (!index_built_) return;
  auto it = entries_.find(machine);
  if (it == entries_.end()) return;  // machine joined since last rebuild
  shard_erase(machine, it->second);
  it->second.reserved = count;
  shard_insert(machine, it->second);
}

void Scheduler::clear_reservations() {
  reservations_.clear();
  index_built_ = false;  // lazy rebuild on the next indexed pick
}

void Scheduler::shard_insert(const std::string& machine,
                             const IndexEntry& entry) const {
  RegionShard& shard = shards_[entry.region];
  const uint32_t load = entry.load + entry.reserved;
  shard.by_load.insert({load, machine});
  shard.by_weight.insert({capacity_weight(load, entry.cores), machine});
  shard.total_load += load;
  shard.total_cores += entry.cores;
}

void Scheduler::shard_erase(const std::string& machine,
                            const IndexEntry& entry) const {
  auto it = shards_.find(entry.region);
  if (it == shards_.end()) return;
  RegionShard& shard = it->second;
  const uint32_t load = entry.load + entry.reserved;
  shard.by_load.erase({load, machine});
  shard.by_weight.erase({capacity_weight(load, entry.cores), machine});
  shard.total_load -= load;
  shard.total_cores -= entry.cores;
}

void Scheduler::rebuild_index() const {
  entries_.clear();
  shards_.clear();
  for (platform::Machine* m : fleet_.world().machines()) {
    IndexEntry entry;
    entry.load = static_cast<uint32_t>(fleet_.count_on(m->address()));
    auto it = reservations_.find(m->address());
    entry.reserved = it == reservations_.end() ? 0 : it->second;
    entry.cores = m->cpu_cores();
    entry.region = m->region();
    shard_insert(m->address(), entry);
    entries_.emplace(m->address(), std::move(entry));
  }
  load_cursor_ = fleet_.load_version();
  index_built_ = true;
}

void Scheduler::index_apply_load(const std::string& machine,
                                 uint32_t new_load) const {
  auto it = entries_.find(machine);
  if (it == entries_.end()) {
    index_built_ = false;  // unknown machine: schedule a rebuild
    return;
  }
  shard_erase(machine, it->second);
  it->second.load = new_load;
  shard_insert(machine, it->second);
}

void Scheduler::sync_index() const {
  if (!index_built_ ||
      entries_.size() != fleet_.world().machine_count()) {
    rebuild_index();
    return;
  }
  uint64_t cursor = load_cursor_;
  const bool ok = fleet_.replay_load_changes(
      cursor, [this](const std::string& machine, uint32_t count) {
        index_apply_load(machine, count);
      });
  if (!ok || !index_built_) {
    rebuild_index();
    return;
  }
  load_cursor_ = cursor;
}

std::string Scheduler::indexed_pick(const PlacementQuery& query,
                                    PlacementIndexMode mode) const {
  sync_index();
  const std::set<std::string> excluded(query.excluded.begin(),
                                       query.excluded.end());
  const std::set<std::string> excluded_regions(query.excluded_regions.begin(),
                                               query.excluded_regions.end());
  const std::set<std::string> avoid(query.avoid.begin(), query.avoid.end());
  auto machine_blocked = [&](const std::string& address) {
    return address == query.source || excluded.count(address) != 0;
  };

  if (mode == PlacementIndexMode::kLeastLoaded) {
    // Pass 1 (non-avoided): the global best is the min over shards of
    // each shard's first admissible (load, address) pair — the exact
    // (effective load, address) order of the brute-force scan.
    const std::pair<uint32_t, std::string>* best = nullptr;
    for (const auto& [region, shard] : shards_) {
      if (excluded_regions.count(region) != 0) continue;
      for (const auto& entry : shard.by_load) {
        if (machine_blocked(entry.second) || avoid.count(entry.second) != 0) {
          continue;
        }
        if (best == nullptr || entry < *best) best = &entry;
        break;  // rest of this shard is worse
      }
    }
    if (best != nullptr) return best->second;
    // Pass 2: everything admissible is soft-avoided; rank the avoid list
    // itself by the same key.
    std::string pick;
    std::pair<uint32_t, std::string> pick_key;
    for (const std::string& address : query.avoid) {
      auto it = entries_.find(address);
      if (it == entries_.end() || machine_blocked(address) ||
          excluded_regions.count(it->second.region) != 0) {
        continue;
      }
      std::pair<uint32_t, std::string> key{
          it->second.load + it->second.reserved, address};
      if (pick.empty() || key < pick_key) {
        pick = address;
        pick_key = key;
      }
    }
    return pick;
  }

  // kHierarchical: regions ordered by aggregate occupancy per core, the
  // capacity-weighted machine within the first region that has an
  // admissible machine.
  std::vector<std::pair<double, std::string>> regions;
  regions.reserve(shards_.size());
  for (const auto& [region, shard] : shards_) {
    if (excluded_regions.count(region) != 0) continue;
    regions.push_back(
        {region_weight(shard.total_load, shard.total_cores), region});
  }
  std::sort(regions.begin(), regions.end());
  for (const auto& [weight, region] : regions) {
    const RegionShard& shard = shards_.at(region);
    for (const auto& entry : shard.by_weight) {
      if (machine_blocked(entry.second) || avoid.count(entry.second) != 0) {
        continue;
      }
      return entry.second;
    }
  }
  // Pass 2: soft-avoided fallback, ranked by (region weight, region,
  // machine weight, address) — the brute-force order for avoided
  // candidates.
  std::string pick;
  double pick_region_weight = 0;
  std::string pick_region;
  double pick_machine_weight = 0;
  for (const std::string& address : query.avoid) {
    auto it = entries_.find(address);
    if (it == entries_.end() || machine_blocked(address) ||
        excluded_regions.count(it->second.region) != 0) {
      continue;
    }
    const RegionShard& shard = shards_.at(it->second.region);
    const double rw = region_weight(shard.total_load, shard.total_cores);
    const double mw = capacity_weight(
        it->second.load + it->second.reserved, it->second.cores);
    const bool better =
        pick.empty() || rw < pick_region_weight ||
        (rw == pick_region_weight &&
         (it->second.region < pick_region ||
          (it->second.region == pick_region &&
           (mw < pick_machine_weight ||
            (mw == pick_machine_weight && address < pick)))));
    if (better) {
      pick = address;
      pick_region_weight = rw;
      pick_region = it->second.region;
      pick_machine_weight = mw;
    }
  }
  return pick;
}

size_t Scheduler::index_bytes() const {
  size_t bytes = reservations_.size() *
                 (sizeof(std::string) + sizeof(uint32_t) + 3 * sizeof(void*));
  for (const auto& [address, entry] : entries_) {
    bytes += address.size() + entry.region.size() + sizeof(IndexEntry) +
             3 * sizeof(void*);
  }
  for (const auto& [region, shard] : shards_) {
    bytes += region.size() + sizeof(RegionShard);
    bytes += shard.by_load.size() *
             (sizeof(std::pair<uint32_t, std::string>) + 3 * sizeof(void*));
    bytes += shard.by_weight.size() *
             (sizeof(std::pair<double, std::string>) + 3 * sizeof(void*));
    for (const auto& entry : shard.by_load) bytes += entry.second.size();
    for (const auto& entry : shard.by_weight) bytes += entry.second.size();
  }
  return bytes;
}

}  // namespace sgxmig::orchestrator

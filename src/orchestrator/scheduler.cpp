#include "orchestrator/scheduler.h"

#include <algorithm>

namespace sgxmig::orchestrator {

namespace {

bool contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

/// Shared comparator scaffold: policies sort by (avoided, policy-specific
/// group, effective load, address).  `group` maps a machine to a small
/// integer where lower is better.  Sort keys are computed once per
/// candidate, not per comparison: effective_load scans the registry.
template <typename GroupFn>
std::vector<platform::Machine*> rank_by(
    const FleetRegistry& fleet, const PlacementQuery& query,
    std::vector<platform::Machine*> candidates, GroupFn group) {
  struct Keyed {
    int avoided;
    int group;
    uint32_t load;
    platform::Machine* machine;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(candidates.size());
  for (platform::Machine* m : candidates) {
    keyed.push_back({contains(query.avoid, m->address()) ? 1 : 0, group(*m),
                     effective_load(fleet, query, *m), m});
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.avoided != b.avoided) return a.avoided < b.avoided;
                     if (a.group != b.group) return a.group < b.group;
                     if (a.load != b.load) return a.load < b.load;
                     return a.machine->address() < b.machine->address();
                   });
  for (size_t i = 0; i < keyed.size(); ++i) candidates[i] = keyed[i].machine;
  return candidates;
}

class LeastLoadedPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "least-loaded"; }
  std::vector<platform::Machine*> rank(
      const FleetRegistry& fleet, const PlacementQuery& query,
      std::vector<platform::Machine*> candidates) const override {
    return rank_by(fleet, query, std::move(candidates),
                   [](const platform::Machine&) { return 0; });
  }
};

class SameRegionFirstPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "same-region-first"; }
  std::vector<platform::Machine*> rank(
      const FleetRegistry& fleet, const PlacementQuery& query,
      std::vector<platform::Machine*> candidates) const override {
    std::string source_region;
    if (auto* source = fleet.world().machine(query.source)) {
      source_region = source->region();
    }
    return rank_by(fleet, query, std::move(candidates),
                   [&source_region](const platform::Machine& m) {
                     return m.region() == source_region ? 0 : 1;
                   });
  }
};

class AntiAffinityPolicy final : public PlacementPolicy {
 public:
  const char* name() const override { return "anti-affinity"; }
  std::vector<platform::Machine*> rank(
      const FleetRegistry& fleet, const PlacementQuery& query,
      std::vector<platform::Machine*> candidates) const override {
    return rank_by(fleet, query, std::move(candidates),
                   [&](const platform::Machine& m) {
                     if (query.image == nullptr) return 0;
                     return fleet.hosts_image(m.address(),
                                              query.image->mr_enclave())
                                ? 1
                                : 0;
                   });
  }
};

}  // namespace

uint32_t effective_load(const FleetRegistry& fleet,
                        const PlacementQuery& query,
                        const platform::Machine& machine) {
  uint32_t load = static_cast<uint32_t>(fleet.count_on(machine.address()));
  const auto it = query.reserved.find(machine.address());
  if (it != query.reserved.end()) load += it->second;
  return load;
}

std::unique_ptr<PlacementPolicy> make_least_loaded_policy() {
  return std::make_unique<LeastLoadedPolicy>();
}
std::unique_ptr<PlacementPolicy> make_same_region_first_policy() {
  return std::make_unique<SameRegionFirstPolicy>();
}
std::unique_ptr<PlacementPolicy> make_anti_affinity_policy() {
  return std::make_unique<AntiAffinityPolicy>();
}

Scheduler::Scheduler(FleetRegistry& fleet,
                     std::unique_ptr<PlacementPolicy> policy)
    : fleet_(fleet),
      policy_(policy ? std::move(policy) : make_least_loaded_policy()) {}

std::vector<std::string> Scheduler::rank_destinations(
    const PlacementQuery& query) const {
  std::vector<platform::Machine*> candidates;
  for (platform::Machine* m : fleet_.world().machines()) {
    if (m->address() == query.source) continue;
    if (contains(query.excluded, m->address())) continue;
    candidates.push_back(m);
  }
  std::vector<std::string> out;
  if (candidates.empty()) return out;
  for (platform::Machine* m :
       policy_->rank(fleet_, query, std::move(candidates))) {
    out.push_back(m->address());
  }
  return out;
}

Result<std::string> Scheduler::pick_destination(
    const PlacementQuery& query) const {
  auto ranked = rank_destinations(query);
  if (ranked.empty()) return Status::kNoEligibleDestination;
  return ranked.front();
}

}  // namespace sgxmig::orchestrator

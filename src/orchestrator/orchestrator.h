// The fleet migration control plane.
//
// Expands a Plan (drain / evacuate / rebalance / targeted moves) into one
// migration state machine per enclave and drives them all to a terminal
// state on the virtual clock:
//
//   kQueued --admit--> (started) --complete_move--> kDone
//      ^                   |
//      |              retryable failure
//      +-- kBackoff <------+          (fatal / attempts exhausted) -> kFailed
//
// Concurrency is bounded two ways, matching what would overload a real
// deployment: at most `max_inflight_per_machine` migrations may be away
// from one source machine but not yet restored (its ME handles every
// source-side transfer), and at most `max_inflight_total` fleet-wide.
// Each retry re-selects the destination through the Scheduler with the
// failed destinations soft-excluded and backs off exponentially in
// virtual time.  Every transition is appended to a timestamped event log;
// execute() returns an OrchestratorReport with per-migration latency and
// retry counts for the bench layer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "orchestrator/fleet_registry.h"
#include "orchestrator/plan.h"
#include "orchestrator/report.h"
#include "orchestrator/scheduler.h"

namespace sgxmig::net {
class Network;
}

namespace sgxmig::orchestrator {

/// How the source side of each migration moves its state.
enum class TransferMode : uint8_t {
  /// Paper semantics: freeze, collect + destroy everything, ship one
  /// snapshot.  Freeze window grows with the number of active counters.
  kFullSnapshot = 0,
  /// Iterative pre-copy: ship dirty Table II chunks round by round while
  /// the enclave keeps serving, freeze only for the final delta.
  /// Requires live-transfer-capable enclaves (LaunchOptions); enclaves
  /// without the capability transparently fall back to kFullSnapshot.
  kPrecopy = 1,
};

const char* transfer_mode_name(TransferMode mode);

struct OrchestratorOptions {
  /// Max migrations simultaneously in flight per source machine.
  uint32_t max_inflight_per_machine = 4;
  /// Max migrations simultaneously in flight fleet-wide.
  uint32_t max_inflight_total = 16;
  /// Max migrations simultaneously in flight toward one DESTINATION
  /// machine (0 = unlimited).  With pipelined pre-copy round hops and
  /// freeze-aware scheduling, overlapping transfers would otherwise
  /// stampede a popular destination ME.
  uint32_t max_inflight_per_destination = 0;
  /// migration_start attempts per enclave before giving up.
  uint32_t max_attempts = 4;
  /// Base retry backoff (virtual time); doubles per failed attempt.
  Duration retry_backoff = milliseconds(50);
  TransferMode transfer_mode = TransferMode::kFullSnapshot;
  /// Convergence policy for kPrecopy (rounds before the forced freeze).
  migration::PrecopyOptions precopy;
  /// Drive transfers through the source MEs' pipelined TransferTask
  /// engine instead of the blocking migration_start: sources are
  /// enqueued (non-blocking) and polled, the deferred-delivery network
  /// pump interleaves the ME<->ME conversations, and all per-machine
  /// work is accounted on per-machine LANES (support/sim_clock.h) so
  /// concurrent migrations genuinely overlap in virtual time.  This is
  /// what makes the in-flight caps a real throughput lever: at cap 1 the
  /// pipeline degenerates to today's serial drain, at cap N up to N
  /// transfers (and their destination-side restores) run concurrently.
  bool pipelined = false;
  /// Freeze-aware scheduling (pipelined only): enqueue via the library's
  /// reserve path, so a queued transfer waits LIVE (still serving) until
  /// the source ME signals slot-live, and only then freezes.  The freeze
  /// window stops growing with queue depth.
  bool freeze_aware = false;
  /// Per-enclave freeze budget (0 = unenforced): successful migrations
  /// whose freeze window exceeds it are counted as violations in the
  /// report.  This is an SLO observable, not an admission gate.
  Duration freeze_budget{};
  /// Drive the waves with the legacy full-scan loop (every wave touches
  /// every task) instead of the event-driven driver.  The two produce
  /// bit-identical reports — enforced by tests — and this escape hatch
  /// is kept for one release while the event-driven driver beds in.
  bool legacy_wave_loop = false;
  /// Cap on the in-memory orchestrator event log (0 = unbounded).  Once
  /// full, the OLDEST events are dropped and counted in
  /// OrchestratorReport::events_dropped, bounding control-plane memory
  /// over long drains; the §V-D machinery never reads this log, so
  /// retention is purely observational.
  size_t event_log_limit = 0;
};

/// Control-plane work accounting for one execute(): how many waves ran
/// and how many per-task / per-machine touches the driver spent.  The
/// scaling bench gates on these (they are deterministic, unlike CPU
/// seconds) to catch O(n^2) control-plane regressions.
struct DriverStats {
  uint64_t waves = 0;
  /// Admission candidates processed + polls + pre-copy advances +
  /// completions.  The event-driven driver's figure stays proportional
  /// to real protocol work; the legacy loop's grows with tasks x waves.
  uint64_t task_touches = 0;
  uint64_t admission_checks = 0;
  /// ME pump lane runs (legacy: every busy ME every wave; event-driven:
  /// only machines whose lane produced an event).
  uint64_t pump_kicks = 0;
};

class Orchestrator {
 public:
  Orchestrator(FleetRegistry& fleet, Scheduler& scheduler,
               OrchestratorOptions options = {});

  /// Chaos-injection hook: invoked at the top of every scheduling wave
  /// with the wave index.  Tests and benches use it to kill/restart
  /// machine services (e.g. Migration Enclaves) at deterministic points
  /// MID-plan, exercising the durable-queue resume paths.
  using WaveHook = std::function<void(uint32_t wave)>;
  void set_wave_hook(WaveHook hook) { wave_hook_ = std::move(hook); }

  /// Invoked after every shipped pre-copy round (enclave id, round index
  /// just shipped).  Benches and chaos tests use it to apply a LIVE
  /// mutation workload between rounds — the enclave is not frozen — or to
  /// kill/restart MEs mid-pre-copy.
  using RoundHook = std::function<void(uint64_t enclave_id, uint32_t round)>;
  void set_round_hook(RoundHook hook) { round_hook_ = std::move(hook); }

  /// Runs the plan to completion (every task kDone or kFailed) and
  /// returns the report.  Deterministic per world seed.
  OrchestratorReport execute(const Plan& plan);

  /// Work accounting of the most recent execute().
  const DriverStats& last_driver_stats() const { return stats_; }

  /// Deterministic byte accounting of the orchestrator's own state
  /// (tasks, event log, gauges, event-driver indexes) after/during an
  /// execute().  Allocator-independent, so the scaling bench can gate on
  /// "control-plane memory per enclave stays flat".
  size_t control_plane_bytes() const;

 private:
  enum class TaskPhase : uint8_t {
    kQueued,
    kBackoff,
    kTransferring,  // pipelined: queued at the source ME, polling its fate
    kPrecopying,    // pipelined: shipping pre-copy rounds, one per wave
    kStarted,  // source side done; data pending at the destination ME
    kDone,
    kFailed,
  };

  struct Task {
    uint64_t enclave_id = 0;
    std::string name;
    std::string source;
    std::string fixed_destination;        // targeted moves only
    std::vector<std::string> forbidden;   // hard exclusions from the plan
    /// Whole regions hard-excluded by the plan (evacuation): carried as
    /// region names so a 1000-machine evacuation does not give every task
    /// a 100-entry machine list.
    std::vector<std::string> forbidden_regions;
    std::vector<std::string> failed_destinations;  // soft-avoided on retry
    std::string destination;              // current attempt
    uint32_t attempts = 0;
    TaskPhase phase = TaskPhase::kQueued;
    /// Source side already succeeded; a retry resumes at complete_move.
    bool transfer_done = false;
    Duration planned_at{};
    Duration admitted_at{};
    Duration retry_at{};
    Duration finished_at{};
    /// Pipelined: earliest instant the task's next lane action may start
    /// (causality across lanes: enqueue end -> polls -> restore).
    Duration ready_at{};
    Duration freeze_window{};
    /// Freeze-aware: live wait between reserve and the slot going live.
    Duration enqueue_wait{};
    uint32_t precopy_rounds = 0;
    uint64_t transfer_bytes = 0;
    Status last_status = Status::kOk;
    migration::MigrationFailureClass last_class =
        migration::MigrationFailureClass::kNone;
    std::string last_message;
  };

  std::vector<Task> build_tasks(const Plan& plan);
  bool admit_and_start(Task& task);  // false = task could not be admitted
  /// Drives the source side under the configured transfer mode: one
  /// migration_start, or pre-copy rounds to convergence + finalize.
  migration::MigrationStartResult run_source_side(
      Task& task, migration::MigratableEnclave& enclave,
      const EnclaveRecord& record);
  void complete(Task& task);
  // ----- pipelined engine -----
  /// Pipelined source-side admission: enqueue (or begin pre-copy / resume
  /// a frozen finalize) on the source machine's lane.
  void start_pipelined(Task& task, migration::MigratableEnclave& enclave,
                       const EnclaveRecord& record);
  /// Polls a kTransferring task's fate at its source ME.
  void poll_transferring(Task& task);
  /// Ships one pre-copy round (or the finalize, once converged/frozen)
  /// for a kPrecopying task.
  void advance_precopy(Task& task);
  /// Shared failure path of the pipelined source side; `freed_at` is the
  /// lane instant the failure was observed (when the slot frees).
  void pipelined_source_failure(Task& task,
                                const migration::MigrationStartResult& result,
                                Duration freed_at);
  /// Records when an in-flight slot freed (sorted insert).
  void release_slot(Duration freed_at);
  void mark_started(Task& task, migration::MigratableEnclave& enclave,
                    Duration ready_at);
  /// Earliest instant a newly admitted task may start: the control
  /// instant, or the completion time of the in-flight slot it is taking
  /// over (tracked in released_slots_).
  Duration next_slot_time();
  void handle_failure(Task& task, Status status,
                      migration::MigrationFailureClass cls,
                      const std::string& message, bool destination_specific);
  void fail_task(Task& task);
  void log(const Task& task, EventKind kind, std::string detail);
  std::map<std::string, uint32_t> reserved_destinations() const;
  Duration now() const;
  // ----- wave drivers -----
  /// Single funnel for every phase transition: maintains the event
  /// driver's phase sets (ready/backoff/transferring/precopying/started)
  /// and the unfinished count, so both drivers share one bookkeeping
  /// path.
  void set_phase(Task& task, TaskPhase phase);
  /// Moves backoff tasks whose retry_at has passed into the ready set;
  /// when `newly` is non-null, appends their indices.
  void ripen_backoffs(Duration at, std::vector<uint32_t>* newly);
  /// One event-driven admission pass: visits ready tasks in ascending
  /// plan order via a per-source merge heap, skipping saturated sources
  /// wholesale.  Returns true if any task was admitted.
  bool event_admission_pass();
  void run_legacy_loop(net::Network& net);
  void run_event_loop(net::Network& net);
  /// Pairs the inflight_to_destination_ gauge with the scheduler's
  /// reservation ledger, so the indexed pick path sees in-flight loads.
  void reserve_destination(const std::string& machine);
  void release_destination(const std::string& machine);

  FleetRegistry& fleet_;
  Scheduler& scheduler_;
  OrchestratorOptions options_;
  WaveHook wave_hook_;
  RoundHook round_hook_;

  // Per-execute() working state.
  std::deque<OrchestratorEvent> events_;  // ring when event_log_limit > 0
  uint64_t events_dropped_ = 0;
  std::map<std::string, uint32_t> inflight_per_machine_;
  std::map<std::string, uint32_t> inflight_to_destination_;
  uint32_t inflight_total_ = 0;
  uint32_t peak_inflight_total_ = 0;
  std::map<std::string, uint32_t> peak_inflight_per_machine_;
  // Pipelined engine state: the lane ledger of the running execute() and
  // the (sorted) completion times that freed in-flight slots.
  LaneSchedule* lanes_ = nullptr;
  std::vector<Duration> released_slots_;
  // Event-driver state.  Both drivers maintain it (set_phase is the one
  // funnel); only run_event_loop consumes it.
  std::vector<Task> tasks_;
  /// Admittable task indices (kQueued or ripened kBackoff) per source
  /// machine — the admission pass only visits these.
  std::map<std::string, std::set<uint32_t>> ready_by_source_;
  /// Pending backoffs ordered by retry time.
  std::priority_queue<std::pair<Duration, uint32_t>,
                      std::vector<std::pair<Duration, uint32_t>>,
                      std::greater<std::pair<Duration, uint32_t>>>
      backoff_heap_;
  /// Ripened-but-unadmitted backoff tasks: index -> retry_at at ripen
  /// time (keyed by index because handle_failure rewrites retry_at).
  std::map<uint32_t, Duration> ripe_backoff_;
  std::set<uint32_t> transferring_;
  std::set<uint32_t> precopying_;
  std::set<uint32_t> started_;
  size_t unfinished_count_ = 0;
  /// Machines (creation order) and address -> creation index, resolved
  /// once per execute(); the pump visits kick candidates in creation
  /// order, matching the legacy full scan.
  std::vector<platform::Machine*> machines_;
  std::map<std::string, uint32_t> machine_index_;
  std::set<uint32_t> kick_candidates_;
  DriverStats stats_;
};

}  // namespace sgxmig::orchestrator

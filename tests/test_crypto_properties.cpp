// Property-based crypto tests: algebraic laws and randomized sweeps over
// the from-scratch primitives, complementing the fixed RFC/NIST vectors.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "crypto/ed25519.h"
#include "crypto/fe25519.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/sc25519.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "support/rng.h"

namespace sgxmig::crypto {
namespace {

class CryptoProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

// ----- field arithmetic laws -----

TEST_P(CryptoProperty, FieldRingLaws) {
  auto random_fe = [&] {
    uint8_t bytes[32];
    rng_.fill(bytes, 32);
    bytes[31] &= 0x7f;
    return fe_frombytes(bytes);
  };
  const Fe a = random_fe(), b = random_fe(), c = random_fe();
  // Commutativity and associativity of + and *.
  EXPECT_TRUE(fe_equal(fe_add(a, b), fe_add(b, a)));
  EXPECT_TRUE(fe_equal(fe_mul(a, b), fe_mul(b, a)));
  EXPECT_TRUE(fe_equal(fe_add(fe_add(a, b), c), fe_add(a, fe_add(b, c))));
  EXPECT_TRUE(fe_equal(fe_mul(fe_mul(a, b), c), fe_mul(a, fe_mul(b, c))));
  // Distributivity.
  EXPECT_TRUE(fe_equal(fe_mul(a, fe_add(b, c)),
                       fe_add(fe_mul(a, b), fe_mul(a, c))));
  // Additive and multiplicative inverses.
  EXPECT_TRUE(fe_is_zero(fe_add(a, fe_neg(a))));
  if (!fe_is_zero(a)) {
    EXPECT_TRUE(fe_equal(fe_mul(a, fe_invert(a)), fe_one()));
  }
  // Squaring law.
  EXPECT_TRUE(fe_equal(fe_sq(a), fe_mul(a, a)));
}

// ----- scalar arithmetic laws -----

TEST_P(CryptoProperty, ScalarRingLaws) {
  const Sc a = sc_from_bytes(rng_.bytes(32));
  const Sc b = sc_from_bytes(rng_.bytes(32));
  const Sc c = sc_from_bytes(rng_.bytes(32));
  const Sc zero = sc_zero();
  const Sc one = sc_from_bytes(Bytes{1});

  auto eq = [](const Sc& x, const Sc& y) {
    uint8_t xb[32], yb[32];
    sc_tobytes(xb, x);
    sc_tobytes(yb, y);
    return constant_time_eq(ByteView(xb, 32), ByteView(yb, 32));
  };

  // muladd(a, 1, b) == add(a, b); muladd(a, 0, c) == c.
  EXPECT_TRUE(eq(sc_muladd(a, one, b), sc_add(a, b)));
  EXPECT_TRUE(eq(sc_muladd(a, zero, c), c));
  // Commutativity of * and +.
  EXPECT_TRUE(eq(sc_muladd(a, b, zero), sc_muladd(b, a, zero)));
  EXPECT_TRUE(eq(sc_add(a, b), sc_add(b, a)));
  // Distributivity: a*(b+c) == a*b + a*c.
  EXPECT_TRUE(eq(sc_muladd(a, sc_add(b, c), zero),
                 sc_add(sc_muladd(a, b, zero), sc_muladd(a, c, zero))));
  // Result is always canonical.
  uint8_t bytes[32];
  sc_tobytes(bytes, sc_muladd(a, b, c));
  EXPECT_TRUE(sc_is_canonical(bytes));
}

// ----- X25519 Diffie-Hellman property -----

TEST_P(CryptoProperty, X25519SharedSecretAgrees) {
  X25519Key a{}, b{};
  rng_.fill(a.data(), 32);
  rng_.fill(b.data(), 32);
  const X25519Key pub_a = x25519_base(a);
  const X25519Key pub_b = x25519_base(b);
  EXPECT_EQ(x25519(a, pub_b), x25519(b, pub_a));
  // Distinct keys give distinct public values (overwhelmingly).
  EXPECT_NE(pub_a, pub_b);
}

// ----- Ed25519 sweep -----

TEST_P(CryptoProperty, Ed25519SignVerifySweep) {
  Ed25519Seed seed{};
  rng_.fill(seed.data(), seed.size());
  const auto kp = Ed25519KeyPair::from_seed(seed);
  const Bytes message = rng_.bytes(1 + rng_.uniform(512));
  const Ed25519Signature sig = kp.sign(message);
  EXPECT_TRUE(ed25519_verify(kp.public_key(), message, sig));

  // Any single bit flip in the signature breaks it.
  Ed25519Signature bad = sig;
  const size_t byte = rng_.uniform(bad.size());
  bad[byte] ^= static_cast<uint8_t>(1u << rng_.uniform(8));
  EXPECT_FALSE(ed25519_verify(kp.public_key(), message, bad));

  // Any change to the message breaks it.
  Bytes other = message;
  other[rng_.uniform(other.size())] ^= 0x01;
  EXPECT_FALSE(ed25519_verify(kp.public_key(), other, sig));
}

// ----- GCM randomized round trips -----

TEST_P(CryptoProperty, GcmRandomRoundTrips) {
  const Bytes key = rng_.bytes(rng_.uniform(2) == 0 ? 16 : 32);
  const Bytes iv = rng_.bytes(12);
  const Bytes aad = rng_.bytes(rng_.uniform(48));
  const Bytes plaintext = rng_.bytes(rng_.uniform(2048));
  const GcmCiphertext ct = gcm_encrypt(key, iv, aad, plaintext);
  auto back = gcm_decrypt(key, iv, aad, ct.ciphertext,
                          ByteView(ct.tag.data(), ct.tag.size()));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), plaintext);

  // Ciphertext differs from plaintext (for non-empty inputs).
  if (!plaintext.empty()) {
    EXPECT_NE(ct.ciphertext, plaintext);
  }

  // Tag flip rejected.
  auto bad_tag = ct.tag;
  bad_tag[rng_.uniform(16)] ^= 0x01;
  EXPECT_FALSE(gcm_decrypt(key, iv, aad, ct.ciphertext,
                           ByteView(bad_tag.data(), bad_tag.size()))
                   .ok());
}

TEST_P(CryptoProperty, GcmIvSeparation) {
  // The same plaintext under two IVs yields unrelated ciphertexts.
  const Bytes key = rng_.bytes(16);
  const Bytes pt = rng_.bytes(64);
  Bytes iv1 = rng_.bytes(12);
  Bytes iv2 = iv1;
  iv2[11] ^= 1;
  const GcmCiphertext c1 = gcm_encrypt(key, iv1, ByteView(), pt);
  const GcmCiphertext c2 = gcm_encrypt(key, iv2, ByteView(), pt);
  EXPECT_NE(c1.ciphertext, c2.ciphertext);
  EXPECT_NE(c1.tag, c2.tag);
}

// ----- hash/MAC/DRBG sweeps -----

TEST_P(CryptoProperty, Sha256SplitInvariance) {
  const Bytes data = rng_.bytes(1 + rng_.uniform(4096));
  const size_t split = rng_.uniform(data.size() + 1);
  Sha256 h;
  h.update(ByteView(data.data(), split));
  h.update(ByteView(data.data() + split, data.size() - split));
  EXPECT_EQ(h.finish(), Sha256::hash(data));
}

TEST_P(CryptoProperty, HmacKeySensitivity) {
  const Bytes key = rng_.bytes(32);
  Bytes other_key = key;
  other_key[rng_.uniform(32)] ^= 0x01;
  const Bytes msg = rng_.bytes(128);
  EXPECT_NE(hmac_sha256(key, msg), hmac_sha256(other_key, msg));
}

TEST_P(CryptoProperty, DrbgStreamsNeverCollide) {
  CtrDrbg a(rng_.bytes(32));
  CtrDrbg b(rng_.bytes(32));
  EXPECT_NE(a.bytes(32), b.bytes(32));
  // Sequential outputs of one DRBG never repeat either.
  CtrDrbg c(rng_.bytes(32));
  const Bytes first = c.bytes(16);
  for (int i = 0; i < 50; ++i) EXPECT_NE(c.bytes(16), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoProperty,
                         ::testing::Values(1, 7, 42, 1337, 99999, 123456789,
                                           0xdeadbeef, 0xcafebabe));

}  // namespace
}  // namespace sgxmig::crypto

// Failure-injection tests: services crashing or vanishing at awkward
// moments must never corrupt persistent state or open attack windows —
// at worst they cost availability (which the threat model concedes).
#include <gtest/gtest.h>

#include "apps/hybster.h"
#include "migration/migratable_enclave.h"
#include "migration/migration_enclave.h"
#include "platform/world.h"

namespace sgxmig {
namespace {

using migration::InitState;
using migration::MigratableEnclave;
using migration::MigrationEnclave;
using migration::OutgoingState;
using platform::World;
using sgx::EnclaveImage;

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest() {
    me0_ = std::make_unique<MigrationEnclave>(
        m0_, MigrationEnclave::standard_image(), world_.provider());
    me1_ = std::make_unique<MigrationEnclave>(
        m1_, MigrationEnclave::standard_image(), world_.provider());
  }

  std::unique_ptr<MigratableEnclave> start_enclave(platform::Machine& m) {
    auto enclave = std::make_unique<MigratableEnclave>(m, image_);
    enclave->set_persist_callback(
        [&m](ByteView s) { m.storage().put("ml", s); });
    EXPECT_EQ(enclave->ecall_migration_init(ByteView(), InitState::kNew,
                                            m.address()),
              Status::kOk);
    m.storage().put("ml", enclave->sealed_state());
    return enclave;
  }

  World world_{/*seed=*/808};
  platform::Machine& m0_ = world_.add_machine("m0");
  platform::Machine& m1_ = world_.add_machine("m1");
  std::unique_ptr<MigrationEnclave> me0_;
  std::unique_ptr<MigrationEnclave> me1_;
  std::shared_ptr<const EnclaveImage> image_ =
      EnclaveImage::create("fi-app", 1, "acme");
};

TEST_F(FailureInjectionTest, PseDownDuringMigrationStart) {
  auto enclave = start_enclave(m0_);
  const uint32_t id =
      enclave->ecall_create_migratable_counter().value().counter_id;
  enclave->ecall_increment_migratable_counter(id);

  // Platform Services become unreachable before the counters can be
  // collected/destroyed.
  world_.network().set_endpoint_down(m0_.pse_tcp_endpoint(), true);
  const Status status = enclave->ecall_migration_start("m1");
  EXPECT_EQ(status, Status::kNetworkUnreachable);
  // Nothing reached the destination.
  EXPECT_EQ(me1_->pending_incoming_count(), 0u);

  // Service restored: the migration completes and the value is intact.
  world_.network().set_endpoint_down(m0_.pse_tcp_endpoint(), false);
  ASSERT_EQ(enclave->ecall_migration_start("m1"), Status::kOk);
  enclave.reset();
  auto moved = std::make_unique<MigratableEnclave>(m1_, image_);
  moved->set_persist_callback(
      [this](ByteView s) { m1_.storage().put("ml", s); });
  ASSERT_EQ(moved->ecall_migration_init(ByteView(), InitState::kMigrate, "m1"),
            Status::kOk);
  EXPECT_EQ(moved->ecall_read_migratable_counter(id).value(), 1u);
}

TEST_F(FailureInjectionTest, DoneMessageLostSourceKeepsData) {
  auto enclave = start_enclave(m0_);
  enclave->ecall_create_migratable_counter();
  ASSERT_EQ(enclave->ecall_migration_start("m1"), Status::kOk);
  enclave.reset();

  // Drop the DONE notification from m1's ME back to m0's ME.
  world_.network().set_tamper_hook(
      [](const std::string& to, Bytes& request) {
        if (to != "m0/me") return true;
        auto parsed = migration::MeRequest::deserialize(request);
        return !(parsed.ok() &&
                 parsed.value().type == migration::MeMsgType::kDone);
      });
  auto moved = std::make_unique<MigratableEnclave>(m1_, image_);
  moved->set_persist_callback(
      [this](ByteView s) { m1_.storage().put("ml", s); });
  // Destination completes fine regardless.
  ASSERT_EQ(moved->ecall_migration_init(ByteView(), InitState::kMigrate, "m1"),
            Status::kOk);
  world_.network().clear_tamper_hook();
  // Source ME still holds the data as pending (§V-D: retained until the
  // error is resolved) — availability cost only, never a fork.
  EXPECT_EQ(me0_->outgoing_state(image_->mr_enclave()),
            OutgoingState::kPending);
  // And the destination enclave operates normally.
  EXPECT_TRUE(moved->ecall_increment_migratable_counter(0).ok());
}

TEST_F(FailureInjectionTest, MeRestartLibraryReattests) {
  auto enclave = start_enclave(m0_);
  // Establish the LA channel via a status query.
  ASSERT_TRUE(enclave->ecall_query_migration_status().ok());
  // The management VM (and with it the ME) restarts: all sessions lost.
  me0_.reset();
  me0_ = std::make_unique<MigrationEnclave>(
      m0_, MigrationEnclave::standard_image(), world_.provider());
  // The library transparently re-attests and the query succeeds.
  auto status = enclave->ecall_query_migration_status();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value(), OutgoingState::kNone);
}

TEST_F(FailureInjectionTest, MeRestartDuringMigrationIsRetryable) {
  auto enclave = start_enclave(m0_);
  const uint32_t id =
      enclave->ecall_create_migratable_counter().value().counter_id;
  ASSERT_TRUE(enclave->ecall_query_migration_status().ok());  // open channel
  // ME restarts before the migrate request.
  me0_.reset();
  me0_ = std::make_unique<MigrationEnclave>(
      m0_, MigrationEnclave::standard_image(), world_.provider());
  // migration_start re-attests internally and completes.
  ASSERT_EQ(enclave->ecall_migration_start("m1"), Status::kOk);
  enclave.reset();
  auto moved = std::make_unique<MigratableEnclave>(m1_, image_);
  moved->set_persist_callback(
      [this](ByteView s) { m1_.storage().put("ml", s); });
  ASSERT_EQ(moved->ecall_migration_init(ByteView(), InitState::kMigrate, "m1"),
            Status::kOk);
  EXPECT_EQ(moved->ecall_read_migratable_counter(id).value(), 0u);
}

TEST_F(FailureInjectionTest, DestinationMeCrashBeforeEnclaveStarts) {
  auto enclave = start_enclave(m0_);
  enclave->ecall_create_migratable_counter();
  ASSERT_EQ(enclave->ecall_migration_start("m1"), Status::kOk);
  enclave.reset();
  // m1's ME crashes, losing the pending (in-memory) migration data.
  me1_.reset();
  me1_ = std::make_unique<MigrationEnclave>(
      m1_, MigrationEnclave::standard_image(), world_.provider());
  auto moved = std::make_unique<MigratableEnclave>(m1_, image_);
  moved->set_persist_callback(
      [this](ByteView s) { m1_.storage().put("ml", s); });
  EXPECT_EQ(moved->ecall_migration_init(ByteView(), InitState::kMigrate, "m1"),
            Status::kNoPendingMigration);
  // The source ME still has the retained copy: the operator can re-send
  // (modeled as a fresh migration of the retained data — here we simply
  // assert it was retained, i.e. no data was destroyed).
  EXPECT_EQ(me0_->outgoing_state(image_->mr_enclave()),
            OutgoingState::kPending);
}

TEST_F(FailureInjectionTest, HybsterSurvivesLeaderMigrationUnderChaos) {
  auto& m2 = world_.add_machine("m2");
  MigrationEnclave me2(m2, MigrationEnclave::standard_image(),
                       world_.provider());
  apps::HybsterCluster cluster(m0_, /*follower_count=*/3, image_);
  ASSERT_EQ(cluster.submit("op-1"), Status::kOk);
  ASSERT_EQ(cluster.submit("op-2"), Status::kOk);

  // First migration attempt is sabotaged by the network (corrupting the
  // payload of every message to the destination ME)...
  world_.network().set_tamper_hook(
      [](const std::string& to, Bytes& request) {
        if (to == "m2/me" && request.size() > 16) {
          request[request.size() - 2] ^= 0xff;
        }
        return true;
      });
  EXPECT_NE(cluster.migrate_leader(m2), Status::kOk);
  world_.network().clear_tamper_hook();
  // ...the retry succeeds, and ordering continues gap-free.
  ASSERT_EQ(cluster.migrate_leader(m2), Status::kOk);
  ASSERT_EQ(cluster.submit("op-3"), Status::kOk);
  EXPECT_TRUE(cluster.logs_consistent());
  EXPECT_EQ(cluster.committed(), 3u);
}

}  // namespace
}  // namespace sgxmig

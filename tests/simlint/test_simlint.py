#!/usr/bin/env python3
"""Self-test for scripts/simlint: every seeded fixture violation must be
caught, every `// simlint: allow(...)` suppression must hold, and the
real tree must stay clean.

pytest-style test_* functions, but runnable with a bare python3 (the CI
image has no pytest): the __main__ driver collects and runs them, prints
one PASS/FAIL line each, and exits non-zero on any failure — which is
how ctest consumes it.
"""

from __future__ import annotations

import pathlib
import re
import shutil
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parents[2]
SIMLINT = REPO / "scripts" / "simlint"
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


def run(*args: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run([sys.executable, str(SIMLINT), *args],
                          capture_output=True, text=True, check=False)


# ----- determinism -----

def test_determinism_catches_each_seeded_rule():
    result = run("--root", str(FIXTURES / "determinism"), "determinism")
    assert result.returncode == 1, result.stdout + result.stderr
    expectations = {
        "wall-clock": "bad_wall_clock.cpp",
        "ambient-randomness": "bad_random.cpp",
        "unordered-container": "bad_unordered.cpp",
        "pointer-keyed-ordered": "bad_pointer_key.cpp",
    }
    for rule, path in expectations.items():
        pattern = re.compile(rf"{re.escape(path)}:\d+: \[{re.escape(rule)}\]")
        assert pattern.search(result.stdout), \
            f"expected a [{rule}] finding in {path}:\n{result.stdout}"


def test_determinism_allow_comment_suppresses():
    result = run("--root", str(FIXTURES / "determinism"), "determinism")
    assert "suppressed.cpp" not in result.stdout, result.stdout


def test_determinism_clean_file_and_whitelist_stay_quiet():
    result = run("--root", str(FIXTURES / "determinism"), "determinism")
    assert "clean.cpp" not in result.stdout, result.stdout
    assert "sim_clock.h" not in result.stdout, result.stdout


def test_determinism_flags_wall_clock_variants():
    result = run("--root", str(FIXTURES / "determinism"), "determinism")
    assert "steady_clock" in result.stdout
    assert "system_clock" in result.stdout
    assert re.search(r"bad_wall_clock\.cpp:1[45]: \[wall-clock\].*time",
                     result.stdout), result.stdout


# ----- protocol -----

def _protocol_args(tree: pathlib.Path) -> list[str]:
    return [
        "--root", str(tree), "protocol",
        "--protocol-header", str(tree / "src/migration/protocol.h"),
        "--enclave", str(tree / "src/migration/migration_enclave.cpp"),
        "--library", str(tree / "src/migration/migration_library.cpp"),
        "--tests-dir", str(tree / "tests"),
    ]


def test_protocol_catches_each_seeded_rule():
    result = run(*_protocol_args(FIXTURES / "protocol" / "bad"))
    assert result.returncode == 1, result.stdout + result.stderr
    for rule, needle in [
        ("protocol-missing-handler", "kOrphan"),
        ("protocol-duplicate-case", "kTransfer"),
        ("protocol-stale-case", "kGone"),
        ("protocol-consume", "kIgnored"),
        ("protocol-untested", "kSecret"),
    ]:
        pattern = re.compile(rf"\[{re.escape(rule)}\].*{needle}")
        assert pattern.search(result.stdout), \
            f"expected [{rule}] naming {needle}:\n{result.stdout}"


def test_protocol_allow_comments_suppress():
    result = run(*_protocol_args(FIXTURES / "protocol" / "ok"))
    assert result.returncode == 0, result.stdout + result.stderr


def test_protocol_real_tree_is_clean():
    result = run("--root", str(REPO), "protocol")
    assert result.returncode == 0, result.stdout + result.stderr


def _real_protocol_tree(tmp: pathlib.Path) -> pathlib.Path:
    """Copy the real protocol sources into tmp for mutation tests."""
    dst = tmp / "src" / "migration"
    dst.mkdir(parents=True)
    for name in ("protocol.h", "migration_enclave.cpp",
                 "migration_library.cpp"):
        shutil.copy(REPO / "src" / "migration" / name, dst / name)
    return tmp


def _mutated_args(tree: pathlib.Path) -> list[str]:
    # tests-dir stays the REAL tests tree: the mutations below must be
    # caught by the handler checks, not masked by a missing-mention.
    return [
        "--root", str(tree), "protocol",
        "--protocol-header", str(tree / "src/migration/protocol.h"),
        "--enclave", str(tree / "src/migration/migration_enclave.cpp"),
        "--library", str(tree / "src/migration/migration_library.cpp"),
        "--tests-dir", str(REPO / "tests"),
    ]


def test_deleting_a_libmsg_handler_case_fails():
    with tempfile.TemporaryDirectory() as tmp_name:
        tree = _real_protocol_tree(pathlib.Path(tmp_name))
        enclave = tree / "src/migration/migration_enclave.cpp"
        text = enclave.read_text()
        mutated = text.replace(
            "    case LibMsgType::kPollTransfer:\n"
            "      reply = on_poll_transfer(session, msg.value());\n"
            "      break;\n", "", 1)
        assert mutated != text, "handler case to delete not found"
        enclave.write_text(mutated)
        result = run(*_mutated_args(tree))
        assert result.returncode == 1, result.stdout + result.stderr
        assert "protocol-missing-handler" in result.stdout
        assert "kPollTransfer" in result.stdout


def test_adding_an_unhandled_enum_value_fails():
    with tempfile.TemporaryDirectory() as tmp_name:
        tree = _real_protocol_tree(pathlib.Path(tmp_name))
        header = tree / "src/migration/protocol.h"
        text = header.read_text()
        mutated = text.replace(
            "  kArmAck = 22,",
            "  kArmAck = 22,\n  kFuzzProbe = 23,  // request: new, unhandled",
            1)
        assert mutated != text, "anchor enumerator not found"
        header.write_text(mutated)
        result = run(*_mutated_args(tree))
        assert result.returncode == 1, result.stdout + result.stderr
        assert "protocol-missing-handler" in result.stdout
        assert "kFuzzProbe" in result.stdout
        # The new value is also untested: both gates must trip.
        assert "protocol-untested" in result.stdout


# ----- layering -----

def test_layering_catches_cross_layer_include():
    result = run("--root", str(FIXTURES / "layering" / "bad"), "layering")
    assert result.returncode == 1, result.stdout + result.stderr
    assert "LAYERING VIOLATION: src/core must not include engine/:" \
        in result.stdout, result.stdout
    assert "check_layering: FAILED" in result.stdout


def test_layering_allows_declared_dependencies():
    result = run("--root", str(FIXTURES / "layering" / "ok"), "layering")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "check_layering: OK" in result.stdout


def test_layering_real_tree_is_clean():
    result = run("--root", str(REPO), "layering")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "check_layering: OK" in result.stdout


# ----- pycheck -----

def test_pycheck_catches_seeded_violations():
    result = run("--root", str(REPO), "pycheck",
                 str(FIXTURES / "pycheck" / "bad_script.py"))
    assert result.returncode == 1, result.stdout + result.stderr
    for rule in ("py-unused-import", "py-duplicate-def", "py-assert-tuple"):
        assert f"[{rule}]" in result.stdout, result.stdout


def test_pycheck_allow_comments_suppress():
    result = run("--root", str(REPO), "pycheck",
                 str(FIXTURES / "pycheck" / "suppressed.py"))
    assert result.returncode == 0, result.stdout + result.stderr


def test_pycheck_real_tree_is_clean():
    result = run("--root", str(REPO), "pycheck")
    assert result.returncode == 0, result.stdout + result.stderr


# ----- driver -----

def main() -> int:
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as err:
            failures += 1
            detail = str(err).strip().splitlines()
            print(f"FAIL {name}: {detail[0] if detail else 'assertion'}")
            for line in detail[1:12]:
                print(f"     {line}")
    print(f"{len(tests) - failures}/{len(tests)} simlint self-tests passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

// Mini protocol header with one seeded violation per protocol rule.
#pragma once
#include <cstdint>

enum class MeMsgType : uint8_t {
  kPing = 1,
  kTransfer = 2,
  kOrphan = 3,  // seeded: protocol-missing-handler (no case in dispatch)
};

enum class LibMsgType : uint8_t {
  // requests (ML -> ME)
  kMigrate = 1,
  kQuery = 2,
  // responses (ME -> ML)
  kAck = 3,
  kIgnored = 4,  // seeded: protocol-consume (library never inspects it)
  kSecret = 5,   // seeded: protocol-untested (no mention under tests/)
};

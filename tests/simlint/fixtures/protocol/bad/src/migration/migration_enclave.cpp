// Mini dispatcher with seeded duplicate and stale cases.
#include "protocol.h"

int dispatch_outer(MeMsgType type) {
  switch (type) {
    case MeMsgType::kPing:
      return 1;
    case MeMsgType::kTransfer:
      return 2;
    case MeMsgType::kTransfer:  // seeded: protocol-duplicate-case (dead)
      return 3;
    case MeMsgType::kGone:  // seeded: protocol-stale-case (not in enum)
      return 4;
  }
  return 0;
}

int dispatch_lib(LibMsgType type) {
  switch (type) {
    case LibMsgType::kMigrate:
      return 1;
    case LibMsgType::kQuery:
      return 2;
    default:
      return 0;
  }
}

// Mini consumer: checks kAck and kSecret replies, never kIgnored.
#include "protocol.h"

bool reply_ok(LibMsgType type) {
  return type == LibMsgType::kAck || type == LibMsgType::kSecret;
}

// Mentions every enumerator except the seeded protocol-untested one
// (the "secret" response type).  kOrphan is mentioned so the
// missing-handler finding stays the only one attached to it.
#include "../src/migration/protocol.h"

int coverage() {
  int sum = 0;
  sum += static_cast<int>(MeMsgType::kPing);
  sum += static_cast<int>(MeMsgType::kTransfer);
  sum += static_cast<int>(MeMsgType::kOrphan);
  sum += static_cast<int>(LibMsgType::kMigrate);
  sum += static_cast<int>(LibMsgType::kQuery);
  sum += static_cast<int>(LibMsgType::kAck);
  sum += static_cast<int>(LibMsgType::kIgnored);
  return sum;
}

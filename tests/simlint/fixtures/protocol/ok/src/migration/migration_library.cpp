#include "protocol.h"

bool reply_ok(LibMsgType type) { return type == LibMsgType::kAck; }

#include "protocol.h"

int dispatch_outer(MeMsgType type) {
  switch (type) {
    case MeMsgType::kPing:
      return 1;
    default:
      return 0;
  }
}

int dispatch_lib(LibMsgType type) {
  switch (type) {
    case LibMsgType::kMigrate:
      return 1;
    default:
      return 0;
  }
}

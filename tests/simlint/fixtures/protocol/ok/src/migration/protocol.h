// Clean mini protocol header: every deliberate gap carries the
// per-enumerator escape hatch, so the checker must report nothing.
#pragma once
#include <cstdint>

enum class MeMsgType : uint8_t {
  kPing = 1,
  // A value that is dispatched nowhere yet, explicitly acknowledged:
  kReserved = 2,  // simlint: allow(protocol-missing-handler, protocol-untested)
};

enum class LibMsgType : uint8_t {
  // requests (ML -> ME)
  kMigrate = 1,
  // responses (ME -> ML)
  kAck = 2,
  kFireAndForget = 3,  // simlint: allow(protocol-consume, protocol-untested)
};

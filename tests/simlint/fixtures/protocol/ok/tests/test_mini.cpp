#include "../src/migration/protocol.h"

int coverage() {
  return static_cast<int>(MeMsgType::kPing) +
         static_cast<int>(LibMsgType::kMigrate) +
         static_cast<int>(LibMsgType::kAck);
}

// Harness code may include any layer in SGXMIG_ALL_LIBS.
#include "core/core.h"
#include "engine/engine.h"

int main() { return engine_value() == core_value() + 1 ? 0 : 1; }

#include "core/core.h"

int core_value() { return 1; }

#pragma once
// Seeded violation: the lower layer reaches UP into engine/ even though
// sgxmig_core does not link sgxmig_engine.
#include "engine/engine.h"

int core_value();

// Legal downward include: engine declares DEPS sgxmig::core.
#include "core/core.h"
#include "engine/engine.h"

int engine_value() { return core_value() + 1; }

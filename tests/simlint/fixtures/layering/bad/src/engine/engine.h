#pragma once

int engine_value();

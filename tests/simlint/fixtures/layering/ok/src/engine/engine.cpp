#include "core/core.h"

int engine_value() { return core_value() + 1; }

#pragma once

int core_value();

// Deterministic code: ordered containers keyed on stable ids, time from
// an injected clock, randomness from an explicitly seeded engine.  Also
// exercises the false-positive surface: "time(" inside comments and
// strings, identifiers ending in the forbidden stems (wall_time,
// retry_time), member access spelled .time(), and a seeded mt19937
// must all pass.
#include <cstdint>
#include <map>
#include <random>
#include <string>

struct Clock {
  std::uint64_t now_ns = 0;
  std::uint64_t now() const { return now_ns; }
};

struct Timings {
  std::uint64_t time_value = 0;
  std::uint64_t time() const;  // simlint: allow(wall-clock) member, not ::time
};

// Comment mentioning time() and rand() and system_clock must not trip.
std::uint64_t fixture_clean(const Clock& clock) {
  std::mt19937 seeded(12345);  // explicit seed: reproducible
  std::map<std::string, std::uint64_t> wall_time_by_lane;
  Timings timings;
  wall_time_by_lane["lane-0"] = clock.now() + seeded() + timings.time();
  const std::string label = "time(now) rand() steady_clock";  // literal
  return wall_time_by_lane["lane-0"] + label.size();
}

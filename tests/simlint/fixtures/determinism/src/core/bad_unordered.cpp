// Seeded violation: hash-ordered container (iteration-order hazard).
#include <string>
#include <unordered_map>

int fixture_count(const std::string& key) {
  std::unordered_map<std::string, int> counts;
  counts[key] = 1;
  int total = 0;
  for (const auto& entry : counts) total += entry.second;
  return total;
}

// Seeded violation: ambient randomness (non-reproducible runs).
#include <cstdlib>
#include <random>

unsigned fixture_ambient_random() {
  std::random_device device;
  std::mt19937 unseeded;
  return device() + unseeded() + static_cast<unsigned>(rand());
}

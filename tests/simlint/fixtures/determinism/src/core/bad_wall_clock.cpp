// Seeded violation: wall-clock read in simulator code.
#include <chrono>

long long fixture_wall_clock_nanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long long fixture_system_clock_nanos() {
  auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count();
}

long long fixture_libc_time() {
  return static_cast<long long>(time(nullptr));
}

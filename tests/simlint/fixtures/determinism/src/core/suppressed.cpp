// Every rule violated once, every violation suppressed with the
// per-line escape hatch: this file must produce ZERO findings.
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <unordered_map>

struct Widget {};

long long fixture_suppressed() {
  auto t = std::chrono::steady_clock::now();  // simlint: allow(wall-clock)
  std::random_device dev;  // simlint: allow(ambient-randomness)
  std::unordered_map<int, int> m;  // simlint: allow(unordered-container)
  std::map<Widget*, int> p;  // simlint: allow(pointer-keyed-ordered)
  m[1] = static_cast<int>(dev());
  p[nullptr] = 2;
  return t.time_since_epoch().count() + m[1] + p[nullptr];
}

// Seeded violation: pointer-keyed ordered container (ASLR-dependent
// iteration order).
#include <map>
#include <set>

struct Session {};

int fixture_pointer_keys(Session* a, Session* b) {
  std::map<Session*, int> by_session;
  by_session[a] = 1;
  by_session[b] = 2;
  std::set<const Session*> seen;
  seen.insert(a);
  int total = 0;
  for (const auto& entry : by_session) total += entry.second;
  return total + static_cast<int>(seen.size());
}

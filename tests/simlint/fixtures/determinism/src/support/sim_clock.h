// Whitelisted file: the virtual clock itself may name wall-clock types
// (this fixture mirrors src/support/sim_clock.h's privileged position).
#pragma once
#include <chrono>

inline long long fixture_whitelisted_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

"""Same violations as bad_script.py, each suppressed: zero findings."""

import json
import os  # simlint: allow(py-unused-import)


def report():  # simlint: allow(py-duplicate-def) — overridden on purpose
    return json.dumps({})


def report():  # simlint: allow(py-duplicate-def)
    assert ("fine", "suppressed")  # simlint: allow(py-assert-tuple)
    return "{}"

"""Seeded Python violations: unused import, duplicate def, assert-tuple."""

import json
import os  # seeded: py-unused-import


def report():  # seeded: py-duplicate-def shadows this one below
    return json.dumps({})


def report():
    assert ("always", "true")  # seeded: py-assert-tuple
    return "{}"

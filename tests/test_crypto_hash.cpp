// SHA-256 / SHA-512 / HMAC / HKDF tests against published vectors
// (FIPS 180-4 examples, RFC 4231, RFC 5869).
#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "support/bytes.h"

namespace sgxmig::crypto {
namespace {

std::string sha256_hex(ByteView data) {
  const auto d = Sha256::hash(data);
  return hex_encode(ByteView(d.data(), d.size()));
}

std::string sha512_hex(ByteView data) {
  const auto d = Sha512::hash(data);
  return hex_encode(ByteView(d.data(), d.size()));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(sha256_hex(ByteView()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256_hex(to_bytes(std::string_view("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256_hex(to_bytes(std::string_view(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finish();
  EXPECT_EQ(hex_encode(ByteView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes(std::string_view(
      "The quick brown fox jumps over the lazy dog, repeatedly and often."));
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(ByteView(msg.data(), split));
    h.update(ByteView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(sha512_hex(ByteView()),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(sha512_hex(to_bytes(std::string_view("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(
      sha512_hex(to_bytes(std::string_view(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
      "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
      "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes(std::string_view(
      "Persistent state must be migrated together with the enclave."));
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha512 h;
    h.update(ByteView(msg.data(), split));
    h.update(ByteView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), Sha512::hash(msg)) << "split=" << split;
  }
}

// RFC 4231 HMAC-SHA256 test cases.
TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha256(key, to_bytes(std::string_view("Hi There")));
  EXPECT_EQ(hex_encode(ByteView(mac.data(), mac.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const auto mac = hmac_sha256(to_bytes(std::string_view("Jefe")),
                               to_bytes(std::string_view(
                                   "what do ya want for nothing?")));
  EXPECT_EQ(hex_encode(ByteView(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const auto mac = hmac_sha256(key, data);
  EXPECT_EQ(hex_encode(ByteView(mac.data(), mac.size())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case4) {
  Bytes key;
  for (uint8_t i = 1; i <= 25; ++i) key.push_back(i);
  const Bytes data(50, 0xcd);
  const auto mac = hmac_sha256(key, data);
  EXPECT_EQ(hex_encode(ByteView(mac.data(), mac.size())),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, KeyLongerThanBlockIsHashed) {
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, to_bytes(std::string_view(
               "Test Using Larger Than Block-Size Key - Hash Key First")));
  EXPECT_EQ(hex_encode(ByteView(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha512, SelfConsistency) {
  // No published vector needed for the uses in this repo; check basic
  // properties: key sensitivity and message sensitivity.
  const Bytes key1 = to_bytes(std::string_view("key-1"));
  const Bytes key2 = to_bytes(std::string_view("key-2"));
  const Bytes msg = to_bytes(std::string_view("message"));
  EXPECT_NE(hmac_sha512(key1, msg), hmac_sha512(key2, msg));
  EXPECT_EQ(hmac_sha512(key1, msg), hmac_sha512(key1, msg));
}

// RFC 5869 HKDF-SHA256 test cases.
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  Bytes salt;
  for (uint8_t i = 0; i <= 0x0c; ++i) salt.push_back(i);
  Bytes info;
  for (uint8_t i = 0xf0; i <= 0xf9; ++i) info.push_back(i);
  const Bytes okm = hkdf_sha256(ikm, salt, info, 42);
  EXPECT_EQ(hex_encode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltAndInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf_sha256(ikm, ByteView(), ByteView(), 42);
  EXPECT_EQ(hex_encode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ProducesRequestedLengths) {
  const Bytes ikm = to_bytes(std::string_view("input key material"));
  for (size_t len : {size_t{1}, size_t{16}, size_t{32}, size_t{33}, size_t{64},
                     size_t{255}}) {
    EXPECT_EQ(hkdf_sha256(ikm, ByteView(), ByteView(), len).size(), len);
  }
}

TEST(Hkdf, InfoSeparatesKeys) {
  const Bytes ikm = to_bytes(std::string_view("shared secret"));
  const Bytes k1 = hkdf_sha256(ikm, ByteView(), to_bytes(std::string_view("enc")), 16);
  const Bytes k2 = hkdf_sha256(ikm, ByteView(), to_bytes(std::string_view("mac")), 16);
  EXPECT_NE(k1, k2);
}

TEST(Hkdf, RejectsOversizedRequest) {
  EXPECT_THROW(hkdf_sha256(Bytes(16, 1), ByteView(), ByteView(), 255 * 32 + 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace sgxmig::crypto

// X25519 (RFC 7748) and Ed25519 (RFC 8032) tests against the RFC vectors,
// plus negative tests and field/scalar arithmetic properties.
#include <gtest/gtest.h>

#include "crypto/ed25519.h"
#include "crypto/fe25519.h"
#include "crypto/sc25519.h"
#include "crypto/x25519.h"
#include "support/bytes.h"

namespace sgxmig::crypto {
namespace {

X25519Key key_from_hex(std::string_view hex) {
  bool ok = false;
  const Bytes b = hex_decode(hex, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(b.size(), 32u);
  return to_array<32>(b);
}

std::string key_to_hex(const X25519Key& k) {
  return hex_encode(ByteView(k.data(), k.size()));
}

TEST(Fe25519, AddSubRoundTrip) {
  const Fe a = fe_from_u64(123456789);
  const Fe b = fe_from_u64(987654321);
  const Fe sum = fe_add(a, b);
  EXPECT_TRUE(fe_equal(fe_sub(sum, b), a));
  EXPECT_TRUE(fe_equal(fe_sub(sum, a), b));
}

TEST(Fe25519, MulCommutesAndDistributes) {
  const Fe a = fe_from_u64(0xdeadbeefcafeULL);
  const Fe b = fe_from_u64(0x123456789abcULL);
  const Fe c = fe_from_u64(0x42);
  EXPECT_TRUE(fe_equal(fe_mul(a, b), fe_mul(b, a)));
  EXPECT_TRUE(fe_equal(fe_mul(a, fe_add(b, c)),
                       fe_add(fe_mul(a, b), fe_mul(a, c))));
}

TEST(Fe25519, InvertGivesOne) {
  const Fe a = fe_from_u64(0x1234567890abcdefULL);
  EXPECT_TRUE(fe_equal(fe_mul(a, fe_invert(a)), fe_one()));
}

TEST(Fe25519, SqrtM1SquaresToMinusOne) {
  const Fe& s = fe_sqrtm1();
  EXPECT_TRUE(fe_equal(fe_sq(s), fe_neg(fe_one())));
}

TEST(Fe25519, ToBytesIsCanonical) {
  // p encodes as 0, p+1 encodes as 1.
  Fe p = fe_zero();
  p.v[0] = 0x7ffffffffffedULL;  // 2^51 - 19
  for (int i = 1; i < 5; ++i) p.v[i] = 0x7ffffffffffffULL;
  uint8_t out[32];
  fe_tobytes(out, p);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[i], 0) << i;
  p.v[0] += 1;
  fe_tobytes(out, p);
  EXPECT_EQ(out[0], 1);
  for (int i = 1; i < 32; ++i) EXPECT_EQ(out[i], 0) << i;
}

TEST(Fe25519, FromBytesToBytesRoundTrip) {
  uint8_t in[32];
  for (int i = 0; i < 32; ++i) in[i] = static_cast<uint8_t>(3 * i + 1);
  in[31] &= 0x7f;  // canonical (below p)
  const Fe f = fe_frombytes(in);
  uint8_t out[32];
  fe_tobytes(out, f);
  EXPECT_EQ(hex_encode(ByteView(out, 32)), hex_encode(ByteView(in, 32)));
}

TEST(Fe25519, CswapSwapsExactlyWhenAsked) {
  Fe a = fe_from_u64(1);
  Fe b = fe_from_u64(2);
  fe_cswap(a, b, 0);
  EXPECT_TRUE(fe_equal(a, fe_from_u64(1)));
  fe_cswap(a, b, 1);
  EXPECT_TRUE(fe_equal(a, fe_from_u64(2)));
  EXPECT_TRUE(fe_equal(b, fe_from_u64(1)));
}

TEST(X25519, Rfc7748Vector1) {
  const auto scalar = key_from_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const auto point = key_from_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(key_to_hex(x25519(scalar, point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  const auto scalar = key_from_hex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const auto point = key_from_hex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(key_to_hex(x25519(scalar, point)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519, Rfc7748DiffieHellman) {
  const auto alice_priv = key_from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_priv = key_from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  const auto alice_pub = x25519_base(alice_priv);
  const auto bob_pub = x25519_base(bob_priv);
  EXPECT_EQ(key_to_hex(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(key_to_hex(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  const auto shared_a = x25519(alice_priv, bob_pub);
  const auto shared_b = x25519(bob_priv, alice_pub);
  EXPECT_EQ(shared_a, shared_b);
  EXPECT_EQ(key_to_hex(shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, Rfc7748IteratedOnce) {
  X25519Key k{};
  k[0] = 9;
  X25519Key u = k;
  const X25519Key r = x25519(k, u);
  EXPECT_EQ(key_to_hex(r),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
}

TEST(X25519, Rfc7748Iterated1000) {
  X25519Key k{};
  k[0] = 9;
  X25519Key u = k;
  for (int i = 0; i < 1000; ++i) {
    const X25519Key r = x25519(k, u);
    u = k;
    k = r;
  }
  EXPECT_EQ(key_to_hex(k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

TEST(Sc25519, ReduceKnownValues) {
  // L reduces to 0.
  const Bytes l_bytes = hex_decode(
      "edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  const Sc r = sc_from_bytes(l_bytes);
  uint8_t out[32];
  sc_tobytes(out, r);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[i], 0) << i;
}

TEST(Sc25519, SmallValuesUntouched) {
  const Bytes five = {5};
  const Sc r = sc_from_bytes(five);
  uint8_t out[32];
  sc_tobytes(out, r);
  EXPECT_EQ(out[0], 5);
  for (int i = 1; i < 32; ++i) EXPECT_EQ(out[i], 0);
}

TEST(Sc25519, MulAddMatchesSchoolbook) {
  // (3 * 7 + 5) mod L = 26.
  const Sc a = sc_from_bytes(Bytes{3});
  const Sc b = sc_from_bytes(Bytes{7});
  const Sc c = sc_from_bytes(Bytes{5});
  uint8_t out[32];
  sc_tobytes(out, sc_muladd(a, b, c));
  EXPECT_EQ(out[0], 26);
}

TEST(Sc25519, AddWrapsModL) {
  // (L - 1) + 2 = 1 mod L.
  const Bytes l_minus_1 = hex_decode(
      "ecd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  const Sc a = sc_from_bytes(l_minus_1);
  const Sc b = sc_from_bytes(Bytes{2});
  uint8_t out[32];
  sc_tobytes(out, sc_add(a, b));
  EXPECT_EQ(out[0], 1);
  for (int i = 1; i < 32; ++i) EXPECT_EQ(out[i], 0);
}

TEST(Sc25519, CanonicalCheck) {
  uint8_t zero[32] = {0};
  EXPECT_TRUE(sc_is_canonical(zero));
  const Bytes l_bytes = hex_decode(
      "edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  EXPECT_FALSE(sc_is_canonical(l_bytes.data()));
  uint8_t max[32];
  for (auto& b : max) b = 0xff;
  EXPECT_FALSE(sc_is_canonical(max));
}

struct Rfc8032Vector {
  const char* seed;
  const char* public_key;
  const char* message;
  const char* signature;
};

const Rfc8032Vector kEd25519Vectors[] = {
    {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c", "72",
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
    {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
     "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
     "af82",
     "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
     "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
};

class Ed25519Rfc8032 : public ::testing::TestWithParam<Rfc8032Vector> {};

TEST_P(Ed25519Rfc8032, KeyGenSignVerify) {
  const auto& v = GetParam();
  const auto seed = to_array<32>(hex_decode(v.seed));
  const Bytes message = hex_decode(v.message);
  const auto kp = Ed25519KeyPair::from_seed(seed);
  EXPECT_EQ(hex_encode(ByteView(kp.public_key().data(), 32)), v.public_key);
  const Ed25519Signature sig = kp.sign(message);
  EXPECT_EQ(hex_encode(ByteView(sig.data(), sig.size())), v.signature);
  EXPECT_TRUE(ed25519_verify(kp.public_key(), message, sig));
}

INSTANTIATE_TEST_SUITE_P(Rfc8032, Ed25519Rfc8032,
                         ::testing::ValuesIn(kEd25519Vectors));

TEST(Ed25519, RejectsTamperedSignature) {
  const auto seed = to_array<32>(Bytes(32, 0x42));
  const auto kp = Ed25519KeyPair::from_seed(seed);
  const Bytes msg = to_bytes(std::string_view("migrate me"));
  Ed25519Signature sig = kp.sign(msg);
  sig[0] ^= 1;
  EXPECT_FALSE(ed25519_verify(kp.public_key(), msg, sig));
}

TEST(Ed25519, RejectsTamperedMessage) {
  const auto seed = to_array<32>(Bytes(32, 0x42));
  const auto kp = Ed25519KeyPair::from_seed(seed);
  const Ed25519Signature sig = kp.sign(to_bytes(std::string_view("v1")));
  EXPECT_FALSE(
      ed25519_verify(kp.public_key(), to_bytes(std::string_view("v2")), sig));
}

TEST(Ed25519, RejectsWrongPublicKey) {
  const auto kp1 = Ed25519KeyPair::from_seed(to_array<32>(Bytes(32, 1)));
  const auto kp2 = Ed25519KeyPair::from_seed(to_array<32>(Bytes(32, 2)));
  const Bytes msg = to_bytes(std::string_view("hello"));
  EXPECT_FALSE(ed25519_verify(kp2.public_key(), msg, kp1.sign(msg)));
}

TEST(Ed25519, RejectsNonCanonicalS) {
  const auto kp = Ed25519KeyPair::from_seed(to_array<32>(Bytes(32, 3)));
  const Bytes msg = to_bytes(std::string_view("msg"));
  Ed25519Signature sig = kp.sign(msg);
  // Force S >= L by setting the top bytes.
  for (int i = 32; i < 64; ++i) sig[i] = 0xff;
  EXPECT_FALSE(ed25519_verify(kp.public_key(), msg, sig));
}

TEST(Ed25519, DifferentSeedsDifferentKeys) {
  const auto kp1 = Ed25519KeyPair::from_seed(to_array<32>(Bytes(32, 7)));
  const auto kp2 = Ed25519KeyPair::from_seed(to_array<32>(Bytes(32, 8)));
  EXPECT_NE(kp1.public_key(), kp2.public_key());
}

TEST(Ed25519, SignatureDeterministic) {
  const auto kp = Ed25519KeyPair::from_seed(to_array<32>(Bytes(32, 9)));
  const Bytes msg = to_bytes(std::string_view("deterministic"));
  EXPECT_EQ(kp.sign(msg), kp.sign(msg));
}

}  // namespace
}  // namespace sgxmig::crypto

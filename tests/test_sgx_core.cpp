// Tests for the simulated SGX core: measurement, CPU key derivation,
// sealing semantics (the machine-binding that motivates the paper), and
// enclave lifecycle.
#include <gtest/gtest.h>

#include "platform/world.h"
#include "sgx/enclave.h"
#include "sgx/measurement.h"
#include "sgx/sealing.h"

namespace sgxmig {
namespace {

using platform::World;
using sgx::EnclaveImage;
using sgx::KeyName;
using sgx::KeyPolicy;

class SgxCoreTest : public ::testing::Test {
 protected:
  World world_{/*seed=*/1234};
  platform::Machine& m0_ = world_.add_machine("m0");
  platform::Machine& m1_ = world_.add_machine("m1");
};

TEST_F(SgxCoreTest, SameImageSameMeasurementEverywhere) {
  const auto image_a = EnclaveImage::create("app", 1, "acme");
  const auto image_b = EnclaveImage::create("app", 1, "acme");
  EXPECT_EQ(image_a->mr_enclave(), image_b->mr_enclave());
  EXPECT_EQ(image_a->mr_signer(), image_b->mr_signer());
}

TEST_F(SgxCoreTest, DifferentVersionDifferentMrenclave) {
  const auto v1 = EnclaveImage::create("app", 1, "acme");
  const auto v2 = EnclaveImage::create("app", 2, "acme");
  EXPECT_NE(v1->mr_enclave(), v2->mr_enclave());
  // Same signer: MRSIGNER unchanged (this is what allows upgrades with
  // MRSIGNER sealing).
  EXPECT_EQ(v1->mr_signer(), v2->mr_signer());
}

TEST_F(SgxCoreTest, DifferentSignerDifferentMrsigner) {
  const auto a = EnclaveImage::create("app", 1, "acme");
  const auto b = EnclaveImage::create("app", 1, "evil-corp");
  EXPECT_NE(a->mr_signer(), b->mr_signer());
}

TEST_F(SgxCoreTest, SealingKeysDifferAcrossMachines) {
  const auto image = EnclaveImage::create("app", 1, "acme");
  const sgx::EnclaveIdentity id = image->identity();
  sgx::KeyId key_id{};
  const auto k0 = m0_.cpu().get_key(KeyName::kSeal, KeyPolicy::kMrEnclave, id,
                                    key_id);
  const auto k1 = m1_.cpu().get_key(KeyName::kSeal, KeyPolicy::kMrEnclave, id,
                                    key_id);
  EXPECT_NE(k0, k1);
}

TEST_F(SgxCoreTest, SealingKeysDifferAcrossPoliciesAndIdentities) {
  const auto a = EnclaveImage::create("app-a", 1, "acme");
  const auto b = EnclaveImage::create("app-b", 1, "acme");
  sgx::KeyId key_id{};
  const auto ka = m0_.cpu().get_key(KeyName::kSeal, KeyPolicy::kMrEnclave,
                                    a->identity(), key_id);
  const auto kb = m0_.cpu().get_key(KeyName::kSeal, KeyPolicy::kMrEnclave,
                                    b->identity(), key_id);
  EXPECT_NE(ka, kb);
  // Same signer => same MRSIGNER key even for different code.
  const auto sa = m0_.cpu().get_key(KeyName::kSeal, KeyPolicy::kMrSigner,
                                    a->identity(), key_id);
  const auto sb = m0_.cpu().get_key(KeyName::kSeal, KeyPolicy::kMrSigner,
                                    b->identity(), key_id);
  EXPECT_EQ(sa, sb);
}

// A minimal concrete enclave exposing the trusted runtime for testing.
class TestEnclave : public sgx::Enclave {
 public:
  TestEnclave(sgx::PlatformIface& platform,
              std::shared_ptr<const EnclaveImage> image)
      : Enclave(platform, std::move(image)) {}

  Result<Bytes> ecall_seal(KeyPolicy policy, ByteView aad, ByteView pt) {
    auto scope = enter_ecall();
    return seal(policy, aad, pt);
  }
  Result<sgx::UnsealedData> ecall_unseal(ByteView blob) {
    auto scope = enter_ecall();
    return unseal(blob);
  }
};

TEST_F(SgxCoreTest, SealUnsealRoundTrip) {
  const auto image = EnclaveImage::create("app", 1, "acme");
  TestEnclave enclave(m0_, image);
  const Bytes aad = to_bytes(std::string_view("version=7"));
  const Bytes pt = to_bytes(std::string_view("the secret"));
  auto sealed = enclave.ecall_seal(KeyPolicy::kMrEnclave, aad, pt);
  ASSERT_TRUE(sealed.ok());
  auto unsealed = enclave.ecall_unseal(sealed.value());
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(unsealed.value().plaintext, pt);
  EXPECT_EQ(unsealed.value().aad, aad);
}

TEST_F(SgxCoreTest, SealedDataSurvivesEnclaveRestart) {
  const auto image = EnclaveImage::create("app", 1, "acme");
  Bytes sealed;
  {
    TestEnclave first(m0_, image);
    sealed = first.ecall_seal(KeyPolicy::kMrEnclave, ByteView(),
                              to_bytes(std::string_view("persist me")))
                 .value();
  }  // enclave destroyed: EPC contents gone
  TestEnclave second(m0_, image);
  auto unsealed = second.ecall_unseal(sealed);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(to_string(unsealed.value().plaintext), "persist me");
}

TEST_F(SgxCoreTest, SealedDataDoesNotUnsealOnOtherMachine) {
  // THE motivating failure of the paper: the same enclave identity on a
  // different machine derives a different sealing key.
  const auto image = EnclaveImage::create("app", 1, "acme");
  TestEnclave src(m0_, image);
  TestEnclave dst(m1_, image);
  const auto sealed = src.ecall_seal(KeyPolicy::kMrEnclave, ByteView(),
                                     to_bytes(std::string_view("secret")));
  ASSERT_TRUE(sealed.ok());
  auto unsealed = dst.ecall_unseal(sealed.value());
  EXPECT_FALSE(unsealed.ok());
  EXPECT_EQ(unsealed.status(), Status::kMacMismatch);
}

TEST_F(SgxCoreTest, MrenclaveSealingRejectsOtherEnclave) {
  const auto image_a = EnclaveImage::create("app-a", 1, "acme");
  const auto image_b = EnclaveImage::create("app-b", 1, "acme");
  TestEnclave a(m0_, image_a);
  TestEnclave b(m0_, image_b);
  const auto sealed = a.ecall_seal(KeyPolicy::kMrEnclave, ByteView(),
                                   to_bytes(std::string_view("mine")));
  EXPECT_FALSE(b.ecall_unseal(sealed.value()).ok());
}

TEST_F(SgxCoreTest, MrsignerSealingAllowsUpgradedEnclave) {
  const auto v1 = EnclaveImage::create("app", 1, "acme");
  const auto v2 = EnclaveImage::create("app", 2, "acme");
  TestEnclave old_version(m0_, v1);
  TestEnclave new_version(m0_, v2);
  const auto sealed = old_version.ecall_seal(
      KeyPolicy::kMrSigner, ByteView(), to_bytes(std::string_view("carry")));
  auto unsealed = new_version.ecall_unseal(sealed.value());
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(to_string(unsealed.value().plaintext), "carry");
}

TEST_F(SgxCoreTest, MrsignerSealingRejectsOtherSigner) {
  const auto acme = EnclaveImage::create("app", 1, "acme");
  const auto evil = EnclaveImage::create("app", 1, "evil-corp");
  TestEnclave a(m0_, acme);
  TestEnclave e(m0_, evil);
  const auto sealed = a.ecall_seal(KeyPolicy::kMrSigner, ByteView(),
                                   to_bytes(std::string_view("ours")));
  EXPECT_FALSE(e.ecall_unseal(sealed.value()).ok());
}

TEST_F(SgxCoreTest, TamperedSealedBlobRejected) {
  const auto image = EnclaveImage::create("app", 1, "acme");
  TestEnclave enclave(m0_, image);
  auto sealed = enclave.ecall_seal(KeyPolicy::kMrEnclave, ByteView(),
                                   to_bytes(std::string_view("integrity")));
  ASSERT_TRUE(sealed.ok());
  for (size_t pos : {size_t{10}, sealed.value().size() / 2,
                     sealed.value().size() - 1}) {
    Bytes corrupted = sealed.value();
    corrupted[pos] ^= 0x01;
    EXPECT_FALSE(enclave.ecall_unseal(corrupted).ok()) << "pos=" << pos;
  }
}

TEST_F(SgxCoreTest, TamperedAadRejectedButReadable) {
  // AAD is plaintext in the blob (readable by the OS) yet authenticated.
  const auto image = EnclaveImage::create("app", 1, "acme");
  TestEnclave enclave(m0_, image);
  const Bytes aad = to_bytes(std::string_view("counter=3"));
  auto sealed = enclave.ecall_seal(KeyPolicy::kMrEnclave, aad,
                                   to_bytes(std::string_view("x")));
  ASSERT_TRUE(sealed.ok());
  // Find and flip a byte of the AAD inside the blob.
  auto& blob = sealed.value();
  const std::string as_str(blob.begin(), blob.end());
  const size_t pos = as_str.find("counter=3");
  ASSERT_NE(pos, std::string::npos);
  blob[pos + 8] = '4';  // counter=4
  EXPECT_FALSE(enclave.ecall_unseal(blob).ok());
}

TEST_F(SgxCoreTest, SealingAdvancesVirtualClock) {
  const auto image = EnclaveImage::create("app", 1, "acme");
  TestEnclave enclave(m0_, image);
  const Duration before = world_.clock().now();
  enclave.ecall_seal(KeyPolicy::kMrEnclave, ByteView(), Bytes(100, 1)).value();
  const Duration elapsed = world_.clock().now() - before;
  // EGETKEY (~55us) dominates; the whole op should be well under 1ms.
  EXPECT_GT(elapsed, microseconds(30));
  EXPECT_LT(elapsed, milliseconds(1));
}

TEST_F(SgxCoreTest, SealedBlobSizeMatchesEstimate) {
  const auto image = EnclaveImage::create("app", 1, "acme");
  TestEnclave enclave(m0_, image);
  const Bytes aad(17, 0xaa);
  const Bytes pt(123, 0xbb);
  const auto sealed = enclave.ecall_seal(KeyPolicy::kMrEnclave, aad, pt);
  EXPECT_EQ(sealed.value().size(), sgx::sealed_blob_size(aad.size(), pt.size()));
}

TEST_F(SgxCoreTest, WorldDeterminismAcrossRuns) {
  // Two worlds with the same seed produce identical sealed blobs for the
  // same sequence of operations.
  auto run = [] {
    World w(/*seed=*/777);
    auto& m = w.add_machine("m0");
    const auto image = EnclaveImage::create("app", 1, "acme");
    TestEnclave e(m, image);
    return e.ecall_seal(KeyPolicy::kMrEnclave, ByteView(),
                        to_bytes(std::string_view("det"))).value();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sgxmig

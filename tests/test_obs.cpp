// Observability subsystem tests: TraceRecorder stitching semantics
// (auto-rooting by trace id, late trace binding, ancestor re-extension
// for out-of-order lane completion), MetricsRegistry aggregation, the
// Chrome trace-event export round-tripped through the strict JSON
// parser, OrchestratorReport::to_json(include_events) surviving hostile
// event strings, one span tree per migration stitched ACROSS a source-ME
// crash/restart, and a traced orchestrated drain whose virtual wall time
// is bit-identical to its untraced twin (the zero-overhead-when-off
// property).  The drain test also writes TRACE_obs_drain.json +
// TRACE_REPORT_obs_drain.json so CI jobs without the bench binaries can
// still gate on scripts/trace_check.py.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "migration/migratable_enclave.h"
#include "migration/migration_enclave.h"
#include "obs/observability.h"
#include "orchestrator/orchestrator.h"
#include "platform/world.h"
#include "support/json_parse.h"

namespace sgxmig {
namespace {

using migration::InitState;
using migration::MigratableEnclave;
using migration::MigrationStartResult;
using obs::TraceRecorder;
using obs::TraceSpan;
using platform::World;
using sgx::EnclaveImage;

// ----- TraceRecorder semantics -----

class TraceRecorderTest : public ::testing::Test {
 protected:
  TraceRecorderTest() { rec_.set_enabled(true); }

  VirtualClock clock_;
  TraceRecorder rec_{clock_};
};

TEST_F(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder off(clock_);
  EXPECT_EQ(off.begin_span("migration", "m0", 7), 0u);
  off.end_span(0);
  off.instant("migration.done", "m0", 7);
  off.counter("net.pending", "m0", 1.0);
  EXPECT_TRUE(off.spans().empty());
  EXPECT_TRUE(off.instants().empty());
  EXPECT_TRUE(off.counter_samples().empty());
}

TEST_F(TraceRecorderTest, FirstSpanOfATraceBecomesItsRoot) {
  const uint64_t root = rec_.begin_span("migration", "m0", /*trace_id=*/42);
  const uint64_t child = rec_.begin_span("restore", "m1", /*trace_id=*/42);
  const uint64_t named =
      rec_.begin_span("freeze", "m0", /*trace_id=*/42, /*parent_id=*/root);
  ASSERT_NE(root, 0u);
  EXPECT_EQ(rec_.trace_root(42), root);
  EXPECT_EQ(rec_.find_span(root)->parent_id, 0u);
  EXPECT_EQ(rec_.find_span(child)->parent_id, root);
  EXPECT_EQ(rec_.find_span(named)->parent_id, root);
  // A different trace id grows its own tree.
  const uint64_t other = rec_.begin_span("migration", "m2", /*trace_id=*/43);
  EXPECT_EQ(rec_.find_span(other)->parent_id, 0u);
  EXPECT_EQ(rec_.trace_root(43), other);
}

TEST_F(TraceRecorderTest, LateTraceAssignmentResolvesRootThenChild) {
  // The library's order of operations: the freeze span opens BEFORE the
  // attempt nonce exists, the root is opened explicitly, and both are
  // bound to the nonce once it is drawn.
  const uint64_t freeze = rec_.begin_span("freeze", "m0");
  const uint64_t root = rec_.begin_span("migration", "m0");
  rec_.assign_trace(root, 99);
  rec_.assign_trace(freeze, 99);
  EXPECT_EQ(rec_.trace_root(99), root);
  EXPECT_EQ(rec_.find_span(root)->parent_id, 0u);
  EXPECT_EQ(rec_.find_span(freeze)->parent_id, root);
  EXPECT_EQ(rec_.find_span(freeze)->trace_id, 99u);
}

TEST_F(TraceRecorderTest, LateChildClosureReextendsClosedAncestors) {
  const uint64_t root = rec_.begin_span("migration", "m0", 5);
  const uint64_t child = rec_.begin_span("restore", "m1", 5);
  clock_.advance(milliseconds(100));
  rec_.end_span(root);
  EXPECT_EQ(rec_.find_span(root)->end, milliseconds(100));
  // The destination lane completes later in virtual time than the root's
  // close (lanes finish out of order): the closed root re-extends.
  clock_.advance(milliseconds(50));
  rec_.end_span(child);
  EXPECT_FALSE(rec_.find_span(root)->open);
  EXPECT_EQ(rec_.find_span(root)->end, milliseconds(150));
  EXPECT_EQ(rec_.find_span(child)->end, milliseconds(150));
}

TEST_F(TraceRecorderTest, EndTraceRootCoversClosedChildren) {
  const uint64_t root = rec_.begin_span("migration", "m0", 11);
  const uint64_t child = rec_.begin_span("restore", "m1", 11);
  clock_.advance(milliseconds(20));
  rec_.end_span(child);
  rec_.end_trace_root(11);
  EXPECT_FALSE(rec_.find_span(root)->open);
  EXPECT_EQ(rec_.find_span(root)->end, milliseconds(20));
  // A second completion stamp (destination confirm after the source
  // already closed the root) only ever extends, never shrinks.
  clock_.advance(milliseconds(5));
  rec_.end_trace_root(11);
  EXPECT_EQ(rec_.find_span(root)->end, milliseconds(25));
  EXPECT_EQ(rec_.open_span_count(), 0u);
}

TEST_F(TraceRecorderTest, ChromeExportRoundTripsThroughStrictParser) {
  const uint64_t root = rec_.begin_span("migration", "m0", 77);
  rec_.span_arg(root, "enclave", "app \"7\" \\ two\nlines\t");
  clock_.advance(milliseconds(3));
  const uint64_t child = rec_.begin_span("freeze", "m0", 77);
  clock_.advance(milliseconds(4));
  rec_.end_span(child);
  rec_.end_trace_root(77);
  rec_.instant("net.post", "m1", 0, {{"msg", "1"}, {"to", "m0/me"}});
  rec_.counter("net.pending", "m1", 2.0);
  // A span deliberately left open: the export must close it at the
  // horizon and tag it.
  rec_.begin_span("pse.reclaim", "m2");

  auto parsed = parse_json(rec_.to_chrome_json());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* events = parsed.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  size_t begins = 0, ends = 0, instants = 0, counters = 0;
  bool open_tagged = false;
  std::string exported_enclave;
  for (const JsonValue& e : events->items()) {
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "b") {
      ++begins;
      const JsonValue* args = e.find("args");
      if (args->find("open") != nullptr) open_tagged = true;
      if (e.find("name")->as_string() == "migration") {
        exported_enclave = args->find("enclave")->as_string();
      }
    } else if (ph == "e") {
      ++ends;
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "C") {
      ++counters;
    }
  }
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(ends, begins);
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(counters, 1u);
  EXPECT_TRUE(open_tagged);
  // The hostile arg string survived escaping + strict parsing intact.
  EXPECT_EQ(exported_enclave, "app \"7\" \\ two\nlines\t");
}

// ----- MetricsRegistry -----

TEST(MetricsRegistry, DisabledByDefaultThenAggregates) {
  obs::MetricsRegistry metrics;
  metrics.add("net.posts");
  EXPECT_EQ(metrics.counter("net.posts"), 0u);

  metrics.set_enabled(true);
  metrics.add("net.posts");
  metrics.add("net.posts", 5);
  EXPECT_EQ(metrics.counter("net.posts"), 6u);
  metrics.set_gauge("net.pending.m0", 3.0);
  metrics.set_gauge("net.pending.m0", 1.0);
  EXPECT_EQ(metrics.gauge("net.pending.m0"), 1.0);
  EXPECT_EQ(metrics.gauge_max("net.pending.m0"), 3.0);
  for (const double v : {4.0, 1.0, 3.0, 2.0}) {
    metrics.observe("persist.batch_mutations", v);
  }
  EXPECT_EQ(metrics.histogram_count("persist.batch_mutations"), 4u);
  EXPECT_DOUBLE_EQ(metrics.histogram_mean("persist.batch_mutations"), 2.5);
  // Nearest rank: ceil(0.5 * 4) = 2nd of {1,2,3,4}.
  EXPECT_DOUBLE_EQ(
      metrics.histogram_percentile("persist.batch_mutations", 50.0), 2.0);
  EXPECT_DOUBLE_EQ(
      metrics.histogram_percentile("persist.batch_mutations", 99.0), 4.0);

  auto parsed = parse_json(metrics.to_json());
  ASSERT_TRUE(parsed.ok());
  const JsonValue& top = parsed.value();
  ASSERT_TRUE(top.has("counters"));
  EXPECT_EQ(top.find("counters")->find("net.posts")->as_number(), 6.0);
  EXPECT_EQ(top.find("gauges")->find("net.pending.m0")->find("max")
                ->as_number(),
            3.0);
  EXPECT_EQ(top.find("histograms")->find("persist.batch_mutations")
                ->find("p50")->as_number(),
            2.0);
}

// ----- OrchestratorReport round trip (include_events) -----

TEST(ReportJson, EventfulReportRoundTripsThroughStrictParser) {
  orchestrator::OrchestratorReport report;
  report.plan = orchestrator::PlanKind::kDrainMachine;
  report.started_at = milliseconds(10);
  report.finished_at = milliseconds(2500);

  orchestrator::MigrationRecord ok;
  ok.enclave_id = 1;
  ok.name = "app with \"quotes\" and \\backslash\\";
  ok.source = "m0";
  ok.destination = "m1";
  ok.attempts = 2;
  ok.success = true;
  ok.planned_at = milliseconds(10);
  ok.finished_at = milliseconds(900);
  ok.freeze_window = microseconds(1500);
  report.migrations.push_back(ok);

  orchestrator::MigrationRecord bad;
  bad.enclave_id = 2;
  bad.name = "doomed";
  bad.success = false;
  bad.final_status = Status::kTampered;
  bad.failure_message = "tab\there, newline\nthere, ctrl\x01&\x1f, utf8 σπαν";
  report.migrations.push_back(bad);

  report.events.push_back({milliseconds(10), 1, orchestrator::EventKind::kPlanned,
                           "detail with \"every\\nasty\"\r\nthing"});
  report.events.push_back(
      {milliseconds(900), 1, orchestrator::EventKind::kDone, "plain"});

  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  metrics.add("migration.accepted", 2);
  metrics.observe("migration.freeze_window_ms", 1.5);
  report.metrics_json = metrics.to_json();

  auto parsed = parse_json(report.to_json(/*include_events=*/true));
  ASSERT_TRUE(parsed.ok());
  const JsonValue& top = parsed.value();
  EXPECT_EQ(top.find("plan")->as_string(), "drain-machine");
  ASSERT_TRUE(top.has("migrations"));
  const auto& migrations = top.find("migrations")->items();
  ASSERT_EQ(migrations.size(), 2u);
  EXPECT_EQ(migrations[0].find("name")->as_string(), ok.name);
  EXPECT_FALSE(migrations[0].has("message"));  // success row omits failure
  EXPECT_EQ(migrations[1].find("message")->as_string(), bad.failure_message);
  ASSERT_TRUE(top.has("events"));
  const auto& events = top.find("events")->items();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].find("detail")->as_string(),
            report.events[0].detail);
  EXPECT_EQ(events[0].find("kind")->as_string(), "planned");
  // The metrics block merged as structured JSON, not as a quoted string.
  ASSERT_TRUE(top.has("metrics"));
  EXPECT_EQ(top.find("metrics")->find("counters")->find("migration.accepted")
                ->as_number(),
            2.0);
  // Without events (and without metrics) the document still parses and
  // omits both keys.
  orchestrator::OrchestratorReport bare;
  auto parsed_bare = parse_json(bare.to_json());
  ASSERT_TRUE(parsed_bare.ok());
  EXPECT_FALSE(parsed_bare.value().has("events"));
  EXPECT_FALSE(parsed_bare.value().has("metrics"));
}

// ----- span trees across faults -----

bool transfer_in_flight(const MigrationStartResult& r) {
  return r.status == Status::kMigrationInProgress &&
         r.failure_class == migration::MigrationFailureClass::kNone;
}

// Mirrors test_pipeline's SourceMeRestartMidPipelineResumesFromDurableQueue
// with the recorder on: the source ME dies mid-attestation, the revived
// ME resumes both pipelines from the durable queue under the SAME attempt
// nonces, and each migration must still render as exactly ONE span tree —
// root, freeze, and restore all bound to one trace id, nothing orphaned.
TEST(ObsFaults, SpanTreeStitchedAcrossSourceMeRestart) {
  World world{/*seed=*/6060};
  world.install_management_enclaves(
      migration::durable_me_factory(world.provider()));
  platform::Machine& m0 = world.add_machine("m0");
  platform::Machine& m1 = world.add_machine("m1");
  platform::Machine& m2 = world.add_machine("m2");
  world.observability().set_enabled(true);

  const auto image_a = EnclaveImage::create("obs-pipe-a", 1, "acme");
  const auto image_b = EnclaveImage::create("obs-pipe-b", 1, "acme");
  const auto start_app = [&](platform::Machine& m,
                             std::shared_ptr<const EnclaveImage> image) {
    auto enclave = std::make_unique<MigratableEnclave>(
        m, std::move(image), migration::PersistenceMode::kSync,
        migration::GroupCommitOptions{}, /*live_transfer=*/false);
    enclave->set_persist_callback(
        [&m](ByteView s) { m.storage().put("ml", s); });
    EXPECT_EQ(enclave->ecall_migration_init(ByteView(), InitState::kNew,
                                            m.address()),
              Status::kOk);
    return enclave;
  };
  auto a = start_app(m0, image_a);
  auto b = start_app(m0, image_b);
  a->ecall_increment_migratable_counter(
      a->ecall_create_migratable_counter().value().counter_id);
  b->ecall_increment_migratable_counter(
      b->ecall_create_migratable_counter().value().counter_id);
  ASSERT_TRUE(a->ecall_migration_enqueue_detailed("m1").ok());
  ASSERT_TRUE(b->ecall_migration_enqueue_detailed("m2").ok());

  // Crash the source ME mid-attestation, then revive it: the durable
  // queue re-kicks both tasks under their original nonces.
  world.network().pump_one();
  world.network().pump_one();
  world.network().pump_one();
  m0.kill_management_enclave();
  ASSERT_TRUE(m0.restart_management_enclave());

  const auto pump_until_resolved = [&](MigratableEnclave& enclave) {
    for (int i = 0; i < 16; ++i) {
      migration::me_on(m0)->pump();
      world.network().pump_all();
      const MigrationStartResult r = enclave.ecall_migration_poll_transfer();
      if (!transfer_in_flight(r)) return r;
    }
    MigrationStartResult stuck;
    stuck.status = Status::kMigrationInProgress;
    return stuck;
  };
  ASSERT_TRUE(pump_until_resolved(*a).ok());
  ASSERT_TRUE(pump_until_resolved(*b).ok());
  a.reset();
  b.reset();

  // Restore both at their destinations (fetch + confirm close the trees).
  const auto restore_app = [&](platform::Machine& m,
                               std::shared_ptr<const EnclaveImage> image) {
    auto enclave = std::make_unique<MigratableEnclave>(
        m, std::move(image), migration::PersistenceMode::kSync,
        migration::GroupCommitOptions{}, /*live_transfer=*/false);
    enclave->set_persist_callback(
        [&m](ByteView s) { m.storage().put("ml", s); });
    EXPECT_EQ(enclave->ecall_migration_init(ByteView(), InitState::kMigrate,
                                            m.address()),
              Status::kOk);
    EXPECT_EQ(enclave->ecall_read_migratable_counter(0).value(), 1u);
    return enclave;
  };
  auto moved_a = restore_app(m1, image_a);
  auto moved_b = restore_app(m2, image_b);

  const TraceRecorder& rec = world.observability().trace;
  std::vector<const TraceSpan*> roots;
  for (const TraceSpan& span : rec.spans()) {
    if (span.name == "migration" && span.parent_id == 0) {
      roots.push_back(&span);
    }
  }
  ASSERT_EQ(roots.size(), 2u);  // one tree per migration, restart or not
  EXPECT_NE(roots[0]->trace_id, 0u);
  EXPECT_NE(roots[1]->trace_id, 0u);
  EXPECT_NE(roots[0]->trace_id, roots[1]->trace_id);
  EXPECT_EQ(rec.open_span_count(), 0u);  // no orphans
  for (const TraceSpan* root : roots) {
    bool has_freeze = false, has_restore = false;
    for (const TraceSpan& span : rec.spans()) {
      if (span.trace_id != root->trace_id || span.span_id == root->span_id) {
        continue;
      }
      // Every non-root span of the trace hangs off the one root and
      // nests inside it.
      EXPECT_EQ(span.parent_id, root->span_id);
      EXPECT_GE(span.start, root->start);
      EXPECT_LE(span.end, root->end);
      has_freeze = has_freeze || span.name == "freeze";
      has_restore = has_restore || span.name == "restore";
    }
    EXPECT_TRUE(has_freeze);
    EXPECT_TRUE(has_restore);
  }
  // Both trees were stamped done by the destination confirm.
  size_t done = 0;
  for (const auto& instant : rec.instants()) {
    if (instant.name == "migration.done") {
      ++done;
      EXPECT_TRUE(instant.trace_id == roots[0]->trace_id ||
                  instant.trace_id == roots[1]->trace_id);
    }
  }
  EXPECT_EQ(done, 2u);
}

// ----- traced orchestrated drain: zero overhead + CI artifacts -----

struct DrainOutcome {
  orchestrator::OrchestratorReport report;
  Duration wall{};
  std::string trace_json;
};

DrainOutcome small_drain(bool traced) {
  World world(/*seed=*/4242);
  world.install_management_enclaves(
      migration::durable_me_factory(world.provider()));
  for (int i = 0; i < 3; ++i) world.add_machine("m" + std::to_string(i));
  if (traced) world.observability().set_enabled(true);
  for (platform::Machine* m : world.machines()) {
    if (auto* me = migration::me_on(*m)) me->set_async_precopy(true);
  }

  orchestrator::FleetRegistry fleet(world);
  orchestrator::LaunchOptions launch;
  launch.live_transfer = true;
  for (int i = 0; i < 6; ++i) {
    const std::string name = "obs-drain-" + std::to_string(i);
    const auto image = EnclaveImage::create(name, 1, "obs");
    const uint64_t id = fleet.launch("m0", name, image, launch).value();
    auto* enclave = fleet.enclave(id);
    const uint32_t counter =
        enclave->ecall_create_migratable_counter().value().counter_id;
    enclave->ecall_increment_migratable_counter(counter);
  }
  orchestrator::Scheduler scheduler(fleet);
  orchestrator::OrchestratorOptions options;
  options.max_inflight_per_machine = 4;
  options.max_inflight_total = 8;
  options.max_attempts = 6;
  options.transfer_mode = orchestrator::TransferMode::kPrecopy;
  options.pipelined = true;

  orchestrator::Orchestrator orch(fleet, scheduler, options);
  const Duration t0 = world.clock().now();
  DrainOutcome outcome;
  outcome.report = orch.execute(orchestrator::Plan::drain("m0"));
  outcome.wall = world.clock().now() - t0;
  if (traced) {
    outcome.report.metrics_json = world.observability().metrics.to_json();
    outcome.trace_json = world.observability().trace.to_chrome_json();
  }
  return outcome;
}

bool write_text_file(const char* path, const std::string& body) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  return std::fclose(f) == 0 && written == body.size();
}

TEST(ObsDrain, TracedDrainIsVirtualTimeIdenticalAndEmitsArtifacts) {
  const DrainOutcome untraced = small_drain(/*traced=*/false);
  const DrainOutcome traced = small_drain(/*traced=*/true);
  ASSERT_EQ(traced.report.failed(), 0u);
  ASSERT_EQ(traced.report.succeeded(), 6u);
  // Zero overhead where it counts: the recorder only READS the virtual
  // clock, so the traced drain reproduces the untraced wall bit-exactly.
  EXPECT_EQ(traced.wall, untraced.wall);
  EXPECT_TRUE(untraced.report.metrics_json.empty());

  // The export parses strictly and carries one migration root per task.
  auto parsed = parse_json(traced.trace_json);
  ASSERT_TRUE(parsed.ok());
  size_t roots = 0;
  for (const JsonValue& e : parsed.value().find("traceEvents")->items()) {
    roots += e.find("ph")->as_string() == "b" &&
                     e.find("name")->as_string() == "migration" &&
                     e.find("args")->find("parent")->as_string() == "0"
                 ? 1
                 : 0;
  }
  EXPECT_EQ(roots, 6u);

  // CI artifacts for scripts/trace_check.py in bench-less builds (ASan).
  ASSERT_TRUE(write_text_file("TRACE_obs_drain.json", traced.trace_json));
  ASSERT_TRUE(write_text_file("TRACE_REPORT_obs_drain.json",
                              traced.report.to_json(/*include_events=*/true)));
}

}  // namespace
}  // namespace sgxmig

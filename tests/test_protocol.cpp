// Serialization tests for every protocol message type (docs/PROTOCOL.md):
// round trips, boundary values, and rejection of malformed/truncated/
// trailing-garbage encodings — the parsing layer faces the raw network.
#include <gtest/gtest.h>

#include "migration/protocol.h"
#include "support/rng.h"

namespace sgxmig::migration {
namespace {

TEST(ProtocolSerde, MeRequestRoundTrip) {
  MeRequest req;
  req.type = MeMsgType::kTransfer;
  req.id = 0x0123456789abcdefULL;
  req.payload = to_bytes(std::string_view("opaque record"));
  auto back = MeRequest::deserialize(req.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().type, req.type);
  EXPECT_EQ(back.value().id, req.id);
  EXPECT_EQ(back.value().payload, req.payload);
}

TEST(ProtocolSerde, MeRequestRejectsUnknownType) {
  MeRequest req;
  req.type = MeMsgType::kLaStart;
  Bytes bytes = req.serialize();
  bytes[0] = 0;  // type 0 invalid
  EXPECT_FALSE(MeRequest::deserialize(bytes).ok());
  bytes[0] = 13;  // one past kSessionResume, the highest valid type
  EXPECT_FALSE(MeRequest::deserialize(bytes).ok());
}

TEST(ProtocolSerde, MeRequestRejectsTrailingGarbage) {
  MeRequest req;
  req.type = MeMsgType::kLaStart;
  Bytes bytes = req.serialize();
  bytes.push_back(0x00);
  EXPECT_FALSE(MeRequest::deserialize(bytes).ok());
}

TEST(ProtocolSerde, MeResponseRoundTrip) {
  MeResponse resp;
  resp.status = Status::kPolicyViolation;
  resp.payload = Bytes(300, 0x7a);
  auto back = MeResponse::deserialize(resp.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().status, Status::kPolicyViolation);
  EXPECT_EQ(back.value().payload, resp.payload);
}

TEST(ProtocolSerde, LibMsgRoundTrip) {
  LibMsg msg;
  msg.type = LibMsgType::kIncomingData;
  msg.status = Status::kOk;
  msg.payload = Bytes(1500, 0x42);
  auto back = LibMsg::deserialize(msg.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().type, LibMsgType::kIncomingData);
  EXPECT_EQ(back.value().payload, msg.payload);
}

TEST(ProtocolSerde, MigrateRequestPayloadRoundTrip) {
  MigrateRequestPayload payload;
  payload.destination_address = "machine-17";
  payload.policy.allowed_regions = {"eu-central", "ap-south"};
  payload.policy.denied_addresses = {"machine-3"};
  payload.policy.min_cpu_cores = 12;
  payload.data.counters_active[9] = true;
  payload.data.counter_values[9] = 77;
  payload.data.msk[0] = 0xaa;
  auto back = MigrateRequestPayload::deserialize(payload.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().destination_address, "machine-17");
  EXPECT_EQ(back.value().policy.allowed_regions,
            payload.policy.allowed_regions);
  EXPECT_EQ(back.value().policy.min_cpu_cores, 12u);
  EXPECT_EQ(back.value().data, payload.data);
}

TEST(ProtocolSerde, TransferPayloadRoundTrip) {
  TransferPayload payload;
  payload.source_mr_enclave[5] = 0x55;
  payload.source_me_address = "m0";
  payload.data.counters_active[0] = true;
  payload.data.counter_values[0] = 0xffffffff;
  auto back = TransferPayload::deserialize(payload.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().source_mr_enclave, payload.source_mr_enclave);
  EXPECT_EQ(back.value().source_me_address, "m0");
  EXPECT_EQ(back.value().data, payload.data);
}

TEST(ProtocolSerde, ProviderAuthRoundTrip) {
  ProviderAuth auth;
  auth.credential.address = "m9";
  auth.credential.region = "eu-west";
  auth.credential.cpu_cores = 48;
  auth.credential.machine_public_key[0] = 1;
  auth.transcript_signature[63] = 9;
  auto back = ProviderAuth::deserialize(auth.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().credential.address, "m9");
  EXPECT_EQ(back.value().credential.cpu_cores, 48u);
  EXPECT_EQ(back.value().transcript_signature, auth.transcript_signature);
}

TEST(ProtocolSerde, ProviderAuthMessageBindsTranscript) {
  std::array<uint8_t, 32> t1{};
  std::array<uint8_t, 32> t2{};
  t2[0] = 1;
  EXPECT_NE(provider_auth_message(t1), provider_auth_message(t2));
}

class ProtocolFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolFuzz, TruncationsNeverParse) {
  Rng rng(GetParam());
  MigrateRequestPayload payload;
  payload.destination_address = "dest";
  payload.policy.allowed_regions = {"r1", "r2"};
  payload.data.counters_active[3] = true;
  const Bytes full = payload.serialize();
  // Every truncation point must fail to parse (no partial acceptance).
  for (int i = 0; i < 20; ++i) {
    const size_t cut = 1 + rng.uniform(full.size() - 1);
    Bytes truncated(full.begin(), full.begin() + static_cast<long>(cut));
    EXPECT_FALSE(MigrateRequestPayload::deserialize(truncated).ok())
        << "cut at " << cut;
  }
}

TEST_P(ProtocolFuzz, RandomBytesNeverParseAsTransfer) {
  Rng rng(GetParam() ^ 0xf00d);
  for (int i = 0; i < 20; ++i) {
    const Bytes junk = rng.bytes(1 + rng.uniform(2048));
    // Either rejected, or (vanishingly unlikely) parsed — but never
    // crashes or reads out of bounds (ASAN-clean by construction of
    // BinaryReader).
    auto r = TransferPayload::deserialize(junk);
    if (r.ok()) {
      // If it parsed, the serialization must round-trip identically.
      EXPECT_EQ(r.value().serialize(), junk);
    }
  }
}

TEST_P(ProtocolFuzz, BitFlipsDetectedOrIsomorphic) {
  Rng rng(GetParam() ^ 0xbeef);
  ProviderAuth auth;
  auth.credential.address = "m1";
  auth.credential.region = "eu";
  const Bytes original = auth.serialize();
  for (int i = 0; i < 20; ++i) {
    Bytes mutated = original;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng.uniform(8));
    auto r = ProviderAuth::deserialize(mutated);
    if (r.ok()) {
      // Structure-level parse may succeed; the flipped field must show up
      // so signature verification above this layer will catch it.
      EXPECT_NE(r.value().serialize(), original);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace sgxmig::migration

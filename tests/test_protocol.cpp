// Serialization tests for every protocol message type (docs/PROTOCOL.md):
// round trips, boundary values, and rejection of malformed/truncated/
// trailing-garbage encodings — the parsing layer faces the raw network.
#include <gtest/gtest.h>

#include "migration/protocol.h"
#include "support/rng.h"

namespace sgxmig::migration {
namespace {

TEST(ProtocolSerde, MeRequestRoundTrip) {
  MeRequest req;
  req.type = MeMsgType::kTransfer;
  req.id = 0x0123456789abcdefULL;
  req.payload = to_bytes(std::string_view("opaque record"));
  auto back = MeRequest::deserialize(req.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().type, req.type);
  EXPECT_EQ(back.value().id, req.id);
  EXPECT_EQ(back.value().payload, req.payload);
}

TEST(ProtocolSerde, MeRequestRejectsUnknownType) {
  MeRequest req;
  req.type = MeMsgType::kLaStart;
  Bytes bytes = req.serialize();
  bytes[0] = 0;  // type 0 invalid
  EXPECT_FALSE(MeRequest::deserialize(bytes).ok());
  bytes[0] = 13;  // one past kSessionResume, the highest valid type
  EXPECT_FALSE(MeRequest::deserialize(bytes).ok());
}

TEST(ProtocolSerde, MeRequestRejectsTrailingGarbage) {
  MeRequest req;
  req.type = MeMsgType::kLaStart;
  Bytes bytes = req.serialize();
  bytes.push_back(0x00);
  EXPECT_FALSE(MeRequest::deserialize(bytes).ok());
}

TEST(ProtocolSerde, MeResponseRoundTrip) {
  MeResponse resp;
  resp.status = Status::kPolicyViolation;
  resp.payload = Bytes(300, 0x7a);
  auto back = MeResponse::deserialize(resp.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().status, Status::kPolicyViolation);
  EXPECT_EQ(back.value().payload, resp.payload);
}

TEST(ProtocolSerde, LibMsgRoundTrip) {
  LibMsg msg;
  msg.type = LibMsgType::kIncomingData;
  msg.status = Status::kOk;
  msg.payload = Bytes(1500, 0x42);
  auto back = LibMsg::deserialize(msg.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().type, LibMsgType::kIncomingData);
  EXPECT_EQ(back.value().payload, msg.payload);
}

TEST(ProtocolSerde, MigrateRequestPayloadRoundTrip) {
  MigrateRequestPayload payload;
  payload.destination_address = "machine-17";
  payload.policy.allowed_regions = {"eu-central", "ap-south"};
  payload.policy.denied_addresses = {"machine-3"};
  payload.policy.min_cpu_cores = 12;
  payload.data.counters_active[9] = true;
  payload.data.counter_values[9] = 77;
  payload.data.msk[0] = 0xaa;
  auto back = MigrateRequestPayload::deserialize(payload.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().destination_address, "machine-17");
  EXPECT_EQ(back.value().policy.allowed_regions,
            payload.policy.allowed_regions);
  EXPECT_EQ(back.value().policy.min_cpu_cores, 12u);
  EXPECT_EQ(back.value().data, payload.data);
}

TEST(ProtocolSerde, TransferPayloadRoundTrip) {
  TransferPayload payload;
  payload.source_mr_enclave[5] = 0x55;
  payload.source_me_address = "m0";
  payload.data.counters_active[0] = true;
  payload.data.counter_values[0] = 0xffffffff;
  auto back = TransferPayload::deserialize(payload.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().source_mr_enclave, payload.source_mr_enclave);
  EXPECT_EQ(back.value().source_me_address, "m0");
  EXPECT_EQ(back.value().data, payload.data);
}

// Every message type of both protocol enums must round-trip through the
// envelope it travels in.  simlint's protocol-exhaustiveness checker
// requires every enumerator to be exercised somewhere under tests/ —
// these sweeps are that floor, so a new message type cannot ship
// without at least wire-level coverage (and without being added here).
TEST(ProtocolSerde, MeRequestRoundTripsEveryType) {
  const MeMsgType kAllTypes[] = {
      MeMsgType::kLaStart,      MeMsgType::kLaMsg2,
      MeMsgType::kLaRecord,     MeMsgType::kRaMsg1,
      MeMsgType::kRaMsg3,       MeMsgType::kTransfer,
      MeMsgType::kDone,         MeMsgType::kPrecopyChunk,
      MeMsgType::kPrecopyFinalize, MeMsgType::kReconcile,
      MeMsgType::kAbort,        MeMsgType::kSessionResume,
  };
  for (const MeMsgType type : kAllTypes) {
    MeRequest req;
    req.type = type;
    req.id = 42;
    req.payload = to_bytes(std::string_view("x"));
    auto back = MeRequest::deserialize(req.serialize());
    ASSERT_TRUE(back.ok()) << "type " << static_cast<int>(type);
    EXPECT_EQ(back.value().type, type);
  }
}

TEST(ProtocolSerde, LibMsgRoundTripsEveryType) {
  const LibMsgType kAllTypes[] = {
      LibMsgType::kMigrateRequest,   LibMsgType::kFetchIncoming,
      LibMsgType::kConfirmMigration, LibMsgType::kQueryStatus,
      LibMsgType::kPrecopyRound,     LibMsgType::kPrecopyFinalizeReq,
      LibMsgType::kMigrateEnqueue,   LibMsgType::kPollTransfer,
      LibMsgType::kAbortStale,       LibMsgType::kMigrateAccepted,
      LibMsgType::kIncomingData,     LibMsgType::kConfirmAck,
      LibMsgType::kStatusReport,     LibMsgType::kError,
      LibMsgType::kPrecopyAck,       LibMsgType::kFinalizeAccepted,
      LibMsgType::kMigrateQueued,    LibMsgType::kTransferProgress,
      LibMsgType::kAbortAck,         LibMsgType::kMigrateReserve,
      LibMsgType::kMigrateArm,       LibMsgType::kArmAck,
  };
  for (const LibMsgType type : kAllTypes) {
    LibMsg msg;
    msg.type = type;
    msg.status = Status::kOk;
    msg.payload = to_bytes(std::string_view("payload"));
    auto back = LibMsg::deserialize(msg.serialize());
    ASSERT_TRUE(back.ok()) << "type " << static_cast<int>(type);
    EXPECT_EQ(back.value().type, type);
    EXPECT_EQ(back.value().payload, msg.payload);
  }
}

TEST(ProtocolSerde, QueryStatusPayloadRoundTrip) {
  QueryStatusPayload payload;
  payload.request_nonce = 0xdeadbeefcafef00dULL;
  auto back = QueryStatusPayload::deserialize(payload.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().request_nonce, payload.request_nonce);
}

TEST(ProtocolSerde, MigrateReservePayloadRoundTrip) {
  MigrateReservePayload payload;
  payload.destination_address = "m4";
  payload.request_nonce = 77;
  payload.policy.allowed_regions = {"eu-central"};
  payload.policy.min_cpu_cores = 8;
  auto back = MigrateReservePayload::deserialize(payload.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().destination_address, "m4");
  EXPECT_EQ(back.value().request_nonce, 77u);
  EXPECT_EQ(back.value().policy.allowed_regions,
            payload.policy.allowed_regions);
}

TEST(ProtocolSerde, PollTransferAndProgressRoundTrip) {
  PollTransferPayload poll;
  poll.request_nonce = 123;
  auto poll_back = PollTransferPayload::deserialize(poll.serialize());
  ASSERT_TRUE(poll_back.ok());
  EXPECT_EQ(poll_back.value().request_nonce, 123u);

  TransferProgressPayload progress;
  progress.progress = TransferProgress::kSlotLive;
  progress.failure = Status::kOk;
  auto back = TransferProgressPayload::deserialize(progress.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().progress, TransferProgress::kSlotLive);

  progress.progress = TransferProgress::kFailed;
  progress.failure = Status::kPolicyViolation;
  back = TransferProgressPayload::deserialize(progress.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().progress, TransferProgress::kFailed);
  EXPECT_EQ(back.value().failure, Status::kPolicyViolation);
}

TEST(ProtocolSerde, AbortPayloadsRoundTrip) {
  AbortStalePayload stale;
  stale.request_nonce = 9;
  stale.destination_address = "m2";
  auto stale_back = AbortStalePayload::deserialize(stale.serialize());
  ASSERT_TRUE(stale_back.ok());
  EXPECT_EQ(stale_back.value().request_nonce, 9u);
  EXPECT_EQ(stale_back.value().destination_address, "m2");

  AbortRequest abort_req;
  abort_req.source_mr_enclave[3] = 0x33;
  abort_req.request_nonce = 9;
  auto abort_back = AbortRequest::deserialize(abort_req.serialize());
  ASSERT_TRUE(abort_back.ok());
  EXPECT_EQ(abort_back.value().source_mr_enclave, abort_req.source_mr_enclave);
  EXPECT_EQ(abort_back.value().request_nonce, 9u);
}

TEST(ProtocolSerde, PrecopyRoundPayloadRoundTrip) {
  PrecopyRoundPayload payload;
  payload.destination_address = "m7";
  payload.request_nonce = 404;
  payload.round = 3;
  CounterChunk chunk;
  chunk.index = 5;
  chunk.generation = 11;
  chunk.active[0] = true;
  chunk.values[0] = 99;
  payload.chunks.push_back(chunk);
  auto back = PrecopyRoundPayload::deserialize(payload.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().round, 3u);
  ASSERT_EQ(back.value().chunks.size(), 1u);
  EXPECT_EQ(back.value().chunks[0].index, 5u);
  EXPECT_EQ(back.value().chunks[0].generation, 11u);
  EXPECT_EQ(back.value().chunks[0].values[0], 99u);
}

TEST(ProtocolSerde, PrecopyFinalizePayloadRoundTrip) {
  PrecopyFinalizePayload payload;
  payload.destination_address = "m7";
  payload.request_nonce = 405;
  payload.round = 4;
  payload.manifest.push_back({2, 7});
  payload.msk[0] = 0x5a;
  auto back = PrecopyFinalizePayload::deserialize(payload.serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().manifest.size(), 1u);
  EXPECT_EQ(back.value().manifest[0].index, 2u);
  EXPECT_EQ(back.value().manifest[0].generation, 7u);
  EXPECT_EQ(back.value().msk, payload.msk);
}

TEST(ProtocolSerde, PrecopyRecordsRoundTrip) {
  PrecopyChunkRecord chunk_record;
  chunk_record.source_mr_enclave[1] = 0x11;
  chunk_record.source_me_address = "m0";
  chunk_record.request_nonce = 500;
  chunk_record.round = 1;
  auto chunk_back = PrecopyChunkRecord::deserialize(chunk_record.serialize());
  ASSERT_TRUE(chunk_back.ok());
  EXPECT_EQ(chunk_back.value().source_me_address, "m0");
  EXPECT_EQ(chunk_back.value().request_nonce, 500u);

  PrecopyFinalizeRecord finalize_record;
  finalize_record.source_mr_enclave[2] = 0x22;
  finalize_record.source_me_address = "m1";
  finalize_record.request_nonce = 501;
  finalize_record.manifest.push_back({0, 1});
  finalize_record.msk[15] = 0xff;
  auto finalize_back =
      PrecopyFinalizeRecord::deserialize(finalize_record.serialize());
  ASSERT_TRUE(finalize_back.ok());
  EXPECT_EQ(finalize_back.value().source_me_address, "m1");
  ASSERT_EQ(finalize_back.value().manifest.size(), 1u);
  EXPECT_EQ(finalize_back.value().msk, finalize_record.msk);
}

TEST(ProtocolSerde, ReconcileQueryRoundTrip) {
  ReconcileQuery query;
  query.source_mr_enclave[7] = 0x77;
  query.request_nonce = 600;
  auto back = ReconcileQuery::deserialize(query.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().source_mr_enclave, query.source_mr_enclave);
  EXPECT_EQ(back.value().request_nonce, 600u);
}

TEST(ProtocolSerde, SessionResumeRoundTrip) {
  SessionResumeRequest request;
  request.initiator_address = "m3";
  request.responder_epoch = 0xabcdef;
  request.nonce[0] = 1;
  request.mac[15] = 2;
  auto req_back = SessionResumeRequest::deserialize(request.serialize());
  ASSERT_TRUE(req_back.ok());
  EXPECT_EQ(req_back.value().initiator_address, "m3");
  EXPECT_EQ(req_back.value().responder_epoch, 0xabcdefu);
  EXPECT_EQ(req_back.value().nonce, request.nonce);
  EXPECT_EQ(req_back.value().mac, request.mac);

  SessionResumeReply reply;
  reply.nonce[5] = 9;
  reply.mac[0] = 8;
  auto reply_back = SessionResumeReply::deserialize(reply.serialize());
  ASSERT_TRUE(reply_back.ok());
  EXPECT_EQ(reply_back.value().nonce, reply.nonce);
  EXPECT_EQ(reply_back.value().mac, reply.mac);
}

TEST(ProtocolSerde, ProviderAuthRoundTrip) {
  ProviderAuth auth;
  auth.credential.address = "m9";
  auth.credential.region = "eu-west";
  auth.credential.cpu_cores = 48;
  auth.credential.machine_public_key[0] = 1;
  auth.transcript_signature[63] = 9;
  auto back = ProviderAuth::deserialize(auth.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().credential.address, "m9");
  EXPECT_EQ(back.value().credential.cpu_cores, 48u);
  EXPECT_EQ(back.value().transcript_signature, auth.transcript_signature);
}

TEST(ProtocolSerde, ProviderAuthMessageBindsTranscript) {
  std::array<uint8_t, 32> t1{};
  std::array<uint8_t, 32> t2{};
  t2[0] = 1;
  EXPECT_NE(provider_auth_message(t1), provider_auth_message(t2));
}

class ProtocolFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolFuzz, TruncationsNeverParse) {
  Rng rng(GetParam());
  MigrateRequestPayload payload;
  payload.destination_address = "dest";
  payload.policy.allowed_regions = {"r1", "r2"};
  payload.data.counters_active[3] = true;
  const Bytes full = payload.serialize();
  // Every truncation point must fail to parse (no partial acceptance).
  for (int i = 0; i < 20; ++i) {
    const size_t cut = 1 + rng.uniform(full.size() - 1);
    Bytes truncated(full.begin(), full.begin() + static_cast<long>(cut));
    EXPECT_FALSE(MigrateRequestPayload::deserialize(truncated).ok())
        << "cut at " << cut;
  }
}

TEST_P(ProtocolFuzz, RandomBytesNeverParseAsTransfer) {
  Rng rng(GetParam() ^ 0xf00d);
  for (int i = 0; i < 20; ++i) {
    const Bytes junk = rng.bytes(1 + rng.uniform(2048));
    // Either rejected, or (vanishingly unlikely) parsed — but never
    // crashes or reads out of bounds (ASAN-clean by construction of
    // BinaryReader).
    auto r = TransferPayload::deserialize(junk);
    if (r.ok()) {
      // If it parsed, the serialization must round-trip identically.
      EXPECT_EQ(r.value().serialize(), junk);
    }
  }
}

TEST_P(ProtocolFuzz, BitFlipsDetectedOrIsomorphic) {
  Rng rng(GetParam() ^ 0xbeef);
  ProviderAuth auth;
  auth.credential.address = "m1";
  auth.credential.region = "eu";
  const Bytes original = auth.serialize();
  for (int i = 0; i < 20; ++i) {
    Bytes mutated = original;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng.uniform(8));
    auto r = ProviderAuth::deserialize(mutated);
    if (r.ok()) {
      // Structure-level parse may succeed; the flipped field must show up
      // so signature verification above this layer will catch it.
      EXPECT_NE(r.value().serialize(), original);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace sgxmig::migration
